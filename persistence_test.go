package zlb_test

import (
	"testing"
	"time"

	"github.com/zeroloss/zlb"
)

// runPersistedScenario drives the fixed-seed workload of
// determinism_test.go on a cluster persisting to dir.
func runPersistedScenario(t *testing.T, dir string, checkpointEvery uint64) (*zlb.Cluster, zlb.Config, [3]*zlb.Wallet) {
	t.Helper()
	cfg := zlb.Config{N: 7, Seed: 42, WalletCount: 3, DataDir: dir, CheckpointEvery: checkpointEvery}
	cluster, err := zlb.NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var ws [3]*zlb.Wallet
	for i := range ws {
		w, err := cluster.WalletFor(i)
		if err != nil {
			t.Fatal(err)
		}
		ws[i] = w
	}
	for i := 0; i < 10; i++ {
		tx, err := cluster.Pay(ws[0], ws[1].Address(), zlb.Amount(100+i))
		if err != nil {
			t.Fatal(err)
		}
		cluster.Submit(tx)
	}
	cluster.Start()
	cluster.RunUntilQuiet(5 * time.Minute)
	return cluster, cfg, ws
}

// TestPersistedClusterRecoverChain is the durable-store integration
// test at the public API: a cluster runs with DataDir set, shuts down,
// and RecoverChain reads every replica's chain and UTXO state back from
// disk — digests, balances and deposit identical to the live run.
func TestPersistedClusterRecoverChain(t *testing.T) {
	dir := t.TempDir()
	cluster, cfg, ws := runPersistedScenario(t, dir, 0)

	liveDigests := cluster.BlockDigests()
	if len(liveDigests) == 0 {
		t.Fatal("no blocks committed")
	}
	liveDeposit := cluster.Deposit()
	var liveBalances [3]zlb.Amount
	for i := range ws {
		liveBalances[i] = cluster.Balance(ws[i].Address())
	}
	if err := cluster.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	for _, id := range cluster.Members() {
		rec, err := zlb.RecoverChain(cfg, id)
		if err != nil {
			t.Fatalf("recover replica %v: %v", id, err)
		}
		if len(rec.Digests) != len(liveDigests) {
			t.Fatalf("replica %v recovered %d blocks, want %d", id, len(rec.Digests), len(liveDigests))
		}
		for k, d := range liveDigests {
			if rec.Digests[k] != d {
				t.Errorf("replica %v block %d digest mismatch", id, k)
			}
		}
		if rec.Deposit != liveDeposit {
			t.Errorf("replica %v deposit %d, want %d", id, rec.Deposit, liveDeposit)
		}
		for i := range ws {
			if got := rec.Balance(ws[i].Address()); got != liveBalances[i] {
				t.Errorf("replica %v wallet %d balance %d, want %d", id, i, got, liveBalances[i])
			}
		}
	}
}

// TestPersistedClusterCheckpointRecovery forces a checkpoint after every
// block: recovery then starts from the snapshot (pruned bodies) instead
// of replaying the full log, and must land on the identical state.
func TestPersistedClusterCheckpointRecovery(t *testing.T) {
	dir := t.TempDir()
	cluster, cfg, ws := runPersistedScenario(t, dir, 1)
	liveDigests := cluster.BlockDigests()
	liveBalance := cluster.Balance(ws[1].Address())
	if err := cluster.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	id := cluster.Members()[0]
	rec, err := zlb.RecoverChain(cfg, id)
	if err != nil {
		t.Fatal(err)
	}
	for k, d := range liveDigests {
		if rec.Digests[k] != d {
			t.Errorf("block %d digest mismatch after checkpointed recovery", k)
		}
	}
	if got := rec.Balance(ws[1].Address()); got != liveBalance {
		t.Errorf("recovered balance %d, want %d", got, liveBalance)
	}
}

// TestNewClusterRefusesUsedDataDir pins that a data directory already
// holding a chain cannot be reused by a fresh cluster: the new run
// would interleave a second chain into the same log.
func TestNewClusterRefusesUsedDataDir(t *testing.T) {
	dir := t.TempDir()
	cluster, cfg, _ := runPersistedScenario(t, dir, 0)
	if err := cluster.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := zlb.NewCluster(cfg); err == nil {
		t.Fatal("NewCluster accepted a data dir that already holds a chain")
	}
}
