package zlb_test

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"testing"
	"time"

	"github.com/zeroloss/zlb"
	"github.com/zeroloss/zlb/internal/bench"
	"github.com/zeroloss/zlb/internal/harness"
	"github.com/zeroloss/zlb/internal/load"
	"github.com/zeroloss/zlb/internal/obs"
	"github.com/zeroloss/zlb/internal/pipeline"
	"github.com/zeroloss/zlb/internal/scenario"
)

var updateGoldens = flag.Bool("update", false, "rewrite the scenario golden files under testdata/")

// runDeterminismScenario drives the fixed-seed workload the golden values
// below were captured from: every transaction is submitted before Start,
// so the block assignment does not depend on payload encoding size and
// the digests are stable across codec changes.
func runDeterminismScenario(t *testing.T) (*zlb.Cluster, [3]*zlb.Wallet) {
	t.Helper()
	cluster, err := zlb.NewCluster(zlb.Config{N: 7, Seed: 42, WalletCount: 3})
	if err != nil {
		t.Fatal(err)
	}
	var ws [3]*zlb.Wallet
	for i := range ws {
		w, err := cluster.WalletFor(i)
		if err != nil {
			t.Fatal(err)
		}
		ws[i] = w
	}
	for i := 0; i < 10; i++ {
		tx, err := cluster.Pay(ws[0], ws[1].Address(), zlb.Amount(100+i))
		if err != nil {
			t.Fatal(err)
		}
		cluster.Submit(tx)
	}
	tx, err := cluster.Pay(ws[1], ws[2].Address(), 555)
	if err != nil {
		t.Fatal(err)
	}
	cluster.Submit(tx)
	cluster.Start()
	cluster.RunUntilQuiet(5 * time.Minute)
	return cluster, ws
}

// TestFixedSeedBlockDigestGolden pins the exact block digest of the
// fixed-seed run. The golden value was captured from the seed tree's
// gob-based codec; the binary wire codec must reproduce it bit for bit
// (same transactions, same IDs, same deterministic union order).
func TestFixedSeedBlockDigestGolden(t *testing.T) {
	const goldenBlock1 = "4906d67bf63200d827133a7e75ce3e27f5855d3fab44bfe9af9cdb07cacd200e"

	cluster, ws := runDeterminismScenario(t)
	if got := cluster.Height(); got != 1 {
		t.Fatalf("height %d, want 1", got)
	}
	digests := cluster.BlockDigests()
	d, ok := digests[1]
	if !ok {
		t.Fatalf("no block at index 1 (got %v)", digests)
	}
	if d.Hex() != goldenBlock1 {
		t.Errorf("block 1 digest %s, want golden %s", d.Hex(), goldenBlock1)
	}

	// Golden application state: only the first of the ten conflicting
	// w0 payments applies; w1's payment to w2 applies on top.
	wantBalances := [3]zlb.Amount{999_900, 999_545, 1_000_555}
	for i, want := range wantBalances {
		if got := cluster.Balance(ws[i].Address()); got != want {
			t.Errorf("wallet %d balance %d, want %d", i, got, want)
		}
	}
	if got := cluster.Deposit(); got != 900_004 {
		t.Errorf("deposit %d, want 900004", got)
	}
}

// TestFixedSeedRunsIdentical asserts two runs with identical seeds
// produce byte-identical block digests — the reproducibility contract the
// benchmarks and the paper's evaluation rely on.
func TestFixedSeedRunsIdentical(t *testing.T) {
	a, _ := runDeterminismScenario(t)
	b, _ := runDeterminismScenario(t)
	da, db := a.BlockDigests(), b.BlockDigests()
	if len(da) != len(db) {
		t.Fatalf("run lengths differ: %d vs %d blocks", len(da), len(db))
	}
	for k, d := range da {
		if db[k] != d {
			t.Errorf("block %d: %v vs %v", k, d, db[k])
		}
	}
	if a.Now() != b.Now() {
		t.Errorf("virtual clocks differ: %v vs %v", a.Now(), b.Now())
	}
}

// TestScenarioGoldens pins, for every registered scenario campaign, the
// fixed-seed per-phase metrics (throughput, disagreements,
// detection/exclusion/inclusion times) at n=9, seed 42. Each campaign is
// run twice: the two runs must be bit-identical (the scenario engine's
// reproducibility contract) and must match the golden file under
// testdata/scenario_goldens/. Regenerate the goldens after an intended
// metric change with `go test -run TestScenarioGoldens -update`.
func TestScenarioGoldens(t *testing.T) {
	for _, name := range scenario.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			run := func() string {
				s, err := scenario.Build(name, 9, 42)
				if err != nil {
					t.Fatal(err)
				}
				res, err := scenario.Run(s)
				if err != nil {
					t.Fatal(err)
				}
				return res.Format()
			}
			first, second := run(), run()
			if first != second {
				t.Fatalf("two fixed-seed runs differ:\n--- run 1\n%s--- run 2\n%s", first, second)
			}
			goldenPath := filepath.Join("testdata", "scenario_goldens", name+".golden")
			if *updateGoldens {
				if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(goldenPath, []byte(first), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(goldenPath)
			if err != nil {
				t.Fatalf("missing golden (run with -update to create): %v", err)
			}
			if first != string(want) {
				t.Errorf("per-phase metrics diverged from golden:\n--- got\n%s--- want\n%s", first, want)
			}
		})
	}
}

// runLoadCampaign executes one registered open-loop campaign at n=9,
// seed 42 and returns its formatted report, optionally forcing the
// sequential simulation loop on every variant.
func runLoadCampaign(t *testing.T, name string, seqSim bool) string {
	t.Helper()
	c, err := load.BuildCampaign(name, 9, 42)
	if err != nil {
		t.Fatal(err)
	}
	for i := range c.Variants {
		c.Variants[i].Config.SequentialSim = seqSim
	}
	res, err := load.RunCampaign(c)
	if err != nil {
		t.Fatal(err)
	}
	return res.Format()
}

// TestLoadGoldens pins, for every registered open-loop load campaign,
// the fixed-seed latency-percentile report at n=9, seed 42: per-phase
// p50/p99/p999 per class, admission verdict counts, chain height and
// pool occupancy. Each campaign runs twice: the runs must be
// bit-identical and match the golden under testdata/scenario_goldens/.
// Regenerate after an intended change with
// `go test -run TestLoadGoldens -update`.
func TestLoadGoldens(t *testing.T) {
	for _, name := range load.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			first := runLoadCampaign(t, name, false)
			second := runLoadCampaign(t, name, false)
			if first != second {
				t.Fatalf("two fixed-seed runs differ:\n--- run 1\n%s--- run 2\n%s", first, second)
			}
			goldenPath := filepath.Join("testdata", "scenario_goldens", "load-"+name+".golden")
			if *updateGoldens {
				if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(goldenPath, []byte(first), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(goldenPath)
			if err != nil {
				t.Fatalf("missing golden (run with -update to create): %v", err)
			}
			if first != string(want) {
				t.Errorf("latency report diverged from golden:\n--- got\n%s--- want\n%s", first, want)
			}
		})
	}
}

// runPipelineScenario is runDeterminismScenario with an explicit commit
// mode; it returns the chain digests, the final virtual clock and the
// three wallet balances — everything the pipeline must leave untouched.
func runPipelineScenario(t *testing.T, sequential bool) (map[uint64]zlb.Digest, time.Duration, [3]zlb.Amount) {
	t.Helper()
	cluster, err := zlb.NewCluster(zlb.Config{N: 7, Seed: 42, WalletCount: 3, SequentialCommit: sequential})
	if err != nil {
		t.Fatal(err)
	}
	var ws [3]*zlb.Wallet
	for i := range ws {
		w, err := cluster.WalletFor(i)
		if err != nil {
			t.Fatal(err)
		}
		ws[i] = w
	}
	for i := 0; i < 10; i++ {
		tx, err := cluster.Pay(ws[0], ws[1].Address(), zlb.Amount(100+i))
		if err != nil {
			t.Fatal(err)
		}
		cluster.Submit(tx)
	}
	cluster.Start()
	cluster.RunUntilQuiet(5 * time.Minute)
	var balances [3]zlb.Amount
	for i := range ws {
		balances[i] = cluster.Balance(ws[i].Address())
	}
	return cluster.BlockDigests(), cluster.Now(), balances
}

// TestPipelineModesBitIdentical is the commit pipeline's determinism
// contract: the parallel pipeline under GOMAXPROCS=1, the parallel
// pipeline under GOMAXPROCS=4 and the forced-sequential mode
// (Config.SequentialCommit) must produce identical chain digests,
// identical virtual clocks and identical balances. The worker pool only
// computes pure verdicts, so scheduling must never leak into results.
func TestPipelineModesBitIdentical(t *testing.T) {
	// Force a multi-worker pool before anything touches it: the shared
	// pool is sized at first use, and on a single-core host (or if the
	// sequential reference ran first) it would otherwise degenerate to
	// one worker and the GOMAXPROCS subtests below would not exercise
	// concurrent fan-in at all. If another test already created the pool
	// its width is fixed, but on CI (multi-core) GOMAXPROCS is >1 from
	// process start, so the pool is multi-worker regardless of ordering.
	prev := runtime.GOMAXPROCS(4)
	pipeline.Shared()
	runtime.GOMAXPROCS(prev)

	refDigests, refNow, refBal := runPipelineScenario(t, true)
	if len(refDigests) == 0 {
		t.Fatal("sequential run committed no blocks")
	}
	modes := []struct {
		name     string
		maxprocs int
	}{
		{"parallel/GOMAXPROCS=1", 1},
		{"parallel/GOMAXPROCS=4", 4},
	}
	for _, m := range modes {
		t.Run(m.name, func(t *testing.T) {
			prev := runtime.GOMAXPROCS(m.maxprocs)
			defer runtime.GOMAXPROCS(prev)
			digests, now, bal := runPipelineScenario(t, false)
			if len(digests) != len(refDigests) {
				t.Fatalf("chain length %d, want %d", len(digests), len(refDigests))
			}
			for k, d := range refDigests {
				if digests[k] != d {
					t.Errorf("block %d digest %v, want %v", k, digests[k], d)
				}
			}
			if now != refNow {
				t.Errorf("virtual clock %v, want %v", now, refNow)
			}
			if bal != refBal {
				t.Errorf("balances %v, want %v", bal, refBal)
			}
		})
	}
}

// TestScenarioGoldenSequentialMode re-runs one registered campaign with
// the pipeline forced off and pins its per-phase metrics to the same
// golden the parallel run satisfies: fault campaigns (attacks, merges,
// membership changes) must be pipeline-invariant too.
func TestScenarioGoldenSequentialMode(t *testing.T) {
	const name = "attack-detect-exclude-merge"
	s, err := scenario.Build(name, 9, 42)
	if err != nil {
		t.Fatal(err)
	}
	s.Opts.Sequential = true
	res, err := scenario.Run(s)
	if err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile(filepath.Join("testdata", "scenario_goldens", name+".golden"))
	if err != nil {
		t.Fatalf("missing golden: %v", err)
	}
	if res.Format() != string(want) {
		t.Errorf("sequential-mode metrics diverged from golden:\n--- got\n%s--- want\n%s", res.Format(), want)
	}
}

// widenSharedPool forces a multi-worker shared pool before anything
// sizes it, so the parallel-simnet subtests below exercise real
// concurrency even on a single-core host (see the comment in
// TestPipelineModesBitIdentical).
func widenSharedPool() {
	prev := runtime.GOMAXPROCS(4)
	pipeline.Shared()
	runtime.GOMAXPROCS(prev)
}

// fig3Fingerprint runs the fig3 ZLB point at n=30 on a directly built
// harness cluster and returns everything the parallel simulator must
// leave untouched: committed instances, throughput, disagreements, the
// final virtual clock, the simulator event/byte counters and the full
// chain digests of every honest replica.
func fig3Fingerprint(t *testing.T, seqSim bool) string {
	t.Helper()
	opts := bench.ZLBFig3Options(30, 2, 42)
	opts.SequentialSim = seqSim
	c, err := harness.New(opts)
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	c.RunUntilQuiet(30 * time.Minute)
	if c.Exhausted() {
		t.Fatal("fig3 run exhausted its event budget")
	}
	out := fmt.Sprintf("committed=%d tput=%.6f disagreements=%d clock=%d delivered=%d dropped=%d bytes=%d\n",
		c.CommittedInstances(), c.Throughput(), c.Disagreements(), c.Net.Now(),
		c.Net.Delivered, c.Net.Dropped, c.Net.BytesSent)
	for _, id := range c.HonestMembers() {
		digests := c.Replicas[id].ChainDigests()
		ks := make([]uint64, 0, len(digests))
		for k := range digests {
			ks = append(ks, k)
		}
		sort.Slice(ks, func(i, j int) bool { return ks[i] < ks[j] })
		out += fmt.Sprintf("r%d:", id)
		for _, k := range ks {
			out += fmt.Sprintf(" %d=%s", k, digests[k].Hex())
		}
		out += "\n"
	}
	return out
}

// TestParallelSimnetBitIdentical is the parallel simulator's determinism
// contract at the system level: every registered scenario campaign,
// every registered open-loop load campaign and the fig3 ZLB point at
// n=30 must produce bit-identical goldens, final
// clocks, event counts and chain digests under the sequential loop
// (SequentialSim) and under conservative parallel windows at
// GOMAXPROCS=1 and GOMAXPROCS=4. The nightly workflow re-runs it under
// the race detector.
func TestParallelSimnetBitIdentical(t *testing.T) {
	widenSharedPool()
	modes := []struct {
		name     string
		seqSim   bool
		maxprocs int
	}{
		{"sequential-sim", true, 0},
		{"parallel/GOMAXPROCS=1", false, 1},
		{"parallel/GOMAXPROCS=4", false, 4},
	}
	runMode := func(t *testing.T, maxprocs int, fn func() string) string {
		if maxprocs > 0 {
			prev := runtime.GOMAXPROCS(maxprocs)
			defer runtime.GOMAXPROCS(prev)
		}
		_ = t
		return fn()
	}
	for _, name := range scenario.Names() {
		name := name
		t.Run("scenario/"+name, func(t *testing.T) {
			var ref string
			for i, m := range modes {
				got := runMode(t, m.maxprocs, func() string {
					s, err := scenario.Build(name, 9, 42)
					if err != nil {
						t.Fatal(err)
					}
					s.Opts.SequentialSim = m.seqSim
					res, err := scenario.Run(s)
					if err != nil {
						t.Fatal(err)
					}
					return res.Format()
				})
				if i == 0 {
					ref = got
					continue
				}
				if got != ref {
					t.Errorf("%s diverged from %s:\n--- got\n%s--- want\n%s", m.name, modes[0].name, got, ref)
				}
			}
		})
	}
	for _, name := range load.Names() {
		name := name
		t.Run("load/"+name, func(t *testing.T) {
			var ref string
			for i, m := range modes {
				got := runMode(t, m.maxprocs, func() string { return runLoadCampaign(t, name, m.seqSim) })
				if i == 0 {
					ref = got
					continue
				}
				if got != ref {
					t.Errorf("%s diverged from %s:\n--- got\n%s--- want\n%s", m.name, modes[0].name, got, ref)
				}
			}
		})
	}
	t.Run("fig3/ZLB/n=30", func(t *testing.T) {
		if testing.Short() {
			t.Skip("skipping fig3 point in -short mode")
		}
		var ref string
		for i, m := range modes {
			got := runMode(t, m.maxprocs, func() string { return fig3Fingerprint(t, m.seqSim) })
			if i == 0 {
				ref = got
				continue
			}
			if got != ref {
				t.Errorf("%s diverged from %s:\n--- got\n%s--- want\n%s", m.name, modes[0].name, got, ref)
			}
		}
	})
	// Trace-digest pin: with tracing enabled, the merged obs event stream
	// of a full accountability campaign (fork, detection, exclusion,
	// merge) must be bit-identical across all three execution modes AND
	// match the golden digest — the internal/obs determinism contract at
	// the system level. Tracing must not force the sequential fallback:
	// the parallel modes run through conservative windows like any other
	// run.
	t.Run("trace/attack-detect-exclude-merge", func(t *testing.T) {
		const name = "attack-detect-exclude-merge"
		var ref string
		for i, m := range modes {
			got := runMode(t, m.maxprocs, func() string {
				s, err := scenario.Build(name, 9, 42)
				if err != nil {
					t.Fatal(err)
				}
				s.Opts.SequentialSim = m.seqSim
				s.Opts.Tracer = obs.NewTracer()
				if _, err := scenario.Run(s); err != nil {
					t.Fatal(err)
				}
				if s.Opts.Tracer.Len() == 0 {
					t.Fatal("traced scenario recorded no events")
				}
				return s.Opts.Tracer.Digest()
			})
			if i == 0 {
				ref = got
				continue
			}
			if got != ref {
				t.Errorf("%s trace digest %s, want %s (%s)", m.name, got, ref, modes[0].name)
			}
		}
		goldenPath := filepath.Join("testdata", "scenario_goldens", "trace-"+name+".digest")
		if *updateGoldens {
			if err := os.WriteFile(goldenPath, []byte(ref+"\n"), 0o644); err != nil {
				t.Fatal(err)
			}
			return
		}
		want, err := os.ReadFile(goldenPath)
		if err != nil {
			t.Fatalf("reading golden (run with -update to regenerate): %v", err)
		}
		if ref+"\n" != string(want) {
			t.Errorf("trace digest %s does not match golden %s", ref, string(want))
		}
	})
}

// TestNewWalletKeepsDeposits regression-tests the Cluster.NewWallet fix:
// rebuilding the per-node ledgers for the extra genesis allocation must
// re-apply the staked deposits, or the slash pool starts empty and
// merges after a fork silently underfund.
func TestNewWalletKeepsDeposits(t *testing.T) {
	cluster, err := zlb.NewCluster(zlb.Config{N: 4, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	before := cluster.Deposit()
	if before == 0 {
		t.Fatal("cluster starts with an empty deposit pool")
	}
	w, err := cluster.NewWallet(12_345)
	if err != nil {
		t.Fatal(err)
	}
	if got := cluster.Deposit(); got != before {
		t.Errorf("deposit pool after NewWallet %d, want %d", got, before)
	}
	if got := cluster.Balance(w.Address()); got != 12_345 {
		t.Errorf("new wallet balance %d, want 12345", got)
	}
}
