// Command docscheck is the CI docs gate: it fails when a Go package in
// this repository is missing a package doc comment, or when a core
// internal package is missing its README.md. Run it from the repository
// root (CI does) or pass the root as the first argument.
//
//	go run ./tools/docscheck
package main

import (
	"fmt"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
)

// readmeRequired lists the core internal packages that must carry a
// README.md mapping them to the paper (see ARCHITECTURE.md).
var readmeRequired = []string{
	"internal/asmr",
	"internal/sbc",
	"internal/rbc",
	"internal/bincon",
	"internal/accountability",
	"internal/adversary",
	"internal/crypto",
	"internal/harness",
	"internal/simnet",
	"internal/scenario",
	"internal/store",
	"internal/pipeline",
	"internal/conformance",
	"internal/mempool",
	"internal/load",
	"internal/obs",
	"internal/transport",
	"internal/chaos",
}

func main() {
	root := "."
	if len(os.Args) > 1 {
		root = os.Args[1]
	}
	var problems []string

	for _, rel := range readmeRequired {
		if _, err := os.Stat(filepath.Join(root, rel, "README.md")); err != nil {
			problems = append(problems, fmt.Sprintf("%s: missing README.md", rel))
		}
	}

	pkgDirs, err := goPackageDirs(root)
	if err != nil {
		fmt.Fprintf(os.Stderr, "docscheck: %v\n", err)
		os.Exit(2)
	}
	for _, dir := range pkgDirs {
		ok, err := hasPackageDoc(dir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "docscheck: %v\n", err)
			os.Exit(2)
		}
		if !ok {
			rel, _ := filepath.Rel(root, dir)
			problems = append(problems, fmt.Sprintf("%s: missing package doc comment", rel))
		}
	}

	if len(problems) > 0 {
		for _, p := range problems {
			fmt.Fprintln(os.Stderr, "docscheck:", p)
		}
		os.Exit(1)
	}
	fmt.Printf("docscheck: %d packages documented, %d READMEs present\n",
		len(pkgDirs), len(readmeRequired))
}

// goPackageDirs returns every directory under root holding non-test Go
// files, skipping hidden directories and testdata.
func goPackageDirs(root string) ([]string, error) {
	seen := make(map[string]bool)
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != root && (strings.HasPrefix(name, ".") || name == "testdata") {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(d.Name(), ".go") || strings.HasSuffix(d.Name(), "_test.go") {
			return nil
		}
		dir := filepath.Dir(path)
		if !seen[dir] {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
		return nil
	})
	return dirs, err
}

// hasPackageDoc reports whether any non-test Go file in dir carries a
// package doc comment.
func hasPackageDoc(dir string) (bool, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false, err
	}
	fset := token.NewFileSet()
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") || strings.HasSuffix(e.Name(), "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments|parser.PackageClauseOnly)
		if err != nil {
			return false, err
		}
		if f.Doc != nil && len(strings.TrimSpace(f.Doc.Text())) > 0 {
			return true, nil
		}
	}
	return false, nil
}
