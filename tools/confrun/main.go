// Command confrun runs every registered conformance campaign at a given
// committee size and seed and fails on any invariant violation. It is
// the nightly seed-matrix driver: CI loops it over a fixed set of seeds,
// and a failing seed reproduces identically anywhere with
//
//	go run ./tools/confrun -n 9 -seed <seed>
//
// Use -campaign to run a single campaign, e.g. while minimizing a
// failure the fuzzer found.
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/zeroloss/zlb/internal/conformance"
)

func main() {
	n := flag.Int("n", 9, "committee size")
	seed := flag.Int64("seed", 42, "cluster seed")
	campaign := flag.String("campaign", "", "run only this campaign (default: all)")
	flag.Parse()

	names := conformance.Names()
	if *campaign != "" {
		names = []string{*campaign}
	}

	failed := false
	for _, name := range names {
		res, err := conformance.Run(name, *n, *seed)
		if err != nil {
			fmt.Fprintf(os.Stderr, "confrun: %s n=%d seed=%d: %v\n", name, *n, *seed, err)
			failed = true
			continue
		}
		fmt.Print(res.Format())
		if len(res.Violations) > 0 {
			failed = true
		}
	}
	if failed {
		os.Exit(1)
	}
}
