// Command tracelat turns a deterministic consensus trace (the JSONL
// stream zlb-bench -trace-out writes, internal/obs format) into a
// per-phase latency breakdown: for every run header in the stream it
// prints nearest-rank p50/p99 virtual-time latencies of the transaction
// lifecycle phases.
//
//	zlb-bench -experiment fig3 -ns 9,18 -trace-out trace.jsonl
//	tracelat trace.jsonl        # or: tracelat < trace.jsonl
//
// Phases (all samples are virtual durations, per (instance, slot) or
// (instance, node) pair):
//
//	rbc     reliable broadcast: proposal delivery at each replica minus
//	        the broadcaster's rbc_init
//	bincon  binary consensus: per-slot decision minus that replica's
//	        proposal delivery for the slot
//	cert    superblock assembly: sbc_decide minus the replica's last
//	        per-slot binary decision of the instance
//	commit  application commit: commit minus sbc_decide at the replica
//	e2e     batch_propose (earliest across replicas) to commit
package main

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"sort"
	"time"

	"github.com/zeroloss/zlb/internal/asmr"
	"github.com/zeroloss/zlb/internal/obs"
	"github.com/zeroloss/zlb/internal/types"
)

func main() {
	in := io.Reader(os.Stdin)
	if len(os.Args) > 1 {
		f, err := os.Open(os.Args[1])
		if err != nil {
			fmt.Fprintf(os.Stderr, "tracelat: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		in = f
	}
	if err := analyze(in, os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "tracelat: %v\n", err)
		os.Exit(1)
	}
}

// run is one header's worth of events.
type run struct {
	header obs.RunHeader
	events []obs.Event
}

func analyze(in io.Reader, out io.Writer) error {
	runs, err := readRuns(in)
	if err != nil {
		return err
	}
	if len(runs) == 0 {
		return fmt.Errorf("no run headers in input (is this a -trace-out file?)")
	}
	for i, r := range runs {
		if i > 0 {
			fmt.Fprintln(out)
		}
		printBreakdown(out, r)
	}
	return nil
}

func readRuns(in io.Reader) ([]*run, error) {
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	var runs []*run
	var cur *run
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		header, ev, err := obs.ParseJSONLLine(raw)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", line, err)
		}
		if header != nil {
			cur = &run{header: *header}
			runs = append(runs, cur)
			continue
		}
		if cur == nil {
			return nil, fmt.Errorf("line %d: event before any run header", line)
		}
		cur.events = append(cur.events, ev)
	}
	return runs, sc.Err()
}

// kSlotNode keys a per-(instance, slot, replica) sample; node 0 (never a
// replica ID) collapses the key to per-(instance, slot).
type kSlotNode struct {
	k    uint64
	slot uint32
	node types.ReplicaID
}

// logicalK maps an event's K to the logical chain instance: consensus
// sub-protocol phases carry the asmr wire instance (k<<10|attempt),
// application-level phases carry k directly.
func logicalK(ev obs.Event) uint64 {
	switch ev.Phase {
	case obs.PhaseRBCInit, obs.PhaseRBCDeliver, obs.PhaseBinRound,
		obs.PhaseBinDecide, obs.PhaseSBCDecide:
		k, _ := asmr.SplitInstance(types.Instance(ev.K))
		return k
	default:
		return ev.K
	}
}

func printBreakdown(out io.Writer, r *run) {
	// First-occurrence indexes per phase. Later duplicates (a re-recorded
	// phase after a restart) keep the first timestamp, matching the
	// happy-path lifecycle the breakdown measures.
	rbcInit := map[kSlotNode]time.Duration{}    // broadcaster's init per (k, slot)
	rbcDeliver := map[kSlotNode]time.Duration{} // delivery per (k, slot, node)
	binDecide := map[kSlotNode]time.Duration{}  // decision per (k, slot, node)
	lastBin := map[kSlotNode]time.Duration{}    // last bincon_decide per (k, node)
	sbcDecide := map[kSlotNode]time.Duration{}  // per (k, node)
	commitAt := map[kSlotNode]time.Duration{}   // per (k, node)
	proposeAt := map[uint64]time.Duration{}     // earliest batch_propose per k

	first := func(m map[kSlotNode]time.Duration, key kSlotNode, at time.Duration) {
		if _, ok := m[key]; !ok {
			m[key] = at
		}
	}
	for _, ev := range r.events {
		k := logicalK(ev)
		switch ev.Phase {
		case obs.PhaseRBCInit:
			// The broadcaster records its own init; Slot carries the
			// broadcaster ID, which must match the recording node.
			if types.ReplicaID(ev.Slot) == ev.Node {
				first(rbcInit, kSlotNode{k: k, slot: ev.Slot}, ev.At)
			}
		case obs.PhaseRBCDeliver:
			first(rbcDeliver, kSlotNode{k: k, slot: ev.Slot, node: ev.Node}, ev.At)
		case obs.PhaseBinDecide:
			first(binDecide, kSlotNode{k: k, slot: ev.Slot, node: ev.Node}, ev.At)
			kn := kSlotNode{k: k, node: ev.Node}
			if ev.At > lastBin[kn] {
				lastBin[kn] = ev.At
			}
		case obs.PhaseSBCDecide:
			first(sbcDecide, kSlotNode{k: k, node: ev.Node}, ev.At)
		case obs.PhaseCommit:
			first(commitAt, kSlotNode{k: k, node: ev.Node}, ev.At)
		case obs.PhaseBatchPropose:
			if at, ok := proposeAt[k]; !ok || ev.At < at {
				proposeAt[k] = ev.At
			}
		}
	}

	var rbc, bincon, cert, commit, e2e []time.Duration
	for key, at := range rbcDeliver {
		if init, ok := rbcInit[kSlotNode{k: key.k, slot: key.slot}]; ok && at >= init {
			rbc = append(rbc, at-init)
		}
		if dec, ok := binDecide[key]; ok && dec >= at {
			bincon = append(bincon, dec-at)
		}
	}
	for kn, at := range sbcDecide {
		if last, ok := lastBin[kn]; ok && at >= last {
			cert = append(cert, at-last)
		}
		if cm, ok := commitAt[kn]; ok && cm >= at {
			commit = append(commit, cm-at)
		}
	}
	for kn, cm := range commitAt {
		if prop, ok := proposeAt[kn.k]; ok && cm >= prop {
			e2e = append(e2e, cm-prop)
		}
	}

	h := r.header
	sys := h.System
	if sys == "" {
		sys = "-"
	}
	fmt.Fprintf(out, "# latency breakdown: experiment=%s system=%s n=%d seed=%d events=%d\n",
		h.Experiment, sys, h.N, h.Seed, len(r.events))
	fmt.Fprintf(out, "%-8s %8s %12s %12s\n", "phase", "samples", "p50", "p99")
	for _, row := range []struct {
		name    string
		samples []time.Duration
	}{
		{"rbc", rbc}, {"bincon", bincon}, {"cert", cert}, {"commit", commit}, {"e2e", e2e},
	} {
		p50, p99 := percentiles(row.samples)
		if len(row.samples) == 0 {
			fmt.Fprintf(out, "%-8s %8d %12s %12s\n", row.name, 0, "-", "-")
			continue
		}
		fmt.Fprintf(out, "%-8s %8d %12s %12s\n", row.name, len(row.samples), fmtDur(p50), fmtDur(p99))
	}
}

// percentiles returns nearest-rank p50/p99 (0 on empty input).
func percentiles(ds []time.Duration) (p50, p99 time.Duration) {
	if len(ds) == 0 {
		return 0, 0
	}
	sorted := append([]time.Duration(nil), ds...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	rank := func(q float64) time.Duration {
		i := int(q*float64(len(sorted))+0.5) - 1
		if i < 0 {
			i = 0
		}
		if i >= len(sorted) {
			i = len(sorted) - 1
		}
		return sorted[i]
	}
	return rank(0.50), rank(0.99)
}

func fmtDur(d time.Duration) string {
	return fmt.Sprintf("%.1fms", float64(d)/float64(time.Millisecond))
}
