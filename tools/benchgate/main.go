// Command benchgate is the CI perf-regression gate: it compares a fresh
// BENCH_fig3.json (produced by `zlb-bench -experiment fig3 -json <dir>`)
// against the committed baseline in testdata/bench_baseline.json and
// fails when any (system, committee size) point lost more than -max-drop
// of its decision throughput. Throughput here is a virtual-time metric —
// deterministic for a fixed seed and independent of the CI runner's
// speed — so the gate has no flakiness budget: any drop is a real
// protocol or commit-path regression.
//
//	go run ./tools/benchgate -current out/BENCH_fig3.json \
//	    -baseline testdata/bench_baseline.json
//
// A delta table is printed to stdout and, when -summary is set (CI passes
// $GITHUB_STEP_SUMMARY), appended there as Markdown.
//
// Refreshing the baseline after an intended change:
//
//	go run ./cmd/zlb-bench -experiment fig3 -seed 42 -json out
//	go run ./tools/benchgate -current out/BENCH_fig3.json \
//	    -baseline testdata/bench_baseline.json -update
//
// and commit the updated testdata/bench_baseline.json (the PR diff then
// shows the intended throughput change for review).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"github.com/zeroloss/zlb/internal/bench"
)

func main() {
	current := flag.String("current", "", "freshly generated BENCH_fig3.json")
	baseline := flag.String("baseline", "testdata/bench_baseline.json", "committed baseline report")
	maxDrop := flag.Float64("max-drop", 0.20, "maximum tolerated fractional throughput drop per point")
	summary := flag.String("summary", "", "file to append the Markdown delta table to (e.g. $GITHUB_STEP_SUMMARY)")
	update := flag.Bool("update", false, "overwrite the baseline with the current report instead of gating")
	flag.Parse()

	if *current == "" {
		flag.Usage()
		os.Exit(2)
	}
	if *update {
		if err := copyFile(*current, *baseline); err != nil {
			fatal(err)
		}
		fmt.Printf("baseline refreshed: %s -> %s\n", *current, *baseline)
		return
	}
	cur, err := readPoints(*current)
	if err != nil {
		fatal(err)
	}
	base, err := readPoints(*baseline)
	if err != nil {
		fatal(err)
	}
	table, failures := compare(base, cur, *maxDrop)
	fmt.Print(table)
	if *summary != "" {
		f, err := os.OpenFile(*summary, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(f, "## Perf gate (fig3, max drop %.0f%%)\n\n%s\n", *maxDrop*100, table)
		f.Close()
	}
	if len(failures) > 0 {
		fmt.Fprintf(os.Stderr, "benchgate: %d point(s) regressed beyond %.0f%%:\n", len(failures), *maxDrop*100)
		for _, f := range failures {
			fmt.Fprintf(os.Stderr, "  %s\n", f)
		}
		os.Exit(1)
	}
	fmt.Println("benchgate: all points within budget")
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
	os.Exit(1)
}

// pointKey identifies one Fig3 point across reports.
type pointKey struct {
	System bench.System
	N      int
}

func readPoints(path string) (map[pointKey]bench.Fig3Point, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var report struct {
		Experiment string            `json:"experiment"`
		Data       []bench.Fig3Point `json:"data"`
	}
	if err := json.Unmarshal(raw, &report); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if report.Experiment != "fig3" {
		return nil, fmt.Errorf("%s: experiment %q, want fig3", path, report.Experiment)
	}
	out := make(map[pointKey]bench.Fig3Point, len(report.Data))
	for _, p := range report.Data {
		out[pointKey{System: p.System, N: p.N}] = p
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("%s: no data points", path)
	}
	return out, nil
}

// compare renders the Markdown delta table and collects gate failures.
// Every baseline point must exist in the current report: a silently
// dropped point would otherwise pass the gate.
func compare(base, cur map[pointKey]bench.Fig3Point, maxDrop float64) (string, []string) {
	keys := make([]pointKey, 0, len(base))
	for k := range base {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].System != keys[j].System {
			return keys[i].System < keys[j].System
		}
		return keys[i].N < keys[j].N
	})
	var b strings.Builder
	var failures []string
	// The wall-clock column is informational only: elapsed time depends
	// on the runner, GOMAXPROCS and the simulation mode, so it never
	// gates. Virtual tx/s is the deterministic, runner-speed-proof metric
	// the gate compares. The commit-gap p50/p99 columns are deterministic
	// virtual-time latencies but informational too: they track tail
	// behavior across PRs without adding a second gate axis.
	b.WriteString("| system | n | baseline tx/s | current tx/s | delta | p50 cur | p99 cur | wall base | wall cur | gate |\n")
	b.WriteString("|---|---|---|---|---|---|---|---|---|---|\n")
	for _, k := range keys {
		bp := base[k]
		cp, ok := cur[k]
		if !ok {
			failures = append(failures, fmt.Sprintf("%s n=%d: missing from current report", k.System, k.N))
			fmt.Fprintf(&b, "| %s | %d | %.0f | missing | — | — | — | %s | — | FAIL |\n",
				k.System, k.N, bp.TxPerSec, wallCell(bp.WallSec))
			continue
		}
		delta := 0.0
		if bp.TxPerSec > 0 {
			delta = (cp.TxPerSec - bp.TxPerSec) / bp.TxPerSec
		}
		verdict := "ok"
		if delta < -maxDrop {
			verdict = "FAIL"
			failures = append(failures, fmt.Sprintf("%s n=%d: %.0f -> %.0f tx/s (%.1f%%)",
				k.System, k.N, bp.TxPerSec, cp.TxPerSec, delta*100))
		}
		fmt.Fprintf(&b, "| %s | %d | %.0f | %.0f | %+.1f%% | %s | %s | %s | %s | %s |\n",
			k.System, k.N, bp.TxPerSec, cp.TxPerSec, delta*100,
			msGateCell(cp.P50Ms), msGateCell(cp.P99Ms),
			wallCell(bp.WallSec), wallCell(cp.WallSec), verdict)
	}
	return b.String(), failures
}

// msGateCell formats an informational commit-gap percentile; reports
// written before the columns existed show a dash.
func msGateCell(ms float64) string {
	if ms <= 0 {
		return "—"
	}
	return fmt.Sprintf("%.0fms", ms)
}

// wallCell formats an informational wall-clock reading; baselines written
// before the column existed show a dash.
func wallCell(sec float64) string {
	if sec <= 0 {
		return "—"
	}
	return fmt.Sprintf("%.2fs", sec)
}

func copyFile(src, dst string) error {
	data, err := os.ReadFile(src)
	if err != nil {
		return err
	}
	return os.WriteFile(dst, data, 0o644)
}
