// Command zlb-bench regenerates the paper's tables and figures on the
// simulated substrate and prints them in the paper's layout. Without
// flags it runs a reduced sweep of every experiment; use -experiment and
// -full to control scope.
//
//	zlb-bench -experiment fig3 -full     # Figure 3 at paper scale (10..90)
//	zlb-bench -experiment fig4top       # binary consensus attack sweep
//	zlb-bench -experiment fig4bottom    # reliable broadcast attack sweep
//	zlb-bench -experiment catastrophic  # §5.3 5s/10s delays
//	zlb-bench -experiment table1        # block merge times
//	zlb-bench -experiment fig5          # detect/exclude/include times
//	zlb-bench -experiment catchup       # Fig. 5 right: catch-up times
//	zlb-bench -experiment fig6          # minimum finalization blockdepth
//	zlb-bench -experiment appendixB     # §B worked analysis
//	zlb-bench -experiment scenarios     # staged multi-phase fault campaigns
//	zlb-bench -experiment load          # open-loop latency-percentile campaigns
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"github.com/zeroloss/zlb/internal/adversary"
	"github.com/zeroloss/zlb/internal/bench"
)

func main() {
	experiment := flag.String("experiment", "all", "which experiment to run (fig3, fig4top, fig4bottom, catastrophic, table1, fig5, catchup, fig6, appendixB, scenarios, load, certs, all)")
	full := flag.Bool("full", false, "paper-scale sweeps (slower)")
	seed := flag.Int64("seed", 42, "simulation seed")
	jsonDir := flag.String("json", "", "also emit machine-readable BENCH_<experiment>.json files into this directory")
	sequential := flag.Bool("sequential", false, "fig3 only: force the commit pipeline off (A/B wall-clock comparisons)")
	sequentialSim := flag.Bool("sequential-sim", false, "fig3 only: force the simulator's sequential event loop instead of parallel windows (A/B wall-clock comparisons; virtual-time metrics are bit-identical)")
	nsFlag := flag.String("ns", "", "fig3 only: comma-separated committee sizes overriding the default sweep")
	traceOut := flag.String("trace-out", "", "fig3 only: write the deterministic consensus trace (JSONL, one run header per point) to this file; analyze with tools/tracelat")
	flag.Parse()

	start := time.Now()
	if err := run(*experiment, *full, *seed, *jsonDir, *sequential, *sequentialSim, *nsFlag, *traceOut); err != nil {
		fmt.Fprintf(os.Stderr, "zlb-bench: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "\n[%v elapsed]\n", time.Since(start).Round(time.Millisecond))
}

func run(experiment string, full bool, seed int64, jsonDir string, sequential, sequentialSim bool, nsFlag, traceOut string) error {
	// emit mirrors an experiment's points into BENCH_<name>.json when
	// -json is set, so the perf trajectory is tracked across PRs.
	emit := func(name string, data any) error {
		if jsonDir == "" {
			return nil
		}
		return bench.WriteJSON(jsonDir, name, seed, full, data)
	}
	ns := []int{10, 20, 30}
	nsAttack := []int{9, 18, 27}
	delays := smallDelays()
	if full {
		ns = []int{10, 20, 30, 40, 50, 60, 70, 80, 90}
		nsAttack = []int{10, 20, 30, 40, 50, 60, 70, 80, 90, 100}
		delays = bench.StandardDelays()
	}

	all := experiment == "all"
	ran := false

	if all || experiment == "fig3" {
		ran = true
		if nsFlag != "" {
			ns = nil
			for _, part := range strings.Split(nsFlag, ",") {
				v, err := strconv.Atoi(strings.TrimSpace(part))
				if err != nil {
					return fmt.Errorf("bad -ns entry %q: %w", part, err)
				}
				ns = append(ns, v)
			}
		}
		cfg := bench.Fig3Config{Ns: ns, Instances: 3, Seed: seed, Sequential: sequential, SequentialSim: sequentialSim}
		if traceOut != "" {
			f, err := os.Create(traceOut)
			if err != nil {
				return fmt.Errorf("trace-out: %w", err)
			}
			defer f.Close()
			w := bufio.NewWriter(f)
			defer w.Flush()
			cfg.TraceSink = w
		}
		points, err := bench.RunFig3(cfg)
		if err != nil {
			return err
		}
		bench.PrintFig3(os.Stdout, points)
		if err := emit("fig3", points); err != nil {
			return err
		}
		fmt.Println()
	}
	if all || experiment == "fig4top" {
		ran = true
		points, err := bench.RunFig4(bench.Fig4Config{
			Ns: nsAttack, Delays: delays, Attack: adversary.AttackBinary, Seed: seed, Instances: 4,
		})
		if err != nil {
			return err
		}
		bench.PrintFig4(os.Stdout, points)
		if err := emit("fig4top", points); err != nil {
			return err
		}
		fmt.Println()
	}
	if all || experiment == "fig4bottom" {
		ran = true
		points, err := bench.RunFig4(bench.Fig4Config{
			Ns: nsAttack, Delays: delays, Attack: adversary.AttackRBCast, Seed: seed, Instances: 4,
		})
		if err != nil {
			return err
		}
		bench.PrintFig4(os.Stdout, points)
		if err := emit("fig4bottom", points); err != nil {
			return err
		}
		fmt.Println()
	}
	if all || experiment == "catastrophic" {
		ran = true
		n := 27
		if full {
			n = 100
		}
		points, err := bench.Catastrophic(n, seed)
		if err != nil {
			return err
		}
		fmt.Printf("# §5.3: catastrophic partition delays, n=%d\n", n)
		bench.PrintFig4(os.Stdout, points)
		if err := emit("catastrophic", points); err != nil {
			return err
		}
		fmt.Println()
	}
	if all || experiment == "table1" {
		ran = true
		rows, err := bench.RunTable1([]int{100, 1000, 10000})
		if err != nil {
			return err
		}
		bench.PrintTable1(os.Stdout, rows)
		if err := emit("table1", rows); err != nil {
			return err
		}
		fmt.Println()
	}
	if all || experiment == "fig5" {
		ran = true
		ns5 := []int{9, 18}
		if full {
			ns5 = []int{20, 60, 100}
		}
		points, err := bench.RunFig5(ns5, delays, seed)
		if err != nil {
			return err
		}
		bench.PrintFig5(os.Stdout, points)
		if err := emit("fig5", points); err != nil {
			return err
		}
		fmt.Println()
	}
	if all || experiment == "catchup" {
		ran = true
		nsCatch := []int{9, 18}
		blocks := []int{5, 10}
		if full {
			nsCatch = []int{20, 40, 60, 80, 100}
			blocks = []int{10, 20, 30}
		}
		points, err := bench.RunCatchup(nsCatch, blocks, seed)
		if err != nil {
			return err
		}
		bench.PrintCatchup(os.Stdout, points)
		if err := emit("catchup", points); err != nil {
			return err
		}
		fmt.Println()
	}
	if all || experiment == "fig6" {
		ran = true
		d500, _ := bench.DelayByName("500ms")
		d1000, _ := bench.DelayByName("1000ms")
		nsFig6 := nsAttack
		points, err := bench.RunFig6(nsFig6, []bench.DelaySpec{d500, d1000},
			[]adversary.Attack{adversary.AttackBinary, adversary.AttackRBCast}, seed)
		if err != nil {
			return err
		}
		bench.PrintFig6(os.Stdout, points)
		if err := emit("fig6", points); err != nil {
			return err
		}
		fmt.Println()
	}
	if all || experiment == "appendixB" {
		ran = true
		rows := bench.RunAppendixB()
		bench.PrintAppendixB(os.Stdout, rows)
		if err := emit("appendixB", rows); err != nil {
			return err
		}
		fmt.Println()
	}
	if all || experiment == "scenarios" {
		ran = true
		nsScen := []int{9, 18}
		if full {
			nsScen = []int{9, 18, 27}
		}
		results, err := bench.RunScenarios(nsScen, seed)
		if err != nil {
			return err
		}
		bench.PrintScenarios(os.Stdout, results)
		if err := emit("scenarios", results); err != nil {
			return err
		}
		fmt.Println()
	}
	if all || experiment == "load" {
		ran = true
		nsLoad := []int{9}
		if full {
			nsLoad = []int{9, 18}
		}
		results, err := bench.RunLoadCampaigns(nsLoad, seed)
		if err != nil {
			return err
		}
		bench.PrintLoad(os.Stdout, results)
		if err := emit("load", results); err != nil {
			return err
		}
		fmt.Println()
	}
	if all || experiment == "certs" {
		ran = true
		nsCerts := []int{9, 18}
		if full {
			nsCerts = []int{9, 18, 90}
		}
		points, err := bench.RunCerts(nsCerts, seed)
		if err != nil {
			return err
		}
		bench.PrintCerts(os.Stdout, points)
		if err := emit("certs", points); err != nil {
			return err
		}
		fmt.Println()
	}
	if !ran {
		return fmt.Errorf("unknown experiment %q", experiment)
	}
	return nil
}

func smallDelays() []bench.DelaySpec {
	var out []bench.DelaySpec
	for _, name := range []string{"500ms", "1000ms", "gamma"} {
		d, err := bench.DelayByName(name)
		if err == nil {
			out = append(out, d)
		}
	}
	return out
}
