// Command zlb-node runs one ZLB replica over real TCP. A committee of n
// replicas is described by a shared seed (from which the demo PKI is
// derived deterministically) and a peer list; clients submit signed
// transactions with zlb-client.
//
// Start a local 4-replica cluster in four shells:
//
//	zlb-node -id 1 -n 4 -listen :7001 -peers 127.0.0.1:7001,127.0.0.1:7002,127.0.0.1:7003,127.0.0.1:7004
//	zlb-node -id 2 -n 4 -listen :7002 -peers ...
//	zlb-node -id 3 -n 4 -listen :7003 -peers ...
//	zlb-node -id 4 -n 4 -listen :7004 -peers ...
//
// The demo PKI derives every replica's key pair from -seed; production
// deployments load per-replica keys instead.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"github.com/zeroloss/zlb/internal/accountability"
	"github.com/zeroloss/zlb/internal/asmr"
	"github.com/zeroloss/zlb/internal/bm"
	"github.com/zeroloss/zlb/internal/crypto"
	"github.com/zeroloss/zlb/internal/membership"
	"github.com/zeroloss/zlb/internal/mempool"
	"github.com/zeroloss/zlb/internal/sbc"
	"github.com/zeroloss/zlb/internal/simnet"
	"github.com/zeroloss/zlb/internal/transport"
	"github.com/zeroloss/zlb/internal/types"
	"github.com/zeroloss/zlb/internal/utxo"
	"github.com/zeroloss/zlb/internal/wire"
)

func main() {
	id := flag.Uint("id", 0, "replica ID (1..n)")
	n := flag.Int("n", 4, "committee size")
	listen := flag.String("listen", "", "listen address, e.g. :7001")
	peersFlag := flag.String("peers", "", "comma-separated peer addresses in ID order (1..n)")
	seed := flag.Int64("seed", 1, "shared PKI seed (demo key derivation)")
	flag.Parse()

	if *id == 0 || *listen == "" || *peersFlag == "" {
		flag.Usage()
		os.Exit(2)
	}
	addrs := strings.Split(*peersFlag, ",")
	if len(addrs) != *n {
		log.Fatalf("got %d peer addresses for n=%d", len(addrs), *n)
	}

	if err := run(types.ReplicaID(*id), *n, *listen, addrs, *seed); err != nil {
		log.Fatal(err)
	}
}

func run(self types.ReplicaID, n int, listen string, addrs []string, seed int64) error {
	transport.RegisterWireTypes()

	signers, _, err := crypto.GenerateCluster(crypto.SchemeEd25519, n, seed)
	if err != nil {
		return fmt.Errorf("deriving demo PKI: %w", err)
	}
	members := make([]types.ReplicaID, n)
	peers := make(map[types.ReplicaID]string, n)
	for i := 0; i < n; i++ {
		members[i] = types.ReplicaID(i + 1)
		peers[types.ReplicaID(i+1)] = addrs[i]
	}

	node := transport.NewNode(transport.Config{Self: self, Listen: listen, Peers: peers})

	// Payment application state.
	txReg := crypto.NewRegistry(crypto.SchemeEd25519)
	txScheme, err := crypto.NewScheme(crypto.SchemeEd25519, txReg)
	if err != nil {
		return err
	}
	ledger := bm.NewLedger(txScheme)
	// Demo genesis: one faucet account derived from the shared seed.
	faucetKP, err := txScheme.GenerateKey(crypto.NewDeterministicRand(seed ^ 0xFA0CE7))
	if err != nil {
		return err
	}
	faucet := utxo.AddressOf(faucetKP.Public())
	ledger.Genesis(map[utxo.Address]types.Amount{faucet: 1_000_000_000})

	pool := mempool.New()
	batches := wire.NewBatchCache(0)

	replica := asmr.NewReplica(asmr.Config{
		Self:             self,
		Signer:           signers[int(self)-1],
		Env:              node,
		InitialCommittee: members,
		Accountable:      true,
		Recover:          true,
		WaitForWork:      true,
		BatchSource: func(k uint64) asmr.Batch {
			txs := pool.Take(2000)
			if len(txs) == 0 {
				return asmr.Batch{}
			}
			data, err := wire.EncodeBatch(txs)
			if err != nil {
				return asmr.Batch{}
			}
			return asmr.Batch{Payload: data, ClaimedSigs: len(txs)}
		},
		OnCommit: func(k uint64, _ uint32, d *sbc.Decision) {
			block := blockFrom(k, d, batches)
			applied := ledger.CommitBlock(block)
			pool.Prune(block.Txs)
			log.Printf("block %d committed: %d txs applied, height %d, faucet=%d",
				k, applied, ledger.Height(), ledger.Table().Balance(faucet))
		},
		OnDisagreement: func(k uint64, _, remote *sbc.Decision) {
			block := blockFrom(k, remote, batches)
			merged := ledger.MergeBlock(block)
			log.Printf("fork at block %d reconciled: %d txs merged", k, merged)
		},
		OnPoF: func(p accountability.PoF) {
			log.Printf("proof of fraud against replica %v", p.Culprit)
		},
		OnMembershipChange: func(res *membership.Result) {
			log.Printf("membership change: excluded %v, included %v", res.Excluded, res.Included)
		},
	})

	handler := &appHandler{node: node, replica: replica, pool: pool}
	node.SetHandler(handler)

	node.Do(func() { replica.Start() })
	log.Printf("replica %v listening on %s (n=%d)", self, listen, n)

	// Graceful shutdown on SIGINT/SIGTERM.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	go func() {
		<-sig
		log.Printf("shutting down")
		node.Close()
	}()
	return node.Serve()
}

// appHandler intercepts client SubmitTx requests and forwards everything
// else to the replica.
type appHandler struct {
	node    *transport.Node
	replica *asmr.Replica
	pool    *mempool.Pool
}

func (h *appHandler) OnMessage(from types.ReplicaID, msg simnet.Message) {
	if sub, ok := msg.(*transport.SubmitTx); ok {
		if sub.Tx == nil {
			return
		}
		if h.pool.Add(sub.Tx) {
			h.replica.Kick()
			log.Printf("tx %v enqueued (mempool %d)", sub.Tx.ID(), h.pool.Len())
		}
		return
	}
	h.replica.OnMessage(from, msg)
}

func (h *appHandler) OnTimer(payload any) { h.replica.OnTimer(payload) }

// blockFrom assembles the application block of a decision, decoding each
// proposal payload through the shared batch cache (internal/wire).
func blockFrom(k uint64, d *sbc.Decision, batches *wire.BatchCache) *bm.Block {
	var txs []*utxo.Transaction
	seen := make(map[types.Digest]bool)
	for _, p := range d.OrderedProposals() {
		batch, err := batches.Decode(p.Payload)
		if err != nil {
			continue
		}
		for _, tx := range batch {
			id := tx.ID()
			if !seen[id] {
				seen[id] = true
				txs = append(txs, tx)
			}
		}
	}
	return bm.NewBlock(k, txs)
}
