// Command zlb-node runs one ZLB replica over real TCP. A committee of n
// replicas is described by a shared seed (from which the demo PKI is
// derived deterministically) and a peer list; clients submit signed
// transactions with zlb-client.
//
// Start a local 4-replica cluster in four shells:
//
//	zlb-node -id 1 -n 4 -listen :7001 -peers 127.0.0.1:7001,127.0.0.1:7002,127.0.0.1:7003,127.0.0.1:7004
//	zlb-node -id 2 -n 4 -listen :7002 -peers ...
//	zlb-node -id 3 -n 4 -listen :7003 -peers ...
//	zlb-node -id 4 -n 4 -listen :7004 -peers ...
//
// With -data-dir the replica persists its chain to a durable block store
// (internal/store): committed blocks and reconciliation merges write
// through, a UTXO checkpoint is cut every -checkpoint-every blocks, and
// a node killed mid-run recovers its full chain and ledger on restart
// from the same directory, then pulls the instances it missed from its
// peers through certificate-verified catch-up. With -sync, a node whose
// data directory is empty first bootstraps from its peers' stores —
// latest checkpoint plus log tail, cross-checked across responders —
// instead of replaying from genesis; this is the standby catch-up path
// of the paper's membership change.
//
// The demo PKI derives every replica's key pair from -seed; production
// deployments load per-replica keys instead.
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"github.com/zeroloss/zlb/internal/accountability"
	"github.com/zeroloss/zlb/internal/asmr"
	"github.com/zeroloss/zlb/internal/bm"
	"github.com/zeroloss/zlb/internal/crypto"
	"github.com/zeroloss/zlb/internal/membership"
	"github.com/zeroloss/zlb/internal/mempool"
	"github.com/zeroloss/zlb/internal/obs"
	"github.com/zeroloss/zlb/internal/pipeline"
	"github.com/zeroloss/zlb/internal/rbc"
	"github.com/zeroloss/zlb/internal/sbc"
	"github.com/zeroloss/zlb/internal/simnet"
	"github.com/zeroloss/zlb/internal/store"
	"github.com/zeroloss/zlb/internal/transport"
	"github.com/zeroloss/zlb/internal/types"
	"github.com/zeroloss/zlb/internal/utxo"
	"github.com/zeroloss/zlb/internal/wire"
)

func main() {
	id := flag.Uint("id", 0, "replica ID (1..n)")
	n := flag.Int("n", 4, "committee size")
	listen := flag.String("listen", "", "listen address, e.g. :7001")
	peersFlag := flag.String("peers", "", "comma-separated peer addresses in ID order (1..n)")
	seed := flag.Int64("seed", 1, "shared PKI seed (demo key derivation)")
	dataDir := flag.String("data-dir", "", "durable block store directory (empty = in-memory only)")
	checkpointEvery := flag.Uint64("checkpoint-every", 16, "blocks between UTXO checkpoints")
	sync := flag.Bool("sync", false, "bootstrap an empty -data-dir from peers (checkpoint + log tail) before joining")
	sequential := flag.Bool("sequential", false, "disable the multi-core commit pipeline (verify and apply inline)")
	schemeName := flag.String("scheme", "ed25519", "signature scheme for the demo PKI and transactions: ed25519 or ecdsa (must match peers and clients)")
	aggregateCerts := flag.Bool("aggregate-certs", false, "assemble aggregate certificates when the scheme supports aggregation (falls back to signed statements otherwise)")
	poolMax := flag.Int("mempool-max", 0, "mempool admission: max pending transactions (0 = unlimited)")
	poolMaxBytes := flag.Int64("mempool-max-bytes", 0, "mempool admission: max pending canonical bytes (0 = unlimited)")
	poolAcctCap := flag.Int("mempool-account-cap", 0, "mempool admission: max pending transactions per sender (0 = unlimited)")
	poolRate := flag.Int("mempool-rate", 0, "mempool admission: max admissions per sender per rate window (0 = unlimited)")
	poolRateWindow := flag.Duration("mempool-rate-window", time.Second, "mempool admission: rate-limit window")
	poolMinFee := flag.Uint64("mempool-min-fee", 0, "mempool admission: reject transactions below this fee")
	poolPriority := flag.Bool("mempool-priority", false, "mempool admission: batch by fee rate instead of arrival order")
	poolReplaceBump := flag.Int("mempool-replace-bump", 0, "mempool admission: replacement-by-fee bump percentage (0 = replacement off)")
	peerQueue := flag.Int("peer-queue", 0, "outbound frames buffered per peer before drop-oldest displacement (0 = default 4096)")
	metricsAddr := flag.String("metrics-addr", "", "serve /metrics (Prometheus text), /status (JSON) and /debug/pprof/ on this address (empty = disabled)")
	logLevel := flag.String("log-level", "info", "minimum log severity (debug, info, warn, error)")
	flag.Parse()

	level, err := obs.ParseLevel(*logLevel)
	if err != nil {
		log.Fatal(err)
	}

	if *id == 0 || *listen == "" || *peersFlag == "" {
		flag.Usage()
		os.Exit(2)
	}
	addrs := strings.Split(*peersFlag, ",")
	if len(addrs) != *n {
		log.Fatalf("got %d peer addresses for n=%d", len(addrs), *n)
	}

	rn, err := newReplicaNode(nodeConfig{
		Self:            types.ReplicaID(*id),
		N:               *n,
		Listen:          *listen,
		Peers:           addrs,
		Seed:            *seed,
		DataDir:         *dataDir,
		CheckpointEvery: *checkpointEvery,
		Sync:            *sync,
		Sequential:      *sequential,
		Scheme:          *schemeName,
		AggregateCerts:  *aggregateCerts,
		Mempool: mempool.Policy{
			MaxTxs:         *poolMax,
			MaxBytes:       *poolMaxBytes,
			MaxPerAccount:  *poolAcctCap,
			RatePerAccount: *poolRate,
			RateWindow:     *poolRateWindow,
			MinFee:         types.Amount(*poolMinFee),
			ReplaceBumpPct: *poolReplaceBump,
			PriorityOrder:  *poolPriority,
		},
		PeerQueue:   *peerQueue,
		MetricsAddr: *metricsAddr,
		LogLevel:    level,
		Logf:        log.Printf,
	})
	if err != nil {
		log.Fatal(err)
	}

	stop := shutdownOnSignal(rn, rn.log)
	defer stop()
	if err := rn.Serve(); err != nil {
		log.Fatal(err)
	}
}

// shutdownOnSignal arms graceful shutdown: the first SIGINT/SIGTERM stops
// accepting connections, drains the event loop and flushes + closes the
// store (rn.Close waits for all of it), so the data directory is
// consistent for the next start. A second signal while draining exits
// immediately — the escape hatch when a peer wedges the drain. The
// returned stop function disarms the handler (used by tests; main never
// needs it).
func shutdownOnSignal(rn *replicaNode, logger *obs.Logger) (stop func()) {
	sig := make(chan os.Signal, 2)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	quit := make(chan struct{})
	go func() {
		select {
		case s := <-sig:
			logger.Infof("received %v: draining event loop and closing store", s)
		case <-quit:
			return
		}
		go func() {
			select {
			case s := <-sig:
				logger.Errorf("received second %v: exiting immediately", s)
				os.Exit(1)
			case <-quit:
			}
		}()
		rn.Close()
	}()
	return func() {
		signal.Stop(sig)
		close(quit)
	}
}

// nodeConfig parameterizes one replica process.
type nodeConfig struct {
	Self            types.ReplicaID
	N               int
	Listen          string
	Peers           []string // addresses in ID order (1..n)
	Seed            int64
	DataDir         string
	CheckpointEvery uint64
	Sync            bool
	// Sequential disables the multi-core commit pipeline: certificates,
	// transaction signatures and block application run inline on the
	// event loop. The chain is bit-identical either way.
	Sequential bool
	// Scheme names the signature scheme for both the demo consensus PKI
	// and transaction signatures: "ed25519" (default) or "ecdsa". Every
	// node and client of a deployment must agree. "sim" is rejected —
	// its registry-backed MACs cannot authenticate out-of-process
	// clients.
	Scheme string
	// AggregateCerts requests aggregate certificate assembly. It only
	// takes effect when the consensus scheme implements
	// crypto.Aggregator; the demo ed25519/ecdsa PKIs do not, so
	// certificates stay in signed-statement form and the flag is
	// forward plumbing for aggregation-capable schemes.
	AggregateCerts bool
	// Mempool is the admission policy the replica's pool enforces (zero
	// value = permissive arrival-order queueing). Rate windows run on
	// wall time since process start.
	Mempool mempool.Policy
	// SyncTimeout bounds the bootstrap wait for peer responses (default 5s).
	SyncTimeout time.Duration
	// PeerQueue bounds each peer's outbound send queue (0 = transport
	// default). On overflow the oldest queued frame is displaced.
	PeerQueue int
	// MetricsAddr serves /metrics, /status and /debug/pprof/ when set.
	MetricsAddr string
	// LogLevel is the minimum severity Logf receives. The zero value is
	// LevelDebug (everything), which tests rely on; main defaults the
	// flag to info.
	LogLevel obs.Level
	// Logf is the log sink (log.Printf in main, t.Logf in tests). At the
	// default info level the emitted lines are byte-identical to the
	// pre-leveled logger: no pre-existing line was demoted below info.
	Logf func(format string, args ...any)
}

// replicaNode is one running replica: transport node, consensus replica,
// payment state and (optionally) the durable store.
type replicaNode struct {
	cfg      nodeConfig
	log      *obs.Logger
	node     *transport.Node
	replica  *asmr.Replica
	pool     *mempool.Pool
	batches  *wire.BatchCache
	txScheme crypto.Scheme
	faucet   utxo.Address

	// Observability (metrics.go): the registry is always maintained, the
	// HTTP listener only exists under -metrics-addr.
	metrics   *nodeMetrics
	metricsLn net.Listener
	httpSrv   *http.Server
	startedAt time.Time
	// Commit pipeline (nil in -sequential mode): shared certificate
	// verdicts for the consensus layer, speculative transaction
	// verification for the payment layer.
	certs *pipeline.Verifier
	txv   *pipeline.TxVerifier

	// All fields below are touched only on the transport event loop.
	ledger *bm.Ledger
	st     *store.Store
	// proposeAt is the wall-clock start per instance, feeding the commit
	// latency histogram.
	proposeAt map[uint64]time.Time

	started   bool
	syncPeers []types.ReplicaID
	syncResps map[types.ReplicaID]*wire.SyncResp
	syncOver  bool

	// served closes when Serve has exited and the store is closed.
	served chan struct{}
}

// syncDeadline is the timer payload bounding the bootstrap wait;
// syncRetry re-requests unanswered peers halfway through (a response
// can be lost to a connection the peer cached before we came up).
type (
	syncDeadline struct{}
	syncRetry    struct{}
)

// nodeSchemeKind resolves the -scheme flag. The empty string (tests
// building nodeConfig directly) means ed25519, matching the flag default.
func nodeSchemeKind(name string) (crypto.SchemeKind, error) {
	switch name {
	case "", "ed25519":
		return crypto.SchemeEd25519, nil
	case "ecdsa", "ecdsa-p256":
		return crypto.SchemeECDSA, nil
	case "sim":
		return 0, fmt.Errorf("-scheme sim is registry-internal and cannot authenticate clients (use ed25519 or ecdsa)")
	default:
		return 0, fmt.Errorf("unknown -scheme %q (want ed25519 or ecdsa)", name)
	}
}

func newReplicaNode(cfg nodeConfig) (*replicaNode, error) {
	transport.RegisterWireTypes()
	if cfg.SyncTimeout == 0 {
		cfg.SyncTimeout = 5 * time.Second
	}

	kind, err := nodeSchemeKind(cfg.Scheme)
	if err != nil {
		return nil, err
	}
	signers, _, err := crypto.GenerateCluster(kind, cfg.N, cfg.Seed)
	if err != nil {
		return nil, fmt.Errorf("deriving demo PKI: %w", err)
	}
	members := make([]types.ReplicaID, cfg.N)
	peers := make(map[types.ReplicaID]string, cfg.N)
	for i := 0; i < cfg.N; i++ {
		members[i] = types.ReplicaID(i + 1)
		peers[types.ReplicaID(i+1)] = cfg.Peers[i]
	}

	start := time.Now()
	rn := &replicaNode{
		cfg:       cfg,
		log:       obs.NewLogger(cfg.Logf, cfg.LogLevel),
		pool:      mempool.NewWithPolicy(cfg.Mempool),
		batches:   wire.NewBatchCache(0),
		proposeAt: make(map[uint64]time.Time),
		startedAt: start,
		syncResps: make(map[types.ReplicaID]*wire.SyncResp),
		served:    make(chan struct{}),
	}
	rn.metrics = newNodeMetrics(rn.pool)
	// Rate-limit windows run on wall time since process start (a real
	// deployment has no virtual clock to share).
	rn.pool.SetClock(func() time.Duration { return time.Since(start) })
	if !cfg.Sequential {
		rn.certs = pipeline.NewVerifier(pipeline.Shared())
	}
	rn.node = transport.NewNode(transport.Config{
		Self:          cfg.Self,
		Listen:        cfg.Listen,
		Peers:         peers,
		SendQueueSize: cfg.PeerQueue,
		Logger:        rn.log,
	})
	rn.metrics.wireTransport(rn.node, members)

	// Payment application state (same scheme as the consensus PKI, so one
	// -scheme flag keeps nodes and clients in agreement).
	txReg := crypto.NewRegistry(kind)
	txScheme, err := crypto.NewScheme(kind, txReg)
	if err != nil {
		return nil, err
	}
	rn.txScheme = txScheme
	if !cfg.Sequential {
		rn.txv = pipeline.NewTxVerifier(pipeline.Shared(), txScheme)
		// Pipeline handoff: transactions start verifying the moment a
		// client submit lands in the mempool.
		rn.pool.SetPreverify(func(tx *utxo.Transaction) {
			rn.txv.Preverify([]*utxo.Transaction{tx})
		})
	}
	faucetKP, err := txScheme.GenerateKey(crypto.NewDeterministicRand(cfg.Seed ^ 0xFA0CE7))
	if err != nil {
		return nil, err
	}
	rn.faucet = utxo.AddressOf(faucetKP.Public())

	// Durable store + ledger recovery.
	var restored []asmr.RestoredBlock
	if cfg.DataDir != "" {
		st, err := store.Open(cfg.DataDir, store.Options{CheckpointEvery: cfg.CheckpointEvery, Fsync: true})
		if err != nil {
			return nil, err
		}
		rn.st = st
		if _, hasBlocks := st.LastK(); hasBlocks {
			ledger, err := st.Recover(txScheme, rn.seedGenesis)
			if err != nil {
				return nil, fmt.Errorf("recovering chain: %w", err)
			}
			rn.ledger = ledger
			for _, rec := range st.BlockRecords() {
				restored = append(restored, asmr.RestoredBlock{K: rec.K, Attempt: rec.Attempt, Digest: rec.Digest})
			}
			rn.log.Infof("recovered chain from %s: height %d, lastK %d, faucet=%d",
				cfg.DataDir, ledger.Height(), ledger.LastK(), ledger.Table().Balance(rn.faucet))
		}
	}
	if rn.ledger == nil {
		rn.ledger = bm.NewLedger(txScheme)
		rn.seedGenesis(rn.ledger)
	}
	rn.ledger.SetParallel(rn.txv.Pool())

	rn.replica = asmr.NewReplica(asmr.Config{
		Self:             cfg.Self,
		Signer:           signers[int(cfg.Self)-1],
		Env:              rn.node,
		InitialCommittee: members,
		Accountable:      true,
		Recover:          true,
		WaitForWork:      true,
		AggregateCerts:   cfg.AggregateCerts,
		Certs:            rn.certs,
		// One canonical copy per proposal digest: a node stores a pulled
		// PayloadResp and the original Init as the same bytes.
		Intern: rbc.NewIntern(),
		OnProposal: func(k uint64, payload []byte) {
			// Pre-validate the delivered batch while consensus decides.
			rn.txv.SpeculateBatch(payload, rn.batches)
		},
		BatchSource: func(k uint64) asmr.Batch {
			txs := rn.pool.Take(2000)
			if len(txs) == 0 {
				return asmr.Batch{}
			}
			data, err := wire.EncodeBatch(txs)
			if err != nil {
				return asmr.Batch{}
			}
			if _, ok := rn.proposeAt[k]; !ok {
				rn.proposeAt[k] = time.Now()
			}
			return asmr.Batch{Payload: data, ClaimedSigs: len(txs)}
		},
		OnCommit: func(k uint64, attempt uint32, d *sbc.Decision) {
			block := blockFrom(k, d, rn.batches)
			applied := rn.ledger.CommitBlock(block)
			rn.persist(block, attempt, false)
			rn.pool.Prune(block.Txs)
			rn.metrics.committed.Inc()
			rn.metrics.txApplied.Add(uint64(applied))
			rn.metrics.height.Set(int64(rn.ledger.Height()))
			if t0, ok := rn.proposeAt[k]; ok {
				delete(rn.proposeAt, k)
				rn.metrics.commitLat.Observe(time.Since(t0).Seconds())
			}
			rn.log.Infof("block %d committed: %d txs applied, height %d, faucet=%d",
				k, applied, rn.ledger.Height(), rn.ledger.Table().Balance(rn.faucet))
		},
		OnDisagreement: func(k uint64, _, remote *sbc.Decision) {
			block := blockFrom(k, remote, rn.batches)
			merged := rn.ledger.MergeBlock(block)
			rn.persist(block, 0, true)
			rn.metrics.merged.Inc()
			rn.metrics.height.Set(int64(rn.ledger.Height()))
			rn.log.Warnf("fork at block %d reconciled: %d txs merged", k, merged)
		},
		OnPoF: func(p accountability.PoF) {
			rn.metrics.culprits.Inc()
			rn.log.Warnf("proof of fraud against replica %v", p.Culprit)
		},
		OnMembershipChange: func(res *membership.Result) {
			rn.metrics.epoch.Set(int64(res.Epoch))
			rn.log.Infof("membership change: excluded %v, included %v", res.Excluded, res.Included)
		},
	})
	if len(restored) > 0 {
		rn.replica.Restore(restored)
	}

	handler := &appHandler{rn: rn}
	rn.node.SetHandler(handler)

	// Launch sequencing runs on the event loop: either straight into
	// consensus, or after the standby bootstrap completes.
	rn.node.Do(func() {
		if cfg.Sync && rn.st != nil && len(restored) == 0 {
			rn.beginSync()
			return
		}
		rn.start(len(restored) > 0)
	})
	if cfg.MetricsAddr != "" {
		if err := rn.startMetricsServer(cfg.MetricsAddr); err != nil {
			rn.node.Close()
			return nil, err
		}
	}
	rn.log.Infof("replica %v listening on %s (n=%d)", cfg.Self, cfg.Listen, cfg.N)
	return rn, nil
}

// seedGenesis seeds a fresh ledger with the demo genesis: one faucet
// account derived from the shared seed.
func (rn *replicaNode) seedGenesis(l *bm.Ledger) {
	l.Genesis(map[utxo.Address]types.Amount{rn.faucet: 1_000_000_000})
}

// start launches consensus; recovered reports whether a persisted chain
// was restored, in which case the replica asks its peers for the
// instances decided while it was down.
func (rn *replicaNode) start(recovered bool) {
	if rn.started {
		return
	}
	rn.started = true
	rn.replica.Start()
	if recovered {
		rn.replica.RequestCatchup()
	}
}

// persist writes a block through to the store and cuts a checkpoint when
// due. Persistence failures are fatal for a durable node: continuing
// would silently break the recovery contract.
func (rn *replicaNode) persist(b *bm.Block, attempt uint32, merge bool) {
	if rn.st == nil {
		return
	}
	var err error
	if merge {
		err = rn.st.AppendMerge(b, attempt)
	} else {
		err = rn.st.AppendBlock(b, attempt)
	}
	if err == nil && rn.st.ShouldCheckpoint() {
		err = rn.st.WriteCheckpoint(rn.ledger.CheckpointState())
		if err == nil {
			// The checkpoint bounds the committed-transaction dedup set.
			rn.pool.TrimCommitted()
		}
	}
	if err == nil {
		err = rn.st.Flush()
	}
	if err != nil {
		log.Fatalf("persisting block %d: %v", b.K, err)
	}
}

// --- Standby bootstrap (store-level catch-up) ---

// beginSync asks every peer for its checkpoint + log tail and arms the
// deadline; responses are cross-checked before installing.
func (rn *replicaNode) beginSync() {
	req := &wire.SyncReq{FromK: 1, WantCheckpoint: true}
	payload := wire.EncodeSyncReq(req)
	for i := 1; i <= rn.cfg.N; i++ {
		id := types.ReplicaID(i)
		if id == rn.cfg.Self {
			continue
		}
		rn.syncPeers = append(rn.syncPeers, id)
		rn.node.Send(id, &transport.SyncFrame{Req: true, Payload: payload})
	}
	if len(rn.syncPeers) == 0 {
		rn.start(false)
		return
	}
	rn.node.SetTimer(rn.cfg.SyncTimeout/2, syncRetry{})
	rn.node.SetTimer(rn.cfg.SyncTimeout, syncDeadline{})
	rn.log.Infof("bootstrapping from %d peers", len(rn.syncPeers))
}

// retrySync re-sends the bootstrap request to peers that have not
// answered yet.
func (rn *replicaNode) retrySync() {
	if rn.syncOver || rn.started {
		return
	}
	payload := wire.EncodeSyncReq(&wire.SyncReq{FromK: 1, WantCheckpoint: true})
	for _, id := range rn.syncPeers {
		if _, ok := rn.syncResps[id]; !ok {
			rn.log.Debugf("re-requesting bootstrap state from replica %v", id)
			rn.node.Send(id, &transport.SyncFrame{Req: true, Payload: payload})
		}
	}
}

// onSyncFrame serves requests from our store and collects responses
// during a bootstrap.
func (rn *replicaNode) onSyncFrame(from types.ReplicaID, f *transport.SyncFrame) {
	if f.Req {
		if rn.st == nil {
			return
		}
		req, err := wire.DecodeSyncReq(f.Payload)
		if err != nil {
			return
		}
		resp, err := rn.st.BuildSyncResp(req)
		if err != nil {
			rn.log.Warnf("building sync response: %v", err)
			return
		}
		rn.node.Send(from, &transport.SyncFrame{Payload: wire.EncodeSyncResp(resp)})
		return
	}
	if rn.syncOver || rn.started {
		return
	}
	resp, err := wire.DecodeSyncResp(f.Payload)
	if err != nil {
		return
	}
	if _, dup := rn.syncResps[from]; dup {
		return
	}
	rn.syncResps[from] = resp
	if len(rn.syncResps) == len(rn.syncPeers) {
		rn.finishSync()
	}
}

// finishSync cross-checks the collected responses (a majority of the
// queried peers must agree on the chain) and installs the winner into
// the store + ledger, then joins consensus.
func (rn *replicaNode) finishSync() {
	if rn.syncOver {
		return
	}
	rn.syncOver = true
	resps := make([]*wire.SyncResp, 0, len(rn.syncPeers))
	for _, id := range rn.syncPeers {
		resps = append(resps, rn.syncResps[id]) // nil for silent peers
	}
	best, err := store.CrossCheck(resps)
	if err == nil {
		var ledger *bm.Ledger
		ledger, err = store.InstallSync(rn.st, rn.txScheme, best, rn.seedGenesis)
		if err == nil {
			rn.ledger = ledger
			rn.ledger.SetParallel(rn.txv.Pool())
			restored := make([]asmr.RestoredBlock, 0)
			for _, rec := range rn.st.BlockRecords() {
				restored = append(restored, asmr.RestoredBlock{K: rec.K, Attempt: rec.Attempt, Digest: rec.Digest})
			}
			rn.replica.Restore(restored)
			rn.log.Infof("bootstrap installed: height %d, lastK %d", ledger.Height(), ledger.LastK())
			rn.start(true)
			return
		}
	}
	// Roll back before falling back: an install that failed midway (I/O
	// error after the verify phase) may have left foreign state in the
	// store, and running from genesis on top of it would corrupt every
	// future recovery. The directory was empty before the bootstrap
	// (sync only runs on an empty store), so wiping restores that.
	rn.st.Close()
	if rmErr := os.RemoveAll(rn.cfg.DataDir); rmErr != nil {
		log.Fatalf("rolling back failed bootstrap: %v", rmErr)
	}
	st, openErr := store.Open(rn.cfg.DataDir, store.Options{CheckpointEvery: rn.cfg.CheckpointEvery, Fsync: true})
	if openErr != nil {
		log.Fatalf("reopening store after failed bootstrap: %v", openErr)
	}
	rn.st = st
	rn.log.Warnf("bootstrap failed (%v), starting from genesis", err)
	rn.start(false)
}

// Serve runs the node until Close. The store is closed here, after the
// event loop has drained: queued commits may still persist blocks while
// the stop sentinel works its way through the queue, and closing the
// store from another goroutine would turn a graceful shutdown into a
// fatal ErrClosed mid-commit.
func (rn *replicaNode) Serve() error {
	err := rn.node.Serve()
	if rn.st != nil {
		if cerr := rn.st.Close(); cerr != nil {
			rn.log.Errorf("closing store: %v", cerr)
		}
	}
	close(rn.served)
	return err
}

// Close shuts the node down and waits for Serve to finish flushing and
// closing the store, so the data directory is quiescent when Close
// returns (a restart may reopen it immediately).
func (rn *replicaNode) Close() {
	if rn.httpSrv != nil {
		rn.httpSrv.Close()
	}
	rn.node.Close()
	<-rn.served
}

// appHandler intercepts client SubmitTx requests and store sync frames,
// forwarding everything else to the replica.
type appHandler struct {
	rn *replicaNode
}

func (h *appHandler) OnMessage(from types.ReplicaID, msg simnet.Message) {
	switch m := msg.(type) {
	case *transport.SubmitTx:
		if m.Tx == nil {
			return
		}
		if err := h.rn.pool.Add(m.Tx); err == nil {
			h.rn.replica.Kick()
			h.rn.log.Infof("tx %v enqueued (mempool %d)", m.Tx.ID(), h.rn.pool.Len())
		} else {
			h.rn.log.Warnf("tx %v rejected: %v", m.Tx.ID(), err)
		}
	case *transport.SyncFrame:
		h.rn.onSyncFrame(from, m)
	default:
		h.rn.replica.OnMessage(from, msg)
	}
}

func (h *appHandler) OnTimer(payload any) {
	switch payload.(type) {
	case syncDeadline:
		if !h.rn.syncOver && !h.rn.started {
			h.rn.finishSync()
		}
	case syncRetry:
		h.rn.retrySync()
	default:
		h.rn.replica.OnTimer(payload)
	}
}

// blockFrom assembles the application block of a decision, decoding each
// proposal payload through the shared batch cache (internal/wire).
func blockFrom(k uint64, d *sbc.Decision, batches *wire.BatchCache) *bm.Block {
	var txs []*utxo.Transaction
	seen := make(map[types.Digest]bool)
	for _, p := range d.OrderedProposals() {
		batch, err := batches.Decode(p.Payload)
		if err != nil {
			continue
		}
		for _, tx := range batch {
			id := tx.ID()
			if !seen[id] {
				seen[id] = true
				txs = append(txs, tx)
			}
		}
	}
	return bm.NewBlock(k, txs)
}
