// Command zlb-node runs one ZLB replica over real TCP. A committee of n
// replicas is described by a shared seed (from which the demo PKI is
// derived deterministically) and a peer list; clients submit signed
// transactions with zlb-client.
//
// Start a local 4-replica cluster in four shells:
//
//	zlb-node -id 1 -n 4 -listen :7001 -peers 127.0.0.1:7001,127.0.0.1:7002,127.0.0.1:7003,127.0.0.1:7004
//	zlb-node -id 2 -n 4 -listen :7002 -peers ...
//	zlb-node -id 3 -n 4 -listen :7003 -peers ...
//	zlb-node -id 4 -n 4 -listen :7004 -peers ...
//
// The demo PKI derives every replica's key pair from -seed; production
// deployments load per-replica keys instead.
package main

import (
	"bytes"
	"encoding/gob"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"github.com/zeroloss/zlb/internal/accountability"
	"github.com/zeroloss/zlb/internal/asmr"
	"github.com/zeroloss/zlb/internal/bm"
	"github.com/zeroloss/zlb/internal/crypto"
	"github.com/zeroloss/zlb/internal/membership"
	"github.com/zeroloss/zlb/internal/sbc"
	"github.com/zeroloss/zlb/internal/simnet"
	"github.com/zeroloss/zlb/internal/transport"
	"github.com/zeroloss/zlb/internal/types"
	"github.com/zeroloss/zlb/internal/utxo"
)

func main() {
	id := flag.Uint("id", 0, "replica ID (1..n)")
	n := flag.Int("n", 4, "committee size")
	listen := flag.String("listen", "", "listen address, e.g. :7001")
	peersFlag := flag.String("peers", "", "comma-separated peer addresses in ID order (1..n)")
	seed := flag.Int64("seed", 1, "shared PKI seed (demo key derivation)")
	flag.Parse()

	if *id == 0 || *listen == "" || *peersFlag == "" {
		flag.Usage()
		os.Exit(2)
	}
	addrs := strings.Split(*peersFlag, ",")
	if len(addrs) != *n {
		log.Fatalf("got %d peer addresses for n=%d", len(addrs), *n)
	}

	if err := run(types.ReplicaID(*id), *n, *listen, addrs, *seed); err != nil {
		log.Fatal(err)
	}
}

func run(self types.ReplicaID, n int, listen string, addrs []string, seed int64) error {
	transport.RegisterWireTypes()

	signers, _, err := crypto.GenerateCluster(crypto.SchemeEd25519, n, seed)
	if err != nil {
		return fmt.Errorf("deriving demo PKI: %w", err)
	}
	members := make([]types.ReplicaID, n)
	peers := make(map[types.ReplicaID]string, n)
	for i := 0; i < n; i++ {
		members[i] = types.ReplicaID(i + 1)
		peers[types.ReplicaID(i+1)] = addrs[i]
	}

	node := transport.NewNode(transport.Config{Self: self, Listen: listen, Peers: peers})

	// Payment application state.
	txReg := crypto.NewRegistry(crypto.SchemeEd25519)
	txScheme, err := crypto.NewScheme(crypto.SchemeEd25519, txReg)
	if err != nil {
		return err
	}
	ledger := bm.NewLedger(txScheme)
	// Demo genesis: one faucet account derived from the shared seed.
	faucetKP, err := txScheme.GenerateKey(crypto.NewDeterministicRand(seed ^ 0xFA0CE7))
	if err != nil {
		return err
	}
	faucet := utxo.AddressOf(faucetKP.Public())
	ledger.Genesis(map[utxo.Address]types.Amount{faucet: 1_000_000_000})

	var mempool []*utxo.Transaction
	inPool := make(map[types.Digest]bool)

	replica := asmr.NewReplica(asmr.Config{
		Self:             self,
		Signer:           signers[int(self)-1],
		Env:              node,
		InitialCommittee: members,
		Accountable:      true,
		Recover:          true,
		WaitForWork:      true,
		BatchSource: func(k uint64) asmr.Batch {
			if len(mempool) == 0 {
				return asmr.Batch{}
			}
			take := len(mempool)
			if take > 2000 {
				take = 2000
			}
			data, err := encodeTxs(mempool[:take])
			if err != nil {
				return asmr.Batch{}
			}
			return asmr.Batch{Payload: data, ClaimedSigs: take}
		},
		OnCommit: func(k uint64, _ uint32, d *sbc.Decision) {
			block := blockFrom(k, d)
			applied := ledger.CommitBlock(block)
			mempool = pruneMempool(mempool, block)
			log.Printf("block %d committed: %d txs applied, height %d, faucet=%d",
				k, applied, ledger.Height(), ledger.Table().Balance(faucet))
		},
		OnDisagreement: func(k uint64, _, remote *sbc.Decision) {
			block := blockFrom(k, remote)
			merged := ledger.MergeBlock(block)
			log.Printf("fork at block %d reconciled: %d txs merged", k, merged)
		},
		OnPoF: func(p accountability.PoF) {
			log.Printf("proof of fraud against replica %v", p.Culprit)
		},
		OnMembershipChange: func(res *membership.Result) {
			log.Printf("membership change: excluded %v, included %v", res.Excluded, res.Included)
		},
	})

	handler := &appHandler{node: node, replica: replica, mempool: &mempool, inPool: inPool}
	node.SetHandler(handler)

	node.Do(func() { replica.Start() })
	log.Printf("replica %v listening on %s (n=%d)", self, listen, n)

	// Graceful shutdown on SIGINT/SIGTERM.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	go func() {
		<-sig
		log.Printf("shutting down")
		node.Close()
	}()
	return node.Serve()
}

// appHandler intercepts client SubmitTx requests and forwards everything
// else to the replica.
type appHandler struct {
	node    *transport.Node
	replica *asmr.Replica
	mempool *[]*utxo.Transaction
	inPool  map[types.Digest]bool
}

func (h *appHandler) OnMessage(from types.ReplicaID, msg simnet.Message) {
	if sub, ok := msg.(*transport.SubmitTx); ok {
		if sub.Tx == nil {
			return
		}
		id := sub.Tx.ID()
		if !h.inPool[id] {
			h.inPool[id] = true
			*h.mempool = append(*h.mempool, sub.Tx)
			h.replica.Kick()
			log.Printf("tx %v enqueued (mempool %d)", id, len(*h.mempool))
		}
		return
	}
	h.replica.OnMessage(from, msg)
}

func (h *appHandler) OnTimer(payload any) { h.replica.OnTimer(payload) }

// encodeTxs/decodeTxs serialize transaction batches as consensus
// payloads.
func encodeTxs(txs []*utxo.Transaction) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(txs); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func decodeTxs(payload []byte) ([]*utxo.Transaction, error) {
	var txs []*utxo.Transaction
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&txs); err != nil {
		return nil, err
	}
	return txs, nil
}

func blockFrom(k uint64, d *sbc.Decision) *bm.Block {
	var txs []*utxo.Transaction
	seen := make(map[types.Digest]bool)
	for _, p := range d.OrderedProposals() {
		batch, err := decodeTxs(p.Payload)
		if err != nil {
			continue
		}
		for _, tx := range batch {
			id := tx.ID()
			if !seen[id] {
				seen[id] = true
				txs = append(txs, tx)
			}
		}
	}
	return bm.NewBlock(k, txs)
}

func pruneMempool(pool []*utxo.Transaction, b *bm.Block) []*utxo.Transaction {
	gone := make(map[types.Digest]bool, len(b.Txs))
	for _, tx := range b.Txs {
		gone[tx.ID()] = true
	}
	kept := pool[:0]
	for _, tx := range pool {
		if !gone[tx.ID()] {
			kept = append(kept, tx)
		}
	}
	return kept
}
