package main

// Chaos campaigns: real n=5 clusters driven through TCP fault sequences
// (internal/chaos) with recovery invariants asserted — chain agreement
// after heal, bounded event-loop latency behind dead or slow peers,
// health metrics reflecting the injected faults. The chaosCluster
// adapter implements chaos.Cluster over the same replicaNode harness the
// other integration tests use; replica links are rewired through the
// proxy mesh (chaos.Net.PeersFor), client submits dial the real listen
// addresses.

import (
	"fmt"
	"os"
	"strconv"
	"sync"
	"testing"
	"time"

	"github.com/zeroloss/zlb/internal/chaos"
	"github.com/zeroloss/zlb/internal/transport"
	"github.com/zeroloss/zlb/internal/types"
)

type chaosCluster struct {
	t        *testing.T
	n        int
	seed     int64
	addrs    []string // real listen addresses, ID order
	dataDirs []string
	mesh     *chaos.Net
	client   *testClient

	mu    sync.Mutex
	nodes map[types.ReplicaID]*replicaNode
}

func newChaosCluster(t *testing.T, n int, seed int64, mesh *chaos.Net, addrs []string) *chaosCluster {
	t.Helper()
	c := &chaosCluster{
		t:        t,
		n:        n,
		seed:     seed,
		addrs:    addrs,
		dataDirs: make([]string, n),
		mesh:     mesh,
		client:   newTestClient(t, seed, addrs),
		nodes:    make(map[types.ReplicaID]*replicaNode),
	}
	for i := range c.dataDirs {
		c.dataDirs[i] = t.TempDir()
	}
	for i := 1; i <= n; i++ {
		if err := c.start(types.ReplicaID(i)); err != nil {
			t.Fatal(err)
		}
	}
	return c
}

// start boots replica id with its peer list rewired through the proxy
// mesh, so every frame it sends crosses the fault-injection layer.
func (c *chaosCluster) start(id types.ReplicaID) error {
	rn, err := newReplicaNode(nodeConfig{
		Self:            id,
		N:               c.n,
		Listen:          c.addrs[id-1],
		Peers:           c.mesh.PeersFor(id),
		Seed:            c.seed,
		DataDir:         c.dataDirs[id-1],
		CheckpointEvery: 2,
		Logf:            c.t.Logf,
	})
	if err != nil {
		return fmt.Errorf("replica %v: %w", id, err)
	}
	logf := c.t.Logf
	go func() {
		if err := rn.Serve(); err != nil {
			// Most likely a lost listen-port race (freeAddrs releases the
			// reservation before the node re-binds). The replica has no
			// event loop now; State's bounded probe reports it.
			logf("replica %v serve: %v", id, err)
		}
	}()
	c.mu.Lock()
	c.nodes[id] = rn
	c.mu.Unlock()
	return nil
}

func (c *chaosCluster) node(id types.ReplicaID) (*replicaNode, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	rn := c.nodes[id]
	if rn == nil {
		return nil, fmt.Errorf("replica %v is down", id)
	}
	return rn, nil
}

func (c *chaosCluster) closeAll() {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, rn := range c.nodes {
		if rn != nil {
			rn.Close()
		}
	}
	c.nodes = map[types.ReplicaID]*replicaNode{}
}

// N implements chaos.Cluster.
func (c *chaosCluster) N() int { return c.n }

// Submit implements chaos.Cluster: one chained faucet payment broadcast
// to the listed replicas (all when empty) over the real client path.
func (c *chaosCluster) Submit(to ...types.ReplicaID) error {
	idx := make([]int, 0, c.n)
	if len(to) == 0 {
		for i := 0; i < c.n; i++ {
			idx = append(idx, i)
		}
	} else {
		for _, id := range to {
			idx = append(idx, int(id)-1)
		}
	}
	c.client.submit(1000, idx...)
	return nil
}

// State implements chaos.Cluster. The read is a bounded event-loop
// round-trip: a replica whose loop never answers (e.g. Serve failed at
// startup) yields an error the campaign's own Wait* timeouts surface,
// instead of wedging the whole test until the go test panic.
func (c *chaosCluster) State(id types.ReplicaID) (chaos.ChainState, error) {
	rn, err := c.node(id)
	if err != nil {
		return chaos.ChainState{}, err
	}
	ch := make(chan chaos.ChainState, 1)
	go rn.node.Do(func() {
		ch <- chaos.ChainState{
			Height:  rn.ledger.Height(),
			LastK:   rn.ledger.LastK(),
			Digests: rn.ledger.BlockDigests(),
		}
	})
	select {
	case st := <-ch:
		return st, nil
	case <-time.After(10 * time.Second):
		return chaos.ChainState{}, fmt.Errorf("replica %v event loop did not answer a state probe within 10s", id)
	}
}

// Kill implements chaos.Cluster.
func (c *chaosCluster) Kill(id types.ReplicaID) error {
	rn, err := c.node(id)
	if err != nil {
		return err
	}
	c.mu.Lock()
	c.nodes[id] = nil
	c.mu.Unlock()
	rn.Close()
	return nil
}

// Restart implements chaos.Cluster: same address, same data directory —
// the durable-store recovery + catch-up path.
func (c *chaosCluster) Restart(id types.ReplicaID) error {
	if rn, _ := c.node(id); rn != nil {
		return fmt.Errorf("replica %v still running", id)
	}
	return c.start(id)
}

// StallProbe implements chaos.Cluster: time a no-op closure's round
// trip through the replica's event loop.
func (c *chaosCluster) StallProbe(id types.ReplicaID, timeout time.Duration) (time.Duration, error) {
	rn, err := c.node(id)
	if err != nil {
		return 0, err
	}
	done := make(chan struct{})
	start := time.Now()
	go rn.node.Do(func() { close(done) })
	select {
	case <-done:
		return time.Since(start), nil
	case <-time.After(timeout):
		return 0, fmt.Errorf("event loop did not service a closure within %v", timeout)
	}
}

// PeerHealth implements chaos.Cluster.
func (c *chaosCluster) PeerHealth(id types.ReplicaID) []transport.PeerHealth {
	rn, err := c.node(id)
	if err != nil {
		return nil
	}
	return rn.node.PeerHealth()
}

// TestChaosCampaigns runs every registered chaos campaign against a
// fresh real-TCP cluster behind the fault-injection mesh. Long
// campaigns (the nightly matrix) need ZLB_CHAOS_LONG=1.
func TestChaosCampaigns(t *testing.T) {
	if testing.Short() {
		t.Skip("real-TCP chaos campaigns")
	}
	for _, c := range chaos.Campaigns() {
		c := c
		t.Run(c.Name, func(t *testing.T) {
			if c.Long && os.Getenv("ZLB_CHAOS_LONG") == "" {
				t.Skip("long campaign; set ZLB_CHAOS_LONG=1 (nightly matrix)")
			}
			runChaosCampaign(t, c)
		})
	}
}

// chaosClusterSize is the campaign's minimum unless ZLB_CHAOS_N asks
// for a bigger cluster (the nightly matrix also runs n=9; campaigns
// derive their topology from the actual size).
func chaosClusterSize(t *testing.T, c chaos.Campaign) int {
	t.Helper()
	n := c.Nodes
	if s := os.Getenv("ZLB_CHAOS_N"); s != "" {
		v, err := strconv.Atoi(s)
		if err != nil || v < c.Nodes {
			t.Fatalf("ZLB_CHAOS_N=%q: want an integer >= %d", s, c.Nodes)
		}
		n = v
	}
	return n
}

func runChaosCampaign(t *testing.T, c chaos.Campaign) {
	t.Helper()
	n := chaosClusterSize(t, c)
	t.Logf("campaign %s (n=%d): %s", c.Name, n, c.Description)
	addrs := freeAddrs(t, n)
	mesh, err := chaos.NewNet(addrs)
	if err != nil {
		t.Fatal(err)
	}
	defer mesh.Close()

	cluster := newChaosCluster(t, n, int64(29), mesh, addrs)
	defer cluster.closeAll()

	env := &chaos.Env{
		Net:     mesh,
		Cluster: cluster,
		// The invariant bound: a Do round-trip through an event loop
		// backed by dead, flapping or throttled peers. The old blocking
		// transport stalled the loop for its full per-send retry budget
		// per dead peer — seconds each — so 2s cleanly separates "queues
		// absorb the fault" from "the loop is wedged" while staying
		// CI-safe.
		StallBound: 2 * time.Second,
		Logf:       t.Logf,
	}
	if err := c.Run(env); err != nil {
		t.Fatalf("campaign %s: %v", c.Name, err)
	}
	for _, r := range env.Recoveries {
		t.Logf("campaign %s (n=%d): recovery %s = %v", c.Name, n, r.Fault, r.Duration.Round(time.Millisecond))
	}
}
