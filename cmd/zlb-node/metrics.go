// Node observability: a dependency-free HTTP endpoint (-metrics-addr)
// exposing Prometheus-text metrics at /metrics, an operator-facing JSON
// snapshot at /status, and the standard pprof profiling handlers under
// /debug/pprof/. The registry (internal/obs) is always maintained —
// counter updates are lock-free atomics, negligible next to a commit —
// and only the HTTP listener is conditional on the flag.
package main

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"

	"github.com/zeroloss/zlb/internal/mempool"
	"github.com/zeroloss/zlb/internal/obs"
	"github.com/zeroloss/zlb/internal/transport"
	"github.com/zeroloss/zlb/internal/types"
)

// commitLatencyBounds bucket the propose→commit wall-clock latency
// histogram (seconds).
var commitLatencyBounds = []float64{0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10}

// nodeMetrics is the replica's metric surface. Event-driven series
// (heights, counts, latencies) are updated from the consensus callbacks
// on the event loop; mempool series are sampled from Pool.Stats at
// scrape time, since the pool already maintains those counters under its
// own lock.
type nodeMetrics struct {
	reg *obs.Metrics

	height    *obs.Gauge
	epoch     *obs.Gauge
	committed *obs.Counter
	merged    *obs.Counter
	txApplied *obs.Counter
	culprits  *obs.Counter
	commitLat *obs.Histogram
}

func newNodeMetrics(pool *mempool.Pool) *nodeMetrics {
	reg := obs.NewMetrics()
	m := &nodeMetrics{
		reg:       reg,
		height:    reg.Gauge("zlb_height", "Committed chain height of this replica."),
		epoch:     reg.Gauge("zlb_epoch", "Current membership epoch."),
		committed: reg.Counter("zlb_blocks_committed_total", "Blocks committed by consensus."),
		merged:    reg.Counter("zlb_blocks_merged_total", "Forked blocks reconciled by the merge procedure."),
		txApplied: reg.Counter("zlb_txs_applied_total", "Transactions applied to the ledger by committed blocks."),
		culprits:  reg.Counter("zlb_proven_culprits_total", "Replicas convicted by a proof of fraud."),
		commitLat: reg.Histogram("zlb_commit_latency_seconds", "Wall-clock latency from batch proposal to commit.", commitLatencyBounds),
	}
	reg.GaugeFunc("zlb_mempool_pending", "Transactions pending in the mempool.",
		func() float64 { return float64(pool.Stats().Pending) })
	reg.GaugeFunc("zlb_mempool_bytes", "Canonical bytes pending in the mempool.",
		func() float64 { return float64(pool.Stats().Bytes) })
	reg.CounterFunc("zlb_mempool_admitted_total", "Transactions admitted by the mempool.",
		func() float64 { return float64(pool.Stats().Admitted) })
	reg.CounterFunc("zlb_mempool_evictions_total", "Transactions evicted by mempool admission policy.",
		func() float64 { return float64(pool.Stats().Evictions) })
	for _, reason := range mempool.RejectReasons {
		r := reason
		reg.CounterFunc("zlb_mempool_rejects_total", "Transactions rejected by the mempool, by reason.",
			func() float64 { return float64(pool.Stats().Rejects[r]) }, "reason", r)
	}
	return m
}

// wireTransport registers the transport's node-wide counters and the
// per-peer health series. All values are read from the transport's
// lock-free counters at scrape time, so the series cost nothing on the
// consensus path.
func (m *nodeMetrics) wireTransport(node *transport.Node, members []types.ReplicaID) {
	reg := m.reg
	reg.CounterFunc("zlb_transport_frames_sent_total", "Frames written to peer connections.",
		func() float64 { return float64(node.Stats().Sent) })
	reg.CounterFunc("zlb_transport_events_received_total", "Events handled by the replica's event loop.",
		func() float64 { return float64(node.Stats().Received) })
	reg.CounterFunc("zlb_transport_events_dropped", "Inbound or self events dropped by a full event queue.",
		func() float64 { return float64(node.Stats().EventsDropped) })
	reg.CounterFunc("zlb_transport_decode_errors", "Inbound frames that failed to decode (connection dropped).",
		func() float64 { return float64(node.Stats().DecodeErrors) })
	reg.CounterFunc("zlb_transport_send_drops_total", "Outbound frames displaced from full peer queues.",
		func() float64 { return float64(node.Stats().SendDrops) })
	reg.CounterFunc("zlb_transport_submit_backpressure_total", "Client submits refused with a backpressure ack.",
		func() float64 { return float64(node.Stats().SubmitBackpressure) })

	self := node.Self()
	for _, id := range members {
		if id == self {
			continue
		}
		peer := id
		label := fmt.Sprintf("%d", peer)
		reg.GaugeFunc("zlb_peer_state", "Peer connection state (0=idle 1=connected 2=backoff 3=suspect).",
			func() float64 { return float64(node.PeerHealthFor(peer).State) }, "peer", label)
		reg.GaugeFunc("zlb_peer_queue_len", "Frames waiting in the peer's outbound queue.",
			func() float64 { return float64(node.PeerHealthFor(peer).QueueLen) }, "peer", label)
		reg.GaugeFunc("zlb_peer_consecutive_failures", "Consecutive dial or write failures toward the peer.",
			func() float64 { return float64(node.PeerHealthFor(peer).ConsecutiveFailures) }, "peer", label)
		reg.CounterFunc("zlb_peer_sent_total", "Frames delivered to the peer.",
			func() float64 { return float64(node.PeerHealthFor(peer).SentMsgs) }, "peer", label)
		reg.CounterFunc("zlb_peer_sent_bytes_total", "Bytes delivered to the peer.",
			func() float64 { return float64(node.PeerHealthFor(peer).SentBytes) }, "peer", label)
		reg.CounterFunc("zlb_peer_drops_total", "Frames to the peer displaced by queue overflow or failed past the retry budget.",
			func() float64 { return float64(node.PeerHealthFor(peer).Drops) }, "peer", label)
		reg.CounterFunc("zlb_peer_reconnects_total", "Times the writer re-established the peer's connection.",
			func() float64 { return float64(node.PeerHealthFor(peer).Reconnects) }, "peer", label)
	}
}

// status is the /status JSON document: the same state the metrics expose,
// in one human- and script-friendly snapshot.
type status struct {
	ID              types.ReplicaID `json:"id"`
	N               int             `json:"n"`
	Height          int64           `json:"height"`
	Epoch           int64           `json:"epoch"`
	BlocksCommitted uint64          `json:"blocks_committed"`
	BlocksMerged    uint64          `json:"blocks_merged"`
	TxsApplied      uint64          `json:"txs_applied"`
	ProvenCulprits  uint64          `json:"proven_culprits"`
	Mempool         mempool.Stats   `json:"mempool"`
	// Transport is the node-wide transport counter snapshot; Peers is
	// per-peer send-path health (state, failures, drops, reconnects).
	Transport     transport.Stats        `json:"transport"`
	Peers         []transport.PeerHealth `json:"peers"`
	UptimeSeconds float64                `json:"uptime_seconds"`
}

func (rn *replicaNode) statusSnapshot() status {
	m := rn.metrics
	return status{
		ID:              rn.cfg.Self,
		N:               rn.cfg.N,
		Height:          m.height.Value(),
		Epoch:           m.epoch.Value(),
		BlocksCommitted: m.committed.Value(),
		BlocksMerged:    m.merged.Value(),
		TxsApplied:      m.txApplied.Value(),
		ProvenCulprits:  m.culprits.Value(),
		Mempool:         rn.pool.Stats(),
		Transport:       rn.node.Stats(),
		Peers:           rn.node.PeerHealth(),
		UptimeSeconds:   time.Since(rn.startedAt).Seconds(),
	}
}

// startMetricsServer binds addr and serves /metrics, /status and
// /debug/pprof/ until Close. The bound address is available through
// metricsAddr (tests bind ":0").
func (rn *replicaNode) startMetricsServer(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("metrics listener: %w", err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = rn.metrics.reg.WritePrometheus(w)
	})
	mux.HandleFunc("/status", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(rn.statusSnapshot())
	})
	// The pprof handlers are registered explicitly on this mux (importing
	// net/http/pprof for its side effect would pollute the default mux).
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	rn.metricsLn = ln
	rn.httpSrv = &http.Server{Handler: mux}
	go func() {
		if err := rn.httpSrv.Serve(ln); err != nil && err != http.ErrServerClosed {
			rn.log.Errorf("metrics server: %v", err)
		}
	}()
	rn.log.Infof("metrics on http://%s/metrics", ln.Addr())
	return nil
}

// metricsAddr reports the bound metrics address ("" when disabled).
func (rn *replicaNode) metricsAddr() string {
	if rn.metricsLn == nil {
		return ""
	}
	return rn.metricsLn.Addr().String()
}
