package main

import (
	"encoding/gob"
	"fmt"
	"net"
	"os"
	"syscall"
	"testing"
	"time"

	"github.com/zeroloss/zlb/internal/crypto"
	"github.com/zeroloss/zlb/internal/obs"
	"github.com/zeroloss/zlb/internal/transport"
	"github.com/zeroloss/zlb/internal/types"
	"github.com/zeroloss/zlb/internal/utxo"
)

// nodeState reads a replica's chain state on its event loop.
type nodeState struct {
	Height  int
	LastK   uint64
	Digests map[uint64]types.Digest
	Faucet  types.Amount
}

func (rn *replicaNode) state() nodeState {
	ch := make(chan nodeState, 1)
	rn.node.Do(func() {
		ch <- nodeState{
			Height:  rn.ledger.Height(),
			LastK:   rn.ledger.LastK(),
			Digests: rn.ledger.BlockDigests(),
			Faucet:  rn.ledger.Table().Balance(rn.faucet),
		}
	})
	return <-ch
}

// freeAddrs reserves n distinct localhost ports and releases them for
// the nodes to claim.
func freeAddrs(t *testing.T, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	listeners := make([]net.Listener, n)
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		listeners[i] = ln
		addrs[i] = ln.Addr().String()
	}
	for _, ln := range listeners {
		ln.Close()
	}
	return addrs
}

// testClient chains faucet payments exactly like cmd/zlb-client.
type testClient struct {
	t      *testing.T
	faucet *utxo.Wallet
	prev   utxo.Input
	addrs  []string
}

func newTestClient(t *testing.T, seed int64, addrs []string) *testClient {
	t.Helper()
	reg := crypto.NewRegistry(crypto.SchemeEd25519)
	scheme, err := crypto.NewScheme(crypto.SchemeEd25519, reg)
	if err != nil {
		t.Fatal(err)
	}
	kp, err := scheme.GenerateKey(crypto.NewDeterministicRand(seed ^ 0xFA0CE7))
	if err != nil {
		t.Fatal(err)
	}
	return &testClient{
		t:      t,
		faucet: utxo.NewWallet(kp, scheme),
		prev:   utxo.Input{Prev: utxo.Outpoint{TxID: types.Hash([]byte("genesis")), Index: 0}, Value: 1_000_000_000},
		addrs:  addrs,
	}
}

type clientEnvelope struct {
	From types.ReplicaID
	Msg  any
}

// submit pays amount to a throwaway recipient, broadcasting to the given
// replica subset (indices into addrs). Delivery to EVERY listed replica
// is retried until it succeeds: when exactly n−t replicas are alive, SBC
// waits for n−t delivered proposals before voting 0 on absent slots, so
// every live replica must have work to propose or the instance stalls —
// real clients likewise broadcast with retries (§4.2).
func (c *testClient) submit(amount types.Amount, to ...int) {
	c.t.Helper()
	tx, err := c.faucet.Pay([]utxo.Input{c.prev},
		[]utxo.Output{{Account: utxo.Address(types.Hash([]byte("sink"))), Value: amount}})
	if err != nil {
		c.t.Fatal(err)
	}
	changeIdx := uint32(len(tx.Outputs) - 1)
	c.prev = utxo.Input{
		Prev:  utxo.Outpoint{TxID: tx.ID(), Index: changeIdx},
		Value: tx.Outputs[changeIdx].Value,
	}
	for _, i := range to {
		delivered := false
		deadline := time.Now().Add(15 * time.Second)
		for time.Now().Before(deadline) {
			conn, err := net.DialTimeout("tcp", c.addrs[i], 2*time.Second)
			if err == nil {
				enc := gob.NewEncoder(conn)
				err = enc.Encode(clientEnvelope{From: 0, Msg: &transport.SubmitTx{Tx: tx}})
				conn.Close()
				if err == nil {
					delivered = true
					break
				}
			}
			time.Sleep(50 * time.Millisecond)
		}
		if !delivered {
			c.t.Fatalf("transaction never reached replica %d", i+1)
		}
	}
}

// waitFor polls until cond returns true or the deadline passes.
func waitFor(t *testing.T, timeout time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(100 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestNodeKillRestartRecovers is the acceptance integration test: a
// 4-replica TCP cluster commits payments, replica 4 is killed mid-run,
// the survivors keep committing, and replica 4 restarted with the same
// -data-dir recovers its persisted chain and UTXO state from disk, then
// catches the missed tail up from its peers until its ledger digests
// match the survivors' bit for bit.
func TestNodeKillRestartRecovers(t *testing.T) {
	if testing.Short() {
		t.Skip("real-TCP integration test")
	}
	const n = 4
	const seed = int64(7)
	addrs := freeAddrs(t, n)
	dataDirs := make([]string, n)
	for i := range dataDirs {
		dataDirs[i] = t.TempDir()
	}

	mkNode := func(i int) *replicaNode {
		rn, err := newReplicaNode(nodeConfig{
			Self:            types.ReplicaID(i + 1),
			N:               n,
			Listen:          addrs[i],
			Peers:           addrs,
			Seed:            seed,
			DataDir:         dataDirs[i],
			CheckpointEvery: 2,
		})
		if err != nil {
			t.Fatalf("node %d: %v", i+1, err)
		}
		go rn.Serve()
		return rn
	}
	nodes := make([]*replicaNode, n)
	for i := 0; i < n; i++ {
		nodes[i] = mkNode(i)
	}
	defer func() {
		for _, rn := range nodes {
			if rn != nil {
				rn.Close()
			}
		}
	}()

	client := newTestClient(t, seed, addrs)
	// Commit a few blocks with everyone up.
	for b := 0; b < 3; b++ {
		client.submit(types.Amount(1000+b), 0, 1, 2, 3)
		want := b + 1
		waitFor(t, 30*time.Second, fmt.Sprintf("block %d on all replicas", want), func() bool {
			for i := 0; i < n; i++ {
				if nodes[i].state().Height < want {
					return false
				}
			}
			return true
		})
	}
	killedState := nodes[3].state()
	if killedState.Height < 3 {
		t.Fatalf("replica 4 height %d before kill, want ≥ 3", killedState.Height)
	}

	// Kill replica 4; the remaining 3 (the exact ⌈2n/3⌉ quorum) continue.
	nodes[3].Close()
	nodes[3] = nil
	for b := 3; b < 5; b++ {
		client.submit(types.Amount(2000+b), 0, 1, 2)
		want := b + 1
		waitFor(t, 60*time.Second, fmt.Sprintf("block %d on the survivors", want), func() bool {
			for i := 0; i < 3; i++ {
				if nodes[i].state().Height < want {
					return false
				}
			}
			return true
		})
	}

	// Restart replica 4 from its data directory.
	nodes[3] = mkNode(3)
	restored := nodes[3].state()
	if restored.Height < killedState.Height {
		t.Fatalf("restart recovered height %d from disk, want ≥ %d", restored.Height, killedState.Height)
	}
	for k, d := range killedState.Digests {
		if restored.Digests[k] != d {
			t.Fatalf("recovered block %d digest differs from pre-kill state", k)
		}
	}

	// It must converge to the survivors' chain (catch-up of the missed
	// tail), including the recovered UTXO state.
	waitFor(t, 60*time.Second, "replica 4 catching up to the honest chain", func() bool {
		ref := nodes[0].state()
		got := nodes[3].state()
		if got.LastK < ref.LastK || got.Faucet != ref.Faucet {
			return false
		}
		for k, d := range ref.Digests {
			if got.Digests[k] != d {
				return false
			}
		}
		return true
	})
}

// TestNodeCleanSignalShutdown is the clean-signal counterpart of the
// kill/restart test: replica 4 is shut down via SIGTERM through the same
// handler main installs. The shutdown must stop accepting, drain the
// event loop and close the store before Close returns (rn.served), the
// survivors keep committing, and a restart from the same data directory
// recovers the full pre-shutdown chain — the graceful path must be at
// least as safe as the abrupt one.
func TestNodeCleanSignalShutdown(t *testing.T) {
	if testing.Short() {
		t.Skip("real-TCP integration test")
	}
	const n = 4
	const seed = int64(13)
	addrs := freeAddrs(t, n)
	dataDirs := make([]string, n)
	for i := range dataDirs {
		dataDirs[i] = t.TempDir()
	}

	mkNode := func(i int) *replicaNode {
		rn, err := newReplicaNode(nodeConfig{
			Self:            types.ReplicaID(i + 1),
			N:               n,
			Listen:          addrs[i],
			Peers:           addrs,
			Seed:            seed,
			DataDir:         dataDirs[i],
			CheckpointEvery: 2,
		})
		if err != nil {
			t.Fatalf("node %d: %v", i+1, err)
		}
		go rn.Serve()
		return rn
	}
	nodes := make([]*replicaNode, n)
	for i := 0; i < n; i++ {
		nodes[i] = mkNode(i)
	}
	defer func() {
		for _, rn := range nodes {
			if rn != nil {
				rn.Close()
			}
		}
	}()

	client := newTestClient(t, seed, addrs)
	for b := 0; b < 2; b++ {
		client.submit(types.Amount(700+b), 0, 1, 2, 3)
		want := b + 1
		waitFor(t, 30*time.Second, fmt.Sprintf("block %d on all replicas", want), func() bool {
			for i := 0; i < n; i++ {
				if nodes[i].state().Height < want {
					return false
				}
			}
			return true
		})
	}
	preShutdown := nodes[3].state()
	if preShutdown.Height < 2 {
		t.Fatalf("replica 4 height %d before shutdown, want ≥ 2", preShutdown.Height)
	}

	// Arm the same handler main() installs and deliver a real SIGTERM.
	stop := shutdownOnSignal(nodes[3], obs.NewLogger(t.Logf, obs.LevelDebug))
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case <-nodes[3].served: // Serve exited and the store is closed
	case <-time.After(30 * time.Second):
		t.Fatal("signal shutdown did not drain within 30s")
	}
	stop()
	nodes[3] = nil

	// The survivors (exact quorum) keep committing.
	client.submit(types.Amount(900), 0, 1, 2)
	waitFor(t, 60*time.Second, "block 3 on the survivors", func() bool {
		for i := 0; i < 3; i++ {
			if nodes[i].state().Height < 3 {
				return false
			}
		}
		return true
	})

	// Restart from the cleanly-closed store: the full pre-shutdown chain
	// must be on disk, and the node must converge with its peers.
	nodes[3] = mkNode(3)
	restored := nodes[3].state()
	if restored.Height < preShutdown.Height {
		t.Fatalf("restart recovered height %d, want ≥ %d", restored.Height, preShutdown.Height)
	}
	for k, d := range preShutdown.Digests {
		if restored.Digests[k] != d {
			t.Fatalf("recovered block %d digest differs from pre-shutdown state", k)
		}
	}
	waitFor(t, 60*time.Second, "replica 4 rejoining after clean shutdown", func() bool {
		ref := nodes[0].state()
		got := nodes[3].state()
		if got.LastK < ref.LastK || got.Faucet != ref.Faucet {
			return false
		}
		for k, d := range ref.Digests {
			if got.Digests[k] != d {
				return false
			}
		}
		return true
	})
}

// TestNodeSyncBootstrap exercises the standby catch-up path: a node with
// an empty data directory and -sync asks its peers for their checkpoint
// + log tail, cross-checks the responses, and installs the chain before
// joining consensus.
func TestNodeSyncBootstrap(t *testing.T) {
	if testing.Short() {
		t.Skip("real-TCP integration test")
	}
	const n = 4
	const seed = int64(11)
	addrs := freeAddrs(t, n)
	dataDirs := make([]string, n)
	for i := range dataDirs {
		dataDirs[i] = t.TempDir()
	}

	mkNode := func(i int, sync bool) *replicaNode {
		rn, err := newReplicaNode(nodeConfig{
			Self:            types.ReplicaID(i + 1),
			N:               n,
			Listen:          addrs[i],
			Peers:           addrs,
			Seed:            seed,
			DataDir:         dataDirs[i],
			CheckpointEvery: 2,
			Sync:            sync,
			SyncTimeout:     10 * time.Second,
		})
		if err != nil {
			t.Fatalf("node %d: %v", i+1, err)
		}
		go rn.Serve()
		return rn
	}
	nodes := make([]*replicaNode, n)
	for i := 0; i < 3; i++ {
		nodes[i] = mkNode(i, false)
	}
	defer func() {
		for _, rn := range nodes {
			if rn != nil {
				rn.Close()
			}
		}
	}()

	client := newTestClient(t, seed, addrs)
	for b := 0; b < 4; b++ {
		client.submit(types.Amount(500+b), 0, 1, 2)
		want := b + 1
		waitFor(t, 60*time.Second, fmt.Sprintf("block %d on the initial trio", want), func() bool {
			for i := 0; i < 3; i++ {
				if nodes[i].state().Height < want {
					return false
				}
			}
			return true
		})
	}

	// Replica 4 joins late with an empty store and -sync: it bootstraps
	// the chain from its peers' stores.
	nodes[3] = mkNode(3, true)
	waitFor(t, 60*time.Second, "standby bootstrapping the chain", func() bool {
		ref := nodes[0].state()
		got := nodes[3].state()
		if got.LastK < ref.LastK || got.Faucet != ref.Faucet {
			return false
		}
		for k, d := range ref.Digests {
			if got.Digests[k] != d {
				return false
			}
		}
		return true
	})
}
