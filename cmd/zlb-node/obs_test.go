package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"testing"
	"time"

	"github.com/zeroloss/zlb/internal/mempool"
	"github.com/zeroloss/zlb/internal/transport"
	"github.com/zeroloss/zlb/internal/types"
)

// TestNodeMetricsEndpoint is the observability smoke test: a real-TCP
// cluster commits payments while replica 1 serves -metrics-addr, and the
// test scrapes /metrics (Prometheus text), /status (JSON) and
// /debug/pprof/ like a monitoring stack would.
func TestNodeMetricsEndpoint(t *testing.T) {
	if testing.Short() {
		t.Skip("real-TCP integration test")
	}
	const n = 4
	const seed = int64(11)
	addrs := freeAddrs(t, n)

	nodes := make([]*replicaNode, n)
	for i := 0; i < n; i++ {
		cfg := nodeConfig{
			Self:   types.ReplicaID(i + 1),
			N:      n,
			Listen: addrs[i],
			Peers:  addrs,
			Seed:   seed,
			Logf:   t.Logf,
		}
		if i == 0 {
			cfg.MetricsAddr = "127.0.0.1:0"
		}
		rn, err := newReplicaNode(cfg)
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = rn
		go rn.Serve()
	}
	defer func() {
		for _, rn := range nodes {
			rn.Close()
		}
	}()

	base := "http://" + nodes[0].metricsAddr()
	if base == "http://" {
		t.Fatal("replica 1 did not bind a metrics listener")
	}

	client := newTestClient(t, seed, addrs)
	const blocks = 2
	for b := 0; b < blocks; b++ {
		client.submit(types.Amount(500+b), 0, 1, 2, 3)
		want := b + 1
		waitFor(t, 30*time.Second, fmt.Sprintf("block %d on all replicas", want), func() bool {
			for i := 0; i < n; i++ {
				if nodes[i].state().Height < want {
					return false
				}
			}
			return true
		})
	}

	body := scrape(t, base+"/metrics")
	for _, series := range []string{
		"zlb_height",
		"zlb_epoch",
		"zlb_blocks_committed_total",
		"zlb_blocks_merged_total",
		"zlb_proven_culprits_total",
		"zlb_mempool_pending",
		"zlb_mempool_bytes",
		"zlb_mempool_admitted_total",
		"zlb_commit_latency_seconds_count",
	} {
		if !strings.Contains(body, "\n"+series+" ") {
			t.Errorf("/metrics missing series %s", series)
		}
	}
	// Every reject reason is pre-registered, zeros included.
	for _, reason := range mempool.RejectReasons {
		if !strings.Contains(body, fmt.Sprintf("zlb_mempool_rejects_total{reason=%q}", reason)) {
			t.Errorf("/metrics missing reject series for reason %q", reason)
		}
	}
	if v := seriesValue(t, body, "zlb_height"); v < blocks {
		t.Errorf("zlb_height = %v, want >= %d", v, blocks)
	}
	if v := seriesValue(t, body, "zlb_blocks_committed_total"); v < blocks {
		t.Errorf("zlb_blocks_committed_total = %v, want >= %d", v, blocks)
	}
	if v := seriesValue(t, body, "zlb_mempool_admitted_total"); v < blocks {
		t.Errorf("zlb_mempool_admitted_total = %v, want >= %d", v, blocks)
	}
	if v := seriesValue(t, body, "zlb_commit_latency_seconds_count"); v < blocks {
		t.Errorf("zlb_commit_latency_seconds_count = %v, want >= %d", v, blocks)
	}

	// Transport counters and per-peer health series (registered for every
	// configured peer, zeros included).
	for _, series := range []string{
		"zlb_transport_frames_sent_total",
		"zlb_transport_events_received_total",
		"zlb_transport_events_dropped",
		"zlb_transport_decode_errors",
		"zlb_transport_send_drops_total",
		"zlb_transport_submit_backpressure_total",
	} {
		if !strings.Contains(body, "\n"+series+" ") {
			t.Errorf("/metrics missing series %s", series)
		}
	}
	for peer := 2; peer <= n; peer++ {
		for _, series := range []string{
			"zlb_peer_state",
			"zlb_peer_queue_len",
			"zlb_peer_consecutive_failures",
			"zlb_peer_sent_total",
			"zlb_peer_sent_bytes_total",
			"zlb_peer_drops_total",
			"zlb_peer_reconnects_total",
		} {
			if !strings.Contains(body, fmt.Sprintf("%s{peer=%q}", series, strconv.Itoa(peer))) {
				t.Errorf("/metrics missing per-peer series %s for peer %d", series, peer)
			}
		}
	}
	if v := seriesValue(t, body, "zlb_transport_frames_sent_total"); v <= 0 {
		t.Errorf("zlb_transport_frames_sent_total = %v after committed blocks, want > 0", v)
	}

	var st status
	if err := json.Unmarshal([]byte(scrape(t, base+"/status")), &st); err != nil {
		t.Fatalf("decoding /status: %v", err)
	}
	if st.ID != 1 || st.N != n {
		t.Errorf("/status identity = (%v, %d), want (1, %d)", st.ID, st.N, n)
	}
	if st.Height < blocks {
		t.Errorf("/status height = %d, want >= %d", st.Height, blocks)
	}
	if st.BlocksCommitted < blocks {
		t.Errorf("/status blocks_committed = %d, want >= %d", st.BlocksCommitted, blocks)
	}
	if st.Mempool.Admitted < blocks {
		t.Errorf("/status mempool.admitted = %d, want >= %d", st.Mempool.Admitted, blocks)
	}
	if len(st.Peers) != n-1 {
		t.Errorf("/status lists %d peers, want %d", len(st.Peers), n-1)
	}
	for _, p := range st.Peers {
		if p.State != transport.StateConnected {
			t.Errorf("/status peer %v state %v after committed blocks, want connected", p.ID, p.State)
		}
		if p.SentMsgs == 0 {
			t.Errorf("/status peer %v shows no delivered frames after committed blocks", p.ID)
		}
	}
	if st.Transport.Sent <= 0 {
		t.Errorf("/status transport.Sent = %d after committed blocks, want > 0", st.Transport.Sent)
	}

	if idx := scrape(t, base+"/debug/pprof/"); !strings.Contains(idx, "goroutine") {
		t.Error("/debug/pprof/ index does not list the goroutine profile")
	}
}

func scrape(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("reading %s: %v", url, err)
	}
	return string(body)
}

// seriesValue extracts an unlabeled sample's value from a Prometheus
// text body.
func seriesValue(t *testing.T, body, name string) float64 {
	t.Helper()
	for _, line := range strings.Split(body, "\n") {
		rest, ok := strings.CutPrefix(line, name+" ")
		if !ok {
			continue
		}
		v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
		if err != nil {
			t.Fatalf("parsing %s sample %q: %v", name, line, err)
		}
		return v
	}
	t.Fatalf("series %s not found", name)
	return 0
}
