// Command zlb-client submits signed transactions to a running zlb-node
// cluster. It owns the demo faucet account (derived from the shared seed)
// and pays any recipient from it.
//
//	zlb-client -peers 127.0.0.1:7001,127.0.0.1:7002,... -to cafe01 -amount 500
//
// The client broadcasts the transaction to every replica, as the paper's
// open permissioned model prescribes (§4.2): permissionless clients,
// permissioned replicas.
package main

import (
	"encoding/gob"
	"encoding/hex"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"strings"
	"time"

	"github.com/zeroloss/zlb/internal/crypto"
	"github.com/zeroloss/zlb/internal/transport"
	"github.com/zeroloss/zlb/internal/types"
	"github.com/zeroloss/zlb/internal/utxo"
)

func main() {
	peersFlag := flag.String("peers", "", "comma-separated replica addresses")
	seed := flag.Int64("seed", 1, "shared PKI seed (must match the nodes)")
	to := flag.String("to", "", "recipient address prefix (hex) or empty for a demo recipient")
	amount := flag.Uint64("amount", 1000, "coins to transfer")
	count := flag.Int("count", 1, "number of transactions to submit")
	schemeName := flag.String("scheme", "ed25519", "transaction signature scheme: ed25519 or ecdsa (must match the nodes' -scheme)")
	flag.Parse()

	if *peersFlag == "" {
		flag.Usage()
		os.Exit(2)
	}
	if err := run(strings.Split(*peersFlag, ","), *seed, *schemeName, *to, types.Amount(*amount), *count); err != nil {
		log.Fatal(err)
	}
}

func run(addrs []string, seed int64, schemeName, toHex string, amount types.Amount, count int) error {
	transport.RegisterWireTypes()

	var kind crypto.SchemeKind
	switch schemeName {
	case "", "ed25519":
		kind = crypto.SchemeEd25519
	case "ecdsa", "ecdsa-p256":
		kind = crypto.SchemeECDSA
	default:
		return fmt.Errorf("unknown -scheme %q (want ed25519 or ecdsa)", schemeName)
	}
	reg := crypto.NewRegistry(kind)
	scheme, err := crypto.NewScheme(kind, reg)
	if err != nil {
		return err
	}
	faucetKP, err := scheme.GenerateKey(crypto.NewDeterministicRand(seed ^ 0xFA0CE7))
	if err != nil {
		return err
	}
	faucet := utxo.NewWallet(faucetKP, scheme)

	recipient := demoRecipient(scheme)
	if toHex != "" {
		b, err := hex.DecodeString(toHex)
		if err != nil || len(b) == 0 || len(b) > 32 {
			return fmt.Errorf("bad -to address %q", toHex)
		}
		var addr utxo.Address
		copy(addr[:], b)
		recipient = addr
	}

	// The client tracks the faucet's genesis output locally: the demo
	// genesis gives the faucet a single 1e9 UTXO; sequential spends chain
	// through the change outputs.
	genesisOut := utxo.Outpoint{TxID: types.Hash([]byte("genesis")), Index: 0}
	prev := utxo.Input{Prev: genesisOut, Value: 1_000_000_000}

	conns, err := dialAll(addrs)
	if err != nil {
		return err
	}
	defer func() {
		for _, c := range conns {
			c.conn.Close()
		}
	}()

	for i := 0; i < count; i++ {
		tx, err := faucet.Pay([]utxo.Input{prev}, []utxo.Output{{Account: recipient, Value: amount}})
		if err != nil {
			return fmt.Errorf("building tx %d: %w", i, err)
		}
		// Chain through the change output (always the last output).
		changeIdx := uint32(len(tx.Outputs) - 1)
		prev = utxo.Input{
			Prev:  utxo.Outpoint{TxID: tx.ID(), Index: changeIdx},
			Value: tx.Outputs[changeIdx].Value,
		}
		msg := &transport.SubmitTx{Tx: tx}
		sent, refused := 0, 0
		for _, c := range conns {
			if err := c.enc.Encode(envelopeFor(msg)); err != nil {
				continue
			}
			// The node acks every submit on the same connection: OK when
			// it reached the replica's event loop, a typed refusal when
			// the node is overloaded (backpressure) — the wallet-visible
			// alternative to silent loss.
			switch ack := c.readAck(); {
			case ack == nil: // node predates acks or the read timed out
				sent++
			case ack.OK:
				sent++
			default:
				refused++
				log.Printf("replica refused tx %v: %s", tx.ID(), ack.Err)
			}
		}
		fmt.Printf("tx %v (%d coins → %v) submitted to %d/%d replicas (%d refused)\n",
			tx.ID(), amount, recipient, sent, len(conns), refused)
		time.Sleep(50 * time.Millisecond)
	}
	return nil
}

// clientEnvelope mirrors the node's wire frame; clients send as replica 0
// (an unprivileged identity — transactions authenticate themselves).
type clientEnvelope struct {
	From types.ReplicaID
	Msg  any
}

func envelopeFor(msg any) clientEnvelope { return clientEnvelope{From: 0, Msg: msg} }

type clientConn struct {
	conn net.Conn
	enc  *gob.Encoder
	dec  *gob.Decoder
}

// readAck reads the node's SubmitAck for the last submit, best-effort:
// nil when the node never answers (the submit still counts as sent —
// clients stay compatible with fire-and-forget nodes).
func (c clientConn) readAck() *transport.SubmitAck {
	c.conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	defer c.conn.SetReadDeadline(time.Time{})
	var env clientEnvelope
	if err := c.dec.Decode(&env); err != nil {
		return nil
	}
	ack, _ := env.Msg.(*transport.SubmitAck)
	return ack
}

func dialAll(addrs []string) ([]clientConn, error) {
	var out []clientConn
	for _, a := range addrs {
		conn, err := net.DialTimeout("tcp", a, 2*time.Second)
		if err != nil {
			log.Printf("dial %s: %v (skipping)", a, err)
			continue
		}
		out = append(out, clientConn{conn: conn, enc: gob.NewEncoder(conn), dec: gob.NewDecoder(conn)})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no replica reachable")
	}
	return out, nil
}

func demoRecipient(scheme crypto.Scheme) utxo.Address {
	kp, err := scheme.GenerateKey(crypto.NewDeterministicRand(0xbeef))
	if err != nil {
		return utxo.Address{}
	}
	return utxo.AddressOf(kp.Public())
}
