// Package zlb is the public API of the Zero-Loss Blockchain, a
// reproduction of "ZLB: A Blockchain to Tolerate Colluding Majorities"
// (Ranchal-Pedrosa & Gramoli, DSN 2024): the first blockchain tolerating
// an adversary that controls more than half of the replicas under partial
// synchrony.
//
// ZLB combines an accountable state machine replication (every consensus
// vote is a signed statement; disagreements yield transferable proofs of
// fraud), a membership change that excludes provably deceitful replicas
// and includes standbys from a pool, and a blockchain manager that merges
// the branches of a fork instead of discarding one — funding conflicting
// transactions out of the slashed deposits so that no honest account
// loses a coin.
//
// The package offers an in-process simulated deployment (NewCluster) for
// experimentation and testing. Protocol internals live under internal/:
// the accountable SBC stack (rbc, bincon, sbc), accountability
// (statements, certificates, PoFs), the ASMR orchestration, the UTXO
// ledger, the indexed mempool and the block-merge logic, the binary
// wire codecs (internal/wire) framing batches and proofs, the durable
// block store with UTXO checkpoints and catch-up sync (internal/store,
// enabled by Config.DataDir), as well as the baselines (HotStuff, Red
// Belly and Polygraph modes) and the staged fault campaigns
// (internal/scenario) used by the evaluation. See ARCHITECTURE.md for
// the paper-to-package map.
//
// # Crypto-agility
//
// Signature schemes are capability-based (internal/crypto): every scheme
// signs and verifies, and may additionally implement aggregation, batch
// verification, or per-signer extraction, discovered at runtime by the
// certificate layer. The matrix:
//
//	scheme      payments (Config.Scheme)   consensus certs   Aggregator   BatchVerifier
//	ed25519     yes (default)              no (sim PKI)      no           yes
//	ecdsa       yes                        no (sim PKI)      no           no
//	sim         no (registry-backed MAC)   yes (harness)     yes          yes
//
// The simulated consensus PKI is the registry-backed sim scheme, which
// implements every capability, so Config.AggregateCerts always takes
// effect: certificates carry one aggregate signature plus a signer
// bitmap instead of a quorum of signed statements, shrinking DECIDE
// messages and catch-up transfers while preserving proof-of-fraud
// attribution (per-signer statements are re-extracted on demand).
// Payments cannot use sim: its MACs only authenticate identities inside
// the shared registry, not out-of-process wallets.
//
// Quickstart:
//
//	cluster, _ := zlb.NewCluster(zlb.Config{N: 7, InitialFunds: map[zlb.Address]zlb.Amount{...}})
//	wallet := cluster.WalletFor(0) // pre-funded test wallet
//	tx, _ := cluster.Pay(wallet, recipient, 100)
//	cluster.Submit(tx)
//	cluster.Run(30 * time.Second) // virtual time
//	fmt.Println(cluster.Balance(recipient))
package zlb

import (
	"errors"
	"fmt"
	"path/filepath"
	"time"

	"github.com/zeroloss/zlb/internal/accountability"
	"github.com/zeroloss/zlb/internal/adversary"
	"github.com/zeroloss/zlb/internal/asmr"
	"github.com/zeroloss/zlb/internal/bm"
	"github.com/zeroloss/zlb/internal/crypto"
	"github.com/zeroloss/zlb/internal/harness"
	"github.com/zeroloss/zlb/internal/latency"
	"github.com/zeroloss/zlb/internal/membership"
	"github.com/zeroloss/zlb/internal/mempool"
	"github.com/zeroloss/zlb/internal/obs"
	"github.com/zeroloss/zlb/internal/payment"
	"github.com/zeroloss/zlb/internal/pipeline"
	"github.com/zeroloss/zlb/internal/sbc"
	"github.com/zeroloss/zlb/internal/simnet"
	"github.com/zeroloss/zlb/internal/store"
	"github.com/zeroloss/zlb/internal/types"
	"github.com/zeroloss/zlb/internal/utxo"
	"github.com/zeroloss/zlb/internal/wire"
)

// Re-exported primitive types, so applications only import this package.
type (
	// Address identifies a payment account (hash of its public key).
	Address = utxo.Address
	// Amount is a coin amount.
	Amount = types.Amount
	// Transaction is a Bitcoin-style UTXO transaction.
	Transaction = utxo.Transaction
	// Wallet signs transactions for one key pair.
	Wallet = utxo.Wallet
	// ReplicaID identifies a consensus replica.
	ReplicaID = types.ReplicaID
	// Digest is a 32-byte content hash (transaction IDs, block digests).
	Digest = types.Digest
	// PoF is an undeniable proof of fraud against a deceitful replica.
	PoF = accountability.PoF
	// Outpoint references one output of an earlier transaction.
	Outpoint = utxo.Outpoint
	// Input consumes a previous transaction output.
	Input = utxo.Input
	// Output grants coins to an account.
	Output = utxo.Output
	// MempoolPolicy parameterizes mempool admission control (fee floor,
	// priority ordering, per-account caps and rate limits,
	// replacement-by-fee, size-bounded eviction). The zero value is fully
	// permissive arrival-order queueing — the pre-admission behavior all
	// fixed-seed goldens run under.
	MempoolPolicy = mempool.Policy
)

// Attack selects a coalition attack for adversarial experiments.
type Attack int

// Attacks available to Config.
const (
	// NoAttack runs every replica honestly.
	NoAttack Attack = iota
	// BinaryConsensusAttack splits binary votes across partitions (§B).
	BinaryConsensusAttack
	// ReliableBroadcastAttack sends different proposals to different
	// partitions (§B).
	ReliableBroadcastAttack
)

// Config parameterizes an in-process ZLB deployment.
type Config struct {
	// N is the committee size (required, ≥ 4).
	N int
	// PoolSize is the number of standby candidate replicas (default N).
	PoolSize int
	// InitialFunds seeds the genesis block. WalletCount pre-funded test
	// wallets are created in addition (each with WalletFunds coins).
	InitialFunds map[Address]Amount
	// WalletCount pre-funds this many test wallets (default 3).
	WalletCount int
	// WalletFunds is each test wallet's genesis balance (default 1e6).
	WalletFunds Amount
	// GainBound is G, the per-block double-spend bound used to size
	// deposits (default: total genesis funds).
	GainBound Amount
	// DepositFactor is b in D = b·G (default 0.1, the paper's Fig. 6).
	DepositFactor float64
	// FinalizationDepth is m, the blockdepth before deposits return
	// (default: derived from DepositFactor for ρ = 0.55 per §B).
	FinalizationDepth int
	// MaxBlocks bounds the chain length for bounded runs (default 32).
	MaxBlocks uint64
	// Seed drives all randomness (default 1).
	Seed int64

	// Scheme selects the payment-side signature scheme: "ed25519"
	// (default) or "ecdsa". "sim" is rejected — its registry-backed MACs
	// cannot authenticate out-of-process wallets. The consensus PKI is
	// independent (the harness's sim scheme); see the package comment's
	// compatibility matrix.
	Scheme string
	// AggregateCerts makes every consensus certificate carry one
	// aggregate signature plus a signer bitmap instead of a quorum of
	// individual signed statements, when the consensus scheme implements
	// crypto.Aggregator (the simulated PKI does). Decisions, exclusions
	// and proven culprits are identical either way — only certificate
	// size and verification cost change, so virtual-time metrics shift.
	// Off by default, which keeps all fixed-seed goldens bit-identical.
	AggregateCerts bool

	// SequentialCommit forces the multi-core commit pipeline
	// (internal/pipeline) off: transaction signatures, certificates and
	// block application all run inline on the event loop, with no worker
	// pool, no speculative pre-verification and no shared verdicts. The
	// default (false) fans that work out across runtime.GOMAXPROCS
	// workers. Both modes produce bit-identical chains, balances and
	// virtual-time metrics — the determinism tests pin this; the knob
	// exists for those tests and for debugging.
	SequentialCommit bool

	// SequentialSim forces the simulator's classic one-event-at-a-time
	// loop instead of conservative parallel windows
	// (simnet.Config.SequentialSim). Orthogonal to SequentialCommit: one
	// gates event dispatch, the other the commit pipeline. Results are
	// bit-identical either way; the knob exists for the determinism
	// suite and wall-clock A/B runs.
	SequentialSim bool

	// DataDir, when set, makes every replica persist its chain to a
	// durable block store (internal/store) under <DataDir>/r<id>:
	// committed blocks and reconciliation merges write through, and a
	// UTXO checkpoint is cut every CheckpointEvery blocks. The default
	// (empty) keeps the deployment fully in-memory. RecoverChain reads a
	// replica's persisted state back after the cluster is gone.
	DataDir string
	// CheckpointEvery is the checkpoint cadence in blocks (default 8)
	// when DataDir is set.
	CheckpointEvery uint64

	// Mempool is the admission policy every replica's pool enforces. The
	// zero value queues everything in arrival order (the paper's
	// workload); see MempoolPolicy for the knobs. Rate-limit windows run
	// on the cluster's virtual clock, so admission decisions are
	// deterministic for a fixed seed.
	Mempool MempoolPolicy
	// BatchTxs caps how many pending transactions one consensus proposal
	// carries (default 2000).
	BatchTxs int

	// Deceitful makes the first `Deceitful` replicas a coalition running
	// the configured Attack.
	Deceitful int
	Attack    Attack
	// PartitionDelayMs injects the given mean delay (uniform) between
	// honest partitions while the attack runs (default 3000 when an
	// attack is configured).
	PartitionDelayMs int

	// Tracer, when set, records the deterministic consensus trace of the
	// whole deployment (internal/obs): transaction admission at the
	// observer replica, every replica's consensus lifecycle, and branch
	// merges, all with virtual timestamps. The merged event stream is
	// bit-identical across SequentialCommit/SequentialSim modes. Nil
	// disables tracing at zero cost.
	Tracer *obs.Tracer

	// OnBlock, if set, observes every committed block at replica 1.
	OnBlock func(k uint64, txs int)
	// OnCommittedBatch, if set, observes every committed block's
	// transactions at the first honest replica, stamped with that
	// replica's virtual commit time — the submit-to-commit latency probe
	// the open-loop load harness (internal/load) builds percentiles
	// from. The slice aliases the block; callers must not modify it.
	OnCommittedBatch func(k uint64, txs []*Transaction, at time.Duration)
	// OnFraud, if set, observes each proven deceitful replica (replica
	// 1's view).
	OnFraud func(culprit ReplicaID)
	// OnMembershipChange observes completed membership changes.
	OnMembershipChange func(excluded, included []ReplicaID)
}

// Errors returned by the public API.
var (
	ErrBadConfig       = errors.New("zlb: invalid configuration")
	ErrUnknownWallet   = errors.New("zlb: unknown wallet index")
	ErrInsufficient    = errors.New("zlb: insufficient funds")
	ErrClusterFinished = errors.New("zlb: cluster reached MaxBlocks")
)

// Cluster is an in-process simulated ZLB deployment: n replicas over the
// discrete-event network, each running the full stack (accountable SMR,
// blockchain manager, zero-loss payments).
type Cluster struct {
	cfg     Config
	inner   *harness.Cluster
	nodes   map[ReplicaID]*node
	wallets []*Wallet
	scheme  crypto.Scheme
	genesis map[Address]Amount
	stake   Amount
	// batches caches decoded proposal payloads by digest: all replicas
	// commit the identical payload, so it is decoded once per cluster
	// instead of once per replica.
	batches *wire.BatchCache
	// txv is the commit pipeline's transaction verifier: signature checks
	// start on the worker pool when a transaction is submitted (and again
	// when a proposal is delivered), so decided batches commit without
	// re-verification. Nil under Config.SequentialCommit.
	txv *pipeline.TxVerifier
}

// node is the per-replica application state: mempool + ledger, plus the
// durable store when Config.DataDir is set.
type node struct {
	id       ReplicaID
	ledger   *bm.Ledger
	mempool  *mempool.Pool
	stakes   map[ReplicaID]Amount
	store    *store.Store
	storeErr error
}

// applyDefaults fills the zero-valued knobs of a configuration.
func applyDefaults(cfg *Config) error {
	if cfg.N < 4 {
		return fmt.Errorf("%w: N must be at least 4, got %d", ErrBadConfig, cfg.N)
	}
	if cfg.WalletCount == 0 {
		cfg.WalletCount = 3
	}
	if cfg.WalletFunds == 0 {
		cfg.WalletFunds = 1_000_000
	}
	if cfg.DepositFactor == 0 {
		cfg.DepositFactor = 0.1
	}
	if cfg.MaxBlocks == 0 {
		cfg.MaxBlocks = 32
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.CheckpointEvery == 0 {
		cfg.CheckpointEvery = 8
	}
	if cfg.BatchTxs == 0 {
		cfg.BatchTxs = 2000
	}
	if cfg.Attack != NoAttack && cfg.PartitionDelayMs == 0 {
		cfg.PartitionDelayMs = 3000
	}
	if cfg.Scheme == "" {
		cfg.Scheme = "ed25519"
	}
	if _, err := paymentSchemeKind(cfg.Scheme); err != nil {
		return err
	}
	return nil
}

// paymentSchemeKind maps Config.Scheme to the crypto scheme kind,
// rejecting schemes that cannot authenticate external wallets.
func paymentSchemeKind(name string) (crypto.SchemeKind, error) {
	switch name {
	case "ed25519":
		return crypto.SchemeEd25519, nil
	case "ecdsa", "ecdsa-p256":
		return crypto.SchemeECDSA, nil
	case "sim":
		return 0, fmt.Errorf("%w: scheme %q is registry-internal and cannot sign wallet transactions (use \"ed25519\" or \"ecdsa\")", ErrBadConfig, name)
	default:
		return 0, fmt.Errorf("%w: unknown scheme %q (want \"ed25519\" or \"ecdsa\")", ErrBadConfig, name)
	}
}

// paymentSetup derives the payment-side PKI, the pre-funded test wallets
// and the genesis allocation from a defaulted configuration — shared by
// NewCluster and RecoverChain, which must rebuild the identical genesis
// to replay a persisted chain. It also resolves GainBound and returns
// the per-replica stake.
func paymentSetup(cfg *Config) (crypto.Scheme, []*Wallet, map[Address]Amount, Amount, error) {
	kind, err := paymentSchemeKind(cfg.Scheme)
	if err != nil {
		return nil, nil, nil, 0, err
	}
	reg := crypto.NewRegistry(kind)
	scheme, err := crypto.NewScheme(kind, reg)
	if err != nil {
		return nil, nil, nil, 0, err
	}
	rand := crypto.NewDeterministicRand(cfg.Seed ^ 0x77a11e7)
	genesis := make(map[Address]Amount, len(cfg.InitialFunds)+cfg.WalletCount)
	for a, v := range cfg.InitialFunds {
		genesis[a] = v
	}
	var wallets []*Wallet
	for i := 0; i < cfg.WalletCount; i++ {
		kp, err := scheme.GenerateKey(rand)
		if err != nil {
			return nil, nil, nil, 0, err
		}
		w := utxo.NewWallet(kp, scheme)
		wallets = append(wallets, w)
		genesis[w.Address()] += cfg.WalletFunds
	}
	if cfg.GainBound == 0 {
		for _, v := range genesis {
			cfg.GainBound += v
		}
	}
	stake := payment.PerReplicaDeposit(cfg.N, cfg.DepositFactor, cfg.GainBound)
	return scheme, wallets, genesis, stake, nil
}

// NewCluster builds and wires the deployment. The virtual clock starts at
// zero; call Run to advance it.
func NewCluster(cfg Config) (*Cluster, error) {
	if err := applyDefaults(&cfg); err != nil {
		return nil, err
	}
	scheme, wallets, genesis, stake, err := paymentSetup(&cfg)
	if err != nil {
		return nil, err
	}
	c := &Cluster{
		cfg:     cfg,
		nodes:   make(map[ReplicaID]*node),
		batches: wire.NewBatchCache(0),
		scheme:  scheme,
		wallets: wallets,
		genesis: genesis,
		stake:   stake,
	}
	if !cfg.SequentialCommit {
		c.txv = pipeline.NewTxVerifier(pipeline.Shared(), scheme)
	}

	var attack adversary.Attack
	switch cfg.Attack {
	case NoAttack:
		attack = adversary.AttackNone
	case BinaryConsensusAttack:
		attack = adversary.AttackBinary
	case ReliableBroadcastAttack:
		attack = adversary.AttackRBCast
	default:
		return nil, fmt.Errorf("%w: unknown attack %d", ErrBadConfig, int(cfg.Attack))
	}
	var partDelay latency.Model
	if cfg.PartitionDelayMs > 0 && cfg.Deceitful > 0 {
		partDelay = latency.UniformMean(time.Duration(cfg.PartitionDelayMs) * time.Millisecond)
	}

	inner, err := harness.New(harness.Options{
		N:              cfg.N,
		PoolSize:       cfg.PoolSize,
		Deceitful:      cfg.Deceitful,
		Attack:         attack,
		Accountable:    true,
		Recover:        true,
		MaxInstances:   cfg.MaxBlocks,
		BaseLatency:    latency.Uniform(5*time.Millisecond, 30*time.Millisecond),
		PartitionDelay: partDelay,
		Seed:           cfg.Seed,
		WaitForWork:    true,
		Sequential:     cfg.SequentialCommit,
		SequentialSim:  cfg.SequentialSim,
		AggregateCerts: cfg.AggregateCerts,
		Tracer:         cfg.Tracer,
		CoordTimeout: func(r types.Round) time.Duration {
			return 150 * time.Millisecond * time.Duration(r+1)
		},
	})
	if err != nil {
		return nil, err
	}
	c.inner = inner

	// Wire the payment application into every replica (committee + pool).
	all := append(append([]ReplicaID{}, inner.Members...), inner.PoolIDs...)
	for _, id := range all {
		n, err := c.newNode(id)
		if err != nil {
			return nil, fmt.Errorf("zlb: replica %v store: %w", id, err)
		}
		c.nodes[id] = n
	}
	return c, nil
}

func (c *Cluster) newNode(id ReplicaID) (*node, error) {
	n := &node{
		id:      id,
		ledger:  bm.NewLedger(c.scheme),
		mempool: mempool.NewWithPolicy(c.cfg.Mempool),
		stakes:  make(map[ReplicaID]Amount),
	}
	// Rate-limit windows follow the simulator's clock, so a fixed seed
	// admits the same transactions in every execution mode.
	n.mempool.SetClock(c.inner.Net.Now)
	n.ledger.SetParallel(c.txv.Pool())
	if c.cfg.DataDir != "" {
		st, err := store.Open(replicaDataDir(c.cfg.DataDir, id),
			store.Options{CheckpointEvery: c.cfg.CheckpointEvery})
		if err != nil {
			return nil, err
		}
		// A simulated cluster always starts its chain at instance 1: a
		// directory already holding blocks would interleave two chains in
		// one log. RecoverChain is the read path for a finished run.
		if last, hasBlocks := st.LastK(); hasBlocks {
			st.Close()
			return nil, fmt.Errorf("%w: DataDir already holds a chain up to block %d (use RecoverChain to read it, or a fresh directory)",
				ErrBadConfig, last)
		}
		n.store = st
	}
	n.ledger.Genesis(c.genesis)
	// Replicas stake their deposits up front (§B assumption 2): the pool
	// is available the moment a merge needs to fund a conflicting input.
	for _, m := range c.inner.Members {
		n.stakes[m] = c.stake
		n.ledger.AddDeposit(c.stake)
	}
	r := c.inner.Replicas[id]
	// The replica is already built by the harness; the app layer hooks in
	// through the cluster-level callbacks below (see Run loop handlers).
	_ = r
	return n, nil
}

// replicaDataDir is the per-replica store location under a data dir.
func replicaDataDir(dataDir string, id ReplicaID) string {
	return filepath.Join(dataDir, fmt.Sprintf("r%d", id))
}

// observer returns the replica whose view the read accessors report: the
// first honest committee member (replica 1 may be deceitful in attack
// configurations).
func (c *Cluster) observer() ReplicaID {
	honest := c.inner.HonestMembers()
	if len(honest) > 0 {
		return honest[0]
	}
	return c.inner.Members[0]
}

// WalletFor returns the i-th pre-funded test wallet.
func (c *Cluster) WalletFor(i int) (*Wallet, error) {
	if i < 0 || i >= len(c.wallets) {
		return nil, fmt.Errorf("%w: %d of %d", ErrUnknownWallet, i, len(c.wallets))
	}
	return c.wallets[i], nil
}

// NewWallet creates and funds a fresh wallet only usable before Run.
func (c *Cluster) NewWallet(funds Amount) (*Wallet, error) {
	kp, err := c.scheme.GenerateKey(crypto.NewDeterministicRand(int64(len(c.wallets)) + 7777))
	if err != nil {
		return nil, err
	}
	w := utxo.NewWallet(kp, c.scheme)
	c.wallets = append(c.wallets, w)
	c.genesis[w.Address()] += funds
	for _, n := range c.nodes {
		n.ledger = bm.NewLedger(c.scheme)
		n.ledger.SetParallel(c.txv.Pool())
		n.ledger.Genesis(c.genesis)
		// Re-apply the staked deposits: rebuilding the ledger must not
		// empty the slash pool, or merges after a fork would silently
		// underfund the conflicting branch.
		for _, stake := range n.stakes {
			n.ledger.AddDeposit(stake)
		}
	}
	return w, nil
}

// Pay builds a signed payment from the wallet against an honest
// replica's current ledger state.
func (c *Cluster) Pay(w *Wallet, to Address, amount Amount) (*Transaction, error) {
	return c.PayWithFee(w, to, amount, 0)
}

// PayWithFee builds a signed payment offering a fee on top of the
// transferred amount — the coins admission policies rank by. Inputs are
// selected against an honest replica's current ledger state and must
// cover amount plus fee.
func (c *Cluster) PayWithFee(w *Wallet, to Address, amount, fee Amount) (*Transaction, error) {
	ledger := c.nodes[c.observer()].ledger
	inputs, err := ledger.Table().InputsFor(w.Address(), amount+fee)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrInsufficient, err)
	}
	return w.PayWithFee(inputs, []utxo.Output{{Account: to, Value: amount}}, fee)
}

// Submit places a transaction in every replica's mempool (clients
// broadcast requests to all replicas, §4.2) and wakes replicas that were
// waiting for work. The mempools share the transaction pointer, so its
// digest is computed once for the whole cluster — and its signature
// check starts on the commit pipeline here, typically settling before
// consensus decides the batch that carries it.
//
// The returned error is the first honest replica's admission verdict
// (nil, or one of the typed mempool errors: mempool.ErrDuplicate,
// mempool.ErrCommitted, mempool.ErrFeeTooLow, ...). Every pool runs the
// same policy on the same virtual clock and sees the same submission
// sequence, so the verdict is cluster-wide in the fault-free case.
func (c *Cluster) Submit(tx *Transaction) error {
	c.txv.Preverify([]*utxo.Transaction{tx})
	observer := c.observer()
	var verdict error
	for _, n := range c.nodes {
		err := n.mempool.Add(tx)
		if n.id == observer {
			verdict = err
		}
	}
	// Admission events carry the global virtual clock: Submit runs between
	// simulation events, when the global clock is deterministic too.
	if c.cfg.Tracer != nil {
		nt := c.cfg.Tracer.Node(observer)
		if verdict == nil {
			nt.Record(c.inner.Net.Now(), obs.PhaseMempoolAdmit, 0, 0, 0, "")
		} else {
			nt.Record(c.inner.Net.Now(), obs.PhaseMempoolReject, 0, 0, 0, mempool.RejectReason(verdict))
		}
	}
	for _, id := range c.inner.Members {
		c.inner.Replicas[id].Kick()
	}
	return verdict
}

// EncodeBatch serializes transactions into a consensus proposal payload
// using the length-prefixed binary codec (internal/wire).
func EncodeBatch(txs []*Transaction) ([]byte, error) {
	payload, err := wire.EncodeBatch(txs)
	if err != nil {
		return nil, fmt.Errorf("zlb: encode batch: %w", err)
	}
	return payload, nil
}

// DecodeBatch parses a consensus proposal payload.
func DecodeBatch(payload []byte) ([]*Transaction, error) {
	txs, err := wire.DecodeBatch(payload)
	if err != nil {
		return nil, fmt.Errorf("zlb: decode batch: %w", err)
	}
	return txs, nil
}

// Start wires the application callbacks and launches consensus. It must
// be called exactly once, before Run.
func (c *Cluster) Start() {
	for id, n := range c.nodes {
		id := id
		n := n
		r := c.inner.Replicas[id]
		c.bindNode(r, n)
	}
	c.inner.Start()
}

func (c *Cluster) bindNode(r *asmr.Replica, n *node) {
	// The harness built the replica with its own BatchSource/OnCommit;
	// rebind them to the payment application.
	cfg := c.harnessConfigFor(r, n)
	r.Rebind(cfg)
}

// harnessConfigFor builds the application bindings for one node. The
// replica is passed alongside for its virtual clock: commit timestamps
// must come from the replica's per-event time, which is bit-identical
// across sequential and parallel simulation modes.
func (c *Cluster) harnessConfigFor(r *asmr.Replica, n *node) asmr.AppBindings {
	nt := c.cfg.Tracer.Node(n.id) // nil when tracing is off
	return asmr.AppBindings{
		BatchSource: func(k uint64) asmr.Batch {
			// Take up to BatchTxs pending transactions; an empty mempool
			// defers the instance (Fig. 2: instances start only when
			// requests are enqueued).
			txs := n.mempool.Take(c.cfg.BatchTxs)
			if len(txs) == 0 {
				return asmr.Batch{}
			}
			payload, err := wire.EncodeBatch(txs)
			if err != nil {
				return asmr.Batch{}
			}
			// A deceitful proposer re-binds its attack payloads (the
			// reliable broadcast attack forks the proposal itself).
			if adv, ok := c.inner.Adversaries[n.id]; ok && c.cfg.Attack == ReliableBroadcastAttack {
				c.inner.Coalition.BindRBCastPayload(n.id, adv, payload)
			}
			return asmr.Batch{Payload: payload, ClaimedSigs: len(txs)}
		},
		OnProposal: func(k uint64, payload []byte) {
			// Speculative pre-validation (pipeline stage ②): decode the
			// delivered proposal and verify its transaction signatures on
			// the worker pool while the binary consensus is still deciding.
			// Verdicts land in the shared batch cache and the transactions'
			// memoized verdict slots, so the decided batch commits without
			// re-verification.
			c.txv.SpeculateBatch(payload, c.batches)
		},
		OnCommit: func(k uint64, attempt uint32, d *sbc.Decision) {
			block := c.blockFrom(k, d)
			applied := n.ledger.CommitBlock(block)
			_ = applied
			n.persistBlock(block, attempt, false)
			n.pruneMempool(block)
			if n.id == c.observer() {
				if c.cfg.OnBlock != nil {
					c.cfg.OnBlock(k, len(block.Txs))
				}
				if c.cfg.OnCommittedBatch != nil {
					c.cfg.OnCommittedBatch(k, block.Txs, r.Now())
				}
			}
		},
		OnDisagreement: func(k uint64, _, remote *sbc.Decision) {
			// Reconciliation (phase ⑤): merge the conflicting branch.
			nt.Record(r.Now(), obs.PhaseMerge, k, 0, 0, "")
			block := c.blockFrom(k, remote)
			n.ledger.MergeBlock(block)
			n.persistBlock(block, 0, true)
			n.pruneMempool(block)
		},
		OnPoF: func(p PoF) {
			if n.id == c.observer() && c.cfg.OnFraud != nil {
				c.cfg.OnFraud(p.Culprit)
			}
		},
		OnMembershipChange: func(res *membership.Result) {
			// The excluded replicas forfeit their stakes (the application
			// punishment of Alg. 1 line 38); the coins were pooled at
			// staking time, so only the bookkeeping moves. New members
			// stake in.
			for _, ex := range res.Excluded {
				n.stakes[ex] = 0
			}
			for _, in := range res.Included {
				n.stakes[in] = c.stake
				n.ledger.AddDeposit(c.stake)
			}
			if n.id == c.observer() && c.cfg.OnMembershipChange != nil {
				c.cfg.OnMembershipChange(res.Excluded, res.Included)
			}
		},
	}
}

// blockFrom assembles the application block of a decision: the union of
// all decided proposals' transactions in deterministic order (§4.1 ⑤).
// Payloads are decoded through the cluster's batch cache, so the n
// replicas committing the same decision decode it once.
func (c *Cluster) blockFrom(k uint64, d *sbc.Decision) *bm.Block {
	var txs []*Transaction
	seen := make(map[types.Digest]bool)
	for _, p := range d.OrderedProposals() {
		batch, err := c.batches.Decode(p.Payload)
		if err != nil {
			continue
		}
		for _, tx := range batch {
			id := tx.ID()
			if !seen[id] {
				seen[id] = true
				txs = append(txs, tx)
			}
		}
	}
	return bm.NewBlock(k, txs)
}

func (n *node) pruneMempool(b *bm.Block) {
	n.mempool.Prune(b.Txs)
}

// persistBlock writes a committed (or merged) block through to the
// node's durable store and cuts a UTXO checkpoint when one is due.
// Persistence failures are remembered on the cluster and surfaced by
// Close — the simulation itself proceeds in-memory.
func (n *node) persistBlock(b *bm.Block, attempt uint32, merge bool) {
	if n.store == nil {
		return
	}
	var err error
	if merge {
		err = n.store.AppendMerge(b, attempt)
	} else {
		err = n.store.AppendBlock(b, attempt)
	}
	if err == nil && n.store.ShouldCheckpoint() {
		err = n.store.WriteCheckpoint(n.ledger.CheckpointState())
		if err == nil {
			// The checkpoint bounds how far back a committed-transaction
			// retry must be rejected; older dedup state is released here.
			n.mempool.TrimCommitted()
		}
	}
	if err != nil && n.storeErr == nil {
		n.storeErr = err
	}
}

// Run advances the virtual clock by d, processing all due events.
func (c *Cluster) Run(d time.Duration) {
	c.inner.Net.Run(c.inner.Net.Now() + d)
}

// RunUntilQuiet drains all pending events up to the virtual deadline.
func (c *Cluster) RunUntilQuiet(max time.Duration) { c.inner.RunUntilQuiet(max) }

// StallPartition delays all cross-group traffic between the given
// replica groups by extra virtual time — a partition that stalls
// consensus without losing messages, which is how the load harness
// exhausts mempools while commits cannot progress. Replicas not listed
// in any group communicate freely. The rule replaces any delay rule a
// previous StallPartition installed; ClearPartitionStall removes it.
func (c *Cluster) StallPartition(groups [][]ReplicaID, extra time.Duration) {
	groupOf := make(map[ReplicaID]int)
	for g, ids := range groups {
		for _, id := range ids {
			groupOf[id] = g + 1 // 0 means unlisted
		}
	}
	lookup := func(id types.ReplicaID) int { return groupOf[id] - 1 }
	c.inner.Net.DelayRule = simnet.PartitionDelay(lookup, extra)
}

// ClearPartitionStall heals a StallPartition.
func (c *Cluster) ClearPartitionStall() { c.inner.Net.DelayRule = nil }

// Now returns the virtual time.
func (c *Cluster) Now() time.Duration { return c.inner.Net.Now() }

// MempoolStats reports the first honest replica's pool occupancy:
// pending transactions, their total canonical bytes, and the cumulative
// count of entries shed by replacement-by-fee and capacity eviction.
func (c *Cluster) MempoolStats() (pending int, bytes int64, evictions uint64) {
	p := c.nodes[c.observer()].mempool
	return p.Len(), p.Bytes(), p.Evictions()
}

// Balance reads an account balance at the first honest replica.
func (c *Cluster) Balance(addr Address) Amount {
	return c.nodes[c.observer()].ledger.Table().Balance(addr)
}

// BalanceAt reads an account balance at a specific replica.
func (c *Cluster) BalanceAt(id ReplicaID, addr Address) Amount {
	n, ok := c.nodes[id]
	if !ok {
		return 0
	}
	return n.ledger.Table().Balance(addr)
}

// Height returns the number of blocks committed at the first honest
// replica.
func (c *Cluster) Height() int {
	return c.inner.Replicas[c.observer()].CommittedCount()
}

// BlockDigests returns the digest of every block committed at the first
// honest replica, keyed by chain index. Determinism tests compare these
// across runs and across codec versions.
func (c *Cluster) BlockDigests() map[uint64]types.Digest {
	return c.nodes[c.observer()].ledger.BlockDigests()
}

// Deposit returns the slashed-deposit pool at the first honest replica.
func (c *Cluster) Deposit() Amount {
	return c.nodes[c.observer()].ledger.Deposit()
}

// Members returns the current committee at the first honest replica.
func (c *Cluster) Members() []ReplicaID {
	return c.inner.Replicas[c.observer()].View().MembersCopy()
}

// Culprits returns the proven-deceitful replicas known to the first
// honest replica.
func (c *Cluster) Culprits() []ReplicaID {
	return c.inner.Replicas[c.observer()].Log().Culprits()
}

// Disagreements returns the cumulative disagreement count (Fig. 4 metric).
func (c *Cluster) Disagreements() int { return c.inner.Disagreements() }

// Converged reports Def. 3's convergence: all honest replicas share a
// committee whose deceitful fraction is below 1/3.
func (c *Cluster) Converged() bool { return c.inner.ConvergedAgreement() }

// PerReplicaStake returns the deposit each replica posts (3·b·G/n, §B).
func (c *Cluster) PerReplicaStake() Amount { return c.stake }

// MinFinalizationDepth computes Theorem .5's minimum blockdepth for the
// cluster's deposit factor and an observed attack success probability.
func (c *Cluster) MinFinalizationDepth(rho float64) (int, error) {
	branches := payment.MaxBranchesCount(c.cfg.N, c.cfg.Deceitful)
	if branches < 2 {
		branches = 2
	}
	return payment.MinDepth(branches, c.cfg.DepositFactor, rho)
}

// Close flushes and closes every replica's durable store (a no-op for
// in-memory deployments) and returns the first persistence error
// encountered during the run, if any.
func (c *Cluster) Close() error {
	var first error
	for _, id := range types.SortReplicas(c.nodeIDs()) {
		n := c.nodes[id]
		if n.storeErr != nil && first == nil {
			first = n.storeErr
		}
		if n.store != nil {
			if err := n.store.Close(); err != nil && first == nil {
				first = err
			}
		}
	}
	return first
}

func (c *Cluster) nodeIDs() []ReplicaID {
	ids := make([]ReplicaID, 0, len(c.nodes))
	for id := range c.nodes {
		ids = append(ids, id)
	}
	return ids
}

// RecoveredChain is a replica's persisted state read back from its data
// directory: the chain digests and the UTXO ledger rebuilt from the
// latest checkpoint plus the replayed log tail.
type RecoveredChain struct {
	// Height is the number of stored blocks (merged siblings included).
	Height int
	// LastK is the highest chain index.
	LastK uint64
	// Digests is the digest of every stored block by chain index.
	Digests map[uint64]types.Digest
	// Deposit is the recovered slashed-deposit pool.
	Deposit Amount

	ledger *bm.Ledger
}

// Balance reads an account balance from the recovered ledger.
func (r *RecoveredChain) Balance(addr Address) Amount {
	return r.ledger.Table().Balance(addr)
}

// RecoverChain reopens the durable store a previous run left under
// cfg.DataDir for the given replica and rebuilds its chain and UTXO
// state — the crash-recovery read path. cfg must be the configuration
// the original cluster ran with (the genesis allocation, wallets and
// stakes are re-derived from it; a different seed or wallet count would
// replay against the wrong genesis).
func RecoverChain(cfg Config, id ReplicaID) (*RecoveredChain, error) {
	if err := applyDefaults(&cfg); err != nil {
		return nil, err
	}
	if cfg.DataDir == "" {
		return nil, fmt.Errorf("%w: RecoverChain needs DataDir", ErrBadConfig)
	}
	scheme, _, genesis, stake, err := paymentSetup(&cfg)
	if err != nil {
		return nil, err
	}
	st, err := store.Open(replicaDataDir(cfg.DataDir, id), store.Options{})
	if err != nil {
		return nil, fmt.Errorf("zlb: %w", err)
	}
	defer st.Close()
	ledger, err := st.Recover(scheme, func(l *bm.Ledger) {
		l.Genesis(genesis)
		// Replicas stake their deposits up front, exactly as NewCluster
		// seeds every node (§B assumption 2).
		for i := 0; i < cfg.N; i++ {
			l.AddDeposit(stake)
		}
	})
	if err != nil {
		return nil, fmt.Errorf("zlb: %w", err)
	}
	return &RecoveredChain{
		Height:  ledger.Height(),
		LastK:   ledger.LastK(),
		Digests: ledger.BlockDigests(),
		Deposit: ledger.Deposit(),
		ledger:  ledger,
	}, nil
}
