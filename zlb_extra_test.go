package zlb

import (
	"testing"
	"time"
)

// TestZeroLossUnderRBCastAttack mirrors TestZeroLossUnderAttack for the
// reliable broadcast attack: the coalition forks the proposal itself
// (conflicting batches per partition); merging funds the difference.
func TestZeroLossUnderRBCastAttack(t *testing.T) {
	c, err := NewCluster(Config{
		N:                9,
		Deceitful:        4,
		Attack:           ReliableBroadcastAttack,
		PartitionDelayMs: 3000,
		Seed:             7,
		MaxBlocks:        6,
	})
	if err != nil {
		t.Fatal(err)
	}
	alice, _ := c.WalletFor(0)
	bob, _ := c.WalletFor(1)
	carol, _ := c.WalletFor(2)
	c.Start()
	// An explicit double spend: both txs consume the same inputs.
	tx1, err := c.Pay(alice, bob.Address(), 500_000)
	if err != nil {
		t.Fatal(err)
	}
	c.Submit(tx1)
	tx2, err := c.Pay(alice, carol.Address(), 500_000)
	if err != nil {
		t.Fatal(err)
	}
	c.Submit(tx2)
	c.RunUntilQuiet(60 * time.Minute)

	if !c.Converged() {
		t.Fatal("no convergence after rbcast attack")
	}
	for _, id := range c.Members() {
		if uint32(id) <= 4 {
			t.Fatalf("deceitful replica %v survived in committee", id)
		}
	}
	// Zero loss: every recipient of a committed payment keeps it. At
	// minimum nobody is below their genesis balance minus what they
	// willingly spent.
	if got := c.Balance(bob.Address()); got < 1_000_000 {
		t.Fatalf("bob lost funds: %d", got)
	}
	if got := c.Balance(carol.Address()); got < 1_000_000 {
		t.Fatalf("carol lost funds: %d", got)
	}
	bobGain := c.Balance(bob.Address()) - 1_000_000
	carolGain := c.Balance(carol.Address()) - 1_000_000
	if bobGain == 0 && carolGain == 0 {
		t.Fatal("neither payment committed")
	}
}

func TestHonestReplicasShareLedgersAfterAttack(t *testing.T) {
	c, err := NewCluster(Config{
		N:                9,
		Deceitful:        4,
		Attack:           BinaryConsensusAttack,
		PartitionDelayMs: 3000,
		Seed:             3,
		MaxBlocks:        6,
	})
	if err != nil {
		t.Fatal(err)
	}
	alice, _ := c.WalletFor(0)
	bob, _ := c.WalletFor(1)
	c.Start()
	tx, err := c.Pay(alice, bob.Address(), 777)
	if err != nil {
		t.Fatal(err)
	}
	c.Submit(tx)
	c.RunUntilQuiet(60 * time.Minute)

	// After reconciliation, every original honest replica that saw the
	// payment agrees on bob's balance.
	want := c.Balance(bob.Address())
	for _, id := range c.inner.HonestMembers() {
		if got := c.BalanceAt(id, bob.Address()); got != want {
			t.Fatalf("replica %v sees bob=%d, observer sees %d", id, got, want)
		}
	}
}

func TestNewWalletPreFundsGenesis(t *testing.T) {
	c, err := NewCluster(Config{N: 4, Seed: 19})
	if err != nil {
		t.Fatal(err)
	}
	w, err := c.NewWallet(42_000)
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Balance(w.Address()); got != 42_000 {
		t.Fatalf("fresh wallet balance %d, want 42000", got)
	}
}

func TestPayInsufficientFunds(t *testing.T) {
	c, err := NewCluster(Config{N: 4, Seed: 20})
	if err != nil {
		t.Fatal(err)
	}
	alice, _ := c.WalletFor(0)
	bob, _ := c.WalletFor(1)
	if _, err := c.Pay(alice, bob.Address(), 10_000_000); err == nil {
		t.Fatal("overdraft accepted")
	}
}

func TestDepositPoolStakedUpFront(t *testing.T) {
	c, err := NewCluster(Config{N: 9, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	want := c.PerReplicaStake() * Amount(9)
	if got := c.Deposit(); got != want {
		t.Fatalf("deposit pool %d, want %d (n × per-replica stake)", got, want)
	}
}

func TestSubmitIdempotent(t *testing.T) {
	c, err := NewCluster(Config{N: 4, Seed: 22, MaxBlocks: 3})
	if err != nil {
		t.Fatal(err)
	}
	alice, _ := c.WalletFor(0)
	bob, _ := c.WalletFor(1)
	c.Start()
	tx, err := c.Pay(alice, bob.Address(), 100)
	if err != nil {
		t.Fatal(err)
	}
	c.Submit(tx)
	c.Submit(tx) // duplicate
	c.Submit(tx)
	c.RunUntilQuiet(10 * time.Minute)
	if got := c.Balance(bob.Address()); got != 1_000_100 {
		t.Fatalf("bob = %d after duplicate submits, want exactly one transfer", got)
	}
}

// TestRBCastVariantPayloadsMerge regression-tests the wire codec against
// the reliable-broadcast attack's forked proposals: the coalition's
// variant payloads carry a trailing partition tag, and the reconciliation
// merge must still decode and merge their transactions (a codec that
// rejects the variant silently drops the conflicting branch — the exact
// loss Alg. 2 exists to prevent).
func TestRBCastVariantPayloadsMerge(t *testing.T) {
	c, err := NewCluster(Config{
		N:                9,
		Deceitful:        4,
		Attack:           ReliableBroadcastAttack,
		PartitionDelayMs: 3000,
		Seed:             7,
		MaxBlocks:        6,
	})
	if err != nil {
		t.Fatal(err)
	}
	alice, _ := c.WalletFor(0)
	bob, _ := c.WalletFor(1)
	carol, _ := c.WalletFor(2)
	c.Start()
	tx1, err := c.Pay(alice, bob.Address(), 500_000)
	if err != nil {
		t.Fatal(err)
	}
	c.Submit(tx1)
	tx2, err := c.Pay(alice, carol.Address(), 500_000)
	if err != nil {
		t.Fatal(err)
	}
	c.Submit(tx2)
	c.RunUntilQuiet(60 * time.Minute)

	if c.Disagreements() == 0 {
		t.Fatal("attack produced no disagreements; scenario lost its bite")
	}
	merged := 0
	for _, n := range c.nodes {
		merged += n.ledger.MergedTxs
	}
	if merged == 0 {
		t.Fatal("no replica merged any transaction from the forked branch: variant payloads are not decoding")
	}
}
