module github.com/zeroloss/zlb

go 1.24
