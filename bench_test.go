// Benchmarks regenerating the paper's tables and figures (reduced sweeps;
// use cmd/zlb-bench -full for paper scale). Each benchmark reports the
// paper's metric through b.ReportMetric so `go test -bench=. -benchmem`
// prints the reproduced series.
package zlb_test

import (
	"fmt"
	"testing"
	"time"

	"github.com/zeroloss/zlb"
	"github.com/zeroloss/zlb/internal/adversary"
	"github.com/zeroloss/zlb/internal/bench"
	"github.com/zeroloss/zlb/internal/payment"
)

// BenchmarkSubmitPipeline measures the full application hot path: build a
// signed payment against the live ledger, broadcast it into every
// replica's mempool, run consensus on the simulated network, commit the
// block and prune. One iteration is one end-to-end transaction; the
// allocs/op figure is the regression guard for the cached digests, the
// binary batch codec, the decoded-batch cache and the indexed mempool.
func BenchmarkSubmitPipeline(b *testing.B) {
	for _, n := range []int{4, 7} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			cluster, err := zlb.NewCluster(zlb.Config{
				N:    n,
				Seed: 42,
				// Far above any b.N the harness will try, so the chain
				// never hits the MaxBlocks cap mid-benchmark.
				MaxBlocks: 1 << 62,
			})
			if err != nil {
				b.Fatal(err)
			}
			w0, _ := cluster.WalletFor(0)
			w1, _ := cluster.WalletFor(1)
			cluster.Start()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tx, err := cluster.Pay(w0, w1.Address(), 1)
				if err != nil {
					b.Fatal(err)
				}
				cluster.Submit(tx)
				cluster.Run(2 * time.Second) // virtual: commits the instance
			}
			b.StopTimer()
			if got := cluster.Height(); got < b.N {
				b.Fatalf("committed %d blocks for %d submissions", got, b.N)
			}
		})
	}
}

// BenchmarkFig3Throughput reproduces Figure 3: decision throughput of
// ZLB, Red Belly, Polygraph and HotStuff across committee sizes.
func BenchmarkFig3Throughput(b *testing.B) {
	for _, n := range []int{10, 30} {
		for _, sys := range []bench.System{bench.SystemZLB, bench.SystemRedBelly, bench.SystemPolygraph, bench.SystemHotStuff} {
			b.Run(fmt.Sprintf("%s/n=%d", sys, n), func(b *testing.B) {
				var tps float64
				for i := 0; i < b.N; i++ {
					points, err := bench.RunFig3(bench.Fig3Config{
						Ns: []int{n}, Instances: 2, Seed: 42, Systems: []bench.System{sys},
					})
					if err != nil {
						b.Fatal(err)
					}
					tps = points[0].TxPerSec
				}
				b.ReportMetric(tps, "tx/s")
			})
		}
	}
}

// BenchmarkFig4TopBinaryAttack reproduces Figure 4 (top): disagreements
// under the binary consensus attack.
func BenchmarkFig4TopBinaryAttack(b *testing.B) {
	benchmarkFig4(b, adversary.AttackBinary)
}

// BenchmarkFig4BottomRBCastAttack reproduces Figure 4 (bottom):
// disagreements under the reliable broadcast attack.
func BenchmarkFig4BottomRBCastAttack(b *testing.B) {
	benchmarkFig4(b, adversary.AttackRBCast)
}

func benchmarkFig4(b *testing.B, attack adversary.Attack) {
	d, err := bench.DelayByName("1000ms")
	if err != nil {
		b.Fatal(err)
	}
	for _, n := range []int{9, 18} {
		b.Run(fmt.Sprintf("n=%d/1000ms", n), func(b *testing.B) {
			var disagreements int
			for i := 0; i < b.N; i++ {
				points, err := bench.RunFig4(bench.Fig4Config{
					Ns: []int{n}, Delays: []bench.DelaySpec{d}, Attack: attack,
					Seed: 42, Instances: 4,
				})
				if err != nil {
					b.Fatal(err)
				}
				disagreements = points[0].Disagreements
			}
			b.ReportMetric(float64(disagreements), "disagreements")
		})
	}
}

// BenchmarkTable1Merge reproduces Table 1: local time to merge two blocks
// with all transactions conflicting, per block size.
func BenchmarkTable1Merge(b *testing.B) {
	for _, size := range []int{100, 1000, 10000} {
		b.Run(fmt.Sprintf("txs=%d", size), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				ledger, _, remote, err := bench.BuildConflictingBlocks(size)
				if err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				if got := ledger.MergeBlock(remote); got != size {
					b.Fatalf("merged %d of %d", got, size)
				}
			}
		})
	}
}

// BenchmarkFig5MembershipChange reproduces Figure 5 (left panels): time
// to detect ⌈n/3⌉ deceitful replicas, run the exclusion consensus and the
// inclusion consensus.
func BenchmarkFig5MembershipChange(b *testing.B) {
	d, err := bench.DelayByName("1000ms")
	if err != nil {
		b.Fatal(err)
	}
	for _, n := range []int{9, 18} {
		b.Run(fmt.Sprintf("n=%d/1000ms", n), func(b *testing.B) {
			var detect, exclude, include float64
			for i := 0; i < b.N; i++ {
				points, err := bench.RunFig5([]int{n}, []bench.DelaySpec{d}, 42)
				if err != nil {
					b.Fatal(err)
				}
				detect = points[0].DetectSec
				exclude = points[0].ExcludeSec
				include = points[0].IncludeSec
			}
			b.ReportMetric(detect, "detect-s")
			b.ReportMetric(exclude, "exclude-s")
			b.ReportMetric(include, "include-s")
		})
	}
}

// BenchmarkFig5Catchup reproduces Figure 5 (right): time for an included
// replica to verify the shipped chain.
func BenchmarkFig5Catchup(b *testing.B) {
	b.Run("n=9/blocks=5", func(b *testing.B) {
		var catchup float64
		for i := 0; i < b.N; i++ {
			points, err := bench.RunCatchup([]int{9}, []int{5}, 42)
			if err != nil {
				b.Fatal(err)
			}
			catchup = points[0].CatchupSec
		}
		b.ReportMetric(catchup, "catchup-s")
	})
}

// BenchmarkFig6MinBlockdepth reproduces Figure 6: the minimum
// finalization blockdepth for zero loss derived from the measured attack
// success probability.
func BenchmarkFig6MinBlockdepth(b *testing.B) {
	d, err := bench.DelayByName("1000ms")
	if err != nil {
		b.Fatal(err)
	}
	b.Run("n=9/1000ms/binary", func(b *testing.B) {
		var depth float64
		for i := 0; i < b.N; i++ {
			points, err := bench.RunFig6([]int{9}, []bench.DelaySpec{d},
				[]adversary.Attack{adversary.AttackBinary}, 42)
			if err != nil {
				b.Fatal(err)
			}
			depth = float64(points[0].MinDepth)
		}
		b.ReportMetric(depth, "min-depth")
	})
}

// BenchmarkAppendixBAnalysis reproduces the §B worked analysis (pure
// math; also a performance check on the Theorem .5 solver).
func BenchmarkAppendixBAnalysis(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := bench.RunAppendixB()
		if len(rows) == 0 {
			b.Fatal("no rows")
		}
	}
}

// BenchmarkCatastrophicDelays reproduces §5.3: disagreements under 5 s
// and 10 s uniform partition delays.
func BenchmarkCatastrophicDelays(b *testing.B) {
	b.Run("n=18", func(b *testing.B) {
		var total float64
		for i := 0; i < b.N; i++ {
			points, err := bench.Catastrophic(18, 42)
			if err != nil {
				b.Fatal(err)
			}
			total = 0
			for _, p := range points {
				total += float64(p.Disagreements)
			}
		}
		b.ReportMetric(total, "disagreements")
	})
}

// BenchmarkMinDepthSolver measures the Theorem .5 solver itself.
func BenchmarkMinDepthSolver(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := payment.MinDepth(3, 0.1, 0.9); err != nil {
			b.Fatal(err)
		}
	}
}
