package zlb

import (
	"testing"
	"time"
)

func TestClusterPaymentsHappyPath(t *testing.T) {
	c, err := NewCluster(Config{N: 7, Seed: 11, MaxBlocks: 8})
	if err != nil {
		t.Fatal(err)
	}
	alice, err := c.WalletFor(0)
	if err != nil {
		t.Fatal(err)
	}
	bob, err := c.WalletFor(1)
	if err != nil {
		t.Fatal(err)
	}

	c.Start()
	tx, err := c.Pay(alice, bob.Address(), 12_345)
	if err != nil {
		t.Fatal(err)
	}
	c.Submit(tx)
	c.RunUntilQuiet(10 * time.Minute)

	if got := c.Balance(bob.Address()); got != 1_000_000+12_345 {
		t.Fatalf("bob balance = %d, want %d", got, 1_000_000+12_345)
	}
	if got := c.Balance(alice.Address()); got != 1_000_000-12_345 {
		t.Fatalf("alice balance = %d, want %d", got, 1_000_000-12_345)
	}
	if c.Height() == 0 {
		t.Fatal("no blocks committed")
	}
	if c.Disagreements() != 0 {
		t.Fatal("disagreements in honest run")
	}
}

func TestClusterAllReplicasAgreeOnBalances(t *testing.T) {
	c, err := NewCluster(Config{N: 7, Seed: 13, MaxBlocks: 6})
	if err != nil {
		t.Fatal(err)
	}
	alice, _ := c.WalletFor(0)
	bob, _ := c.WalletFor(1)
	c.Start()
	for i := 0; i < 5; i++ {
		tx, err := c.Pay(alice, bob.Address(), Amount(100*(i+1)))
		if err != nil {
			t.Fatal(err)
		}
		c.Submit(tx)
		c.Run(2 * time.Second)
	}
	c.RunUntilQuiet(10 * time.Minute)
	want := c.Balance(bob.Address())
	for _, id := range c.inner.Members {
		if got := c.BalanceAt(id, bob.Address()); got != want {
			t.Fatalf("replica %v sees bob=%d, replica 1 sees %d", id, got, want)
		}
	}
}

// TestZeroLossUnderAttack is the paper's end-to-end promise: a coalition
// of d = ⌈5n/9⌉−1 deceitful replicas forks the chain; after recovery every
// honest account holds at least what it held on its own branch, funded
// from the slashed deposits, and the deceitful replicas are excluded.
func TestZeroLossUnderAttack(t *testing.T) {
	var frauds []ReplicaID
	var changes int
	c, err := NewCluster(Config{
		N:                9,
		Deceitful:        4,
		Attack:           BinaryConsensusAttack,
		PartitionDelayMs: 3000,
		Seed:             3,
		MaxBlocks:        6,
		OnFraud:          func(id ReplicaID) { frauds = append(frauds, id) },
		OnMembershipChange: func(ex, in []ReplicaID) {
			changes++
			if len(ex) == 0 || len(ex) != len(in) {
				t.Errorf("membership change excluded %d, included %d", len(ex), len(in))
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	alice, _ := c.WalletFor(0)
	bob, _ := c.WalletFor(1)
	c.Start()
	tx, err := c.Pay(alice, bob.Address(), 777)
	if err != nil {
		t.Fatal(err)
	}
	c.Submit(tx)
	c.RunUntilQuiet(60 * time.Minute)

	if len(frauds) == 0 {
		t.Fatal("no fraud detected under attack")
	}
	if changes == 0 {
		t.Fatal("no membership change completed")
	}
	if !c.Converged() {
		t.Fatal("cluster did not converge")
	}
	// Deceitful replicas (1..4) must be out of the committee.
	for _, id := range c.Members() {
		if uint32(id) <= 4 {
			t.Fatalf("deceitful replica %v still in committee", id)
		}
	}
	// Zero loss: bob received his payment; alice paid exactly once.
	if got := c.Balance(bob.Address()); got != 1_000_000+777 {
		t.Fatalf("bob = %d, want %d", got, 1_000_000+777)
	}
	if got := c.Balance(alice.Address()); got < 1_000_000-777 {
		t.Fatalf("alice lost more than her payment: %d", got)
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := NewCluster(Config{N: 2}); err == nil {
		t.Fatal("N=2 accepted")
	}
	if _, err := NewCluster(Config{N: 4, Attack: Attack(99)}); err == nil {
		t.Fatal("unknown attack accepted")
	}
}

func TestBatchRoundTrip(t *testing.T) {
	c, err := NewCluster(Config{N: 4, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	alice, _ := c.WalletFor(0)
	bob, _ := c.WalletFor(1)
	tx, err := c.Pay(alice, bob.Address(), 42)
	if err != nil {
		t.Fatal(err)
	}
	payload, err := EncodeBatch([]*Transaction{tx})
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeBatch(payload)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 1 || back[0].ID() != tx.ID() {
		t.Fatal("batch round trip lost the transaction")
	}
}

func TestMinFinalizationDepth(t *testing.T) {
	c, err := NewCluster(Config{N: 9, Deceitful: 4})
	if err != nil {
		t.Fatal(err)
	}
	m, err := c.MinFinalizationDepth(0.55)
	if err != nil {
		t.Fatal(err)
	}
	if m <= 0 {
		t.Fatalf("depth %d, want positive", m)
	}
}
