// Command coalition runs the paper's headline experiment at example
// scale: a coalition of d = ⌈5n/9⌉−1 deceitful replicas — a majority
// larger than any classic BFT system tolerates — executes the binary
// consensus attack, forks the chain across partitions of honest replicas,
// and ZLB recovers: detection through certificate cross-checks, exclusion
// consensus, inclusion of standby replicas, and convergence back to a
// committee with a deceitful minority (Def. 3).
package main

import (
	"fmt"
	"log"
	"time"

	"github.com/zeroloss/zlb"
)

func main() {
	const n = 9
	deceitful := (5*n+8)/9 - 1 // d = ⌈5n/9⌉−1

	fmt.Printf("ZLB coalition-attack demo: n=%d replicas, d=%d deceitful (%.0f%%)\n",
		n, deceitful, 100*float64(deceitful)/float64(n))
	fmt.Printf("classic BFT tolerates at most %d — this coalition exceeds it\n\n", (n-1)/3)

	start := time.Now()
	var changes int
	cluster, err := zlb.NewCluster(zlb.Config{
		N:                n,
		Deceitful:        deceitful,
		Attack:           zlb.BinaryConsensusAttack,
		PartitionDelayMs: 3000,
		Seed:             3,
		MaxBlocks:        8,
		OnBlock: func(k uint64, txs int) {
			fmt.Printf("  block %d committed (%d txs)\n", k, txs)
		},
		OnFraud: func(culprit zlb.ReplicaID) {
			fmt.Printf("  fraud proven: replica %v\n", culprit)
		},
		OnMembershipChange: func(ex, in []zlb.ReplicaID) {
			changes++
			fmt.Printf("  membership change #%d: −%v +%v\n", changes, ex, in)
		},
	})
	if err != nil {
		log.Fatalf("building cluster: %v", err)
	}

	alice, err := cluster.WalletFor(0)
	if err != nil {
		log.Fatal(err)
	}
	bob, err := cluster.WalletFor(1)
	if err != nil {
		log.Fatal(err)
	}

	cluster.Start()
	// Drive the chain with a stream of payments; the coalition attacks
	// every instance.
	for i := 0; i < 6; i++ {
		tx, err := cluster.Pay(alice, bob.Address(), zlb.Amount(1000+i))
		if err != nil {
			log.Fatal(err)
		}
		cluster.Submit(tx)
		cluster.Run(3 * time.Second)
	}
	cluster.RunUntilQuiet(60 * time.Minute)

	fmt.Println()
	fmt.Printf("virtual time elapsed:   %v\n", cluster.Now().Round(time.Millisecond))
	fmt.Printf("wall time elapsed:      %v\n", time.Since(start).Round(time.Millisecond))
	fmt.Printf("disagreements (forks):  %d\n", cluster.Disagreements())
	fmt.Printf("culprits pending:       %v (cleared after exclusion)\n", cluster.Culprits())
	fmt.Printf("final committee:        %v\n", cluster.Members())
	fmt.Printf("membership changes:     %d\n", changes)
	fmt.Printf("converged per Def. 3:   %v\n", cluster.Converged())

	if !cluster.Converged() {
		fmt.Println("\nNOTE: convergence incomplete on this seed — increase MaxBlocks or rerun.")
	}
}
