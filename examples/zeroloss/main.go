// Command zeroloss is an interactive calculator for the paper's Appendix
// B analysis: given a deceitful ratio δ, a deposit factor b (D = b·G) and
// an attack success probability ρ, it reports the maximum branch count,
// the expected gain and punishment of an attack, and the minimum
// finalization blockdepth m that makes the payment system zero-loss
// (Theorem .5). Run without flags to print the paper's worked examples.
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/zeroloss/zlb/internal/payment"
)

func main() {
	delta := flag.Float64("delta", -1, "deceitful ratio δ = d/n (0 ≤ δ < 2/3)")
	b := flag.Float64("b", 0.1, "deposit factor b in D = b·G")
	rho := flag.Float64("rho", 0.9, "per-block attack success probability ρ")
	gain := flag.Float64("gain", 1_000_000, "per-block gain bound G (coins)")
	flag.Parse()

	if *delta < 0 {
		printWorkedExamples(*b)
		return
	}

	a := payment.MaxBranches(*delta)
	if a == 0 {
		fmt.Fprintf(os.Stderr, "δ=%.2f ≥ 2/3: the branch bound diverges; no zero-loss depth exists\n", *delta)
		os.Exit(1)
	}
	m, err := payment.MinDepth(a, *b, *rho)
	if err != nil {
		fmt.Fprintf(os.Stderr, "no finite blockdepth achieves zero loss: %v\n", err)
		os.Exit(1)
	}
	p := payment.Params{Branches: a, DepositFactor: *b, Rho: *rho, Depth: m}

	fmt.Printf("deceitful ratio δ:           %.3f\n", *delta)
	fmt.Printf("max fork branches a:         %d\n", a)
	fmt.Printf("deposit factor b:            %.3f (D = %.0f coins)\n", *b, *b**gain)
	fmt.Printf("attack success ρ:            %.3f per block\n", *rho)
	fmt.Printf("minimum blockdepth m:        %d\n", m)
	fmt.Printf("expected attacker gain:      %.1f coins per attempt\n", payment.ExpectedGain(p, *gain))
	fmt.Printf("expected punishment:         %.1f coins per attempt\n", payment.ExpectedPunishment(p, *gain))
	fmt.Printf("deposit flux Δ = 𝒫−𝒢:        %+.1f coins per attempt (≥ 0 ⇒ zero loss)\n", payment.DepositFlux(p, *gain))
	fmt.Printf("tolerable ρ at this depth:   %.4f\n", payment.TolerableRho(a, *b, m))
}

func printWorkedExamples(b float64) {
	fmt.Printf("Paper §B worked examples (D = G/%d):\n\n", int(1/b))
	fmt.Printf("%8s %10s %8s %12s\n", "δ", "branches", "ρ", "min depth m")
	for _, delta := range []float64{0.5, 0.55, 0.6, 0.64, 0.66} {
		for _, rho := range []float64{0.55, 0.9} {
			a := payment.MaxBranches(delta)
			m, err := payment.MinDepth(a, b, rho)
			if err != nil {
				continue
			}
			fmt.Printf("%8.2f %10d %8.2f %12d\n", delta, a, rho, m)
		}
	}
	fmt.Println("\n(Use -delta/-rho/-b/-gain for a custom analysis.)")
}
