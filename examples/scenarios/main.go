// Command scenarios is a walkthrough of the staged-scenario engine
// (internal/scenario). It first replays a registered campaign — the
// paper's full attack → detection → exclusion → merge arc — and then
// composes a custom campaign from the fault primitives: a coalition
// attack in phase one, benign churn in phase two, and a clean recovery
// window, all over deterministic virtual time.
//
//	go run ./examples/scenarios            # registered + custom campaign
//	go run ./examples/scenarios -n 18      # bigger committee
//	go run ./examples/scenarios -seed 7    # different deterministic run
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"github.com/zeroloss/zlb/internal/adversary"
	"github.com/zeroloss/zlb/internal/harness"
	"github.com/zeroloss/zlb/internal/latency"
	"github.com/zeroloss/zlb/internal/scenario"
	"github.com/zeroloss/zlb/internal/simnet"
	"github.com/zeroloss/zlb/internal/types"
)

func main() {
	n := flag.Int("n", 9, "committee size")
	seed := flag.Int64("seed", 42, "simulation seed (same seed => identical output)")
	flag.Parse()

	// --- 1. A registered campaign -----------------------------------
	//
	// The registry (scenario.Names) holds the named campaigns that
	// `zlb-bench -experiment scenarios` runs and determinism_test.go
	// pins. Build parameterizes one by committee size and seed.
	fmt.Println("== registered campaign: attack-detect-exclude-merge ==")
	s, err := scenario.Build("attack-detect-exclude-merge", *n, *seed)
	if err != nil {
		log.Fatal(err)
	}
	res, err := scenario.Run(s)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(res.Format())

	// --- 2. A custom campaign from fault primitives ------------------
	//
	// A Scenario is just harness options plus phases; each phase lists
	// the faults active during its window of virtual time. Here a
	// sub-threshold coalition attacks behind a stalled partition while
	// the committee also loses a replica to benign churn — a mixed-fault
	// regime none of the canned experiments covers.
	fmt.Println("\n== custom campaign: partial attack + churn ==")
	opts := harness.Options{
		N:            *n,
		Deceitful:    2,
		Attack:       adversary.AttackBinary,
		Accountable:  true,
		Recover:      true,
		BaseLatency:  latency.Jittered(latency.NewAWSMatrix(), 0.2),
		Cost:         simnet.DefaultCostModel(),
		Seed:         *seed,
		BatchTxs:     scenario.ScenarioBatchTxs,
		BatchBytes:   400 * scenario.ScenarioBatchTxs,
		MaxInstances: 16,
		PoolSize:     1,
	}
	custom := scenario.Scenario{
		Name: "custom-mixed-faults",
		Opts: opts,
		Phases: []scenario.Phase{
			{Name: "calm", Duration: 6 * time.Second},
			{
				Name:     "attack+churn",
				Duration: 10 * time.Second,
				Faults: []scenario.Fault{
					// Honest traffic across an explicit half/half split
					// stalls by 800 ms while the (too small) coalition
					// equivocates. (A sub-threshold coalition's own plan
					// has a single honest partition, so this split is
					// staged directly; CoalitionPartition is the right
					// fault when the coalition can actually fork.)
					&scenario.Partition{
						Groups: honestHalves(*n, opts.Deceitful),
						Extra:  800 * time.Millisecond,
					},
					// And the highest-ID honest replica naps.
					&scenario.Sleep{IDs: []types.ReplicaID{types.ReplicaID(*n)}},
				},
			},
			{Name: "recover", Duration: 10 * time.Second},
		},
	}
	cres, err := scenario.Run(custom)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(cres.Format())

	fmt.Println("\nBoth tables are deterministic: rerun with the same -n and -seed")
	fmt.Println("and every number reproduces bit for bit.")
}

// honestHalves splits the honest members (IDs deceitful+1..n) into two
// groups; the deceitful replicas stay unlisted and therefore
// unrestricted, the paper's §5.2 partition convention.
func honestHalves(n, deceitful int) [][]types.ReplicaID {
	honest := n - deceitful
	var a, b []types.ReplicaID
	for i := deceitful + 1; i <= n; i++ {
		if i-deceitful <= honest/2 {
			a = append(a, types.ReplicaID(i))
		} else {
			b = append(b, types.ReplicaID(i))
		}
	}
	return [][]types.ReplicaID{a, b}
}
