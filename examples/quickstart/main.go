// Command quickstart spins up an in-process ZLB deployment of 7 honest
// replicas, submits a handful of payments, and prints the committed
// blocks and resulting balances — the fastest way to see the system run.
package main

import (
	"fmt"
	"log"
	"time"

	"github.com/zeroloss/zlb"
)

func main() {
	cluster, err := zlb.NewCluster(zlb.Config{
		N:         7,
		Seed:      42,
		MaxBlocks: 10,
		OnBlock: func(k uint64, txs int) {
			fmt.Printf("block %-3d committed with %d transaction(s)\n", k, txs)
		},
	})
	if err != nil {
		log.Fatalf("building cluster: %v", err)
	}

	alice, err := cluster.WalletFor(0)
	if err != nil {
		log.Fatal(err)
	}
	bob, err := cluster.WalletFor(1)
	if err != nil {
		log.Fatal(err)
	}
	carol, err := cluster.WalletFor(2)
	if err != nil {
		log.Fatal(err)
	}

	cluster.Start()

	// Submit a few payments, advancing virtual time between them so they
	// land in different blocks.
	for i, transfer := range []struct {
		to     zlb.Address
		amount zlb.Amount
	}{
		{bob.Address(), 25_000},
		{carol.Address(), 10_000},
		{bob.Address(), 5_000},
	} {
		tx, err := cluster.Pay(alice, transfer.to, transfer.amount)
		if err != nil {
			log.Fatalf("payment %d: %v", i, err)
		}
		cluster.Submit(tx)
		cluster.Run(2 * time.Second) // virtual time
	}
	cluster.RunUntilQuiet(5 * time.Minute)

	fmt.Println()
	fmt.Printf("chain height:  %d blocks\n", cluster.Height())
	fmt.Printf("alice balance: %d\n", cluster.Balance(alice.Address()))
	fmt.Printf("bob balance:   %d\n", cluster.Balance(bob.Address()))
	fmt.Printf("carol balance: %d\n", cluster.Balance(carol.Address()))
	fmt.Printf("virtual time:  %v\n", cluster.Now().Round(time.Millisecond))
}
