// Command doublespend replays the paper's Figure 1 scenario end to end:
// Alice controls a coalition of deceitful replicas and tries to double
// spend by forking the chain, paying Bob on one branch and Carol on the
// other. ZLB detects the equivocation through certificate cross-checks,
// excludes the coalition, merges the branches, and funds the conflicting
// payment from the coalition's slashed deposits — both Bob and Carol end
// up paid and no honest account loses a coin.
package main

import (
	"fmt"
	"log"
	"time"

	"github.com/zeroloss/zlb"
)

func main() {
	const (
		n         = 9
		deceitful = 4 // ⌈5n/9⌉−1: a colluding majority-of-quorum
	)

	var excluded []zlb.ReplicaID
	cluster, err := zlb.NewCluster(zlb.Config{
		N:                n,
		Deceitful:        deceitful,
		Attack:           zlb.ReliableBroadcastAttack,
		PartitionDelayMs: 3000,
		Seed:             7,
		MaxBlocks:        6,
		OnFraud: func(culprit zlb.ReplicaID) {
			fmt.Printf("⚖  proof of fraud against replica %v\n", culprit)
		},
		OnMembershipChange: func(ex, in []zlb.ReplicaID) {
			excluded = append(excluded, ex...)
			fmt.Printf("⟲  membership change: excluded %v, included %v\n", ex, in)
		},
	})
	if err != nil {
		log.Fatalf("building cluster: %v", err)
	}

	alice, _ := cluster.WalletFor(0)
	bob, _ := cluster.WalletFor(1)
	carol, _ := cluster.WalletFor(2)

	fmt.Printf("committee: %v (replicas 1-%d deceitful, controlled by Alice)\n",
		cluster.Members(), deceitful)
	fmt.Printf("per-replica deposit: %d coins (3bG/n, §B)\n\n", cluster.PerReplicaStake())

	cluster.Start()

	// Alice pays Bob; her hacked replicas fork the chain so another
	// branch can carry a conflicting spend.
	tx, err := cluster.Pay(alice, bob.Address(), 500_000)
	if err != nil {
		log.Fatal(err)
	}
	cluster.Submit(tx)
	// A conflicting spend of the same coins, targeted at Carol.
	tx2, err := cluster.Pay(alice, carol.Address(), 500_000)
	if err != nil {
		log.Fatal(err)
	}
	cluster.Submit(tx2)

	cluster.RunUntilQuiet(60 * time.Minute)

	fmt.Println()
	fmt.Printf("disagreements observed: %d\n", cluster.Disagreements())
	fmt.Printf("final committee:        %v\n", cluster.Members())
	fmt.Printf("converged (δ < 1/3):    %v\n", cluster.Converged())
	fmt.Println()
	fmt.Printf("alice balance: %d\n", cluster.Balance(alice.Address()))
	fmt.Printf("bob balance:   %d\n", cluster.Balance(bob.Address()))
	fmt.Printf("carol balance: %d\n", cluster.Balance(carol.Address()))
	fmt.Printf("deposit pool:  %d (slashed stakes fund double spends)\n", cluster.Deposit())

	if len(excluded) == 0 {
		fmt.Println("\nNOTE: the coalition failed to fork on this seed; rerun with another seed.")
	} else {
		fmt.Println("\nzero loss: both recipients are paid; the attackers funded the difference.")
	}
}
