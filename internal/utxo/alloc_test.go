package utxo

import (
	"bytes"
	"testing"

	"github.com/zeroloss/zlb/internal/crypto"
	"github.com/zeroloss/zlb/internal/types"
)

func signedTx(t *testing.T) *Transaction {
	t.Helper()
	reg := crypto.NewRegistry(crypto.SchemeEd25519)
	scheme, err := crypto.NewScheme(crypto.SchemeEd25519, reg)
	if err != nil {
		t.Fatal(err)
	}
	kp, err := scheme.GenerateKey(crypto.NewDeterministicRand(5))
	if err != nil {
		t.Fatal(err)
	}
	w := NewWallet(kp, scheme)
	op := Outpoint{TxID: types.Hash([]byte("prev")), Index: 1}
	tx, err := w.Pay([]Input{{Prev: op, Value: 100}},
		[]Output{{Account: w.Address(), Value: 60}})
	if err != nil {
		t.Fatal(err)
	}
	return tx
}

// TestTransactionIDZeroAllocsWhenCached is the perf regression guard for
// the digest memoization: after the first computation, ID and SigDigest
// must be free.
func TestTransactionIDZeroAllocsWhenCached(t *testing.T) {
	tx := signedTx(t)
	want := tx.ID()
	wantSD := tx.SigDigest()
	var got types.Digest
	if allocs := testing.AllocsPerRun(100, func() {
		got = tx.ID()
	}); allocs != 0 {
		t.Errorf("cached ID allocates %.1f objects per call, want 0", allocs)
	}
	if got != want {
		t.Error("cached ID changed value")
	}
	if allocs := testing.AllocsPerRun(100, func() {
		got = tx.SigDigest()
	}); allocs != 0 {
		t.Errorf("cached SigDigest allocates %.1f objects per call, want 0", allocs)
	}
	if got != wantSD {
		t.Error("cached SigDigest changed value")
	}
}

func TestDecodeTransactionRoundtrip(t *testing.T) {
	tx := signedTx(t)
	enc := tx.Canonical()
	got, err := DecodeTransaction(append([]byte{}, enc...))
	if err != nil {
		t.Fatal(err)
	}
	if got.ID() != tx.ID() {
		t.Errorf("id %v, want %v", got.ID(), tx.ID())
	}
	if got.SigDigest() != tx.SigDigest() {
		t.Errorf("sig digest mismatch after roundtrip")
	}
	if !bytes.Equal(got.Canonical(), enc) {
		t.Error("re-encoding differs")
	}
	if got.Nonce != tx.Nonce || len(got.Inputs) != 1 || len(got.Outputs) != 2 {
		t.Error("fields differ after roundtrip")
	}
	if got.Inputs[0] != tx.Inputs[0] {
		t.Errorf("input %v, want %v", got.Inputs[0], tx.Inputs[0])
	}

	// Truncations at every boundary must error, not panic.
	for cut := 0; cut < len(enc); cut += 7 {
		if _, err := DecodeTransaction(enc[:cut]); err == nil && cut < len(enc)-len(tx.Sig) {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
}

func TestInvalidateRecomputes(t *testing.T) {
	tx := signedTx(t)
	before := tx.ID()
	tx.Outputs[0].Value++
	tx.Invalidate()
	if tx.ID() == before {
		t.Error("ID unchanged after mutation + Invalidate")
	}
}

// TestInputsForOrderMatchesSeed verifies the single-sort selection picks
// the same inputs (dust first, ties by outpoint) as the seed tree's
// sort-then-stable-sort pair.
func TestInputsForOrderMatchesSeed(t *testing.T) {
	tbl := NewTable()
	var addr Address
	addr[0] = 1
	// Three 5-coin UTXOs with distinct outpoints plus one 50-coin UTXO.
	ops := []Outpoint{
		{TxID: types.Hash([]byte("c")), Index: 0},
		{TxID: types.Hash([]byte("a")), Index: 2},
		{TxID: types.Hash([]byte("a")), Index: 1},
	}
	for _, op := range ops {
		tbl.Credit(op, Output{Account: addr, Value: 5})
	}
	big := Outpoint{TxID: types.Hash([]byte("b")), Index: 0}
	tbl.Credit(big, Output{Account: addr, Value: 50})

	picked, err := tbl.InputsFor(addr, 12)
	if err != nil {
		t.Fatal(err)
	}
	// Dust sweep: all three 5-coin outputs, ordered by (TxID, Index).
	if len(picked) != 3 {
		t.Fatalf("picked %d inputs, want 3", len(picked))
	}
	for i := 1; i < len(picked); i++ {
		a, b := picked[i-1].Prev, picked[i].Prev
		if b.TxID.Less(a.TxID) || (a.TxID == b.TxID && b.Index < a.Index) {
			t.Errorf("inputs out of deterministic order at %d: %v then %v", i, a, b)
		}
	}
	if _, err := tbl.InputsFor(addr, 1_000); err == nil {
		t.Error("underfunded request accepted")
	}
}

func TestBalanceRunning(t *testing.T) {
	tbl := NewTable()
	var addr Address
	addr[0] = 2
	op1 := Outpoint{TxID: types.Hash([]byte("x")), Index: 0}
	op2 := Outpoint{TxID: types.Hash([]byte("y")), Index: 0}
	tbl.Credit(op1, Output{Account: addr, Value: 30})
	tbl.Credit(op2, Output{Account: addr, Value: 12})
	tbl.Credit(op2, Output{Account: addr, Value: 999}) // duplicate: ignored
	if got := tbl.Balance(addr); got != 42 {
		t.Fatalf("balance %d, want 42", got)
	}
	tbl.Consume(op1)
	if got := tbl.Balance(addr); got != 12 {
		t.Fatalf("balance after consume %d, want 12", got)
	}
	tbl.Consume(op2)
	if got := tbl.Balance(addr); got != 0 {
		t.Fatalf("balance after drain %d, want 0", got)
	}
}
