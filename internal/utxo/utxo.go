// Package utxo implements the Bitcoin-style Unspent Transaction Output
// model ZLB inherits (paper §4.2.2): ~400-byte transactions signed with
// ECDSA, each consuming unspent outputs of earlier transactions and
// producing new ones, validated against an in-memory UTXO table kept to a
// minimum number of entries by consuming as many UTXOs as possible per
// transaction.
package utxo

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"

	"github.com/zeroloss/zlb/internal/crypto"
	"github.com/zeroloss/zlb/internal/types"
)

// Address identifies an account: the hash of its public key.
type Address [32]byte

// AddressOf derives the account address of a public key.
func AddressOf(pub crypto.PublicKey) Address {
	return Address(types.Hash(pub))
}

// String shortens the address for logs.
func (a Address) String() string { return types.Digest(a).String() }

// Outpoint references one output of an earlier transaction.
type Outpoint struct {
	TxID  types.Digest
	Index uint32
}

// String implements fmt.Stringer.
func (o Outpoint) String() string { return fmt.Sprintf("%v:%d", o.TxID, o.Index) }

// Output grants Value coins to Account.
type Output struct {
	Account Address
	Value   types.Amount
}

// Input consumes a previous output. Value mirrors the referenced output's
// value: the block merge (Alg. 2) needs the amount even when the UTXO has
// already been consumed on another branch, so it travels with the input
// and is cross-checked whenever the referenced output is available.
type Input struct {
	Prev  Outpoint
	Value types.Amount
}

// Transaction transfers coins from the sender's unspent outputs to the
// recipients. A single signer owns every input (the common wallet case);
// Nonce is the sender's strictly monotonically increasing sequence number
// (paper §4.2.4), which keeps two intentional transfers of equal shape
// from colliding into one transaction ID.
type Transaction struct {
	Inputs  []Input
	Outputs []Output
	Nonce   uint64
	Sender  crypto.PublicKey
	Sig     crypto.Signature
}

// Errors returned by transaction validation.
var (
	ErrNoInputs      = errors.New("utxo: transaction has no inputs")
	ErrNoOutputs     = errors.New("utxo: transaction has no outputs")
	ErrBadSignature  = errors.New("utxo: invalid signature")
	ErrMissingUTXO   = errors.New("utxo: input not spendable")
	ErrWrongOwner    = errors.New("utxo: input not owned by sender")
	ErrValueMismatch = errors.New("utxo: input value does not match referenced output")
	ErrOverspend     = errors.New("utxo: outputs exceed inputs")
	ErrDoubleSpend   = errors.New("utxo: input consumed twice in one batch")
	ErrZeroOutput    = errors.New("utxo: zero-value output")
)

// SigDigest returns the digest the sender signs: everything except the
// signature itself.
func (tx *Transaction) SigDigest() types.Digest {
	return types.Hash(tx.encode(false))
}

// ID returns the transaction identifier: the hash of the full encoding,
// signature included.
func (tx *Transaction) ID() types.Digest {
	return types.Hash(tx.encode(true))
}

// encode produces the canonical binary form, roughly 400 bytes for a
// typical 2-in/2-out transaction as in the paper's workload.
func (tx *Transaction) encode(withSig bool) []byte {
	size := 8 + 8 + len(tx.Inputs)*(32+4+8) + len(tx.Outputs)*(32+8) + len(tx.Sender)
	if withSig {
		size += len(tx.Sig)
	}
	buf := make([]byte, 0, size)
	var tmp [8]byte
	binary.BigEndian.PutUint64(tmp[:], tx.Nonce)
	buf = append(buf, tmp[:]...)
	binary.BigEndian.PutUint32(tmp[:4], uint32(len(tx.Inputs)))
	buf = append(buf, tmp[:4]...)
	for _, in := range tx.Inputs {
		buf = append(buf, in.Prev.TxID[:]...)
		binary.BigEndian.PutUint32(tmp[:4], in.Prev.Index)
		buf = append(buf, tmp[:4]...)
		binary.BigEndian.PutUint64(tmp[:], uint64(in.Value))
		buf = append(buf, tmp[:]...)
	}
	binary.BigEndian.PutUint32(tmp[:4], uint32(len(tx.Outputs)))
	buf = append(buf, tmp[:4]...)
	for _, out := range tx.Outputs {
		buf = append(buf, out.Account[:]...)
		binary.BigEndian.PutUint64(tmp[:], uint64(out.Value))
		buf = append(buf, tmp[:]...)
	}
	binary.BigEndian.PutUint32(tmp[:4], uint32(len(tx.Sender)))
	buf = append(buf, tmp[:4]...)
	buf = append(buf, tx.Sender...)
	if withSig {
		buf = append(buf, tx.Sig...)
	}
	return buf
}

// InputSum totals the declared input values.
func (tx *Transaction) InputSum() types.Amount {
	var sum types.Amount
	for _, in := range tx.Inputs {
		sum += in.Value
	}
	return sum
}

// OutputSum totals the output values.
func (tx *Transaction) OutputSum() types.Amount {
	var sum types.Amount
	for _, out := range tx.Outputs {
		sum += out.Value
	}
	return sum
}

// CheckShape validates the signature-independent structure.
func (tx *Transaction) CheckShape() error {
	if len(tx.Inputs) == 0 {
		return ErrNoInputs
	}
	if len(tx.Outputs) == 0 {
		return ErrNoOutputs
	}
	for _, out := range tx.Outputs {
		if out.Value == 0 {
			return ErrZeroOutput
		}
	}
	if tx.OutputSum() > tx.InputSum() {
		return ErrOverspend
	}
	seen := make(map[Outpoint]bool, len(tx.Inputs))
	for _, in := range tx.Inputs {
		if seen[in.Prev] {
			return ErrDoubleSpend
		}
		seen[in.Prev] = true
	}
	return nil
}

// VerifySig checks the sender's signature with the given scheme.
func (tx *Transaction) VerifySig(scheme crypto.Scheme) error {
	if !scheme.Verify(tx.Sender, tx.SigDigest(), tx.Sig) {
		return ErrBadSignature
	}
	return nil
}

// Wallet signs transactions for one key pair.
type Wallet struct {
	kp     *crypto.KeyPair
	scheme crypto.Scheme
	addr   Address
	nonce  uint64
}

// NewWallet wraps a key pair.
func NewWallet(kp *crypto.KeyPair, scheme crypto.Scheme) *Wallet {
	return &Wallet{kp: kp, scheme: scheme, addr: AddressOf(kp.Public())}
}

// Address returns the wallet's account address.
func (w *Wallet) Address() Address { return w.addr }

// Pay builds and signs a transaction spending the given inputs to the
// recipients, returning any change to the wallet.
func (w *Wallet) Pay(inputs []Input, to []Output) (*Transaction, error) {
	var inSum, outSum types.Amount
	for _, in := range inputs {
		inSum += in.Value
	}
	for _, o := range to {
		outSum += o.Value
	}
	if outSum > inSum {
		return nil, ErrOverspend
	}
	outs := append([]Output(nil), to...)
	if change := inSum - outSum; change > 0 {
		outs = append(outs, Output{Account: w.addr, Value: change})
	}
	w.nonce++
	tx := &Transaction{
		Inputs:  append([]Input(nil), inputs...),
		Outputs: outs,
		Nonce:   w.nonce,
		Sender:  w.kp.Public(),
	}
	sig, err := w.scheme.Sign(w.kp, tx.SigDigest())
	if err != nil {
		return nil, fmt.Errorf("utxo: signing: %w", err)
	}
	tx.Sig = sig
	return tx, nil
}

// Table is the in-memory UTXO table (paper §4.2.2). It is not safe for
// concurrent use; the owning replica serializes access.
type Table struct {
	utxos  map[Outpoint]Output
	owner  map[Outpoint]Address
	byAddr map[Address]map[Outpoint]struct{}
}

// NewTable creates an empty table.
func NewTable() *Table {
	return &Table{
		utxos:  make(map[Outpoint]Output),
		owner:  make(map[Outpoint]Address),
		byAddr: make(map[Address]map[Outpoint]struct{}),
	}
}

// Credit inserts an unspent output (genesis allocation or tx product).
func (t *Table) Credit(op Outpoint, out Output) {
	if _, dup := t.utxos[op]; dup {
		return
	}
	t.utxos[op] = out
	t.owner[op] = out.Account
	set, ok := t.byAddr[out.Account]
	if !ok {
		set = make(map[Outpoint]struct{})
		t.byAddr[out.Account] = set
	}
	set[op] = struct{}{}
}

// Spendable reports whether the outpoint is unspent, and its output.
func (t *Table) Spendable(op Outpoint) (Output, bool) {
	out, ok := t.utxos[op]
	return out, ok
}

// Consume removes an unspent output; it reports whether it was present.
func (t *Table) Consume(op Outpoint) bool {
	out, ok := t.utxos[op]
	if !ok {
		return false
	}
	delete(t.utxos, op)
	delete(t.owner, op)
	if set, ok := t.byAddr[out.Account]; ok {
		delete(set, op)
		if len(set) == 0 {
			delete(t.byAddr, out.Account)
		}
	}
	return true
}

// Balance sums the unspent outputs of an account.
func (t *Table) Balance(addr Address) types.Amount {
	var sum types.Amount
	for op := range t.byAddr[addr] {
		sum += t.utxos[op].Value
	}
	return sum
}

// Outpoints returns the account's unspent outpoints sorted by (TxID,
// Index) — deterministic input selection for wallets.
func (t *Table) Outpoints(addr Address) []Outpoint {
	ops := make([]Outpoint, 0, len(t.byAddr[addr]))
	for op := range t.byAddr[addr] {
		ops = append(ops, op)
	}
	sort.Slice(ops, func(i, j int) bool {
		if ops[i].TxID != ops[j].TxID {
			return ops[i].TxID.Less(ops[j].TxID)
		}
		return ops[i].Index < ops[j].Index
	})
	return ops
}

// InputsFor selects inputs covering at least amount, consuming as many
// small UTXOs as possible first to keep the table compact (paper §4.2.2
// "maximizing the number of UTXOs to consume").
func (t *Table) InputsFor(addr Address, amount types.Amount) ([]Input, error) {
	ops := t.Outpoints(addr)
	// Sort ascending by value to sweep dust first.
	sort.SliceStable(ops, func(i, j int) bool {
		return t.utxos[ops[i]].Value < t.utxos[ops[j]].Value
	})
	var picked []Input
	var sum types.Amount
	for _, op := range ops {
		out := t.utxos[op]
		picked = append(picked, Input{Prev: op, Value: out.Value})
		sum += out.Value
		if sum >= amount {
			return picked, nil
		}
	}
	return nil, fmt.Errorf("%w: account %v has %d, needs %d", ErrMissingUTXO, addr, sum, amount)
}

// Size returns the number of unspent outputs.
func (t *Table) Size() int { return len(t.utxos) }

// Validate checks a transaction against the table without mutating it:
// shape, signature (if scheme non-nil), spendability, ownership and value
// binding.
func (t *Table) Validate(tx *Transaction, scheme crypto.Scheme) error {
	if err := tx.CheckShape(); err != nil {
		return err
	}
	if scheme != nil {
		if err := tx.VerifySig(scheme); err != nil {
			return err
		}
	}
	sender := AddressOf(tx.Sender)
	for _, in := range tx.Inputs {
		out, ok := t.utxos[in.Prev]
		if !ok {
			return fmt.Errorf("%w: %v", ErrMissingUTXO, in.Prev)
		}
		if out.Account != sender {
			return fmt.Errorf("%w: %v", ErrWrongOwner, in.Prev)
		}
		if out.Value != in.Value {
			return fmt.Errorf("%w: %v", ErrValueMismatch, in.Prev)
		}
	}
	return nil
}

// Apply validates then executes a transaction: consume inputs, credit
// outputs.
func (t *Table) Apply(tx *Transaction, scheme crypto.Scheme) error {
	if err := t.Validate(tx, scheme); err != nil {
		return err
	}
	id := tx.ID()
	for _, in := range tx.Inputs {
		t.Consume(in.Prev)
	}
	for i, out := range tx.Outputs {
		t.Credit(Outpoint{TxID: id, Index: uint32(i)}, out)
	}
	return nil
}

// TotalValue sums every unspent output: conservation checks in tests.
func (t *Table) TotalValue() types.Amount {
	var sum types.Amount
	for _, out := range t.utxos {
		sum += out.Value
	}
	return sum
}

// Clone deep-copies the table (branch simulation in tests and merges).
func (t *Table) Clone() *Table {
	c := NewTable()
	for op, out := range t.utxos {
		c.Credit(op, out)
	}
	return c
}
