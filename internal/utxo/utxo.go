// Package utxo implements the Bitcoin-style Unspent Transaction Output
// model ZLB inherits (paper §4.2.2): ~400-byte transactions signed with
// ECDSA, each consuming unspent outputs of earlier transactions and
// producing new ones, validated against an in-memory UTXO table kept to a
// minimum number of entries by consuming as many UTXOs as possible per
// transaction.
package utxo

import (
	"encoding/binary"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"github.com/zeroloss/zlb/internal/crypto"
	"github.com/zeroloss/zlb/internal/types"
)

// Address identifies an account: the hash of its public key.
type Address [32]byte

// AddressOf derives the account address of a public key.
func AddressOf(pub crypto.PublicKey) Address {
	return Address(types.Hash(pub))
}

// String shortens the address for logs.
func (a Address) String() string { return types.Digest(a).String() }

// Outpoint references one output of an earlier transaction.
type Outpoint struct {
	TxID  types.Digest
	Index uint32
}

// String implements fmt.Stringer.
func (o Outpoint) String() string { return fmt.Sprintf("%v:%d", o.TxID, o.Index) }

// Output grants Value coins to Account.
type Output struct {
	Account Address
	Value   types.Amount
}

// Input consumes a previous output. Value mirrors the referenced output's
// value: the block merge (Alg. 2) needs the amount even when the UTXO has
// already been consumed on another branch, so it travels with the input
// and is cross-checked whenever the referenced output is available.
type Input struct {
	Prev  Outpoint
	Value types.Amount
}

// Transaction transfers coins from the sender's unspent outputs to the
// recipients. A single signer owns every input (the common wallet case);
// Nonce is the sender's strictly monotonically increasing sequence number
// (paper §4.2.4), which keeps two intentional transfers of equal shape
// from colliding into one transaction ID.
//
// Transactions are immutable once signed: ID, SigDigest and the canonical
// encoding are computed lazily and memoized, so the hot paths (mempool
// dedup, block assembly, pruning, UTXO application) hash each transaction
// at most once. Code that mutates a field after one of these accessors has
// run must call Invalidate.
type Transaction struct {
	Inputs  []Input
	Outputs []Output
	Nonce   uint64
	Sender  crypto.PublicKey
	Sig     crypto.Signature

	// Memoized derived values. Unexported on purpose: excluded from the
	// canonical encoding (internal/wire frames transactions by those
	// bytes) and invisible to the TCP transport's gob frames, so cached
	// state never leaks onto either wire.
	enc       []byte // canonical encoding, signature included
	id        types.Digest
	sigDigest types.Digest
	haveID    bool
	haveSD    bool
	// sigv is the memoized signature verdict (sigUnknown/sigClaimed/
	// sigValid/sigInvalid), accessed atomically: the commit pipeline's
	// workers publish verdicts ahead of time while the owning replica may
	// be reading. The claim state makes the verify-and-memoize step
	// exclusive, so the non-atomic memo fields above are written by at
	// most one goroutine. A transaction is only ever verified under one
	// scheme (the deployment's); Invalidate resets the verdict.
	sigv int32
}

// Signature verdict states for Transaction.sigv.
const (
	sigUnknown int32 = iota
	sigClaimed
	sigValid
	sigInvalid
)

// Errors returned by transaction validation.
var (
	ErrNoInputs      = errors.New("utxo: transaction has no inputs")
	ErrNoOutputs     = errors.New("utxo: transaction has no outputs")
	ErrBadSignature  = errors.New("utxo: invalid signature")
	ErrMissingUTXO   = errors.New("utxo: input not spendable")
	ErrWrongOwner    = errors.New("utxo: input not owned by sender")
	ErrValueMismatch = errors.New("utxo: input value does not match referenced output")
	ErrOverspend     = errors.New("utxo: outputs exceed inputs")
	ErrDoubleSpend   = errors.New("utxo: input consumed twice in one batch")
	ErrZeroOutput    = errors.New("utxo: zero-value output")
)

// SigDigest returns the digest the sender signs: everything except the
// signature itself. The result is memoized.
func (tx *Transaction) SigDigest() types.Digest {
	if !tx.haveSD {
		tx.sigDigest = types.Hash(tx.encode(false))
		tx.haveSD = true
	}
	return tx.sigDigest
}

// ID returns the transaction identifier: the hash of the full encoding,
// signature included. The result is memoized.
func (tx *Transaction) ID() types.Digest {
	if !tx.haveID {
		tx.id = types.Hash(tx.Canonical())
		tx.haveID = true
	}
	return tx.id
}

// Canonical returns the memoized canonical binary encoding, signature
// included. Callers must not modify the returned slice.
func (tx *Transaction) Canonical() []byte {
	if tx.enc == nil {
		tx.enc = tx.encode(true)
	}
	return tx.enc
}

// CanonicalSize returns the length of the canonical encoding without
// materializing it.
func (tx *Transaction) CanonicalSize() int {
	if tx.enc != nil {
		return len(tx.enc)
	}
	return 8 + 4 + len(tx.Inputs)*(32+4+8) + 4 + len(tx.Outputs)*(32+8) + 4 + len(tx.Sender) + len(tx.Sig)
}

// Invalidate drops the memoized encoding, digests and signature verdict.
// It must be called after mutating a transaction that has already been
// encoded, hashed or verified (test helpers forging variants; production
// code never mutates).
func (tx *Transaction) Invalidate() {
	tx.enc = nil
	tx.haveID = false
	tx.haveSD = false
	atomic.StoreInt32(&tx.sigv, sigUnknown)
}

// encode produces the canonical binary form, roughly 400 bytes for a
// typical 2-in/2-out transaction as in the paper's workload.
func (tx *Transaction) encode(withSig bool) []byte {
	size := 8 + 4 + len(tx.Inputs)*(32+4+8) + 4 + len(tx.Outputs)*(32+8) + 4 + len(tx.Sender)
	if withSig {
		size += len(tx.Sig)
	}
	buf := make([]byte, 0, size)
	var tmp [8]byte
	binary.BigEndian.PutUint64(tmp[:], tx.Nonce)
	buf = append(buf, tmp[:]...)
	binary.BigEndian.PutUint32(tmp[:4], uint32(len(tx.Inputs)))
	buf = append(buf, tmp[:4]...)
	for _, in := range tx.Inputs {
		buf = append(buf, in.Prev.TxID[:]...)
		binary.BigEndian.PutUint32(tmp[:4], in.Prev.Index)
		buf = append(buf, tmp[:4]...)
		binary.BigEndian.PutUint64(tmp[:], uint64(in.Value))
		buf = append(buf, tmp[:]...)
	}
	binary.BigEndian.PutUint32(tmp[:4], uint32(len(tx.Outputs)))
	buf = append(buf, tmp[:4]...)
	for _, out := range tx.Outputs {
		buf = append(buf, out.Account[:]...)
		binary.BigEndian.PutUint64(tmp[:], uint64(out.Value))
		buf = append(buf, tmp[:]...)
	}
	binary.BigEndian.PutUint32(tmp[:4], uint32(len(tx.Sender)))
	buf = append(buf, tmp[:4]...)
	buf = append(buf, tx.Sender...)
	if withSig {
		buf = append(buf, tx.Sig...)
	}
	return buf
}

// ErrTruncated is returned when a canonical encoding is shorter than its
// declared structure.
var ErrTruncated = errors.New("utxo: truncated transaction encoding")

// maxCount bounds the declared input/output/sender lengths a decoder
// accepts, so a corrupt length prefix cannot trigger a huge allocation.
const maxCount = 1 << 20

// DecodeTransaction parses a canonical encoding produced by Canonical.
// The entire buffer is consumed: the signature is the remainder after the
// sender key. The input is retained as the decoded transaction's memoized
// encoding, so re-encoding and hashing the result is free.
func DecodeTransaction(buf []byte) (*Transaction, error) {
	tx := &Transaction{}
	r := buf
	take := func(n int) ([]byte, error) {
		if len(r) < n {
			return nil, ErrTruncated
		}
		part := r[:n]
		r = r[n:]
		return part, nil
	}
	part, err := take(8)
	if err != nil {
		return nil, err
	}
	tx.Nonce = binary.BigEndian.Uint64(part)
	part, err = take(4)
	if err != nil {
		return nil, err
	}
	nIn := binary.BigEndian.Uint32(part)
	if nIn > maxCount || int(nIn) > len(r)/(32+4+8) {
		return nil, fmt.Errorf("%w: %d inputs in %d bytes", ErrTruncated, nIn, len(r))
	}
	tx.Inputs = make([]Input, nIn)
	for i := range tx.Inputs {
		if part, err = take(32 + 4 + 8); err != nil {
			return nil, err
		}
		copy(tx.Inputs[i].Prev.TxID[:], part)
		tx.Inputs[i].Prev.Index = binary.BigEndian.Uint32(part[32:])
		tx.Inputs[i].Value = types.Amount(binary.BigEndian.Uint64(part[36:]))
	}
	if part, err = take(4); err != nil {
		return nil, err
	}
	nOut := binary.BigEndian.Uint32(part)
	if nOut > maxCount || int(nOut) > len(r)/(32+8) {
		return nil, fmt.Errorf("%w: %d outputs in %d bytes", ErrTruncated, nOut, len(r))
	}
	tx.Outputs = make([]Output, nOut)
	for i := range tx.Outputs {
		if part, err = take(32 + 8); err != nil {
			return nil, err
		}
		copy(tx.Outputs[i].Account[:], part)
		tx.Outputs[i].Value = types.Amount(binary.BigEndian.Uint64(part[32:]))
	}
	if part, err = take(4); err != nil {
		return nil, err
	}
	nSender := binary.BigEndian.Uint32(part)
	if nSender > maxCount || int(nSender) > len(r) {
		return nil, fmt.Errorf("%w: %d-byte sender in %d bytes", ErrTruncated, nSender, len(r))
	}
	if part, err = take(int(nSender)); err != nil {
		return nil, err
	}
	// Sender, Sig and the memoized encoding alias buf: the decoded
	// transaction shares the payload's backing array, which callers must
	// therefore not reuse.
	tx.Sender = crypto.PublicKey(part)
	tx.Sig = crypto.Signature(r)
	tx.enc = buf
	return tx, nil
}

// InputSum totals the declared input values.
func (tx *Transaction) InputSum() types.Amount {
	var sum types.Amount
	for _, in := range tx.Inputs {
		sum += in.Value
	}
	return sum
}

// OutputSum totals the output values.
func (tx *Transaction) OutputSum() types.Amount {
	var sum types.Amount
	for _, out := range tx.Outputs {
		sum += out.Value
	}
	return sum
}

// Fee returns the fee the transaction offers: declared inputs minus
// outputs (the coins that leave the UTXO set at commit). A malformed
// overspend counts as zero fee; CheckShape rejects it regardless.
func (tx *Transaction) Fee() types.Amount {
	in, out := tx.InputSum(), tx.OutputSum()
	if out >= in {
		return 0
	}
	return in - out
}

// CheckShape validates the signature-independent structure.
func (tx *Transaction) CheckShape() error {
	if len(tx.Inputs) == 0 {
		return ErrNoInputs
	}
	if len(tx.Outputs) == 0 {
		return ErrNoOutputs
	}
	for _, out := range tx.Outputs {
		if out.Value == 0 {
			return ErrZeroOutput
		}
	}
	if tx.OutputSum() > tx.InputSum() {
		return ErrOverspend
	}
	seen := make(map[Outpoint]bool, len(tx.Inputs))
	for _, in := range tx.Inputs {
		if seen[in.Prev] {
			return ErrDoubleSpend
		}
		seen[in.Prev] = true
	}
	return nil
}

// VerifySig checks the sender's signature with the given scheme. The
// verdict is memoized atomically, so the commit pipeline can verify a
// transaction speculatively on a worker while consensus is still deciding
// its batch — and the n replicas of a simulated cluster, which share the
// transaction object, pay for the signature check once. The claim state
// serializes the verify-and-memoize step: concurrent callers briefly spin
// (one signature verification, microseconds) instead of duplicating it.
// A transaction must only ever be verified under one scheme; call
// Invalidate after mutating an already-verified transaction.
func (tx *Transaction) VerifySig(scheme crypto.Scheme) error {
	for {
		switch atomic.LoadInt32(&tx.sigv) {
		case sigValid:
			return nil
		case sigInvalid:
			return ErrBadSignature
		case sigUnknown:
			if atomic.CompareAndSwapInt32(&tx.sigv, sigUnknown, sigClaimed) {
				if scheme.Verify(tx.Sender, tx.SigDigest(), tx.Sig) {
					atomic.StoreInt32(&tx.sigv, sigValid)
					return nil
				}
				atomic.StoreInt32(&tx.sigv, sigInvalid)
				return ErrBadSignature
			}
		default: // claimed by another goroutine; verdict imminent
			runtime.Gosched()
		}
	}
}

// Wallet signs transactions for one key pair.
type Wallet struct {
	kp     *crypto.KeyPair
	scheme crypto.Scheme
	addr   Address
	nonce  uint64
}

// NewWallet wraps a key pair.
func NewWallet(kp *crypto.KeyPair, scheme crypto.Scheme) *Wallet {
	return &Wallet{kp: kp, scheme: scheme, addr: AddressOf(kp.Public())}
}

// Address returns the wallet's account address.
func (w *Wallet) Address() Address { return w.addr }

// Pay builds and signs a transaction spending the given inputs to the
// recipients, returning all change to the wallet (zero fee).
func (w *Wallet) Pay(inputs []Input, to []Output) (*Transaction, error) {
	return w.PayWithFee(inputs, to, 0)
}

// PayWithFee builds and signs a transaction that leaves fee coins
// unclaimed for the admission policy to rank by: change returned to the
// wallet is the input sum minus recipients minus fee. The fee leaves the
// UTXO set when the transaction commits.
func (w *Wallet) PayWithFee(inputs []Input, to []Output, fee types.Amount) (*Transaction, error) {
	var inSum, outSum types.Amount
	for _, in := range inputs {
		inSum += in.Value
	}
	for _, o := range to {
		outSum += o.Value
	}
	if outSum+fee > inSum || outSum+fee < outSum {
		return nil, ErrOverspend
	}
	outs := append([]Output(nil), to...)
	if change := inSum - outSum - fee; change > 0 {
		outs = append(outs, Output{Account: w.addr, Value: change})
	}
	w.nonce++
	tx := &Transaction{
		Inputs:  append([]Input(nil), inputs...),
		Outputs: outs,
		Nonce:   w.nonce,
		Sender:  w.kp.Public(),
	}
	sig, err := w.scheme.Sign(w.kp, tx.SigDigest())
	if err != nil {
		return nil, fmt.Errorf("utxo: signing: %w", err)
	}
	tx.Sig = sig
	return tx, nil
}

// tableStripes is the number of lock stripes the table's state is
// sharded across. A power of two so the stripe index is a mask.
const tableStripes = 64

// opStripe holds the outpoint-keyed state of one stripe.
type opStripe struct {
	mu    sync.RWMutex
	utxos map[Outpoint]Output
	owner map[Outpoint]Address
}

// addrStripe holds the account-keyed state of one stripe.
type addrStripe struct {
	mu     sync.RWMutex
	byAddr map[Address]map[Outpoint]struct{}
	// bal holds each address's running balance so Balance is O(1) instead
	// of iterating the outpoint set.
	bal map[Address]types.Amount
}

// Table is the in-memory UTXO table (paper §4.2.2), lock-striped across
// tableStripes shards: unspent outputs shard by outpoint, account indexes
// and balances shard by address. Every individual operation (Credit,
// Consume, Spendable, Balance, ...) is atomic and safe for concurrent
// use; compound operations like Apply are atomic only per map access.
// That is exactly what the commit pipeline (internal/pipeline, internal/
// bm) needs: it only applies transactions concurrently when its conflict
// analysis proved them disjoint on inputs and independent of every other
// transaction in the block, so per-access atomicity composes to a result
// bit-identical to sequential application. Balance updates from
// concurrent credits to one account are commutative additions under the
// account's stripe lock.
type Table struct {
	ops   [tableStripes]opStripe
	addrs [tableStripes]addrStripe
}

// NewTable creates an empty table.
func NewTable() *Table {
	t := &Table{}
	for i := range t.ops {
		t.ops[i].utxos = make(map[Outpoint]Output)
		t.ops[i].owner = make(map[Outpoint]Address)
	}
	for i := range t.addrs {
		t.addrs[i].byAddr = make(map[Address]map[Outpoint]struct{})
		t.addrs[i].bal = make(map[Address]types.Amount)
	}
	return t
}

// opStripeOf maps an outpoint to its stripe. TxIDs are hashes, so the
// first byte is uniform; XOR-ing the index spreads the outputs of one
// transaction (and the genesis block) across stripes.
func (t *Table) opStripeOf(op Outpoint) *opStripe {
	return &t.ops[(uint32(op.TxID[0])^op.Index)&(tableStripes-1)]
}

// addrStripeOf maps an account to its stripe (addresses are hashes).
func (t *Table) addrStripeOf(addr Address) *addrStripe {
	return &t.addrs[addr[0]&(tableStripes-1)]
}

// Credit inserts an unspent output (genesis allocation or tx product).
func (t *Table) Credit(op Outpoint, out Output) {
	s := t.opStripeOf(op)
	s.mu.Lock()
	if _, dup := s.utxos[op]; dup {
		s.mu.Unlock()
		return
	}
	s.utxos[op] = out
	s.owner[op] = out.Account
	s.mu.Unlock()

	a := t.addrStripeOf(out.Account)
	a.mu.Lock()
	a.bal[out.Account] += out.Value
	set, ok := a.byAddr[out.Account]
	if !ok {
		set = make(map[Outpoint]struct{})
		a.byAddr[out.Account] = set
	}
	set[op] = struct{}{}
	a.mu.Unlock()
}

// Spendable reports whether the outpoint is unspent, and its output.
func (t *Table) Spendable(op Outpoint) (Output, bool) {
	s := t.opStripeOf(op)
	s.mu.RLock()
	out, ok := s.utxos[op]
	s.mu.RUnlock()
	return out, ok
}

// Consume removes an unspent output; it reports whether it was present.
func (t *Table) Consume(op Outpoint) bool {
	s := t.opStripeOf(op)
	s.mu.Lock()
	out, ok := s.utxos[op]
	if !ok {
		s.mu.Unlock()
		return false
	}
	delete(s.utxos, op)
	delete(s.owner, op)
	s.mu.Unlock()

	a := t.addrStripeOf(out.Account)
	a.mu.Lock()
	if next := a.bal[out.Account] - out.Value; next == 0 {
		delete(a.bal, out.Account)
	} else {
		a.bal[out.Account] = next
	}
	if set, ok := a.byAddr[out.Account]; ok {
		delete(set, op)
		if len(set) == 0 {
			delete(a.byAddr, out.Account)
		}
	}
	a.mu.Unlock()
	return true
}

// Balance returns the account's running balance in O(1).
func (t *Table) Balance(addr Address) types.Amount {
	a := t.addrStripeOf(addr)
	a.mu.RLock()
	bal := a.bal[addr]
	a.mu.RUnlock()
	return bal
}

// outpointsOf copies the account's unspent outpoint set under its stripe
// lock.
func (t *Table) outpointsOf(addr Address) []Outpoint {
	a := t.addrStripeOf(addr)
	a.mu.RLock()
	ops := make([]Outpoint, 0, len(a.byAddr[addr]))
	for op := range a.byAddr[addr] {
		ops = append(ops, op)
	}
	a.mu.RUnlock()
	return ops
}

// Outpoints returns the account's unspent outpoints sorted by (TxID,
// Index) — deterministic input selection for wallets.
func (t *Table) Outpoints(addr Address) []Outpoint {
	ops := t.outpointsOf(addr)
	sort.Slice(ops, func(i, j int) bool {
		if ops[i].TxID != ops[j].TxID {
			return ops[i].TxID.Less(ops[j].TxID)
		}
		return ops[i].Index < ops[j].Index
	})
	return ops
}

// InputsFor selects inputs covering at least amount, consuming as many
// small UTXOs as possible first to keep the table compact (paper §4.2.2
// "maximizing the number of UTXOs to consume"). An O(1) balance check
// rejects underfunded requests before any sorting; selection uses a
// single value-ordered sort — (Value, TxID, Index) ascending, which ties
// break exactly like the previous sort-then-stable-sort pair did.
func (t *Table) InputsFor(addr Address, amount types.Amount) ([]Input, error) {
	if have := t.Balance(addr); have < amount {
		return nil, fmt.Errorf("%w: account %v has %d, needs %d", ErrMissingUTXO, addr, have, amount)
	}
	ops := t.outpointsOf(addr)
	picked := make([]Input, 0, len(ops))
	for _, op := range ops {
		if out, ok := t.Spendable(op); ok {
			picked = append(picked, Input{Prev: op, Value: out.Value})
		}
	}
	sort.Slice(picked, func(i, j int) bool {
		if picked[i].Value != picked[j].Value {
			return picked[i].Value < picked[j].Value
		}
		if picked[i].Prev.TxID != picked[j].Prev.TxID {
			return picked[i].Prev.TxID.Less(picked[j].Prev.TxID)
		}
		return picked[i].Prev.Index < picked[j].Prev.Index
	})
	var sum types.Amount
	for i, in := range picked {
		sum += in.Value
		if sum >= amount {
			return picked[:i+1], nil
		}
	}
	return nil, fmt.Errorf("%w: account %v has %d, needs %d", ErrMissingUTXO, addr, sum, amount)
}

// Size returns the number of unspent outputs.
func (t *Table) Size() int {
	total := 0
	for i := range t.ops {
		s := &t.ops[i]
		s.mu.RLock()
		total += len(s.utxos)
		s.mu.RUnlock()
	}
	return total
}

// Validate checks a transaction against the table without mutating it:
// shape, signature (if scheme non-nil), spendability, ownership and value
// binding.
func (t *Table) Validate(tx *Transaction, scheme crypto.Scheme) error {
	if err := tx.CheckShape(); err != nil {
		return err
	}
	if scheme != nil {
		if err := tx.VerifySig(scheme); err != nil {
			return err
		}
	}
	sender := AddressOf(tx.Sender)
	for _, in := range tx.Inputs {
		out, ok := t.Spendable(in.Prev)
		if !ok {
			return fmt.Errorf("%w: %v", ErrMissingUTXO, in.Prev)
		}
		if out.Account != sender {
			return fmt.Errorf("%w: %v", ErrWrongOwner, in.Prev)
		}
		if out.Value != in.Value {
			return fmt.Errorf("%w: %v", ErrValueMismatch, in.Prev)
		}
	}
	return nil
}

// Apply validates then executes a transaction: consume inputs, credit
// outputs.
func (t *Table) Apply(tx *Transaction, scheme crypto.Scheme) error {
	if err := t.Validate(tx, scheme); err != nil {
		return err
	}
	id := tx.ID()
	for _, in := range tx.Inputs {
		t.Consume(in.Prev)
	}
	for i, out := range tx.Outputs {
		t.Credit(Outpoint{TxID: id, Index: uint32(i)}, out)
	}
	return nil
}

// Entry is one unspent output of the table, as enumerated by Entries.
type Entry struct {
	Op  Outpoint
	Out Output
}

// Entries returns every unspent output sorted by outpoint — the
// deterministic enumeration ledger checkpoints (internal/store) are
// built from.
func (t *Table) Entries() []Entry {
	out := make([]Entry, 0, t.Size())
	for i := range t.ops {
		s := &t.ops[i]
		s.mu.RLock()
		for op, o := range s.utxos {
			out = append(out, Entry{Op: op, Out: o})
		}
		s.mu.RUnlock()
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Op.TxID != out[j].Op.TxID {
			return out[i].Op.TxID.Less(out[j].Op.TxID)
		}
		return out[i].Op.Index < out[j].Op.Index
	})
	return out
}

// TotalValue sums every unspent output: conservation checks in tests.
func (t *Table) TotalValue() types.Amount {
	var sum types.Amount
	for i := range t.ops {
		s := &t.ops[i]
		s.mu.RLock()
		for _, out := range s.utxos {
			sum += out.Value
		}
		s.mu.RUnlock()
	}
	return sum
}

// Clone deep-copies the table (branch simulation in tests and merges).
func (t *Table) Clone() *Table {
	c := NewTable()
	for i := range t.ops {
		s := &t.ops[i]
		s.mu.RLock()
		for op, out := range s.utxos {
			c.Credit(op, out)
		}
		s.mu.RUnlock()
	}
	return c
}
