package utxo

import (
	"fmt"
	"sync"
	"testing"

	"github.com/zeroloss/zlb/internal/crypto"
	"github.com/zeroloss/zlb/internal/types"
)

// TestStripedTableConcurrentDisjointApply hammers the lock-striped table
// with the exact access pattern the commit pipeline produces — many
// goroutines applying transactions that are disjoint on inputs — and
// checks the result equals a sequential apply of the same set. Run under
// -race this is the striped ledger's data-race regression test.
func TestStripedTableConcurrentDisjointApply(t *testing.T) {
	const workers = 8
	const perWorker = 50

	build := func() (*Table, [][]*struct {
		op  Outpoint
		out Output
	}) {
		tbl := NewTable()
		sets := make([][]*struct {
			op  Outpoint
			out Output
		}, workers)
		for w := 0; w < workers; w++ {
			for i := 0; i < perWorker; i++ {
				var addr Address
				addr[0] = byte(w)
				addr[1] = byte(i)
				op := Outpoint{TxID: types.Hash([]byte(fmt.Sprintf("seed-%d-%d", w, i))), Index: uint32(i)}
				out := Output{Account: addr, Value: types.Amount(w*1000 + i + 1)}
				tbl.Credit(op, out)
				sets[w] = append(sets[w], &struct {
					op  Outpoint
					out Output
				}{op, out})
			}
		}
		return tbl, sets
	}

	seqTbl, seqSets := build()
	for w := range seqSets {
		for i, e := range seqSets[w] {
			seqTbl.Consume(e.op)
			seqTbl.Credit(Outpoint{TxID: types.Hash([]byte(fmt.Sprintf("new-%d-%d", w, i)))}, e.out)
		}
	}

	parTbl, parSets := build()
	var wg sync.WaitGroup
	for w := range parSets {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i, e := range parSets[w] {
				if !parTbl.Consume(e.op) {
					t.Errorf("worker %d: outpoint %v missing", w, e.op)
				}
				parTbl.Credit(Outpoint{TxID: types.Hash([]byte(fmt.Sprintf("new-%d-%d", w, i)))}, e.out)
				// Interleave reads with the writes of the other workers.
				_ = parTbl.Balance(e.out.Account)
				_, _ = parTbl.Spendable(e.op)
			}
		}(w)
	}
	wg.Wait()

	if a, b := seqTbl.Size(), parTbl.Size(); a != b {
		t.Fatalf("size %d sequential vs %d concurrent", a, b)
	}
	if a, b := seqTbl.TotalValue(), parTbl.TotalValue(); a != b {
		t.Fatalf("total value %d sequential vs %d concurrent", a, b)
	}
	se, pe := seqTbl.Entries(), parTbl.Entries()
	for i := range se {
		if se[i] != pe[i] {
			t.Fatalf("entry %d: %v sequential vs %v concurrent", i, se[i], pe[i])
		}
	}
}

// TestVerifySigVerdictMemoized pins the atomic signature-verdict memo:
// concurrent verifies agree, and Invalidate resets the verdict so a
// mutated transaction re-verifies.
func TestVerifySigVerdictMemoized(t *testing.T) {
	reg := crypto.NewRegistry(crypto.SchemeEd25519)
	scheme, err := crypto.NewScheme(crypto.SchemeEd25519, reg)
	if err != nil {
		t.Fatal(err)
	}
	kp, err := scheme.GenerateKey(crypto.NewDeterministicRand(17))
	if err != nil {
		t.Fatal(err)
	}
	w := NewWallet(kp, scheme)
	tx, err := w.Pay(
		[]Input{{Prev: Outpoint{TxID: types.Hash([]byte("prev")), Index: 0}, Value: 100}},
		[]Output{{Account: w.Address(), Value: 60}})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := tx.VerifySig(scheme); err != nil {
				t.Errorf("valid signature rejected: %v", err)
			}
		}()
	}
	wg.Wait()
	tx.Outputs[0].Value++
	tx.Invalidate()
	if err := tx.VerifySig(scheme); err == nil {
		t.Error("mutated transaction still verifies after Invalidate")
	}
}
