package utxo

import (
	"testing"
	"testing/quick"

	"github.com/zeroloss/zlb/internal/crypto"
	"github.com/zeroloss/zlb/internal/types"
)

func testScheme(t *testing.T) (crypto.Scheme, *crypto.Registry) {
	t.Helper()
	reg := crypto.NewRegistry(crypto.SchemeEd25519)
	scheme, err := crypto.NewScheme(crypto.SchemeEd25519, reg)
	if err != nil {
		t.Fatal(err)
	}
	return scheme, reg
}

func newWallet(t *testing.T, scheme crypto.Scheme, seed int64) *Wallet {
	t.Helper()
	kp, err := scheme.GenerateKey(crypto.NewDeterministicRand(seed))
	if err != nil {
		t.Fatal(err)
	}
	return NewWallet(kp, scheme)
}

// fund credits the wallet with one UTXO of the given value.
func fund(tbl *Table, w *Wallet, tag byte, value types.Amount) Outpoint {
	op := Outpoint{TxID: types.Hash([]byte{tag}), Index: 0}
	tbl.Credit(op, Output{Account: w.Address(), Value: value})
	return op
}

func TestPayAndApply(t *testing.T) {
	scheme, _ := testScheme(t)
	alice := newWallet(t, scheme, 1)
	bob := newWallet(t, scheme, 2)
	tbl := NewTable()
	fund(tbl, alice, 'a', 100)

	inputs, err := tbl.InputsFor(alice.Address(), 60)
	if err != nil {
		t.Fatal(err)
	}
	tx, err := alice.Pay(inputs, []Output{{Account: bob.Address(), Value: 60}})
	if err != nil {
		t.Fatal(err)
	}
	if err := tbl.Apply(tx, scheme); err != nil {
		t.Fatal(err)
	}
	if got := tbl.Balance(bob.Address()); got != 60 {
		t.Fatalf("bob balance = %d, want 60", got)
	}
	if got := tbl.Balance(alice.Address()); got != 40 {
		t.Fatalf("alice change = %d, want 40", got)
	}
}

func TestDoubleSpendRejected(t *testing.T) {
	scheme, _ := testScheme(t)
	alice := newWallet(t, scheme, 1)
	bob := newWallet(t, scheme, 2)
	carol := newWallet(t, scheme, 3)
	tbl := NewTable()
	fund(tbl, alice, 'a', 100)

	inputs, _ := tbl.InputsFor(alice.Address(), 100)
	tx1, _ := alice.Pay(inputs, []Output{{Account: bob.Address(), Value: 100}})
	tx2, _ := alice.Pay(inputs, []Output{{Account: carol.Address(), Value: 100}})
	if err := tbl.Apply(tx1, scheme); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Apply(tx2, scheme); err == nil {
		t.Fatal("second spend of the same UTXO was accepted")
	}
}

func TestValidationErrors(t *testing.T) {
	scheme, _ := testScheme(t)
	alice := newWallet(t, scheme, 1)
	bob := newWallet(t, scheme, 2)
	mallory := newWallet(t, scheme, 66)
	tbl := NewTable()
	op := fund(tbl, alice, 'a', 100)

	t.Run("wrong owner", func(t *testing.T) {
		tx, err := mallory.Pay([]Input{{Prev: op, Value: 100}}, []Output{{Account: bob.Address(), Value: 100}})
		if err != nil {
			t.Fatal(err)
		}
		if err := tbl.Validate(tx, scheme); err == nil {
			t.Fatal("spend of someone else's UTXO accepted")
		}
	})

	t.Run("value mismatch", func(t *testing.T) {
		tx, err := alice.Pay([]Input{{Prev: op, Value: 150}}, []Output{{Account: bob.Address(), Value: 150}})
		if err != nil {
			t.Fatal(err)
		}
		if err := tbl.Validate(tx, scheme); err == nil {
			t.Fatal("inflated input value accepted")
		}
	})

	t.Run("tampered signature", func(t *testing.T) {
		tx, err := alice.Pay([]Input{{Prev: op, Value: 100}}, []Output{{Account: bob.Address(), Value: 100}})
		if err != nil {
			t.Fatal(err)
		}
		tx.Outputs[0].Value = 1
		tx.Outputs = append(tx.Outputs, Output{Account: mallory.Address(), Value: 99})
		tx.Invalidate() // mutated after signing: drop memoized digests
		if err := tbl.Validate(tx, scheme); err == nil {
			t.Fatal("tampered transaction accepted")
		}
	})

	t.Run("missing utxo", func(t *testing.T) {
		ghost := Outpoint{TxID: types.Hash([]byte("ghost")), Index: 9}
		tx, err := alice.Pay([]Input{{Prev: ghost, Value: 10}}, []Output{{Account: bob.Address(), Value: 10}})
		if err != nil {
			t.Fatal(err)
		}
		if err := tbl.Validate(tx, scheme); err == nil {
			t.Fatal("spend of non-existent UTXO accepted")
		}
	})
}

func TestCheckShape(t *testing.T) {
	tx := &Transaction{}
	if err := tx.CheckShape(); err == nil {
		t.Fatal("empty tx accepted")
	}
	tx.Inputs = []Input{{Value: 10}}
	if err := tx.CheckShape(); err == nil {
		t.Fatal("tx without outputs accepted")
	}
	tx.Outputs = []Output{{Value: 20}}
	if err := tx.CheckShape(); err == nil {
		t.Fatal("overspending tx accepted")
	}
	tx.Outputs = []Output{{Value: 0}}
	if err := tx.CheckShape(); err == nil {
		t.Fatal("zero output accepted")
	}
	tx.Outputs = []Output{{Value: 5}}
	tx.Inputs = []Input{{Value: 5}, {Value: 5}}
	tx.Inputs[1] = tx.Inputs[0]
	if err := tx.CheckShape(); err == nil {
		t.Fatal("duplicate input accepted")
	}
}

func TestTransactionSizeRealistic(t *testing.T) {
	// The paper's workload is ~400-byte Bitcoin transactions; a 2-in/2-out
	// Ed25519 transaction should be in that ballpark.
	scheme, _ := testScheme(t)
	alice := newWallet(t, scheme, 1)
	bob := newWallet(t, scheme, 2)
	tbl := NewTable()
	fund(tbl, alice, 'a', 70)
	op2 := Outpoint{TxID: types.Hash([]byte{'b'}), Index: 0}
	tbl.Credit(op2, Output{Account: alice.Address(), Value: 50})

	inputs, _ := tbl.InputsFor(alice.Address(), 120)
	tx, err := alice.Pay(inputs, []Output{
		{Account: bob.Address(), Value: 90},
		{Account: bob.Address(), Value: 30},
	})
	if err != nil {
		t.Fatal(err)
	}
	size := len(tx.encode(true))
	if size < 200 || size > 600 {
		t.Fatalf("2-in/2-out tx is %d bytes; want roughly 400", size)
	}
}

func TestInputsForSweepsDustFirst(t *testing.T) {
	scheme, _ := testScheme(t)
	alice := newWallet(t, scheme, 1)
	tbl := NewTable()
	for i, v := range []types.Amount{50, 5, 20, 1} {
		op := Outpoint{TxID: types.Hash([]byte{byte(i)}), Index: 0}
		tbl.Credit(op, Output{Account: alice.Address(), Value: v})
	}
	inputs, err := tbl.InputsFor(alice.Address(), 25)
	if err != nil {
		t.Fatal(err)
	}
	// 1 + 5 + 20 = 26 ≥ 25: three smallest first.
	if len(inputs) != 3 {
		t.Fatalf("picked %d inputs, want 3 (dust first)", len(inputs))
	}
	if inputs[0].Value != 1 || inputs[1].Value != 5 || inputs[2].Value != 20 {
		t.Fatalf("inputs not dust-first: %+v", inputs)
	}
}

func TestConservationProperty(t *testing.T) {
	// Applying any chain of valid payments preserves total value.
	scheme, _ := testScheme(t)
	wallets := make([]*Wallet, 4)
	for i := range wallets {
		wallets[i] = newWallet(t, scheme, int64(i+1))
	}
	f := func(seed uint32, steps uint8) bool {
		tbl := NewTable()
		for i, w := range wallets {
			op := Outpoint{TxID: types.Hash([]byte{byte(i), 'g'}), Index: 0}
			tbl.Credit(op, Output{Account: w.Address(), Value: 1000})
		}
		before := tbl.TotalValue()
		s := seed
		for i := 0; i < int(steps%16)+1; i++ {
			s = s*1664525 + 1013904223
			from := wallets[s%4]
			to := wallets[(s>>8)%4]
			amount := types.Amount(s%500) + 1
			inputs, err := tbl.InputsFor(from.Address(), amount)
			if err != nil {
				continue // insufficient funds; fine
			}
			tx, err := from.Pay(inputs, []Output{{Account: to.Address(), Value: amount}})
			if err != nil {
				return false
			}
			if err := tbl.Apply(tx, scheme); err != nil {
				return false
			}
		}
		return tbl.TotalValue() == before
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestTableCloneIndependent(t *testing.T) {
	scheme, _ := testScheme(t)
	alice := newWallet(t, scheme, 1)
	tbl := NewTable()
	op := fund(tbl, alice, 'a', 100)
	cp := tbl.Clone()
	tbl.Consume(op)
	if _, ok := cp.Spendable(op); !ok {
		t.Fatal("clone shares state with original")
	}
	if cp.TotalValue() != 100 {
		t.Fatalf("clone total = %d, want 100", cp.TotalValue())
	}
}

func TestNonceDistinguishesTransactions(t *testing.T) {
	scheme, _ := testScheme(t)
	alice := newWallet(t, scheme, 1)
	bob := newWallet(t, scheme, 2)
	tbl := NewTable()
	fund(tbl, alice, 'a', 100)
	inputs, _ := tbl.InputsFor(alice.Address(), 10)
	tx1, _ := alice.Pay(inputs, []Output{{Account: bob.Address(), Value: 10}})
	tx2, _ := alice.Pay(inputs, []Output{{Account: bob.Address(), Value: 10}})
	if tx1.ID() == tx2.ID() {
		t.Fatal("identical transfers with different nonces share an ID")
	}
}
