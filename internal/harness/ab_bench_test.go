package harness_test

import (
	"testing"
	"time"

	"github.com/zeroloss/zlb/internal/bench"
	"github.com/zeroloss/zlb/internal/harness"
)

// runAB drives the fig3 ZLB n=30 configuration (bench.ZLBFig3Options,
// the same options CI's perf gate runs) with the simulator's execution
// mode as the only variable — the A/B pair behind the EXPERIMENTS.md
// parallel-simnet wall-clock comparison. The reported tx/s and event
// counts must be identical between the two benchmarks (bit-identity is
// pinned by TestParallelSimnetBitIdentical at the repository root);
// only ns/op may differ.
func runAB(b *testing.B, seqSim bool) {
	opts := bench.ZLBFig3Options(30, 2, 42)
	opts.SequentialSim = seqSim
	for i := 0; i < b.N; i++ {
		c, err := harness.New(opts)
		if err != nil {
			b.Fatal(err)
		}
		c.Start()
		c.RunUntilQuiet(30 * time.Minute)
		if c.Exhausted() {
			b.Fatal("run exhausted its event budget")
		}
		if i == 0 {
			b.ReportMetric(c.Throughput(), "tx/s")
			b.ReportMetric(float64(c.Net.Delivered), "events")
		}
	}
}

func BenchmarkSimSeq30(b *testing.B) { runAB(b, true) }
func BenchmarkSimPar30(b *testing.B) { runAB(b, false) }
