// Package harness assembles full ZLB clusters on the discrete-event
// simulator: committee + pool PKI, ASMR replicas (honest, deceitful,
// benign), the coalition attack wiring, partition-aware latency, and the
// metrics every experiment of §5 reads out (throughput, disagreements,
// detection/exclusion/inclusion/catch-up times).
package harness

import (
	"encoding/binary"
	"fmt"
	"path/filepath"
	"sync"
	"time"

	"github.com/zeroloss/zlb/internal/adversary"
	"github.com/zeroloss/zlb/internal/asmr"
	"github.com/zeroloss/zlb/internal/bm"
	"github.com/zeroloss/zlb/internal/crypto"
	"github.com/zeroloss/zlb/internal/latency"
	"github.com/zeroloss/zlb/internal/membership"
	"github.com/zeroloss/zlb/internal/obs"
	"github.com/zeroloss/zlb/internal/pipeline"
	"github.com/zeroloss/zlb/internal/rbc"
	"github.com/zeroloss/zlb/internal/sbc"
	"github.com/zeroloss/zlb/internal/simnet"
	"github.com/zeroloss/zlb/internal/store"
	"github.com/zeroloss/zlb/internal/types"
)

// Options configures a simulated cluster.
type Options struct {
	// N is the committee size.
	N int
	// Deceitful is d, the coalition size (first d members by ID).
	Deceitful int
	// Benign is q: crashed committee members (the last q honest IDs).
	Benign int
	// Branches is the number of honest partitions the attack sustains;
	// 0 = MaxBranches.
	Branches int
	// Attack selects the coalition strategy; zero value = AttackNone.
	Attack adversary.Attack
	// BaseLatency models the underlying network; nil = AWS matrix.
	BaseLatency latency.Model
	// PartitionDelay is the extra delay injected between honest partitions
	// during attacks; nil = none.
	PartitionDelay latency.Model
	// Cost is the CPU model; zero value charges nothing. DefaultCostModel
	// reproduces the paper's c4.xlarge behaviour.
	Cost simnet.CostModel
	// Seed drives all randomness.
	Seed int64
	// Accountable / Recover select the system: ZLB (true,true),
	// Polygraph baseline (true,false), Red Belly baseline (false,false).
	Accountable bool
	Recover     bool
	// DeceitfulBound is δ̂ for the confirmation threshold; 0 = 5/9.
	DeceitfulBound float64
	// MaxInstances bounds the chain length; 0 = 16.
	MaxInstances uint64
	// BatchTxs / BatchBytes model each proposal's batch (claimed sizes).
	BatchTxs   int
	BatchBytes int
	// PoolSize is the number of standby candidates; 0 = N (all honest).
	PoolSize int
	// AttackAfter makes the coalition behave honestly on instances below
	// this index (0 = attack from instance 1).
	AttackAfter uint64
	// WaitForWork defers instance starts until batches are non-empty
	// (used by the payment application).
	WaitForWork bool
	// AggregateCerts assembles consensus certificates in aggregate form
	// (one aggregate signature plus a signer bitmap) instead of quorums
	// of signed statements; see asmr.Config.AggregateCerts. The cluster
	// PKI is the sim scheme, which implements crypto.Aggregator, so the
	// flag takes effect in every harness run. Off by default: the
	// signed-statement cost model and every golden stay bit-identical.
	AggregateCerts bool
	// CoordTimeout overrides the binary consensus coordinator timeout.
	CoordTimeout func(types.Round) time.Duration
	// DataDir, when set, gives every replica a durable block store
	// (internal/store) at <DataDir>/r<id>: commits and merges write
	// through as digest-only records, and RestartFromDisk can
	// crash-restart a replica from its persisted chain. Empty keeps the
	// cluster fully in-memory.
	DataDir string
	// Sequential forces the commit pipeline off: every signature and
	// certificate verifies inline on the event loop, with no worker pool,
	// no speculation and no shared verdicts. All virtual-time metrics and
	// chain digests are bit-identical either way (the determinism tests
	// pin this); the knob exists for those tests and for debugging.
	Sequential bool
	// SequentialSim forces the simulator's classic one-event-at-a-time
	// loop instead of conservative parallel windows (simnet.Config.
	// SequentialSim). Orthogonal to Sequential: one gates the commit
	// pipeline, the other gates event dispatch. Bit-identical either way.
	SequentialSim bool
	// Tracer, when non-nil, records every replica's consensus lifecycle
	// into per-node buffers with virtual timestamps (internal/obs). The
	// merged stream is bit-identical across Sequential/SequentialSim
	// modes. Nil disables tracing at zero cost.
	Tracer *obs.Tracer
}

// Commit records one replica's commit of one instance.
type Commit struct {
	K        uint64
	Attempt  uint32
	Decision *sbc.Decision
	At       time.Duration
}

// Cluster is a fully wired simulated deployment.
type Cluster struct {
	Opts      Options
	Net       *simnet.Network
	Members   []types.ReplicaID
	PoolIDs   []types.ReplicaID
	Coalition *adversary.Coalition
	Replicas  map[types.ReplicaID]*asmr.Replica
	Signers   map[types.ReplicaID]*crypto.Signer
	// Adversaries holds each deceitful replica's live attack wiring, so
	// application layers that rebind BatchSource can re-bind attack
	// payloads too.
	Adversaries map[types.ReplicaID]*sbc.Adversary

	// Commits[id][k] is the decision replica id committed for instance k.
	Commits map[types.ReplicaID]map[uint64]*Commit
	// Finals[id][k] marks confirmation finality.
	Finals map[types.ReplicaID]map[uint64]time.Duration
	// ChangeResults collects completed membership changes per replica.
	ChangeResults map[types.ReplicaID][]*membership.Result
	// JoinVerified records when an included pool node finished verifying
	// its catch-up (for the Fig. 5 catch-up series).
	JoinVerified map[types.ReplicaID]time.Duration
	// Stores holds each replica's durable block store when Options.DataDir
	// is set (nil entries otherwise).
	Stores map[types.ReplicaID]*store.Store
	// Certs is the cluster's shared pipeline verifier: one certificate
	// verdict cache for all replicas, fanning signature checks out over
	// the process-wide worker pool (nil when Options.Sequential).
	Certs *pipeline.Verifier
	// Intern is the cluster-wide RBC payload intern table: one canonical
	// byte slice per proposal digest instead of one copy per replica.
	Intern *rbc.Intern
	// mu guards the callback-written cluster maps that are not strictly
	// per-replica (ChangeResults, JoinVerified, the lazy outer map of
	// slotOutcomes, storeErr): with the parallel simulator, callbacks of
	// different replicas run concurrently inside a window. Values are
	// still deterministic — per-replica entries are disjoint — the lock
	// only serializes map internals.
	mu sync.Mutex
	// storeErr records the first persistence failure; Run-level callers
	// surface it through StoreErr.
	storeErr error
	// TxCommitted accumulates claimed transactions committed (first honest
	// replica's view).
	TxCommitted int
	// slotOutcomes[id][k][slot] is the first per-slot binary decision at
	// replica id: the granularity Fig. 4 counts disagreements at.
	slotOutcomes map[types.ReplicaID]map[uint64]map[types.ReplicaID]slotOutcome
	// metricsExcluded removes replicas from HonestMembers and every
	// metric derived from it. The scenario engine marks replicas it
	// crashes or sleeps: a slept replica misses dropped messages and may
	// lag with stale slot outcomes, and the paper likewise excludes its q
	// benign replicas from the honest readings.
	metricsExcluded map[types.ReplicaID]bool
}

// New builds the cluster. Replica IDs 1..N are the committee; IDs
// N+1..N+PoolSize are standby candidates.
func New(opts Options) (*Cluster, error) {
	if opts.N <= 0 {
		return nil, fmt.Errorf("harness: N must be positive, got %d", opts.N)
	}
	if opts.MaxInstances == 0 {
		opts.MaxInstances = 16
	}
	poolSize := opts.PoolSize
	if poolSize == 0 {
		poolSize = opts.N
	}
	total := opts.N + poolSize
	signers, _, err := crypto.GenerateCluster(crypto.SchemeSim, total, opts.Seed)
	if err != nil {
		return nil, fmt.Errorf("harness: %w", err)
	}

	members := make([]types.ReplicaID, opts.N)
	for i := range members {
		members[i] = types.ReplicaID(i + 1)
	}
	pool := make([]types.ReplicaID, poolSize)
	for i := range pool {
		pool[i] = types.ReplicaID(opts.N + i + 1)
	}

	attack := opts.Attack
	if attack == 0 {
		attack = adversary.AttackNone
	}
	branches := opts.Branches
	if branches == 0 {
		branches = adversary.MaxBranches(opts.N, opts.Deceitful)
	}
	coalition := adversary.NewCoalition(attack, members, opts.Deceitful, branches)

	base := opts.BaseLatency
	if base == nil {
		base = latency.NewAWSMatrix()
	}
	var model latency.Model = base
	if opts.PartitionDelay != nil {
		model = &latency.PartitionOverlay{
			Base:        base,
			Extra:       opts.PartitionDelay,
			PartitionOf: coalition.PartitionOf,
		}
	}

	c := &Cluster{
		Opts:          opts,
		Members:       members,
		PoolIDs:       pool,
		Coalition:     coalition,
		Replicas:      make(map[types.ReplicaID]*asmr.Replica, total),
		Signers:       make(map[types.ReplicaID]*crypto.Signer, total),
		Adversaries:   make(map[types.ReplicaID]*sbc.Adversary),
		Commits:       make(map[types.ReplicaID]map[uint64]*Commit),
		Finals:        make(map[types.ReplicaID]map[uint64]time.Duration),
		ChangeResults: make(map[types.ReplicaID][]*membership.Result),
		JoinVerified:  make(map[types.ReplicaID]time.Duration),
		Stores:        make(map[types.ReplicaID]*store.Store),
		slotOutcomes:  make(map[types.ReplicaID]map[uint64]map[types.ReplicaID]slotOutcome),
	}
	c.Net = simnet.New(simnet.Config{Latency: model, Cost: opts.Cost, Seed: opts.Seed, SequentialSim: opts.SequentialSim})
	if !opts.Sequential {
		c.Certs = pipeline.NewVerifier(pipeline.Shared())
	}
	c.Intern = rbc.NewIntern()

	all := append(append([]types.ReplicaID{}, members...), pool...)
	for i, id := range all {
		id := id
		signer := signers[i]
		c.Signers[id] = signer
		c.Commits[id] = make(map[uint64]*Commit)
		c.Finals[id] = make(map[uint64]time.Duration)
		// Pre-size the per-replica outcome maps so callbacks only ever
		// write per-replica inner maps (no lazy outer-map writes from
		// concurrently executing window batches).
		c.slotOutcomes[id] = make(map[uint64]map[types.ReplicaID]slotOutcome)
		if opts.DataDir != "" {
			st, err := store.Open(c.storeDir(id), store.Options{})
			if err != nil {
				return nil, fmt.Errorf("harness: %w", err)
			}
			c.Stores[id] = st
		}
		c.Net.AddNode(id, func(env simnet.Env) simnet.Handler {
			return c.buildReplica(id, signer, env)
		})
	}

	// Benign replicas crash: the last q honest committee members.
	for i := 0; i < opts.Benign && i < opts.N-opts.Deceitful; i++ {
		id := members[opts.N-1-i]
		c.Net.SetUp(id, false)
	}
	return c, nil
}

func (c *Cluster) buildReplica(id types.ReplicaID, signer *crypto.Signer, env simnet.Env) *asmr.Replica {
	adv := c.Coalition.SBCAdversary(id)
	if adv != nil {
		c.Adversaries[id] = adv
	}
	cfg := asmr.Config{
		Self:               id,
		Signer:             signer,
		Env:                env,
		InitialCommittee:   c.Members,
		PoolCandidates:     c.PoolIDs,
		Accountable:        c.Opts.Accountable,
		Recover:            c.Opts.Recover,
		DeceitfulBound:     c.Opts.DeceitfulBound,
		CoordTimeout:       c.Opts.CoordTimeout,
		MaxInstances:       c.Opts.MaxInstances,
		Adversary:          adv,
		AttackFromInstance: c.Opts.AttackAfter,
		WaitForWork:        c.Opts.WaitForWork,
		Deceitful:          c.Coalition.IsDeceitful(id),
		AggregateCerts:     c.Opts.AggregateCerts,
		Certs:              c.Certs,
		Intern:             c.Intern,
		Tracer:             c.Opts.Tracer.Node(id),
		BatchSource: func(k uint64) asmr.Batch {
			return c.batchFor(id, adv, k)
		},
		OnCommit: func(k uint64, attempt uint32, d *sbc.Decision) {
			c.Commits[id][k] = &Commit{K: k, Attempt: attempt, Decision: d, At: env.Now()}
			if st := c.Stores[id]; st != nil {
				// Digest-only persistence: the synthetic workload has no
				// transaction bodies, and the chain digest is what the
				// crash-recovery scenario verifies.
				if err := st.AppendBlock(&bm.Block{K: k, Digest: d.Digest()}, attempt); err != nil {
					c.recordStoreErr(err)
				}
			}
		},
		OnDisagreement: func(k uint64, _, remote *sbc.Decision) {
			if st := c.Stores[id]; st != nil {
				if err := st.AppendMerge(&bm.Block{K: k, Digest: remote.Digest()}, uint32(0)); err != nil {
					c.recordStoreErr(err)
				}
			}
		},
		OnSlotDecide: func(k uint64, _ uint32, slot types.ReplicaID, value bool, digest types.Digest) {
			byK := c.slotOutcomes[id]
			bySlot, ok := byK[k]
			if !ok {
				bySlot = make(map[types.ReplicaID]slotOutcome)
				byK[k] = bySlot
			}
			if _, dup := bySlot[slot]; !dup {
				bySlot[slot] = slotOutcome{bit: value, digest: digest}
			}
		},
		OnFinal: func(k uint64, _ types.Digest) {
			c.Finals[id][k] = env.Now()
		},
		OnMembershipChange: func(res *membership.Result) {
			c.mu.Lock()
			c.ChangeResults[id] = append(c.ChangeResults[id], res)
			c.mu.Unlock()
		},
		OnJoined: func(uint64, []types.ReplicaID) {
			c.mu.Lock()
			c.JoinVerified[id] = env.Now()
			c.mu.Unlock()
		},
	}
	r := asmr.NewReplica(cfg)
	c.Replicas[id] = r
	return r
}

// batchFor builds the synthetic batch for (replica, instance) and binds
// the attack payload when the replica is deceitful.
func (c *Cluster) batchFor(id types.ReplicaID, adv *sbc.Adversary, k uint64) asmr.Batch {
	payload := make([]byte, 32)
	binary.BigEndian.PutUint32(payload[0:], uint32(id))
	binary.BigEndian.PutUint64(payload[4:], k)
	copy(payload[12:], "batch-payload-tag")
	if adv != nil && c.Coalition.Attack == adversary.AttackRBCast {
		c.Coalition.BindRBCastPayload(id, adv, payload)
	}
	return asmr.Batch{
		Payload:      payload,
		ClaimedBytes: c.Opts.BatchBytes,
		ClaimedSigs:  c.Opts.BatchTxs,
	}
}

// Start launches every committee member.
func (c *Cluster) Start() {
	for _, id := range c.Members {
		c.Replicas[id].Start()
	}
}

// storeDir is the per-replica data directory under Options.DataDir.
func (c *Cluster) storeDir(id types.ReplicaID) string {
	return filepath.Join(c.Opts.DataDir, fmt.Sprintf("r%d", id))
}

// recordStoreErr remembers the first persistence failure (callbacks of
// different replicas may race inside a parallel window).
func (c *Cluster) recordStoreErr(err error) {
	c.mu.Lock()
	if c.storeErr == nil {
		c.storeErr = err
	}
	c.mu.Unlock()
}

// StoreErr returns the first persistence failure, if any.
func (c *Cluster) StoreErr() error { return c.storeErr }

// Exhausted reports whether the simulator stopped on its MaxEvents budget
// — a truncated run whose metrics must not be reported as results.
func (c *Cluster) Exhausted() bool { return c.Net.Exhausted }

// CloseStores flushes and closes every replica store.
func (c *Cluster) CloseStores() error {
	var first error
	for _, id := range c.Net.NodeIDs() {
		if st := c.Stores[id]; st != nil {
			if err := st.Close(); err != nil && first == nil {
				first = err
			}
		}
	}
	return first
}

// CrashToDisk crashes a replica: it drops off the network and its store
// is closed, exactly the state a killed process leaves behind. Pair with
// RestartFromDisk.
func (c *Cluster) CrashToDisk(id types.ReplicaID) error {
	c.Net.SetUp(id, false)
	st := c.Stores[id]
	if st == nil {
		return fmt.Errorf("harness: replica %v has no store (set Options.DataDir)", id)
	}
	return st.Close()
}

// RestartFromDisk restarts a crashed replica as a fresh process: the old
// in-memory protocol state is discarded (simnet.ReplaceHandler), the
// persisted chain is recovered from its data directory, and the new
// incarnation rejoins the network, resumes at its next instance, and
// requests certificate-verified catch-up for everything decided while it
// was down.
func (c *Cluster) RestartFromDisk(id types.ReplicaID) error {
	if c.Stores[id] == nil {
		return fmt.Errorf("harness: replica %v has no store (set Options.DataDir)", id)
	}
	st, err := store.Open(c.storeDir(id), store.Options{})
	if err != nil {
		return fmt.Errorf("harness: reopening store of %v: %w", id, err)
	}
	c.Stores[id] = st
	signer := c.Signers[id]
	c.Net.ReplaceHandler(id, func(env simnet.Env) simnet.Handler {
		return c.buildReplica(id, signer, env)
	})
	r := c.Replicas[id] // buildReplica re-registered the fresh replica
	restored := make([]asmr.RestoredBlock, 0)
	for _, rec := range st.BlockRecords() {
		restored = append(restored, asmr.RestoredBlock{K: rec.K, Attempt: rec.Attempt, Digest: rec.Digest})
	}
	r.Restore(restored)
	c.Net.SetUp(id, true)
	r.Start()
	r.RequestCatchup()
	return nil
}

// ChainAgreement compares a replica's decided chain digests to the first
// honest replica's: have is how many of the honest chain's instances the
// replica decided with the identical digest, want is the honest chain
// length, and match reports full agreement. The crash-recovery scenario
// pins this for the restarted replica.
func (c *Cluster) ChainAgreement(id types.ReplicaID) (match bool, have, want int) {
	honest := c.HonestMembers()
	if len(honest) == 0 {
		return false, 0, 0
	}
	ref := c.Replicas[honest[0]].ChainDigests()
	got := c.Replicas[id].ChainDigests()
	for k, d := range ref {
		if got[k] == d {
			have++
		}
	}
	want = len(ref)
	return have == want, have, want
}

// Run processes events until the virtual deadline.
func (c *Cluster) Run(until time.Duration) { c.Net.Run(until) }

// RunUntilQuiet drains the event queue up to maxTime.
func (c *Cluster) RunUntilQuiet(maxTime time.Duration) { c.Net.RunUntilQuiet(maxTime) }

// HonestMembers returns the non-deceitful, non-benign committee members.
func (c *Cluster) HonestMembers() []types.ReplicaID {
	out := make([]types.ReplicaID, 0, len(c.Members))
	benign := make(map[types.ReplicaID]bool)
	for i := 0; i < c.Opts.Benign && i < c.Opts.N-c.Opts.Deceitful; i++ {
		benign[c.Members[c.Opts.N-1-i]] = true
	}
	for _, id := range c.Members {
		if !c.Coalition.IsDeceitful(id) && !benign[id] && !c.metricsExcluded[id] {
			out = append(out, id)
		}
	}
	return out
}

// ExcludeFromMetrics removes replicas from the honest metric readings
// permanently (a replica that slept through instances may lag for the
// rest of the run, so it is not reinstated on wake).
func (c *Cluster) ExcludeFromMetrics(ids ...types.ReplicaID) {
	if c.metricsExcluded == nil {
		c.metricsExcluded = make(map[types.ReplicaID]bool)
	}
	for _, id := range ids {
		c.metricsExcluded[id] = true
	}
}

// slotOutcome is one honest replica's decided outcome for a slot.
type slotOutcome struct {
	bit    bool
	digest types.Digest
}

// Disagreements counts, across all instances and proposer slots, how many
// extra distinct outcomes honest replicas decided — the paper's
// "disagreeing decisions / proposals" metric of Fig. 4: 0 means total
// agreement; a slot decided two different ways contributes 1. Outcomes
// are counted at the per-slot binary-decision granularity: a slot's
// decision is final the moment its binary consensus decides, even if the
// recovery stops the enclosing instance before the full superblock
// commits.
func (c *Cluster) Disagreements() int {
	total := 0
	for _, d := range c.disagreementsByInstance() {
		total += d
	}
	return total
}

func (c *Cluster) disagreementsByInstance() map[uint64]int {
	honest := c.HonestMembers()
	ks := make(map[uint64]bool)
	for _, id := range honest {
		for k := range c.slotOutcomes[id] {
			ks[k] = true
		}
	}
	out := make(map[uint64]int)
	for k := range ks {
		perSlot := make(map[types.ReplicaID]map[slotOutcome]bool)
		for _, id := range honest {
			for slot, oc := range c.slotOutcomes[id][k] {
				// 1-decisions whose payload had not arrived yet are
				// indistinguishable placeholders; skip them rather than
				// fabricate disagreements.
				if oc.bit && oc.digest.IsZero() {
					continue
				}
				m, ok := perSlot[slot]
				if !ok {
					m = make(map[slotOutcome]bool)
					perSlot[slot] = m
				}
				m[oc] = true
			}
		}
		for _, outcomes := range perSlot {
			if len(outcomes) > 1 {
				out[k] += len(outcomes) - 1
			}
		}
	}
	return out
}

// DisagreementsByInstance returns, per instance, how many extra distinct
// slot outcomes honest replicas decided (0 omitted).
func (c *Cluster) DisagreementsByInstance() map[uint64]int {
	out := make(map[uint64]int)
	for k, d := range c.disagreementsByInstance() {
		if d > 0 {
			out[k] = d
		}
	}
	return out
}

// AgreedInstances counts instances where every honest replica that
// committed agreed on the digest.
func (c *Cluster) AgreedInstances() int {
	honest := c.HonestMembers()
	ks := make(map[uint64]bool)
	for _, id := range honest {
		for k := range c.Commits[id] {
			ks[k] = true
		}
	}
	agreed := 0
	for k := range ks {
		var ref types.Digest
		ok := true
		first := true
		for _, id := range honest {
			commit, have := c.Commits[id][k]
			if !have {
				continue
			}
			d := commit.Decision.Digest()
			if first {
				ref = d
				first = false
			} else if d != ref {
				ok = false
				break
			}
		}
		if ok && !first {
			agreed++
		}
	}
	return agreed
}

// DetectionTime returns the earliest honest replica's time to hold PoFs on
// fd = ⌈n/3⌉ distinct replicas (the paper's "time to detect", Fig. 5
// left); ok is false if never reached.
func (c *Cluster) DetectionTime() (time.Duration, bool) {
	best := time.Duration(0)
	found := false
	for _, id := range c.HonestMembers() {
		r := c.Replicas[id]
		if r.ThresholdAt > 0 {
			if !found || r.ThresholdAt < best {
				best = r.ThresholdAt
				found = true
			}
		}
	}
	return best, found
}

// ExclusionTime and InclusionTime return the first honest replica's
// membership-change phase durations (Fig. 5 center).
func (c *Cluster) ExclusionTime() (time.Duration, bool) {
	for _, id := range c.HonestMembers() {
		for _, res := range c.ChangeResults[id] {
			return res.ExcludedAt - res.StartedAt, true
		}
	}
	return 0, false
}

// InclusionTime returns the duration of the first inclusion consensus.
func (c *Cluster) InclusionTime() (time.Duration, bool) {
	for _, id := range c.HonestMembers() {
		for _, res := range c.ChangeResults[id] {
			return res.IncludedAt - res.ExcludedAt, true
		}
	}
	return 0, false
}

// Throughput returns committed claimed-transactions per virtual second,
// measured at the first honest replica over its committed instances.
func (c *Cluster) Throughput() float64 {
	honest := c.HonestMembers()
	if len(honest) == 0 {
		return 0
	}
	id := honest[0]
	var txs int
	var last time.Duration
	for _, commit := range c.Commits[id] {
		txs += commit.Decision.TotalClaimedTx()
		if commit.At > last {
			last = commit.At
		}
	}
	if last == 0 {
		return 0
	}
	return float64(txs) / last.Seconds()
}

// CommittedInstances returns how many instances the first honest replica
// committed.
func (c *Cluster) CommittedInstances() int {
	honest := c.HonestMembers()
	if len(honest) == 0 {
		return 0
	}
	return len(c.Commits[honest[0]])
}

// ConvergedAgreement reports whether, after recovery, the final committee
// of every honest replica matches and its deceitful fraction is below
// 1/3 — the convergence property of Def. 3.
func (c *Cluster) ConvergedAgreement() bool {
	honest := c.HonestMembers()
	if len(honest) == 0 {
		return false
	}
	ref := c.Replicas[honest[0]].View().Members()
	for _, id := range honest[1:] {
		got := c.Replicas[id].View().Members()
		if len(got) != len(ref) {
			return false
		}
		for i := range got {
			if got[i] != ref[i] {
				return false
			}
		}
	}
	deceitful := 0
	for _, id := range ref {
		if c.Coalition.IsDeceitful(id) {
			deceitful++
		}
	}
	return deceitful < types.FaultThreshold(len(ref))
}

// Snapshot is a cumulative point-in-time reading of every metric the
// scenario engine diffs across fault phases (internal/scenario). All
// counters are totals since the start of the run; per-phase values are
// obtained by subtracting two snapshots.
type Snapshot struct {
	// At is the virtual clock when the snapshot was taken.
	At time.Duration
	// Committed is the instance count at the first honest replica.
	Committed int
	// Txs is the claimed transactions committed at the first honest
	// replica.
	Txs int
	// Disagreements is the Fig. 4 disagreement count so far.
	Disagreements int
	// Culprits is how many replicas the first honest replica has ever
	// proven deceitful. The count is monotone: proofs consumed by a
	// completed membership change (Log.Forget) still count, so the metric
	// reads as "culprits detected so far" rather than "PoFs currently
	// held".
	Culprits int
	// Detected reports the fd = ⌈n/3⌉ detection threshold (Fig. 5 left);
	// DetectedAt is the earliest honest replica's absolute detection time.
	Detected   bool
	DetectedAt time.Duration
	// Excluded / Included report membership-change progress at the first
	// honest replica that completed a change, with absolute times.
	Excluded   bool
	ExcludedAt time.Duration
	Included   bool
	IncludedAt time.Duration
	// Delivered / Dropped / BytesSent mirror the simulator counters.
	Delivered int
	Dropped   int
	BytesSent int64
}

// Snapshot reads the current cumulative metrics.
func (c *Cluster) Snapshot() Snapshot {
	s := Snapshot{
		At:            c.Net.Now(),
		Disagreements: c.Disagreements(),
		Delivered:     c.Net.Delivered,
		Dropped:       c.Net.Dropped,
		BytesSent:     c.Net.BytesSent,
	}
	honest := c.HonestMembers()
	if len(honest) > 0 {
		first := honest[0]
		s.Committed = len(c.Commits[first])
		for _, commit := range c.Commits[first] {
			s.Txs += commit.Decision.TotalClaimedTx()
		}
		s.Culprits = c.Replicas[first].Log().ProvenCount()
	}
	if at, ok := c.DetectionTime(); ok {
		s.Detected = true
		s.DetectedAt = at
	}
	for _, id := range honest {
		for _, res := range c.ChangeResults[id] {
			if !s.Excluded || res.ExcludedAt < s.ExcludedAt {
				s.Excluded = true
				s.ExcludedAt = res.ExcludedAt
			}
			if !s.Included || res.IncludedAt < s.IncludedAt {
				s.Included = true
				s.IncludedAt = res.IncludedAt
			}
		}
	}
	return s
}

// CulpritsDetected returns every culprit the first honest replica has
// ever proven deceitful, including those whose proofs a completed
// membership change already consumed.
func (c *Cluster) CulpritsDetected() []types.ReplicaID {
	honest := c.HonestMembers()
	if len(honest) == 0 {
		return nil
	}
	return c.Replicas[honest[0]].Log().ProvenCulprits()
}
