package harness

import (
	"reflect"
	"testing"
	"time"

	"github.com/zeroloss/zlb/internal/adversary"
	"github.com/zeroloss/zlb/internal/latency"
	"github.com/zeroloss/zlb/internal/types"
)

// aggregateRunResult captures everything the aggregate-certificate form
// must preserve: the semantic decisions (bits + proposal digests, not
// certificate bytes), the membership-change outcome and the proven
// culprit set. Virtual times are deliberately absent — the aggregate
// form changes the simulator's bandwidth/CPU cost model, so timings
// shift by design.
type aggregateRunResult struct {
	decisions map[uint64]string
	excluded  []types.ReplicaID
	included  []types.ReplicaID
	culprits  []types.ReplicaID
}

func runAggregateCampaign(t *testing.T, aggregate bool) aggregateRunResult {
	t.Helper()
	n := 9
	c, err := New(Options{
		N:              n,
		Deceitful:      4,
		Attack:         adversary.AttackBinary,
		Accountable:    true,
		Recover:        true,
		AggregateCerts: aggregate,
		MaxInstances:   6,
		BaseLatency:    latency.Uniform(2*time.Millisecond, 10*time.Millisecond),
		PartitionDelay: latency.UniformMean(3 * time.Second),
		CoordTimeout:   fastCoordTimeout,
		Seed:           3,
	})
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	c.RunUntilQuiet(30 * time.Minute)

	honest := c.HonestMembers()
	if len(honest) == 0 {
		t.Fatal("no honest members")
	}
	res := aggregateRunResult{decisions: map[uint64]string{}}
	for k, commit := range c.Commits[honest[0]] {
		res.decisions[k] = commit.Decision.Digest().Hex()
	}
	if len(c.ChangeResults[honest[0]]) == 0 {
		t.Fatal("no membership change completed")
	}
	change := c.ChangeResults[honest[0]][0]
	res.excluded = append([]types.ReplicaID(nil), change.Excluded...)
	res.included = append([]types.ReplicaID(nil), change.Included...)
	types.SortReplicas(res.excluded)
	types.SortReplicas(res.included)
	res.culprits = c.CulpritsDetected()
	types.SortReplicas(res.culprits)
	for _, id := range res.culprits {
		if !c.Coalition.IsDeceitful(id) {
			t.Fatalf("honest replica %v proven deceitful (aggregate=%v): accountability unsound", id, aggregate)
		}
	}
	return res
}

// TestAggregateCertsEquivalence pins the redesign's core guarantee: a
// full adversarial campaign — attack, disagreement, PoF extraction,
// exclusion, recovery — reaches the identical decisions, excludes the
// identical replicas and proves the identical culprits whether
// certificates travel as signed-statement quorums or as aggregate
// signature + bitmap. Only the cost model (and hence virtual timing) may
// differ between the modes.
func TestAggregateCertsEquivalence(t *testing.T) {
	signed := runAggregateCampaign(t, false)
	agg := runAggregateCampaign(t, true)

	if !reflect.DeepEqual(signed.culprits, agg.culprits) {
		t.Errorf("proven culprits diverge: signed %v, aggregate %v", signed.culprits, agg.culprits)
	}
	if !reflect.DeepEqual(signed.excluded, agg.excluded) {
		t.Errorf("excluded sets diverge: signed %v, aggregate %v", signed.excluded, agg.excluded)
	}
	if !reflect.DeepEqual(signed.included, agg.included) {
		t.Errorf("included sets diverge: signed %v, aggregate %v", signed.included, agg.included)
	}
	if len(signed.decisions) != len(agg.decisions) {
		t.Fatalf("decision counts diverge: signed %d, aggregate %d", len(signed.decisions), len(agg.decisions))
	}
	for k, d := range signed.decisions {
		if agg.decisions[k] != d {
			t.Errorf("instance %d decisions diverge", k)
		}
	}
}

// TestAggregateCertsHappyPath: aggregate mode on a clean run — every
// instance decides, all replicas agree, no spurious accountability.
func TestAggregateCertsHappyPath(t *testing.T) {
	c, err := New(Options{
		N:              7,
		Accountable:    true,
		Recover:        true,
		AggregateCerts: true,
		MaxInstances:   4,
		BaseLatency:    latency.Uniform(2*time.Millisecond, 20*time.Millisecond),
		CoordTimeout:   fastCoordTimeout,
		Seed:           11,
	})
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	c.RunUntilQuiet(10 * time.Minute)
	if got := len(c.Commits[c.Members[0]]); got != 4 {
		t.Fatalf("committed %d instances, want 4", got)
	}
	if got := c.CulpritsDetected(); len(got) != 0 {
		t.Fatalf("clean run proved culprits %v", got)
	}
	for k := range c.Commits[c.Members[0]] {
		want := c.Commits[c.Members[0]][k].Decision.Digest()
		for _, id := range c.Members[1:] {
			commit, ok := c.Commits[id][k]
			if !ok {
				t.Fatalf("replica %v missing instance %d", id, k)
			}
			if commit.Decision.Digest() != want {
				t.Fatalf("replica %v disagrees at instance %d", id, k)
			}
		}
	}
}
