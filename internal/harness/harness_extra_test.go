package harness

import (
	"testing"
	"time"

	"github.com/zeroloss/zlb/internal/adversary"
	"github.com/zeroloss/zlb/internal/latency"
)

// TestAttackAfterBuildsCleanPrefix checks the AttackAfter option: the
// first instances run honestly (agreement), the attack begins at the
// configured index.
func TestAttackAfterBuildsCleanPrefix(t *testing.T) {
	c, err := New(Options{
		N:              9,
		Deceitful:      4,
		Attack:         adversary.AttackBinary,
		AttackAfter:    3, // instances 1-2 clean, attack from 3
		Accountable:    true,
		Recover:        true,
		MaxInstances:   4,
		BaseLatency:    latency.Uniform(2*time.Millisecond, 10*time.Millisecond),
		PartitionDelay: latency.UniformMean(3 * time.Second),
		CoordTimeout:   fastCoordTimeout,
		Seed:           8,
	})
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	c.RunUntilQuiet(30 * time.Minute)
	byInst := c.DisagreementsByInstance()
	for k := uint64(1); k < 3; k++ {
		if byInst[k] != 0 {
			t.Fatalf("instance %d disagreed before AttackAfter", k)
		}
	}
	total := 0
	for _, d := range byInst {
		total += d
	}
	if total == 0 {
		t.Fatal("attack after the prefix produced no disagreement")
	}
}

// TestPartitionDelayWithoutAttackStillAgrees separates the network
// condition from the attack: honest replicas under partition delays are
// slow but safe.
func TestPartitionDelayWithoutAttackStillAgrees(t *testing.T) {
	c, err := New(Options{
		N:              9,
		Deceitful:      4, // coalition exists but runs AttackNone
		Attack:         adversary.AttackNone,
		Accountable:    true,
		Recover:        true,
		MaxInstances:   2,
		BaseLatency:    latency.Uniform(2*time.Millisecond, 10*time.Millisecond),
		PartitionDelay: latency.UniformMean(time.Second),
		CoordTimeout:   fastCoordTimeout,
		Seed:           9,
	})
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	c.RunUntilQuiet(30 * time.Minute)
	if got := c.Disagreements(); got != 0 {
		t.Fatalf("honest run disagreed %d times", got)
	}
	if got := c.AgreedInstances(); got != 2 {
		t.Fatalf("agreed on %d instances, want 2", got)
	}
	if _, detected := c.DetectionTime(); detected {
		t.Fatal("fraud detected in an honest run")
	}
}

// TestThroughputAccounting sanity-checks the Fig. 3 counters.
func TestThroughputAccounting(t *testing.T) {
	c, err := New(Options{
		N:            7,
		Accountable:  true,
		MaxInstances: 2,
		BatchTxs:     100,
		BatchBytes:   40_000,
		BaseLatency:  latency.Uniform(2*time.Millisecond, 10*time.Millisecond),
		CoordTimeout: fastCoordTimeout,
		Seed:         10,
	})
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	c.RunUntilQuiet(10 * time.Minute)
	if tps := c.Throughput(); tps <= 0 {
		t.Fatalf("throughput = %v", tps)
	}
	if got := c.CommittedInstances(); got != 2 {
		t.Fatalf("committed %d instances", got)
	}
}

// TestDeterministicRuns: two clusters with identical options commit
// identical decisions — the property every experiment in EXPERIMENTS.md
// relies on.
func TestDeterministicRuns(t *testing.T) {
	run := func() map[uint64]string {
		c, err := New(Options{
			N:            7,
			Accountable:  true,
			Recover:      true,
			MaxInstances: 3,
			BaseLatency:  latency.Uniform(2*time.Millisecond, 20*time.Millisecond),
			CoordTimeout: fastCoordTimeout,
			Seed:         1234,
		})
		if err != nil {
			t.Fatal(err)
		}
		c.Start()
		c.RunUntilQuiet(10 * time.Minute)
		out := map[uint64]string{}
		for k, commit := range c.Commits[c.Members[0]] {
			out[k] = commit.Decision.Digest().Hex()
		}
		return out
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("different commit counts: %d vs %d", len(a), len(b))
	}
	for k, d := range a {
		if b[k] != d {
			t.Fatalf("instance %d digests differ across identical runs", k)
		}
	}
}

func TestHonestMembersExcludesBenign(t *testing.T) {
	c, err := New(Options{
		N:         9,
		Deceitful: 3,
		Benign:    2,
		Seed:      2,
	})
	if err != nil {
		t.Fatal(err)
	}
	honest := c.HonestMembers()
	if len(honest) != 4 { // 9 − 3 deceitful − 2 benign
		t.Fatalf("honest = %v", honest)
	}
	for _, id := range honest {
		if c.Coalition.IsDeceitful(id) {
			t.Fatalf("deceitful %v in honest set", id)
		}
	}
}
