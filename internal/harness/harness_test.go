package harness

import (
	"testing"
	"time"

	"github.com/zeroloss/zlb/internal/adversary"
	"github.com/zeroloss/zlb/internal/latency"
	"github.com/zeroloss/zlb/internal/types"
)

func fastCoordTimeout(r types.Round) time.Duration {
	return 100 * time.Millisecond * time.Duration(r+1)
}

func TestHappyPathAgreement(t *testing.T) {
	c, err := New(Options{
		N:            7,
		Accountable:  true,
		Recover:      true,
		MaxInstances: 4,
		BaseLatency:  latency.Uniform(5*time.Millisecond, 25*time.Millisecond),
		CoordTimeout: fastCoordTimeout,
		Seed:         1,
	})
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	c.RunUntilQuiet(10 * time.Minute)
	if got := c.Disagreements(); got != 0 {
		t.Fatalf("disagreements = %d, want 0", got)
	}
	if got := c.AgreedInstances(); got != 4 {
		t.Fatalf("agreed instances = %d, want 4", got)
	}
	for _, id := range c.Members {
		if n := len(c.Commits[id]); n != 4 {
			t.Fatalf("replica %v committed %d instances, want 4", id, n)
		}
	}
}

func TestHappyPathFinality(t *testing.T) {
	c, err := New(Options{
		N:            7,
		Accountable:  true,
		Recover:      true,
		MaxInstances: 2,
		// δ̂ = 1/3: finality needs > (1/3+1/3)·7 ⇒ 5 confirmations.
		DeceitfulBound: 1.0 / 3.0,
		BaseLatency:    latency.Uniform(5*time.Millisecond, 25*time.Millisecond),
		CoordTimeout:   fastCoordTimeout,
		Seed:           2,
	})
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	c.RunUntilQuiet(10 * time.Minute)
	for _, id := range c.Members {
		for k := uint64(1); k <= 2; k++ {
			if _, ok := c.Finals[id][k]; !ok {
				t.Fatalf("replica %v never finalized instance %d", id, k)
			}
		}
	}
}

// TestBinaryConsensusAttackRecovery is the paper's headline scenario:
// d = ⌈5n/9⌉−1 deceitful replicas split the honest replicas into
// partitions, force a disagreement, get detected via certificate
// cross-checking, excluded by the exclusion consensus, replaced by pool
// replicas — after which consensus works again (Def. 3 Convergence).
func TestBinaryConsensusAttackRecovery(t *testing.T) {
	n := 9
	d := 4 // ⌈5·9/9⌉−1
	c, err := New(Options{
		N:              n,
		Deceitful:      d,
		Attack:         adversary.AttackBinary,
		Accountable:    true,
		Recover:        true,
		MaxInstances:   6,
		BaseLatency:    latency.Uniform(2*time.Millisecond, 10*time.Millisecond),
		PartitionDelay: latency.UniformMean(3 * time.Second),
		CoordTimeout:   fastCoordTimeout,
		Seed:           3,
	})
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	c.RunUntilQuiet(30 * time.Minute)

	if got := c.Disagreements(); got == 0 {
		t.Fatal("attack produced no disagreement; partition delay should have allowed one")
	}
	if _, ok := c.DetectionTime(); !ok {
		t.Fatal("honest replicas never detected fd deceitful replicas")
	}
	culprits := c.CulpritsDetected()
	for _, id := range culprits {
		if !c.Coalition.IsDeceitful(id) {
			t.Fatalf("honest replica %v was proven deceitful: accountability unsound", id)
		}
	}
	// At least one membership change completed at every honest replica.
	for _, id := range c.HonestMembers() {
		if len(c.ChangeResults[id]) == 0 {
			t.Fatalf("honest replica %v completed no membership change", id)
		}
		res := c.ChangeResults[id][0]
		if len(res.Excluded) < types.FaultThreshold(n) {
			t.Fatalf("only %d replicas excluded, want ≥ %d", len(res.Excluded), types.FaultThreshold(n))
		}
		for _, ex := range res.Excluded {
			if !c.Coalition.IsDeceitful(ex) {
				t.Fatalf("honest replica %v was excluded", ex)
			}
		}
		if len(res.Included) != len(res.Excluded) {
			t.Fatalf("included %d ≠ excluded %d: committee size not restored",
				len(res.Included), len(res.Excluded))
		}
	}
	if !c.ConvergedAgreement() {
		t.Fatal("honest replicas did not converge to a common committee with δ < 1/3")
	}
}

// TestRBCastAttackRecovery drives the reliable broadcast attack: the
// deceitful proposers send different proposals to different partitions.
func TestRBCastAttackRecovery(t *testing.T) {
	n := 9
	d := 4
	c, err := New(Options{
		N:              n,
		Deceitful:      d,
		Attack:         adversary.AttackRBCast,
		Accountable:    true,
		Recover:        true,
		MaxInstances:   6,
		BaseLatency:    latency.Uniform(2*time.Millisecond, 10*time.Millisecond),
		PartitionDelay: latency.UniformMean(3 * time.Second),
		CoordTimeout:   fastCoordTimeout,
		Seed:           4,
	})
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	c.RunUntilQuiet(30 * time.Minute)

	if got := c.Disagreements(); got == 0 {
		t.Fatal("rbcast attack produced no disagreement")
	}
	for _, id := range c.CulpritsDetected() {
		if !c.Coalition.IsDeceitful(id) {
			t.Fatalf("honest replica %v was proven deceitful", id)
		}
	}
	if _, ok := c.DetectionTime(); !ok {
		t.Fatal("rbcast attack was never detected")
	}
	if !c.ConvergedAgreement() {
		t.Fatal("no convergence after rbcast attack")
	}
}

// TestPolygraphBaselineDetectsButCannotRecover checks the Accountable-
// without-Recover mode: fraud is proven but no membership change runs.
func TestPolygraphBaselineDetectsButCannotRecover(t *testing.T) {
	c, err := New(Options{
		N:              9,
		Deceitful:      4,
		Attack:         adversary.AttackBinary,
		Accountable:    true,
		Recover:        false,
		MaxInstances:   4,
		BaseLatency:    latency.Uniform(2*time.Millisecond, 10*time.Millisecond),
		PartitionDelay: latency.UniformMean(3 * time.Second),
		CoordTimeout:   fastCoordTimeout,
		Seed:           5,
	})
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	c.RunUntilQuiet(30 * time.Minute)
	if c.Disagreements() == 0 {
		t.Fatal("attack produced no disagreement")
	}
	for _, id := range c.HonestMembers() {
		if len(c.ChangeResults[id]) != 0 {
			t.Fatal("Polygraph baseline must not run membership changes")
		}
	}
}

func TestBenignCrashesDoNotBlockConsensus(t *testing.T) {
	c, err := New(Options{
		N:            10,
		Benign:       2,
		Accountable:  true,
		Recover:      true,
		MaxInstances: 3,
		BaseLatency:  latency.Uniform(5*time.Millisecond, 25*time.Millisecond),
		CoordTimeout: fastCoordTimeout,
		Seed:         6,
	})
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	c.RunUntilQuiet(10 * time.Minute)
	if got := c.Disagreements(); got != 0 {
		t.Fatalf("disagreements = %d, want 0", got)
	}
	if got := c.AgreedInstances(); got != 3 {
		t.Fatalf("agreed instances = %d, want 3", got)
	}
}
