package harness

import (
	"testing"
	"time"

	"github.com/zeroloss/zlb/internal/latency"
	"github.com/zeroloss/zlb/internal/types"
)

// TestCrashRestartFromDiskCatchesUp is the harness half of the
// crash-recovery arc: a replica is killed mid-run (its store closed like
// a dead process's file descriptors), the cluster keeps committing
// without it, and the restarted incarnation recovers its chain from disk
// and catches the tail up via certificate-verified CatchupResp — ending
// in full digest agreement with the honest chain.
func TestCrashRestartFromDiskCatchesUp(t *testing.T) {
	victim := types.ReplicaID(7)
	c, err := New(Options{
		N:            7,
		Accountable:  true,
		Recover:      true,
		MaxInstances: 12,
		BaseLatency:  latency.Uniform(5*time.Millisecond, 25*time.Millisecond),
		CoordTimeout: fastCoordTimeout,
		Seed:         3,
		DataDir:      t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.CloseStores()
	c.ExcludeFromMetrics(victim)
	c.Start()

	// Let some instances commit, then kill the victim mid-load.
	c.Run(2 * time.Second)
	if err := c.CrashToDisk(victim); err != nil {
		t.Fatal(err)
	}
	beforeCrash := len(c.Commits[victim])
	if beforeCrash == 0 {
		t.Fatal("victim committed nothing before the crash; test needs a longer warmup")
	}
	c.Run(6 * time.Second)
	if err := c.RestartFromDisk(victim); err != nil {
		t.Fatal(err)
	}
	// The fresh incarnation must have restored its persisted chain.
	if got := c.Replicas[victim].CommittedCount(); got < beforeCrash {
		t.Fatalf("restored %d instances, want ≥ %d from disk", got, beforeCrash)
	}
	c.RunUntilQuiet(20 * time.Minute)

	if err := c.StoreErr(); err != nil {
		t.Fatalf("persistence error: %v", err)
	}
	match, have, want := c.ChainAgreement(victim)
	if !match {
		t.Fatalf("restarted replica agrees on %d/%d instances", have, want)
	}
	if want < 12 {
		t.Fatalf("honest chain reached %d instances, want 12", want)
	}
	if got := c.Disagreements(); got != 0 {
		t.Fatalf("disagreements = %d, want 0", got)
	}
}
