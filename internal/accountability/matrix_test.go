package accountability

import (
	"fmt"
	"reflect"
	"testing"

	"github.com/zeroloss/zlb/internal/crypto"
	"github.com/zeroloss/zlb/internal/types"
)

// schemeForms enumerates the conformance matrix: every scheme in
// signed-statement form, plus the aggregate form where the scheme
// implements crypto.Aggregator. Schemes without the capability are
// expected to fall back — that expectation is part of the matrix.
var schemeForms = []struct {
	kind      crypto.SchemeKind
	aggregate bool // request aggregate assembly
	expectAgg bool // the form NewCertificateFor must actually produce
}{
	{crypto.SchemeECDSA, false, false},
	{crypto.SchemeECDSA, true, false}, // no Aggregator: falls back
	{crypto.SchemeEd25519, false, false},
	{crypto.SchemeEd25519, true, false}, // no Aggregator: falls back
	{crypto.SchemeSim, false, false},
	{crypto.SchemeSim, true, true},
}

func matrixName(kind crypto.SchemeKind, aggregate bool) string {
	form := "signed"
	if aggregate {
		form = "aggregate"
	}
	return fmt.Sprintf("%v/%s", kind, form)
}

func quorumSigs(t *testing.T, signers []*crypto.Signer, ids []types.ReplicaID, stmt Statement) []Signed {
	t.Helper()
	var sigs []Signed
	for _, id := range ids {
		s, err := SignStatement(signers[id-1], stmt)
		if err != nil {
			t.Fatal(err)
		}
		sigs = append(sigs, s)
	}
	return sigs
}

// TestCertificateMatrixVerify drives Certificate.Verify across every
// scheme × form: valid quorums accept, sub-quorum and tampered
// certificates reject, membership filtering applies.
func TestCertificateMatrixVerify(t *testing.T) {
	const n = 7
	for _, tc := range schemeForms {
		t.Run(matrixName(tc.kind, tc.aggregate), func(t *testing.T) {
			signers, _, err := crypto.GenerateCluster(tc.kind, n, 1)
			if err != nil {
				t.Fatal(err)
			}
			stmt := auxStmt(3, 1, 0, true)
			quorum := []types.ReplicaID{1, 2, 3, 5, 7}[:types.Quorum(n)]
			sigs := quorumSigs(t, signers, quorum, stmt)
			cert, err := NewCertificateFor(signers[0], stmt, sigs, tc.aggregate)
			if err != nil {
				t.Fatal(err)
			}
			if cert.IsAggregate() != tc.expectAgg {
				t.Fatalf("IsAggregate = %v, want %v", cert.IsAggregate(), tc.expectAgg)
			}
			if err := cert.Verify(signers[6], n, nil); err != nil {
				t.Fatalf("valid certificate rejected: %v", err)
			}
			if got, want := cert.SignerCount(nil), len(quorum); got != want {
				t.Fatalf("SignerCount = %d, want %d", got, want)
			}
			// Membership filtering: exclude one quorum signer → below quorum.
			excluded := quorum[0]
			err = cert.Verify(signers[6], n, func(id types.ReplicaID) bool { return id != excluded })
			if err == nil {
				t.Fatal("quorum reached without an excluded signer's vote")
			}
			// Sub-quorum certificate rejects.
			small, err := NewCertificateFor(signers[0], stmt, sigs[:types.Quorum(n)-1], tc.aggregate)
			if err != nil {
				t.Fatal(err)
			}
			if small.Verify(signers[6], n, nil) == nil {
				t.Fatal("sub-quorum certificate accepted")
			}
			// Tampering rejects: flip a byte of the signature material.
			bad := *cert
			if bad.Agg != nil {
				sig := append(crypto.Signature(nil), bad.Agg.Sig...)
				sig[0] ^= 1
				bad.Agg = &AggregateProof{Signers: bad.Agg.Signers, Sig: sig}
			} else {
				sigs := append([]Signed(nil), bad.Sigs...)
				tampered := append(crypto.Signature(nil), sigs[0].Sig...)
				tampered[0] ^= 1
				sigs[0].Sig = tampered
				bad.Sigs = sigs
			}
			if bad.Verify(signers[6], n, nil) == nil {
				t.Fatal("tampered certificate accepted")
			}
		})
	}
}

// TestCertificateMatrixCrossCheck drives PoF extraction across the
// matrix: conflicting certificates yield PoFs against exactly the
// intersection signers, in every form combination the scheme supports.
func TestCertificateMatrixCrossCheck(t *testing.T) {
	const n = 7
	for _, tc := range schemeForms {
		t.Run(matrixName(tc.kind, tc.aggregate), func(t *testing.T) {
			signers, _, err := crypto.GenerateCluster(tc.kind, n, 1)
			if err != nil {
				t.Fatal(err)
			}
			sTrue := auxStmt(3, 1, 0, true)
			sFalse := auxStmt(3, 1, 0, false)
			// Quorums overlap in replicas 3, 4, 5: the provable equivocators.
			qa := []types.ReplicaID{1, 2, 3, 4, 5}
			qb := []types.ReplicaID{3, 4, 5, 6, 7}
			ca, err := NewCertificateFor(signers[0], sTrue, quorumSigs(t, signers, qa, sTrue), tc.aggregate)
			if err != nil {
				t.Fatal(err)
			}
			cb, err := NewCertificateFor(signers[0], sFalse, quorumSigs(t, signers, qb, sFalse), tc.aggregate)
			if err != nil {
				t.Fatal(err)
			}
			pofs := CrossCheckWith(signers[6], ca, cb)
			want := []types.ReplicaID{3, 4, 5}
			if tc.expectAgg {
				if _, ok := signers[0].Scheme().(crypto.SignatureExtractor); !ok {
					// Aggregate form without extraction: no PoFs derivable.
					want = nil
				}
			}
			var got []types.ReplicaID
			for _, p := range pofs {
				if !p.Verify(signers[6]) {
					t.Fatalf("extracted PoF fails verification: %v", p)
				}
				got = append(got, p.Culprit)
			}
			types.SortReplicas(got)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("culprits = %v, want %v", got, want)
			}
		})
	}
}

// TestLogRecordCertificateEquivalence: feeding the log aggregate
// certificates surfaces the identical culprit set the signed-statement
// form does — the accountability-preservation core of the redesign.
func TestLogRecordCertificateEquivalence(t *testing.T) {
	const n = 7
	signers, _, err := crypto.GenerateCluster(crypto.SchemeSim, n, 1)
	if err != nil {
		t.Fatal(err)
	}
	sTrue := auxStmt(9, 2, 1, true)
	sFalse := auxStmt(9, 2, 1, false)
	qa := []types.ReplicaID{1, 2, 3, 4, 5}
	qb := []types.ReplicaID{3, 4, 5, 6, 7}

	culprits := func(aggregate bool) []types.ReplicaID {
		ca, err := NewCertificateFor(signers[0], sTrue, quorumSigs(t, signers, qa, sTrue), aggregate)
		if err != nil {
			t.Fatal(err)
		}
		cb, err := NewCertificateFor(signers[0], sFalse, quorumSigs(t, signers, qb, sFalse), aggregate)
		if err != nil {
			t.Fatal(err)
		}
		log := NewLog(signers[6], nil)
		log.RecordCertificate(ca)
		log.RecordCertificate(cb)
		out := log.Culprits()
		types.SortReplicas(out)
		return out
	}

	signed := culprits(false)
	agg := culprits(true)
	if !reflect.DeepEqual(signed, agg) {
		t.Fatalf("culprit sets diverge: signed %v, aggregate %v", signed, agg)
	}
	if want := []types.ReplicaID{3, 4, 5}; !reflect.DeepEqual(signed, want) {
		t.Fatalf("culprits = %v, want %v", signed, want)
	}
}

// TestExtractSignedBitIdentical: expanding an aggregate certificate
// reproduces the exact Signed values that went in — same statements,
// same signers, byte-identical signatures.
func TestExtractSignedBitIdentical(t *testing.T) {
	signers, _, err := crypto.GenerateCluster(crypto.SchemeSim, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	stmt := auxStmt(4, 0, 2, false)
	ids := []types.ReplicaID{1, 2, 4, 5}
	sigs := quorumSigs(t, signers, ids, stmt)
	cert, err := NewAggregateCertificate(signers[0], stmt, sigs)
	if err != nil {
		t.Fatal(err)
	}
	back, ok := cert.ExtractSigned(signers[2])
	if !ok {
		t.Fatal("extraction failed")
	}
	if !reflect.DeepEqual(back, sigs) {
		t.Fatalf("extracted statements differ:\n got %+v\nwant %+v", back, sigs)
	}
}

// BenchmarkCertVerify measures certificate verification per scheme ×
// form at the quorum sizes of n = 9, 18 and 90 committees. The sim
// aggregate rows verify by recomputing each constituent MAC, so their
// CPU cost stays linear — the constant-factor win is wire size (see
// the certs bench experiment), which is what the simulator's cost
// model charges.
func BenchmarkCertVerify(b *testing.B) {
	for _, quorum := range []int{6, 12, 60} {
		n := quorum // quorum signers suffice; Verify needs ≥ Quorum(n) of n
		for _, tc := range schemeForms {
			if tc.aggregate && !tc.expectAgg {
				continue // fallback duplicates the signed row
			}
			name := fmt.Sprintf("q%d/%s", quorum, matrixName(tc.kind, tc.aggregate))
			b.Run(name, func(b *testing.B) {
				signers, _, err := crypto.GenerateCluster(tc.kind, n, 1)
				if err != nil {
					b.Fatal(err)
				}
				stmt := auxStmt(1, 0, 0, true)
				ids := make([]types.ReplicaID, quorum)
				for i := range ids {
					ids[i] = types.ReplicaID(i + 1)
				}
				var sigs []Signed
				for _, id := range ids {
					s, err := SignStatement(signers[id-1], stmt)
					if err != nil {
						b.Fatal(err)
					}
					sigs = append(sigs, s)
				}
				cert, err := NewCertificateFor(signers[0], stmt, sigs, tc.aggregate)
				if err != nil {
					b.Fatal(err)
				}
				v := signers[len(signers)-1]
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if err := cert.Verify(v, n, nil); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}
