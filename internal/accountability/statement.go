// Package accountability implements the machinery that makes ZLB's
// consensus accountable (paper §2.1, §4.1): canonical signed protocol
// statements, certificates (quorums of signed statements supporting a
// decision), undeniable proofs of fraud (PoFs) built from two conflicting
// statements signed by the same replica, and the per-replica message log
// that cross-checks everything it sees — including statements arriving
// inside other replicas' certificates — to expose equivocators.
package accountability

import (
	"encoding/binary"
	"errors"
	"fmt"

	"github.com/zeroloss/zlb/internal/crypto"
	"github.com/zeroloss/zlb/internal/types"
)

// Kind is the protocol phase a statement belongs to. A replica commits a
// provable equivocation when it signs two statements of the same Kind for
// the same (Instance, Slot, Round) with different values. EST is absent
// on purpose: BV-broadcast legitimately lets a replica broadcast both
// binary values (its own estimate plus a relay), so EST messages are
// signed for authentication but never constitute equivocation evidence.
type Kind uint8

// Accountable statement kinds.
const (
	// KindInit is a reliable-broadcast proposal (one per broadcaster per
	// instance; Slot = broadcaster).
	KindInit Kind = iota + 1
	// KindEcho is a reliable-broadcast echo (one digest per slot).
	KindEcho
	// KindReady is a reliable-broadcast ready (one digest per slot).
	KindReady
	// KindCoord is the weak coordinator's value for a round (one per
	// round, coordinator only).
	KindCoord
	// KindAux is the binary-consensus auxiliary vote (exactly one value
	// per replica per round — the central equivocation slot of the
	// binary-consensus attack).
	KindAux
	// KindConfirm is the post-decision confirmation of a decision digest
	// for an ASMR instance (one per replica per instance).
	KindConfirm
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindInit:
		return "INIT"
	case KindEcho:
		return "ECHO"
	case KindReady:
		return "READY"
	case KindCoord:
		return "COORD"
	case KindAux:
		return "AUX"
	case KindConfirm:
		return "CONFIRM"
	default:
		return fmt.Sprintf("KIND(%d)", uint8(k))
	}
}

// Statement is the canonical, signable unit of the accountable protocols:
// "in consensus context (Context, Instance, Slot, Round), I vouch for
// Value". Context separates the main ASMR chain of consensus instances
// from the exclusion and inclusion consensus runs so their statements can
// never be confused.
type Statement struct {
	Context  uint8
	Kind     Kind
	Instance types.Instance
	Slot     uint32
	Round    types.Round
	Value    types.Digest
}

// Contexts for Statement.Context.
const (
	// CtxMain is the main chain of ASMR consensus instances Γk.
	CtxMain uint8 = iota + 1
	// CtxExclusion is an exclusion consensus (Alg. 1 line 22).
	CtxExclusion
	// CtxInclusion is an inclusion consensus (Alg. 1 line 42).
	CtxInclusion
)

// BoolDigest encodes a binary consensus value as a digest so Statements
// have a single value representation.
func BoolDigest(v bool) types.Digest {
	var d types.Digest
	if v {
		d[0] = 1
	}
	return d
}

// DigestBool decodes BoolDigest.
func DigestBool(d types.Digest) bool { return d[0] == 1 }

// EncodedLen is the fixed canonical encoding length of a Statement.
const EncodedLen = 1 + 1 + 8 + 4 + 4 + 32

// encodedLen is kept as the package-internal alias.
const encodedLen = EncodedLen

// Encode produces the canonical fixed-width encoding signatures cover.
func (s Statement) Encode() []byte {
	buf := make([]byte, encodedLen)
	s.encodeInto((*[encodedLen]byte)(buf))
	return buf
}

func (s Statement) encodeInto(buf *[encodedLen]byte) {
	buf[0] = s.Context
	buf[1] = byte(s.Kind)
	binary.BigEndian.PutUint64(buf[2:], uint64(s.Instance))
	binary.BigEndian.PutUint32(buf[10:], s.Slot)
	binary.BigEndian.PutUint32(buf[14:], uint32(s.Round))
	copy(buf[18:], s.Value[:])
}

// DecodeStatement parses a canonical encoding.
func DecodeStatement(buf []byte) (Statement, error) {
	if len(buf) != encodedLen {
		return Statement{}, fmt.Errorf("accountability: bad statement length %d", len(buf))
	}
	var s Statement
	s.Context = buf[0]
	s.Kind = Kind(buf[1])
	s.Instance = types.Instance(binary.BigEndian.Uint64(buf[2:]))
	s.Slot = binary.BigEndian.Uint32(buf[10:])
	s.Round = types.Round(binary.BigEndian.Uint32(buf[14:]))
	copy(s.Value[:], buf[18:])
	return s, nil
}

// Digest returns the hash signatures are computed over. The encoding is
// assembled in a stack buffer: signature verification recomputes this for
// every signed statement received, so it must not allocate.
func (s Statement) Digest() types.Digest {
	var buf [encodedLen]byte
	s.encodeInto(&buf)
	return types.Hash(buf[:])
}

// SlotKey identifies the equivocation slot of a statement: everything but
// the value. Two signed statements with equal SlotKey and different Value
// from the same signer form a PoF.
type SlotKey struct {
	Context  uint8
	Kind     Kind
	Instance types.Instance
	Slot     uint32
	Round    types.Round
}

// Key returns the statement's equivocation slot.
func (s Statement) Key() SlotKey {
	return SlotKey{Context: s.Context, Kind: s.Kind, Instance: s.Instance, Slot: s.Slot, Round: s.Round}
}

// String implements fmt.Stringer.
func (s Statement) String() string {
	return fmt.Sprintf("%v[ctx%d,%v,slot%d,r%d]=%v", s.Kind, s.Context, s.Instance, s.Slot, s.Round, s.Value)
}

// Signed is a statement with its author and signature: the transferable
// evidence unit. Signed statements travel inside protocol messages and
// certificates.
type Signed struct {
	Stmt   Statement
	Signer types.ReplicaID
	Sig    crypto.Signature
}

// SignStatement signs a statement as the given signer.
func SignStatement(signer *crypto.Signer, stmt Statement) (Signed, error) {
	sig, err := signer.Sign(stmt.Digest())
	if err != nil {
		return Signed{}, fmt.Errorf("signing %v: %w", stmt, err)
	}
	return Signed{Stmt: stmt, Signer: signer.ID(), Sig: sig}, nil
}

// Verify reports whether the signature is valid for the claimed signer.
func (s Signed) Verify(v *crypto.Signer) bool {
	return v.Verify(s.Signer, s.Stmt.Digest(), s.Sig)
}

// ErrNotEquivocation is returned by NewPoF when the two statements do not
// prove fraud.
var ErrNotEquivocation = errors.New("accountability: statements do not prove equivocation")

// PoF is an undeniable proof of fraud: two statements for the same
// equivocation slot, with different values, both validly signed by the
// same replica (Def. 1; paper §4.1 ).
type PoF struct {
	Culprit types.ReplicaID
	A, B    Signed
}

// NewPoF validates that a and b constitute a proof of fraud and builds it.
// Signature validity is NOT checked here (the caller may have already
// verified them); use Verify for full validation.
func NewPoF(a, b Signed) (PoF, error) {
	if a.Signer != b.Signer {
		return PoF{}, fmt.Errorf("%w: different signers %v / %v", ErrNotEquivocation, a.Signer, b.Signer)
	}
	if a.Stmt.Key() != b.Stmt.Key() {
		return PoF{}, fmt.Errorf("%w: different slots %v / %v", ErrNotEquivocation, a.Stmt, b.Stmt)
	}
	if a.Stmt.Value == b.Stmt.Value {
		return PoF{}, fmt.Errorf("%w: same value", ErrNotEquivocation)
	}
	return PoF{Culprit: a.Signer, A: a, B: b}, nil
}

// Verify fully validates the PoF: structure plus both signatures.
func (p PoF) Verify(v *crypto.Signer) bool {
	if _, err := NewPoF(p.A, p.B); err != nil {
		return false
	}
	if p.Culprit != p.A.Signer {
		return false
	}
	return p.A.Verify(v) && p.B.Verify(v)
}

// String implements fmt.Stringer.
func (p PoF) String() string {
	return fmt.Sprintf("PoF(%v: %v vs %v)", p.Culprit, p.A.Stmt, p.B.Stmt)
}
