package accountability

import (
	"errors"
	"fmt"
	"sort"

	"github.com/zeroloss/zlb/internal/crypto"
	"github.com/zeroloss/zlb/internal/types"
)

// Certificate is a quorum of signed statements for one slot and one value:
// the transferable justification Polygraph-style protocols attach to
// decisions (paper §2.3, "sets of 2n/3 messages signed by distinct
// replicas"). Two certificates for the same slot with different values
// overlap in at least ⌈n/3⌉ signers, every one of which is a provable
// equivocator — that intersection is exactly where membership-change PoFs
// come from.
//
// A certificate takes one of two forms, chosen per scheme capability:
//
//   - signed-statement form: Sigs holds the quorum of individual signed
//     statements (Agg is nil). Works with every scheme.
//   - aggregate form: Agg holds one aggregate signature plus the sorted
//     signer set (Sigs is nil). Requires the scheme to implement
//     crypto.Aggregator; constant-size on the wire regardless of quorum.
//
// Aggregate certificates keep full PoF attribution: the signer set is
// explicit, and schemes implementing crypto.SignatureExtractor (the sim
// scheme) reconstruct each constituent signed statement bit-identically,
// so CrossCheckWith and Log.RecordCertificate attribute equivocators
// exactly as they would from the signed-statement form.
type Certificate struct {
	Stmt Statement       // the statement every signature covers (value included)
	Sigs []Signed        // distinct-signer signatures on Stmt (signed-statement form)
	Agg  *AggregateProof // aggregate form; nil in signed-statement form
}

// AggregateProof is the compact quorum representation of an aggregate
// certificate: one aggregate signature over the statement digest plus the
// sorted distinct signers it covers. On the wire the signer set travels
// as a bitmap over the crypto.Registry's canonical signer index (see
// internal/wire); in memory it stays decoded so threshold checks need no
// registry. An AggregateProof is immutable after construction —
// certificates are shared across the simulated cluster and cached by
// pointer in the pipeline verifier.
type AggregateProof struct {
	Signers []types.ReplicaID // sorted, distinct
	Sig     crypto.Signature  // aggregate signature on Stmt.Digest()
}

// Errors returned by certificate verification.
var (
	ErrCertMismatch  = errors.New("accountability: certificate signature covers a different statement")
	ErrCertDuplicate = errors.New("accountability: duplicate signer in certificate")
	ErrCertQuorum    = errors.New("accountability: certificate below quorum")
	ErrCertSignature = errors.New("accountability: invalid signature in certificate")
	ErrCertScheme    = errors.New("accountability: scheme lacks the capability this certificate form needs")
)

// NewCertificate assembles a certificate from signed statements that must
// all equal stmt.
func NewCertificate(stmt Statement, sigs []Signed) (*Certificate, error) {
	seen := types.NewReplicaSet()
	for _, s := range sigs {
		if s.Stmt != stmt {
			return nil, fmt.Errorf("%w: %v vs %v", ErrCertMismatch, s.Stmt, stmt)
		}
		if !seen.Add(s.Signer) {
			return nil, fmt.Errorf("%w: %v", ErrCertDuplicate, s.Signer)
		}
	}
	out := make([]Signed, len(sigs))
	copy(out, sigs)
	return &Certificate{Stmt: stmt, Sigs: out}, nil
}

// NewAggregateCertificate assembles an aggregate-form certificate from
// the same inputs NewCertificate takes. The signer's scheme must
// implement crypto.Aggregator; ErrCertScheme is returned otherwise.
func NewAggregateCertificate(signer *crypto.Signer, stmt Statement, sigs []Signed) (*Certificate, error) {
	agg, ok := signer.Scheme().(crypto.Aggregator)
	if !ok {
		return nil, ErrCertScheme
	}
	seen := types.NewReplicaSet()
	for _, s := range sigs {
		if s.Stmt != stmt {
			return nil, fmt.Errorf("%w: %v vs %v", ErrCertMismatch, s.Stmt, stmt)
		}
		if !seen.Add(s.Signer) {
			return nil, fmt.Errorf("%w: %v", ErrCertDuplicate, s.Signer)
		}
	}
	// Canonical order: the aggregate covers the sorted signer set, so two
	// replicas folding the same quorum produce byte-identical proofs.
	ordered := make([]Signed, len(sigs))
	copy(ordered, sigs)
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].Signer < ordered[j].Signer })
	ids := make([]types.ReplicaID, len(ordered))
	raw := make([]crypto.Signature, len(ordered))
	for i, s := range ordered {
		ids[i] = s.Signer
		raw[i] = s.Sig
	}
	aggSig, err := agg.Aggregate(ids, raw)
	if err != nil {
		return nil, err
	}
	return &Certificate{Stmt: stmt, Agg: &AggregateProof{Signers: ids, Sig: aggSig}}, nil
}

// NewCertificateFor builds a certificate in the preferred form: aggregate
// when requested AND the signer's scheme supports it, signed-statement
// otherwise. This is the assembly entry point protocols use, so turning
// aggregation on is safe under every scheme.
func NewCertificateFor(signer *crypto.Signer, stmt Statement, sigs []Signed, aggregate bool) (*Certificate, error) {
	if aggregate {
		if _, ok := signer.Scheme().(crypto.Aggregator); ok {
			return NewAggregateCertificate(signer, stmt, sigs)
		}
	}
	return NewCertificate(stmt, sigs)
}

// IsAggregate reports whether the certificate is in aggregate form.
func (c *Certificate) IsAggregate() bool { return c.Agg != nil }

// Signers returns the distinct signers, sorted.
func (c *Certificate) Signers() []types.ReplicaID {
	if c.Agg != nil {
		out := make([]types.ReplicaID, len(c.Agg.Signers))
		copy(out, c.Agg.Signers)
		return out
	}
	set := types.NewReplicaSet()
	for _, s := range c.Sigs {
		set.Add(s.Signer)
	}
	return set.Sorted()
}

// SignerCount counts distinct signers that belong to the given committee
// membership test; a nil test counts all distinct signers. The membership
// test is how the exclusion consensus re-checks stored certificates
// against its shrinking committee C′ (Alg. 1 lines 31-36). Distinctness
// uses a small stack scratch instead of a set allocation: committees are
// at most a few hundred replicas, and this runs for every stored
// certificate each time C′ shrinks.
func (c *Certificate) SignerCount(member func(types.ReplicaID) bool) int {
	if c.Agg != nil {
		count := 0
		for _, id := range c.Agg.Signers {
			if member == nil || member(id) {
				count++
			}
		}
		return count
	}
	var scratch [128]types.ReplicaID
	seen := scratch[:0]
	count := 0
	for _, s := range c.Sigs {
		if member != nil && !member(s.Signer) {
			continue
		}
		if containsReplica(seen, s.Signer) {
			continue
		}
		seen = append(seen, s.Signer)
		count++
	}
	return count
}

func containsReplica(ids []types.ReplicaID, id types.ReplicaID) bool {
	for _, x := range ids {
		if x == id {
			return true
		}
	}
	return false
}

// Verify checks structure, distinctness, signatures and that the
// certificate reaches the quorum for committee size n among members
// accepted by the membership test (nil accepts all). The statement digest
// is computed once and shared by every signature check — all signatures
// in a certificate cover the same statement.
func (c *Certificate) Verify(v *crypto.Signer, n int, member func(types.ReplicaID) bool) error {
	if c.Agg != nil {
		if err := c.verifyAggregate(v); err != nil {
			return err
		}
		if counted := c.SignerCount(member); counted < types.Quorum(n) {
			return fmt.Errorf("%w: %d of %d needed", ErrCertQuorum, counted, types.Quorum(n))
		}
		return nil
	}
	digest := c.Stmt.Digest()
	var scratch [128]types.ReplicaID
	seen := scratch[:0]
	counted := 0
	for _, s := range c.Sigs {
		if s.Stmt != c.Stmt {
			return ErrCertMismatch
		}
		if containsReplica(seen, s.Signer) {
			return fmt.Errorf("%w: %v", ErrCertDuplicate, s.Signer)
		}
		seen = append(seen, s.Signer)
		if !v.Verify(s.Signer, digest, s.Sig) {
			return fmt.Errorf("%w: signer %v", ErrCertSignature, s.Signer)
		}
		if member == nil || member(s.Signer) {
			counted++
		}
	}
	if counted < types.Quorum(n) {
		return fmt.Errorf("%w: %d of %d needed", ErrCertQuorum, counted, types.Quorum(n))
	}
	return nil
}

// verifyAggregate checks the aggregate form's structure and signature:
// sorted distinct signers and a valid aggregate over the statement
// digest. Quorum/membership is the caller's concern.
func (c *Certificate) verifyAggregate(v *crypto.Signer) error {
	agg, ok := v.Scheme().(crypto.Aggregator)
	if !ok {
		return ErrCertScheme
	}
	prev := types.ReplicaID(0)
	for _, id := range c.Agg.Signers {
		if id <= prev {
			return fmt.Errorf("%w: %v", ErrCertDuplicate, id)
		}
		prev = id
	}
	if !agg.VerifyAggregate(v.Registry(), c.Agg.Signers, c.Stmt.Digest(), c.Agg.Sig) {
		return ErrCertSignature
	}
	return nil
}

// VerifySigs checks the membership-independent part of the certificate —
// structure, signer distinctness and signatures — for either form. This
// is the cacheable "pure" check the pipeline verifier shares across
// replicas; quorum against a specific committee is checked separately via
// SignerCount.
func (c *Certificate) VerifySigs(v *crypto.Signer) error {
	if c.Agg != nil {
		return c.verifyAggregate(v)
	}
	digest := c.Stmt.Digest()
	var scratch [128]types.ReplicaID
	seen := scratch[:0]
	for _, s := range c.Sigs {
		if s.Stmt != c.Stmt {
			return ErrCertMismatch
		}
		if containsReplica(seen, s.Signer) {
			return fmt.Errorf("%w: %v", ErrCertDuplicate, s.Signer)
		}
		seen = append(seen, s.Signer)
		if !v.Verify(s.Signer, digest, s.Sig) {
			return fmt.Errorf("%w: signer %v", ErrCertSignature, s.Signer)
		}
	}
	return nil
}

// ExtractSigned returns the certificate's per-signer signed statements.
// For the signed-statement form that is simply Sigs. For the aggregate
// form the scheme must implement crypto.SignatureExtractor (the sim
// scheme does): each constituent signature is reconstructed from the
// registry, bit-identical to the one the signer produced, so downstream
// PoF attribution is unchanged. Returns false when the scheme cannot
// extract.
func (c *Certificate) ExtractSigned(v *crypto.Signer) ([]Signed, bool) {
	if c.Agg == nil {
		return c.Sigs, true
	}
	ex, ok := v.Scheme().(crypto.SignatureExtractor)
	if !ok {
		return nil, false
	}
	digest := c.Stmt.Digest()
	out := make([]Signed, 0, len(c.Agg.Signers))
	for _, id := range c.Agg.Signers {
		sig, ok := ex.ExtractSignature(v.Registry(), id, digest)
		if !ok {
			return nil, false
		}
		out = append(out, Signed{Stmt: c.Stmt, Signer: id, Sig: sig})
	}
	return out, true
}

// signedModelBytes is the modeled wire cost of one signed statement
// (statement + signer + signature + framing) charged by the simulator's
// bandwidth model; the aggregate form charges it once for the aggregate
// signature plus a bitmap over the signer index.
const signedModelBytes = 130

// ModelBytes reports the certificate's modeled wire size, nil-safe: the
// per-signed-statement cost for the signed-statement form, or one
// aggregate signature plus the signer bitmap for the aggregate form.
// Signed-statement certificates cost exactly what they did before the
// aggregate form existed, keeping virtual-time goldens bit-identical.
func (c *Certificate) ModelBytes() int {
	if c == nil {
		return 0
	}
	if c.Agg != nil {
		maxID := 0
		for _, id := range c.Agg.Signers {
			if int(id) > maxID {
				maxID = int(id)
			}
		}
		return signedModelBytes + (maxID+7)/8
	}
	return signedModelBytes * len(c.Sigs)
}

// aggregateSigOps is the modeled verification cost of one aggregate
// signature check (a BLS-style aggregate verifies in two pairings
// regardless of quorum size).
const aggregateSigOps = 2

// SigOps reports the number of signature verifications checking this
// certificate costs; used by the simulator's CPU model. The aggregate
// form costs a small constant regardless of quorum size.
func (c *Certificate) SigOps() int {
	if c == nil {
		return 0
	}
	if c.Agg != nil {
		return aggregateSigOps
	}
	return len(c.Sigs)
}

// CrossCheck compares two signed-statement certificates for the same
// equivocation slot but different values and returns the PoFs for every
// replica that signed both. This is the paper's core accountability step:
// after a disagreement, the intersection of the two conflicting quorums
// is at least ⌈n/3⌉ replicas, all provably deceitful. Aggregate-form
// certificates need a verifier to reconstruct per-signer evidence — use
// CrossCheckWith.
func CrossCheck(a, b *Certificate) []PoF {
	if a.Stmt.Key() != b.Stmt.Key() || a.Stmt.Value == b.Stmt.Value {
		return nil
	}
	return crossCheckSigs(a.Sigs, b.Sigs)
}

// CrossCheckWith is CrossCheck for any certificate form: aggregate
// certificates are expanded to per-signer signed statements through the
// verifier's scheme first (crypto.SignatureExtractor). A certificate that
// cannot be expanded contributes no PoFs.
func CrossCheckWith(v *crypto.Signer, a, b *Certificate) []PoF {
	if a.Stmt.Key() != b.Stmt.Key() || a.Stmt.Value == b.Stmt.Value {
		return nil
	}
	aSigs, ok := a.ExtractSigned(v)
	if !ok {
		return nil
	}
	bSigs, ok := b.ExtractSigned(v)
	if !ok {
		return nil
	}
	return crossCheckSigs(aSigs, bSigs)
}

func crossCheckSigs(a, b []Signed) []PoF {
	bySigner := make(map[types.ReplicaID]Signed, len(a))
	for _, s := range a {
		bySigner[s.Signer] = s
	}
	var pofs []PoF
	for _, s := range b {
		if other, ok := bySigner[s.Signer]; ok {
			if pof, err := NewPoF(other, s); err == nil {
				pofs = append(pofs, pof)
			}
		}
	}
	return pofs
}
