package accountability

import (
	"errors"
	"fmt"

	"github.com/zeroloss/zlb/internal/crypto"
	"github.com/zeroloss/zlb/internal/types"
)

// Certificate is a quorum of signed statements for one slot and one value:
// the transferable justification Polygraph-style protocols attach to
// decisions (paper §2.3, "sets of 2n/3 messages signed by distinct
// replicas"). Two certificates for the same slot with different values
// overlap in at least ⌈n/3⌉ signers, every one of which is a provable
// equivocator — that intersection is exactly where membership-change PoFs
// come from.
type Certificate struct {
	Stmt Statement // the statement every signature covers (value included)
	Sigs []Signed  // distinct-signer signatures on Stmt
}

// Errors returned by certificate verification.
var (
	ErrCertMismatch  = errors.New("accountability: certificate signature covers a different statement")
	ErrCertDuplicate = errors.New("accountability: duplicate signer in certificate")
	ErrCertQuorum    = errors.New("accountability: certificate below quorum")
	ErrCertSignature = errors.New("accountability: invalid signature in certificate")
)

// NewCertificate assembles a certificate from signed statements that must
// all equal stmt.
func NewCertificate(stmt Statement, sigs []Signed) (*Certificate, error) {
	seen := types.NewReplicaSet()
	for _, s := range sigs {
		if s.Stmt != stmt {
			return nil, fmt.Errorf("%w: %v vs %v", ErrCertMismatch, s.Stmt, stmt)
		}
		if !seen.Add(s.Signer) {
			return nil, fmt.Errorf("%w: %v", ErrCertDuplicate, s.Signer)
		}
	}
	out := make([]Signed, len(sigs))
	copy(out, sigs)
	return &Certificate{Stmt: stmt, Sigs: out}, nil
}

// Signers returns the distinct signers, sorted.
func (c *Certificate) Signers() []types.ReplicaID {
	set := types.NewReplicaSet()
	for _, s := range c.Sigs {
		set.Add(s.Signer)
	}
	return set.Sorted()
}

// SignerCount counts distinct signers that belong to the given committee
// membership test; a nil test counts all distinct signers. The membership
// test is how the exclusion consensus re-checks stored certificates
// against its shrinking committee C′ (Alg. 1 lines 31-36). Distinctness
// uses a small stack scratch instead of a set allocation: committees are
// at most a few hundred replicas, and this runs for every stored
// certificate each time C′ shrinks.
func (c *Certificate) SignerCount(member func(types.ReplicaID) bool) int {
	var scratch [128]types.ReplicaID
	seen := scratch[:0]
	count := 0
	for _, s := range c.Sigs {
		if member != nil && !member(s.Signer) {
			continue
		}
		if containsReplica(seen, s.Signer) {
			continue
		}
		seen = append(seen, s.Signer)
		count++
	}
	return count
}

func containsReplica(ids []types.ReplicaID, id types.ReplicaID) bool {
	for _, x := range ids {
		if x == id {
			return true
		}
	}
	return false
}

// Verify checks structure, distinctness, signatures and that the
// certificate reaches the quorum for committee size n among members
// accepted by the membership test (nil accepts all). The statement digest
// is computed once and shared by every signature check — all signatures
// in a certificate cover the same statement.
func (c *Certificate) Verify(v *crypto.Signer, n int, member func(types.ReplicaID) bool) error {
	digest := c.Stmt.Digest()
	var scratch [128]types.ReplicaID
	seen := scratch[:0]
	counted := 0
	for _, s := range c.Sigs {
		if s.Stmt != c.Stmt {
			return ErrCertMismatch
		}
		if containsReplica(seen, s.Signer) {
			return fmt.Errorf("%w: %v", ErrCertDuplicate, s.Signer)
		}
		seen = append(seen, s.Signer)
		if !v.Verify(s.Signer, digest, s.Sig) {
			return fmt.Errorf("%w: signer %v", ErrCertSignature, s.Signer)
		}
		if member == nil || member(s.Signer) {
			counted++
		}
	}
	if counted < types.Quorum(n) {
		return fmt.Errorf("%w: %d of %d needed", ErrCertQuorum, counted, types.Quorum(n))
	}
	return nil
}

// SigOps reports the number of signature verifications checking this
// certificate costs; used by the simulator's CPU model.
func (c *Certificate) SigOps() int { return len(c.Sigs) }

// CrossCheck compares two certificates for the same equivocation slot but
// different values and returns the PoFs for every replica that signed
// both. This is the paper's core accountability step: after a
// disagreement, the intersection of the two conflicting quorums is at
// least ⌈n/3⌉ replicas, all provably deceitful.
func CrossCheck(a, b *Certificate) []PoF {
	if a.Stmt.Key() != b.Stmt.Key() || a.Stmt.Value == b.Stmt.Value {
		return nil
	}
	bySigner := make(map[types.ReplicaID]Signed, len(a.Sigs))
	for _, s := range a.Sigs {
		bySigner[s.Signer] = s
	}
	var pofs []PoF
	for _, s := range b.Sigs {
		if other, ok := bySigner[s.Signer]; ok {
			if pof, err := NewPoF(other, s); err == nil {
				pofs = append(pofs, pof)
			}
		}
	}
	return pofs
}
