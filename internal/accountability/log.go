package accountability

import (
	"github.com/zeroloss/zlb/internal/crypto"
	"github.com/zeroloss/zlb/internal/types"
)

// Log is one replica's accountable message log. Every valid signed
// statement the replica sees — directly from the network or inside a
// certificate — is recorded here; when a second statement from the same
// signer for the same slot with a different value shows up, the log emits
// a proof of fraud. This is the replicas "cross-checking their
// certificates" of paper §4.1 .
//
// Log is not safe for concurrent use; in the simulator each node owns one
// and all its protocol components share it.
type Log struct {
	verifier *crypto.Signer
	// first statement seen per (slot, signer). A single flat map keyed by
	// the combined (slot, signer) pair: recording a statement is one hash
	// and one insert, with no per-slot inner-map allocation (Record runs
	// for every signed statement every replica sees).
	seen map[slotSigner]Signed
	// pofs accumulated, one per culprit (the first found is kept)
	pofs map[types.ReplicaID]PoF
	// treated marks culprits whose proofs were handled by a completed
	// membership change (Forget). Proofs for a treated culprit arriving
	// afterwards — gossip still in flight, certificates replayed during
	// catch-up — must not resurrect the culprit: re-firing onPoF would
	// count an already-excluded replica towards a fresh exclusion
	// threshold and trigger a spurious membership change.
	treated map[types.ReplicaID]bool
	// proven is the monotone record of every replica ever proven deceitful
	// by this log. Unlike pofs it survives Forget: exclusion discards the
	// *proofs* (they were consumed by the membership change) but the fact
	// that the replica equivocated is permanent, and it is what audits and
	// the conformance invariants ("no honest replica is ever accused")
	// check against.
	proven map[types.ReplicaID]bool
	// onPoF, if set, fires once per new culprit.
	onPoF func(PoF)
	// verified statements count, for metrics
	Recorded int
}

// slotSigner is the log's flat index key: an equivocation slot plus the
// signer being tracked in it.
type slotSigner struct {
	slot   SlotKey
	signer types.ReplicaID
}

// NewLog creates an empty log. verifier supplies signature verification;
// onPoF (optional) observes each newly proven culprit exactly once.
func NewLog(verifier *crypto.Signer, onPoF func(PoF)) *Log {
	return &Log{
		verifier: verifier,
		seen:     make(map[slotSigner]Signed),
		pofs:     make(map[types.ReplicaID]PoF),
		treated:  make(map[types.ReplicaID]bool),
		proven:   make(map[types.ReplicaID]bool),
		onPoF:    onPoF,
	}
}

// Record ingests a signed statement whose signature has already been
// verified by the caller (protocols verify on receipt; certificates are
// verified wholesale). It returns a PoF if this statement completes one,
// or nil.
func (l *Log) Record(s Signed) *PoF {
	l.Recorded++
	key := slotSigner{slot: s.Stmt.Key(), signer: s.Signer}
	prev, dup := l.seen[key]
	if !dup {
		l.seen[key] = s
		return nil
	}
	if prev.Stmt.Value == s.Stmt.Value {
		return nil // same statement again; harmless
	}
	pof, err := NewPoF(prev, s)
	if err != nil {
		return nil
	}
	if l.treated[pof.Culprit] {
		return nil // already excluded; evidence is stale
	}
	if _, known := l.pofs[pof.Culprit]; !known {
		l.pofs[pof.Culprit] = pof
		l.proven[pof.Culprit] = true
		if l.onPoF != nil {
			l.onPoF(pof)
		}
	}
	return &pof
}

// RecordVerify verifies the signature first, then records. It returns
// false when the signature is invalid.
func (l *Log) RecordVerify(s Signed) bool {
	if !s.Verify(l.verifier) {
		return false
	}
	l.Record(s)
	return true
}

// RecordCertificate ingests every signature of a certificate. The caller
// is expected to have verified the certificate. Aggregate-form
// certificates are expanded back to per-signer signed statements through
// the log's verifier (crypto.SignatureExtractor), so equivocation
// evidence inside an aggregate still attributes each culprit; a scheme
// that cannot extract contributes nothing (its aggregates carry no
// per-signer evidence by construction).
func (l *Log) RecordCertificate(c *Certificate) {
	sigs := c.Sigs
	if c.Agg != nil {
		var ok bool
		if sigs, ok = c.ExtractSigned(l.verifier); !ok {
			return
		}
	}
	for _, s := range sigs {
		l.Record(s)
	}
}

// AddPoF ingests an externally received, already verified PoF (replicas
// broadcast their new PoFs during membership changes, Alg. 1 line 26).
// It reports whether the culprit was new. Duplicate proofs for the same
// culprit and proofs arriving after the culprit's exclusion (Forget) are
// both ignored, so late gossip can never re-trigger onPoF.
func (l *Log) AddPoF(p PoF) bool {
	if _, known := l.pofs[p.Culprit]; known {
		return false
	}
	if l.treated[p.Culprit] {
		return false
	}
	l.pofs[p.Culprit] = p
	l.proven[p.Culprit] = true
	if l.onPoF != nil {
		l.onPoF(p)
	}
	return true
}

// Culprits returns the proven-deceitful replicas, sorted.
func (l *Log) Culprits() []types.ReplicaID {
	ids := make([]types.ReplicaID, 0, len(l.pofs))
	for id := range l.pofs {
		ids = append(ids, id)
	}
	return types.SortReplicas(ids)
}

// CulpritCount returns how many distinct replicas have been proven
// deceitful.
func (l *Log) CulpritCount() int { return len(l.pofs) }

// PoFs returns the stored proofs in culprit order.
func (l *Log) PoFs() []PoF {
	out := make([]PoF, 0, len(l.pofs))
	for _, id := range l.Culprits() {
		out = append(out, l.pofs[id])
	}
	return out
}

// PoFFor returns the proof for a culprit, if any.
func (l *Log) PoFFor(id types.ReplicaID) (PoF, bool) {
	p, ok := l.pofs[id]
	return p, ok
}

// Forget removes proofs for culprits that have been handled by a completed
// membership change (Alg. 1 line 39 discards treated PoFs). Forgotten
// culprits are remembered as treated: Record and AddPoF ignore further
// evidence against them, making exclusion idempotent under replayed
// gossip and certificates re-examined during catch-up.
func (l *Log) Forget(ids []types.ReplicaID) {
	for _, id := range ids {
		delete(l.pofs, id)
		l.treated[id] = true
	}
}

// Treated reports whether a culprit's proofs were already handled by a
// completed membership change.
func (l *Log) Treated(id types.ReplicaID) bool { return l.treated[id] }

// ProvenCulprits returns every replica ever proven deceitful by this log,
// sorted — including culprits whose proofs were since consumed by a
// membership change (Forget). This is the monotone audit view the
// end-of-run metrics and the conformance invariants use.
func (l *Log) ProvenCulprits() []types.ReplicaID {
	ids := make([]types.ReplicaID, 0, len(l.proven))
	for id := range l.proven {
		ids = append(ids, id)
	}
	return types.SortReplicas(ids)
}

// ProvenCount returns how many distinct replicas were ever proven
// deceitful, regardless of later Forget calls.
func (l *Log) ProvenCount() int { return len(l.proven) }
