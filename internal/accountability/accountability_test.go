package accountability

import (
	"testing"
	"testing/quick"

	"github.com/zeroloss/zlb/internal/crypto"
	"github.com/zeroloss/zlb/internal/types"
)

func testSigners(t *testing.T, n int) []*crypto.Signer {
	t.Helper()
	signers, _, err := crypto.GenerateCluster(crypto.SchemeEd25519, n, 1)
	if err != nil {
		t.Fatal(err)
	}
	return signers
}

func auxStmt(inst types.Instance, slot uint32, round types.Round, v bool) Statement {
	return Statement{
		Context:  CtxMain,
		Kind:     KindAux,
		Instance: inst,
		Slot:     slot,
		Round:    round,
		Value:    BoolDigest(v),
	}
}

func TestStatementEncodeRoundTrip(t *testing.T) {
	s := Statement{
		Context:  CtxExclusion,
		Kind:     KindReady,
		Instance: 77,
		Slot:     12,
		Round:    3,
		Value:    types.Hash([]byte("payload")),
	}
	back, err := DecodeStatement(s.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if back != s {
		t.Fatalf("round trip mismatch: %+v vs %+v", back, s)
	}
	if _, err := DecodeStatement([]byte("short")); err == nil {
		t.Fatal("short encoding accepted")
	}
}

// Property: distinct statements have distinct digests (encode injective
// over the fixed-width fields).
func TestStatementDigestInjective(t *testing.T) {
	f := func(i1, i2 uint16, s1, s2 uint8, r1, r2 uint8, v1, v2 bool) bool {
		a := auxStmt(types.Instance(i1), uint32(s1), types.Round(r1), v1)
		b := auxStmt(types.Instance(i2), uint32(s2), types.Round(r2), v2)
		if a == b {
			return a.Digest() == b.Digest()
		}
		return a.Digest() != b.Digest()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestPoFConstruction(t *testing.T) {
	signers := testSigners(t, 4)
	culprit := signers[0]
	a, err := SignStatement(culprit, auxStmt(1, 2, 0, true))
	if err != nil {
		t.Fatal(err)
	}
	b, err := SignStatement(culprit, auxStmt(1, 2, 0, false))
	if err != nil {
		t.Fatal(err)
	}
	pof, err := NewPoF(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if pof.Culprit != culprit.ID() {
		t.Fatalf("culprit %v, want %v", pof.Culprit, culprit.ID())
	}
	if !pof.Verify(signers[1]) {
		t.Fatal("valid PoF rejected")
	}
}

func TestPoFRejectsNonEquivocation(t *testing.T) {
	signers := testSigners(t, 4)
	s0 := signers[0]
	s1 := signers[1]
	a, _ := SignStatement(s0, auxStmt(1, 2, 0, true))
	sameValue, _ := SignStatement(s0, auxStmt(1, 2, 0, true))
	if _, err := NewPoF(a, sameValue); err == nil {
		t.Fatal("same-value PoF accepted")
	}
	otherRound, _ := SignStatement(s0, auxStmt(1, 2, 1, false))
	if _, err := NewPoF(a, otherRound); err == nil {
		t.Fatal("cross-round PoF accepted (different slot)")
	}
	otherSigner, _ := SignStatement(s1, auxStmt(1, 2, 0, false))
	if _, err := NewPoF(a, otherSigner); err == nil {
		t.Fatal("cross-signer PoF accepted")
	}
}

// TestPoFUnforgeable: a PoF against an honest replica cannot be built
// from forged signatures.
func TestPoFUnforgeable(t *testing.T) {
	signers := testSigners(t, 4)
	honest := signers[0]
	real, _ := SignStatement(honest, auxStmt(1, 2, 0, true))
	forged := Signed{
		Stmt:   auxStmt(1, 2, 0, false),
		Signer: honest.ID(),
		Sig:    append(crypto.Signature(nil), real.Sig...), // wrong stmt
	}
	pof := PoF{Culprit: honest.ID(), A: real, B: forged}
	if pof.Verify(signers[1]) {
		t.Fatal("forged PoF verified against an honest replica")
	}
}

func TestCertificateVerify(t *testing.T) {
	signers := testSigners(t, 7)
	stmt := auxStmt(3, 1, 0, true)
	var sigs []Signed
	for _, s := range signers[:5] { // quorum(7)=5
		signed, err := SignStatement(s, stmt)
		if err != nil {
			t.Fatal(err)
		}
		sigs = append(sigs, signed)
	}
	cert, err := NewCertificate(stmt, sigs)
	if err != nil {
		t.Fatal(err)
	}
	if err := cert.Verify(signers[6], 7, nil); err != nil {
		t.Fatalf("valid certificate rejected: %v", err)
	}
	// Below quorum.
	small, _ := NewCertificate(stmt, sigs[:4])
	if err := small.Verify(signers[6], 7, nil); err == nil {
		t.Fatal("sub-quorum certificate accepted")
	}
	// Duplicate signer.
	if _, err := NewCertificate(stmt, append(sigs, sigs[0])); err == nil {
		t.Fatal("duplicate-signer certificate accepted")
	}
	// Membership filter: discarding two signers drops below ⌈2·7/3⌉.
	member := func(id types.ReplicaID) bool { return id != 1 && id != 2 }
	if err := cert.Verify(signers[6], 7, member); err == nil {
		t.Fatal("certificate passed with filtered signers below quorum")
	}
}

func TestCrossCheckExposesIntersection(t *testing.T) {
	signers := testSigners(t, 9)
	stmtTrue := auxStmt(5, 4, 0, true)
	stmtFalse := auxStmt(5, 4, 0, false)

	// Partition A's cert: replicas 1-6 vote true; partition B's: 4-9 vote
	// false. The overlap 4,5,6 are equivocators.
	var sigsA, sigsB []Signed
	for _, s := range signers[0:6] {
		signed, _ := SignStatement(s, stmtTrue)
		sigsA = append(sigsA, signed)
	}
	for _, s := range signers[3:9] {
		signed, _ := SignStatement(s, stmtFalse)
		sigsB = append(sigsB, signed)
	}
	certA, _ := NewCertificate(stmtTrue, sigsA)
	certB, _ := NewCertificate(stmtFalse, sigsB)

	pofs := CrossCheck(certA, certB)
	if len(pofs) != 3 {
		t.Fatalf("cross-check found %d equivocators, want 3", len(pofs))
	}
	want := map[types.ReplicaID]bool{4: true, 5: true, 6: true}
	for _, p := range pofs {
		if !want[p.Culprit] {
			t.Fatalf("unexpected culprit %v", p.Culprit)
		}
		if !p.Verify(signers[0]) {
			t.Fatalf("cross-check PoF does not verify")
		}
	}
	// Same-value certs expose nothing.
	if got := CrossCheck(certA, certA); got != nil {
		t.Fatalf("self cross-check produced %d PoFs", len(got))
	}
}

func TestLogDetectsEquivocation(t *testing.T) {
	signers := testSigners(t, 4)
	var fired []types.ReplicaID
	log := NewLog(signers[1], func(p PoF) { fired = append(fired, p.Culprit) })

	a, _ := SignStatement(signers[0], auxStmt(1, 1, 0, true))
	b, _ := SignStatement(signers[0], auxStmt(1, 1, 0, false))
	if pof := log.Record(a); pof != nil {
		t.Fatal("single statement produced a PoF")
	}
	if pof := log.Record(a); pof != nil {
		t.Fatal("duplicate statement produced a PoF")
	}
	pof := log.Record(b)
	if pof == nil || pof.Culprit != signers[0].ID() {
		t.Fatal("equivocation not detected")
	}
	if len(fired) != 1 {
		t.Fatalf("callback fired %d times, want 1", len(fired))
	}
	// Culprit reported once even with further evidence.
	c, _ := SignStatement(signers[0], auxStmt(1, 1, 1, true))
	d, _ := SignStatement(signers[0], auxStmt(1, 1, 1, false))
	log.Record(c)
	log.Record(d)
	if len(fired) != 1 {
		t.Fatalf("callback fired %d times after more evidence, want 1", len(fired))
	}
	if log.CulpritCount() != 1 {
		t.Fatalf("culprits %d, want 1", log.CulpritCount())
	}
}

func TestLogForgetAndAddPoF(t *testing.T) {
	signers := testSigners(t, 4)
	log := NewLog(signers[1], nil)
	a, _ := SignStatement(signers[0], auxStmt(1, 1, 0, true))
	b, _ := SignStatement(signers[0], auxStmt(1, 1, 0, false))
	pof, _ := NewPoF(a, b)
	if !log.AddPoF(pof) {
		t.Fatal("fresh PoF not added")
	}
	if log.AddPoF(pof) {
		t.Fatal("duplicate PoF added")
	}
	if _, ok := log.PoFFor(signers[0].ID()); !ok {
		t.Fatal("PoF not retrievable")
	}
	log.Forget([]types.ReplicaID{signers[0].ID()})
	if log.CulpritCount() != 0 {
		t.Fatal("forget did not clear the culprit")
	}
}

// TestLogExactFaultThresholdCulprits drives the boundary the exclusion
// logic keys on: two forked quorum certificates over n=9 whose signer
// sets overlap in exactly n/3 replicas. Cross-checking must surface
// exactly FaultThreshold(9)=3 culprits, and feeding the log the same
// proofs repeatedly — as duplicates or as raw certificate statements —
// must not inflate the count.
func TestLogExactFaultThresholdCulprits(t *testing.T) {
	const n = 9
	signers := testSigners(t, n)
	stmtTrue := auxStmt(5, 4, 0, true)
	stmtFalse := auxStmt(5, 4, 0, false)
	var sigsA, sigsB []Signed
	for _, s := range signers[0:6] { // quorum(9)=6
		signed, _ := SignStatement(s, stmtTrue)
		sigsA = append(sigsA, signed)
	}
	for _, s := range signers[3:9] {
		signed, _ := SignStatement(s, stmtFalse)
		sigsB = append(sigsB, signed)
	}
	certA, _ := NewCertificate(stmtTrue, sigsA)
	certB, _ := NewCertificate(stmtFalse, sigsB)

	pofs := CrossCheck(certA, certB)
	if want := types.FaultThreshold(n); len(pofs) != want {
		t.Fatalf("cross-check found %d culprits, want exactly n/3 = %d", len(pofs), want)
	}

	var fired int
	log := NewLog(signers[0], func(PoF) { fired++ })
	for _, p := range pofs {
		if !log.AddPoF(p) {
			t.Fatalf("fresh PoF for %v rejected", p.Culprit)
		}
	}
	// The same proofs again, and the same equivocations rediscovered from
	// the certificates themselves, are all duplicates.
	for _, p := range pofs {
		if log.AddPoF(p) {
			t.Fatalf("duplicate PoF for %v re-added", p.Culprit)
		}
	}
	log.RecordCertificate(certA)
	log.RecordCertificate(certB)
	if got, want := log.CulpritCount(), types.FaultThreshold(n); got != want {
		t.Fatalf("culprit count %d, want exactly %d", got, want)
	}
	if fired != types.FaultThreshold(n) {
		t.Fatalf("onPoF fired %d times, want %d", fired, types.FaultThreshold(n))
	}
}

// TestLogDuplicatePoFsSamePair pins that two proofs built from the same
// statement pair — including the arguments swapped — count as one culprit.
func TestLogDuplicatePoFsSamePair(t *testing.T) {
	signers := testSigners(t, 4)
	var fired int
	log := NewLog(signers[1], func(PoF) { fired++ })
	a, _ := SignStatement(signers[0], auxStmt(1, 1, 0, true))
	b, _ := SignStatement(signers[0], auxStmt(1, 1, 0, false))
	p1, err := NewPoF(a, b)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := NewPoF(b, a)
	if err != nil {
		t.Fatal(err)
	}
	if !log.AddPoF(p1) {
		t.Fatal("fresh PoF rejected")
	}
	if log.AddPoF(p2) {
		t.Fatal("swapped-pair PoF for the same culprit re-added")
	}
	if fired != 1 || log.CulpritCount() != 1 {
		t.Fatalf("fired=%d culprits=%d, want 1/1", fired, log.CulpritCount())
	}
}

// TestLogPostExclusionIdempotence pins the edge the conformance checker
// leans on: once a culprit's proofs are handled by a completed membership
// change (Forget), late-arriving evidence — gossiped PoFs still in
// flight, equivocations rediscovered while replaying certificates during
// catch-up — must neither resurrect the culprit nor re-fire onPoF, which
// would spuriously restart an exclusion that already happened.
func TestLogPostExclusionIdempotence(t *testing.T) {
	signers := testSigners(t, 4)
	culprit := signers[0].ID()
	var fired int
	log := NewLog(signers[1], func(PoF) { fired++ })

	a, _ := SignStatement(signers[0], auxStmt(1, 1, 0, true))
	b, _ := SignStatement(signers[0], auxStmt(1, 1, 0, false))
	log.Record(a)
	if pof := log.Record(b); pof == nil {
		t.Fatal("equivocation not detected")
	}
	pof, _ := log.PoFFor(culprit)
	log.Forget([]types.ReplicaID{culprit})
	if !log.Treated(culprit) {
		t.Fatal("forgotten culprit not marked treated")
	}
	if log.CulpritCount() != 0 {
		t.Fatal("forget did not clear the culprit")
	}

	// Late gossip of the proof that triggered the exclusion.
	if log.AddPoF(pof) {
		t.Fatal("post-exclusion PoF re-added")
	}
	// Fresh equivocation evidence from a different round, e.g. inside a
	// certificate replayed during catch-up.
	c, _ := SignStatement(signers[0], auxStmt(1, 1, 1, true))
	d, _ := SignStatement(signers[0], auxStmt(1, 1, 1, false))
	log.Record(c)
	if got := log.Record(d); got != nil {
		t.Fatal("post-exclusion equivocation produced a PoF")
	}
	if fired != 1 {
		t.Fatalf("onPoF fired %d times, want 1 (exclusion is idempotent)", fired)
	}
	if log.CulpritCount() != 0 {
		t.Fatalf("culprit resurrected after exclusion: %v", log.Culprits())
	}

	// An unrelated culprit is still detected normally.
	e, _ := SignStatement(signers[2], auxStmt(1, 1, 0, true))
	f, _ := SignStatement(signers[2], auxStmt(1, 1, 0, false))
	log.Record(e)
	if got := log.Record(f); got == nil || got.Culprit != signers[2].ID() {
		t.Fatal("new culprit not detected after an exclusion")
	}
	if fired != 2 || log.CulpritCount() != 1 {
		t.Fatalf("fired=%d culprits=%d, want 2/1", fired, log.CulpritCount())
	}
}

func TestRecordVerifyRejectsBadSignatures(t *testing.T) {
	signers := testSigners(t, 4)
	log := NewLog(signers[1], nil)
	a, _ := SignStatement(signers[0], auxStmt(1, 1, 0, true))
	a.Sig = append(crypto.Signature(nil), a.Sig...)
	a.Sig[0] ^= 0xff
	if log.RecordVerify(a) {
		t.Fatal("invalid signature recorded")
	}
}

func TestBoolDigest(t *testing.T) {
	if DigestBool(BoolDigest(true)) != true || DigestBool(BoolDigest(false)) != false {
		t.Fatal("bool digest round trip")
	}
	if BoolDigest(true) == BoolDigest(false) {
		t.Fatal("bool digests collide")
	}
}

func TestKindAndStatementStrings(t *testing.T) {
	for _, k := range []Kind{KindInit, KindEcho, KindReady, KindCoord, KindAux, KindConfirm} {
		if k.String() == "" || k.String()[0] == 'K' {
			t.Fatalf("kind %d has no name", k)
		}
	}
	s := auxStmt(1, 2, 3, true)
	if s.String() == "" {
		t.Fatal("empty statement string")
	}
}
