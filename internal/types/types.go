// Package types holds the primitive identifiers and value types shared by
// every ZLB subsystem: replica identities, consensus instance indices,
// digests and amounts. Keeping them in one dependency-free package lets the
// protocol packages (rbc, bincon, sbc, asmr, ...) exchange values without
// import cycles.
package types

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"sort"
)

// ReplicaID identifies a replica (a permissioned consensus participant).
// IDs are assigned by the membership layer and are stable for the lifetime
// of the replica, including across exclusions (an excluded replica keeps
// its ID; it is simply no longer part of the committee).
type ReplicaID uint32

// NilReplica is the zero ReplicaID, reserved as "no replica".
const NilReplica ReplicaID = 0

// String implements fmt.Stringer.
func (r ReplicaID) String() string { return fmt.Sprintf("r%d", uint32(r)) }

// Instance is the index k of a consensus instance Γk in the ASMR sequence.
type Instance uint64

// String implements fmt.Stringer.
func (i Instance) String() string { return fmt.Sprintf("Γ%d", uint64(i)) }

// Round is a round number inside one binary consensus instance.
type Round uint32

// Digest is a 32-byte SHA-256 digest used to identify proposals, blocks and
// transactions.
type Digest [32]byte

// ZeroDigest is the all-zero digest, reserved as "no value".
var ZeroDigest Digest

// Hash computes the SHA-256 digest of data.
func Hash(data []byte) Digest { return sha256.Sum256(data) }

// HashConcat hashes the concatenation of the given byte slices with
// length-prefix framing, so that ("ab","c") and ("a","bc") differ.
func HashConcat(parts ...[]byte) Digest {
	h := sha256.New()
	var lenBuf [8]byte
	for _, p := range parts {
		binary.BigEndian.PutUint64(lenBuf[:], uint64(len(p)))
		h.Write(lenBuf[:])
		h.Write(p)
	}
	var d Digest
	copy(d[:], h.Sum(nil))
	return d
}

// String returns the first 8 hex characters, enough for logs.
func (d Digest) String() string { return hex.EncodeToString(d[:4]) }

// Hex returns the full hex encoding.
func (d Digest) Hex() string { return hex.EncodeToString(d[:]) }

// IsZero reports whether d is the zero digest.
func (d Digest) IsZero() bool { return d == ZeroDigest }

// Less orders digests lexicographically; used for the deterministic
// reconciliation order of merged transactions (§4.1 ⑤).
func (d Digest) Less(other Digest) bool {
	for i := range d {
		if d[i] != other[i] {
			return d[i] < other[i]
		}
	}
	return false
}

// Amount is a coin amount in the smallest unit.
type Amount uint64

// SortReplicas sorts a slice of replica IDs ascending, in place, and
// returns it. Deterministic iteration over replica sets is required for
// reproducible simulation runs.
func SortReplicas(ids []ReplicaID) []ReplicaID {
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// ReplicaSet is a set of replica IDs with deterministic iteration order.
type ReplicaSet struct {
	members map[ReplicaID]struct{}
}

// NewReplicaSet builds a set containing the given IDs.
func NewReplicaSet(ids ...ReplicaID) *ReplicaSet {
	s := &ReplicaSet{members: make(map[ReplicaID]struct{}, len(ids))}
	for _, id := range ids {
		s.members[id] = struct{}{}
	}
	return s
}

// Add inserts id, reporting whether it was absent.
func (s *ReplicaSet) Add(id ReplicaID) bool {
	if _, ok := s.members[id]; ok {
		return false
	}
	s.members[id] = struct{}{}
	return true
}

// Remove deletes id, reporting whether it was present.
func (s *ReplicaSet) Remove(id ReplicaID) bool {
	if _, ok := s.members[id]; !ok {
		return false
	}
	delete(s.members, id)
	return true
}

// Contains reports membership.
func (s *ReplicaSet) Contains(id ReplicaID) bool {
	_, ok := s.members[id]
	return ok
}

// Len returns the set cardinality.
func (s *ReplicaSet) Len() int { return len(s.members) }

// Sorted returns the members in ascending order.
func (s *ReplicaSet) Sorted() []ReplicaID {
	out := make([]ReplicaID, 0, len(s.members))
	for id := range s.members {
		out = append(out, id)
	}
	return SortReplicas(out)
}

// Clone returns an independent copy.
func (s *ReplicaSet) Clone() *ReplicaSet {
	c := &ReplicaSet{members: make(map[ReplicaID]struct{}, len(s.members))}
	for id := range s.members {
		c.members[id] = struct{}{}
	}
	return c
}

// Union adds every member of other to s.
func (s *ReplicaSet) Union(other *ReplicaSet) {
	for id := range other.members {
		s.members[id] = struct{}{}
	}
}

// Quorum returns ⌈2n/3⌉ for committee size n: the number of signatures a
// certificate must carry (paper §2.3).
func Quorum(n int) int { return (2*n + 2) / 3 }

// FaultThreshold returns ⌈n/3⌉, the number of PoFs on distinct replicas
// required to start a membership change (paper Alg. 1, fd).
func FaultThreshold(n int) int { return (n + 2) / 3 }

// MaxClassicFaults returns ⌈n/3⌉ − 1, the classic BFT tolerance below
// which consensus instances must agree (Def. 3, Agreement).
func MaxClassicFaults(n int) int { return FaultThreshold(n) - 1 }

// BVRelayThreshold returns the t+1 echo-amplification threshold of
// BV-broadcast, with t the classic fault bound.
func BVRelayThreshold(n int) int { return MaxClassicFaults(n) + 1 }
