package types

import (
	"testing"
	"testing/quick"
)

func TestThresholds(t *testing.T) {
	cases := []struct {
		n, quorum, fd, maxFaults int
	}{
		{4, 3, 2, 1},
		{7, 5, 3, 2},
		{9, 6, 3, 2},
		{10, 7, 4, 3},
		{90, 60, 30, 29},
		{100, 67, 34, 33},
	}
	for _, c := range cases {
		if got := Quorum(c.n); got != c.quorum {
			t.Errorf("Quorum(%d) = %d, want %d", c.n, got, c.quorum)
		}
		if got := FaultThreshold(c.n); got != c.fd {
			t.Errorf("FaultThreshold(%d) = %d, want %d", c.n, got, c.fd)
		}
		if got := MaxClassicFaults(c.n); got != c.maxFaults {
			t.Errorf("MaxClassicFaults(%d) = %d, want %d", c.n, got, c.maxFaults)
		}
	}
}

// Property: two quorums intersect in at least FaultThreshold replicas —
// the accountability core (paper §2.3: conflicting certificates expose
// ≥ n/3 equivocators).
func TestQuorumIntersectionProperty(t *testing.T) {
	f := func(nSeed uint8) bool {
		n := 4 + int(nSeed%200)
		q := Quorum(n)
		intersection := 2*q - n
		return intersection >= FaultThreshold(n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: an honest majority of any quorum survives f < n/3 faults:
// quorum ≤ n − maxFaults (liveness).
func TestQuorumReachableProperty(t *testing.T) {
	f := func(nSeed uint8) bool {
		n := 4 + int(nSeed%200)
		return Quorum(n) <= n-MaxClassicFaults(n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestHashConcatFraming(t *testing.T) {
	a := HashConcat([]byte("ab"), []byte("c"))
	b := HashConcat([]byte("a"), []byte("bc"))
	if a == b {
		t.Fatal("length framing broken: boundary shift collides")
	}
	if HashConcat([]byte("x")) == HashConcat([]byte("x"), nil) {
		t.Fatal("empty trailing part should change the digest")
	}
}

func TestDigestLessTotalOrder(t *testing.T) {
	a := Hash([]byte("a"))
	b := Hash([]byte("b"))
	if a.Less(b) == b.Less(a) {
		t.Fatal("Less is not antisymmetric")
	}
	if a.Less(a) {
		t.Fatal("Less is not irreflexive")
	}
}

func TestReplicaSetBasics(t *testing.T) {
	s := NewReplicaSet(3, 1, 2, 2)
	if s.Len() != 3 {
		t.Fatalf("len = %d, want 3 (dedup)", s.Len())
	}
	if !s.Contains(2) || s.Contains(9) {
		t.Fatal("membership wrong")
	}
	if s.Add(1) {
		t.Fatal("re-add reported as new")
	}
	if !s.Add(9) {
		t.Fatal("new add not reported")
	}
	if !s.Remove(9) || s.Remove(9) {
		t.Fatal("remove semantics wrong")
	}
	got := s.Sorted()
	for i := 1; i < len(got); i++ {
		if got[i-1] >= got[i] {
			t.Fatalf("not sorted: %v", got)
		}
	}
}

func TestReplicaSetCloneIndependence(t *testing.T) {
	s := NewReplicaSet(1, 2)
	c := s.Clone()
	s.Add(3)
	if c.Contains(3) {
		t.Fatal("clone shares state")
	}
	c.Union(NewReplicaSet(7))
	if s.Contains(7) {
		t.Fatal("union mutated the original")
	}
}

func TestSortReplicas(t *testing.T) {
	ids := []ReplicaID{5, 1, 3}
	SortReplicas(ids)
	if ids[0] != 1 || ids[1] != 3 || ids[2] != 5 {
		t.Fatalf("sorted = %v", ids)
	}
}

func TestStringers(t *testing.T) {
	if ReplicaID(7).String() != "r7" {
		t.Fatal("ReplicaID stringer")
	}
	if Instance(3).String() != "Γ3" {
		t.Fatal("Instance stringer")
	}
	d := Hash([]byte("x"))
	if len(d.String()) != 8 || len(d.Hex()) != 64 {
		t.Fatal("digest stringers")
	}
	if !ZeroDigest.IsZero() || d.IsZero() {
		t.Fatal("IsZero")
	}
}
