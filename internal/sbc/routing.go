package sbc

import (
	"github.com/zeroloss/zlb/internal/bincon"
	"github.com/zeroloss/zlb/internal/rbc"
	"github.com/zeroloss/zlb/internal/simnet"
	"github.com/zeroloss/zlb/internal/types"
)

// ContextInstanceOf extracts (context, instance) from any consensus
// message exchanged by the SBC stack (reliable broadcast, binary
// consensus, proposal pulls). ok is false for non-consensus messages.
func ContextInstanceOf(msg simnet.Message) (uint8, types.Instance, bool) {
	switch m := msg.(type) {
	case *rbc.Init:
		return m.Stmt.Stmt.Context, m.Stmt.Stmt.Instance, true
	case *rbc.Echo:
		return m.Stmt.Stmt.Context, m.Stmt.Stmt.Instance, true
	case *rbc.Ready:
		return m.Stmt.Stmt.Context, m.Stmt.Stmt.Instance, true
	case *rbc.PayloadReq:
		return m.Context, m.Instance, true
	case *rbc.PayloadResp:
		return m.Context, m.Instance, true
	case *bincon.Est:
		return m.Context, m.Instance, true
	case *bincon.Coord:
		return m.Stmt.Stmt.Context, m.Stmt.Stmt.Instance, true
	case *bincon.Aux:
		return m.Stmt.Stmt.Context, m.Stmt.Stmt.Instance, true
	case *bincon.Decide:
		return m.Context, m.Instance, true
	case *ProposalReq:
		return m.Context, m.Instance, true
	case *ProposalResp:
		return m.Context, m.Instance, true
	default:
		return 0, 0, false
	}
}
