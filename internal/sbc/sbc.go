// Package sbc implements the Set Byzantine Consensus of paper Def. 2 via
// the classic reduction (§2.3): an all-to-all reliable broadcast of n
// proposals, one binary consensus per proposer slot, and a bitmask —
// applying the decided bitmask to the proposal array yields the decided
// superblock. With Accountable set, the underlying protocols sign their
// votes and the decision carries certificates (Polygraph); with it unset
// the stack is the non-accountable Red Belly baseline.
//
// Once n−t proposals have been reliably delivered, the remaining slots'
// binary consensuses start with input 0, so a crashed proposer cannot
// block the instance.
package sbc

import (
	"encoding/binary"
	"sort"
	"time"

	"github.com/zeroloss/zlb/internal/accountability"
	"github.com/zeroloss/zlb/internal/bincon"
	"github.com/zeroloss/zlb/internal/committee"
	"github.com/zeroloss/zlb/internal/crypto"
	"github.com/zeroloss/zlb/internal/obs"
	"github.com/zeroloss/zlb/internal/pipeline"
	"github.com/zeroloss/zlb/internal/rbc"
	"github.com/zeroloss/zlb/internal/simnet"
	"github.com/zeroloss/zlb/internal/types"
)

// ProposalInfo is one delivered proposal inside a decision.
type ProposalInfo struct {
	Broadcaster  types.ReplicaID
	Payload      []byte
	Digest       types.Digest
	ClaimedBytes int
	ClaimedSigs  int
}

// Decision is the output of one SBC instance: the bitmask over proposer
// slots and the proposals selected by it, plus the accountability
// artifacts needed by the confirmation phase.
type Decision struct {
	Instance types.Instance
	// Bits maps each committee member (at instance start) to its decided
	// bit.
	Bits map[types.ReplicaID]bool
	// Proposals holds the payloads of slots decided 1, keyed by
	// broadcaster.
	Proposals map[types.ReplicaID]ProposalInfo
	// BinCerts holds the binary decision certificates per slot
	// (accountable mode).
	BinCerts map[types.ReplicaID]*accountability.Certificate
	// ReadyCerts holds reliable-broadcast delivery certificates per slot
	// decided 1 (accountable mode, when available locally).
	ReadyCerts map[types.ReplicaID]*accountability.Certificate
	// InitStmts holds the broadcasters' signed proposal statements.
	InitStmts map[types.ReplicaID]*accountability.Signed
}

// Digest summarizes the decision: hash over (instance, sorted slots, bit,
// proposal digest). Two honest replicas disagree on the instance iff
// their decision digests differ.
func (d *Decision) Digest() types.Digest {
	slots := make([]types.ReplicaID, 0, len(d.Bits))
	for id := range d.Bits {
		slots = append(slots, id)
	}
	types.SortReplicas(slots)
	buf := make([]byte, 0, 8+len(slots)*(4+1+32))
	var tmp [8]byte
	binary.BigEndian.PutUint64(tmp[:], uint64(d.Instance))
	buf = append(buf, tmp[:]...)
	for _, id := range slots {
		binary.BigEndian.PutUint32(tmp[:4], uint32(id))
		buf = append(buf, tmp[:4]...)
		if d.Bits[id] {
			buf = append(buf, 1)
			pd := d.Proposals[id].Digest
			buf = append(buf, pd[:]...)
		} else {
			buf = append(buf, 0)
		}
	}
	return types.Hash(buf)
}

// OrderedProposals returns the selected proposals in ascending broadcaster
// order — the deterministic superblock order.
func (d *Decision) OrderedProposals() []ProposalInfo {
	out := make([]ProposalInfo, 0, len(d.Proposals))
	for _, p := range d.Proposals {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Broadcaster < out[j].Broadcaster })
	return out
}

// TotalClaimedTx sums the modeled transaction counts of selected
// proposals (throughput accounting).
func (d *Decision) TotalClaimedTx() int {
	sum := 0
	for _, p := range d.Proposals {
		sum += p.ClaimedSigs
	}
	return sum
}

// ProposalReq asks a peer for a full delivered proposal after the binary
// consensus decided 1 for a slot we have no payload for.
type ProposalReq struct {
	Context  uint8
	Instance types.Instance
	Slot     types.ReplicaID
}

// SimBytes implements simnet.Meter.
func (m *ProposalReq) SimBytes() int { return 48 }

// SimSigOps implements simnet.Meter.
func (m *ProposalReq) SimSigOps() int { return 0 }

// ProposalResp answers a ProposalReq with the delivery evidence.
type ProposalResp struct {
	Context      uint8
	Instance     types.Instance
	Slot         types.ReplicaID
	Payload      []byte
	ClaimedBytes int
	ClaimedSigs  int
	Cert         *accountability.Certificate
	InitStmt     *accountability.Signed
}

// SimBytes implements simnet.Meter.
func (m *ProposalResp) SimBytes() int {
	n := len(m.Payload) + 80
	if m.ClaimedBytes > 0 {
		n = m.ClaimedBytes + 80
	}
	return n + m.Cert.ModelBytes()
}

// SimSigOps implements simnet.Meter.
func (m *ProposalResp) SimSigOps() int {
	if m.Cert == nil {
		return 0
	}
	return m.Cert.SigOps() + 1
}

// Adversary wires the coalition attacks into the instance's
// sub-protocols; nil fields are honest.
type Adversary struct {
	// RBC is the reliable-broadcast equivocator for this replica's own
	// proposal slot (the reliable broadcast attack).
	RBC *rbc.Equivocator
	// RBCFor returns the equivocator for another broadcaster's slot
	// (deceitful echoers backing each partition's variant); nil = honest.
	RBCFor func(slot types.ReplicaID) *rbc.Equivocator
	// Bin returns a binary-consensus equivocator for a slot; nil = honest
	// in that slot.
	Bin func(slot types.ReplicaID) *bincon.Equivocator
}

// Config parameterizes one SBC instance at one replica.
type Config struct {
	Context     uint8
	Instance    types.Instance
	Self        types.ReplicaID
	View        *committee.View
	Signer      *crypto.Signer
	Log         *accountability.Log
	Env         simnet.Env
	Accountable bool
	// Validate, if set, rejects invalid proposal payloads before they can
	// be echoed (SBC-Validity).
	Validate func(broadcaster types.ReplicaID, payload []byte) bool
	// Certs, when set, routes certificate verification through the commit
	// pipeline (shared verdicts, worker-pool signature fan-out).
	Certs *pipeline.Verifier
	// AggregateCerts assembles certificates (ready and decision) in
	// aggregate form when the scheme supports it (crypto.Aggregator).
	AggregateCerts bool
	// Intern, when set, canonicalizes reliable-broadcast payload bytes by
	// digest across the deployment (rbc.Config.Intern).
	Intern *rbc.Intern
	// OnProposal observes every proposal payload the moment the reliable
	// broadcast delivers it — while the binary consensus is still
	// deciding. The application uses it to pre-validate the batch
	// speculatively (decode + transaction signature checks off the event
	// loop), so a decided batch commits without re-verification.
	OnProposal func(payload []byte)
	// CoordTimeout is passed through to the binary consensuses.
	CoordTimeout func(round types.Round) time.Duration
	OnDecide     func(*Decision)
	// OnSlotDecide observes every per-slot binary decision the moment it
	// becomes final — the granularity the paper's Figure 4 counts
	// ("disagreeing proposals"). digest is the locally delivered proposal
	// digest for 1-decisions (zero if the payload has not arrived yet).
	OnSlotDecide func(slot types.ReplicaID, value bool, digest types.Digest)
	Adversary    *Adversary
	// Tracer, when non-nil, records proposal deliveries and the instance
	// decision with virtual timestamps, and is threaded into the
	// sub-protocols. Nil disables tracing at zero cost.
	Tracer *obs.NodeTracer
	// Slots overrides the proposer slot set (default: View members at
	// creation). The exclusion consensus sets it to the full committee C
	// so every honest replica runs the same slot set even though their
	// working views C′ may transiently differ (Alg. 1 lines 20-27).
	Slots []types.ReplicaID
}

// Instance is the SBC state machine at one replica.
type Instance struct {
	cfg       Config
	members   []types.ReplicaID // committee snapshot at start
	rbcs      map[types.ReplicaID]*rbc.Instance
	bins      map[types.ReplicaID]*bincon.Instance
	delivered map[types.ReplicaID]rbc.Delivery
	decidedB  map[types.ReplicaID]bincon.Decision
	proposed  bool
	zerosSent bool
	done      bool
	decision  *Decision
	reqSent   map[types.ReplicaID]bool
}

// New creates an SBC instance. The committee membership is snapshotted at
// creation: the proposer slots of Γk are fixed even if the view later
// changes.
func New(cfg Config) *Instance {
	slots := cfg.Slots
	if slots == nil {
		slots = cfg.View.MembersCopy()
	} else {
		slots = append([]types.ReplicaID(nil), slots...)
		types.SortReplicas(slots)
	}
	s := &Instance{
		cfg:       cfg,
		members:   slots,
		rbcs:      make(map[types.ReplicaID]*rbc.Instance),
		bins:      make(map[types.ReplicaID]*bincon.Instance),
		delivered: make(map[types.ReplicaID]rbc.Delivery),
		decidedB:  make(map[types.ReplicaID]bincon.Decision),
		reqSent:   make(map[types.ReplicaID]bool),
	}
	return s
}

// Members returns the proposer slots of this instance.
func (s *Instance) Members() []types.ReplicaID { return s.members }

// Done reports completion.
func (s *Instance) Done() bool { return s.done }

// Decision returns the decision once Done.
func (s *Instance) Decision() *Decision { return s.decision }

// Progress summarizes the instance state for diagnostics: delivered
// proposals, decided binary slots, total slots.
func (s *Instance) Progress() (delivered, decided, total int) {
	return len(s.delivered), len(s.decidedB), len(s.members)
}

// DebugSlot returns the binary consensus diagnostic string for a slot.
func (s *Instance) DebugSlot(slot types.ReplicaID) string {
	if b, ok := s.bins[slot]; ok {
		return b.DebugState()
	}
	return "no bincon"
}

// UndecidedSlots lists slots whose binary consensus has not decided
// (diagnostics).
func (s *Instance) UndecidedSlots() []types.ReplicaID {
	var out []types.ReplicaID
	for _, m := range s.members {
		if _, ok := s.decidedB[m]; !ok {
			out = append(out, m)
		}
	}
	return out
}

func (s *Instance) rbcFor(slot types.ReplicaID) *rbc.Instance {
	r, ok := s.rbcs[slot]
	if !ok {
		var eq *rbc.Equivocator
		if s.cfg.Adversary != nil {
			if slot == s.cfg.Self {
				eq = s.cfg.Adversary.RBC
			} else if s.cfg.Adversary.RBCFor != nil {
				eq = s.cfg.Adversary.RBCFor(slot)
			}
		}
		r = rbc.New(rbc.Config{
			Context:        s.cfg.Context,
			Instance:       s.cfg.Instance,
			Broadcaster:    slot,
			Self:           s.cfg.Self,
			View:           s.cfg.View,
			Signer:         s.cfg.Signer,
			Log:            s.cfg.Log,
			Env:            s.cfg.Env,
			Accountable:    s.cfg.Accountable,
			AggregateCerts: s.cfg.AggregateCerts,
			Equivocator:    eq,
			Intern:         s.cfg.Intern,
			Tracer:         s.cfg.Tracer,
			OnDeliver:      func(d rbc.Delivery) { s.onDeliver(d) },
		})
		s.rbcs[slot] = r
	}
	return r
}

func (s *Instance) binFor(slot types.ReplicaID) *bincon.Instance {
	b, ok := s.bins[slot]
	if !ok {
		var eq *bincon.Equivocator
		if s.cfg.Adversary != nil && s.cfg.Adversary.Bin != nil {
			eq = s.cfg.Adversary.Bin(slot)
		}
		b = bincon.New(bincon.Config{
			Context:        s.cfg.Context,
			Instance:       s.cfg.Instance,
			Slot:           uint32(slot),
			Self:           s.cfg.Self,
			View:           s.cfg.View,
			Signer:         s.cfg.Signer,
			Log:            s.cfg.Log,
			Env:            s.cfg.Env,
			Accountable:    s.cfg.Accountable,
			Equivocator:    eq,
			CoordTimeout:   s.cfg.CoordTimeout,
			Certs:          s.cfg.Certs,
			AggregateCerts: s.cfg.AggregateCerts,
			Tracer:         s.cfg.Tracer,
			OnDecide:       func(d bincon.Decision) { s.onBinDecide(d) },
		})
		s.bins[slot] = b
	}
	return b
}

// Propose starts the instance with this replica's proposal payload.
// claimedBytes/claimedSigs model large batches for the cost model.
func (s *Instance) Propose(payload []byte, claimedBytes, claimedSigs int) {
	if s.proposed || s.done {
		return
	}
	s.proposed = true
	s.rbcFor(s.cfg.Self).Broadcast(payload, claimedBytes, claimedSigs)
}

func (s *Instance) onDeliver(d rbc.Delivery) {
	if _, dup := s.delivered[d.Broadcaster]; dup {
		return
	}
	if s.cfg.Validate != nil && !s.cfg.Validate(d.Broadcaster, d.Payload) {
		return
	}
	if s.cfg.OnProposal != nil {
		s.cfg.OnProposal(d.Payload)
	}
	s.cfg.Tracer.Record(s.cfg.Env.Now(), obs.PhaseRBCDeliver, uint64(s.cfg.Instance), uint32(d.Broadcaster), 0, "")
	s.delivered[d.Broadcaster] = d
	// A delivered proposal votes 1 for its slot.
	s.binFor(d.Broadcaster).Propose(true)
	// Once n−t proposals are in (measured against the live view: slots of
	// excluded replicas never propose), vote 0 for every other slot.
	if !s.zerosSent && len(s.delivered) >= s.cfg.View.Size()-s.cfg.View.MaxFaults() {
		s.zerosSent = true
		for _, slot := range s.members {
			if _, have := s.delivered[slot]; !have {
				s.binFor(slot).Propose(false)
			}
		}
	}
	s.maybeComplete()
}

func (s *Instance) onBinDecide(d bincon.Decision) {
	slot := types.ReplicaID(d.Slot)
	if _, dup := s.decidedB[slot]; dup {
		return
	}
	s.decidedB[slot] = d
	if s.cfg.OnSlotDecide != nil {
		var digest types.Digest
		if del, ok := s.delivered[slot]; ok {
			digest = del.Digest
		}
		s.cfg.OnSlotDecide(slot, d.Value, digest)
	}
	s.maybeComplete()
}

// maybeComplete assembles the decision when every slot's binary consensus
// has decided and every 1-slot's proposal is locally available.
func (s *Instance) maybeComplete() {
	if s.done || len(s.decidedB) < len(s.members) {
		return
	}
	// All bits decided; make sure payloads for 1-bits are present.
	for _, slot := range s.members {
		d := s.decidedB[slot]
		if !d.Value {
			continue
		}
		if _, have := s.delivered[slot]; !have {
			s.requestProposal(slot)
			return
		}
	}
	s.done = true
	dec := &Decision{
		Instance:   s.cfg.Instance,
		Bits:       make(map[types.ReplicaID]bool, len(s.members)),
		Proposals:  make(map[types.ReplicaID]ProposalInfo),
		BinCerts:   make(map[types.ReplicaID]*accountability.Certificate),
		ReadyCerts: make(map[types.ReplicaID]*accountability.Certificate),
		InitStmts:  make(map[types.ReplicaID]*accountability.Signed),
	}
	for _, slot := range s.members {
		bd := s.decidedB[slot]
		dec.Bits[slot] = bd.Value
		if bd.Cert != nil {
			dec.BinCerts[slot] = bd.Cert
		}
		if !bd.Value {
			continue
		}
		del := s.delivered[slot]
		dec.Proposals[slot] = ProposalInfo{
			Broadcaster:  slot,
			Payload:      del.Payload,
			Digest:       del.Digest,
			ClaimedBytes: del.ClaimedBytes,
			ClaimedSigs:  del.ClaimedSigs,
		}
		if del.Cert != nil {
			dec.ReadyCerts[slot] = del.Cert
		}
		if del.InitStmt != nil {
			dec.InitStmts[slot] = del.InitStmt
		}
	}
	s.decision = dec
	s.cfg.Tracer.Record(s.cfg.Env.Now(), obs.PhaseSBCDecide, uint64(s.cfg.Instance), 0, 0, "")
	if s.cfg.OnDecide != nil {
		s.cfg.OnDecide(dec)
	}
}

// requestProposal pulls a missing payload for a slot decided 1.
func (s *Instance) requestProposal(slot types.ReplicaID) {
	if s.reqSent[slot] {
		return
	}
	s.reqSent[slot] = true
	for _, m := range s.cfg.View.Members() {
		if m == s.cfg.Self {
			continue
		}
		s.cfg.Env.Send(m, &ProposalReq{Context: s.cfg.Context, Instance: s.cfg.Instance, Slot: slot})
	}
}

// OnMessage routes a protocol message to the right sub-instance. It
// reports whether the message type belonged to this SBC instance.
func (s *Instance) OnMessage(from types.ReplicaID, msg simnet.Message) bool {
	switch m := msg.(type) {
	case *rbc.Init:
		if m.Stmt.Stmt.Context != s.cfg.Context || m.Stmt.Stmt.Instance != s.cfg.Instance {
			return false
		}
		s.rbcFor(types.ReplicaID(m.Stmt.Stmt.Slot)).OnInit(from, m)
	case *rbc.Echo:
		if m.Stmt.Stmt.Context != s.cfg.Context || m.Stmt.Stmt.Instance != s.cfg.Instance {
			return false
		}
		s.rbcFor(types.ReplicaID(m.Stmt.Stmt.Slot)).OnEcho(from, m)
	case *rbc.Ready:
		if m.Stmt.Stmt.Context != s.cfg.Context || m.Stmt.Stmt.Instance != s.cfg.Instance {
			return false
		}
		s.rbcFor(types.ReplicaID(m.Stmt.Stmt.Slot)).OnReady(from, m)
	case *rbc.PayloadReq:
		if m.Context != s.cfg.Context || m.Instance != s.cfg.Instance {
			return false
		}
		s.rbcFor(m.Broadcaster).OnPayloadReq(from, m)
	case *rbc.PayloadResp:
		if m.Context != s.cfg.Context || m.Instance != s.cfg.Instance {
			return false
		}
		s.rbcFor(m.Broadcaster).OnPayloadResp(from, m)
	case *bincon.Est:
		if m.Context != s.cfg.Context || m.Instance != s.cfg.Instance {
			return false
		}
		s.binFor(types.ReplicaID(m.Slot)).OnEst(from, m)
	case *bincon.Coord:
		if m.Stmt.Stmt.Context != s.cfg.Context || m.Stmt.Stmt.Instance != s.cfg.Instance {
			return false
		}
		s.binFor(types.ReplicaID(m.Stmt.Stmt.Slot)).OnCoord(from, m)
	case *bincon.Aux:
		if m.Stmt.Stmt.Context != s.cfg.Context || m.Stmt.Stmt.Instance != s.cfg.Instance {
			return false
		}
		s.binFor(types.ReplicaID(m.Stmt.Stmt.Slot)).OnAux(from, m)
	case *bincon.Decide:
		if m.Context != s.cfg.Context || m.Instance != s.cfg.Instance {
			return false
		}
		s.binFor(types.ReplicaID(m.Slot)).OnDecide(from, m)
	case *ProposalReq:
		if m.Context != s.cfg.Context || m.Instance != s.cfg.Instance {
			return false
		}
		s.onProposalReq(from, m)
	case *ProposalResp:
		if m.Context != s.cfg.Context || m.Instance != s.cfg.Instance {
			return false
		}
		s.onProposalResp(from, m)
	default:
		return false
	}
	return true
}

// OnTimer routes a bincon coordinator timer.
func (s *Instance) OnTimer(p bincon.TimerPayload) bool {
	if p.Context != s.cfg.Context || p.Instance != s.cfg.Instance {
		return false
	}
	if b, ok := s.bins[types.ReplicaID(p.Slot)]; ok {
		b.HandleTimer(p)
	}
	return true
}

func (s *Instance) onProposalReq(from types.ReplicaID, m *ProposalReq) {
	del, ok := s.delivered[m.Slot]
	if !ok {
		return
	}
	s.cfg.Env.Send(from, &ProposalResp{
		Context:      m.Context,
		Instance:     m.Instance,
		Slot:         m.Slot,
		Payload:      del.Payload,
		ClaimedBytes: del.ClaimedBytes,
		ClaimedSigs:  del.ClaimedSigs,
		Cert:         del.Cert,
		InitStmt:     del.InitStmt,
	})
}

func (s *Instance) onProposalResp(_ types.ReplicaID, m *ProposalResp) {
	if _, dup := s.delivered[m.Slot]; dup {
		s.maybeComplete()
		return
	}
	d := types.Hash(m.Payload)
	if s.cfg.Accountable {
		if m.Cert == nil {
			return
		}
		expect := accountability.Statement{
			Context:  s.cfg.Context,
			Kind:     accountability.KindReady,
			Instance: s.cfg.Instance,
			Slot:     uint32(m.Slot),
			Value:    d,
		}
		if m.Cert.Stmt != expect {
			return
		}
		// Delivery needs 2t+1 readies; re-verify against committee size.
		if m.Cert.SignerCount(nil) < 2*types.MaxClassicFaults(len(s.members))+1 {
			return
		}
		if m.Cert.IsAggregate() {
			// One aggregate check, cached across receivers by the
			// pipeline's verdict map (a nil Certs verifier checks inline).
			if s.cfg.Certs.VerifyCertSigs(m.Cert, s.cfg.Signer) != nil {
				return
			}
		} else {
			for _, sig := range m.Cert.Sigs {
				if sig.Stmt != m.Cert.Stmt {
					return
				}
			}
			// Signature checks fan out across the pipeline's worker pool (a
			// nil Certs verifier runs them inline, same verdict).
			if s.cfg.Certs.VerifySignedBatch(m.Cert.Sigs, s.cfg.Signer) >= 0 {
				return
			}
		}
		if s.cfg.Log != nil {
			s.cfg.Log.RecordCertificate(m.Cert)
		}
	}
	if s.cfg.Validate != nil && !s.cfg.Validate(m.Slot, m.Payload) {
		return
	}
	if s.cfg.OnProposal != nil {
		s.cfg.OnProposal(m.Payload)
	}
	s.delivered[m.Slot] = rbc.Delivery{
		Broadcaster:  m.Slot,
		Payload:      m.Payload,
		Digest:       d,
		ClaimedBytes: m.ClaimedBytes,
		ClaimedSigs:  m.ClaimedSigs,
		Cert:         m.Cert,
		InitStmt:     m.InitStmt,
	}
	s.maybeComplete()
}

// Reevaluate re-runs quorum checks in every live binary consensus after a
// committee change.
func (s *Instance) Reevaluate() {
	for _, slot := range s.members {
		if b, ok := s.bins[slot]; ok {
			b.Reevaluate()
		}
	}
}
