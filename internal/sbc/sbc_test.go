package sbc

import (
	"fmt"
	"testing"
	"time"

	"github.com/zeroloss/zlb/internal/accountability"
	"github.com/zeroloss/zlb/internal/bincon"
	"github.com/zeroloss/zlb/internal/committee"
	"github.com/zeroloss/zlb/internal/crypto"
	"github.com/zeroloss/zlb/internal/latency"
	"github.com/zeroloss/zlb/internal/simnet"
	"github.com/zeroloss/zlb/internal/types"
)

// testNode hosts one SBC instance on a simnet node.
type testNode struct {
	inst *Instance
}

func (n *testNode) OnMessage(from types.ReplicaID, msg simnet.Message) {
	n.inst.OnMessage(from, msg)
}

func (n *testNode) OnTimer(payload any) {
	if p, ok := payload.(bincon.TimerPayload); ok {
		n.inst.OnTimer(p)
	}
}

type cluster struct {
	net     *simnet.Network
	nodes   map[types.ReplicaID]*testNode
	signers []*crypto.Signer
	views   map[types.ReplicaID]*committee.View
	decided map[types.ReplicaID]*Decision
	members []types.ReplicaID
}

// buildCluster wires n replicas running one SBC instance each.
func buildCluster(t *testing.T, n int, accountable bool, lat latency.Model, seed int64) *cluster {
	t.Helper()
	signers, _, err := crypto.GenerateCluster(crypto.SchemeSim, n, seed)
	if err != nil {
		t.Fatalf("generate cluster: %v", err)
	}
	members := make([]types.ReplicaID, n)
	for i := range members {
		members[i] = types.ReplicaID(i + 1)
	}
	c := &cluster{
		net:     simnet.New(simnet.Config{Latency: lat, Seed: seed}),
		nodes:   make(map[types.ReplicaID]*testNode),
		signers: signers,
		views:   make(map[types.ReplicaID]*committee.View),
		decided: make(map[types.ReplicaID]*Decision),
		members: members,
	}
	for i, id := range members {
		id := id
		signer := signers[i]
		c.net.AddNode(id, func(env simnet.Env) simnet.Handler {
			view := committee.NewView(members)
			c.views[id] = view
			log := accountability.NewLog(signer, nil)
			node := &testNode{}
			node.inst = New(Config{
				Context:     accountability.CtxMain,
				Instance:    1,
				Self:        id,
				View:        view,
				Signer:      signer,
				Log:         log,
				Env:         env,
				Accountable: accountable,
				OnDecide:    func(d *Decision) { c.decided[id] = d },
			})
			c.nodes[id] = node
			return node
		})
	}
	return c
}

func (c *cluster) proposeAll(skip map[types.ReplicaID]bool) {
	for _, id := range c.members {
		if skip[id] {
			continue
		}
		payload := []byte(fmt.Sprintf("proposal-from-%d", id))
		c.nodes[id].inst.Propose(payload, 0, 0)
	}
}

func TestSBCAllHonestAgree(t *testing.T) {
	for _, n := range []int{4, 7, 10} {
		for _, accountable := range []bool{true, false} {
			name := fmt.Sprintf("n=%d/accountable=%v", n, accountable)
			t.Run(name, func(t *testing.T) {
				c := buildCluster(t, n, accountable, latency.Uniform(5*time.Millisecond, 30*time.Millisecond), 42)
				c.proposeAll(nil)
				c.net.RunUntilQuiet(5 * time.Minute)
				if len(c.decided) != n {
					t.Fatalf("only %d of %d replicas decided", len(c.decided), n)
				}
				var ref types.Digest
				for i, id := range c.members {
					d := c.decided[id]
					if i == 0 {
						ref = d.Digest()
						continue
					}
					if d.Digest() != ref {
						t.Fatalf("replica %v decided %v, want %v (disagreement)", id, d.Digest(), ref)
					}
				}
				// SBC-Nontriviality-ish: with all honest, at least n−t
				// proposals must be included.
				d := c.decided[c.members[0]]
				included := 0
				for _, bit := range d.Bits {
					if bit {
						included++
					}
				}
				if min := n - types.MaxClassicFaults(n); included < min {
					t.Fatalf("only %d proposals included, want at least %d", included, min)
				}
			})
		}
	}
}

func TestSBCToleratesCrashedProposers(t *testing.T) {
	n := 7
	c := buildCluster(t, n, true, latency.Uniform(5*time.Millisecond, 30*time.Millisecond), 7)
	// Two crashed replicas: never propose, never answer.
	crashed := map[types.ReplicaID]bool{6: true, 7: true}
	for id := range crashed {
		c.net.SetUp(id, false)
	}
	c.proposeAll(crashed)
	c.net.RunUntilQuiet(10 * time.Minute)
	live := 0
	var ref types.Digest
	for _, id := range c.members {
		if crashed[id] {
			continue
		}
		d, ok := c.decided[id]
		if !ok {
			t.Fatalf("live replica %v did not decide", id)
		}
		if live == 0 {
			ref = d.Digest()
		} else if d.Digest() != ref {
			t.Fatalf("disagreement at replica %v", id)
		}
		live++
		// Crashed proposers' slots must be decided 0.
		for cid := range crashed {
			if d.Bits[cid] {
				t.Fatalf("slot of crashed proposer %v decided 1", cid)
			}
		}
	}
}

func TestSBCDecisionDigestDetectsDifferences(t *testing.T) {
	d1 := &Decision{
		Instance: 3,
		Bits:     map[types.ReplicaID]bool{1: true, 2: false},
		Proposals: map[types.ReplicaID]ProposalInfo{
			1: {Broadcaster: 1, Digest: types.Hash([]byte("a"))},
		},
	}
	d2 := &Decision{
		Instance: 3,
		Bits:     map[types.ReplicaID]bool{1: true, 2: true},
		Proposals: map[types.ReplicaID]ProposalInfo{
			1: {Broadcaster: 1, Digest: types.Hash([]byte("a"))},
			2: {Broadcaster: 2, Digest: types.Hash([]byte("b"))},
		},
	}
	if d1.Digest() == d2.Digest() {
		t.Fatal("different decisions share a digest")
	}
	d3 := &Decision{
		Instance: 3,
		Bits:     map[types.ReplicaID]bool{1: true, 2: false},
		Proposals: map[types.ReplicaID]ProposalInfo{
			1: {Broadcaster: 1, Digest: types.Hash([]byte("a"))},
		},
	}
	if d1.Digest() != d3.Digest() {
		t.Fatal("equal decisions have different digests")
	}
}

func TestSBCOrderedProposalsSorted(t *testing.T) {
	d := &Decision{
		Proposals: map[types.ReplicaID]ProposalInfo{
			3: {Broadcaster: 3},
			1: {Broadcaster: 1},
			2: {Broadcaster: 2},
		},
	}
	got := d.OrderedProposals()
	for i := 1; i < len(got); i++ {
		if got[i-1].Broadcaster >= got[i].Broadcaster {
			t.Fatalf("proposals not sorted: %v", got)
		}
	}
}
