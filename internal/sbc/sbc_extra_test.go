package sbc

import (
	"bytes"
	"testing"
	"time"

	"github.com/zeroloss/zlb/internal/latency"
	"github.com/zeroloss/zlb/internal/rbc"
	"github.com/zeroloss/zlb/internal/simnet"
	"github.com/zeroloss/zlb/internal/types"
)

// TestSBCValidateFiltersProposals: proposals rejected by the validity
// predicate never enter a decision (SBC-Validity).
func TestSBCValidateFiltersProposals(t *testing.T) {
	n := 7
	c := buildCluster(t, n, true, latency.Uniform(2*time.Millisecond, 15*time.Millisecond), 77)
	// Install a validator on every node that rejects replica 3's payload.
	for _, id := range c.members {
		c.nodes[id].inst.cfg.Validate = func(b types.ReplicaID, payload []byte) bool {
			return !bytes.Contains(payload, []byte("from-3"))
		}
	}
	c.proposeAll(nil)
	c.net.RunUntilQuiet(10 * time.Minute)
	for _, id := range c.members {
		d := c.decided[id]
		if d == nil {
			t.Fatalf("replica %v undecided", id)
		}
		if d.Bits[3] {
			t.Fatalf("replica %v included the invalid proposal", id)
		}
	}
}

// TestSBCProposalPull: a replica whose reliable broadcast never delivers
// (all INIT/ECHO suppressed toward it) still completes the instance by
// pulling certified proposals after the binary decisions.
func TestSBCProposalPull(t *testing.T) {
	n := 7
	c := buildCluster(t, n, true, latency.Uniform(2*time.Millisecond, 15*time.Millisecond), 78)
	starved := types.ReplicaID(7)
	c.net.DropRule = func(from, to types.ReplicaID, msg simnet.Message) bool {
		if to != starved {
			return false
		}
		switch msg.(type) {
		case *rbc.Init, *rbc.Echo:
			return true
		}
		return false
	}
	c.proposeAll(nil)
	c.net.RunUntilQuiet(10 * time.Minute)
	d := c.decided[starved]
	if d == nil {
		t.Fatal("starved replica never completed the instance")
	}
	ref := c.decided[c.members[0]]
	if d.Digest() != ref.Digest() {
		t.Fatal("starved replica decided a different superblock")
	}
	// Every 1-slot's payload was obtained (via READY-justified pulls).
	for slot, bit := range d.Bits {
		if bit {
			if _, ok := d.Proposals[slot]; !ok {
				t.Fatalf("slot %v decided 1 without payload", slot)
			}
		}
	}
}

func TestSBCDecisionCertificatesCoverAllSlots(t *testing.T) {
	n := 7
	c := buildCluster(t, n, true, latency.Uniform(2*time.Millisecond, 15*time.Millisecond), 79)
	c.proposeAll(nil)
	c.net.RunUntilQuiet(10 * time.Minute)
	d := c.decided[c.members[0]]
	for slot := range d.Bits {
		cert, ok := d.BinCerts[slot]
		if !ok || cert == nil {
			t.Fatalf("slot %v missing binary certificate", slot)
		}
		if cert.SignerCount(nil) < types.Quorum(n) {
			t.Fatalf("slot %v certificate below quorum", slot)
		}
	}
}

func TestSBCNonAccountableHasNoCerts(t *testing.T) {
	n := 7
	c := buildCluster(t, n, false, latency.Uniform(2*time.Millisecond, 15*time.Millisecond), 80)
	c.proposeAll(nil)
	c.net.RunUntilQuiet(10 * time.Minute)
	d := c.decided[c.members[0]]
	if d == nil {
		t.Fatal("undecided")
	}
	for slot, cert := range d.BinCerts {
		if cert != nil {
			t.Fatalf("Red Belly mode produced a certificate for slot %v", slot)
		}
	}
}

func TestSBCSlotObserver(t *testing.T) {
	n := 4
	c := buildCluster(t, n, true, latency.Uniform(2*time.Millisecond, 15*time.Millisecond), 81)
	type obs struct {
		slot  types.ReplicaID
		value bool
	}
	var seen []obs
	c.nodes[1].inst.cfg.OnSlotDecide = func(slot types.ReplicaID, value bool, _ types.Digest) {
		seen = append(seen, obs{slot, value})
	}
	c.proposeAll(nil)
	c.net.RunUntilQuiet(10 * time.Minute)
	if len(seen) != n {
		t.Fatalf("observed %d slot decisions, want %d", len(seen), n)
	}
}

func TestContextInstanceOf(t *testing.T) {
	est := &Instance{} // just to reference package; real check below
	_ = est
	msgs := []simnet.Message{
		&ProposalReq{Context: 2, Instance: 9},
		&ProposalResp{Context: 3, Instance: 11},
	}
	for _, m := range msgs {
		ctx, inst, ok := ContextInstanceOf(m)
		if !ok || ctx == 0 || inst == 0 {
			t.Fatalf("extraction failed for %T", m)
		}
	}
	if _, _, ok := ContextInstanceOf("not-a-protocol-message"); ok {
		t.Fatal("non-protocol message extracted")
	}
}
