package bench

import (
	"fmt"
	"io"

	"github.com/zeroloss/zlb/internal/load"
)

// RunLoadCampaigns runs every registered open-loop load campaign
// (internal/load) at each committee size. Results are ordered by
// committee size, then registration order — the deterministic layout
// `zlb-bench -experiment load` and the goldens in determinism_test.go
// rely on.
func RunLoadCampaigns(ns []int, seed int64) ([]*load.CampaignResult, error) {
	var out []*load.CampaignResult
	for _, n := range ns {
		for _, name := range load.Names() {
			c, err := load.BuildCampaign(name, n, seed)
			if err != nil {
				return nil, err
			}
			res, err := load.RunCampaign(c)
			if err != nil {
				return nil, fmt.Errorf("load %s n=%d: %w", name, n, err)
			}
			out = append(out, res)
		}
	}
	return out, nil
}

// PrintLoad writes each campaign's per-phase latency-percentile tables.
func PrintLoad(w io.Writer, results []*load.CampaignResult) {
	fmt.Fprintln(w, "# Open-loop load: submit-to-commit latency percentiles under admission control")
	for _, r := range results {
		fmt.Fprintln(w)
		if r.Description != "" {
			fmt.Fprintf(w, "## %s — %s\n", r.Name, r.Description)
		}
		fmt.Fprint(w, r.Format())
	}
}
