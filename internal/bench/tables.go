package bench

import (
	"fmt"
	"io"
	"sort"
	"time"

	"github.com/zeroloss/zlb/internal/adversary"
	"github.com/zeroloss/zlb/internal/bm"
	"github.com/zeroloss/zlb/internal/crypto"
	"github.com/zeroloss/zlb/internal/payment"
	"github.com/zeroloss/zlb/internal/types"
	"github.com/zeroloss/zlb/internal/utxo"
)

// Table1Row is one cell of Table 1: local time to merge two blocks with
// all transactions conflicting.
type Table1Row struct {
	BlockTxs int
	Merge    time.Duration
}

// BuildConflictingBlocks constructs two blocks of size n whose
// transactions all conflict (every transaction spends the same outputs on
// both branches), plus the ledger primed with one branch committed and a
// deposit large enough to fund the other — Table 1's worst case.
func BuildConflictingBlocks(n int) (ledger *bm.Ledger, local, remote *bm.Block, err error) {
	reg := crypto.NewRegistry(crypto.SchemeEd25519)
	scheme, err := crypto.NewScheme(crypto.SchemeEd25519, reg)
	if err != nil {
		return nil, nil, nil, err
	}
	rand := crypto.NewDeterministicRand(42)
	payer, err := scheme.GenerateKey(rand)
	if err != nil {
		return nil, nil, nil, err
	}
	wallet := utxo.NewWallet(payer, scheme)
	recvA, err := scheme.GenerateKey(rand)
	if err != nil {
		return nil, nil, nil, err
	}
	recvB, err := scheme.GenerateKey(rand)
	if err != nil {
		return nil, nil, nil, err
	}
	addrA := utxo.AddressOf(recvA.Public())
	addrB := utxo.AddressOf(recvB.Public())

	// The merge operates on a branch whose certificates (and transaction
	// signatures) were already verified by the reconciliation phase, so
	// the ledger is built without re-verification — Table 1 measures the
	// merge logic itself, as the paper does.
	ledger = bm.NewLedger(nil)
	// One UTXO per future transaction so every pair conflicts exactly on
	// its own outpoint.
	genesisTx := types.Hash([]byte("table1-genesis"))
	for i := 0; i < n; i++ {
		ledger.Table().Credit(
			utxo.Outpoint{TxID: genesisTx, Index: uint32(i)},
			utxo.Output{Account: wallet.Address(), Value: 100},
		)
	}
	ledger.AddDeposit(types.Amount(100 * n))

	txsA := make([]*utxo.Transaction, n)
	txsB := make([]*utxo.Transaction, n)
	for i := 0; i < n; i++ {
		in := []utxo.Input{{Prev: utxo.Outpoint{TxID: genesisTx, Index: uint32(i)}, Value: 100}}
		txA, err := wallet.Pay(in, []utxo.Output{{Account: addrA, Value: 100}})
		if err != nil {
			return nil, nil, nil, err
		}
		txB, err := wallet.Pay(in, []utxo.Output{{Account: addrB, Value: 100}})
		if err != nil {
			return nil, nil, nil, err
		}
		txsA[i], txsB[i] = txA, txB
	}
	local = bm.NewBlock(1, txsA)
	remote = bm.NewBlock(1, txsB)
	ledger.CommitBlock(local)
	return ledger, local, remote, nil
}

// RunTable1 measures the local block-merge time for the given block
// sizes (paper: 100, 1000, 10000 transactions, all conflicting). This is
// a real wall-clock measurement, like the paper's.
func RunTable1(sizes []int) ([]Table1Row, error) {
	rows := make([]Table1Row, 0, len(sizes))
	for _, n := range sizes {
		ledger, _, remote, err := BuildConflictingBlocks(n)
		if err != nil {
			return nil, err
		}
		start := time.Now()
		merged := ledger.MergeBlock(remote)
		elapsed := time.Since(start)
		if merged != n {
			return nil, fmt.Errorf("table1: merged %d of %d txs", merged, n)
		}
		rows = append(rows, Table1Row{BlockTxs: n, Merge: elapsed})
	}
	return rows, nil
}

// RunFig6 reproduces Figure 6: for each committee size and partition
// delay, measure the attack success probability ρ (successful
// disagreements over attacked instances), then derive the minimum
// finalization blockdepth for zero loss with D = G/10 via Theorem .5.
func RunFig6(ns []int, delays []DelaySpec, attacks []adversary.Attack, seed int64) ([]Fig6Point, error) {
	const instances = 4
	var out []Fig6Point
	for _, atk := range attacks {
		for _, d := range delays {
			for _, n := range ns {
				c, err := attackCluster(n, atk, d.Model, seed, instances)
				if err != nil {
					return nil, err
				}
				c.Start()
				c.RunUntilQuiet(30 * time.Minute)
				byInst := c.DisagreementsByInstance()
				successes := len(byInst)
				attempts := c.CommittedInstances()
				if attempts < instances {
					attempts = instances
				}
				rho := payment.MeasuredRho(successes, attempts)
				branches := payment.MaxBranchesCount(n, DeceitfulCount(n))
				if branches < 2 {
					branches = 2
				}
				depth := 0
				if rho >= 1 {
					rho = float64(attempts-1) / float64(attempts) // cap: finite depth
				}
				if rho > 0 {
					depth, err = payment.MinDepth(branches, 0.1, rho)
					if err != nil {
						return nil, err
					}
				}
				out = append(out, Fig6Point{
					N: n, Delay: d.Name, Attack: atk, Rho: rho, MinDepth: depth,
				})
			}
		}
	}
	return out, nil
}

// RunAppendixB reproduces the §B worked analysis: the minimum
// finalization blockdepth per deceitful ratio and attack success
// probability, with D = G/10.
func RunAppendixB() []AppendixBRow {
	var rows []AppendixBRow
	for _, delta := range []float64{0.5, 0.55, 0.6, 0.64, 0.66} {
		for _, rho := range []float64{0.55, 0.7, 0.9} {
			a := payment.MaxBranches(delta)
			depth, err := payment.MinDepth(a, 0.1, rho)
			if err != nil {
				continue
			}
			rows = append(rows, AppendixBRow{Delta: delta, Branches: a, Rho: rho, MinDepth: depth})
		}
	}
	return rows
}

// --- Printing in the paper's layout ---

// PrintFig3 writes the throughput series grouped by system.
func PrintFig3(w io.Writer, points []Fig3Point) {
	fmt.Fprintln(w, "# Figure 3: throughput (tx/s) vs number of replicas")
	fmt.Fprintf(w, "%-10s %6s %14s %10s %10s\n", "system", "n", "tx/s", "instances", "wall(s)")
	sorted := append([]Fig3Point(nil), points...)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].System != sorted[j].System {
			return sorted[i].System < sorted[j].System
		}
		return sorted[i].N < sorted[j].N
	})
	for _, p := range sorted {
		fmt.Fprintf(w, "%-10s %6d %14.0f %10d %10.2f\n", p.System, p.N, p.TxPerSec, p.Instances, p.WallSec)
	}
}

// PrintFig4 writes the disagreement series grouped by delay.
func PrintFig4(w io.Writer, points []Fig4Point) {
	if len(points) == 0 {
		return
	}
	fmt.Fprintf(w, "# Figure 4: disagreements vs replicas, %v attack, d=⌈5n/9⌉−1\n", points[0].Attack)
	fmt.Fprintf(w, "%-10s %6s %15s %12s\n", "delay", "n", "disagreements", "detect(s)")
	for _, p := range points {
		fmt.Fprintf(w, "%-10s %6d %15d %12.2f\n", p.Delay, p.N, p.Disagreements, p.DetectSec)
	}
}

// PrintTable1 writes the merge-time table.
func PrintTable1(w io.Writer, rows []Table1Row) {
	fmt.Fprintln(w, "# Table 1: time to merge locally two blocks, all transactions conflicting")
	fmt.Fprintf(w, "%-16s", "Blocksize (txs)")
	for _, r := range rows {
		fmt.Fprintf(w, " %10d", r.BlockTxs)
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "%-16s", "Time (ms)")
	for _, r := range rows {
		fmt.Fprintf(w, " %10.2f", float64(r.Merge.Microseconds())/1000)
	}
	fmt.Fprintln(w)
}

// PrintFig5 writes the membership-change timing panels.
func PrintFig5(w io.Writer, points []Fig5Point) {
	fmt.Fprintln(w, "# Figure 5: time to detect / exclude / include, f=⌈5n/9⌉−1")
	fmt.Fprintf(w, "%-10s %6s %12s %12s %12s\n", "delay", "n", "detect(s)", "exclude(s)", "include(s)")
	for _, p := range points {
		fmt.Fprintf(w, "%-10s %6d %12.2f %12.2f %12.2f\n", p.Delay, p.N, p.DetectSec, p.ExcludeSec, p.IncludeSec)
	}
}

// PrintCatchup writes the catch-up panel of Figure 5.
func PrintCatchup(w io.Writer, points []CatchupPoint) {
	fmt.Fprintln(w, "# Figure 5 (right): time to catch up per blocks and replicas")
	fmt.Fprintf(w, "%6s %8s %12s\n", "n", "blocks", "catchup(s)")
	for _, p := range points {
		fmt.Fprintf(w, "%6d %8d %12.2f\n", p.N, p.Blocks, p.CatchupSec)
	}
}

// PrintFig6 writes the minimum-blockdepth series.
func PrintFig6(w io.Writer, points []Fig6Point) {
	fmt.Fprintln(w, "# Figure 6: minimum finalization blockdepth m for zero-loss, D=G/10, f=⌈5n/9⌉−1")
	fmt.Fprintf(w, "%-20s %6s %8s %10s\n", "series", "n", "rho", "min depth")
	for _, p := range points {
		series := p.Delay
		if p.Attack == adversary.AttackRBCast {
			series += ", rbbcast"
		}
		fmt.Fprintf(w, "%-20s %6d %8.2f %10d\n", series, p.N, p.Rho, p.MinDepth)
	}
}

// PrintAppendixB writes the worked analysis table.
func PrintAppendixB(w io.Writer, rows []AppendixBRow) {
	fmt.Fprintln(w, "# Appendix B: minimum finalization blockdepth m(δ, ρ), D=G/10")
	fmt.Fprintf(w, "%8s %10s %8s %10s\n", "delta", "branches", "rho", "min depth")
	for _, r := range rows {
		fmt.Fprintf(w, "%8.2f %10d %8.2f %10d\n", r.Delta, r.Branches, r.Rho, r.MinDepth)
	}
}

// Catastrophic reproduces §5.3's catastrophic-delay scenario at a given
// committee size: disagreements under 5 s and 10 s uniform inter-partition
// delays for both attacks.
func Catastrophic(n int, seed int64) ([]Fig4Point, error) {
	d5, _ := DelayByName("5000ms")
	d10, _ := DelayByName("10000ms")
	var out []Fig4Point
	for _, atk := range []adversary.Attack{adversary.AttackBinary, adversary.AttackRBCast} {
		pts, err := RunFig4(Fig4Config{
			Ns:        []int{n},
			Delays:    []DelaySpec{d5, d10},
			Attack:    atk,
			Seed:      seed,
			Instances: 6,
		})
		if err != nil {
			return nil, err
		}
		out = append(out, pts...)
	}
	return out, nil
}
