package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/debug"
	"time"
)

// JSONReport is the machine-readable envelope zlb-bench emits per
// experiment (BENCH_<experiment>.json): the perf trajectory across PRs
// is tracked by diffing these files instead of prose-only EXPERIMENTS.md
// tables. The provenance block makes every report attributable: which
// commit produced it, on how many cores, when, with which toolchain.
type JSONReport struct {
	// Experiment names the run (fig3, table1, scenarios, ...).
	Experiment string `json:"experiment"`
	// Seed / Full echo the zlb-bench invocation, so a report is
	// reproducible from its own metadata.
	Seed int64 `json:"seed"`
	Full bool  `json:"full"`
	// Commit is the VCS revision the binary was built from (with a
	// "-dirty" suffix for modified trees), or "unknown" outside a build
	// with VCS stamping.
	Commit string `json:"commit"`
	// GOMAXPROCS is the worker-pool width the commit pipeline ran with —
	// wall-clock numbers are only comparable at equal widths.
	GOMAXPROCS int `json:"gomaxprocs"`
	// Timestamp is the report's creation time (UTC, RFC 3339).
	Timestamp string `json:"timestamp"`
	// GoVersion is the toolchain that built the binary.
	GoVersion string `json:"go_version"`
	// Data is the experiment's point slice (Fig3Point, Fig4Point,
	// scenario.Result, ...), marshaled with its exported fields.
	Data any `json:"data"`
}

// vcsRevision reads the commit hash out of the binary's embedded build
// info; "unknown" when the binary was not built from a VCS checkout
// (e.g. `go test` in a module cache).
func vcsRevision() string {
	info, ok := debug.ReadBuildInfo()
	if !ok {
		return "unknown"
	}
	rev, dirty := "", false
	for _, s := range info.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.modified":
			dirty = s.Value == "true"
		}
	}
	if rev == "" {
		return "unknown"
	}
	if dirty {
		return rev + "-dirty"
	}
	return rev
}

// WriteJSON writes one experiment's report to <dir>/BENCH_<name>.json,
// creating dir if needed.
func WriteJSON(dir, name string, seed int64, full bool, data any) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("bench: %w", err)
	}
	report := JSONReport{
		Experiment: name,
		Seed:       seed,
		Full:       full,
		Commit:     vcsRevision(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Timestamp:  time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		Data:       data,
	}
	raw, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return fmt.Errorf("bench: marshaling %s: %w", name, err)
	}
	raw = append(raw, '\n')
	path := filepath.Join(dir, "BENCH_"+name+".json")
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		return fmt.Errorf("bench: %w", err)
	}
	return nil
}
