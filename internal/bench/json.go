package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// JSONReport is the machine-readable envelope zlb-bench emits per
// experiment (BENCH_<experiment>.json): the perf trajectory across PRs
// is tracked by diffing these files instead of prose-only EXPERIMENTS.md
// tables.
type JSONReport struct {
	// Experiment names the run (fig3, table1, scenarios, ...).
	Experiment string `json:"experiment"`
	// Seed / Full echo the zlb-bench invocation, so a report is
	// reproducible from its own metadata.
	Seed int64 `json:"seed"`
	Full bool  `json:"full"`
	// Data is the experiment's point slice (Fig3Point, Fig4Point,
	// scenario.Result, ...), marshaled with its exported fields.
	Data any `json:"data"`
}

// WriteJSON writes one experiment's report to <dir>/BENCH_<name>.json,
// creating dir if needed.
func WriteJSON(dir, name string, seed int64, full bool, data any) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("bench: %w", err)
	}
	report := JSONReport{Experiment: name, Seed: seed, Full: full, Data: data}
	raw, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return fmt.Errorf("bench: marshaling %s: %w", name, err)
	}
	raw = append(raw, '\n')
	path := filepath.Join(dir, "BENCH_"+name+".json")
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		return fmt.Errorf("bench: %w", err)
	}
	return nil
}
