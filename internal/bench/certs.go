package bench

import (
	"fmt"
	"io"

	"github.com/zeroloss/zlb/internal/accountability"
	"github.com/zeroloss/zlb/internal/bincon"
	"github.com/zeroloss/zlb/internal/crypto"
	"github.com/zeroloss/zlb/internal/types"
	"github.com/zeroloss/zlb/internal/wire"
)

// CertsPoint is one row of the certificate-size experiment: the measured
// cost of a quorum certificate for one committee size, scheme and form.
// WireBytes is the actual internal/wire encoding length; ModelBytes and
// DecideBytes/SigOps are what the simulator's cost model charges (the
// numbers that move virtual-time results when AggregateCerts is on).
type CertsPoint struct {
	N          int    `json:"n"`
	Quorum     int    `json:"quorum"`
	Scheme     string `json:"scheme"`
	Form       string `json:"form"` // "signed" | "aggregate"
	WireBytes  int    `json:"wire_bytes"`
	ModelBytes int    `json:"model_bytes"`
	// DecideBytes is the modeled size of one bincon DECIDE message
	// carrying this certificate (the per-slot message every decision
	// broadcast and catch-up transfer pays per certificate).
	DecideBytes int `json:"decide_bytes"`
	SigOps      int `json:"sig_ops"`
}

// RunCerts measures quorum certificates across committee sizes, schemes
// and forms: real keys, real signatures, real wire encodings. Schemes
// without the crypto.Aggregator capability contribute only their signed
// row — that absence is the point of the capability matrix.
func RunCerts(ns []int, seed int64) ([]CertsPoint, error) {
	var out []CertsPoint
	for _, n := range ns {
		for _, kind := range []crypto.SchemeKind{crypto.SchemeECDSA, crypto.SchemeEd25519, crypto.SchemeSim} {
			signers, reg, err := crypto.GenerateCluster(kind, n, seed)
			if err != nil {
				return nil, err
			}
			stmt := accountability.Statement{
				Context:  accountability.CtxMain,
				Kind:     accountability.KindAux,
				Instance: 1,
				Value:    accountability.BoolDigest(true),
			}
			quorum := types.Quorum(n)
			sigs := make([]accountability.Signed, 0, quorum)
			for _, s := range signers[:quorum] {
				sg, err := accountability.SignStatement(s, stmt)
				if err != nil {
					return nil, err
				}
				sigs = append(sigs, sg)
			}
			forms := []bool{false}
			if _, ok := signers[0].Scheme().(crypto.Aggregator); ok {
				forms = append(forms, true)
			}
			for _, aggregate := range forms {
				cert, err := accountability.NewCertificateFor(signers[0], stmt, sigs, aggregate)
				if err != nil {
					return nil, err
				}
				data, err := wire.EncodeCertificate(kind, reg, cert)
				if err != nil {
					return nil, err
				}
				form := "signed"
				if cert.IsAggregate() {
					form = "aggregate"
				}
				out = append(out, CertsPoint{
					N:           n,
					Quorum:      quorum,
					Scheme:      kind.String(),
					Form:        form,
					WireBytes:   len(data),
					ModelBytes:  cert.ModelBytes(),
					DecideBytes: (&bincon.Decide{Cert: cert}).SimBytes(),
					SigOps:      cert.SigOps(),
				})
			}
		}
	}
	return out, nil
}

// PrintCerts writes the certificate-size table, with the aggregate
// shrink factor against the same scheme's signed form.
func PrintCerts(w io.Writer, points []CertsPoint) {
	fmt.Fprintln(w, "# Certificate cost per committee size, scheme and form (quorum = ⌈2n/3⌉)")
	fmt.Fprintf(w, "%6s %8s %-12s %-10s %10s %12s %13s %8s %8s\n",
		"n", "quorum", "scheme", "form", "wire(B)", "model(B)", "decide(B)", "sigops", "shrink")
	signedDecide := map[string]int{}
	for _, p := range points {
		key := fmt.Sprintf("%d/%s", p.N, p.Scheme)
		if p.Form == "signed" {
			signedDecide[key] = p.DecideBytes
		}
	}
	for _, p := range points {
		shrink := "-"
		if p.Form == "aggregate" {
			if base, ok := signedDecide[fmt.Sprintf("%d/%s", p.N, p.Scheme)]; ok && p.DecideBytes > 0 {
				shrink = fmt.Sprintf("%.1fx", float64(base)/float64(p.DecideBytes))
			}
		}
		fmt.Fprintf(w, "%6d %8d %-12s %-10s %10d %12d %13d %8d %8s\n",
			p.N, p.Quorum, p.Scheme, p.Form, p.WireBytes, p.ModelBytes, p.DecideBytes, p.SigOps, shrink)
	}
}
