// Package bench contains the experiment drivers that regenerate every
// table and figure of the paper's evaluation (§5 and Appendix B) on the
// simulated substrate. Each driver returns structured rows; the
// zlb-bench command and the repository's top-level benchmarks print them
// in the paper's layout. See EXPERIMENTS.md for the paper-vs-measured
// record.
package bench

import (
	"fmt"
	"io"
	"sort"
	"time"

	"github.com/zeroloss/zlb/internal/adversary"
	"github.com/zeroloss/zlb/internal/committee"
	"github.com/zeroloss/zlb/internal/crypto"
	"github.com/zeroloss/zlb/internal/harness"
	"github.com/zeroloss/zlb/internal/hotstuff"
	"github.com/zeroloss/zlb/internal/latency"
	"github.com/zeroloss/zlb/internal/load"
	"github.com/zeroloss/zlb/internal/obs"
	"github.com/zeroloss/zlb/internal/simnet"
	"github.com/zeroloss/zlb/internal/types"
)

// System identifies a compared system (Fig. 3).
type System string

// The four systems of Figure 3.
const (
	SystemZLB       System = "ZLB"
	SystemRedBelly  System = "RedBelly"
	SystemPolygraph System = "Polygraph"
	SystemHotStuff  System = "HotStuff"
)

// Defaults shared by the experiments, matching §5: ~400-byte Bitcoin
// transactions, batches of 10,000 per proposal.
const (
	TxBytes   = 400
	BatchTxs  = 10_000
	BatchSize = TxBytes * BatchTxs
)

// costModel returns the c4.xlarge-calibrated CPU model. sigFactor scales
// signature verification; sendBase overrides the per-message send cost
// (0 keeps the default) — Polygraph's RSA certificate construction and
// serialization charge every protocol message, which is what makes it
// fall behind ZLB past ≈40 replicas (§5.1) while its lighter
// (non-accountable) verification keeps it ahead below that.
func costModel(sigFactor float64) simnet.CostModel {
	c := simnet.DefaultCostModel()
	c.SigVerify = time.Duration(float64(c.SigVerify) * sigFactor)
	return c
}

func costModelSend(sigFactor float64, sendBase time.Duration) simnet.CostModel {
	c := costModel(sigFactor)
	if sendBase > 0 {
		c.SendBase = sendBase
	}
	return c
}

// Fig3Point is one point of Figure 3: decision throughput vs committee
// size. TxPerSec, Instances and VirtualSec are virtual-time metrics —
// deterministic for a fixed seed, bit-identical across every execution
// mode, and what the perf gate compares. WallSec is the real elapsed time
// of the point's simulation (informational only: it depends on the
// runner, GOMAXPROCS and the simulation mode). P50Ms/P99Ms are the
// nearest-rank percentiles of the gaps between successive commits at the
// measuring replica, in virtual milliseconds — deterministic like
// TxPerSec, but informational in the gate (baselines written before the
// fields existed render a dash).
type Fig3Point struct {
	System     System
	N          int
	TxPerSec   float64
	Instances  int
	VirtualSec float64
	WallSec    float64
	P50Ms      float64 `json:"p50_ms,omitempty"`
	P99Ms      float64 `json:"p99_ms,omitempty"`
}

// Fig3Config parameterizes the throughput comparison.
type Fig3Config struct {
	Ns        []int
	Instances uint64
	Seed      int64
	// Systems defaults to all four.
	Systems []System
	// Sequential forces the commit pipeline off (harness.Options.
	// Sequential) — the A/B switch behind EXPERIMENTS.md's wall-clock
	// table. Virtual-time throughput is identical either way.
	Sequential bool
	// SequentialSim forces the simulator's sequential event loop instead
	// of conservative parallel windows (harness.Options.SequentialSim) —
	// the A/B switch for the parallel-simnet wall-clock table. All
	// virtual-time metrics are identical either way.
	SequentialSim bool
	// TraceSink, when set, receives one obs run-header line followed by
	// the merged deterministic event stream (JSONL) for every ZLB-stack
	// point (HotStuff has no instrumented consensus stack and emits
	// nothing). tools/tracelat turns the stream into per-phase latency
	// percentiles.
	TraceSink io.Writer
}

// RunFig3 reproduces Figure 3: throughput of ZLB, Red Belly, Polygraph
// and HotStuff over the five-region AWS latency matrix with f = 0.
// Transaction verification is sharded t+1 ways across replicas as in Red
// Belly's distributed verification, which both SBC systems (and
// Polygraph) inherit.
func RunFig3(cfg Fig3Config) ([]Fig3Point, error) {
	if cfg.Instances == 0 {
		cfg.Instances = 3
	}
	systems := cfg.Systems
	if systems == nil {
		systems = []System{SystemZLB, SystemRedBelly, SystemPolygraph, SystemHotStuff}
	}
	var out []Fig3Point
	for _, n := range cfg.Ns {
		for _, sys := range systems {
			p, err := runFig3Point(sys, n, cfg.Instances, cfg.Seed, cfg.Sequential, cfg.SequentialSim, cfg.TraceSink)
			if err != nil {
				return nil, fmt.Errorf("fig3 %s n=%d: %w", sys, n, err)
			}
			out = append(out, p)
		}
	}
	return out, nil
}

// shardedSigOps models Red Belly-style distributed transaction
// verification: each replica verifies a t+1/n share of each batch.
func shardedSigOps(n int) int {
	t := types.MaxClassicFaults(n)
	return BatchTxs * (t + 1) / n
}

// ZLBFig3Options is the exact harness configuration of the fig3 ZLB
// series. It is exported as the single source of truth: the root
// determinism suite (TestParallelSimnetBitIdentical) and the simulator
// A/B benchmark in internal/harness derive their clusters from it, so
// the "fig3 n=30 is bit-identical" pins always cover the configuration
// CI's perf gate actually runs.
func ZLBFig3Options(n int, instances uint64, seed int64) harness.Options {
	return harness.Options{
		N:            n,
		MaxInstances: instances,
		BaseLatency:  latency.NewAWSMatrix(),
		Seed:         seed,
		BatchTxs:     shardedSigOps(n),
		BatchBytes:   BatchSize,
		PoolSize:     1, // no membership changes expected at f=0
		Accountable:  true,
		Recover:      true,
		Cost:         costModel(1),
		CoordTimeout: func(r types.Round) time.Duration {
			return 600 * time.Millisecond * time.Duration(r+1)
		},
	}
}

func runFig3Point(sys System, n int, instances uint64, seed int64, sequential, sequentialSim bool, traceSink io.Writer) (Fig3Point, error) {
	if sys == SystemHotStuff {
		return runFig3HotStuff(n, instances, seed, sequentialSim)
	}
	opts := ZLBFig3Options(n, instances, seed)
	opts.Sequential = sequential
	opts.SequentialSim = sequentialSim
	var tracer *obs.Tracer
	if traceSink != nil {
		tracer = obs.NewTracer()
		opts.Tracer = tracer
	}
	switch sys {
	case SystemZLB:
		// ZLBFig3Options is the ZLB configuration already.
	case SystemRedBelly:
		opts.Accountable = false
		opts.Recover = false
	case SystemPolygraph:
		opts.Accountable = true
		opts.Recover = false
		// Polygraph verifies less (its reliable broadcast and distributed
		// verification are not accountable): 0.55× verification cost. Its
		// RSA certificates, however, charge every message sent: that
		// n²-scaling overhead overtakes the verification saving at ≈40
		// replicas, reproducing the paper's crossover.
		opts.Cost = costModelSend(0.55, 900*time.Microsecond)
	default:
		return Fig3Point{}, fmt.Errorf("unknown system %q", sys)
	}
	c, err := harness.New(opts)
	if err != nil {
		return Fig3Point{}, err
	}
	wallStart := time.Now()
	c.Start()
	c.RunUntilQuiet(30 * time.Minute)
	wall := time.Since(wallStart).Seconds()
	if c.Exhausted() {
		return Fig3Point{}, fmt.Errorf("simulator exhausted its MaxEvents budget: metrics would come from a truncated run")
	}
	committed := c.CommittedInstances()
	// Throughput counts decided transactions over the virtual time span;
	// scale the sharded sigops back to full batches.
	tx := 0
	honest := c.HonestMembers()
	var last time.Duration
	ats := make([]time.Duration, 0, len(c.Commits[honest[0]]))
	for _, commit := range c.Commits[honest[0]] {
		perProposal := BatchTxs
		for range commit.Decision.Proposals {
			tx += perProposal
		}
		if commit.At > last {
			last = commit.At
		}
		ats = append(ats, commit.At)
	}
	tps := 0.0
	if last > 0 {
		tps = float64(tx) / last.Seconds()
	}
	p50, p99 := commitGapPercentiles(ats)
	if tracer != nil {
		if err := obs.WriteRunHeader(traceSink, obs.RunHeader{Experiment: "fig3", System: string(sys), N: n, Seed: seed}); err != nil {
			return Fig3Point{}, fmt.Errorf("trace sink: %w", err)
		}
		if err := tracer.WriteJSONL(traceSink); err != nil {
			return Fig3Point{}, fmt.Errorf("trace sink: %w", err)
		}
	}
	return Fig3Point{System: sys, N: n, TxPerSec: tps, Instances: committed, VirtualSec: last.Seconds(), WallSec: wall, P50Ms: p50, P99Ms: p99}, nil
}

// commitGapPercentiles reduces the measuring replica's commit times to
// the nearest-rank p50/p99 of the gaps between successive commits, in
// virtual milliseconds. Like TxPerSec this is a pure virtual-time
// metric: deterministic for a fixed seed, so a change in the JSON points
// is always a real protocol or commit-path change.
func commitGapPercentiles(ats []time.Duration) (p50, p99 float64) {
	if len(ats) < 2 {
		return 0, 0
	}
	sort.Slice(ats, func(i, j int) bool { return ats[i] < ats[j] })
	gaps := make([]time.Duration, 0, len(ats)-1)
	for i := 1; i < len(ats); i++ {
		gaps = append(gaps, ats[i]-ats[i-1])
	}
	sort.Slice(gaps, func(i, j int) bool { return gaps[i] < gaps[j] })
	ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
	return ms(load.Percentile(gaps, 0.50)), ms(load.Percentile(gaps, 0.99))
}

func runFig3HotStuff(n int, instances uint64, seed int64, sequentialSim bool) (Fig3Point, error) {
	signers, _, err := crypto.GenerateCluster(crypto.SchemeSim, n, seed)
	if err != nil {
		return Fig3Point{}, err
	}
	members := make([]types.ReplicaID, n)
	for i := range members {
		members[i] = types.ReplicaID(i + 1)
	}
	net := simnet.New(simnet.Config{
		Latency:       latency.NewAWSMatrix(),
		Cost:          costModel(1),
		Seed:          seed,
		SequentialSim: sequentialSim,
	})
	replicas := make(map[types.ReplicaID]*hotstuff.Replica, n)
	type commitRec struct {
		txs int
		at  time.Duration
	}
	// Dense per-replica slices: each handler appends only to its own
	// entry, so the parallel simulator's concurrent callbacks never touch
	// shared map internals.
	commits := make([][]commitRec, n+1)
	// HotStuff is benchmarked with dedicated clients pre-transmitting
	// proposals, so servers exchange digests (§5.1); the leader still
	// pays the batch's bandwidth once per view in our model, which is
	// what keeps its throughput flat. HotStuff does not verify
	// transactions (§5.1), hence claimedTxs carries no sig ops.
	maxViews := instances * 20 // sustained rate over many views
	if maxViews < 40 {
		maxViews = 40
	}
	// The leader's proposal multicast departs serially: n copies of a
	// 4 MB batch at ~32 ms of modeled bandwidth each, and a QC needs
	// votes from a ⌈2n/3⌉ quorum, whose last proposal copy departs at
	// ~2n/3 × 32 ms. At n=90 that is 1.92 s — leaving under 80 ms of a
	// flat 2 s pacemaker for delivery and the vote round trip, which the
	// AWS latencies exceed, so every view timed out and the sweep
	// committed nothing. At n=80 the quorum share is 1.73 s and views
	// complete. Scale the view timeout with the committee like a real
	// pacemaker; the timer is unobservable in views that complete, so
	// every n≤80 point is bit-identical to the flat timeout.
	baseTimeout := 2 * time.Second
	if scaled := time.Duration(n) * 35 * time.Millisecond; scaled > baseTimeout {
		baseTimeout = scaled
	}
	for i, id := range members {
		id := id
		signer := signers[i]
		net.AddNode(id, func(env simnet.Env) simnet.Handler {
			r := hotstuff.New(hotstuff.Config{
				Self:   id,
				View:   committee.NewView(members),
				Signer: signer,
				Env:    env,
				BatchSource: func(view uint64) ([]byte, int, int) {
					return []byte(fmt.Sprintf("hs-%d", view)), BatchSize, BatchTxs
				},
				OnCommit: func(b *hotstuff.Block) {
					commits[int(id)] = append(commits[int(id)], commitRec{txs: b.ClaimedTxs, at: env.Now()})
				},
				BaseTimeout: baseTimeout,
				MaxViews:    maxViews,
			})
			replicas[id] = r
			return r
		})
	}
	wallStart := time.Now()
	for _, id := range members {
		replicas[id].Start()
	}
	net.RunUntilQuiet(30 * time.Minute)
	wall := time.Since(wallStart).Seconds()
	if net.Exhausted {
		return Fig3Point{}, fmt.Errorf("simulator exhausted its MaxEvents budget: metrics would come from a truncated run")
	}
	// Leaders learn of late QCs first; measure at the replica that
	// committed the most.
	var recs []commitRec
	for _, id := range members {
		if len(commits[int(id)]) > len(recs) {
			recs = commits[int(id)]
		}
	}
	tx := 0
	var lastAt time.Duration
	ats := make([]time.Duration, 0, len(recs))
	for _, r := range recs {
		tx += r.txs
		if r.at > lastAt {
			lastAt = r.at
		}
		ats = append(ats, r.at)
	}
	tps := 0.0
	if lastAt > 0 {
		tps = float64(tx) / lastAt.Seconds()
	}
	p50, p99 := commitGapPercentiles(ats)
	return Fig3Point{System: SystemHotStuff, N: n, TxPerSec: tps, Instances: len(recs), VirtualSec: lastAt.Seconds(), WallSec: wall, P50Ms: p50, P99Ms: p99}, nil
}

// DelaySpec names a partition-delay model of Figures 4-6.
type DelaySpec struct {
	Name  string
	Model latency.Model
}

// StandardDelays returns the paper's delay series: uniform 200/500/1000
// ms, the Gamma distribution and the AWS-sampled distribution.
func StandardDelays() []DelaySpec {
	return []DelaySpec{
		{Name: "200ms", Model: latency.UniformMean(200 * time.Millisecond)},
		{Name: "500ms", Model: latency.UniformMean(500 * time.Millisecond)},
		{Name: "1000ms", Model: latency.UniformMean(1000 * time.Millisecond)},
		{Name: "gamma", Model: latency.GammaInternet()},
		{Name: "aws-like", Model: latency.Jittered(latency.NewAWSMatrix(), 0.2)},
	}
}

// DelayByName resolves one delay spec, including the catastrophic 5 s and
// 10 s delays of §5.3 and Fig. 5's 10000 ms point.
func DelayByName(name string) (DelaySpec, error) {
	for _, d := range StandardDelays() {
		if d.Name == name {
			return d, nil
		}
	}
	switch name {
	case "5000ms", "5s":
		return DelaySpec{Name: "5000ms", Model: latency.UniformMean(5 * time.Second)}, nil
	case "10000ms", "10s":
		return DelaySpec{Name: "10000ms", Model: latency.UniformMean(10 * time.Second)}, nil
	}
	return DelaySpec{}, fmt.Errorf("bench: unknown delay %q", name)
}

// Fig4Point is one point of Figure 4: disagreements per committee size
// under a coalition attack with d = ⌈5n/9⌉−1.
type Fig4Point struct {
	N             int
	Delay         string
	Attack        adversary.Attack
	Disagreements int
	Detected      bool
	DetectSec     float64
}

// Fig4Config parameterizes the disagreement experiments.
type Fig4Config struct {
	Ns        []int
	Delays    []DelaySpec
	Attack    adversary.Attack
	Seed      int64
	Instances uint64
	Runs      int
}

// DeceitfulCount is d = ⌈5n/9⌉ − 1, the coalition size used throughout
// the paper's attack experiments (delegates to the adversary package,
// which owns the coalition arithmetic).
func DeceitfulCount(n int) int { return adversary.DeceitfulCount(n) }

// RunFig4 reproduces Figure 4 (top: binary consensus attack; bottom:
// reliable broadcast attack): the number of disagreeing decisions per
// committee size for each partition-delay model, averaged over Runs
// seeds.
func RunFig4(cfg Fig4Config) ([]Fig4Point, error) {
	if cfg.Instances == 0 {
		cfg.Instances = 4
	}
	if cfg.Runs == 0 {
		cfg.Runs = 1
	}
	var out []Fig4Point
	for _, d := range cfg.Delays {
		for _, n := range cfg.Ns {
			total := 0
			detected := false
			detectSum := 0.0
			detectCount := 0
			for run := 0; run < cfg.Runs; run++ {
				c, err := attackCluster(n, cfg.Attack, d.Model, cfg.Seed+int64(run)*101, cfg.Instances)
				if err != nil {
					return nil, err
				}
				c.Start()
				c.RunUntilQuiet(30 * time.Minute)
				if c.Exhausted() {
					return nil, fmt.Errorf("fig4 n=%d %s: simulator exhausted its MaxEvents budget", n, d.Name)
				}
				total += c.Disagreements()
				if dt, ok := c.DetectionTime(); ok {
					detected = true
					detectSum += dt.Seconds()
					detectCount++
				}
			}
			p := Fig4Point{
				N:             n,
				Delay:         d.Name,
				Attack:        cfg.Attack,
				Disagreements: total / cfg.Runs,
				Detected:      detected,
			}
			if detectCount > 0 {
				p.DetectSec = detectSum / float64(detectCount)
			}
			out = append(out, p)
		}
	}
	return out, nil
}

func attackCluster(n int, attack adversary.Attack, delay latency.Model, seed int64, instances uint64) (*harness.Cluster, error) {
	return harness.New(harness.Options{
		N:              n,
		Deceitful:      DeceitfulCount(n),
		Attack:         attack,
		Accountable:    true,
		Recover:        true,
		MaxInstances:   instances,
		BaseLatency:    latency.Jittered(latency.NewAWSMatrix(), 0.2),
		PartitionDelay: delay,
		Cost:           costModel(1),
		Seed:           seed,
		// The attack experiments run consensus at wire speed (the paper's
		// Fig. 4 measures disagreements, not throughput): a short round
		// timeout lets a partition finish its instance before the other
		// partition's conflicting evidence crosses the injected delay —
		// for delays of 500 ms and up, but not for 200 ms, which is the
		// paper's observed crossover.
		CoordTimeout: func(r types.Round) time.Duration {
			return 120 * time.Millisecond * time.Duration(r+1)
		},
	})
}

// Fig5Point is one point of Figure 5: membership-change phase timings.
type Fig5Point struct {
	N          int
	Delay      string
	DetectSec  float64
	ExcludeSec float64
	IncludeSec float64
	Recovered  bool
}

// RunFig5 reproduces Figure 5 (left three panels): time to detect ⌈n/3⌉
// deceitful replicas, to run the exclusion consensus, and to run the
// inclusion consensus, per delay model and committee size.
func RunFig5(ns []int, delays []DelaySpec, seed int64) ([]Fig5Point, error) {
	var out []Fig5Point
	for _, d := range delays {
		for _, n := range ns {
			c, err := attackCluster(n, adversary.AttackBinary, d.Model, seed, 3)
			if err != nil {
				return nil, err
			}
			c.Start()
			c.RunUntilQuiet(60 * time.Minute)
			if c.Exhausted() {
				return nil, fmt.Errorf("fig5 n=%d %s: simulator exhausted its MaxEvents budget", n, d.Name)
			}
			p := Fig5Point{N: n, Delay: d.Name}
			if dt, ok := c.DetectionTime(); ok {
				p.DetectSec = dt.Seconds()
			}
			if ex, ok := c.ExclusionTime(); ok {
				p.ExcludeSec = ex.Seconds()
				p.Recovered = true
			}
			if inc, ok := c.InclusionTime(); ok {
				p.IncludeSec = inc.Seconds()
			}
			out = append(out, p)
		}
	}
	return out, nil
}

// CatchupPoint is one point of Figure 5 (right): time for an included
// replica to verify the shipped chain, per chain length and committee
// size.
type CatchupPoint struct {
	N          int
	Blocks     int
	CatchupSec float64
}

// RunCatchup reproduces Figure 5 (right): the catch-up time grows with
// the committee size because every block's certificates carry ⌈2n/3⌉
// signatures to verify.
func RunCatchup(ns []int, blockCounts []int, seed int64) ([]CatchupPoint, error) {
	var out []CatchupPoint
	for _, n := range ns {
		for _, blocks := range blockCounts {
			// Run enough instances to build the chain, then attack so a
			// membership change ships it to a joiner.
			c, err := harness.New(harness.Options{
				N:              n,
				Deceitful:      DeceitfulCount(n),
				Attack:         adversary.AttackBinary,
				Accountable:    true,
				Recover:        true,
				MaxInstances:   uint64(blocks),
				BaseLatency:    latency.Jittered(latency.NewAWSMatrix(), 0.2),
				PartitionDelay: latency.UniformMean(800 * time.Millisecond),
				Cost:           costModel(1),
				Seed:           seed + int64(n*1000+blocks),
				AttackAfter:    uint64(blocks), // fork on the last instance
				CoordTimeout: func(r types.Round) time.Duration {
					return 400 * time.Millisecond * time.Duration(r+1)
				},
			})
			if err != nil {
				return nil, err
			}
			c.Start()
			c.RunUntilQuiet(60 * time.Minute)
			if c.Exhausted() {
				return nil, fmt.Errorf("catchup n=%d blocks=%d: simulator exhausted its MaxEvents budget", n, blocks)
			}
			point := CatchupPoint{N: n, Blocks: blocks}
			// Catch-up time: from the first membership change completion
			// to the joiner finishing verification.
			var changeDone time.Duration
			for _, id := range c.HonestMembers() {
				for _, res := range c.ChangeResults[id] {
					if changeDone == 0 || res.IncludedAt < changeDone {
						changeDone = res.IncludedAt
					}
				}
			}
			var joined time.Duration
			for _, at := range c.JoinVerified {
				if at > joined {
					joined = at
				}
			}
			if joined > changeDone && changeDone > 0 {
				point.CatchupSec = (joined - changeDone).Seconds()
			}
			out = append(out, point)
		}
	}
	return out, nil
}

// Fig6Point is one point of Figure 6: the minimum finalization blockdepth
// for zero loss, derived from the measured attack success probability.
type Fig6Point struct {
	N        int
	Delay    string
	Attack   adversary.Attack
	Rho      float64
	MinDepth int
}

// AppendixBRow is one row of the §B worked analysis.
type AppendixBRow struct {
	Delta    float64
	Branches int
	Rho      float64
	MinDepth int
}
