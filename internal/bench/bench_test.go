package bench

import (
	"testing"
	"time"

	"github.com/zeroloss/zlb/internal/adversary"
)

func TestFig3SmallScaleShape(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	points, err := RunFig3(Fig3Config{Ns: []int{10}, Instances: 2, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	bysys := map[System]float64{}
	for _, p := range points {
		if p.TxPerSec <= 0 {
			t.Fatalf("%s n=%d: zero throughput", p.System, p.N)
		}
		bysys[p.System] = p.TxPerSec
	}
	// Paper shape at small n: Red Belly ≥ ZLB (accountability costs),
	// Polygraph ≥ ZLB below ~40 replicas, HotStuff lowest... at n=10
	// HotStuff can still be competitive; the hard requirement is
	// RBB ≥ ZLB.
	if bysys[SystemRedBelly] < bysys[SystemZLB] {
		t.Errorf("Red Belly (%.0f) slower than ZLB (%.0f) at n=10", bysys[SystemRedBelly], bysys[SystemZLB])
	}
}

func TestTable1MergeShape(t *testing.T) {
	// Larger sizes amortize fixed overheads; small blocks are too noisy
	// for a scaling assertion on shared CI machines.
	rows, err := RunTable1([]int{1000, 10000})
	if err != nil {
		t.Fatal(err)
	}
	if rows[0].Merge <= 0 || rows[1].Merge <= 0 {
		t.Fatal("non-positive merge time")
	}
	// Merge time must grow roughly linearly: 10× the transactions should
	// not cost more than ~40× the time (generous CI bound).
	if rows[1].Merge > rows[0].Merge*40 {
		t.Errorf("merge scaling superlinear: %v -> %v", rows[0].Merge, rows[1].Merge)
	}
}

func TestFig4SmallScale(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	d, err := DelayByName("1000ms")
	if err != nil {
		t.Fatal(err)
	}
	points, err := RunFig4(Fig4Config{
		Ns:        []int{9},
		Delays:    []DelaySpec{d},
		Attack:    adversary.AttackBinary,
		Seed:      3,
		Instances: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 1 {
		t.Fatalf("got %d points", len(points))
	}
	if !points[0].Detected {
		t.Error("attack went undetected")
	}
}

func TestAppendixBGoldenRows(t *testing.T) {
	rows := RunAppendixB()
	found := false
	for _, r := range rows {
		if r.Delta == 0.5 && r.Rho == 0.9 {
			found = true
			if r.MinDepth != 28 {
				t.Errorf("m(δ=0.5, ρ=0.9) = %d, want 28", r.MinDepth)
			}
			if r.Branches != 3 {
				t.Errorf("a(0.5) = %d, want 3", r.Branches)
			}
		}
	}
	if !found {
		t.Fatal("δ=0.5, ρ=0.9 row missing")
	}
}

func TestDeceitfulCount(t *testing.T) {
	// d = ⌈5n/9⌉ − 1.
	cases := map[int]int{9: 4, 10: 5, 18: 9, 90: 49, 100: 55}
	for n, want := range cases {
		if got := DeceitfulCount(n); got != want {
			t.Errorf("DeceitfulCount(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestDelayByName(t *testing.T) {
	for _, name := range []string{"200ms", "500ms", "1000ms", "gamma", "aws-like", "5000ms", "10000ms"} {
		if _, err := DelayByName(name); err != nil {
			t.Errorf("DelayByName(%q): %v", name, err)
		}
	}
	if _, err := DelayByName("bogus"); err == nil {
		t.Error("bogus delay accepted")
	}
}

func TestStandardDelaysComplete(t *testing.T) {
	names := map[string]bool{}
	for _, d := range StandardDelays() {
		names[d.Name] = true
	}
	for _, want := range []string{"200ms", "500ms", "1000ms", "gamma", "aws-like"} {
		if !names[want] {
			t.Errorf("missing standard delay %q", want)
		}
	}
}

func TestBuildConflictingBlocks(t *testing.T) {
	ledger, local, remote, err := BuildConflictingBlocks(50)
	if err != nil {
		t.Fatal(err)
	}
	if local.Digest == remote.Digest {
		t.Fatal("blocks do not conflict")
	}
	if !ledger.Conflicts(remote) {
		t.Fatal("fork not detected")
	}
	start := time.Now()
	if got := ledger.MergeBlock(remote); got != 50 {
		t.Fatalf("merged %d, want 50", got)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("merge absurdly slow")
	}
}
