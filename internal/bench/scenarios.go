package bench

import (
	"fmt"
	"io"

	"github.com/zeroloss/zlb/internal/scenario"
)

// RunScenarios runs every registered scenario campaign
// (internal/scenario) at each committee size. Results are ordered by
// committee size, then registration order — the deterministic layout the
// goldens in determinism_test.go and `zlb-bench -experiment scenarios`
// rely on.
func RunScenarios(ns []int, seed int64) ([]*scenario.Result, error) {
	var out []*scenario.Result
	for _, n := range ns {
		for _, name := range scenario.Names() {
			s, err := scenario.Build(name, n, seed)
			if err != nil {
				return nil, err
			}
			res, err := scenario.Run(s)
			if err != nil {
				return nil, fmt.Errorf("scenario %s n=%d: %w", name, n, err)
			}
			out = append(out, res)
		}
	}
	return out, nil
}

// PrintScenarios writes each campaign's per-phase metrics table.
func PrintScenarios(w io.Writer, results []*scenario.Result) {
	fmt.Fprintln(w, "# Staged scenarios: per-phase metrics of the fault campaigns")
	for _, r := range results {
		fmt.Fprintln(w)
		if r.Description != "" {
			fmt.Fprintf(w, "## %s — %s\n", r.Scenario, r.Description)
		}
		fmt.Fprint(w, r.Format())
	}
}
