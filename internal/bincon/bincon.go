// Package bincon implements the accountable binary Byzantine consensus at
// the core of ZLB's Set Byzantine Consensus (paper §2.3): a DBFT-style
// round structure (BV-broadcast, weak coordinator, AUX votes, alternating
// default value) made accountable in the Polygraph fashion — AUX and COORD
// messages are signed statements, decisions carry certificates of
// ⌈2n/3⌉ signed AUX votes, and any replica that signs two different AUX
// values in the same round (the paper's "binary consensus attack") leaves
// undeniable equivocation evidence.
//
// Round r at replica p, with estimate est:
//
//  1. broadcast EST[r](est); BV-broadcast semantics: relay a value backed
//     by t+1 replicas, add to bin_values once backed by 2t+1.
//  2. the weak coordinator (rotating) broadcasts a signed COORD[r](w),
//     w ∈ its bin_values; replicas wait for it until a timeout.
//  3. once bin_values ≠ ∅ and (coord value arrived or timeout): broadcast
//     one signed AUX[r](v) — the coordinator's value if valid, else the
//     first of bin_values.
//  4. on ⌈2n/3⌉ AUX[r] votes with values ⊆ bin_values: if unanimous on v
//     and v = r mod 2, decide v with the vote quorum as certificate; if
//     unanimous on v ≠ r mod 2, adopt est = v; else est = r mod 2. Next
//     round.
//
// Deciders broadcast DECIDE(v, certificate); a valid DECIDE is adopted and
// forwarded once, so decisions reliably propagate.
package bincon

import (
	"fmt"
	"time"

	"github.com/zeroloss/zlb/internal/accountability"
	"github.com/zeroloss/zlb/internal/committee"
	"github.com/zeroloss/zlb/internal/crypto"
	"github.com/zeroloss/zlb/internal/obs"
	"github.com/zeroloss/zlb/internal/pipeline"
	"github.com/zeroloss/zlb/internal/simnet"
	"github.com/zeroloss/zlb/internal/types"
)

// Est is the (unsigned, transport-authenticated) BV-broadcast estimate
// message. EST is deliberately not an equivocation slot: BV-broadcast
// legitimately lets a replica broadcast both values (its estimate plus a
// relay), so only AUX/COORD signatures count as evidence.
type Est struct {
	Context  uint8
	Instance types.Instance
	Slot     uint32
	Round    types.Round
	Value    bool
}

// SimBytes implements simnet.Meter.
func (m *Est) SimBytes() int { return 40 }

// SimSigOps implements simnet.Meter.
func (m *Est) SimSigOps() int { return 0 }

// Coord is the weak coordinator's signed value for a round.
type Coord struct {
	Stmt accountability.Signed // KindCoord
}

// SimBytes implements simnet.Meter.
func (m *Coord) SimBytes() int { return 160 }

// SimSigOps implements simnet.Meter.
func (m *Coord) SimSigOps() int { return 1 }

// Aux is the signed auxiliary vote — the accountable heart of the round.
type Aux struct {
	Stmt accountability.Signed // KindAux
}

// SimBytes implements simnet.Meter.
func (m *Aux) SimBytes() int { return 160 }

// SimSigOps implements simnet.Meter.
func (m *Aux) SimSigOps() int { return 1 }

// Decide carries a decision and its certificate.
type Decide struct {
	Context  uint8
	Instance types.Instance
	Slot     uint32
	Value    bool
	Cert     *accountability.Certificate
}

// SimBytes implements simnet.Meter. The certificate term depends on its
// form: per-signed-statement for the quorum form (unchanged cost), one
// aggregate plus a signer bitmap for the aggregate form.
func (m *Decide) SimBytes() int { return 48 + m.Cert.ModelBytes() }

// SimSigOps implements simnet.Meter.
func (m *Decide) SimSigOps() int { return m.Cert.SigOps() }

// Decision is the output of one binary consensus slot.
type Decision struct {
	Slot  uint32
	Value bool
	Cert  *accountability.Certificate
	Round types.Round
}

// Equivocator makes a replica deceitful in this slot; nil fields mean
// honest behaviour.
type Equivocator struct {
	// EstFor returns the estimate value broadcast to a recipient at a
	// round; ok=false suppresses.
	EstFor func(to types.ReplicaID, round types.Round) (bool, bool)
	// AuxFor returns the (signed!) AUX value sent to a recipient at a
	// round; ok=false suppresses. Returning different values to different
	// recipients is the binary consensus attack and creates PoFs.
	AuxFor func(to types.ReplicaID, round types.Round) (bool, bool)
	// CoordFor splits the coordinator value per recipient when this
	// replica coordinates; ok=false suppresses.
	CoordFor func(to types.ReplicaID, round types.Round) (bool, bool)
	// SuppressDecide stops this replica from multicasting DECIDE
	// messages: a deceitful replica does not forward the certificates
	// that would incriminate its coalition across partitions.
	SuppressDecide bool
}

// Config parameterizes one binary consensus slot at one replica.
type Config struct {
	Context  uint8
	Instance types.Instance
	Slot     uint32
	Self     types.ReplicaID
	View     *committee.View
	Signer   *crypto.Signer
	Log      *accountability.Log
	Env      simnet.Env
	// Accountable disables signatures when false (Red Belly baseline).
	Accountable bool
	// CoordTimeout bounds the wait for the coordinator's value; grows
	// linearly with the round number. Nil selects a 400 ms·(r+1) default.
	CoordTimeout func(round types.Round) time.Duration
	OnDecide     func(Decision)
	Equivocator  *Equivocator
	// Certs, when set, routes decision-certificate verification through
	// the commit pipeline: the verdict is computed once per certificate
	// object for the whole deployment (a DECIDE multicast used to be
	// re-verified by each of its n receivers), its signatures fan out
	// across the worker pool, and the sender speculates the check before
	// the first delivery. Nil verifies inline — same verdicts, one
	// receiver at a time.
	Certs *pipeline.Verifier
	// AggregateCerts assembles decision certificates in aggregate form
	// when the scheme supports it (crypto.Aggregator): one aggregate
	// signature plus a signer bitmap instead of a quorum of signed
	// statements. Schemes without the capability fall back to the
	// signed-statement form regardless of this flag.
	AggregateCerts bool

	// Tracer, when non-nil, records round starts and decisions with
	// virtual timestamps. Nil disables tracing at zero cost.
	Tracer *obs.NodeTracer
}

const defaultCoordTimeout = 400 * time.Millisecond

type roundState struct {
	estSent    map[bool]bool
	estRecv    map[bool]*types.ReplicaSet
	binValues  map[bool]bool
	binOrder   []bool // insertion order of bin values
	auxSent    bool
	auxRecv    map[types.ReplicaID]accountability.Signed
	auxValues  map[types.ReplicaID]bool
	coordValue *bool
	timerFired bool
	timerID    simnet.TimerID
	timerSet   bool
}

func newRoundState() *roundState {
	return &roundState{
		estSent:   make(map[bool]bool),
		estRecv:   map[bool]*types.ReplicaSet{false: types.NewReplicaSet(), true: types.NewReplicaSet()},
		binValues: make(map[bool]bool),
		auxRecv:   make(map[types.ReplicaID]accountability.Signed),
		auxValues: make(map[types.ReplicaID]bool),
	}
}

// Instance is the state machine for one binary consensus slot at one
// replica.
type Instance struct {
	cfg      Config
	round    types.Round
	est      bool
	started  bool
	decided  bool
	decision Decision
	rounds   map[types.Round]*roundState
	// future-round message buffer
	pendingEst   []pendingEst
	pendingCoord []pendingSigned
	pendingAux   []pendingSigned
	forwarded    bool
	// playedRounds tracks rounds already played in scripted mode.
	playedRounds map[types.Round]bool
}

type pendingEst struct {
	from  types.ReplicaID
	round types.Round
	value bool
}

type pendingSigned struct {
	from types.ReplicaID
	stmt accountability.Signed
	kind accountability.Kind
}

// New creates the slot state machine.
func New(cfg Config) *Instance {
	return &Instance{cfg: cfg, rounds: make(map[types.Round]*roundState)}
}

// Decided reports whether the slot has decided, and the decision.
func (b *Instance) Decided() (Decision, bool) { return b.decision, b.decided }

// Started reports whether Propose has been called.
func (b *Instance) Started() bool { return b.started }

// TimerPayload is the payload bincon attaches to its coordinator timers;
// the owning node routes OnTimer back via HandleTimer.
type TimerPayload struct {
	Context  uint8
	Instance types.Instance
	Slot     uint32
	Round    types.Round
}

func (b *Instance) state(r types.Round) *roundState {
	st, ok := b.rounds[r]
	if !ok {
		st = newRoundState()
		b.rounds[r] = st
	}
	return st
}

// Propose starts the consensus with the given input value.
func (b *Instance) Propose(v bool) {
	if b.started {
		return
	}
	b.started = true
	if b.scripted() {
		b.playRound(0)
		return
	}
	if b.decided {
		return
	}
	b.est = v
	b.startRound(0)
	b.drainPending()
}

// scripted reports whether this instance attacks its slot: instead of the
// honest state machine it replays a per-recipient vote script, one round
// at a time, as honest replicas reach each round. A scripted instance
// never decides on its own (it adopts an honest certificate for SBC
// completion) and never stops equivocating: a real attacker does not
// abandon the slow partition just because the fast one already decided.
func (b *Instance) scripted() bool {
	return b.cfg.Equivocator != nil && b.cfg.Equivocator.AuxFor != nil
}

// playRound emits the scripted EST/AUX/COORD messages for round r, once.
func (b *Instance) playRound(r types.Round) {
	if b.playedRounds == nil {
		b.playedRounds = make(map[types.Round]bool)
	}
	if b.playedRounds[r] {
		return
	}
	b.playedRounds[r] = true
	eq := b.cfg.Equivocator
	for _, m := range b.cfg.View.Members() {
		if eq.EstFor != nil {
			if v, ok := eq.EstFor(m, r); ok {
				b.cfg.Env.Send(m, &Est{Context: b.cfg.Context, Instance: b.cfg.Instance, Slot: b.cfg.Slot, Round: r, Value: v})
			}
		}
		if v, ok := eq.AuxFor(m, r); ok {
			b.cfg.Env.Send(m, &Aux{Stmt: b.sign(b.stmt(accountability.KindAux, r, v))})
		}
	}
	if eq.CoordFor != nil && b.cfg.View.Coordinator(b.cfg.Instance, b.cfg.Slot, r) == b.cfg.Self {
		for _, m := range b.cfg.View.Members() {
			if v, ok := eq.CoordFor(m, r); ok {
				b.cfg.Env.Send(m, &Coord{Stmt: b.sign(b.stmt(accountability.KindCoord, r, v))})
			}
		}
	}
}

func (b *Instance) stmt(kind accountability.Kind, round types.Round, v bool) accountability.Statement {
	return accountability.Statement{
		Context:  b.cfg.Context,
		Kind:     kind,
		Instance: b.cfg.Instance,
		Slot:     b.cfg.Slot,
		Round:    round,
		Value:    accountability.BoolDigest(v),
	}
}

func (b *Instance) sign(stmt accountability.Statement) accountability.Signed {
	if !b.cfg.Accountable {
		return accountability.Signed{Stmt: stmt, Signer: b.cfg.Self}
	}
	signed, err := accountability.SignStatement(b.cfg.Signer, stmt)
	if err != nil {
		panic(fmt.Sprintf("bincon: signing failed: %v", err))
	}
	return signed
}

func (b *Instance) multicast(msg simnet.Message) {
	for _, m := range b.cfg.View.Members() {
		b.cfg.Env.Send(m, msg)
	}
}

func (b *Instance) coordTimeout(r types.Round) time.Duration {
	if b.cfg.CoordTimeout != nil {
		return b.cfg.CoordTimeout(r)
	}
	return defaultCoordTimeout * time.Duration(r+1)
}

func (b *Instance) startRound(r types.Round) {
	b.round = r
	st := b.state(r)
	b.cfg.Tracer.Record(b.cfg.Env.Now(), obs.PhaseBinRound, uint64(b.cfg.Instance), b.cfg.Slot, uint32(r), "")
	b.broadcastEst(r, b.est)
	// Arm the coordinator timer.
	if !st.timerSet {
		st.timerSet = true
		st.timerID = b.cfg.Env.SetTimer(b.coordTimeout(r), TimerPayload{
			Context: b.cfg.Context, Instance: b.cfg.Instance, Slot: b.cfg.Slot, Round: r,
		})
	}
	b.maybeCoordinate(r)
	b.reevaluate(r)
}

func (b *Instance) broadcastEst(r types.Round, v bool) {
	st := b.state(r)
	if st.estSent[v] {
		return
	}
	st.estSent[v] = true
	if eq := b.cfg.Equivocator; eq != nil && eq.EstFor != nil {
		for _, m := range b.cfg.View.Members() {
			if val, ok := eq.EstFor(m, r); ok {
				b.cfg.Env.Send(m, &Est{Context: b.cfg.Context, Instance: b.cfg.Instance, Slot: b.cfg.Slot, Round: r, Value: val})
			}
		}
		return
	}
	b.multicast(&Est{Context: b.cfg.Context, Instance: b.cfg.Instance, Slot: b.cfg.Slot, Round: r, Value: v})
}

// maybeCoordinate sends the coordinator message if we coordinate round r
// and have a bin value.
func (b *Instance) maybeCoordinate(r types.Round) {
	if b.cfg.View.Coordinator(b.cfg.Instance, b.cfg.Slot, r) != b.cfg.Self {
		return
	}
	st := b.state(r)
	if len(st.binOrder) == 0 {
		return
	}
	w := st.binOrder[0]
	if eq := b.cfg.Equivocator; eq != nil && eq.CoordFor != nil {
		for _, m := range b.cfg.View.Members() {
			if val, ok := eq.CoordFor(m, r); ok {
				b.cfg.Env.Send(m, &Coord{Stmt: b.sign(b.stmt(accountability.KindCoord, r, val))})
			}
		}
		return
	}
	// Send once; coordValue self-adoption happens through self-delivery.
	if st.coordValue == nil {
		b.multicast(&Coord{Stmt: b.sign(b.stmt(accountability.KindCoord, r, w))})
	}
}

// OnEst handles a BV estimate.
func (b *Instance) OnEst(from types.ReplicaID, msg *Est) {
	if !b.cfg.View.Contains(from) {
		return
	}
	if b.scripted() {
		if b.started {
			b.playRound(msg.Round)
		}
		return
	}
	if b.decided {
		return
	}
	if !b.started || msg.Round > b.round {
		b.pendingEst = append(b.pendingEst, pendingEst{from: from, round: msg.Round, value: msg.Value})
		return
	}
	b.handleEst(from, msg.Round, msg.Value)
}

func (b *Instance) handleEst(from types.ReplicaID, r types.Round, v bool) {
	st := b.state(r)
	st.estRecv[v].Add(from)
	n := st.estRecv[v].Len()
	// Relay once t+1 distinct replicas back v.
	if n >= b.cfg.View.BVRelay() && !st.estSent[v] && r >= b.round {
		b.broadcastEst(r, v)
	}
	// Deliver once 2t+1 distinct replicas back v.
	if n >= 2*b.cfg.View.MaxFaults()+1 && !st.binValues[v] {
		st.binValues[v] = true
		st.binOrder = append(st.binOrder, v)
		if r == b.round {
			b.maybeCoordinate(r)
			b.reevaluate(r)
		}
	}
}

// OnCoord handles the coordinator's signed value.
func (b *Instance) OnCoord(from types.ReplicaID, msg *Coord) {
	if !b.cfg.View.Contains(from) {
		return
	}
	s := msg.Stmt
	r := s.Stmt.Round
	if s.Stmt.Kind != accountability.KindCoord || s.Stmt.Context != b.cfg.Context ||
		s.Stmt.Instance != b.cfg.Instance || s.Stmt.Slot != b.cfg.Slot || s.Signer != from {
		return
	}
	if from != b.cfg.View.Coordinator(b.cfg.Instance, b.cfg.Slot, r) {
		return
	}
	if b.cfg.Accountable {
		if !s.Verify(b.cfg.Signer) {
			return
		}
		// Record even when already decided: post-decision equivocations
		// are evidence the cross-checking needs.
		if b.cfg.Log != nil {
			b.cfg.Log.Record(s)
		}
	}
	if b.scripted() {
		if b.started {
			b.playRound(r)
		}
		return
	}
	if b.decided {
		return
	}
	if !b.started || r > b.round {
		b.pendingCoord = append(b.pendingCoord, pendingSigned{from: from, stmt: s, kind: accountability.KindCoord})
		return
	}
	st := b.state(r)
	if st.coordValue == nil {
		v := accountability.DigestBool(s.Stmt.Value)
		st.coordValue = &v
		if r == b.round {
			b.reevaluate(r)
		}
	}
}

// HandleTimer fires the coordinator timeout for a round.
func (b *Instance) HandleTimer(p TimerPayload) {
	if b.scripted() {
		return
	}
	if b.decided || p.Round != b.round {
		return
	}
	st := b.state(p.Round)
	st.timerFired = true
	b.reevaluate(p.Round)
}

// OnAux handles a signed AUX vote.
func (b *Instance) OnAux(from types.ReplicaID, msg *Aux) {
	if !b.cfg.View.Contains(from) {
		return
	}
	s := msg.Stmt
	if s.Stmt.Kind != accountability.KindAux || s.Stmt.Context != b.cfg.Context ||
		s.Stmt.Instance != b.cfg.Instance || s.Stmt.Slot != b.cfg.Slot || s.Signer != from {
		return
	}
	if b.cfg.Accountable {
		if !s.Verify(b.cfg.Signer) {
			return
		}
		// Record even when already decided: post-decision equivocations
		// are evidence the cross-checking needs.
		if b.cfg.Log != nil {
			b.cfg.Log.Record(s)
		}
	}
	r := s.Stmt.Round
	if b.scripted() {
		if b.started {
			b.playRound(r)
		}
		return
	}
	if b.decided {
		return
	}
	if !b.started || r > b.round {
		b.pendingAux = append(b.pendingAux, pendingSigned{from: from, stmt: s, kind: accountability.KindAux})
		return
	}
	st := b.state(r)
	if _, dup := st.auxRecv[from]; dup {
		return
	}
	st.auxRecv[from] = s
	st.auxValues[from] = accountability.DigestBool(s.Stmt.Value)
	if r == b.round {
		b.reevaluate(r)
	}
}

// reevaluate advances the round state machine after any input.
func (b *Instance) reevaluate(r types.Round) {
	if b.decided || r != b.round {
		return
	}
	st := b.state(r)
	// Phase 3: send AUX once bin_values ≠ ∅ and coordinator resolved.
	if !st.auxSent && len(st.binOrder) > 0 {
		coordDone := st.timerFired
		var auxVal bool
		if st.coordValue != nil && st.binValues[*st.coordValue] {
			auxVal = *st.coordValue
			coordDone = true
		} else {
			auxVal = st.binOrder[0]
		}
		if coordDone {
			st.auxSent = true
			b.sendAux(r, auxVal)
		}
	}
	if !st.auxSent {
		return
	}
	// Phase 4: count AUX votes whose values are in bin_values.
	quorum := b.cfg.View.Quorum()
	count := 0
	trueCount, falseCount := 0, 0
	for id, v := range st.auxValues {
		if !b.cfg.View.Contains(id) {
			continue // excluded at runtime (dynamic committee)
		}
		if !st.binValues[v] {
			continue
		}
		count++
		if v {
			trueCount++
		} else {
			falseCount++
		}
	}
	if count < quorum {
		return
	}
	parity := r%2 == 1 // round r favors value (r mod 2): r=0 → false, r=1 → true
	switch {
	case falseCount == count:
		b.finishRound(r, false, parity == false)
	case trueCount == count:
		b.finishRound(r, true, parity == true)
	default:
		b.est = parity
		b.advance(r + 1)
	}
}

func (b *Instance) sendAux(r types.Round, v bool) {
	if eq := b.cfg.Equivocator; eq != nil && eq.AuxFor != nil {
		for _, m := range b.cfg.View.Members() {
			if val, ok := eq.AuxFor(m, r); ok {
				b.cfg.Env.Send(m, &Aux{Stmt: b.sign(b.stmt(accountability.KindAux, r, val))})
			}
		}
		return
	}
	b.multicast(&Aux{Stmt: b.sign(b.stmt(accountability.KindAux, r, v))})
}

func (b *Instance) finishRound(r types.Round, v bool, decide bool) {
	if decide {
		cert := b.buildCert(r, v)
		b.deliverDecision(Decision{Slot: b.cfg.Slot, Value: v, Cert: cert, Round: r}, true)
		return
	}
	b.est = v
	b.advance(r + 1)
}

func (b *Instance) buildCert(r types.Round, v bool) *accountability.Certificate {
	if !b.cfg.Accountable {
		return nil
	}
	st := b.state(r)
	stmt := b.stmt(accountability.KindAux, r, v)
	var sigs []accountability.Signed
	for _, id := range sortedKeys(st.auxValues) {
		if st.auxValues[id] == v && b.cfg.View.Contains(id) {
			sigs = append(sigs, st.auxRecv[id])
		}
	}
	cert, err := accountability.NewCertificateFor(b.cfg.Signer, stmt, sigs, b.cfg.AggregateCerts)
	if err != nil {
		return nil
	}
	return cert
}

func sortedKeys(m map[types.ReplicaID]bool) []types.ReplicaID {
	out := make([]types.ReplicaID, 0, len(m))
	for id := range m {
		out = append(out, id)
	}
	return types.SortReplicas(out)
}

func (b *Instance) advance(r types.Round) {
	if st, ok := b.rounds[b.round]; ok && st.timerSet {
		b.cfg.Env.CancelTimer(st.timerID)
	}
	b.startRound(r)
	b.drainPending()
}

func (b *Instance) drainPending() {
	ests := b.pendingEst
	b.pendingEst = nil
	for _, p := range ests {
		if p.round > b.round {
			b.pendingEst = append(b.pendingEst, p)
			continue
		}
		b.handleEst(p.from, p.round, p.value)
	}
	coords := b.pendingCoord
	b.pendingCoord = nil
	for _, p := range coords {
		if p.stmt.Stmt.Round > b.round {
			b.pendingCoord = append(b.pendingCoord, p)
			continue
		}
		st := b.state(p.stmt.Stmt.Round)
		if st.coordValue == nil {
			v := accountability.DigestBool(p.stmt.Stmt.Value)
			st.coordValue = &v
		}
	}
	auxes := b.pendingAux
	b.pendingAux = nil
	for _, p := range auxes {
		if p.stmt.Stmt.Round > b.round {
			b.pendingAux = append(b.pendingAux, p)
			continue
		}
		st := b.state(p.stmt.Stmt.Round)
		if _, dup := st.auxRecv[p.from]; !dup {
			st.auxRecv[p.from] = p.stmt
			st.auxValues[p.from] = accountability.DigestBool(p.stmt.Stmt.Value)
		}
	}
	b.reevaluate(b.round)
}

// verifyCert checks a decision certificate through the pipeline verifier
// when one is configured, inline otherwise — identical verdicts either
// way.
func (b *Instance) verifyCert(cert *accountability.Certificate) error {
	if b.cfg.Certs != nil {
		return b.cfg.Certs.VerifyCertificate(cert, b.cfg.Signer, b.cfg.View.Size(), nil)
	}
	return cert.Verify(b.cfg.Signer, b.cfg.View.Size(), nil)
}

// OnDecide handles a propagated decision.
func (b *Instance) OnDecide(from types.ReplicaID, msg *Decide) {
	if msg.Context != b.cfg.Context || msg.Instance != b.cfg.Instance || msg.Slot != b.cfg.Slot {
		return
	}
	if b.scripted() {
		// Adopt silently so the surrounding SBC instance can complete;
		// keep answering rounds (the other partitions are still voting).
		if !b.decided {
			b.decided = true
			b.decision = Decision{Slot: msg.Slot, Value: msg.Value, Cert: msg.Cert}
			b.traceDecide(b.decision)
			if b.cfg.OnDecide != nil {
				b.cfg.OnDecide(b.decision)
			}
		}
		return
	}
	if b.cfg.Accountable {
		if msg.Cert == nil {
			return
		}
		expect := b.stmt(accountability.KindAux, msg.Cert.Stmt.Round, msg.Value)
		if msg.Cert.Stmt != expect {
			return
		}
		// Quorum is evaluated against the full committee size; member
		// filter nil so certificates with excluded signers remain
		// transiently acceptable (paper §4.1 ).
		if err := b.verifyCert(msg.Cert); err != nil {
			return
		}
		if b.cfg.Log != nil {
			b.cfg.Log.RecordCertificate(msg.Cert)
		}
	}
	b.deliverDecision(Decision{Slot: msg.Slot, Value: msg.Value, Cert: msg.Cert, Round: func() types.Round {
		if msg.Cert != nil {
			return msg.Cert.Stmt.Round
		}
		return 0
	}()}, false)
}

// traceDecide records the binary decision (value encoded as "0"/"1").
func (b *Instance) traceDecide(d Decision) {
	if b.cfg.Tracer == nil {
		return
	}
	v := "0"
	if d.Value {
		v = "1"
	}
	b.cfg.Tracer.Record(b.cfg.Env.Now(), obs.PhaseBinDecide, uint64(b.cfg.Instance), d.Slot, uint32(d.Round), v)
}

// deliverDecision finalizes the slot (once) and propagates the decision.
func (b *Instance) deliverDecision(d Decision, own bool) {
	if b.decided {
		return
	}
	b.decided = true
	b.decision = d
	b.traceDecide(d)
	if st, ok := b.rounds[b.round]; ok && st.timerSet {
		b.cfg.Env.CancelTimer(st.timerID)
	}
	suppress := b.cfg.Equivocator != nil && b.cfg.Equivocator.SuppressDecide
	if (own || !b.forwarded) && !suppress {
		b.forwarded = true
		// Speculate the certificate check on the pipeline: the receivers'
		// verdict is settled (once, off the event loop) while the DECIDE
		// messages are still in flight.
		b.cfg.Certs.Speculate(d.Cert, b.cfg.Signer)
		b.multicast(&Decide{
			Context:  b.cfg.Context,
			Instance: b.cfg.Instance,
			Slot:     b.cfg.Slot,
			Value:    d.Value,
			Cert:     d.Cert,
		})
	}
	if b.cfg.OnDecide != nil {
		b.cfg.OnDecide(d)
	}
}

// DebugState summarizes the instance state for diagnostics.
func (b *Instance) DebugState() string {
	st := b.state(b.round)
	return fmt.Sprintf("round=%d est=%v started=%v decided=%v bin=%v auxSent=%v auxRecv=%d coord=%v timer=%v pendingAux=%d",
		b.round, b.est, b.started, b.decided, st.binOrder, st.auxSent, len(st.auxValues), st.coordValue, st.timerFired, len(b.pendingAux))
}

// Reevaluate re-runs quorum checks after an external committee change
// (the exclusion consensus shrinks its view at runtime; thresholds drop).
func (b *Instance) Reevaluate() {
	if !b.started || b.decided {
		return
	}
	b.reevaluate(b.round)
}
