package bincon

import (
	"testing"
	"time"

	"github.com/zeroloss/zlb/internal/accountability"
	"github.com/zeroloss/zlb/internal/committee"
	"github.com/zeroloss/zlb/internal/crypto"
	"github.com/zeroloss/zlb/internal/latency"
	"github.com/zeroloss/zlb/internal/simnet"
	"github.com/zeroloss/zlb/internal/types"
)

type binNode struct {
	inst *Instance
}

func (n *binNode) OnMessage(from types.ReplicaID, msg simnet.Message) {
	switch m := msg.(type) {
	case *Est:
		n.inst.OnEst(from, m)
	case *Coord:
		n.inst.OnCoord(from, m)
	case *Aux:
		n.inst.OnAux(from, m)
	case *Decide:
		n.inst.OnDecide(from, m)
	}
}

func (n *binNode) OnTimer(payload any) {
	if p, ok := payload.(TimerPayload); ok {
		n.inst.HandleTimer(p)
	}
}

type binCluster struct {
	net     *simnet.Network
	nodes   map[types.ReplicaID]*binNode
	decided map[types.ReplicaID]Decision
	pofs    map[types.ReplicaID][]accountability.PoF
	members []types.ReplicaID
}

func buildBin(t *testing.T, n int, eq func(types.ReplicaID) *Equivocator, seed int64) *binCluster {
	t.Helper()
	signers, _, err := crypto.GenerateCluster(crypto.SchemeSim, n, seed)
	if err != nil {
		t.Fatal(err)
	}
	members := make([]types.ReplicaID, n)
	for i := range members {
		members[i] = types.ReplicaID(i + 1)
	}
	c := &binCluster{
		net:     simnet.New(simnet.Config{Latency: latency.Uniform(time.Millisecond, 8*time.Millisecond), Seed: seed}),
		nodes:   make(map[types.ReplicaID]*binNode),
		decided: make(map[types.ReplicaID]Decision),
		pofs:    make(map[types.ReplicaID][]accountability.PoF),
		members: members,
	}
	for i, id := range members {
		id := id
		signer := signers[i]
		c.net.AddNode(id, func(env simnet.Env) simnet.Handler {
			log := accountability.NewLog(signer, func(p accountability.PoF) {
				c.pofs[id] = append(c.pofs[id], p)
			})
			var e *Equivocator
			if eq != nil {
				e = eq(id)
			}
			node := &binNode{inst: New(Config{
				Context:     accountability.CtxMain,
				Instance:    1,
				Slot:        3,
				Self:        id,
				View:        committee.NewView(members),
				Signer:      signer,
				Log:         log,
				Env:         env,
				Accountable: true,
				Equivocator: e,
				CoordTimeout: func(r types.Round) time.Duration {
					return 50 * time.Millisecond * time.Duration(r+1)
				},
				OnDecide: func(d Decision) { c.decided[id] = d },
			})}
			c.nodes[id] = node
			return node
		})
	}
	return c
}

func (c *binCluster) propose(values map[types.ReplicaID]bool) {
	for _, id := range c.members {
		c.nodes[id].inst.Propose(values[id])
	}
}

func TestBinConUnanimousTrue(t *testing.T) {
	c := buildBin(t, 7, nil, 1)
	values := map[types.ReplicaID]bool{}
	for _, id := range c.members {
		values[id] = true
	}
	c.propose(values)
	c.net.RunUntilQuiet(time.Minute)
	if len(c.decided) != 7 {
		t.Fatalf("decided at %d of 7", len(c.decided))
	}
	for id, d := range c.decided {
		if !d.Value {
			t.Fatalf("replica %v decided false on unanimous true", id)
		}
		if d.Cert == nil || d.Cert.SignerCount(nil) < types.Quorum(7) {
			t.Fatalf("replica %v decision cert invalid", id)
		}
	}
}

func TestBinConUnanimousFalseDecidesRoundZero(t *testing.T) {
	c := buildBin(t, 7, nil, 2)
	values := map[types.ReplicaID]bool{}
	c.propose(values) // all false
	c.net.RunUntilQuiet(time.Minute)
	for id, d := range c.decided {
		if d.Value {
			t.Fatalf("replica %v decided true on unanimous false", id)
		}
		if d.Round != 0 {
			t.Fatalf("replica %v decided at round %d; parity favors 0 at round 0", id, d.Round)
		}
	}
	if len(c.decided) != 7 {
		t.Fatalf("decided at %d of 7", len(c.decided))
	}
}

func TestBinConMixedInputsAgree(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		c := buildBin(t, 7, nil, seed)
		values := map[types.ReplicaID]bool{1: true, 2: false, 3: true, 4: false, 5: true, 6: false, 7: true}
		c.propose(values)
		c.net.RunUntilQuiet(5 * time.Minute)
		if len(c.decided) != 7 {
			t.Fatalf("seed %d: decided at %d of 7", seed, len(c.decided))
		}
		var ref *Decision
		for id, d := range c.decided {
			d := d
			if ref == nil {
				ref = &d
				continue
			}
			if d.Value != ref.Value {
				t.Fatalf("seed %d: replica %v decided %v, others %v", seed, id, d.Value, ref.Value)
			}
		}
	}
}

// TestBinConValidityNoPhantomTrue: if every honest replica proposes
// false, true cannot be decided (BV-validity: a value needs t+1 backers
// to enter bin_values).
func TestBinConValidityNoPhantomTrue(t *testing.T) {
	c := buildBin(t, 10, nil, 3)
	values := map[types.ReplicaID]bool{}
	c.propose(values)
	c.net.RunUntilQuiet(time.Minute)
	for id, d := range c.decided {
		if d.Value {
			t.Fatalf("replica %v decided a value nobody proposed", id)
		}
	}
}

func TestBinConCrashMinorityStillDecides(t *testing.T) {
	c := buildBin(t, 7, nil, 4)
	c.net.SetUp(6, false)
	c.net.SetUp(7, false)
	values := map[types.ReplicaID]bool{}
	for _, id := range c.members[:5] {
		values[id] = true
	}
	for _, id := range c.members[:5] {
		c.nodes[id].inst.Propose(values[id])
	}
	c.net.RunUntilQuiet(5 * time.Minute)
	live := 0
	for _, id := range c.members[:5] {
		if d, ok := c.decided[id]; ok {
			live++
			if !d.Value {
				t.Fatalf("replica %v decided false", id)
			}
		}
	}
	if live != 5 {
		t.Fatalf("only %d of 5 live replicas decided", live)
	}
}

// TestBinConScriptedEquivocatorCreatesEvidence replays the binary
// consensus attack at the protocol level: the scripted coalition pushes
// value 1 to one partition and 0 to the other; whichever way it ends, the
// coalition's conflicting AUX signatures surface as PoFs when certificates
// circulate.
func TestBinConScriptedEquivocatorCreatesEvidence(t *testing.T) {
	partition := map[types.ReplicaID]bool{5: true, 6: true} // "A" = {5,6}; B = {7,8,9}
	deceitful := map[types.ReplicaID]bool{1: true, 2: true, 3: true, 4: true}
	eq := func(id types.ReplicaID) *Equivocator {
		if !deceitful[id] {
			return nil
		}
		valueFor := func(to types.ReplicaID) bool {
			if deceitful[to] {
				return true
			}
			return partition[to]
		}
		return &Equivocator{
			EstFor:   func(to types.ReplicaID, _ types.Round) (bool, bool) { return valueFor(to), true },
			AuxFor:   func(to types.ReplicaID, _ types.Round) (bool, bool) { return valueFor(to), true },
			CoordFor: func(to types.ReplicaID, _ types.Round) (bool, bool) { return valueFor(to), true },
		}
	}
	c := buildBin(t, 9, eq, 5)
	values := map[types.ReplicaID]bool{5: true, 6: true} // honest A proposes 1, B proposes 0
	c.propose(values)
	c.net.RunUntilQuiet(5 * time.Minute)

	// All honest must eventually hold PoFs against the equivocators once
	// the decisions' certificates circulate (same round, both values).
	evidence := 0
	for id, pofs := range c.pofs {
		if deceitful[id] {
			continue
		}
		for _, p := range pofs {
			if !deceitful[p.Culprit] {
				t.Fatalf("honest replica %v accused honest %v", id, p.Culprit)
			}
			evidence++
		}
	}
	if evidence == 0 {
		t.Fatal("equivocation left no evidence at any honest replica")
	}
}

func TestBinConDecidePropagationAdoptsCert(t *testing.T) {
	c := buildBin(t, 4, nil, 6)
	values := map[types.ReplicaID]bool{1: true, 2: true, 3: true, 4: true}
	c.propose(values)
	c.net.RunUntilQuiet(time.Minute)
	d := c.decided[1]
	// A fresh instance adopting the decision via OnDecide must accept a
	// valid certificate and reject a truncated one.
	signers, _, err := crypto.GenerateCluster(crypto.SchemeSim, 4, 6)
	if err != nil {
		t.Fatal(err)
	}
	net := simnet.New(simnet.Config{Latency: latency.Fixed(time.Millisecond), Seed: 6})
	var fresh *Instance
	net.AddNode(9, func(env simnet.Env) simnet.Handler {
		fresh = New(Config{
			Context: accountability.CtxMain, Instance: 1, Slot: 3, Self: 9,
			View:   committee.NewView(c.members),
			Signer: signers[0], Env: env, Accountable: true,
		})
		return &binNode{inst: fresh}
	})
	fresh.OnDecide(1, &Decide{Context: accountability.CtxMain, Instance: 1, Slot: 3, Value: d.Value, Cert: d.Cert})
	if dec, ok := fresh.Decided(); !ok || dec.Value != d.Value {
		t.Fatal("valid decision certificate rejected")
	}
	// Truncated cert must be rejected by another fresh instance.
	var fresh2 *Instance
	net.AddNode(10, func(env simnet.Env) simnet.Handler {
		fresh2 = New(Config{
			Context: accountability.CtxMain, Instance: 1, Slot: 3, Self: 10,
			View:   committee.NewView(c.members),
			Signer: signers[1], Env: env, Accountable: true,
		})
		return &binNode{inst: fresh2}
	})
	bad := &accountability.Certificate{Stmt: d.Cert.Stmt, Sigs: d.Cert.Sigs[:1]}
	fresh2.OnDecide(1, &Decide{Context: accountability.CtxMain, Instance: 1, Slot: 3, Value: d.Value, Cert: bad})
	if _, ok := fresh2.Decided(); ok {
		t.Fatal("truncated certificate accepted")
	}
}

func TestBinConMeters(t *testing.T) {
	if (&Est{}).SimSigOps() != 0 {
		t.Fatal("EST should be unsigned")
	}
	if (&Aux{}).SimSigOps() != 1 || (&Coord{}).SimSigOps() != 1 {
		t.Fatal("AUX/COORD carry one signature")
	}
	d := &Decide{}
	if d.SimSigOps() != 0 {
		t.Fatal("certless decide")
	}
}
