// Package hotstuff implements a chained HotStuff SMR (Yin et al.,
// PODC'19) as the paper's comparison baseline (§5.1): rotating leaders,
// one proposal per view, quorum certificates of n−t signed votes, the
// three-chain commit rule, and an exponential-backoff pacemaker. It runs
// over the same simulator and cost model as ZLB so Figure 3's comparison
// is apples to apples.
//
// As the paper observes, HotStuff decides one proposal per consensus
// instance regardless of the number of submitted transactions — that is
// precisely why its throughput curve stays flat while the SBC-based
// systems grow with n.
package hotstuff

import (
	"fmt"
	"time"

	"github.com/zeroloss/zlb/internal/committee"
	"github.com/zeroloss/zlb/internal/crypto"
	"github.com/zeroloss/zlb/internal/simnet"
	"github.com/zeroloss/zlb/internal/types"
)

// Block is one proposal in the HotStuff chain.
type Block struct {
	View    uint64
	Parent  types.Digest
	Payload []byte
	// ClaimedBytes / ClaimedTxs model the batch for the cost model.
	ClaimedBytes int
	ClaimedTxs   int
}

// Digest identifies the block.
func (b *Block) Digest() types.Digest {
	var buf [8 + 32]byte
	for i := 0; i < 8; i++ {
		buf[i] = byte(b.View >> (8 * (7 - i)))
	}
	copy(buf[8:], b.Parent[:])
	return types.HashConcat(buf[:], b.Payload)
}

// QC is a quorum certificate: n−t signed votes on one block.
type QC struct {
	View   uint64
	Block  types.Digest
	Voters []types.ReplicaID
	Sigs   []crypto.Signature
}

// Proposal is the leader's message for a view.
type Proposal struct {
	Block  *Block
	Justif *QC // QC for the parent (nil only for the genesis view)
}

// SimBytes implements simnet.Meter.
func (m *Proposal) SimBytes() int {
	n := 120 + len(m.Block.Payload)
	if m.Block.ClaimedBytes > 0 {
		n = 120 + m.Block.ClaimedBytes
	}
	if m.Justif != nil {
		n += 70 * len(m.Justif.Sigs)
	}
	return n
}

// SimSigOps implements simnet.Meter.
func (m *Proposal) SimSigOps() int {
	if m.Justif == nil {
		return 1
	}
	return 1 + len(m.Justif.Sigs)
}

// Vote is a replica's signed vote on a proposal.
type Vote struct {
	View  uint64
	Block types.Digest
	Voter types.ReplicaID
	Sig   crypto.Signature
}

// SimBytes implements simnet.Meter.
func (m *Vote) SimBytes() int { return 120 }

// SimSigOps implements simnet.Meter.
func (m *Vote) SimSigOps() int { return 1 }

// NewView carries a replica's highest QC to the next leader on timeout.
type NewView struct {
	View   uint64
	HighQC *QC
}

// SimBytes implements simnet.Meter.
func (m *NewView) SimBytes() int {
	n := 48
	if m.HighQC != nil {
		n += 70 * len(m.HighQC.Sigs)
	}
	return n
}

// SimSigOps implements simnet.Meter.
func (m *NewView) SimSigOps() int {
	if m.HighQC == nil {
		return 0
	}
	return len(m.HighQC.Sigs)
}

// Config parameterizes one HotStuff replica.
type Config struct {
	Self   types.ReplicaID
	View   *committee.View
	Signer *crypto.Signer
	Env    simnet.Env
	// BatchSource supplies the payload when this replica leads a view.
	BatchSource func(view uint64) (payload []byte, claimedBytes, claimedTxs int)
	// OnCommit fires in chain order for every committed block.
	OnCommit func(b *Block)
	// BaseTimeout is the pacemaker's view timeout; grows linearly with
	// consecutive failures. Zero selects 800 ms.
	BaseTimeout time.Duration
	// MaxViews stops the replica after this many views (0 = unlimited).
	MaxViews uint64
}

// Replica is one HotStuff replica (implements simnet.Handler).
type Replica struct {
	cfg     Config
	curView uint64
	blocks  map[types.Digest]*Block
	qcs     map[types.Digest]*QC
	highQC  *QC
	genesis types.Digest

	votes      map[uint64]map[types.ReplicaID]*Vote
	proposed   map[uint64]bool
	voted      map[uint64]bool
	newViews   map[uint64]map[types.ReplicaID]*QC
	committed  map[types.Digest]bool
	lastCommit *Block
	timerID    simnet.TimerID
	failures   uint

	// Committed counts blocks committed (experiments).
	Committed int
	// CommittedTxs sums claimed transactions of committed blocks.
	CommittedTxs int
}

var _ simnet.Handler = (*Replica)(nil)

type viewTimer struct{ view uint64 }

// New creates a replica. Call Start on every replica to launch view 1.
func New(cfg Config) *Replica {
	if cfg.BaseTimeout == 0 {
		cfg.BaseTimeout = 800 * time.Millisecond
	}
	g := &Block{View: 0}
	r := &Replica{
		cfg:       cfg,
		blocks:    map[types.Digest]*Block{},
		qcs:       map[types.Digest]*QC{},
		votes:     map[uint64]map[types.ReplicaID]*Vote{},
		proposed:  map[uint64]bool{},
		voted:     map[uint64]bool{},
		newViews:  map[uint64]map[types.ReplicaID]*QC{},
		committed: map[types.Digest]bool{},
	}
	r.genesis = g.Digest()
	r.blocks[r.genesis] = g
	r.highQC = &QC{View: 0, Block: r.genesis}
	return r
}

// Start enters view 1.
func (r *Replica) Start() { r.enterView(1) }

// CurrentView returns the replica's view number.
func (r *Replica) CurrentView() uint64 { return r.curView }

func (r *Replica) leader(view uint64) types.ReplicaID {
	members := r.cfg.View.Members()
	return members[view%uint64(len(members))]
}

func (r *Replica) quorum() int { return r.cfg.View.Quorum() }

func (r *Replica) multicast(msg simnet.Message) {
	for _, m := range r.cfg.View.Members() {
		r.cfg.Env.Send(m, msg)
	}
}

func (r *Replica) enterView(v uint64) {
	if v <= r.curView {
		return
	}
	if r.cfg.MaxViews > 0 && v > r.cfg.MaxViews {
		return
	}
	r.curView = v
	r.cfg.Env.CancelTimer(r.timerID)
	timeout := r.cfg.BaseTimeout * time.Duration(1+r.failures)
	r.timerID = r.cfg.Env.SetTimer(timeout, viewTimer{view: v})
	// Propose only when we hold the QC chaining directly below this view
	// (at start, the genesis QC below view 1): a leader that proposed
	// with a stale highQC would break the three-chain. When the QC forms
	// later, onVote proposes; on timeouts, onNewView does.
	if r.leader(v) == r.cfg.Self && r.highQC.View+1 == v {
		r.propose(v)
	}
}

func (r *Replica) propose(v uint64) {
	if r.proposed[v] {
		return
	}
	if r.cfg.MaxViews > 0 && v > r.cfg.MaxViews {
		return
	}
	r.proposed[v] = true
	var payload []byte
	var cb, ct int
	if r.cfg.BatchSource != nil {
		payload, cb, ct = r.cfg.BatchSource(v)
	}
	b := &Block{
		View:         v,
		Parent:       r.highQC.Block,
		Payload:      payload,
		ClaimedBytes: cb,
		ClaimedTxs:   ct,
	}
	r.multicast(&Proposal{Block: b, Justif: r.highQC})
}

// OnMessage implements simnet.Handler.
func (r *Replica) OnMessage(from types.ReplicaID, msg simnet.Message) {
	switch m := msg.(type) {
	case *Proposal:
		r.onProposal(from, m)
	case *Vote:
		r.onVote(m)
	case *NewView:
		r.onNewView(from, m)
	}
}

// OnTimer implements simnet.Handler.
func (r *Replica) OnTimer(payload any) {
	t, ok := payload.(viewTimer)
	if !ok || t.view != r.curView {
		return
	}
	// Pacemaker: give up on the view, tell the next leader our highQC.
	r.failures++
	next := r.curView + 1
	r.cfg.Env.Send(r.leader(next), &NewView{View: next, HighQC: r.highQC})
	r.enterView(next)
}

func (r *Replica) stmtDigest(view uint64, block types.Digest) types.Digest {
	var buf [8]byte
	for i := 0; i < 8; i++ {
		buf[i] = byte(view >> (8 * (7 - i)))
	}
	return types.HashConcat(buf[:], block[:])
}

func (r *Replica) verifyQC(qc *QC) bool {
	if qc == nil {
		return false
	}
	if qc.Block == r.genesis && qc.View == 0 {
		return true
	}
	if len(qc.Voters) != len(qc.Sigs) || len(qc.Voters) < r.quorum() {
		return false
	}
	seen := types.NewReplicaSet()
	d := r.stmtDigest(qc.View, qc.Block)
	for i, voter := range qc.Voters {
		if !seen.Add(voter) || !r.cfg.View.Contains(voter) {
			return false
		}
		if !r.cfg.Signer.Verify(voter, d, qc.Sigs[i]) {
			return false
		}
	}
	return true
}

func (r *Replica) onProposal(from types.ReplicaID, m *Proposal) {
	b := m.Block
	if from != r.leader(b.View) {
		return
	}
	if !r.verifyQC(m.Justif) || m.Justif.Block != b.Parent {
		return
	}
	d := b.Digest()
	r.blocks[d] = b
	r.adoptQC(m.Justif)

	// Vote once per view, only for proposals extending our highQC branch
	// (simplified safety rule: justify ≥ our locked view).
	if b.View >= r.curView && !r.voted[b.View] {
		r.voted[b.View] = true
		sig, err := r.cfg.Signer.Sign(r.stmtDigest(b.View, d))
		if err == nil {
			r.cfg.Env.Send(r.leader(b.View+1), &Vote{View: b.View, Block: d, Voter: r.cfg.Self, Sig: sig})
		}
		r.failures = 0
		r.enterView(b.View + 1)
	}
}

func (r *Replica) onVote(m *Vote) {
	if m.Voter == types.NilReplica || !r.cfg.View.Contains(m.Voter) {
		return
	}
	if !r.cfg.Signer.Verify(m.Voter, r.stmtDigest(m.View, m.Block), m.Sig) {
		return
	}
	byVoter, ok := r.votes[m.View]
	if !ok {
		byVoter = make(map[types.ReplicaID]*Vote)
		r.votes[m.View] = byVoter
	}
	if _, dup := byVoter[m.Voter]; dup {
		return
	}
	byVoter[m.Voter] = m
	if len(byVoter) == r.quorum() {
		// Assemble the QC deterministically.
		voters := make([]types.ReplicaID, 0, len(byVoter))
		for id := range byVoter {
			voters = append(voters, id)
		}
		types.SortReplicas(voters)
		qc := &QC{View: m.View, Block: m.Block}
		for _, id := range voters {
			qc.Voters = append(qc.Voters, id)
			qc.Sigs = append(qc.Sigs, byVoter[id].Sig)
		}
		r.adoptQC(qc)
		// We lead view m.View+1: propose on top of it.
		if r.leader(m.View+1) == r.cfg.Self {
			r.enterView(m.View + 1)
			r.propose(m.View + 1)
		}
	}
}

func (r *Replica) onNewView(_ types.ReplicaID, m *NewView) {
	if m.HighQC != nil && r.verifyQC(m.HighQC) {
		r.adoptQC(m.HighQC)
	}
	if r.leader(m.View) == r.cfg.Self && m.View >= r.curView {
		r.enterView(m.View)
		r.propose(m.View)
	}
}

// adoptQC updates highQC and runs the three-chain commit rule.
func (r *Replica) adoptQC(qc *QC) {
	if qc == nil {
		return
	}
	if _, known := r.qcs[qc.Block]; !known {
		r.qcs[qc.Block] = qc
	}
	if qc.View > r.highQC.View {
		r.highQC = qc
	}
	// Three-chain: b'' (qc.Block) ← b' ← b with consecutive views
	// commits b and its ancestors.
	b2 := r.blocks[qc.Block]
	if b2 == nil {
		return
	}
	b1 := r.blocks[b2.Parent]
	if b1 == nil || b1.View+1 != b2.View {
		return
	}
	b0 := r.blocks[b1.Parent]
	if b0 == nil || b0.View+1 != b1.View {
		return
	}
	r.commitChain(b0)
}

// commitChain commits b and every uncommitted ancestor, oldest first.
func (r *Replica) commitChain(b *Block) {
	if b.View == 0 {
		return
	}
	d := b.Digest()
	if r.committed[d] {
		return
	}
	if parent, ok := r.blocks[b.Parent]; ok {
		r.commitChain(parent)
	}
	r.committed[d] = true
	r.lastCommit = b
	r.Committed++
	r.CommittedTxs += b.ClaimedTxs
	if r.cfg.OnCommit != nil {
		r.cfg.OnCommit(b)
	}
}

// LastCommitted returns the most recently committed block.
func (r *Replica) LastCommitted() *Block { return r.lastCommit }

// String summarizes the replica state.
func (r *Replica) String() string {
	return fmt.Sprintf("hotstuff(%v view=%d committed=%d)", r.cfg.Self, r.curView, r.Committed)
}
