package hotstuff

import (
	"fmt"
	"testing"
	"time"

	"github.com/zeroloss/zlb/internal/committee"
	"github.com/zeroloss/zlb/internal/crypto"
	"github.com/zeroloss/zlb/internal/latency"
	"github.com/zeroloss/zlb/internal/simnet"
	"github.com/zeroloss/zlb/internal/types"
)

type cluster struct {
	net      *simnet.Network
	replicas map[types.ReplicaID]*Replica
	members  []types.ReplicaID
	commits  map[types.ReplicaID][]*Block
}

func build(t *testing.T, n int, crash map[types.ReplicaID]bool, seed int64, maxViews uint64) *cluster {
	t.Helper()
	signers, _, err := crypto.GenerateCluster(crypto.SchemeSim, n, seed)
	if err != nil {
		t.Fatal(err)
	}
	members := make([]types.ReplicaID, n)
	for i := range members {
		members[i] = types.ReplicaID(i + 1)
	}
	c := &cluster{
		net:      simnet.New(simnet.Config{Latency: latency.Uniform(2*time.Millisecond, 12*time.Millisecond), Seed: seed}),
		replicas: make(map[types.ReplicaID]*Replica),
		members:  members,
		commits:  make(map[types.ReplicaID][]*Block),
	}
	for i, id := range members {
		id := id
		signer := signers[i]
		c.net.AddNode(id, func(env simnet.Env) simnet.Handler {
			r := New(Config{
				Self:   id,
				View:   committee.NewView(members),
				Signer: signer,
				Env:    env,
				BatchSource: func(view uint64) ([]byte, int, int) {
					return []byte(fmt.Sprintf("batch-%d-%v", view, id)), 0, 100
				},
				OnCommit:    func(b *Block) { c.commits[id] = append(c.commits[id], b) },
				BaseTimeout: 300 * time.Millisecond,
				MaxViews:    maxViews,
			})
			c.replicas[id] = r
			return r
		})
	}
	for id := range crash {
		c.net.SetUp(id, false)
	}
	return c
}

func (c *cluster) start(crash map[types.ReplicaID]bool) {
	for _, id := range c.members {
		if !crash[id] {
			c.replicas[id].Start()
		}
	}
}

func TestHotStuffCommitsAndAgrees(t *testing.T) {
	c := build(t, 4, nil, 11, 20)
	c.start(nil)
	c.net.RunUntilQuiet(5 * time.Minute)
	for _, id := range c.members {
		if len(c.commits[id]) == 0 {
			t.Fatalf("replica %v committed nothing", id)
		}
	}
	// Prefix agreement: every pair of commit sequences agrees on the
	// common prefix.
	ref := c.commits[c.members[0]]
	for _, id := range c.members[1:] {
		got := c.commits[id]
		n := len(ref)
		if len(got) < n {
			n = len(got)
		}
		for i := 0; i < n; i++ {
			if got[i].Digest() != ref[i].Digest() {
				t.Fatalf("replica %v commit %d diverges", id, i)
			}
		}
	}
	if got := len(ref); got < 10 {
		t.Fatalf("only %d commits over 20 views", got)
	}
}

func TestHotStuffSurvivesCrashedLeader(t *testing.T) {
	// Replica 1 leads views 1 % 7... crash replica 2 (leader of view 2 as
	// members[2%7]=r3? leader(v)=members[v mod n]); crash two replicas
	// (< n/3 of 7) and check progress.
	crash := map[types.ReplicaID]bool{2: true, 3: true}
	c := build(t, 7, crash, 13, 30)
	c.start(crash)
	c.net.RunUntilQuiet(10 * time.Minute)
	live := 0
	for _, id := range c.members {
		if crash[id] {
			continue
		}
		if len(c.commits[id]) > 0 {
			live++
		}
	}
	if live < 5 {
		t.Fatalf("only %d live replicas committed despite f < n/3 crashes", live)
	}
}

func TestHotStuffOneProposalPerView(t *testing.T) {
	// The paper's explanation for HotStuff's flat throughput: one
	// proposal per consensus instance. Commits must have strictly
	// increasing views.
	c := build(t, 4, nil, 17, 12)
	c.start(nil)
	c.net.RunUntilQuiet(5 * time.Minute)
	seq := c.commits[c.members[0]]
	for i := 1; i < len(seq); i++ {
		if seq[i].View <= seq[i-1].View {
			t.Fatalf("commit %d view %d not increasing", i, seq[i].View)
		}
	}
}

func TestQCVerification(t *testing.T) {
	signers, _, err := crypto.GenerateCluster(crypto.SchemeSim, 4, 5)
	if err != nil {
		t.Fatal(err)
	}
	members := []types.ReplicaID{1, 2, 3, 4}
	net := simnet.New(simnet.Config{Latency: latency.Fixed(time.Millisecond), Seed: 5})
	var r *Replica
	net.AddNode(1, func(env simnet.Env) simnet.Handler {
		r = New(Config{Self: 1, View: committee.NewView(members), Signer: signers[0], Env: env})
		return r
	})
	b := &Block{View: 1, Parent: r.genesis}
	d := b.Digest()
	qc := &QC{View: 1, Block: d}
	for i := 0; i < 3; i++ {
		sig, err := signers[i].Sign(r.stmtDigest(1, d))
		if err != nil {
			t.Fatal(err)
		}
		qc.Voters = append(qc.Voters, types.ReplicaID(i+1))
		qc.Sigs = append(qc.Sigs, sig)
	}
	if !r.verifyQC(qc) {
		t.Fatal("valid QC rejected")
	}
	// Below quorum.
	bad := &QC{View: 1, Block: d, Voters: qc.Voters[:2], Sigs: qc.Sigs[:2]}
	if r.verifyQC(bad) {
		t.Fatal("sub-quorum QC accepted")
	}
	// Duplicate voter.
	dup := &QC{View: 1, Block: d,
		Voters: []types.ReplicaID{1, 1, 2},
		Sigs:   []crypto.Signature{qc.Sigs[0], qc.Sigs[0], qc.Sigs[1]}}
	if r.verifyQC(dup) {
		t.Fatal("duplicate-voter QC accepted")
	}
	// Tampered signature.
	tampered := &QC{View: 1, Block: d, Voters: qc.Voters, Sigs: append([]crypto.Signature{}, qc.Sigs...)}
	tampered.Sigs[0] = append(crypto.Signature{}, tampered.Sigs[0]...)
	tampered.Sigs[0][0] ^= 0xff
	if r.verifyQC(tampered) {
		t.Fatal("tampered QC accepted")
	}
}
