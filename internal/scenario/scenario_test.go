package scenario

import (
	"strings"
	"testing"
	"time"

	"github.com/zeroloss/zlb/internal/adversary"
	"github.com/zeroloss/zlb/internal/harness"
	"github.com/zeroloss/zlb/internal/latency"
	"github.com/zeroloss/zlb/internal/simnet"
	"github.com/zeroloss/zlb/internal/types"
)

func testCluster(t *testing.T, n int) *harness.Cluster {
	t.Helper()
	c, err := harness.New(harness.Options{
		N:           n,
		Accountable: true,
		Recover:     true,
		BaseLatency: latency.Fixed(10 * time.Millisecond),
		Seed:        1,
		PoolSize:    1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestRuntimeFaultStack checks that armed predicates compose (OR for
// drops, sum for delays) and disarm cleanly.
func TestRuntimeFaultStack(t *testing.T) {
	c := testCluster(t, 4)
	rt := NewRuntime(c)

	drop12 := rt.AddDrop(func(from, to types.ReplicaID, _ simnet.Message) bool {
		return from == 1 && to == 2
	})
	rt.AddDrop(func(from, to types.ReplicaID, _ simnet.Message) bool {
		return from == 3
	})
	if !c.Net.DropRule(1, 2, nil) || !c.Net.DropRule(3, 4, nil) {
		t.Error("armed drop predicates must fire")
	}
	if c.Net.DropRule(2, 1, nil) {
		t.Error("unmatched traffic must pass")
	}
	rt.RemoveDrop(drop12)
	if c.Net.DropRule(1, 2, nil) {
		t.Error("disarmed predicate must not fire")
	}
	if !c.Net.DropRule(3, 1, nil) {
		t.Error("remaining predicate must survive removal of another")
	}

	d1 := rt.AddDelay(func(from, _ types.ReplicaID, _ simnet.Message) time.Duration {
		if from == 1 {
			return time.Second
		}
		return 0
	})
	rt.AddDelay(func(_, to types.ReplicaID, _ simnet.Message) time.Duration {
		if to == 2 {
			return time.Second
		}
		return 0
	})
	if got := c.Net.DelayRule(1, 2, nil); got != 2*time.Second {
		t.Errorf("stacked delays must sum: got %v", got)
	}
	rt.RemoveDelay(d1)
	if got := c.Net.DelayRule(1, 2, nil); got != time.Second {
		t.Errorf("after removal: got %v, want 1s", got)
	}
}

// TestPartitionFaultModes checks both partition flavours: Extra == 0
// drops cross-group traffic, Extra > 0 delays it, and in-group or
// unlisted traffic is never touched.
func TestPartitionFaultModes(t *testing.T) {
	c := testCluster(t, 5)
	rt := NewRuntime(c)

	drop := &Partition{Groups: [][]types.ReplicaID{{1, 2}, {3, 4}}}
	drop.Apply(rt)
	if !c.Net.DropRule(1, 3, nil) {
		t.Error("cross-group message must drop")
	}
	if c.Net.DropRule(1, 2, nil) || c.Net.DropRule(5, 1, nil) || c.Net.DropRule(3, 5, nil) {
		t.Error("in-group and unlisted traffic must pass")
	}
	drop.Revert(rt)
	if c.Net.DropRule(1, 3, nil) {
		t.Error("healed partition must pass traffic")
	}

	stall := &Partition{Groups: [][]types.ReplicaID{{1, 2}, {3, 4}}, Extra: 3 * time.Second}
	stall.Apply(rt)
	if got := c.Net.DelayRule(2, 4, nil); got != 3*time.Second {
		t.Errorf("cross-group delay %v, want 3s", got)
	}
	if got := c.Net.DelayRule(1, 2, nil); got != 0 {
		t.Errorf("in-group delay %v, want 0", got)
	}
	stall.Revert(rt)
	if got := c.Net.DelayRule(2, 4, nil); got != 0 {
		t.Errorf("healed delay %v, want 0", got)
	}
}

// TestSleepExcludesFromMetrics checks that slept replicas leave the
// honest metric set permanently (they may lag after waking) while crash
// keeps them down and excluded.
func TestSleepExcludesFromMetrics(t *testing.T) {
	c := testCluster(t, 4)
	rt := NewRuntime(c)
	before := len(c.HonestMembers())

	sleep := &Sleep{IDs: []types.ReplicaID{4}}
	sleep.Apply(rt)
	if got := len(c.HonestMembers()); got != before-1 {
		t.Errorf("honest count while asleep %d, want %d", got, before-1)
	}
	sleep.Revert(rt)
	if got := len(c.HonestMembers()); got != before-1 {
		t.Errorf("a woken sleeper must stay excluded from metrics, got %d honest", got)
	}

	crash := &Crash{IDs: []types.ReplicaID{3}}
	crash.Apply(rt)
	crash.Revert(rt)
	if got := len(c.HonestMembers()); got != before-2 {
		t.Errorf("honest count after crash %d, want %d", got, before-2)
	}
}

// TestRegistryBuildsAllCampaigns checks every registered campaign builds
// at both paper committee sizes with at least two phases, and that Build
// rejects unknown names.
func TestRegistryBuildsAllCampaigns(t *testing.T) {
	names := Names()
	if len(names) < 5 {
		t.Fatalf("want >= 5 registered campaigns, have %d", len(names))
	}
	for _, n := range []int{9, 18} {
		for _, name := range names {
			s, err := Build(name, n, 42)
			if err != nil {
				t.Fatal(err)
			}
			if s.Name != name {
				t.Errorf("campaign %q builds scenario named %q", name, s.Name)
			}
			if len(s.Phases) < 2 {
				t.Errorf("campaign %q has %d phases, want >= 2", name, len(s.Phases))
			}
			if s.Opts.N != n {
				t.Errorf("campaign %q built with N=%d", name, s.Opts.N)
			}
		}
	}
	if _, err := Build("no-such-campaign", 9, 42); err == nil {
		t.Error("unknown campaign must error")
	}
}

// TestSubThresholdCoalitionCannotFork pins the partial-coalition sizing
// invariant: the chosen d is the largest that cannot sustain a second
// branch.
func TestSubThresholdCoalitionCannotFork(t *testing.T) {
	for _, n := range []int{4, 9, 18, 27} {
		d := subThresholdCoalition(n)
		if got := adversary.MaxBranches(n, d); got != 1 {
			t.Errorf("n=%d d=%d: MaxBranches=%d, want 1", n, d, got)
		}
		if next := adversary.MaxBranches(n, d+1); next == 1 {
			t.Errorf("n=%d: d=%d is not maximal (d+1 still cannot fork)", n, d)
		}
	}
}

// TestRunDeterministic runs the cheapest campaign twice and requires
// bit-identical formatted metrics — the engine-level reproducibility
// contract (the full per-campaign goldens live in the repository root's
// determinism_test.go).
func TestRunDeterministic(t *testing.T) {
	run := func() string {
		s, err := Build("partition-then-heal", 9, 7)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(s)
		if err != nil {
			t.Fatal(err)
		}
		return res.Format()
	}
	a, b := run(), run()
	if a != b {
		t.Errorf("two fixed-seed runs differ:\n--- run 1\n%s--- run 2\n%s", a, b)
	}
	if !strings.Contains(a, "partitioned") {
		t.Errorf("formatted result misses phase table:\n%s", a)
	}
}

// TestAttackCampaignRecovers runs the flagship campaign end to end and
// asserts the paper's full arc: a fork appears, the coalition is
// detected, excluded, and the honest committees converge (Def. 3).
func TestAttackCampaignRecovers(t *testing.T) {
	s, err := Build("attack-detect-exclude-merge", 9, 42)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	if res.Disagreements == 0 {
		t.Error("fork phase must produce disagreements")
	}
	if res.Culprits == 0 {
		t.Error("detection must identify culprits")
	}
	if !res.Converged {
		t.Error("campaign must end converged (Def. 3)")
	}
	var sawDetect, sawExclude, sawInclude bool
	for _, p := range res.Phases {
		sawDetect = sawDetect || p.DetectSec >= 0
		sawExclude = sawExclude || p.ExcludeSec >= 0
		sawInclude = sawInclude || p.IncludeSec >= 0
	}
	if !sawDetect || !sawExclude || !sawInclude {
		t.Errorf("missing arc events: detect=%v exclude=%v include=%v", sawDetect, sawExclude, sawInclude)
	}
}
