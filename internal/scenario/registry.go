package scenario

import (
	"fmt"
	"time"

	"github.com/zeroloss/zlb/internal/adversary"
	"github.com/zeroloss/zlb/internal/harness"
	"github.com/zeroloss/zlb/internal/latency"
	"github.com/zeroloss/zlb/internal/simnet"
	"github.com/zeroloss/zlb/internal/types"
)

// Builder constructs a registered campaign for a committee size and seed.
type Builder struct {
	Name        string
	Description string
	Build       func(n int, seed int64) Scenario
}

// builders is the ordered registry; Names and Campaigns preserve
// registration order so reports are deterministic.
var builders = []Builder{
	{
		Name: "attack-detect-exclude-merge",
		Description: "binary consensus attack behind a staged honest partition: " +
			"fork, heal, detect, exclude the coalition, merge the branches",
		Build: buildAttackDetectExcludeMerge(adversary.AttackBinary),
	},
	{
		Name: "rbcast-fork-merge",
		Description: "reliable-broadcast equivocation behind a staged partition, " +
			"then the same detect/exclude/merge recovery arc",
		Build: buildAttackDetectExcludeMerge(adversary.AttackRBCast),
	},
	{
		Name: "partial-coalition",
		Description: "a coalition too small to sustain two branches attacks " +
			"behind a partition and achieves nothing: no disagreement, no fork",
		Build: buildPartialCoalition,
	},
	{
		Name: "churn-under-load",
		Description: "waves of benign crash/wake churn while the chain keeps " +
			"committing: throughput dips, no safety impact",
		Build: buildChurnUnderLoad,
	},
	{
		Name: "partition-then-heal",
		Description: "an honest network split stalls both halves below quorum, " +
			"then heals: liveness pauses and recovers, safety holds",
		Build: buildPartitionThenHeal,
	},
	{
		Name: "slow-proposer",
		Description: "one correct replica delivers everything a second late: " +
			"rounds stretch but consensus proceeds without it",
		Build: buildSlowProposer,
	},
	{
		Name: "crash-recover-catchup",
		Description: "a replica is killed mid-load, restarts from its durable " +
			"store and catches up to the honest chain digest",
		Build: buildCrashRecoverCatchup,
	},
}

// Names lists the registered campaigns in registration order.
func Names() []string {
	out := make([]string, len(builders))
	for i, b := range builders {
		out[i] = b.Name
	}
	return out
}

// Campaigns returns the registered builders in registration order.
func Campaigns() []Builder {
	out := make([]Builder, len(builders))
	copy(out, builders)
	return out
}

// Build constructs a registered campaign by name, stamping the
// registry description onto the scenario.
func Build(name string, n int, seed int64) (Scenario, error) {
	for _, b := range builders {
		if b.Name == name {
			s := b.Build(n, seed)
			if s.Description == "" {
				s.Description = b.Description
			}
			return s, nil
		}
	}
	return Scenario{}, fmt.Errorf("scenario: unknown campaign %q (have %v)", name, Names())
}

// ScenarioBatchTxs is the claimed per-proposal batch used by every
// campaign: large enough that the cost model's signature verification
// shapes round times, small enough that long multi-phase runs stay fast.
const ScenarioBatchTxs = 1000

// baseOpts is the cluster configuration shared by every campaign: the
// jittered AWS latency matrix, the c4.xlarge cost model, and full ZLB
// (accountable + recover).
func baseOpts(n int, seed int64) harness.Options {
	return harness.Options{
		N:           n,
		Accountable: true,
		Recover:     true,
		BaseLatency: latency.Jittered(latency.NewAWSMatrix(), 0.2),
		Cost:        simnet.DefaultCostModel(),
		Seed:        seed,
		BatchTxs:    ScenarioBatchTxs,
		BatchBytes:  400 * ScenarioBatchTxs,
	}
}

// subThresholdCoalition is the largest d that cannot sustain a fork
// (adversary.MaxBranches == 1): the "partial coalition" below the
// forking threshold.
func subThresholdCoalition(n int) int {
	d := 1
	for x := 1; x < n; x++ {
		if adversary.MaxBranches(n, x) != 1 {
			break
		}
		d = x
	}
	return d
}

// fastRounds is the attack-experiment coordinator timeout (see
// internal/bench): short enough that a partition finishes its instance
// before conflicting evidence crosses the injected delay.
func fastRounds(r types.Round) time.Duration {
	return 120 * time.Millisecond * time.Duration(r+1)
}

// steadyRounds is the throughput-experiment coordinator timeout.
func steadyRounds(r types.Round) time.Duration {
	return 600 * time.Millisecond * time.Duration(r+1)
}

// buildAttackDetectExcludeMerge stages the full Fig. 2 arc for either
// coalition attack: the honest partition is a fault of the first phase
// only, so healing it is what lets cross-partition evidence flow.
func buildAttackDetectExcludeMerge(attack adversary.Attack) func(n int, seed int64) Scenario {
	return func(n int, seed int64) Scenario {
		opts := baseOpts(n, seed)
		opts.Deceitful = adversary.DeceitfulCount(n)
		opts.Attack = attack
		opts.MaxInstances = 4
		opts.CoordTimeout = fastRounds
		// A 5 s stall (§5.3's catastrophic delay) keeps each partition
		// deciding alone for the whole fork phase; healing it is what
		// lets the conflicting certificates cross.
		partition := &CoalitionPartition{Extra: 5 * time.Second}
		name := "attack-detect-exclude-merge"
		if attack == adversary.AttackRBCast {
			name = "rbcast-fork-merge"
		}
		return Scenario{
			Name: name,
			Opts: opts,
			Phases: []Phase{
				{Name: "fork", Duration: 6 * time.Second, Faults: []Fault{partition}},
				{Name: "heal-detect", Duration: 6 * time.Second},
				{Name: "exclude-include", Duration: 12 * time.Second},
			},
			Drain: 10 * time.Minute,
		}
	}
}

// buildPartialCoalition attacks with a coalition below the forking
// threshold: MaxBranches is 1, so the equivocation degenerates into
// consistent votes — no disagreement, no PoFs, the chain just commits.
// The coalition plan has a single honest partition (CoalitionPartition
// would be a no-op), so the attack phase stalls an explicit honest
// split instead: even with the network genuinely degraded, a
// sub-threshold coalition cannot fork.
func buildPartialCoalition(n int, seed int64) Scenario {
	opts := baseOpts(n, seed)
	opts.Deceitful = subThresholdCoalition(n)
	opts.Attack = adversary.AttackBinary
	opts.MaxInstances = 20
	opts.CoordTimeout = fastRounds
	opts.PoolSize = 1 // no membership change can trigger
	partition := &Partition{Groups: honestHalves(n, opts.Deceitful), Extra: 800 * time.Millisecond}
	return Scenario{
		Name: "partial-coalition",
		Opts: opts,
		Phases: []Phase{
			{Name: "attack", Duration: 12 * time.Second, Faults: []Fault{partition}},
			{Name: "steady", Duration: 12 * time.Second},
		},
		Drain: 2 * time.Minute,
	}
}

// honestHalves splits the honest committee members (IDs d+1..n) into two
// groups, leaving the d deceitful replicas unlisted — unrestricted, the
// §5.2 convention that attackers talk to every partition at full speed.
func honestHalves(n, deceitful int) [][]types.ReplicaID {
	honest := n - deceitful
	var a, b []types.ReplicaID
	for i := deceitful + 1; i <= n; i++ {
		if i-deceitful <= honest/2 {
			a = append(a, types.ReplicaID(i))
		} else {
			b = append(b, types.ReplicaID(i))
		}
	}
	return [][]types.ReplicaID{a, b}
}

// buildChurnUnderLoad sleeps two successive waves of benign replicas
// under continuous load. A replica that slept through an instance stays
// behind after waking (a plain sleeper never requests catch-up — that
// is wired for pool joiners and disk-recovered replicas, see
// crash-recover-catchup), so the waves are sized to keep
// sleepers-plus-laggards within the quorum margin n − ⌈2n/3⌉ and
// commits continue throughout.
func buildChurnUnderLoad(n int, seed int64) Scenario {
	opts := baseOpts(n, seed)
	opts.MaxInstances = 24
	opts.CoordTimeout = steadyRounds
	opts.PoolSize = 1
	wave := (n - types.Quorum(n)) / 2
	if wave < 1 {
		wave = 1
	}
	waveA := make([]types.ReplicaID, 0, wave)
	waveB := make([]types.ReplicaID, 0, wave)
	for i := 0; i < wave; i++ {
		waveA = append(waveA, types.ReplicaID(n-i))
		waveB = append(waveB, types.ReplicaID(n-wave-i))
	}
	return Scenario{
		Name: "churn-under-load",
		Opts: opts,
		Phases: []Phase{
			{Name: "warmup", Duration: 8 * time.Second},
			{Name: "churn-a", Duration: 10 * time.Second, Faults: []Fault{&Sleep{IDs: waveA}}},
			{Name: "churn-b", Duration: 10 * time.Second, Faults: []Fault{&Sleep{IDs: waveB}}},
			{Name: "recover", Duration: 12 * time.Second},
		},
	}
}

// buildPartitionThenHeal splits the honest committee in half with a 3 s
// stall: neither half reaches the ⌈2n/3⌉ quorum, so commits pause until
// the stalled traffic lands after the heal.
func buildPartitionThenHeal(n int, seed int64) Scenario {
	opts := baseOpts(n, seed)
	opts.MaxInstances = 24
	opts.CoordTimeout = steadyRounds
	opts.PoolSize = 1
	half := n / 2
	groupA := make([]types.ReplicaID, 0, half)
	groupB := make([]types.ReplicaID, 0, n-half)
	for i := 1; i <= n; i++ {
		if i <= half {
			groupA = append(groupA, types.ReplicaID(i))
		} else {
			groupB = append(groupB, types.ReplicaID(i))
		}
	}
	split := &Partition{Groups: [][]types.ReplicaID{groupA, groupB}, Extra: 3 * time.Second}
	return Scenario{
		Name: "partition-then-heal",
		Opts: opts,
		Phases: []Phase{
			{Name: "healthy", Duration: 8 * time.Second},
			{Name: "partitioned", Duration: 12 * time.Second, Faults: []Fault{split}},
			{Name: "healed", Duration: 12 * time.Second},
		},
	}
}

// buildCrashRecoverCatchup kills the highest-ID replica mid-load —
// process down, in-memory consensus state gone — and restarts it from
// its durable block store (internal/store) one phase later: the
// recovered incarnation restores its persisted chain, rejoins, and pulls
// the instances it missed through certificate-verified catch-up. The
// golden pins that it ends in full digest agreement with the honest
// chain and that the recovery produces zero disagreements.
func buildCrashRecoverCatchup(n int, seed int64) Scenario {
	opts := baseOpts(n, seed)
	opts.MaxInstances = 24
	opts.CoordTimeout = steadyRounds
	opts.PoolSize = 1
	victim := types.ReplicaID(n)
	return Scenario{
		Name:         "crash-recover-catchup",
		Opts:         opts,
		NeedsDataDir: true,
		VerifyChains: []types.ReplicaID{victim},
		Phases: []Phase{
			{Name: "warmup", Duration: 6 * time.Second},
			{Name: "crashed", Duration: 10 * time.Second, Faults: []Fault{&CrashRestart{IDs: []types.ReplicaID{victim}}}},
			{Name: "catchup", Duration: 10 * time.Second},
		},
		Drain: 2 * time.Minute,
	}
}

// buildSlowProposer delays everything the highest-ID replica sends by one
// second: its slot times out or decides late, the rest of the committee
// carries on.
func buildSlowProposer(n int, seed int64) Scenario {
	opts := baseOpts(n, seed)
	opts.MaxInstances = 24
	opts.CoordTimeout = steadyRounds
	opts.PoolSize = 1
	slow := &SlowReplica{ID: types.ReplicaID(n), Extra: time.Second}
	return Scenario{
		Name: "slow-proposer",
		Opts: opts,
		Phases: []Phase{
			{Name: "healthy", Duration: 8 * time.Second},
			{Name: "slow", Duration: 12 * time.Second, Faults: []Fault{slow}},
			{Name: "recovered", Duration: 10 * time.Second},
		},
	}
}
