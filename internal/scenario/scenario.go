// Package scenario is a declarative, deterministic engine for staged
// adversarial campaigns: it composes fault phases — coalition attacks
// (internal/adversary), benign crash/sleep replicas, degraded or severed
// partitions, slow proposers — over virtual time on a simulated cluster
// (internal/harness) and reads out per-phase metrics (throughput,
// disagreements, detection/exclusion/inclusion times).
//
// A Scenario is a base cluster configuration plus an ordered list of
// Phases. Each phase activates its faults, runs the cluster to the
// phase's virtual deadline, snapshots the harness metrics, and reverts
// the faults. Because the simulator is deterministic and faults are
// applied at phase boundaries (never mid-event), a scenario's per-phase
// metrics are bit-identical across runs with the same seed — the property
// determinism_test.go pins for every registered scenario.
//
// The engine reproduces the staged and mixed-fault regimes evaluated by
// the extended ZLB report (arXiv:2305.02498) and the malicious-majority
// broadcast study (arXiv:2108.01341): the full attack → detection →
// exclusion → merge arc of the paper's Fig. 2, plus churn and partition
// recoveries the canned single-attack experiments of internal/bench
// cannot express. Registered campaigns are listed by Names and built by
// Build; `zlb-bench -experiment scenarios` runs them all.
package scenario

import (
	"fmt"
	"os"
	"strings"
	"time"

	"github.com/zeroloss/zlb/internal/harness"
	"github.com/zeroloss/zlb/internal/simnet"
	"github.com/zeroloss/zlb/internal/types"
)

// Fault is one injectable condition. Apply arms it on the runtime's fault
// stack; Revert disarms it. A fault listed in two consecutive phases is
// reverted and re-applied at the boundary with no events in between, so
// it behaves as if continuously active.
type Fault interface {
	Apply(rt *Runtime)
	Revert(rt *Runtime)
}

// Phase is one stage of a campaign: the faults active during a window of
// virtual time.
type Phase struct {
	// Name labels the phase in reports ("fork", "heal", ...).
	Name string
	// Duration is the phase's virtual-time length.
	Duration time.Duration
	// Faults are applied at phase start and reverted at phase end.
	Faults []Fault
}

// Scenario is a named multi-phase campaign over one simulated cluster.
type Scenario struct {
	Name        string
	Description string
	// Opts is the base cluster configuration (committee size, coalition,
	// latency and cost models, seed).
	Opts harness.Options
	// Phases run in order; each covers Duration of virtual time.
	Phases []Phase
	// Drain, if positive, appends a fault-free "drain" phase that runs
	// the event queue until quiet (bounded by Drain extra virtual time),
	// so in-flight recoveries can complete.
	Drain time.Duration
	// NeedsDataDir gives every replica a durable block store: Run
	// provisions a temporary data directory (removed afterwards) when
	// Opts.DataDir is empty. Campaigns using CrashRestart require it.
	NeedsDataDir bool
	// VerifyChains lists replicas whose final decided chain is compared
	// digest-for-digest against the first honest replica's; the outcome
	// lands in Result.Recovered (and the campaign's golden).
	VerifyChains []types.ReplicaID
}

// Runtime is the live fault stack of a running scenario. Faults register
// drop and delay predicates; the runtime composes them (OR for drops, sum
// for delays) onto the cluster's simulated network.
type Runtime struct {
	Cluster *harness.Cluster

	nextID int
	drops  []stackedRule[func(from, to types.ReplicaID, msg simnet.Message) bool]
	delays []stackedRule[func(from, to types.ReplicaID, msg simnet.Message) time.Duration]
	// err records the first fault-application failure (e.g. a restart
	// whose store cannot be reopened); Run surfaces it.
	err error
}

// fail records a fault failure; the first one wins.
func (rt *Runtime) fail(err error) {
	if err != nil && rt.err == nil {
		rt.err = err
	}
}

type stackedRule[T any] struct {
	id int
	fn T
}

// NewRuntime wires the fault stack onto the cluster's network. The
// installed rules read the stack on every call, so faults armed later
// take effect immediately.
func NewRuntime(c *harness.Cluster) *Runtime {
	rt := &Runtime{Cluster: c}
	c.Net.DropRule = func(from, to types.ReplicaID, msg simnet.Message) bool {
		for _, r := range rt.drops {
			if r.fn(from, to, msg) {
				return true
			}
		}
		return false
	}
	c.Net.DelayRule = func(from, to types.ReplicaID, msg simnet.Message) time.Duration {
		var d time.Duration
		for _, r := range rt.delays {
			d += r.fn(from, to, msg)
		}
		return d
	}
	return rt
}

// AddDrop arms a drop predicate and returns its handle.
func (rt *Runtime) AddDrop(fn func(from, to types.ReplicaID, msg simnet.Message) bool) int {
	rt.nextID++
	rt.drops = append(rt.drops, stackedRule[func(from, to types.ReplicaID, msg simnet.Message) bool]{id: rt.nextID, fn: fn})
	return rt.nextID
}

// RemoveDrop disarms a drop predicate; unknown handles are ignored.
func (rt *Runtime) RemoveDrop(id int) {
	for i, r := range rt.drops {
		if r.id == id {
			rt.drops = append(rt.drops[:i], rt.drops[i+1:]...)
			return
		}
	}
}

// AddDelay arms a delay predicate and returns its handle.
func (rt *Runtime) AddDelay(fn func(from, to types.ReplicaID, msg simnet.Message) time.Duration) int {
	rt.nextID++
	rt.delays = append(rt.delays, stackedRule[func(from, to types.ReplicaID, msg simnet.Message) time.Duration]{id: rt.nextID, fn: fn})
	return rt.nextID
}

// RemoveDelay disarms a delay predicate; unknown handles are ignored.
func (rt *Runtime) RemoveDelay(id int) {
	for i, r := range rt.delays {
		if r.id == id {
			rt.delays = append(rt.delays[:i], rt.delays[i+1:]...)
			return
		}
	}
}

// --- Fault implementations ---

// MetricExcluder is implemented by faults whose targets must leave the
// honest metric readings for the whole run. Run collects these before
// the first snapshot, so the honest set never changes between snapshots
// and per-phase deltas stay monotone (a mid-run change of the observer
// replica would otherwise produce negative commit or disagreement
// deltas).
type MetricExcluder interface {
	MetricExclusions() []types.ReplicaID
}

// Crash takes replicas down permanently: Revert leaves them down, the
// paper's benign (mute) fault.
type Crash struct {
	IDs []types.ReplicaID
}

// MetricExclusions implements MetricExcluder.
func (f *Crash) MetricExclusions() []types.ReplicaID { return f.IDs }

// Apply implements Fault.
func (f *Crash) Apply(rt *Runtime) {
	rt.Cluster.ExcludeFromMetrics(f.IDs...)
	for _, id := range f.IDs {
		rt.Cluster.Net.SetUp(id, false)
	}
}

// Revert implements Fault: crashed replicas stay down.
func (f *Crash) Revert(*Runtime) {}

// Sleep takes replicas down for the duration of the phase and wakes them
// on Revert — churn. A woken replica rejoins with whatever protocol state
// it had; it catches up through DECIDE forwarding and the confirmation
// phase like any slow replica.
type Sleep struct {
	IDs []types.ReplicaID
}

// MetricExclusions implements MetricExcluder.
func (f *Sleep) MetricExclusions() []types.ReplicaID { return f.IDs }

// Apply implements Fault.
func (f *Sleep) Apply(rt *Runtime) {
	rt.Cluster.ExcludeFromMetrics(f.IDs...)
	for _, id := range f.IDs {
		rt.Cluster.Net.SetUp(id, false)
	}
}

// Revert implements Fault.
func (f *Sleep) Revert(rt *Runtime) {
	for _, id := range f.IDs {
		rt.Cluster.Net.SetUp(id, true)
	}
}

// CrashRestart kills replicas at phase start — process down, in-memory
// consensus state lost, store closed like a dead process's descriptors —
// and restarts them from their on-disk stores at phase end. The
// restarted incarnation recovers its persisted chain, rejoins, and
// requests certificate-verified catch-up for everything it missed. The
// enclosing scenario must set NeedsDataDir.
type CrashRestart struct {
	IDs []types.ReplicaID
}

// MetricExclusions implements MetricExcluder: a crash-restarted replica
// lags the honest readings while down, like the paper's benign replicas.
func (f *CrashRestart) MetricExclusions() []types.ReplicaID { return f.IDs }

// Apply implements Fault.
func (f *CrashRestart) Apply(rt *Runtime) {
	rt.Cluster.ExcludeFromMetrics(f.IDs...)
	for _, id := range f.IDs {
		rt.fail(rt.Cluster.CrashToDisk(id))
	}
}

// Revert implements Fault: the phase boundary is the restart.
func (f *CrashRestart) Revert(rt *Runtime) {
	for _, id := range f.IDs {
		rt.fail(rt.Cluster.RestartFromDisk(id))
	}
}

// Partition splits the listed nodes into groups. With Extra zero,
// cross-group messages are dropped (full loss); with Extra positive they
// are delayed by Extra (a stalled but lossless partition, which heals
// cleanly because late messages still arrive). Nodes in no group are
// unaffected.
type Partition struct {
	Groups [][]types.ReplicaID
	Extra  time.Duration

	handle int
	isDrop bool
}

// Apply implements Fault.
func (f *Partition) Apply(rt *Runtime) {
	groupOf := make(map[types.ReplicaID]int)
	for g, ids := range f.Groups {
		for _, id := range ids {
			groupOf[id] = g + 1 // 0 means unlisted
		}
	}
	lookup := func(id types.ReplicaID) int { return groupOf[id] - 1 }
	if f.Extra == 0 {
		f.isDrop = true
		f.handle = rt.AddDrop(simnet.PartitionDrop(lookup))
		return
	}
	f.isDrop = false
	f.handle = rt.AddDelay(simnet.PartitionDelay(lookup, f.Extra))
}

// Revert implements Fault.
func (f *Partition) Revert(rt *Runtime) {
	if f.isDrop {
		rt.RemoveDrop(f.handle)
		return
	}
	rt.RemoveDelay(f.handle)
}

// CoalitionPartition delays honest-to-honest traffic across the
// cluster coalition's partition plan by Extra — the network condition of
// the paper's coalition attacks (§5.2): deceitful replicas keep talking
// to every partition at full speed, only honest cross-partition links
// stall. Staging it as a fault (instead of baking a latency overlay into
// the cluster) is what lets a campaign heal the partition mid-run.
type CoalitionPartition struct {
	Extra time.Duration

	handle int
}

// Apply implements Fault.
func (f *CoalitionPartition) Apply(rt *Runtime) {
	coalition := rt.Cluster.Coalition
	f.handle = rt.AddDelay(simnet.PartitionDelay(coalition.PartitionOf, f.Extra))
}

// Revert implements Fault.
func (f *CoalitionPartition) Revert(rt *Runtime) { rt.RemoveDelay(f.handle) }

// SlowReplica delays every message the replica sends by Extra — the
// "slow proposer": its proposals arrive late, so other slots decide
// first and rounds stretch, but it commits no fault.
type SlowReplica struct {
	ID    types.ReplicaID
	Extra time.Duration

	handle int
}

// Apply implements Fault.
func (f *SlowReplica) Apply(rt *Runtime) {
	id, extra := f.ID, f.Extra
	f.handle = rt.AddDelay(func(from, _ types.ReplicaID, _ simnet.Message) time.Duration {
		if from == id {
			return extra
		}
		return 0
	})
}

// Revert implements Fault.
func (f *SlowReplica) Revert(rt *Runtime) { rt.RemoveDelay(f.handle) }

// --- Results ---

// PhaseResult is the metric delta over one phase window.
type PhaseResult struct {
	Name  string
	Start time.Duration
	End   time.Duration
	// Committed / Txs are instances and claimed transactions committed
	// during the phase (first honest replica); TxPerSec is Txs over the
	// phase's wall of virtual time.
	Committed int
	Txs       int
	TxPerSec  float64
	// Disagreements produced during the phase (Fig. 4 granularity).
	Disagreements int
	// Culprits is the cumulative count of provably deceitful replicas at
	// phase end.
	Culprits int
	// DetectSec / ExcludeSec / IncludeSec are absolute virtual times (in
	// seconds) when the fd-threshold detection, the exclusion consensus
	// and the inclusion consensus completed — set on the phase in which
	// each event landed, -1 elsewhere.
	DetectSec  float64
	ExcludeSec float64
	IncludeSec float64
	// Delivered / Dropped are simulator event deltas.
	Delivered int
	Dropped   int
}

// RecoveryStatus is the final chain comparison for one replica listed in
// Scenario.VerifyChains: whether its decided digests match the first
// honest replica's, instance for instance.
type RecoveryStatus struct {
	ID    types.ReplicaID
	Match bool
	// Have / Want count matching instances vs the honest chain length.
	Have, Want int
}

// Result is a completed campaign.
type Result struct {
	Scenario    string
	Description string
	N           int
	Seed        int64
	Phases      []PhaseResult
	// Converged reports Def. 3 convergence: all honest replicas agree on
	// a final committee with deceitful ratio < 1/3.
	Converged bool
	// Committed / Disagreements / Culprits are end-of-run totals.
	Committed     int
	Disagreements int
	Culprits      int
	// Recovered holds the end-of-run chain comparison for every replica
	// in Scenario.VerifyChains (crash-recovery campaigns).
	Recovered []RecoveryStatus
}

// Run executes the scenario and returns its per-phase metrics.
func Run(s Scenario) (*Result, error) {
	if s.NeedsDataDir && s.Opts.DataDir == "" {
		dir, err := os.MkdirTemp("", "zlb-scenario-")
		if err != nil {
			return nil, fmt.Errorf("scenario %s: %w", s.Name, err)
		}
		defer os.RemoveAll(dir)
		s.Opts.DataDir = dir
	}
	c, err := harness.New(s.Opts)
	if err != nil {
		return nil, fmt.Errorf("scenario %s: %w", s.Name, err)
	}
	defer c.CloseStores()
	rt := NewRuntime(c)
	// Exclude every replica any phase will crash or sleep before the
	// first snapshot: the honest metric set stays constant for the whole
	// run, keeping per-phase deltas monotone.
	for i := range s.Phases {
		for _, f := range s.Phases[i].Faults {
			if ex, ok := f.(MetricExcluder); ok {
				c.ExcludeFromMetrics(ex.MetricExclusions()...)
			}
		}
	}
	c.Start()

	res := &Result{Scenario: s.Name, Description: s.Description, N: s.Opts.N, Seed: s.Opts.Seed}
	prev := c.Snapshot()
	var now time.Duration
	for i := range s.Phases {
		ph := &s.Phases[i]
		for _, f := range ph.Faults {
			f.Apply(rt)
		}
		now += ph.Duration
		c.Run(now)
		snap := c.Snapshot()
		res.Phases = append(res.Phases, diffPhase(ph.Name, prev, snap))
		prev = snap
		for _, f := range ph.Faults {
			f.Revert(rt)
		}
	}
	if s.Drain > 0 {
		c.RunUntilQuiet(now + s.Drain)
		snap := c.Snapshot()
		res.Phases = append(res.Phases, diffPhase("drain", prev, snap))
		prev = snap
	}
	if rt.err != nil {
		return nil, fmt.Errorf("scenario %s: %w", s.Name, rt.err)
	}
	if err := c.StoreErr(); err != nil {
		return nil, fmt.Errorf("scenario %s: %w", s.Name, err)
	}
	if c.Exhausted() {
		return nil, fmt.Errorf("scenario %s: simulator exhausted its MaxEvents budget mid-run; metrics would come from a truncated simulation", s.Name)
	}
	res.Converged = c.ConvergedAgreement()
	res.Committed = prev.Committed
	res.Disagreements = prev.Disagreements
	res.Culprits = prev.Culprits
	for _, id := range s.VerifyChains {
		match, have, want := c.ChainAgreement(id)
		res.Recovered = append(res.Recovered, RecoveryStatus{ID: id, Match: match, Have: have, Want: want})
	}
	return res, nil
}

// diffPhase turns two cumulative snapshots into the phase delta.
func diffPhase(name string, prev, snap harness.Snapshot) PhaseResult {
	p := PhaseResult{
		Name:          name,
		Start:         prev.At,
		End:           snap.At,
		Committed:     snap.Committed - prev.Committed,
		Txs:           snap.Txs - prev.Txs,
		Disagreements: snap.Disagreements - prev.Disagreements,
		Culprits:      snap.Culprits,
		DetectSec:     -1,
		ExcludeSec:    -1,
		IncludeSec:    -1,
		Delivered:     snap.Delivered - prev.Delivered,
		Dropped:       snap.Dropped - prev.Dropped,
	}
	if span := snap.At - prev.At; span > 0 {
		p.TxPerSec = float64(p.Txs) / span.Seconds()
	}
	if snap.Detected && !prev.Detected {
		p.DetectSec = snap.DetectedAt.Seconds()
	}
	if snap.Excluded && !prev.Excluded {
		p.ExcludeSec = snap.ExcludedAt.Seconds()
	}
	if snap.Included && !prev.Included {
		p.IncludeSec = snap.IncludedAt.Seconds()
	}
	return p
}

// Format renders the result as a deterministic fixed-layout table — the
// representation the goldens in determinism_test.go pin bit for bit.
func (r *Result) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "scenario %s n=%d seed=%d converged=%v committed=%d disagreements=%d culprits=%d\n",
		r.Scenario, r.N, r.Seed, r.Converged, r.Committed, r.Disagreements, r.Culprits)
	fmt.Fprintf(&b, "%-15s %8s %8s %6s %10s %7s %8s %10s %10s %10s\n",
		"phase", "start(s)", "end(s)", "commit", "tx/s", "disagr", "culprits", "detect(s)", "exclude(s)", "include(s)")
	for _, p := range r.Phases {
		fmt.Fprintf(&b, "%-15s %8.2f %8.2f %6d %10.1f %7d %8d %10s %10s %10s\n",
			p.Name, p.Start.Seconds(), p.End.Seconds(), p.Committed, p.TxPerSec,
			p.Disagreements, p.Culprits,
			formatEvent(p.DetectSec), formatEvent(p.ExcludeSec), formatEvent(p.IncludeSec))
	}
	for _, rec := range r.Recovered {
		fmt.Fprintf(&b, "recovered %v: chain %d/%d instances, digests match=%v\n",
			rec.ID, rec.Have, rec.Want, rec.Match)
	}
	return b.String()
}

func formatEvent(sec float64) string {
	if sec < 0 {
		return "-"
	}
	return fmt.Sprintf("%.2f", sec)
}
