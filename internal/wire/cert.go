package wire

import (
	"encoding/binary"
	"errors"
	"fmt"

	"github.com/zeroloss/zlb/internal/accountability"
	"github.com/zeroloss/zlb/internal/crypto"
	"github.com/zeroloss/zlb/internal/types"
)

// Certificate codec. Certificates travel in durable sync transfers and
// catch-up responses, so the format is versioned from day one:
//
//	byte 0        format version (certFormatV1)
//	byte 1        scheme kind (crypto.SchemeKind)
//	byte 2        form: certFormSigned | certFormAggregate
//	bytes 3..52   statement (accountability.EncodedLen, fixed 50 bytes)
//	then, signed-statement form:
//	    count u32, count × signed statement (appendSigned layout)
//	or, aggregate form:
//	    bitmapLen u32, bitmap, sigLen u32, aggregate signature
//
// The aggregate bitmap is over the crypto.Registry's canonical signer
// index: bit i set means the identity at registry position i signed. With
// a nil registry the identity mapping bit i ↔ ReplicaID(i+1) applies,
// which coincides with the dense 1..n registration every cluster
// bootstrap in this repository performs. Decoders reject unknown
// versions, unknown scheme kinds, non-canonical bitmaps (trailing zero
// byte), and trailing garbage, so a decoded certificate re-encodes
// byte-identically.

const (
	certFormatV1 = 1

	certFormSigned    = 0
	certFormAggregate = 1

	certHeaderLen = 3 + accountability.EncodedLen
)

// Certificate codec errors.
var (
	ErrCertVersion = errors.New("wire: unknown certificate format version")
	ErrCertScheme  = errors.New("wire: certificate scheme kind mismatch")
	ErrCertSigner  = errors.New("wire: certificate bitmap names an unregistered signer")
)

// EncodeCertificate serializes a certificate under the given scheme kind.
// reg supplies the canonical signer index for aggregate bitmaps; nil uses
// the identity mapping (bit i ↔ ReplicaID(i+1)).
func EncodeCertificate(kind crypto.SchemeKind, reg *crypto.Registry, c *accountability.Certificate) ([]byte, error) {
	buf := make([]byte, 0, certHeaderLen+16)
	buf = append(buf, certFormatV1, byte(kind))
	if c.Agg != nil {
		buf = append(buf, certFormAggregate)
		buf = append(buf, c.Stmt.Encode()...)
		bitmap, err := signerBitmap(reg, c.Agg.Signers)
		if err != nil {
			return nil, err
		}
		buf = appendUint32(buf, uint32(len(bitmap)))
		buf = append(buf, bitmap...)
		buf = appendUint32(buf, uint32(len(c.Agg.Sig)))
		return append(buf, c.Agg.Sig...), nil
	}
	buf = append(buf, certFormSigned)
	buf = append(buf, c.Stmt.Encode()...)
	buf = appendUint32(buf, uint32(len(c.Sigs)))
	for _, s := range c.Sigs {
		buf = appendSigned(buf, s)
	}
	return buf, nil
}

// DecodeCertificate parses a certificate, rejecting unknown versions and
// certificates stamped with a different scheme kind than expected.
func DecodeCertificate(kind crypto.SchemeKind, reg *crypto.Registry, data []byte) (*accountability.Certificate, error) {
	if len(data) < certHeaderLen {
		return nil, ErrTruncated
	}
	if data[0] != certFormatV1 {
		return nil, fmt.Errorf("%w: %d", ErrCertVersion, data[0])
	}
	gotKind := crypto.SchemeKind(data[1])
	switch gotKind {
	case crypto.SchemeECDSA, crypto.SchemeEd25519, crypto.SchemeSim:
	default:
		return nil, fmt.Errorf("%w: unknown kind %d", ErrCertScheme, data[1])
	}
	if gotKind != kind {
		return nil, fmt.Errorf("%w: got %v, want %v", ErrCertScheme, gotKind, kind)
	}
	form := data[2]
	stmt, err := accountability.DecodeStatement(data[3:certHeaderLen])
	if err != nil {
		return nil, err
	}
	r := data[certHeaderLen:]
	switch form {
	case certFormSigned:
		if len(r) < 4 {
			return nil, ErrTruncated
		}
		count := binary.BigEndian.Uint32(r)
		r = r[4:]
		const minSigned = accountability.EncodedLen + 8
		if count > maxCount || int(count) > len(r)/minSigned {
			return nil, fmt.Errorf("%w: %d signatures in %d bytes", ErrTruncated, count, len(r))
		}
		sigs := make([]accountability.Signed, 0, count)
		for i := uint32(0); i < count; i++ {
			var s accountability.Signed
			if s, r, err = decodeSigned(r); err != nil {
				return nil, fmt.Errorf("wire: certificate signature %d: %w", i, err)
			}
			if s.Stmt != stmt {
				return nil, fmt.Errorf("wire: certificate signature %d covers a different statement", i)
			}
			sigs = append(sigs, s)
		}
		if len(r) != 0 {
			return nil, fmt.Errorf("%w: %d trailing bytes", ErrTruncated, len(r))
		}
		c, err := accountability.NewCertificate(stmt, sigs)
		if err != nil {
			return nil, fmt.Errorf("wire: %w", err)
		}
		return c, nil
	case certFormAggregate:
		if len(r) < 4 {
			return nil, ErrTruncated
		}
		bitmapLen := binary.BigEndian.Uint32(r)
		r = r[4:]
		if bitmapLen > maxCount || uint32(len(r)) < bitmapLen {
			return nil, ErrTruncated
		}
		bitmap := r[:bitmapLen]
		r = r[bitmapLen:]
		signers, err := bitmapSigners(reg, bitmap)
		if err != nil {
			return nil, err
		}
		if len(r) < 4 {
			return nil, ErrTruncated
		}
		sigLen := binary.BigEndian.Uint32(r)
		r = r[4:]
		if sigLen > maxCount || uint32(len(r)) != sigLen {
			return nil, ErrTruncated
		}
		sig := crypto.Signature(r[:sigLen:sigLen])
		return &accountability.Certificate{
			Stmt: stmt,
			Agg:  &accountability.AggregateProof{Signers: signers, Sig: sig},
		}, nil
	default:
		return nil, fmt.Errorf("wire: unknown certificate form %d", form)
	}
}

// signerBitmap encodes the sorted signer set as a canonical bitmap over
// the registry's signer index (no trailing zero bytes).
func signerBitmap(reg *crypto.Registry, signers []types.ReplicaID) ([]byte, error) {
	if len(signers) == 0 {
		return nil, errors.New("wire: aggregate certificate with no signers")
	}
	var bitmap []byte
	for _, id := range signers {
		i, ok := signerIndexOf(reg, id)
		if !ok {
			return nil, fmt.Errorf("%w: %v", ErrCertSigner, id)
		}
		for len(bitmap) <= i/8 {
			bitmap = append(bitmap, 0)
		}
		bitmap[i/8] |= 1 << (i % 8)
	}
	return bitmap, nil
}

// bitmapSigners decodes a canonical bitmap back to the sorted signer set.
func bitmapSigners(reg *crypto.Registry, bitmap []byte) ([]types.ReplicaID, error) {
	if len(bitmap) == 0 || bitmap[len(bitmap)-1] == 0 {
		return nil, errors.New("wire: non-canonical certificate bitmap")
	}
	var signers []types.ReplicaID
	for i := 0; i < len(bitmap)*8; i++ {
		if bitmap[i/8]&(1<<(i%8)) == 0 {
			continue
		}
		id, ok := signerAtIndex(reg, i)
		if !ok {
			return nil, fmt.Errorf("%w: index %d", ErrCertSigner, i)
		}
		signers = append(signers, id)
	}
	return signers, nil
}

func signerIndexOf(reg *crypto.Registry, id types.ReplicaID) (int, bool) {
	if reg == nil {
		if id == 0 {
			return 0, false
		}
		return int(id) - 1, true
	}
	return reg.SignerIndex(id)
}

func signerAtIndex(reg *crypto.Registry, i int) (types.ReplicaID, bool) {
	if reg == nil {
		return types.ReplicaID(i + 1), true
	}
	return reg.SignerAt(i)
}
