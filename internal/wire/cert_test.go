package wire

import (
	"bytes"
	"errors"
	"reflect"
	"testing"

	"github.com/zeroloss/zlb/internal/accountability"
	"github.com/zeroloss/zlb/internal/crypto"
	"github.com/zeroloss/zlb/internal/types"
)

// certFixture builds a quorum certificate over a fresh n-replica cluster
// of the given scheme, in either form.
func certFixture(t testing.TB, kind crypto.SchemeKind, n int, aggregate bool) (*crypto.Registry, *accountability.Certificate) {
	t.Helper()
	signers, reg, err := crypto.GenerateCluster(kind, n, 1)
	if err != nil {
		t.Fatal(err)
	}
	stmt := accountability.Statement{
		Context:  accountability.CtxMain,
		Kind:     accountability.KindAux,
		Instance: 7,
		Slot:     2,
		Round:    1,
		Value:    accountability.BoolDigest(true),
	}
	var sigs []accountability.Signed
	for _, s := range signers[:types.Quorum(n)] {
		sg, err := accountability.SignStatement(s, stmt)
		if err != nil {
			t.Fatal(err)
		}
		sigs = append(sigs, sg)
	}
	cert, err := accountability.NewCertificateFor(signers[0], stmt, sigs, aggregate)
	if err != nil {
		t.Fatal(err)
	}
	if aggregate && !cert.IsAggregate() {
		t.Fatalf("scheme %v did not produce an aggregate certificate", kind)
	}
	return reg, cert
}

func TestCertificateRoundTripSigned(t *testing.T) {
	for _, kind := range []crypto.SchemeKind{crypto.SchemeECDSA, crypto.SchemeEd25519, crypto.SchemeSim} {
		reg, cert := certFixture(t, kind, 4, false)
		data, err := EncodeCertificate(kind, reg, cert)
		if err != nil {
			t.Fatal(err)
		}
		back, err := DecodeCertificate(kind, reg, data)
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		if !reflect.DeepEqual(back, cert) {
			t.Fatalf("%v: round trip mismatch", kind)
		}
		// Decode → re-encode is byte-identical: the codec is canonical.
		again, err := EncodeCertificate(kind, reg, back)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(again, data) {
			t.Fatalf("%v: re-encode differs", kind)
		}
	}
}

func TestCertificateRoundTripAggregate(t *testing.T) {
	reg, cert := certFixture(t, crypto.SchemeSim, 7, true)
	data, err := EncodeCertificate(crypto.SchemeSim, reg, cert)
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeCertificate(crypto.SchemeSim, reg, data)
	if err != nil {
		t.Fatal(err)
	}
	if !back.IsAggregate() {
		t.Fatal("aggregate form lost in transit")
	}
	if !reflect.DeepEqual(back.Agg.Signers, cert.Agg.Signers) {
		t.Fatalf("signers %v != %v", back.Agg.Signers, cert.Agg.Signers)
	}
	if !bytes.Equal(back.Agg.Sig, cert.Agg.Sig) {
		t.Fatal("aggregate signature mismatch")
	}
	again, err := EncodeCertificate(crypto.SchemeSim, reg, back)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(again, data) {
		t.Fatal("re-encode differs")
	}
	// The wire trip preserves verifiability.
	signers, _, err := crypto.GenerateCluster(crypto.SchemeSim, 7, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := back.Verify(signers[0], 7, nil); err != nil {
		t.Fatalf("decoded aggregate certificate fails verification: %v", err)
	}
}

// The aggregate form is dramatically smaller than the signed form for the
// same quorum — the point of the redesign.
func TestCertificateAggregateSmaller(t *testing.T) {
	reg, signed := certFixture(t, crypto.SchemeSim, 18, false)
	_, agg := certFixture(t, crypto.SchemeSim, 18, true)
	sb, err := EncodeCertificate(crypto.SchemeSim, reg, signed)
	if err != nil {
		t.Fatal(err)
	}
	ab, err := EncodeCertificate(crypto.SchemeSim, reg, agg)
	if err != nil {
		t.Fatal(err)
	}
	if len(ab)*4 > len(sb) {
		t.Fatalf("aggregate form %dB not ≥4× smaller than signed form %dB", len(ab), len(sb))
	}
}

func TestCertificateDecodeRejections(t *testing.T) {
	reg, cert := certFixture(t, crypto.SchemeSim, 4, true)
	data, err := EncodeCertificate(crypto.SchemeSim, reg, cert)
	if err != nil {
		t.Fatal(err)
	}

	bad := append([]byte(nil), data...)
	bad[0] = 2 // future format version
	if _, err := DecodeCertificate(crypto.SchemeSim, reg, bad); !errors.Is(err, ErrCertVersion) {
		t.Fatalf("future version accepted: %v", err)
	}

	bad = append([]byte(nil), data...)
	bad[1] = 99 // unknown scheme kind
	if _, err := DecodeCertificate(crypto.SchemeSim, reg, bad); !errors.Is(err, ErrCertScheme) {
		t.Fatalf("unknown kind accepted: %v", err)
	}

	// Valid kind byte, but not the kind this deployment runs.
	if _, err := DecodeCertificate(crypto.SchemeEd25519, reg, data); !errors.Is(err, ErrCertScheme) {
		t.Fatalf("cross-scheme certificate accepted: %v", err)
	}

	if _, err := DecodeCertificate(crypto.SchemeSim, reg, data[:len(data)-1]); err == nil {
		t.Fatal("truncated certificate accepted")
	}
	if _, err := DecodeCertificate(crypto.SchemeSim, reg, data[:2]); !errors.Is(err, ErrTruncated) {
		t.Fatal("truncated header accepted")
	}

	// Unknown form byte.
	bad = append([]byte(nil), data...)
	bad[2] = 7
	if _, err := DecodeCertificate(crypto.SchemeSim, reg, bad); err == nil {
		t.Fatal("unknown form accepted")
	}

	// A bitmap naming an identity outside the registry.
	small, smallCert := certFixture(t, crypto.SchemeSim, 4, true)
	raw, err := EncodeCertificate(crypto.SchemeSim, small, smallCert)
	if err != nil {
		t.Fatal(err)
	}
	tiny := crypto.NewRegistry(crypto.SchemeSim) // empty registry: no index
	if _, err := DecodeCertificate(crypto.SchemeSim, tiny, raw); !errors.Is(err, ErrCertSigner) {
		t.Fatalf("unregistered signer accepted: %v", err)
	}

	// Signed form with trailing garbage.
	_, sc := certFixture(t, crypto.SchemeSim, 4, false)
	sb, err := EncodeCertificate(crypto.SchemeSim, reg, sc)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeCertificate(crypto.SchemeSim, reg, append(sb, 0)); err == nil {
		t.Fatal("trailing bytes accepted")
	}
}

func TestCertificateEncodeRejectsUnindexedSigner(t *testing.T) {
	_, cert := certFixture(t, crypto.SchemeSim, 4, true)
	tiny := crypto.NewRegistry(crypto.SchemeSim)
	if _, err := EncodeCertificate(crypto.SchemeSim, tiny, cert); !errors.Is(err, ErrCertSigner) {
		t.Fatalf("want ErrCertSigner, got %v", err)
	}
}

func FuzzDecodeCertificate(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{certFormatV1, byte(crypto.SchemeSim), certFormAggregate})
	signers, reg, err := crypto.GenerateCluster(crypto.SchemeSim, 4, 1)
	if err != nil {
		f.Fatal(err)
	}
	stmt := accountability.Statement{
		Context:  accountability.CtxMain,
		Kind:     accountability.KindReady,
		Instance: 3,
		Slot:     1,
		Value:    types.Hash([]byte("block")),
	}
	var sigs []accountability.Signed
	for _, s := range signers[:3] {
		sg, err := accountability.SignStatement(s, stmt)
		if err != nil {
			f.Fatal(err)
		}
		sigs = append(sigs, sg)
	}
	for _, aggregate := range []bool{false, true} {
		cert, err := accountability.NewCertificateFor(signers[0], stmt, sigs, aggregate)
		if err != nil {
			f.Fatal(err)
		}
		data, err := EncodeCertificate(crypto.SchemeSim, reg, cert)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		// The registry indexes identities 1..4; decoding with nil exercises
		// the identity mapping as well.
		for _, r := range []*crypto.Registry{reg, nil} {
			c, err := DecodeCertificate(crypto.SchemeSim, r, data)
			if err != nil {
				continue
			}
			// A decoded certificate re-encodes byte-identically: the format
			// admits exactly one encoding per certificate.
			again, err := EncodeCertificate(crypto.SchemeSim, r, c)
			if err != nil {
				t.Fatalf("decoded certificate fails to re-encode: %v", err)
			}
			if !bytes.Equal(again, data) {
				t.Fatalf("re-encode differs from input:\n  in  %x\n  out %x", data, again)
			}
		}
	})
}
