// Store-record and catch-up sync codecs: the on-disk framing of
// internal/store's segmented block log and the SyncReq/SyncResp payloads
// its catch-up service exchanges between nodes.
//
// Every persisted record is framed as
//
//	payloadLen uint32 | crc32 uint32 | kind uint8 | payload
//
// with the IEEE CRC computed over kind+payload, so a torn write (partial
// frame at the tail of a segment after a crash) and a corrupted frame are
// both detectable before any payload decoding runs. The same frame bytes
// travel unchanged inside a SyncResp: a catch-up server streams its log
// tail exactly as stored, and the client re-verifies every CRC.
//
// Like every decoder in this package, the functions here must never
// panic on arbitrary input — they are fuzz targets (see fuzz_test.go).
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"

	"github.com/zeroloss/zlb/internal/types"
	"github.com/zeroloss/zlb/internal/utxo"
)

// RecordKind tags one frame of the block log.
type RecordKind uint8

// Record kinds of the segmented log.
const (
	// RecordBlock is a block committed on the happy path (bm.CommitBlock).
	RecordBlock RecordKind = 1
	// RecordSupersede is a block merged by the reconciliation phase: on
	// replay it is applied through bm.MergeBlock so it replaces — rather
	// than conflicts with — the block previously stored at its index
	// (ZLB's fork merge rewrites indices; see internal/store).
	RecordSupersede RecordKind = 2
	// RecordCheckpoint marks that a UTXO checkpoint was cut at this point
	// of the log; its payload is the cut height (big-endian LastK). The
	// marker is forensic — recovery trusts the checkpoint file itself,
	// whose durability is not ordered with the marker's.
	RecordCheckpoint RecordKind = 3
)

// Errors returned by the record decoders.
var (
	// ErrRecordTruncated marks an incomplete frame: at the tail of the
	// last segment this is a torn write and recovery truncates it away.
	ErrRecordTruncated = errors.New("wire: truncated record frame")
	// ErrRecordCorrupt marks a CRC mismatch or an impossible length.
	ErrRecordCorrupt = errors.New("wire: corrupt record frame")
)

// recordHeaderLen is payloadLen + crc + kind.
const recordHeaderLen = 4 + 4 + 1

// maxRecordPayload bounds a single record so a corrupt length prefix
// cannot trigger a huge allocation (64 MiB ≫ any batch the codecs allow).
const maxRecordPayload = 64 << 20

// AppendRecord appends one framed record to dst and returns the extended
// slice.
func AppendRecord(dst []byte, kind RecordKind, payload []byte) []byte {
	dst = appendUint32(dst, uint32(len(payload)))
	crc := crc32.NewIEEE()
	crc.Write([]byte{byte(kind)})
	crc.Write(payload)
	dst = appendUint32(dst, crc.Sum32())
	dst = append(dst, byte(kind))
	return append(dst, payload...)
}

// DecodeRecord reads one framed record from buf, returning the remainder.
// The returned payload aliases buf.
func DecodeRecord(buf []byte) (kind RecordKind, payload, rest []byte, err error) {
	if len(buf) < recordHeaderLen {
		return 0, nil, nil, ErrRecordTruncated
	}
	n := binary.BigEndian.Uint32(buf)
	if n > maxRecordPayload {
		return 0, nil, nil, fmt.Errorf("%w: %d-byte payload", ErrRecordCorrupt, n)
	}
	want := binary.BigEndian.Uint32(buf[4:])
	kind = RecordKind(buf[8])
	body := buf[recordHeaderLen:]
	if uint32(len(body)) < n {
		return 0, nil, nil, ErrRecordTruncated
	}
	payload = body[:n:n]
	crc := crc32.NewIEEE()
	crc.Write(buf[8:9])
	crc.Write(payload)
	if crc.Sum32() != want {
		return 0, nil, nil, fmt.Errorf("%w: crc mismatch", ErrRecordCorrupt)
	}
	return kind, payload, body[n:], nil
}

// BlockRecord is the payload of a RecordBlock / RecordSupersede frame: a
// decided block with the consensus coordinates needed to resume after a
// restart. Txs may be empty — the metrics harness persists digest-only
// records for synthetic (non-payment) workloads.
type BlockRecord struct {
	K       uint64
	Attempt uint32
	Digest  types.Digest
	Txs     []*utxo.Transaction
}

// EncodeBlockRecord serializes a block record payload:
//
//	k uint64 | attempt uint32 | digest [32]byte | batch (EncodeBatch)
func EncodeBlockRecord(r *BlockRecord) ([]byte, error) {
	batch, err := EncodeBatch(r.Txs)
	if err != nil {
		return nil, err
	}
	buf := make([]byte, 0, 8+4+32+len(batch))
	buf = appendUint64(buf, r.K)
	buf = appendUint32(buf, r.Attempt)
	buf = append(buf, r.Digest[:]...)
	return append(buf, batch...), nil
}

// DecodeBlockRecord parses a block record payload. The decoded
// transactions alias the payload.
func DecodeBlockRecord(payload []byte) (*BlockRecord, error) {
	if len(payload) < 8+4+32 {
		return nil, ErrTruncated
	}
	r := &BlockRecord{
		K:       binary.BigEndian.Uint64(payload),
		Attempt: binary.BigEndian.Uint32(payload[8:]),
	}
	copy(r.Digest[:], payload[12:44])
	txs, err := DecodeBatch(payload[44:])
	if err != nil {
		return nil, err
	}
	r.Txs = txs
	return r, nil
}

// CheckpointState is a complete snapshot of a bm.Ledger at a chain
// height: everything needed to resume committing and merging without the
// pruned block bodies. Block bodies below the checkpoint are dropped —
// only their digests survive, for fork detection on replay.
type CheckpointState struct {
	// LastK is the highest chain index covered by the snapshot.
	LastK uint64
	// Deposit is the pooled slashed stake at the snapshot point.
	Deposit types.Amount
	// Blocks are the digests of every stored block, by index.
	Blocks []BlockDigest
	// Merged are the digests of blocks absorbed through MergeBlock.
	Merged []types.Digest
	// UTXOs is the full unspent-output table.
	UTXOs []UTXOEntry
	// TxIDs is the committed-transaction set.
	TxIDs []types.Digest
	// Punished are the addresses marked as deceitful-owned.
	Punished []utxo.Address
	// DepositInputs are the remembered deposit-funded inputs awaiting
	// refund (Alg. 2 lines 24-28).
	DepositInputs []DepositInput
	// MergedTxs / DepositFundedTxs / Refunds restore the experiment
	// counters so post-recovery reports stay cumulative.
	MergedTxs        uint64
	DepositFundedTxs uint64
	Refunds          uint64
}

// BlockDigest is one (index, digest) chain entry of a checkpoint.
type BlockDigest struct {
	K      uint64
	Digest types.Digest
}

// UTXOEntry is one unspent output of a checkpoint.
type UTXOEntry struct {
	Op  utxo.Outpoint
	Out utxo.Output
}

// DepositInput is one deposit-funded input of a checkpoint.
type DepositInput struct {
	Op    utxo.Outpoint
	Value types.Amount
}

// Checkpoint payload magic: format identifier plus version.
var checkpointMagic = [4]byte{'Z', 'L', 'C', '1'}

// EncodeCheckpoint serializes a checkpoint snapshot.
func EncodeCheckpoint(cp *CheckpointState) []byte {
	size := 4 + 8 + 8 + 5*4 + 3*8 +
		len(cp.Blocks)*(8+32) + len(cp.Merged)*32 + len(cp.UTXOs)*(32+4+32+8) +
		len(cp.TxIDs)*32 + len(cp.Punished)*32 + len(cp.DepositInputs)*(32+4+8)
	buf := make([]byte, 0, size)
	buf = append(buf, checkpointMagic[:]...)
	buf = appendUint64(buf, cp.LastK)
	buf = appendUint64(buf, uint64(cp.Deposit))
	buf = appendUint64(buf, cp.MergedTxs)
	buf = appendUint64(buf, cp.DepositFundedTxs)
	buf = appendUint64(buf, cp.Refunds)
	buf = appendUint32(buf, uint32(len(cp.Blocks)))
	for _, b := range cp.Blocks {
		buf = appendUint64(buf, b.K)
		buf = append(buf, b.Digest[:]...)
	}
	buf = appendUint32(buf, uint32(len(cp.Merged)))
	for _, d := range cp.Merged {
		buf = append(buf, d[:]...)
	}
	buf = appendUint32(buf, uint32(len(cp.UTXOs)))
	for _, u := range cp.UTXOs {
		buf = append(buf, u.Op.TxID[:]...)
		buf = appendUint32(buf, u.Op.Index)
		buf = append(buf, u.Out.Account[:]...)
		buf = appendUint64(buf, uint64(u.Out.Value))
	}
	buf = appendUint32(buf, uint32(len(cp.TxIDs)))
	for _, d := range cp.TxIDs {
		buf = append(buf, d[:]...)
	}
	buf = appendUint32(buf, uint32(len(cp.Punished)))
	for _, a := range cp.Punished {
		buf = append(buf, a[:]...)
	}
	buf = appendUint32(buf, uint32(len(cp.DepositInputs)))
	for _, in := range cp.DepositInputs {
		buf = append(buf, in.Op.TxID[:]...)
		buf = appendUint32(buf, in.Op.Index)
		buf = appendUint64(buf, uint64(in.Value))
	}
	return buf
}

// DecodeCheckpoint parses a checkpoint snapshot.
func DecodeCheckpoint(payload []byte) (*CheckpointState, error) {
	if len(payload) < 4 || [4]byte(payload[:4]) != checkpointMagic {
		return nil, fmt.Errorf("%w: not a ZLC1 checkpoint", ErrBadMagic)
	}
	r := payload[4:]
	cp := &CheckpointState{}
	var err error
	if cp.LastK, r, err = readUint64(r); err != nil {
		return nil, err
	}
	var v uint64
	if v, r, err = readUint64(r); err != nil {
		return nil, err
	}
	cp.Deposit = types.Amount(v)
	if cp.MergedTxs, r, err = readUint64(r); err != nil {
		return nil, err
	}
	if cp.DepositFundedTxs, r, err = readUint64(r); err != nil {
		return nil, err
	}
	if cp.Refunds, r, err = readUint64(r); err != nil {
		return nil, err
	}
	var count uint32
	if count, r, err = readCount(r, 8+32); err != nil {
		return nil, err
	}
	cp.Blocks = make([]BlockDigest, count)
	for i := range cp.Blocks {
		cp.Blocks[i].K = binary.BigEndian.Uint64(r)
		copy(cp.Blocks[i].Digest[:], r[8:])
		r = r[8+32:]
	}
	if count, r, err = readCount(r, 32); err != nil {
		return nil, err
	}
	cp.Merged = make([]types.Digest, count)
	for i := range cp.Merged {
		copy(cp.Merged[i][:], r)
		r = r[32:]
	}
	if count, r, err = readCount(r, 32+4+32+8); err != nil {
		return nil, err
	}
	cp.UTXOs = make([]UTXOEntry, count)
	for i := range cp.UTXOs {
		copy(cp.UTXOs[i].Op.TxID[:], r)
		cp.UTXOs[i].Op.Index = binary.BigEndian.Uint32(r[32:])
		copy(cp.UTXOs[i].Out.Account[:], r[36:])
		cp.UTXOs[i].Out.Value = types.Amount(binary.BigEndian.Uint64(r[68:]))
		r = r[76:]
	}
	if count, r, err = readCount(r, 32); err != nil {
		return nil, err
	}
	cp.TxIDs = make([]types.Digest, count)
	for i := range cp.TxIDs {
		copy(cp.TxIDs[i][:], r)
		r = r[32:]
	}
	if count, r, err = readCount(r, 32); err != nil {
		return nil, err
	}
	cp.Punished = make([]utxo.Address, count)
	for i := range cp.Punished {
		copy(cp.Punished[i][:], r)
		r = r[32:]
	}
	if count, r, err = readCount(r, 32+4+8); err != nil {
		return nil, err
	}
	cp.DepositInputs = make([]DepositInput, count)
	for i := range cp.DepositInputs {
		copy(cp.DepositInputs[i].Op.TxID[:], r)
		cp.DepositInputs[i].Op.Index = binary.BigEndian.Uint32(r[32:])
		cp.DepositInputs[i].Value = types.Amount(binary.BigEndian.Uint64(r[36:]))
		r = r[44:]
	}
	if len(r) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrTruncated, len(r))
	}
	return cp, nil
}

// SyncReq asks a peer's catch-up service for chain state.
type SyncReq struct {
	// FromK is the first chain index the requester is missing.
	FromK uint64
	// WantCheckpoint asks for the latest checkpoint too — a fresh standby
	// bootstraps from it instead of replaying from genesis.
	WantCheckpoint bool
}

// EncodeSyncReq serializes a catch-up request.
func EncodeSyncReq(req *SyncReq) []byte {
	buf := make([]byte, 0, 9)
	buf = appendUint64(buf, req.FromK)
	b := byte(0)
	if req.WantCheckpoint {
		b = 1
	}
	return append(buf, b)
}

// DecodeSyncReq parses a catch-up request.
func DecodeSyncReq(payload []byte) (*SyncReq, error) {
	if len(payload) != 9 {
		return nil, ErrTruncated
	}
	return &SyncReq{
		FromK:          binary.BigEndian.Uint64(payload),
		WantCheckpoint: payload[8] == 1,
	}, nil
}

// SyncResp is a catch-up transfer: the serving node's latest checkpoint
// (optional) and its log tail, streamed as the exact record frames on its
// disk so the requester re-verifies every CRC.
type SyncResp struct {
	// LastK is the server's chain height.
	LastK uint64
	// Checkpoint is an EncodeCheckpoint payload, empty when the requester
	// declined one or the server has not cut one yet.
	Checkpoint []byte
	// Log is a concatenation of AppendRecord frames (block and supersede
	// records) covering FromK (or the checkpoint) through LastK.
	Log []byte
}

// EncodeSyncResp serializes a catch-up transfer.
func EncodeSyncResp(resp *SyncResp) []byte {
	buf := make([]byte, 0, 8+4+len(resp.Checkpoint)+4+len(resp.Log))
	buf = appendUint64(buf, resp.LastK)
	buf = appendUint32(buf, uint32(len(resp.Checkpoint)))
	buf = append(buf, resp.Checkpoint...)
	buf = appendUint32(buf, uint32(len(resp.Log)))
	return append(buf, resp.Log...)
}

// DecodeSyncResp parses a catch-up transfer. The returned slices alias
// the payload.
func DecodeSyncResp(payload []byte) (*SyncResp, error) {
	if len(payload) < 8+4 {
		return nil, ErrTruncated
	}
	resp := &SyncResp{LastK: binary.BigEndian.Uint64(payload)}
	r := payload[8:]
	n := binary.BigEndian.Uint32(r)
	r = r[4:]
	if uint64(n) > uint64(len(r)) {
		return nil, fmt.Errorf("%w: %d-byte checkpoint in %d bytes", ErrTruncated, n, len(r))
	}
	resp.Checkpoint = r[:n:n]
	r = r[n:]
	if len(r) < 4 {
		return nil, ErrTruncated
	}
	n = binary.BigEndian.Uint32(r)
	r = r[4:]
	if uint64(n) != uint64(len(r)) {
		return nil, fmt.Errorf("%w: %d-byte log in %d bytes", ErrTruncated, n, len(r))
	}
	resp.Log = r[:n:n]
	return resp, nil
}

// readUint64 consumes a big-endian uint64.
func readUint64(r []byte) (uint64, []byte, error) {
	if len(r) < 8 {
		return 0, nil, ErrTruncated
	}
	return binary.BigEndian.Uint64(r), r[8:], nil
}

// readCount consumes an element count and checks the buffer can hold
// count elements of elemSize bytes, bounding corrupt counts.
func readCount(r []byte, elemSize int) (uint32, []byte, error) {
	if len(r) < 4 {
		return 0, nil, ErrTruncated
	}
	count := binary.BigEndian.Uint32(r)
	r = r[4:]
	if count > maxCount || int64(count)*int64(elemSize) > int64(len(r)) {
		return 0, nil, fmt.Errorf("%w: %d elements in %d bytes", ErrTruncated, count, len(r))
	}
	return count, r, nil
}

func appendUint64(buf []byte, v uint64) []byte {
	return append(buf,
		byte(v>>56), byte(v>>48), byte(v>>40), byte(v>>32),
		byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}
