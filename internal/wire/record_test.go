package wire

import (
	"bytes"
	"testing"

	"github.com/zeroloss/zlb/internal/crypto"
	"github.com/zeroloss/zlb/internal/types"
	"github.com/zeroloss/zlb/internal/utxo"
)

// testTxs builds a couple of signed transactions for codec round-trips.
func testTxs(t *testing.T) []*utxo.Transaction {
	t.Helper()
	reg := crypto.NewRegistry(crypto.SchemeEd25519)
	scheme, err := crypto.NewScheme(crypto.SchemeEd25519, reg)
	if err != nil {
		t.Fatal(err)
	}
	rand := crypto.NewDeterministicRand(7)
	kp, err := scheme.GenerateKey(rand)
	if err != nil {
		t.Fatal(err)
	}
	w := utxo.NewWallet(kp, scheme)
	var txs []*utxo.Transaction
	for i := 0; i < 3; i++ {
		in := []utxo.Input{{Prev: utxo.Outpoint{TxID: types.Hash([]byte{byte(i)}), Index: uint32(i)}, Value: 100}}
		tx, err := w.Pay(in, []utxo.Output{{Account: w.Address(), Value: 60}})
		if err != nil {
			t.Fatal(err)
		}
		txs = append(txs, tx)
	}
	return txs
}

func TestRecordFrameRoundTrip(t *testing.T) {
	payloads := [][]byte{nil, {}, []byte("x"), bytes.Repeat([]byte("zlb"), 100)}
	var buf []byte
	for i, p := range payloads {
		buf = AppendRecord(buf, RecordKind(i%3+1), p)
	}
	rest := buf
	for i, p := range payloads {
		kind, payload, r, err := DecodeRecord(rest)
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if kind != RecordKind(i%3+1) {
			t.Errorf("record %d: kind %d, want %d", i, kind, i%3+1)
		}
		if !bytes.Equal(payload, p) {
			t.Errorf("record %d: payload %q, want %q", i, payload, p)
		}
		rest = r
	}
	if len(rest) != 0 {
		t.Errorf("%d trailing bytes", len(rest))
	}
}

func TestDecodeRecordTornTail(t *testing.T) {
	full := AppendRecord(nil, RecordBlock, []byte("payload-bytes"))
	for cut := 1; cut < len(full); cut++ {
		_, _, _, err := DecodeRecord(full[:cut])
		if err == nil {
			t.Fatalf("cut at %d: torn frame decoded", cut)
		}
	}
}

func TestDecodeRecordCorrupt(t *testing.T) {
	full := AppendRecord(nil, RecordBlock, []byte("payload-bytes"))
	for i := range full {
		mut := append([]byte(nil), full...)
		mut[i] ^= 0x40
		kind, payload, _, err := DecodeRecord(mut)
		if err == nil && kind == RecordBlock && bytes.Equal(payload, []byte("payload-bytes")) {
			t.Fatalf("flip at %d: corruption not detected", i)
		}
	}
}

func TestBlockRecordRoundTrip(t *testing.T) {
	txs := testTxs(t)
	rec := &BlockRecord{K: 42, Attempt: 3, Digest: types.Hash([]byte("d")), Txs: txs}
	enc, err := EncodeBlockRecord(rec)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeBlockRecord(enc)
	if err != nil {
		t.Fatal(err)
	}
	if got.K != rec.K || got.Attempt != rec.Attempt || got.Digest != rec.Digest {
		t.Errorf("header mismatch: %+v vs %+v", got, rec)
	}
	if len(got.Txs) != len(txs) {
		t.Fatalf("got %d txs, want %d", len(got.Txs), len(txs))
	}
	for i := range txs {
		if got.Txs[i].ID() != txs[i].ID() {
			t.Errorf("tx %d: ID mismatch", i)
		}
	}
}

func TestBlockRecordEmptyTxs(t *testing.T) {
	rec := &BlockRecord{K: 7, Digest: types.Hash([]byte("digest-only"))}
	enc, err := EncodeBlockRecord(rec)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeBlockRecord(enc)
	if err != nil {
		t.Fatal(err)
	}
	if got.K != 7 || got.Digest != rec.Digest || len(got.Txs) != 0 {
		t.Errorf("digest-only record did not round-trip: %+v", got)
	}
}

func testCheckpoint() *CheckpointState {
	return &CheckpointState{
		LastK:   9,
		Deposit: 12345,
		Blocks: []BlockDigest{
			{K: 1, Digest: types.Hash([]byte("b1"))},
			{K: 2, Digest: types.Hash([]byte("b2"))},
		},
		Merged: []types.Digest{types.Hash([]byte("m"))},
		UTXOs: []UTXOEntry{
			{Op: utxo.Outpoint{TxID: types.Hash([]byte("t")), Index: 4},
				Out: utxo.Output{Account: utxo.Address(types.Hash([]byte("a"))), Value: 55}},
		},
		TxIDs:    []types.Digest{types.Hash([]byte("x")), types.Hash([]byte("y"))},
		Punished: []utxo.Address{utxo.Address(types.Hash([]byte("p")))},
		DepositInputs: []DepositInput{
			{Op: utxo.Outpoint{TxID: types.Hash([]byte("di")), Index: 1}, Value: 99},
		},
		MergedTxs:        3,
		DepositFundedTxs: 2,
		Refunds:          1,
	}
}

func TestCheckpointRoundTrip(t *testing.T) {
	cp := testCheckpoint()
	got, err := DecodeCheckpoint(EncodeCheckpoint(cp))
	if err != nil {
		t.Fatal(err)
	}
	if got.LastK != cp.LastK || got.Deposit != cp.Deposit ||
		got.MergedTxs != cp.MergedTxs || got.DepositFundedTxs != cp.DepositFundedTxs ||
		got.Refunds != cp.Refunds {
		t.Errorf("scalars mismatch: %+v vs %+v", got, cp)
	}
	if len(got.Blocks) != 2 || got.Blocks[1] != cp.Blocks[1] {
		t.Errorf("blocks mismatch: %+v", got.Blocks)
	}
	if len(got.Merged) != 1 || got.Merged[0] != cp.Merged[0] {
		t.Errorf("merged mismatch: %+v", got.Merged)
	}
	if len(got.UTXOs) != 1 || got.UTXOs[0] != cp.UTXOs[0] {
		t.Errorf("utxos mismatch: %+v", got.UTXOs)
	}
	if len(got.TxIDs) != 2 || got.TxIDs[0] != cp.TxIDs[0] {
		t.Errorf("txids mismatch: %+v", got.TxIDs)
	}
	if len(got.Punished) != 1 || got.Punished[0] != cp.Punished[0] {
		t.Errorf("punished mismatch: %+v", got.Punished)
	}
	if len(got.DepositInputs) != 1 || got.DepositInputs[0] != cp.DepositInputs[0] {
		t.Errorf("deposit inputs mismatch: %+v", got.DepositInputs)
	}
}

func TestCheckpointDecodeTruncated(t *testing.T) {
	enc := EncodeCheckpoint(testCheckpoint())
	for cut := 0; cut < len(enc); cut++ {
		if _, err := DecodeCheckpoint(enc[:cut]); err == nil {
			t.Fatalf("cut at %d: truncated checkpoint decoded", cut)
		}
	}
	if _, err := DecodeCheckpoint(append(append([]byte(nil), enc...), 0)); err == nil {
		t.Fatal("trailing byte accepted")
	}
}

func TestSyncReqRoundTrip(t *testing.T) {
	for _, req := range []*SyncReq{{FromK: 0}, {FromK: 17, WantCheckpoint: true}} {
		got, err := DecodeSyncReq(EncodeSyncReq(req))
		if err != nil {
			t.Fatal(err)
		}
		if *got != *req {
			t.Errorf("got %+v, want %+v", got, req)
		}
	}
	if _, err := DecodeSyncReq([]byte{1, 2}); err == nil {
		t.Fatal("short sync req decoded")
	}
}

func TestSyncRespRoundTrip(t *testing.T) {
	log := AppendRecord(nil, RecordBlock, []byte("r1"))
	log = AppendRecord(log, RecordSupersede, []byte("r2"))
	resp := &SyncResp{LastK: 5, Checkpoint: EncodeCheckpoint(testCheckpoint()), Log: log}
	got, err := DecodeSyncResp(EncodeSyncResp(resp))
	if err != nil {
		t.Fatal(err)
	}
	if got.LastK != 5 || !bytes.Equal(got.Checkpoint, resp.Checkpoint) || !bytes.Equal(got.Log, resp.Log) {
		t.Errorf("sync resp did not round-trip")
	}
	empty := &SyncResp{LastK: 1}
	got, err = DecodeSyncResp(EncodeSyncResp(empty))
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Checkpoint) != 0 || len(got.Log) != 0 {
		t.Errorf("empty sync resp did not round-trip: %+v", got)
	}
}
