package wire

import (
	"bytes"
	"testing"

	"github.com/zeroloss/zlb/internal/accountability"
	"github.com/zeroloss/zlb/internal/crypto"
	"github.com/zeroloss/zlb/internal/types"
	"github.com/zeroloss/zlb/internal/utxo"
)

func testWallets(t *testing.T) (*utxo.Wallet, *utxo.Wallet) {
	t.Helper()
	reg := crypto.NewRegistry(crypto.SchemeEd25519)
	scheme, err := crypto.NewScheme(crypto.SchemeEd25519, reg)
	if err != nil {
		t.Fatal(err)
	}
	rand := crypto.NewDeterministicRand(7)
	kp1, err := scheme.GenerateKey(rand)
	if err != nil {
		t.Fatal(err)
	}
	kp2, err := scheme.GenerateKey(rand)
	if err != nil {
		t.Fatal(err)
	}
	return utxo.NewWallet(kp1, scheme), utxo.NewWallet(kp2, scheme)
}

func testBatch(t *testing.T, n int) []*utxo.Transaction {
	t.Helper()
	alice, bob := testWallets(t)
	txs := make([]*utxo.Transaction, 0, n)
	for i := 0; i < n; i++ {
		op := utxo.Outpoint{TxID: types.Hash([]byte{byte(i)}), Index: uint32(i)}
		tx, err := alice.Pay(
			[]utxo.Input{{Prev: op, Value: 100}},
			[]utxo.Output{{Account: bob.Address(), Value: types.Amount(1 + i)}})
		if err != nil {
			t.Fatal(err)
		}
		txs = append(txs, tx)
	}
	return txs
}

func TestBatchRoundtrip(t *testing.T) {
	txs := testBatch(t, 5)
	payload, err := EncodeBatch(txs)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeBatch(payload)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(txs) {
		t.Fatalf("decoded %d txs, want %d", len(got), len(txs))
	}
	for i := range txs {
		if got[i].ID() != txs[i].ID() {
			t.Errorf("tx %d: id %v, want %v", i, got[i].ID(), txs[i].ID())
		}
		if !bytes.Equal(got[i].Canonical(), txs[i].Canonical()) {
			t.Errorf("tx %d: canonical encodings differ", i)
		}
		if got[i].Nonce != txs[i].Nonce || len(got[i].Inputs) != len(txs[i].Inputs) ||
			len(got[i].Outputs) != len(txs[i].Outputs) {
			t.Errorf("tx %d: fields differ after roundtrip", i)
		}
	}
}

func TestBatchRoundtripEmpty(t *testing.T) {
	payload, err := EncodeBatch(nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeBatch(payload)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("decoded %d txs from empty batch", len(got))
	}
}

func TestDecodeBatchRejectsCorruption(t *testing.T) {
	txs := testBatch(t, 2)
	payload, err := EncodeBatch(txs)
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"empty":       {},
		"bad magic":   append([]byte("GOB0"), payload[4:]...),
		"truncated":   payload[:len(payload)-3],
		"short count": payload[:6],
		"huge count":  {'Z', 'L', 'B', '1', 0xff, 0xff, 0xff, 0xff, 0, 0},
	}
	for name, p := range cases {
		if _, err := DecodeBatch(p); err == nil {
			t.Errorf("%s payload accepted", name)
		}
	}
}

// TestDecodeBatchToleratesVariantTag pins the gob-compatible tolerance
// the reconciliation merge depends on: the reliable-broadcast attack
// forks a proposal by appending a partition-tag byte to a valid batch
// (adversary.VariantPayload), and the merge must still extract every
// transaction from the forked payload — rejecting it would drop the
// conflicting branch's transactions instead of merging them.
func TestDecodeBatchToleratesVariantTag(t *testing.T) {
	txs := testBatch(t, 3)
	payload, err := EncodeBatch(txs)
	if err != nil {
		t.Fatal(err)
	}
	variant := append(append([]byte{}, payload...), 0x01) // partition tag
	got, err := DecodeBatch(variant)
	if err != nil {
		t.Fatalf("variant payload rejected: %v", err)
	}
	if len(got) != len(txs) {
		t.Fatalf("decoded %d txs from variant, want %d", len(got), len(txs))
	}
	for i := range txs {
		if got[i].ID() != txs[i].ID() {
			t.Errorf("tx %d: id mismatch in variant decode", i)
		}
	}
}

func TestBatchCache(t *testing.T) {
	txs := testBatch(t, 3)
	payload, err := EncodeBatch(txs)
	if err != nil {
		t.Fatal(err)
	}
	cache := NewBatchCache(2)
	first, err := cache.Decode(payload)
	if err != nil {
		t.Fatal(err)
	}
	second, err := cache.Decode(append([]byte{}, payload...)) // equal bytes, different array
	if err != nil {
		t.Fatal(err)
	}
	if &first[0] != &second[0] {
		t.Error("cache did not share the decoded batch")
	}
	if cache.Hits != 1 || cache.Misses != 1 {
		t.Errorf("hits=%d misses=%d, want 1/1", cache.Hits, cache.Misses)
	}

	// FIFO eviction: two more distinct payloads push the first one out.
	for i := 0; i < 2; i++ {
		p, err := EncodeBatch(testBatch(t, i+4))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := cache.Decode(p); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := cache.Decode(payload); err != nil {
		t.Fatal(err)
	}
	if cache.Misses != 4 {
		t.Errorf("misses=%d, want 4 (evicted entry re-decoded)", cache.Misses)
	}
}

func TestPoFsRoundtrip(t *testing.T) {
	signers, _, err := crypto.GenerateCluster(crypto.SchemeEd25519, 4, 11)
	if err != nil {
		t.Fatal(err)
	}
	stmt := accountability.Statement{
		Context:  accountability.CtxMain,
		Kind:     accountability.KindAux,
		Instance: 3,
		Slot:     1,
		Round:    2,
		Value:    accountability.BoolDigest(true),
	}
	stmtB := stmt
	stmtB.Value = accountability.BoolDigest(false)
	a, err := accountability.SignStatement(signers[1], stmt)
	if err != nil {
		t.Fatal(err)
	}
	b, err := accountability.SignStatement(signers[1], stmtB)
	if err != nil {
		t.Fatal(err)
	}
	pof, err := accountability.NewPoF(a, b)
	if err != nil {
		t.Fatal(err)
	}

	payload, err := EncodePoFs([]accountability.PoF{pof})
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodePoFs(payload)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("decoded %d pofs, want 1", len(got))
	}
	if !got[0].Verify(signers[0]) {
		t.Error("decoded PoF no longer verifies")
	}
	if got[0].Culprit != pof.Culprit {
		t.Errorf("culprit %v, want %v", got[0].Culprit, pof.Culprit)
	}
	if _, err := DecodePoFs(payload[:len(payload)-2]); err == nil {
		t.Error("truncated PoF payload accepted")
	}
}

func TestReplicasRoundtrip(t *testing.T) {
	ids := []types.ReplicaID{4, 7, 19}
	payload, err := EncodeReplicas(ids)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeReplicas(payload)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(ids) {
		t.Fatalf("decoded %d ids, want %d", len(got), len(ids))
	}
	for i := range ids {
		if got[i] != ids[i] {
			t.Errorf("id %d: %v, want %v", i, got[i], ids[i])
		}
	}
	if _, err := DecodeReplicas(payload[:len(payload)-1]); err == nil {
		t.Error("truncated replica payload accepted")
	}
}
