package wire

import (
	"testing"

	"github.com/zeroloss/zlb/internal/types"
	"github.com/zeroloss/zlb/internal/utxo"
)

// The decoders in this package parse attacker-controlled bytes: batch
// payloads arrive through consensus proposals, PoF sets and replica
// lists through membership proposals, and store-record/sync frames
// through the catch-up service. Each fuzz target pins the only
// acceptable outcomes — a successful decode or a returned error, never a
// panic — and, where cheap, that a successful decode re-encodes
// faithfully. Seed corpora live under testdata/fuzz/<Target>/; run a
// target longer with `go test -fuzz FuzzDecodeBatch ./internal/wire`.

// fuzzBatch builds a small valid batch payload for the seed corpus.
func fuzzBatch() []byte {
	tx := &utxo.Transaction{
		Inputs:  []utxo.Input{{Prev: utxo.Outpoint{TxID: types.Hash([]byte("prev")), Index: 1}, Value: 50}},
		Outputs: []utxo.Output{{Account: utxo.Address(types.Hash([]byte("to"))), Value: 50}},
		Nonce:   1,
		Sender:  []byte("sender-key"),
		Sig:     []byte("signature"),
	}
	payload, _ := EncodeBatch([]*utxo.Transaction{tx})
	return payload
}

func FuzzDecodeBatch(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("ZLB1"))
	f.Add(fuzzBatch())
	f.Fuzz(func(t *testing.T, data []byte) {
		txs, err := DecodeBatch(data)
		if err != nil {
			return
		}
		// A decoded batch must re-encode: the decoder memoizes the input
		// bytes as each transaction's canonical encoding.
		if _, err := EncodeBatch(txs); err != nil {
			t.Fatalf("decoded batch fails to re-encode: %v", err)
		}
	})
}

func FuzzDecodeTransaction(f *testing.F) {
	f.Add([]byte{})
	tx := &utxo.Transaction{
		Inputs:  []utxo.Input{{Prev: utxo.Outpoint{TxID: types.Hash([]byte("p")), Index: 0}, Value: 9}},
		Outputs: []utxo.Output{{Account: utxo.Address(types.Hash([]byte("t"))), Value: 9}},
		Sender:  []byte("k"),
	}
	f.Add(append([]byte(nil), tx.Canonical()...))
	f.Fuzz(func(t *testing.T, data []byte) {
		decoded, err := utxo.DecodeTransaction(data)
		if err != nil {
			return
		}
		decoded.ID() // must hash without panicking
	})
}

func FuzzDecodePoFs(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0})
	f.Add([]byte{0, 0, 0, 1, 0, 0, 0, 2})
	f.Fuzz(func(t *testing.T, data []byte) {
		pofs, err := DecodePoFs(data)
		if err != nil {
			return
		}
		if _, err := EncodePoFs(pofs); err != nil {
			t.Fatalf("decoded pofs fail to re-encode: %v", err)
		}
	})
}

func FuzzDecodeReplicas(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 2, 0, 0, 0, 1, 0, 0, 0, 2})
	f.Fuzz(func(t *testing.T, data []byte) {
		ids, err := DecodeReplicas(data)
		if err != nil {
			return
		}
		enc, err := EncodeReplicas(ids)
		if err != nil {
			t.Fatal(err)
		}
		if string(enc) != string(data) {
			t.Fatalf("replica list did not round-trip")
		}
	})
}

func FuzzDecodeRecord(f *testing.F) {
	f.Add([]byte{})
	f.Add(AppendRecord(nil, RecordBlock, []byte("payload")))
	f.Add(AppendRecord(AppendRecord(nil, RecordSupersede, nil), RecordCheckpoint, make([]byte, 8)))
	f.Fuzz(func(t *testing.T, data []byte) {
		rest := data
		for len(rest) > 0 {
			kind, payload, next, err := DecodeRecord(rest)
			if err != nil {
				return
			}
			reenc := AppendRecord(nil, kind, payload)
			if string(reenc) != string(rest[:len(rest)-len(next)]) {
				t.Fatalf("record frame did not round-trip")
			}
			rest = next
		}
	})
}

func FuzzDecodeBlockRecord(f *testing.F) {
	f.Add([]byte{})
	rec := &BlockRecord{K: 3, Attempt: 1, Digest: types.Hash([]byte("d"))}
	if enc, err := EncodeBlockRecord(rec); err == nil {
		f.Add(enc)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := DecodeBlockRecord(data)
		if err != nil {
			return
		}
		if _, err := EncodeBlockRecord(r); err != nil {
			t.Fatalf("decoded block record fails to re-encode: %v", err)
		}
	})
}

func FuzzDecodeCheckpoint(f *testing.F) {
	f.Add([]byte{})
	f.Add(EncodeCheckpoint(&CheckpointState{}))
	f.Add(EncodeCheckpoint(&CheckpointState{
		LastK:   2,
		Deposit: 7,
		Blocks:  []BlockDigest{{K: 1, Digest: types.Hash([]byte("b"))}},
		UTXOs: []UTXOEntry{{Op: utxo.Outpoint{TxID: types.Hash([]byte("t"))},
			Out: utxo.Output{Account: utxo.Address(types.Hash([]byte("a"))), Value: 5}}},
		TxIDs: []types.Digest{types.Hash([]byte("x"))},
	}))
	f.Fuzz(func(t *testing.T, data []byte) {
		cp, err := DecodeCheckpoint(data)
		if err != nil {
			return
		}
		reenc := EncodeCheckpoint(cp)
		if string(reenc) != string(data) {
			t.Fatalf("checkpoint did not round-trip")
		}
	})
}

func FuzzDecodeSyncReq(f *testing.F) {
	f.Add([]byte{})
	f.Add(EncodeSyncReq(&SyncReq{FromK: 4, WantCheckpoint: true}))
	f.Fuzz(func(t *testing.T, data []byte) {
		req, err := DecodeSyncReq(data)
		if err != nil {
			return
		}
		_ = EncodeSyncReq(req)
	})
}

func FuzzDecodeSyncResp(f *testing.F) {
	f.Add([]byte{})
	f.Add(EncodeSyncResp(&SyncResp{LastK: 9, Checkpoint: EncodeCheckpoint(&CheckpointState{LastK: 9}),
		Log: AppendRecord(nil, RecordBlock, []byte("r"))}))
	f.Fuzz(func(t *testing.T, data []byte) {
		resp, err := DecodeSyncResp(data)
		if err != nil {
			return
		}
		reenc := EncodeSyncResp(resp)
		if string(reenc) != string(data) {
			t.Fatalf("sync resp did not round-trip")
		}
	})
}
