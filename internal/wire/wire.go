// Package wire implements the binary codecs for consensus proposal
// payloads: transaction batches, proof-of-fraud sets and replica lists.
// It replaces the reflective encoding/gob codecs that used to live in the
// zlb package, cmd/zlb-node and internal/membership — a length-prefixed
// framing over each type's canonical encoding, with no reflection and no
// per-field allocations on the hot path.
//
// Batch layout (all integers big-endian):
//
//	magic   [4]byte "ZLB1"
//	count   uint32
//	count × { txLen uint32, tx canonical encoding (utxo.Transaction) }
//
// Encoding a batch reuses each transaction's memoized canonical bytes;
// decoding hands each transaction a view of the payload so its ID comes
// from a single hash with no re-encoding.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"

	"github.com/zeroloss/zlb/internal/accountability"
	"github.com/zeroloss/zlb/internal/types"
	"github.com/zeroloss/zlb/internal/utxo"
)

// Batch payload magic: format identifier plus version.
var batchMagic = [4]byte{'Z', 'L', 'B', '1'}

// Errors returned by the decoders.
var (
	ErrBadMagic  = errors.New("wire: payload is not a ZLB1 batch")
	ErrTruncated = errors.New("wire: truncated payload")
)

// maxCount bounds declared element counts so corrupt payloads cannot
// trigger huge allocations.
const maxCount = 1 << 22

// EncodeBatch serializes transactions into a consensus proposal payload.
func EncodeBatch(txs []*utxo.Transaction) ([]byte, error) {
	size := 4 + 4
	for _, tx := range txs {
		size += 4 + tx.CanonicalSize()
	}
	buf := make([]byte, 0, size)
	buf = append(buf, batchMagic[:]...)
	buf = appendUint32(buf, uint32(len(txs)))
	for _, tx := range txs {
		enc := tx.Canonical()
		buf = appendUint32(buf, uint32(len(enc)))
		buf = append(buf, enc...)
	}
	return buf, nil
}

// DecodeBatch parses a consensus proposal payload. The decoded
// transactions alias the payload; callers must not reuse it.
//
// Trailing bytes after the declared transactions are tolerated, exactly
// like the gob codec this replaces: the reliable-broadcast attack forks a
// proposal by appending a partition-tag byte to an otherwise valid batch
// (adversary.VariantPayload), and the reconciliation merge must still
// extract the transactions from such a payload — dropping them would
// recreate the very loss the merge exists to prevent.
func DecodeBatch(payload []byte) ([]*utxo.Transaction, error) {
	if len(payload) < 8 || [4]byte(payload[:4]) != batchMagic {
		return nil, ErrBadMagic
	}
	count := binary.BigEndian.Uint32(payload[4:])
	r := payload[8:]
	// Each transaction costs at least a 4-byte length prefix: cap the
	// preallocation by what the buffer could possibly hold, so a corrupt
	// count cannot trigger a huge allocation.
	if count > maxCount || int(count) > len(r)/4 {
		return nil, fmt.Errorf("%w: %d transactions in %d bytes", ErrTruncated, count, len(r))
	}
	txs := make([]*utxo.Transaction, 0, count)
	for i := uint32(0); i < count; i++ {
		if len(r) < 4 {
			return nil, ErrTruncated
		}
		n := binary.BigEndian.Uint32(r)
		r = r[4:]
		if uint32(len(r)) < n {
			return nil, ErrTruncated
		}
		tx, err := utxo.DecodeTransaction(r[:n:n])
		if err != nil {
			return nil, fmt.Errorf("wire: transaction %d: %w", i, err)
		}
		txs = append(txs, tx)
		r = r[n:]
	}
	return txs, nil
}

// BatchCache memoizes decoded batches by payload digest. In the simulated
// deployment every replica receives the identical committed payload; the
// cache decodes it once and shares the transaction pointers, which also
// shares their memoized IDs. Entries are evicted FIFO once cap is
// exceeded. Safe for concurrent use, singleflight-style: the commit
// pipeline decodes proposals speculatively on worker goroutines while
// the event loop reads. The lock covers only the map bookkeeping; the
// decode itself runs outside it, so a cache hit never waits behind an
// in-flight decode of a *different* payload, while concurrent requests
// for the *same* payload share one decode.
type BatchCache struct {
	mu      sync.Mutex
	cap     int
	entries map[types.Digest]*batchEntry
	order   []types.Digest
	// Hits and Misses instrument the cache for benchmarks; read them only
	// when no concurrent decodes are in flight.
	Hits   int
	Misses int
}

// batchEntry is one in-flight or settled decode; done closes when txs/err
// are final. Waiters hold the entry pointer directly, so eviction can
// never strand them.
type batchEntry struct {
	done chan struct{}
	txs  []*utxo.Transaction
	err  error
}

// NewBatchCache creates a cache holding up to cap decoded batches
// (default 64 when cap <= 0).
func NewBatchCache(cap int) *BatchCache {
	if cap <= 0 {
		cap = 64
	}
	return &BatchCache{cap: cap, entries: make(map[types.Digest]*batchEntry, cap)}
}

// Decode returns the decoded transactions of payload, from cache when the
// same payload bytes were decoded before.
func (c *BatchCache) Decode(payload []byte) ([]*utxo.Transaction, error) {
	key := types.Hash(payload)
	c.mu.Lock()
	if e, ok := c.entries[key]; ok {
		c.Hits++
		c.mu.Unlock()
		<-e.done
		return e.txs, e.err
	}
	e := &batchEntry{done: make(chan struct{})}
	if len(c.order) >= c.cap {
		oldest := c.order[0]
		c.order = c.order[1:]
		delete(c.entries, oldest)
	}
	c.entries[key] = e
	c.order = append(c.order, key)
	c.Misses++
	c.mu.Unlock()

	e.txs, e.err = DecodeBatch(payload)
	// Warm the memoized IDs and signing digests before publishing the
	// batch: cached transactions are shared by every replica committing
	// the same decision, and with the parallel simulator those replicas
	// hash them concurrently. After this loop the accessors are
	// read-only.
	for _, tx := range e.txs {
		tx.ID()
		tx.SigDigest()
	}
	close(e.done)
	if e.err != nil {
		// Do not cache failures: drop the entry so the counters and
		// contents match the sequential cache's behaviour (a corrupt
		// payload is re-attempted, deterministically failing again).
		c.mu.Lock()
		if c.entries[key] == e {
			delete(c.entries, key)
			for i, k := range c.order {
				if k == key {
					c.order = append(c.order[:i], c.order[i+1:]...)
					break
				}
			}
			c.Misses--
		}
		c.mu.Unlock()
		return nil, e.err
	}
	return e.txs, nil
}

// --- Membership payloads ---

// Signed statement layout: stmt (fixed 50 bytes) + signer uint32 +
// sigLen uint32 + sig.

func appendSigned(buf []byte, s accountability.Signed) []byte {
	buf = append(buf, s.Stmt.Encode()...)
	buf = appendUint32(buf, uint32(s.Signer))
	buf = appendUint32(buf, uint32(len(s.Sig)))
	return append(buf, s.Sig...)
}

func decodeSigned(r []byte) (accountability.Signed, []byte, error) {
	const stmtLen = accountability.EncodedLen
	if len(r) < stmtLen+8 {
		return accountability.Signed{}, nil, ErrTruncated
	}
	stmt, err := accountability.DecodeStatement(r[:stmtLen])
	if err != nil {
		return accountability.Signed{}, nil, err
	}
	signer := types.ReplicaID(binary.BigEndian.Uint32(r[stmtLen:]))
	sigLen := binary.BigEndian.Uint32(r[stmtLen+4:])
	r = r[stmtLen+8:]
	if sigLen > maxCount || uint32(len(r)) < sigLen {
		return accountability.Signed{}, nil, ErrTruncated
	}
	sig := r[:sigLen:sigLen]
	return accountability.Signed{Stmt: stmt, Signer: signer, Sig: sig}, r[sigLen:], nil
}

// EncodePoFs serializes a proof-of-fraud set for an exclusion proposal.
func EncodePoFs(pofs []accountability.PoF) ([]byte, error) {
	buf := appendUint32(nil, uint32(len(pofs)))
	for _, p := range pofs {
		buf = appendUint32(buf, uint32(p.Culprit))
		buf = appendSigned(buf, p.A)
		buf = appendSigned(buf, p.B)
	}
	return buf, nil
}

// DecodePoFs parses an exclusion proposal.
func DecodePoFs(payload []byte) ([]accountability.PoF, error) {
	if len(payload) < 4 {
		return nil, ErrTruncated
	}
	count := binary.BigEndian.Uint32(payload)
	r := payload[4:]
	// A PoF is at least a culprit ID plus two minimal signed statements.
	const minPoF = 4 + 2*(accountability.EncodedLen+8)
	if count > maxCount || int(count) > len(r)/minPoF {
		return nil, fmt.Errorf("%w: %d pofs in %d bytes", ErrTruncated, count, len(r))
	}
	pofs := make([]accountability.PoF, 0, count)
	for i := uint32(0); i < count; i++ {
		if len(r) < 4 {
			return nil, ErrTruncated
		}
		culprit := types.ReplicaID(binary.BigEndian.Uint32(r))
		r = r[4:]
		var p accountability.PoF
		var err error
		p.Culprit = culprit
		if p.A, r, err = decodeSigned(r); err != nil {
			return nil, fmt.Errorf("wire: pof %d: %w", i, err)
		}
		if p.B, r, err = decodeSigned(r); err != nil {
			return nil, fmt.Errorf("wire: pof %d: %w", i, err)
		}
		pofs = append(pofs, p)
	}
	if len(r) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrTruncated, len(r))
	}
	return pofs, nil
}

// EncodeReplicas serializes a replica list for an inclusion proposal.
func EncodeReplicas(ids []types.ReplicaID) ([]byte, error) {
	buf := appendUint32(make([]byte, 0, 4+4*len(ids)), uint32(len(ids)))
	for _, id := range ids {
		buf = appendUint32(buf, uint32(id))
	}
	return buf, nil
}

// DecodeReplicas parses an inclusion proposal.
func DecodeReplicas(payload []byte) ([]types.ReplicaID, error) {
	if len(payload) < 4 {
		return nil, ErrTruncated
	}
	count := binary.BigEndian.Uint32(payload)
	if count > maxCount || uint32(len(payload)-4) != 4*count {
		return nil, fmt.Errorf("%w: %d ids in %d bytes", ErrTruncated, count, len(payload)-4)
	}
	ids := make([]types.ReplicaID, count)
	for i := range ids {
		ids[i] = types.ReplicaID(binary.BigEndian.Uint32(payload[4+4*i:]))
	}
	return ids, nil
}

func appendUint32(buf []byte, v uint32) []byte {
	return append(buf, byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}
