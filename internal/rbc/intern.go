package rbc

import (
	"sync"

	"github.com/zeroloss/zlb/internal/types"
)

// Intern is a digest-keyed byte-slice intern table shared by every
// reliable-broadcast instance of a deployment. Each replica's rbc state
// keeps per-slot payload maps; without interning, a deployment of n
// replicas retains up to n references — and, on the TCP path or under an
// equivocating broadcaster building per-recipient variants, n distinct
// copies — of every slot's proposal. At the paper-scale sweeps (n=90, 16
// instances, ~4 MB batches) that duplication dominates the heap. Intern
// canonicalizes by content digest: the first slice stored for a digest
// wins and every later holder aliases it.
//
// The table is safe for concurrent use: with the parallel simulator,
// replicas of the same deployment intern payloads from worker goroutines
// inside one lookahead window. The digest is the content hash, so
// whichever copy wins the race is byte-identical to the losers —
// interning never changes observable state, only sharing.
type Intern struct {
	mu sync.Mutex
	m  map[types.Digest][]byte
}

// NewIntern creates an empty intern table; scope it to one deployment
// (cluster or node process) so retained payloads die with the run.
func NewIntern() *Intern {
	return &Intern{m: make(map[types.Digest][]byte)}
}

// Bytes returns the canonical slice for the payload with the given
// digest, storing p as canonical when the digest is new. A nil receiver
// disables interning and returns p unchanged. The caller must pass the
// payload's true content digest (types.Hash(p)) — rbc verifies payload
// digests before storing, so interned entries are collision-consistent.
func (in *Intern) Bytes(d types.Digest, p []byte) []byte {
	if in == nil {
		return p
	}
	in.mu.Lock()
	if got, ok := in.m[d]; ok {
		in.mu.Unlock()
		return got
	}
	in.m[d] = p
	in.mu.Unlock()
	return p
}

// Len reports how many distinct payloads are interned (test hook).
func (in *Intern) Len() int {
	if in == nil {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return len(in.m)
}
