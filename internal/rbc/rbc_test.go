package rbc

import (
	"fmt"
	"testing"
	"time"

	"github.com/zeroloss/zlb/internal/accountability"
	"github.com/zeroloss/zlb/internal/committee"
	"github.com/zeroloss/zlb/internal/crypto"
	"github.com/zeroloss/zlb/internal/latency"
	"github.com/zeroloss/zlb/internal/simnet"
	"github.com/zeroloss/zlb/internal/types"
)

// rbcNode hosts one reliable-broadcast slot per replica.
type rbcNode struct {
	inst *Instance
}

func (n *rbcNode) OnMessage(from types.ReplicaID, msg simnet.Message) {
	switch m := msg.(type) {
	case *Init:
		n.inst.OnInit(from, m)
	case *Echo:
		n.inst.OnEcho(from, m)
	case *Ready:
		n.inst.OnReady(from, m)
	case *PayloadReq:
		n.inst.OnPayloadReq(from, m)
	case *PayloadResp:
		n.inst.OnPayloadResp(from, m)
	}
}

func (n *rbcNode) OnTimer(any) {}

type rbcCluster struct {
	net       *simnet.Network
	nodes     map[types.ReplicaID]*rbcNode
	delivered map[types.ReplicaID]Delivery
	logs      map[types.ReplicaID]*accountability.Log
	pofs      map[types.ReplicaID][]accountability.PoF
	members   []types.ReplicaID
}

func buildRBC(t *testing.T, n int, broadcaster types.ReplicaID, eq func(types.ReplicaID) *Equivocator) *rbcCluster {
	t.Helper()
	signers, _, err := crypto.GenerateCluster(crypto.SchemeSim, n, 7)
	if err != nil {
		t.Fatal(err)
	}
	members := make([]types.ReplicaID, n)
	for i := range members {
		members[i] = types.ReplicaID(i + 1)
	}
	c := &rbcCluster{
		net:       simnet.New(simnet.Config{Latency: latency.Uniform(time.Millisecond, 10*time.Millisecond), Seed: 7}),
		nodes:     make(map[types.ReplicaID]*rbcNode),
		delivered: make(map[types.ReplicaID]Delivery),
		logs:      make(map[types.ReplicaID]*accountability.Log),
		pofs:      make(map[types.ReplicaID][]accountability.PoF),
		members:   members,
	}
	for i, id := range members {
		id := id
		signer := signers[i]
		c.net.AddNode(id, func(env simnet.Env) simnet.Handler {
			log := accountability.NewLog(signer, func(p accountability.PoF) {
				c.pofs[id] = append(c.pofs[id], p)
			})
			c.logs[id] = log
			var e *Equivocator
			if eq != nil {
				e = eq(id)
			}
			node := &rbcNode{inst: New(Config{
				Context:     accountability.CtxMain,
				Instance:    1,
				Broadcaster: broadcaster,
				Self:        id,
				View:        committee.NewView(members),
				Signer:      signer,
				Log:         log,
				Env:         env,
				Accountable: true,
				Equivocator: e,
				OnDeliver:   func(d Delivery) { c.delivered[id] = d },
			})}
			c.nodes[id] = node
			return node
		})
	}
	return c
}

func TestRBCAllDeliverSamePayload(t *testing.T) {
	c := buildRBC(t, 7, 1, nil)
	payload := []byte("the proposal")
	c.nodes[1].inst.Broadcast(payload, 0, 0)
	c.net.RunUntilQuiet(time.Minute)
	if len(c.delivered) != 7 {
		t.Fatalf("delivered at %d of 7", len(c.delivered))
	}
	want := types.Hash(payload)
	for id, d := range c.delivered {
		if d.Digest != want {
			t.Fatalf("replica %v delivered %v", id, d.Digest)
		}
		if !Equal(d.Payload, payload) {
			t.Fatalf("replica %v payload mismatch", id)
		}
		if d.Cert == nil {
			t.Fatalf("replica %v missing delivery certificate", id)
		}
		if d.Cert.SignerCount(nil) < 2*types.MaxClassicFaults(7)+1 {
			t.Fatalf("replica %v cert below 2t+1", id)
		}
	}
}

func TestRBCRejectsWrongBroadcaster(t *testing.T) {
	c := buildRBC(t, 4, 1, nil)
	// Replica 2 pretends to broadcast in replica 1's slot.
	c.net.Inject(0, 2, "kick", 0)
	node2 := c.nodes[2]
	// Build a forged init claiming slot 1 signed by replica 2.
	stmt := accountability.Statement{
		Context: accountability.CtxMain, Kind: accountability.KindInit,
		Instance: 1, Slot: 1, Value: types.Hash([]byte("forged")),
	}
	_ = node2
	_ = stmt
	// Deliver it directly: OnInit must reject because from != broadcaster
	// is simulated by 'from' = 2.
	forged := &Init{Payload: []byte("forged")}
	c.nodes[3].inst.OnInit(2, forged)
	c.net.RunUntilQuiet(time.Minute)
	if len(c.delivered) != 0 {
		t.Fatal("forged broadcast delivered")
	}
}

// TestRBCEquivocatingBroadcasterSplitsPartitions drives the reliable
// broadcast attack at the rbc level: partition {2,3} receives variant A,
// partition {4,5} variant B, with deceitful replica 1 echoing each side
// its own variant. With n=7 and quorum 5, neither side can deliver alone,
// but evidence of the broadcaster's equivocation reaches the logs.
func TestRBCEquivocatingBroadcasterEvidence(t *testing.T) {
	payloadA := []byte("variant-A")
	payloadB := []byte("variant-B")
	digests := map[types.ReplicaID]types.Digest{}
	for _, id := range []types.ReplicaID{2, 3, 4} {
		digests[id] = types.Hash(payloadA)
	}
	for _, id := range []types.ReplicaID{5, 6, 7} {
		digests[id] = types.Hash(payloadB)
	}
	eq := func(id types.ReplicaID) *Equivocator {
		if id != 1 {
			return nil
		}
		return &Equivocator{
			InitFor: func(to types.ReplicaID) []byte {
				switch {
				case to == 1 || digests[to] == types.Hash(payloadA):
					return payloadA
				default:
					return payloadB
				}
			},
			EchoDigestFor: func(to types.ReplicaID, seen []types.Digest) (types.Digest, bool) {
				if want, ok := digests[to]; ok {
					for _, d := range seen {
						if d == want {
							return d, true
						}
					}
				}
				if len(seen) > 0 {
					return seen[0], true
				}
				return types.ZeroDigest, false
			},
		}
	}
	c := buildRBC(t, 7, 1, eq)
	c.nodes[1].inst.Broadcast(payloadA, 0, 0)
	c.net.RunUntilQuiet(time.Minute)

	// Echo evidence: honest replicas' logs hold the broadcaster's INIT or
	// the conflicting echoes once echoes circulate. Check that no two
	// honest replicas delivered different payloads without evidence; at
	// minimum, no delivery of both variants can be certified jointly.
	seen := map[types.Digest]bool{}
	for _, d := range c.delivered {
		seen[d.Digest] = true
	}
	if len(seen) > 1 {
		// A split delivery requires ≥ quorum echoes on each side: with a
		// single equivocator that is impossible at n=7.
		t.Fatalf("split delivery without quorum: %v", seen)
	}
}

func TestRBCLatePayloadPull(t *testing.T) {
	// A replica that missed the INIT (readies only) pulls the payload.
	c := buildRBC(t, 4, 1, nil)
	// Drop the INIT to replica 4 only.
	c.net.DropRule = func(from, to types.ReplicaID, msg simnet.Message) bool {
		_, isInit := msg.(*Init)
		return isInit && to == 4
	}
	payload := []byte("pull me")
	c.nodes[1].inst.Broadcast(payload, 0, 0)
	c.net.RunUntilQuiet(time.Minute)
	d, ok := c.delivered[4]
	if !ok {
		t.Fatal("replica 4 never delivered")
	}
	if !Equal(d.Payload, payload) {
		t.Fatal("pulled payload mismatch")
	}
}

func TestRBCClaimedSizesPropagate(t *testing.T) {
	c := buildRBC(t, 4, 1, nil)
	c.nodes[1].inst.Broadcast([]byte("x"), 4_000_000, 10_000)
	c.net.RunUntilQuiet(time.Minute)
	for id, d := range c.delivered {
		if d.ClaimedBytes != 4_000_000 || d.ClaimedSigs != 10_000 {
			t.Fatalf("replica %v claimed sizes %d/%d", id, d.ClaimedBytes, d.ClaimedSigs)
		}
	}
}

func TestRBCMessageMeters(t *testing.T) {
	init := &Init{Payload: make([]byte, 100)}
	if init.SimBytes() < 100 {
		t.Fatal("init smaller than payload")
	}
	initClaimed := &Init{Payload: []byte("x"), ClaimedBytes: 4_000_000}
	if initClaimed.SimBytes() < 4_000_000 {
		t.Fatal("claimed bytes ignored")
	}
	for _, m := range []simnet.Meter{&Echo{}, &Ready{}, &PayloadReq{}, &PayloadResp{}} {
		if m.SimBytes() <= 0 {
			t.Fatalf("%T reports non-positive size", m)
		}
	}
	if (&Echo{}).SimSigOps() != 1 || (&Ready{}).SimSigOps() != 2 {
		t.Fatal("sig op counts")
	}
}

func TestRBCNonMemberEchoIgnored(t *testing.T) {
	c := buildRBC(t, 4, 1, nil)
	stmt := accountability.Statement{
		Context: accountability.CtxMain, Kind: accountability.KindEcho,
		Instance: 1, Slot: 1, Value: types.Hash([]byte("p")),
	}
	outsider := accountability.Signed{Stmt: stmt, Signer: 99}
	c.nodes[2].inst.OnEcho(99, &Echo{Stmt: outsider})
	// No crash, no state corruption: the echo set stays empty.
	if len(c.nodes[2].inst.Digests()) != 0 {
		t.Fatal("outsider echo recorded")
	}
}

func TestRBCDeterministicDigestOrder(t *testing.T) {
	c := buildRBC(t, 4, 1, nil)
	inst := c.nodes[2].inst
	// Seed several payload digests out of order.
	for _, p := range []string{"zz", "aa", "mm"} {
		d := types.Hash([]byte(p))
		inst.payloads[d] = []byte(p)
	}
	got := inst.Digests()
	for i := 1; i < len(got); i++ {
		if !got[i-1].Less(got[i]) {
			t.Fatalf("digests not sorted: %v", got)
		}
	}
}

func ExampleInstance() {
	fmt.Println("see TestRBCAllDeliverSamePayload for the canonical flow")
	// Output: see TestRBCAllDeliverSamePayload for the canonical flow
}
