// Package rbc implements Bracha's reliable broadcast with the
// accountability extensions ZLB needs (paper §2.3): ECHO and READY
// messages are signed statements, so a replica that echoes two different
// digests for the same broadcast — the core of the paper's "reliable
// broadcast attack" (§B) — leaves transferable equivocation evidence.
// Delivery produces a certificate (a quorum of signed READY statements
// plus the broadcaster's signed INIT) that travels with decisions and lets
// other partitions cross-check.
//
// Thresholds: echo quorum ⌈2n/3⌉, ready amplification at t+1, delivery at
// 2t+1, with t = ⌈n/3⌉−1.
package rbc

import (
	"bytes"
	"fmt"

	"github.com/zeroloss/zlb/internal/accountability"
	"github.com/zeroloss/zlb/internal/committee"
	"github.com/zeroloss/zlb/internal/crypto"
	"github.com/zeroloss/zlb/internal/obs"
	"github.com/zeroloss/zlb/internal/simnet"
	"github.com/zeroloss/zlb/internal/types"
)

// Init carries the broadcaster's proposal. ClaimedBytes lets throughput
// experiments model large batches without materializing them; zero means
// len(Payload).
type Init struct {
	Stmt         accountability.Signed // KindInit, Slot = broadcaster, Value = digest(payload)
	Payload      []byte
	ClaimedBytes int
	ClaimedSigs  int // modeled per-transaction verification work
}

// SimBytes implements simnet.Meter.
func (m *Init) SimBytes() int {
	if m.ClaimedBytes > 0 {
		return m.ClaimedBytes + 110
	}
	return len(m.Payload) + 110
}

// SimSigOps implements simnet.Meter.
func (m *Init) SimSigOps() int { return 1 + m.ClaimedSigs }

// Echo is a signed echo of the proposal digest.
type Echo struct {
	Stmt accountability.Signed // KindEcho, Slot = broadcaster, Value = digest
}

// SimBytes implements simnet.Meter.
func (m *Echo) SimBytes() int { return 160 }

// SimSigOps implements simnet.Meter.
func (m *Echo) SimSigOps() int { return 1 }

// Ready is a signed ready for the proposal digest. It carries the
// broadcaster's signed INIT statement when known, so delivery certificates
// embed evidence against an equivocating broadcaster.
type Ready struct {
	Stmt     accountability.Signed // KindReady, Slot = broadcaster, Value = digest
	InitStmt *accountability.Signed
}

// SimBytes implements simnet.Meter.
func (m *Ready) SimBytes() int { return 280 }

// SimSigOps implements simnet.Meter.
func (m *Ready) SimSigOps() int { return 2 }

// PayloadReq asks a peer for the payload matching a digest (the requester
// saw a READY quorum before the INIT reached it).
type PayloadReq struct {
	Context     uint8
	Instance    types.Instance
	Broadcaster types.ReplicaID
	Digest      types.Digest
}

// SimBytes implements simnet.Meter.
func (m *PayloadReq) SimBytes() int { return 64 }

// SimSigOps implements simnet.Meter.
func (m *PayloadReq) SimSigOps() int { return 0 }

// PayloadResp answers a PayloadReq.
type PayloadResp struct {
	Context      uint8
	Instance     types.Instance
	Broadcaster  types.ReplicaID
	Payload      []byte
	ClaimedBytes int
	ClaimedSigs  int
}

// SimBytes implements simnet.Meter.
func (m *PayloadResp) SimBytes() int {
	if m.ClaimedBytes > 0 {
		return m.ClaimedBytes + 40
	}
	return len(m.Payload) + 40
}

// SimSigOps implements simnet.Meter.
func (m *PayloadResp) SimSigOps() int { return m.ClaimedSigs }

// Delivery is the output of one reliable broadcast.
type Delivery struct {
	Broadcaster  types.ReplicaID
	Payload      []byte
	Digest       types.Digest
	ClaimedBytes int
	ClaimedSigs  int
	// Cert is the quorum of READY statements justifying delivery
	// (accountable mode only).
	Cert *accountability.Certificate
	// InitStmt is the broadcaster's signed proposal statement, if known.
	InitStmt *accountability.Signed
}

// Equivocator customizes the messages a deceitful replica emits; nil
// fields mean honest behaviour. It is how the adversary package "modifies
// the code" of a replica it controls (paper Fig. 1).
type Equivocator struct {
	// InitFor returns the payload sent to a given recipient, enabling the
	// reliable-broadcast attack (different proposals to different
	// partitions).
	InitFor func(to types.ReplicaID) []byte
	// EchoDigestFor returns which digest to echo/ready toward a given
	// recipient; ok=false suppresses the message.
	EchoDigestFor func(to types.ReplicaID, seen []types.Digest) (types.Digest, bool)
}

// Config parameterizes one reliable-broadcast slot (one broadcaster within
// one consensus instance).
type Config struct {
	Context     uint8
	Instance    types.Instance
	Broadcaster types.ReplicaID
	Self        types.ReplicaID
	View        *committee.View
	Signer      *crypto.Signer
	Log         *accountability.Log // may be nil when Accountable is false
	Env         simnet.Env
	Accountable bool
	// AggregateCerts assembles ready certificates in aggregate form when
	// the scheme supports it (crypto.Aggregator); see bincon.Config.
	AggregateCerts bool
	OnDeliver      func(Delivery)
	// Equivocator, when non-nil, makes this replica deceitful for this
	// broadcast.
	Equivocator *Equivocator
	// Intern, when set, canonicalizes stored payload bytes by digest
	// across the whole deployment (one copy per distinct proposal instead
	// of one per replica). Nil keeps per-message slices.
	Intern *Intern
	// Tracer, when set, records the slot's lifecycle span events
	// (rbc_init at the broadcaster). Nil disables tracing at zero cost.
	Tracer *obs.NodeTracer
}

// Instance is the state machine for one reliable-broadcast slot at one
// replica.
type Instance struct {
	cfg Config

	payloads    map[types.Digest][]byte // digest -> payload (claimed sizes kept aside)
	claimedMeta map[types.Digest][2]int
	initStmts   map[types.Digest]*accountability.Signed
	echoes      map[types.Digest]*types.ReplicaSet
	readies     map[types.Digest]*types.ReplicaSet
	readyStmts  map[types.Digest][]accountability.Signed
	echoSent    bool
	readySent   bool
	delivered   bool
	pullAsked   bool
	pendingCert map[types.Digest]*accountability.Certificate
}

// New creates the slot state machine.
func New(cfg Config) *Instance {
	return &Instance{
		cfg:         cfg,
		payloads:    make(map[types.Digest][]byte),
		claimedMeta: make(map[types.Digest][2]int),
		initStmts:   make(map[types.Digest]*accountability.Signed),
		echoes:      make(map[types.Digest]*types.ReplicaSet),
		readies:     make(map[types.Digest]*types.ReplicaSet),
		readyStmts:  make(map[types.Digest][]accountability.Signed),
		pendingCert: make(map[types.Digest]*accountability.Certificate),
	}
}

// Delivered reports whether the slot has delivered.
func (r *Instance) Delivered() bool { return r.delivered }

func (r *Instance) stmt(kind accountability.Kind, digest types.Digest) accountability.Statement {
	return accountability.Statement{
		Context:  r.cfg.Context,
		Kind:     kind,
		Instance: r.cfg.Instance,
		Slot:     uint32(r.cfg.Broadcaster),
		Value:    digest,
	}
}

func (r *Instance) sign(stmt accountability.Statement) accountability.Signed {
	if !r.cfg.Accountable {
		return accountability.Signed{Stmt: stmt, Signer: r.cfg.Self}
	}
	signed, err := accountability.SignStatement(r.cfg.Signer, stmt)
	if err != nil {
		panic(fmt.Sprintf("rbc: signing failed: %v", err))
	}
	return signed
}

// verifyStmt authenticates a received statement: right shape, claimed
// signer matches the transport sender, valid signature (accountable mode).
func (r *Instance) verifyStmt(from types.ReplicaID, s accountability.Signed, kind accountability.Kind) bool {
	if s.Stmt.Kind != kind || s.Stmt.Context != r.cfg.Context ||
		s.Stmt.Instance != r.cfg.Instance || s.Stmt.Slot != uint32(r.cfg.Broadcaster) {
		return false
	}
	if s.Signer != from {
		return false
	}
	if !r.cfg.Accountable {
		return true
	}
	if !s.Verify(r.cfg.Signer) {
		return false
	}
	if r.cfg.Log != nil {
		r.cfg.Log.Record(s)
	}
	return true
}

func (r *Instance) multicast(msg simnet.Message) {
	for _, m := range r.cfg.View.Members() {
		r.cfg.Env.Send(m, msg)
	}
}

// Broadcast starts the protocol as the broadcaster. ClaimedBytes and
// claimedSigs model batch size for the cost model (0 = actual).
func (r *Instance) Broadcast(payload []byte, claimedBytes, claimedSigs int) {
	if r.cfg.Self != r.cfg.Broadcaster {
		panic("rbc: Broadcast called by non-broadcaster")
	}
	r.cfg.Tracer.Record(r.cfg.Env.Now(), obs.PhaseRBCInit, uint64(r.cfg.Instance), uint32(r.cfg.Broadcaster), 0, "")
	if eq := r.cfg.Equivocator; eq != nil && eq.InitFor != nil {
		// Deceitful broadcaster: per-recipient payloads (rbcast attack).
		for _, m := range r.cfg.View.Members() {
			p := eq.InitFor(m)
			if p == nil {
				continue
			}
			d := types.Hash(p)
			signed := r.sign(r.stmt(accountability.KindInit, d))
			r.cfg.Env.Send(m, &Init{Stmt: signed, Payload: p, ClaimedBytes: claimedBytes, ClaimedSigs: claimedSigs})
		}
		return
	}
	d := types.Hash(payload)
	signed := r.sign(r.stmt(accountability.KindInit, d))
	r.multicast(&Init{Stmt: signed, Payload: payload, ClaimedBytes: claimedBytes, ClaimedSigs: claimedSigs})
}

// OnInit handles the broadcaster's proposal.
func (r *Instance) OnInit(from types.ReplicaID, msg *Init) {
	if from != r.cfg.Broadcaster {
		return
	}
	if !r.verifyStmt(from, msg.Stmt, accountability.KindInit) {
		return
	}
	d := types.Hash(msg.Payload)
	if d != msg.Stmt.Stmt.Value {
		return // statement does not match payload
	}
	if _, known := r.payloads[d]; !known {
		r.payloads[d] = r.cfg.Intern.Bytes(d, msg.Payload)
		r.claimedMeta[d] = [2]int{msg.ClaimedBytes, msg.ClaimedSigs}
		stmt := msg.Stmt
		r.initStmts[d] = &stmt
	}
	r.maybeEcho(d)
	r.maybeDeliver(d)
}

func (r *Instance) maybeEcho(d types.Digest) {
	if r.echoSent {
		return
	}
	r.echoSent = true
	if eq := r.cfg.Equivocator; eq != nil && eq.EchoDigestFor != nil {
		r.splitEchoReady(accountability.KindEcho, d)
		return
	}
	signed := r.sign(r.stmt(accountability.KindEcho, d))
	r.multicast(&Echo{Stmt: signed})
}

// splitEchoReady sends per-recipient equivocating echoes or readies.
func (r *Instance) splitEchoReady(kind accountability.Kind, fallback types.Digest) {
	seen := r.knownDigests()
	for _, m := range r.cfg.View.Members() {
		d, ok := r.cfg.Equivocator.EchoDigestFor(m, seen)
		if !ok {
			continue
		}
		if d.IsZero() {
			d = fallback
		}
		signed := r.sign(r.stmt(kind, d))
		switch kind {
		case accountability.KindEcho:
			r.cfg.Env.Send(m, &Echo{Stmt: signed})
		case accountability.KindReady:
			r.cfg.Env.Send(m, &Ready{Stmt: signed, InitStmt: r.initStmts[d]})
		}
	}
}

func (r *Instance) knownDigests() []types.Digest {
	seen := make(map[types.Digest]bool, len(r.payloads))
	for d := range r.payloads {
		seen[d] = true
	}
	for d := range r.echoes {
		seen[d] = true
	}
	for d := range r.readies {
		seen[d] = true
	}
	out := make([]types.Digest, 0, len(seen))
	for d := range seen {
		out = append(out, d)
	}
	// Sort for determinism.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].Less(out[j-1]); j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// OnEcho handles a signed echo.
func (r *Instance) OnEcho(from types.ReplicaID, msg *Echo) {
	if !r.cfg.View.Contains(from) {
		return
	}
	if !r.verifyStmt(from, msg.Stmt, accountability.KindEcho) {
		return
	}
	d := msg.Stmt.Stmt.Value
	set, ok := r.echoes[d]
	if !ok {
		set = types.NewReplicaSet()
		r.echoes[d] = set
	}
	set.Add(from)
	if set.Len() >= r.cfg.View.Quorum() {
		r.maybeReady(d)
	}
}

func (r *Instance) maybeReady(d types.Digest) {
	if r.readySent {
		return
	}
	r.readySent = true
	if eq := r.cfg.Equivocator; eq != nil && eq.EchoDigestFor != nil {
		r.splitEchoReady(accountability.KindReady, d)
		return
	}
	signed := r.sign(r.stmt(accountability.KindReady, d))
	r.multicast(&Ready{Stmt: signed, InitStmt: r.initStmts[d]})
}

// OnReady handles a signed ready.
func (r *Instance) OnReady(from types.ReplicaID, msg *Ready) {
	if !r.cfg.View.Contains(from) {
		return
	}
	if !r.verifyStmt(from, msg.Stmt, accountability.KindReady) {
		return
	}
	d := msg.Stmt.Stmt.Value
	if msg.InitStmt != nil && r.cfg.Accountable {
		if msg.InitStmt.Stmt.Kind == accountability.KindInit &&
			msg.InitStmt.Stmt.Value == d &&
			msg.InitStmt.Signer == r.cfg.Broadcaster &&
			msg.InitStmt.Verify(r.cfg.Signer) {
			if _, known := r.initStmts[d]; !known {
				r.initStmts[d] = msg.InitStmt
			}
			if r.cfg.Log != nil {
				r.cfg.Log.Record(*msg.InitStmt)
			}
		}
	}
	set, ok := r.readies[d]
	if !ok {
		set = types.NewReplicaSet()
		r.readies[d] = set
	}
	if set.Add(from) {
		r.readyStmts[d] = append(r.readyStmts[d], msg.Stmt)
	}
	// Amplification: t+1 readies make us ready too.
	if set.Len() >= r.cfg.View.BVRelay() {
		r.maybeReady(d)
	}
	r.maybeDeliver(d)
}

// maybeDeliver delivers once 2t+1 readies back one digest and the payload
// is available; otherwise it pulls the payload.
func (r *Instance) maybeDeliver(d types.Digest) {
	if r.delivered {
		return
	}
	set, ok := r.readies[d]
	if !ok || set.Len() < 2*r.cfg.View.MaxFaults()+1 {
		return
	}
	payload, have := r.payloads[d]
	if !have {
		if !r.pullAsked {
			r.pullAsked = true
			// Ask everyone who said READY for the payload.
			for _, id := range set.Sorted() {
				r.cfg.Env.Send(id, &PayloadReq{
					Context:     r.cfg.Context,
					Instance:    r.cfg.Instance,
					Broadcaster: r.cfg.Broadcaster,
					Digest:      d,
				})
			}
		}
		return
	}
	r.delivered = true
	var cert *accountability.Certificate
	if r.cfg.Accountable {
		stmts := r.readyStmts[d]
		c, err := accountability.NewCertificateFor(r.cfg.Signer, r.stmt(accountability.KindReady, d), stmts, r.cfg.AggregateCerts)
		if err == nil {
			cert = c
		}
	}
	meta := r.claimedMeta[d]
	r.cfg.OnDeliver(Delivery{
		Broadcaster:  r.cfg.Broadcaster,
		Payload:      payload,
		Digest:       d,
		ClaimedBytes: meta[0],
		ClaimedSigs:  meta[1],
		Cert:         cert,
		InitStmt:     r.initStmts[d],
	})
}

// OnPayloadReq serves a stored payload.
func (r *Instance) OnPayloadReq(from types.ReplicaID, msg *PayloadReq) {
	payload, ok := r.payloads[msg.Digest]
	if !ok {
		return
	}
	meta := r.claimedMeta[msg.Digest]
	r.cfg.Env.Send(from, &PayloadResp{
		Context:      msg.Context,
		Instance:     msg.Instance,
		Broadcaster:  msg.Broadcaster,
		Payload:      payload,
		ClaimedBytes: meta[0],
		ClaimedSigs:  meta[1],
	})
}

// OnPayloadResp stores a pulled payload and retries delivery.
func (r *Instance) OnPayloadResp(_ types.ReplicaID, msg *PayloadResp) {
	d := types.Hash(msg.Payload)
	if _, known := r.payloads[d]; !known {
		r.payloads[d] = r.cfg.Intern.Bytes(d, msg.Payload)
		r.claimedMeta[d] = [2]int{msg.ClaimedBytes, msg.ClaimedSigs}
	}
	r.maybeDeliver(d)
}

// Digests returns every digest with at least one echo or ready, sorted;
// used by tests to observe partitioned state.
func (r *Instance) Digests() []types.Digest { return r.knownDigests() }

// Equal reports whether two payloads are the same bytes (test helper).
func Equal(a, b []byte) bool { return bytes.Equal(a, b) }
