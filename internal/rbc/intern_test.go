package rbc

import (
	"testing"

	"github.com/zeroloss/zlb/internal/types"
)

// TestInternCanonicalizes pins the dedup contract: the first slice
// stored for a digest wins, later byte-equal copies alias it, and a nil
// table is a transparent no-op.
func TestInternCanonicalizes(t *testing.T) {
	in := NewIntern()
	a := []byte("proposal-payload")
	d := types.Hash(a)
	if got := in.Bytes(d, a); &got[0] != &a[0] {
		t.Fatal("first store must return the stored slice")
	}
	b := append([]byte(nil), a...) // equal content, distinct backing array
	if got := in.Bytes(d, b); &got[0] != &a[0] {
		t.Fatal("second store must alias the canonical slice")
	}
	if in.Len() != 1 {
		t.Fatalf("interned %d payloads, want 1", in.Len())
	}
	other := []byte("different")
	in.Bytes(types.Hash(other), other)
	if in.Len() != 2 {
		t.Fatalf("interned %d payloads, want 2", in.Len())
	}
	var nilIn *Intern
	if got := nilIn.Bytes(d, b); &got[0] != &b[0] {
		t.Fatal("nil intern must return the input unchanged")
	}
	if nilIn.Len() != 0 {
		t.Fatal("nil intern reports non-zero length")
	}
}
