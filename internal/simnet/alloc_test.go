package simnet

import (
	"testing"
	"time"

	"github.com/zeroloss/zlb/internal/latency"
	"github.com/zeroloss/zlb/internal/types"
)

type silentHandler struct{}

func (silentHandler) OnMessage(types.ReplicaID, Message) {}
func (silentHandler) OnTimer(any)                        {}

type tinyMsg struct{}

func (*tinyMsg) SimBytes() int  { return 64 }
func (*tinyMsg) SimSigOps() int { return 0 }

// TestSendZeroAllocsSteadyState is the perf regression guard for the
// value-based event queue: once the queue's backing array is warm,
// scheduling and delivering a message must not allocate (the old
// container/heap implementation allocated one *event per message).
func TestSendZeroAllocsSteadyState(t *testing.T) {
	net := New(Config{Latency: latency.Uniform(time.Millisecond, 2*time.Millisecond), Seed: 1})
	var envs [2]Env
	for i := types.ReplicaID(1); i <= 2; i++ {
		i := i
		net.AddNode(i, func(env Env) Handler {
			envs[i-1] = env
			return silentHandler{}
		})
	}
	msg := &tinyMsg{}
	// Warm the queue's backing array.
	for i := 0; i < 64; i++ {
		envs[0].Send(2, msg)
	}
	net.RunUntilQuiet(time.Hour)

	allocs := testing.AllocsPerRun(200, func() {
		envs[0].Send(2, msg)
		net.Step()
	})
	if allocs != 0 {
		t.Errorf("steady-state Send+Step allocates %.1f objects per message, want 0", allocs)
	}
}
