package simnet

import (
	"testing"
	"time"

	"github.com/zeroloss/zlb/internal/latency"
	"github.com/zeroloss/zlb/internal/types"
)

// recorder logs every delivery with its virtual time.
type recorder struct {
	env    Env
	events []string
	at     []time.Duration
	onMsg  func(from types.ReplicaID, msg Message)
}

func (r *recorder) OnMessage(from types.ReplicaID, msg Message) {
	if s, ok := msg.(string); ok {
		r.events = append(r.events, s)
		r.at = append(r.at, r.env.Now())
	}
	if r.onMsg != nil {
		r.onMsg(from, msg)
	}
}

func (r *recorder) OnTimer(payload any) {
	r.events = append(r.events, "timer:"+payload.(string))
	r.at = append(r.at, r.env.Now())
}

func build(cfg Config, n int) (*Network, []*recorder) {
	net := New(cfg)
	recs := make([]*recorder, n)
	for i := 0; i < n; i++ {
		i := i
		net.AddNode(types.ReplicaID(i+1), func(env Env) Handler {
			recs[i] = &recorder{env: env}
			return recs[i]
		})
	}
	return net, recs
}

func TestDeliveryWithLatency(t *testing.T) {
	net, recs := build(Config{Latency: latency.Fixed(50 * time.Millisecond), Seed: 1}, 2)
	net.Inject(1, 1, "kick", 0)
	recs[0].onMsg = func(types.ReplicaID, Message) {
		recs[0].env.Send(2, "hello")
	}
	net.RunUntilQuiet(time.Minute)
	if len(recs[1].events) != 1 || recs[1].events[0] != "hello" {
		t.Fatalf("node 2 events = %v", recs[1].events)
	}
	if got := recs[1].at[0]; got < 50*time.Millisecond || got > 60*time.Millisecond {
		t.Fatalf("delivery at %v, want ≈50ms", got)
	}
}

func TestSelfSendIsImmediate(t *testing.T) {
	net, recs := build(Config{Latency: latency.Fixed(time.Hour), Seed: 1}, 1)
	net.Inject(1, 1, "kick", 0)
	recs[0].onMsg = func(_ types.ReplicaID, msg Message) {
		if msg == "kick" {
			recs[0].env.Send(1, "self")
		}
	}
	net.RunUntilQuiet(time.Minute)
	if len(recs[0].events) != 2 || recs[0].events[1] != "self" {
		t.Fatalf("events = %v", recs[0].events)
	}
	if recs[0].at[1] > time.Millisecond {
		t.Fatalf("self delivery at %v, want ≈0", recs[0].at[1])
	}
}

func TestTimersFireAndCancel(t *testing.T) {
	net, recs := build(Config{Latency: latency.Fixed(time.Millisecond), Seed: 1}, 1)
	var cancelID TimerID
	net.Inject(1, 1, "kick", 0)
	recs[0].onMsg = func(types.ReplicaID, Message) {
		recs[0].env.SetTimer(100*time.Millisecond, "fire")
		cancelID = recs[0].env.SetTimer(50*time.Millisecond, "cancelled")
		recs[0].env.CancelTimer(cancelID)
	}
	net.RunUntilQuiet(time.Minute)
	want := []string{"kick", "timer:fire"}
	if len(recs[0].events) != 2 || recs[0].events[1] != want[1] {
		t.Fatalf("events = %v, want %v", recs[0].events, want)
	}
	if got := recs[0].at[1]; got < 100*time.Millisecond {
		t.Fatalf("timer fired early at %v", got)
	}
}

func TestDeterministicReplay(t *testing.T) {
	run := func() []string {
		net, recs := build(Config{Latency: latency.Uniform(time.Millisecond, 20*time.Millisecond), Seed: 99}, 3)
		for i := range recs {
			i := i
			recs[i].onMsg = func(_ types.ReplicaID, msg Message) {
				if msg == "kick" {
					recs[i].env.Send(types.ReplicaID((i+1)%3+1), "ping")
				}
			}
		}
		net.Inject(1, 1, "kick", 0)
		net.Inject(1, 2, "kick", 0)
		net.Inject(1, 3, "kick", 0)
		net.RunUntilQuiet(time.Minute)
		var all []string
		for _, r := range recs {
			all = append(all, r.events...)
		}
		return all
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("different event counts: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("event %d differs: %q vs %q", i, a[i], b[i])
		}
	}
}

// costed is a message with an explicit cost profile.
type costed struct {
	bytes  int
	sigops int
}

func (c costed) SimBytes() int  { return c.bytes }
func (c costed) SimSigOps() int { return c.sigops }

func TestCPUCostSerializesProcessing(t *testing.T) {
	cost := CostModel{SigVerify: 10 * time.Millisecond}
	net, recs := build(Config{Latency: latency.Fixed(time.Millisecond), Cost: cost, Seed: 1}, 2)
	recs[0].onMsg = func(_ types.ReplicaID, msg Message) {
		if msg == "kick" {
			// Two messages with 10 sig ops each: the second waits for the
			// first's 100 ms of verification.
			recs[0].env.Send(2, costed{sigops: 10})
			recs[0].env.Send(2, costed{sigops: 10})
		}
	}
	rec2 := &recorder{}
	_ = rec2
	var arrivals []time.Duration
	net.Trace = func(at time.Duration, _, to types.ReplicaID, _ Message) {
		if to == 2 {
			arrivals = append(arrivals, at)
		}
	}
	net.Inject(1, 1, "kick", 0)
	net.RunUntilQuiet(time.Minute)
	if len(arrivals) != 2 {
		t.Fatalf("arrivals = %v", arrivals)
	}
	gap := arrivals[1] - arrivals[0]
	if gap < 95*time.Millisecond {
		t.Fatalf("second message processed after %v, want ≥ ~100ms (serial CPU)", gap)
	}
}

func TestSendCostStaggersBroadcast(t *testing.T) {
	cost := CostModel{SendPerByte: 10 * time.Nanosecond}
	net, _ := build(Config{Latency: latency.Fixed(0), Cost: cost, Seed: 1}, 3)
	var arrivals []time.Duration
	net.Trace = func(at time.Duration, _, to types.ReplicaID, msg Message) {
		if _, ok := msg.(costed); ok {
			arrivals = append(arrivals, at)
		}
	}
	net.Inject(1, 1, "kick", 0)
	h := net.Handler(1).(*recorder)
	h.onMsg = func(types.ReplicaID, Message) {
		// 1 MB to each peer: second departure is ~10ms after the first.
		h.env.Send(2, costed{bytes: 1 << 20})
		h.env.Send(3, costed{bytes: 1 << 20})
	}
	net.RunUntilQuiet(time.Minute)
	if len(arrivals) != 2 {
		t.Fatalf("arrivals = %v", arrivals)
	}
	if gap := arrivals[1] - arrivals[0]; gap < 9*time.Millisecond {
		t.Fatalf("broadcast not staggered: gap %v", gap)
	}
}

func TestDownNodesDropTraffic(t *testing.T) {
	net, recs := build(Config{Latency: latency.Fixed(time.Millisecond), Seed: 1}, 2)
	net.SetUp(2, false)
	net.Inject(1, 1, "kick", 0)
	recs[0].onMsg = func(types.ReplicaID, Message) {
		recs[0].env.Send(2, "to-down-node")
	}
	net.RunUntilQuiet(time.Minute)
	if len(recs[1].events) != 0 {
		t.Fatalf("down node received %v", recs[1].events)
	}
	if net.Dropped == 0 {
		t.Fatal("drop not counted")
	}
}

func TestDropRule(t *testing.T) {
	net, recs := build(Config{Latency: latency.Fixed(time.Millisecond), Seed: 1}, 2)
	net.DropRule = func(from, to types.ReplicaID, _ Message) bool {
		return from == 1 && to == 2
	}
	net.Inject(1, 1, "kick", 0)
	recs[0].onMsg = func(types.ReplicaID, Message) {
		recs[0].env.Send(2, "filtered")
	}
	net.RunUntilQuiet(time.Minute)
	if len(recs[1].events) != 0 {
		t.Fatalf("drop rule ignored: %v", recs[1].events)
	}
}

func TestRunStopsAtDeadline(t *testing.T) {
	net, recs := build(Config{Latency: latency.Fixed(time.Second), Seed: 1}, 2)
	net.Inject(1, 1, "kick", 0)
	recs[0].onMsg = func(types.ReplicaID, Message) {
		recs[0].env.Send(2, "later")
	}
	net.Run(500 * time.Millisecond)
	if len(recs[1].events) != 0 {
		t.Fatal("message delivered before its time")
	}
	if net.Pending() == 0 {
		t.Fatal("pending event lost")
	}
	net.RunUntilQuiet(time.Minute)
	if len(recs[1].events) != 1 {
		t.Fatal("message lost after deadline resume")
	}
}

func TestDeliverRuleRewritesAndDrops(t *testing.T) {
	net, recs := build(Config{Latency: latency.Fixed(time.Millisecond), Seed: 1}, 2)
	net.DeliverRule = func(from, to types.ReplicaID, msg Message) Message {
		if s, ok := msg.(string); ok {
			switch s {
			case "rewrite-me":
				return "rewritten"
			case "swallow-me":
				return nil
			}
		}
		return msg
	}
	net.Inject(1, 1, "kick", 0)
	recs[0].onMsg = func(types.ReplicaID, Message) {
		recs[0].env.Send(2, "rewrite-me")
		recs[0].env.Send(2, "swallow-me")
		recs[0].env.Send(2, "untouched")
	}
	dropped := net.Dropped
	net.RunUntilQuiet(time.Minute)
	want := []string{"rewritten", "untouched"}
	if len(recs[1].events) != 2 || recs[1].events[0] != want[0] || recs[1].events[1] != want[1] {
		t.Fatalf("node 2 events = %v, want %v", recs[1].events, want)
	}
	if net.Dropped != dropped+1 {
		t.Fatalf("Dropped = %d, want %d (swallowed delivery counted)", net.Dropped, dropped+1)
	}
}

// TestDeliverRuleSeesInFlightMessages pins the delivery-time semantics
// that distinguish DeliverRule from DropRule: a rule installed while a
// message is already in flight still intercepts it.
func TestDeliverRuleSeesInFlightMessages(t *testing.T) {
	net, recs := build(Config{Latency: latency.Fixed(100 * time.Millisecond), Seed: 1}, 2)
	net.Inject(1, 1, "kick", 0)
	recs[0].onMsg = func(types.ReplicaID, Message) {
		recs[0].env.Send(2, "in-flight")
	}
	net.Run(50 * time.Millisecond) // message sent, not yet delivered
	net.DeliverRule = func(_, _ types.ReplicaID, msg Message) Message {
		if msg == "in-flight" {
			return "intercepted"
		}
		return msg
	}
	net.RunUntilQuiet(time.Minute)
	if len(recs[1].events) != 1 || recs[1].events[0] != "intercepted" {
		t.Fatalf("node 2 events = %v, want [intercepted]", recs[1].events)
	}
}

// TestDeliverRuleEpochScoping is the restart-vs-injection interaction the
// conformance harness depends on: a rule mutating messages for one
// incarnation of a node must stand down once ReplaceHandler restarts it,
// so the fresh incarnation never sees mutations aimed at its previous
// life. Epoch is the handle that makes the rule self-limiting.
func TestDeliverRuleEpochScoping(t *testing.T) {
	net, recs := build(Config{Latency: latency.Fixed(10 * time.Millisecond), Seed: 1}, 2)
	const victim = types.ReplicaID(1)
	if got := net.Epoch(victim); got != 0 {
		t.Fatalf("fresh node epoch = %d, want 0", got)
	}
	// The rule captures the victim's epoch at install time and mutates
	// only deliveries to that incarnation.
	installEpoch := net.Epoch(victim)
	mutated := 0
	net.DeliverRule = func(_, to types.ReplicaID, msg Message) Message {
		if to == victim && net.Epoch(victim) == installEpoch {
			if s, ok := msg.(string); ok {
				mutated++
				return "mutated:" + s
			}
		}
		return msg
	}
	net.Inject(2, victim, "pre-restart", 0)
	net.Run(50 * time.Millisecond)
	if len(recs[0].events) != 1 || recs[0].events[0] != "mutated:pre-restart" {
		t.Fatalf("pre-restart events = %v, want [mutated:pre-restart]", recs[0].events)
	}

	// Restart the victim with a message already in flight: it was sent at
	// the old incarnation but must arrive unmutated at the new one.
	net.Inject(2, victim, "in-flight", 5*time.Millisecond)
	var restarted *recorder
	net.ReplaceHandler(victim, func(env Env) Handler {
		restarted = &recorder{env: env}
		return restarted
	})
	if got := net.Epoch(victim); got != installEpoch+1 {
		t.Fatalf("post-restart epoch = %d, want %d", got, installEpoch+1)
	}
	net.Inject(2, victim, "post-restart", 10*time.Millisecond)
	net.RunUntilQuiet(time.Minute)

	want := []string{"in-flight", "post-restart"}
	if len(restarted.events) != 2 || restarted.events[0] != want[0] || restarted.events[1] != want[1] {
		t.Fatalf("restarted node events = %v, want %v (no stale-epoch mutations)", restarted.events, want)
	}
	if mutated != 1 {
		t.Fatalf("mutated %d deliveries, want 1 (pre-restart only)", mutated)
	}
}

// TestDeliverRuleForcesSequential pins the parallel-window guard: with a
// DeliverRule installed the simulator must not enter window execution
// (the rule needs delivery order), and removing the rule re-enables it.
func TestDeliverRuleForcesSequential(t *testing.T) {
	net, _ := build(Config{Latency: latency.Fixed(10 * time.Millisecond), Seed: 1}, 5)
	if !net.parallelOK() {
		t.Skip("parallel windows unavailable in this configuration")
	}
	net.DeliverRule = func(_, _ types.ReplicaID, msg Message) Message { return msg }
	if net.parallelOK() {
		t.Fatal("parallelOK with DeliverRule installed")
	}
	net.DeliverRule = nil
	if !net.parallelOK() {
		t.Fatal("parallelOK not restored after removing DeliverRule")
	}
}

// TestReplaceHandlerRestartsNode pins restart semantics: the fresh
// handler receives new traffic, timers armed by the old incarnation are
// dropped, and timers armed by the new incarnation fire.
func TestReplaceHandlerRestartsNode(t *testing.T) {
	net, recs := build(Config{Latency: latency.Fixed(10 * time.Millisecond), Seed: 1}, 2)
	// Old incarnation arms a timer far in the future.
	net.Inject(2, 1, "kick", 0)
	recs[0].onMsg = func(types.ReplicaID, Message) {
		recs[0].env.SetTimer(500*time.Millisecond, "stale")
	}
	net.Run(50 * time.Millisecond)

	var restarted *recorder
	net.ReplaceHandler(1, func(env Env) Handler {
		restarted = &recorder{env: env}
		return restarted
	})
	// A message sent after the restart reaches the new handler; the stale
	// timer never fires on it.
	net.Inject(2, 1, "fresh", 0)
	restarted.onMsg = func(types.ReplicaID, Message) {
		restarted.env.SetTimer(20*time.Millisecond, "alive")
	}
	net.RunUntilQuiet(time.Minute)
	want := []string{"fresh", "timer:alive"}
	if len(restarted.events) != 2 || restarted.events[0] != want[0] || restarted.events[1] != want[1] {
		t.Fatalf("restarted node events = %v, want %v", restarted.events, want)
	}
	// The old recorder saw only its own pre-restart traffic.
	if len(recs[0].events) != 1 || recs[0].events[0] != "kick" {
		t.Fatalf("old incarnation events = %v", recs[0].events)
	}
}
