// Package simnet is a deterministic discrete-event network simulator with
// virtual time. It stands in for the paper's geo-distributed AWS testbed
// (§5): protocol nodes are event-driven state machines; the simulator
// delivers their messages after delays drawn from a latency model
// (internal/latency) and charges each node modeled CPU time per message
// sent and received (serialization, bandwidth, signature verification).
//
// The CPU model is what reproduces the paper's key empirical phenomenon
// (Fig. 4): with more replicas each node verifies more signatures per
// round, rounds stretch, and cross-partition evidence of equivocation has
// relatively more time to arrive before a disagreement can complete.
//
// Runs are reproducible: all scheduling is driven by a seeded RNG and a
// heap ordered by (virtual time, sequence number).
//
// When the latency model guarantees a positive minimum delay
// (latency.Bounded), Run and RunUntilQuiet execute conservative parallel
// windows: all events due within one lookahead interval are popped,
// grouped by destination node and executed concurrently on the
// internal/pipeline worker pool, then their outputs are merged in the
// exact order sequential execution would have produced. Every metric,
// RNG draw and queue ordering is bit-identical to sequential execution —
// see README.md ("Conservative parallel windows") for the argument, and
// Config.SequentialSim for the forced-sequential reference mode.
package simnet

import (
	"fmt"
	"math/rand"
	"sync/atomic"
	"time"

	"github.com/zeroloss/zlb/internal/latency"
	"github.com/zeroloss/zlb/internal/types"
)

// Message is any protocol message. Messages that implement Meter get
// accurate cost accounting; others are charged defaults.
type Message any

// Meter lets a message report its approximate wire size and the number of
// signature verifications processing it requires, for the CPU cost model.
type Meter interface {
	SimBytes() int
	SimSigOps() int
}

// Handler is the event-driven interface every simulated node implements.
// The simulator serializes all calls to one node; handlers need no locks.
type Handler interface {
	// OnMessage delivers a message from another node.
	OnMessage(from types.ReplicaID, msg Message)
	// OnTimer fires a timer previously set through the Env.
	OnTimer(payload any)
}

// TimerID identifies a pending timer so it can be cancelled.
type TimerID uint64

// Env is the environment the simulator hands each node: its interface for
// sending, timing and randomness. All methods must be called only from
// within the node's own OnMessage/OnTimer invocations (or before Run).
type Env interface {
	// Self returns the node's own ID.
	Self() types.ReplicaID
	// Now returns the current virtual time for this node.
	Now() time.Duration
	// Send dispatches msg to the node with the given ID.
	Send(to types.ReplicaID, msg Message)
	// SetTimer schedules OnTimer(payload) after d.
	SetTimer(d time.Duration, payload any) TimerID
	// CancelTimer cancels a pending timer; unknown IDs are ignored.
	CancelTimer(id TimerID)
	// Rand returns this node's seeded RNG.
	Rand() *rand.Rand
}

// CostModel charges virtual CPU time for sending and receiving messages.
// The zero value charges nothing (pure latency simulation).
type CostModel struct {
	// RecvBase is charged for every received message.
	RecvBase time.Duration
	// RecvPerByte is charged per byte of a received message.
	RecvPerByte time.Duration
	// SigVerify is charged per signature carried by a received message.
	SigVerify time.Duration
	// SendBase is charged for every sent message.
	SendBase time.Duration
	// SendPerByte is charged per byte of a sent message (bandwidth).
	SendPerByte time.Duration
}

// DefaultCostModel approximates the paper's c4.xlarge replicas: ECDSA
// verification ≈ 85 µs, ~1 Gbps effective bandwidth, small fixed handling
// overheads.
func DefaultCostModel() CostModel {
	return CostModel{
		RecvBase:    4 * time.Microsecond,
		RecvPerByte: 2 * time.Nanosecond,
		SigVerify:   85 * time.Microsecond,
		SendBase:    2 * time.Microsecond,
		SendPerByte: 8 * time.Nanosecond,
	}
}

func meterOf(msg Message) (bytes, sigops int) {
	if m, ok := msg.(Meter); ok {
		return m.SimBytes(), m.SimSigOps()
	}
	return 256, 0
}

func (c CostModel) recvCost(msg Message) time.Duration {
	b, s := meterOf(msg)
	return c.RecvBase + time.Duration(b)*c.RecvPerByte + time.Duration(s)*c.SigVerify
}

func (c CostModel) sendCost(msg Message) time.Duration {
	b, _ := meterOf(msg)
	return c.SendBase + time.Duration(b)*c.SendPerByte
}

// Config parameterizes a simulated network.
type Config struct {
	// Latency produces per-message delays. Required.
	Latency latency.Model
	// Cost is the CPU cost model; zero value charges nothing.
	Cost CostModel
	// Seed makes the run reproducible.
	Seed int64
	// MaxEvents aborts a runaway simulation; 0 means a large default.
	// Hitting it sets Network.Exhausted — callers must treat the run as
	// failed, not as a drained queue.
	MaxEvents int
	// SequentialSim forces the classic one-event-at-a-time loop even when
	// the latency model supports a parallel lookahead. Results are
	// bit-identical either way (the determinism suite pins this); the
	// knob exists for A/B wall-clock comparisons and debugging.
	SequentialSim bool
}

type eventKind int

const (
	evDeliver eventKind = iota + 1
	evTimer
)

type event struct {
	at      time.Duration
	seq     uint64
	kind    eventKind
	to      types.ReplicaID
	from    types.ReplicaID
	msg     Message
	timerID TimerID
	// timerEpoch is the node incarnation that armed the timer; a timer
	// armed before a ReplaceHandler restart is dropped on delivery (its
	// payload belongs to a dead state machine).
	timerEpoch uint32
	payload    any
}

// eventQueue is a value-based 4-ary min-heap ordered by (at, seq). Events
// are stored by value in one growable slice, so scheduling a message
// costs zero heap allocations once the backing array is warm (the old
// container/heap implementation allocated one *event per message — the
// simulator's dominant allocation source). The (at, seq) key is unique
// (seq strictly increases), so the pop order is a total order and does
// not depend on heap arity: results are bit-identical to the old binary
// heap. A 4-ary layout halves the tree depth, which cuts sift work and
// cache misses for the large queues big committees build up.
type eventQueue struct {
	evs []event
}

func (q *eventQueue) Len() int { return len(q.evs) }

// minAt returns the timestamp of the earliest event; the caller must
// ensure the queue is non-empty.
func (q *eventQueue) minAt() time.Duration { return q.evs[0].at }

func (q *eventQueue) less(a, b *event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

func (q *eventQueue) push(ev event) {
	q.evs = append(q.evs, ev)
	// Sift up.
	i := len(q.evs) - 1
	for i > 0 {
		parent := (i - 1) / 4
		if !q.less(&q.evs[i], &q.evs[parent]) {
			break
		}
		q.evs[i], q.evs[parent] = q.evs[parent], q.evs[i]
		i = parent
	}
}

func (q *eventQueue) pop() event {
	min := q.evs[0]
	last := len(q.evs) - 1
	q.evs[0] = q.evs[last]
	q.evs[last] = event{} // release msg/payload references
	q.evs = q.evs[:last]
	// Sift down.
	i := 0
	for {
		first := 4*i + 1
		if first >= last {
			break
		}
		best := first
		end := first + 4
		if end > last {
			end = last
		}
		for c := first + 1; c < end; c++ {
			if q.less(&q.evs[c], &q.evs[best]) {
				best = c
			}
		}
		if !q.less(&q.evs[best], &q.evs[i]) {
			break
		}
		q.evs[i], q.evs[best] = q.evs[best], q.evs[i]
		i = best
	}
	return min
}

type nodeState struct {
	id        types.ReplicaID
	handler   Handler
	busyUntil time.Duration
	now       time.Duration
	up        bool
	rng       *rand.Rand
	net       *Network
	cancelled map[TimerID]struct{}
	// epoch counts ReplaceHandler restarts; timers carry the epoch they
	// were armed in and stale ones are dropped.
	epoch uint32
	// nextTimer is the node's private timer-ID counter. IDs are per-node
	// (the cancelled set is per-node and timers only ever deliver to
	// their owner), which lets parallel windows mint IDs without a
	// cross-node ordering dependency. It survives ReplaceHandler so a
	// stale pre-restart cancellation can never hit a fresh timer.
	nextTimer TimerID
	// win is the node's window context while a parallel window executes
	// its batch; Send/SetTimer buffer through it instead of touching the
	// shared event queue. Nil outside windows (sequential path).
	win *winNode
	// winbuf is the node's reusable window scratch, lazily allocated.
	winbuf *winNode
}

// Network is the simulator. Not safe for concurrent use; the entire
// simulation runs on the caller's goroutine.
type Network struct {
	cfg   Config
	clock time.Duration
	pq    eventQueue
	// nodes is a dense slice indexed by ReplicaID: replica IDs are small
	// consecutive integers, so the per-event lookup is an array index
	// instead of a map probe. Unregistered IDs hold nil.
	nodes []*nodeState
	order []types.ReplicaID // insertion order, for deterministic reporting
	seq   uint64
	rng   *rand.Rand

	// lookahead is the conservative parallel window width: the latency
	// model's guaranteed minimum delay plus the fixed per-message send
	// cost. Zero disables parallel execution (unbounded model).
	lookahead time.Duration
	// Window scratch, reused across windows (see parallel.go).
	winEvents []event
	winActive []*winNode
	winReplay replayHeap
	winBudget atomic.Int64

	// Stats
	Delivered int
	Dropped   int
	BytesSent int64

	// Exhausted is set when the MaxEvents budget stopped the simulation
	// with events still queued. A run that trips it produced metrics from
	// a truncated simulation: benches and scenarios fail instead of
	// reporting them. (Once exhausted, delivery composition may also
	// differ between sequential and parallel execution — bit-identity is
	// only guaranteed for runs that complete within budget.)
	Exhausted bool

	// Trace, if set, observes every delivery (after processing cost is
	// charged). Used by the metrics harness. Tracing does not disable
	// parallel windows: deliveries executed inside a window are replayed
	// to the hook during the deterministic merge, in the exact order and
	// with the exact timestamps the sequential loop would produce
	// (TestTraceParallelMatchesSequential pins this). The hook runs on
	// the coordinating goroutine in both modes.
	Trace func(at time.Duration, from, to types.ReplicaID, msg Message)

	// DropRule, if set, drops matching messages (benign omission faults,
	// network partitions with full loss). Return true to drop.
	DropRule func(from, to types.ReplicaID, msg Message) bool

	// DelayRule, if set, returns extra delivery delay added on top of the
	// latency model (degraded links, slow replicas, partitions that stall
	// but do not lose traffic). It is consulted at send time, so swapping
	// the rule mid-run affects only messages sent afterwards — messages
	// already in flight keep their original arrival time. Self-sends are
	// never delayed. Both rules may be reassigned between Run calls; the
	// scenario engine (internal/scenario) drives them per fault phase.
	DelayRule func(from, to types.ReplicaID, msg Message) time.Duration

	// DeliverRule, if set, intercepts every message at delivery time,
	// after latency, drop and delay rules have run their course: the
	// returned message is what the destination handler actually sees.
	// Return the message unchanged to pass it through, a different
	// message to rewrite it in flight (a Byzantine network surface — the
	// conformance harness forges equivocations this way), or nil to
	// swallow it (counted in Dropped). Unlike DropRule/DelayRule it runs
	// at delivery rather than send time, so a rule installed mid-run
	// also affects messages already in flight. Handlers may call Inject
	// from inside the rule to schedule fabricated follow-ups. Installing
	// a DeliverRule forces sequential execution: parallel windows are
	// disabled while it is non-nil (see parallelOK).
	DeliverRule func(from, to types.ReplicaID, msg Message) Message
}

// New creates a simulated network.
func New(cfg Config) *Network {
	if cfg.MaxEvents == 0 {
		cfg.MaxEvents = 200_000_000
	}
	n := &Network{
		cfg: cfg,
		rng: rand.New(rand.NewSource(cfg.Seed)),
	}
	if cfg.Latency != nil {
		if min := latency.MinDelayOf(cfg.Latency); min > 0 {
			n.lookahead = min + cfg.Cost.SendBase
		}
	}
	return n
}

// Lookahead returns the conservative parallel window width (0 when the
// latency model cannot bound its delays and the simulation runs
// sequentially).
func (n *Network) Lookahead() time.Duration { return n.lookahead }

// node returns the state registered for id, or nil.
func (n *Network) node(id types.ReplicaID) *nodeState {
	if int(id) < len(n.nodes) {
		return n.nodes[id]
	}
	return nil
}

// AddNode registers a node. The build function receives the node's Env and
// returns its Handler; protocols typically capture the Env.
func (n *Network) AddNode(id types.ReplicaID, build func(Env) Handler) {
	if n.node(id) != nil {
		panic(fmt.Sprintf("simnet: duplicate node %v", id))
	}
	st := &nodeState{
		id:        id,
		up:        true,
		rng:       rand.New(rand.NewSource(n.cfg.Seed ^ int64(id)<<17 ^ 0x5eed)),
		net:       n,
		cancelled: make(map[TimerID]struct{}),
	}
	for int(id) >= len(n.nodes) {
		n.nodes = append(n.nodes, nil)
	}
	n.nodes[id] = st
	n.order = append(n.order, id)
	st.handler = build(st)
}

// SetUp marks a node up or down. Down nodes neither send nor receive:
// this models the paper's benign (crashed/mute) replicas.
func (n *Network) SetUp(id types.ReplicaID, up bool) {
	if st := n.node(id); st != nil {
		st.up = up
	}
}

// ReplaceHandler restarts a node as a fresh process: the old handler
// (and all its in-memory protocol state) is discarded, a new one is
// built against the same Env, and every timer armed by the previous
// incarnation is dropped — its payload points into dead state machines.
// In-flight messages still deliver, exactly like packets already in the
// network surviving a peer's reboot. The node's up/down state is
// untouched; callers crash-recovering a replica pair this with SetUp.
func (n *Network) ReplaceHandler(id types.ReplicaID, build func(Env) Handler) {
	st := n.node(id)
	if st == nil {
		panic(fmt.Sprintf("simnet: ReplaceHandler on unknown node %v", id))
	}
	st.epoch++
	st.cancelled = make(map[TimerID]struct{})
	st.handler = build(st)
}

// Now returns the global virtual clock (time of the last processed event).
func (n *Network) Now() time.Duration { return n.clock }

// NodeIDs returns the nodes in insertion order.
func (n *Network) NodeIDs() []types.ReplicaID {
	out := make([]types.ReplicaID, len(n.order))
	copy(out, n.order)
	return out
}

// Handler returns the handler registered for id, or nil.
func (n *Network) Handler(id types.ReplicaID) Handler {
	if st := n.node(id); st != nil {
		return st.handler
	}
	return nil
}

// Epoch returns the node's incarnation number: 0 for the handler built by
// AddNode, incremented by each ReplaceHandler. DeliverRule installations
// that target one incarnation capture this at install time and stand down
// when it changes, so a restarted replica is not fed messages mutated for
// its previous life.
func (n *Network) Epoch(id types.ReplicaID) uint32 {
	if st := n.node(id); st != nil {
		return st.epoch
	}
	return 0
}

// --- Env implementation (per node) ---

var _ Env = (*nodeState)(nil)

func (s *nodeState) Self() types.ReplicaID { return s.id }

func (s *nodeState) Now() time.Duration { return s.now }

func (s *nodeState) Rand() *rand.Rand { return s.rng }

func (s *nodeState) Send(to types.ReplicaID, msg Message) {
	if !s.up {
		return
	}
	n := s.net
	if w := s.win; w != nil {
		w.send(to, msg)
		return
	}
	dst := n.node(to)
	if dst == nil || !dst.up {
		n.Dropped++
		return
	}
	if n.DropRule != nil && n.DropRule(s.id, to, msg) {
		n.Dropped++
		return
	}
	// Charge send cost (bandwidth) to the sender serially: broadcasting
	// to many peers staggers departures.
	depart := s.busyUntil
	if depart < s.now {
		depart = s.now
	}
	depart += n.cfg.Cost.sendCost(msg)
	s.busyUntil = depart
	bytes, _ := meterOf(msg)
	n.BytesSent += int64(bytes)

	var delay time.Duration
	if to == s.id {
		delay = 0
	} else {
		delay = n.cfg.Latency.Delay(s.id, to, n.rng)
		if n.DelayRule != nil {
			delay += n.DelayRule(s.id, to, msg)
		}
	}
	n.seq++
	n.pq.push(event{
		at:   depart + delay,
		seq:  n.seq,
		kind: evDeliver,
		to:   to,
		from: s.id,
		msg:  msg,
	})
}

func (s *nodeState) SetTimer(d time.Duration, payload any) TimerID {
	s.nextTimer++
	id := s.nextTimer
	if w := s.win; w != nil {
		w.setTimer(s.now+d, id, payload)
		return id
	}
	n := s.net
	n.seq++
	n.pq.push(event{
		at:         s.now + d,
		seq:        n.seq,
		kind:       evTimer,
		to:         s.id,
		timerID:    id,
		timerEpoch: s.epoch,
		payload:    payload,
	})
	return id
}

func (s *nodeState) CancelTimer(id TimerID) {
	if id == 0 {
		return
	}
	s.cancelled[id] = struct{}{}
}

// --- Run loop ---

// Step processes the next event. It returns false when the queue is empty
// or the event budget is exhausted (setting Exhausted in the latter case).
func (n *Network) Step() bool {
	for n.pq.Len() > 0 {
		if n.Delivered >= n.cfg.MaxEvents {
			n.Exhausted = true
			return false
		}
		if n.stepEvent(n.pq.pop()) {
			return true
		}
	}
	return false
}

// stepEvent processes one already-popped event and reports whether it was
// delivered (skipped events — down destinations, cancelled or stale
// timers — return false with no effect beyond the drop counter).
func (n *Network) stepEvent(ev event) bool {
	st := n.node(ev.to)
	if st == nil || !st.up {
		n.Dropped++
		return false
	}
	if ev.kind == evTimer {
		if ev.timerEpoch != st.epoch {
			return false // armed by a previous incarnation of the node
		}
		if _, cancelled := st.cancelled[ev.timerID]; cancelled {
			delete(st.cancelled, ev.timerID)
			return false
		}
	}
	start := ev.at
	if st.busyUntil > start {
		start = st.busyUntil
	}
	switch ev.kind {
	case evDeliver:
		if n.DeliverRule != nil {
			m := n.DeliverRule(ev.from, ev.to, ev.msg)
			if m == nil {
				n.Dropped++
				return false
			}
			ev.msg = m
		}
		done := start + n.cfg.Cost.recvCost(ev.msg)
		st.busyUntil = done
		st.now = done
		if done > n.clock {
			n.clock = done
		}
		n.Delivered++
		st.handler.OnMessage(ev.from, ev.msg)
		if n.Trace != nil {
			n.Trace(done, ev.from, ev.to, ev.msg)
		}
	case evTimer:
		st.busyUntil = start
		st.now = start
		if start > n.clock {
			n.clock = start
		}
		n.Delivered++
		st.handler.OnTimer(ev.payload)
	}
	return true
}

// Run processes events until the virtual clock passes the deadline or the
// queue drains. It returns the number of events delivered. Windows whose
// lookahead interval fits entirely before the deadline execute in
// parallel (see parallel.go); the boundary-straddling tail steps
// sequentially, which keeps Run's exact event-for-event semantics.
func (n *Network) Run(until time.Duration) int {
	processed := 0
	for n.pq.Len() > 0 {
		next := n.pq.minAt()
		if next > until {
			break
		}
		if n.parallelOK() {
			if end := next + n.lookahead; end-1 <= until {
				p, ok := n.runWindow(end)
				processed += p
				if !ok {
					break
				}
				continue
			}
		}
		if !n.Step() {
			break
		}
		processed++
	}
	if n.clock < until {
		n.clock = until
	}
	return processed
}

// RunUntilQuiet processes events until no events remain or maxTime is
// reached. It returns the number of events delivered.
func (n *Network) RunUntilQuiet(maxTime time.Duration) int {
	processed := 0
	for n.pq.Len() > 0 {
		next := n.pq.minAt()
		if next > maxTime {
			break
		}
		if n.parallelOK() {
			if end := next + n.lookahead; end-1 <= maxTime {
				p, ok := n.runWindow(end)
				processed += p
				if !ok {
					break
				}
				continue
			}
		}
		if !n.Step() {
			break
		}
		processed++
	}
	return processed
}

// Pending reports how many events are queued.
func (n *Network) Pending() int { return n.pq.Len() }

// --- Fault-injection predicates ---

// PartitionDrop returns a DropRule severing links between nodes in
// different groups. groupOf maps a node to its group; nodes mapped to a
// negative group are unrestricted (they reach, and are reached by,
// everyone) — the same convention as latency.PartitionOverlay.
func PartitionDrop(groupOf func(types.ReplicaID) int) func(from, to types.ReplicaID, msg Message) bool {
	return func(from, to types.ReplicaID, _ Message) bool {
		gf, gt := groupOf(from), groupOf(to)
		return gf >= 0 && gt >= 0 && gf != gt
	}
}

// PartitionDelay returns a DelayRule charging extra delay on links
// between nodes in different groups: a partition that stalls traffic but
// eventually delivers it, the network condition of the paper's coalition
// attacks (§5.2). Negative groups are unrestricted.
func PartitionDelay(groupOf func(types.ReplicaID) int, extra time.Duration) func(from, to types.ReplicaID, msg Message) time.Duration {
	return func(from, to types.ReplicaID, _ Message) time.Duration {
		gf, gt := groupOf(from), groupOf(to)
		if gf >= 0 && gt >= 0 && gf != gt {
			return extra
		}
		return 0
	}
}

// Inject delivers a message to a node from an external source (e.g., a
// client submitting a transaction) at the current clock plus the given
// delay. The from ID does not need to be a registered node.
func (n *Network) Inject(from, to types.ReplicaID, msg Message, after time.Duration) {
	n.seq++
	n.pq.push(event{
		at:   n.clock + after,
		seq:  n.seq,
		kind: evDeliver,
		to:   to,
		from: from,
		msg:  msg,
	})
}
