// Conservative parallel window execution.
//
// When the latency model guarantees a minimum delay L (latency.Bounded),
// every message sent by an event executing at virtual time ≥ t arrives at
// ≥ t + SendBase + L. Popping all events due in the half-open window
// [t, t+L+SendBase) therefore yields batches whose only intra-window
// causality is per-node: the sole events a handler can create that also
// land inside the window are its own timers and self-sends — both
// destined to the creating node itself. Each node's batch (plus its
// dynamically created intra-window self events) is executed on a worker
// of the internal/pipeline pool against purely per-node state; outgoing
// sends and timers are buffered, then merged on the coordinating
// goroutine by replaying the exact pop order sequential execution would
// have used. Sequence numbers are re-assigned and latency RNG draws are
// performed during that replay, in creation order, so the shared RNG
// stream, the queue contents, the virtual clock and every metric are
// bit-identical to the sequential loop — the property
// TestParallelMatchesSequential and the top-level determinism suite pin.
//
// Requirements on user hooks: DropRule is evaluated on worker goroutines
// (it gates the sender's bandwidth charge) and must be a pure function of
// its arguments for the duration of a Run; DelayRule is evaluated during
// the single-threaded merge and must be non-negative. The scenario
// engine's stacked rules satisfy both.
package simnet

import (
	"fmt"
	"time"

	"github.com/zeroloss/zlb/internal/pipeline"
	"github.com/zeroloss/zlb/internal/types"
)

// minParallelNodes is the smallest registered-node count worth windowing:
// below it almost every window is a single node's batch. Small windows
// still go through the full window machinery — it is exact at any size,
// and a one-node window degenerates to an inline Map call.
const minParallelNodes = 4

// parallelOK reports whether window execution is currently usable.
// DeliverRule rewrites messages at delivery time and must see them one
// at a time, in order, so it forces the sequential loop. Trace does NOT:
// each delivered invocation records its completion time, sender and
// message while executing on its worker, and the merge replays the hook
// in the exact sequential pop order (see runWindow) — the trace stream
// is bit-identical to the sequential loop's.
func (n *Network) parallelOK() bool {
	return n.lookahead > 0 && !n.cfg.SequentialSim &&
		n.DeliverRule == nil && len(n.order) >= minParallelNodes
}

// winCreation is one buffered side effect of an in-window handler
// invocation: a cross-node send (arrival time drawn at merge), a
// self-send, or a timer (both with exact arrival times known at creation).
type winCreation struct {
	kind eventKind
	from types.ReplicaID
	to   types.ReplicaID
	msg  Message
	// at is the exact arrival time for self-sends and timers, and the
	// departure time (arrival minus the yet-undrawn latency) for cross
	// sends.
	at    time.Duration
	cross bool
	// consumed marks self events handled inside the window (delivered
	// inline, or locally skipped as cancelled/stale); they must not be
	// re-queued at merge.
	consumed bool
	// rec indexes the invocation record an inline delivery produced
	// (-1 when the creation was not delivered in-window).
	rec        int32
	timerID    TimerID
	timerEpoch uint32
	payload    any
}

// winRec is one delivered invocation's creation span: creations[start:end)
// in creation order. Invocations never nest (the per-node loop is flat),
// so spans are contiguous. When the network's Trace hook is set, the rec
// additionally carries the delivery metadata the merge needs to replay
// the hook in sequential pop order; the fields stay zero otherwise.
type winRec struct {
	start, end int32

	isDeliver bool
	done      time.Duration
	from      types.ReplicaID
	msg       Message
}

// localEvent is one pending entry of a node's in-window queue, ordered by
// (at, lseq). Batch events carry their real global sequence number as
// lseq; locally created events get lseqBase+k, which exceeds every
// pre-window sequence number — exactly the relative order sequential
// execution gives them.
type localEvent struct {
	at          time.Duration
	lseq        uint64
	batchIdx    int32 // index into winNode.batch, or -1
	creationIdx int32 // index into winNode.creations, or -1
}

// winNode is one node's window context: its popped batch, its local event
// queue, the buffered side effects and the per-node counters folded into
// the network totals at merge.
type winNode struct {
	st  *nodeState
	end time.Duration // window end: self events below it deliver inline

	batch    []event
	batchRec []int32 // recs index per batch event, -1 = skipped

	creations []winCreation
	recs      []winRec

	lq       []localEvent // binary heap by (at, lseq)
	lseqBase uint64
	localCtr uint64

	delivered int
	dropped   int
	bytesSent int64
	maxDone   time.Duration
	exhausted bool
}

// send buffers an in-window Send. It mirrors the sequential Send's
// control flow exactly: drop checks before the bandwidth charge, and the
// latency draw deferred to the merge (cross sends) or skipped entirely
// (self-sends deliver at their departure time).
func (w *winNode) send(to types.ReplicaID, msg Message) {
	s := w.st
	n := s.net
	dst := n.node(to)
	if dst == nil || !dst.up {
		w.dropped++
		return
	}
	if n.DropRule != nil && n.DropRule(s.id, to, msg) {
		w.dropped++
		return
	}
	depart := s.busyUntil
	if depart < s.now {
		depart = s.now
	}
	depart += n.cfg.Cost.sendCost(msg)
	s.busyUntil = depart
	bytes, _ := meterOf(msg)
	w.bytesSent += int64(bytes)

	c := winCreation{kind: evDeliver, from: s.id, to: to, msg: msg, at: depart, rec: -1}
	if to != s.id {
		c.cross = true
		w.creations = append(w.creations, c)
		return
	}
	if depart < w.end {
		c.consumed = true
		w.creations = append(w.creations, c)
		w.pushLocal(localEvent{at: depart, batchIdx: -1, creationIdx: int32(len(w.creations) - 1)})
		return
	}
	w.creations = append(w.creations, c)
}

// setTimer buffers an in-window SetTimer (the ID was already minted from
// the node's private counter).
func (w *winNode) setTimer(at time.Duration, id TimerID, payload any) {
	s := w.st
	c := winCreation{
		kind: evTimer, from: s.id, to: s.id, at: at, rec: -1,
		timerID: id, timerEpoch: s.epoch, payload: payload,
	}
	if at < w.end {
		c.consumed = true
		w.creations = append(w.creations, c)
		w.pushLocal(localEvent{at: at, batchIdx: -1, creationIdx: int32(len(w.creations) - 1)})
		return
	}
	w.creations = append(w.creations, c)
}

// pushLocal inserts a locally created event into the node's in-window
// queue with the next local pseudo-sequence number.
func (w *winNode) pushLocal(le localEvent) {
	w.localCtr++
	le.lseq = w.lseqBase + w.localCtr
	w.push(le)
}

// pushBatch enqueues a popped batch event (its real sequence number is
// its local order key).
func (w *winNode) pushBatch(idx int32, at time.Duration, seq uint64) {
	w.push(localEvent{at: at, lseq: seq, batchIdx: idx, creationIdx: -1})
}

// push is the heap insert shared by both entry points.
func (w *winNode) push(le localEvent) {
	w.lq = append(w.lq, le)
	i := len(w.lq) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !localLess(w.lq[i], w.lq[parent]) {
			break
		}
		w.lq[i], w.lq[parent] = w.lq[parent], w.lq[i]
		i = parent
	}
}

func localLess(a, b localEvent) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.lseq < b.lseq
}

func (w *winNode) popLocal() localEvent {
	min := w.lq[0]
	last := len(w.lq) - 1
	w.lq[0] = w.lq[last]
	w.lq = w.lq[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		best := i
		if l < last && localLess(w.lq[l], w.lq[best]) {
			best = l
		}
		if r < last && localLess(w.lq[r], w.lq[best]) {
			best = r
		}
		if best == i {
			break
		}
		w.lq[i], w.lq[best] = w.lq[best], w.lq[i]
		i = best
	}
	return min
}

// reset clears the scratch for reuse, releasing message and payload
// references.
func (w *winNode) reset() {
	for i := range w.batch {
		w.batch[i] = event{}
	}
	w.batch = w.batch[:0]
	w.batchRec = w.batchRec[:0]
	for i := range w.creations {
		w.creations[i] = winCreation{}
	}
	w.creations = w.creations[:0]
	for i := range w.recs {
		w.recs[i] = winRec{} // release msg references held for Trace replay
	}
	w.recs = w.recs[:0]
	w.lq = w.lq[:0]
	w.localCtr = 0
	w.delivered = 0
	w.dropped = 0
	w.bytesSent = 0
	w.maxDone = 0
	w.exhausted = false
}

// run executes the node's batch — plus every self event it spawns inside
// the window — in the exact per-node order sequential execution would
// use. It runs on a worker goroutine and touches only per-node state (and
// the shared window budget).
func (w *winNode) run() {
	st := w.st
	n := st.net
	st.win = w
	for len(w.lq) > 0 {
		le := w.popLocal()
		var kind eventKind
		var at time.Duration
		var from types.ReplicaID
		var msg Message
		var timerID TimerID
		var timerEpoch uint32
		var payload any
		if le.batchIdx >= 0 {
			ev := &w.batch[le.batchIdx]
			kind, at, from, msg = ev.kind, ev.at, ev.from, ev.msg
			timerID, timerEpoch, payload = ev.timerID, ev.timerEpoch, ev.payload
		} else {
			c := &w.creations[le.creationIdx]
			kind, at, from, msg = c.kind, c.at, c.from, c.msg
			timerID, timerEpoch, payload = c.timerID, c.timerEpoch, c.payload
		}
		if kind == evTimer {
			if timerEpoch != st.epoch {
				continue
			}
			if _, cancelled := st.cancelled[timerID]; cancelled {
				delete(st.cancelled, timerID)
				continue
			}
		}
		if n.winBudget.Add(-1) < 0 {
			w.exhausted = true
			break
		}
		start := at
		if st.busyUntil > start {
			start = st.busyUntil
		}
		recIdx := int32(len(w.recs))
		w.recs = append(w.recs, winRec{start: int32(len(w.creations))})
		switch kind {
		case evDeliver:
			done := start + n.cfg.Cost.recvCost(msg)
			st.busyUntil = done
			st.now = done
			if done > w.maxDone {
				w.maxDone = done
			}
			w.delivered++
			if n.Trace != nil {
				rec := &w.recs[recIdx]
				rec.isDeliver = true
				rec.done = done
				rec.from = from
				rec.msg = msg
			}
			st.handler.OnMessage(from, msg)
		case evTimer:
			st.busyUntil = start
			st.now = start
			if start > w.maxDone {
				w.maxDone = start
			}
			w.delivered++
			st.handler.OnTimer(payload)
		}
		w.recs[recIdx].end = int32(len(w.creations))
		if le.batchIdx >= 0 {
			w.batchRec[le.batchIdx] = recIdx
		} else {
			w.creations[le.creationIdx].rec = recIdx
		}
	}
	st.win = nil
}

// replayItem is one delivered invocation awaiting merge, keyed by its
// sequential pop position (at, seq).
type replayItem struct {
	at  time.Duration
	seq uint64
	w   *winNode
	rec int32
}

type replayHeap []replayItem

func (h *replayHeap) push(it replayItem) {
	*h = append(*h, it)
	s := *h
	i := len(s) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !replayLess(s[i], s[parent]) {
			break
		}
		s[i], s[parent] = s[parent], s[i]
		i = parent
	}
}

func (h *replayHeap) pop() replayItem {
	s := *h
	min := s[0]
	last := len(s) - 1
	s[0] = s[last]
	*h = s[:last]
	s = *h
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		best := i
		if l < last && replayLess(s[l], s[best]) {
			best = l
		}
		if r < last && replayLess(s[r], s[best]) {
			best = r
		}
		if best == i {
			break
		}
		s[i], s[best] = s[best], s[i]
		i = best
	}
	return min
}

func replayLess(a, b replayItem) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// runWindow pops every event due before tEnd, executes the per-node
// batches concurrently and merges their buffered side effects back into
// the shared queue in sequential-equivalent order. It returns the number
// of events delivered and ok=false when the event budget was exhausted.
func (n *Network) runWindow(tEnd time.Duration) (int, bool) {
	// Pop and group by destination. Down-destination drops happen here,
	// exactly where the sequential pop would count them (up/down state
	// never changes during a Run).
	active := n.winActive[:0]
	events := n.winEvents[:0]
	for n.pq.Len() > 0 && n.pq.minAt() < tEnd {
		ev := n.pq.pop()
		st := n.node(ev.to)
		if st == nil || !st.up {
			n.Dropped++
			continue
		}
		events = append(events, ev)
		w := st.winbuf
		if w == nil {
			w = &winNode{st: st}
			st.winbuf = w
		}
		if len(w.batch) == 0 {
			active = append(active, w)
		}
		w.batch = append(w.batch, ev)
	}
	n.winEvents = events
	n.winActive = active

	remaining := n.cfg.MaxEvents - n.Delivered
	if remaining < len(events) {
		// The budget will exhaust inside this window. Put everything back
		// and fall back to single Steps: the sequential loop's exact
		// MaxEvents cutoff (which events deliver before the stop), which
		// a countdown shared across workers could not reproduce.
		//
		// Popped events must go back through the queue — stepping them
		// from a buffer would leap-frog any earlier-scheduled event a
		// handler creates mid-batch (a self-send or short timer landing
		// between two buffered arrivals).
		for _, w := range active {
			w.reset()
		}
		for _, ev := range events {
			n.pq.push(ev)
		}
		n.releaseWindow()
		if !n.Step() {
			return 0, false
		}
		return 1, true
	}

	// Parallel execution: one worker task per destination node.
	n.winBudget.Store(int64(remaining))
	for _, w := range active {
		w.end = tEnd
		w.lseqBase = n.seq
		w.batchRec = w.batchRec[:0]
		for i := range w.batch {
			w.batchRec = append(w.batchRec, -1)
			w.pushBatch(int32(i), w.batch[i].at, w.batch[i].seq)
		}
	}
	pipeline.Shared().Map(len(active), func(i int) { active[i].run() })

	// Deterministic merge: replay the sequential pop order of the window,
	// assigning sequence numbers and drawing latency delays in the exact
	// order the sequential loop would have.
	rh := n.winReplay[:0]
	for _, w := range active {
		for i := range w.batch {
			if w.batchRec[i] >= 0 {
				rh.push(replayItem{at: w.batch[i].at, seq: w.batch[i].seq, w: w, rec: w.batchRec[i]})
			}
		}
	}
	for len(rh) > 0 {
		it := rh.pop()
		rec := it.w.recs[it.rec]
		for ci := rec.start; ci < rec.end; ci++ {
			c := &it.w.creations[ci]
			n.seq++
			seq := n.seq
			switch {
			case c.cross:
				delay := n.cfg.Latency.Delay(c.from, c.to, n.rng)
				if n.DelayRule != nil {
					delay += n.DelayRule(c.from, c.to, c.msg)
				}
				at := c.at + delay
				if at < tEnd {
					panic(fmt.Sprintf("simnet: latency model returned %v for %v->%v, below its declared MinDelay bound (arrival %v inside window ending %v)",
						delay, c.from, c.to, at, tEnd))
				}
				n.pq.push(event{at: at, seq: seq, kind: evDeliver, to: c.to, from: c.from, msg: c.msg})
			case c.consumed:
				// Handled inside the window; if it was delivered (not a
				// cancelled/stale timer), replay its own creations at its
				// sequential position.
				if c.rec >= 0 {
					rh.push(replayItem{at: c.at, seq: seq, w: it.w, rec: c.rec})
				}
			default:
				// Self event landing at or beyond the window end: queue it.
				n.pq.push(event{
					at: c.at, seq: seq, kind: c.kind, to: c.to, from: c.from, msg: c.msg,
					timerID: c.timerID, timerEpoch: c.timerEpoch, payload: c.payload,
				})
			}
		}
		// Replay the Trace hook at this invocation's sequential position:
		// the sequential loop calls it right after the handler returns
		// (sends already sequenced), which is exactly here.
		if n.Trace != nil && rec.isDeliver {
			n.Trace(rec.done, rec.from, it.w.st.id, rec.msg)
		}
	}

	n.winReplay = rh[:0]
	delivered := 0
	ok := true
	for _, w := range active {
		delivered += w.delivered
		n.Delivered += w.delivered
		n.Dropped += w.dropped
		n.BytesSent += w.bytesSent
		if w.maxDone > n.clock {
			n.clock = w.maxDone
		}
		if w.exhausted {
			n.Exhausted = true
			ok = false
		}
		w.reset()
	}
	n.releaseWindow()
	return delivered, ok
}

// releaseWindow clears the shared pop buffer (dropping message
// references) while keeping its capacity for the next window.
func (n *Network) releaseWindow() {
	for i := range n.winEvents {
		n.winEvents[i] = event{}
	}
	n.winEvents = n.winEvents[:0]
	n.winActive = n.winActive[:0]
}
