package simnet

import (
	"fmt"
	"runtime"
	"testing"
	"time"

	"github.com/zeroloss/zlb/internal/latency"
	"github.com/zeroloss/zlb/internal/pipeline"
	"github.com/zeroloss/zlb/internal/types"
)

// chatter is a stress handler for the window executor: on every message
// it fans out to a few peers, self-sends, arms short timers (often inside
// the lookahead window), cancels some of them, and consumes its per-node
// RNG — everything the conservative window has to replay exactly. Each
// node records its own delivery log (handler-owned state, safe in both
// modes).
type chatter struct {
	env      Env
	peers    []types.ReplicaID
	log      []string
	lastTid  TimerID
	msgCount int
	maxSends int
}

type ping struct {
	Hop  int
	Tag  string
	Size int
}

func (p *ping) SimBytes() int  { return p.Size }
func (p *ping) SimSigOps() int { return p.Hop % 3 }

func (c *chatter) OnMessage(from types.ReplicaID, msg Message) {
	m := msg.(*ping)
	c.log = append(c.log, fmt.Sprintf("m f=%d hop=%d tag=%s now=%d", from, m.Hop, m.Tag, c.env.Now()))
	c.msgCount++
	if c.msgCount > c.maxSends {
		return
	}
	// Fan out to a deterministic, RNG-influenced subset.
	r := c.env.Rand()
	for i := 0; i < 2; i++ {
		to := c.peers[r.Intn(len(c.peers))]
		c.env.Send(to, &ping{Hop: m.Hop + 1, Tag: m.Tag, Size: 100 + r.Intn(400)})
	}
	switch m.Hop % 4 {
	case 0:
		// Self-send: lands at the departure time, often mid-window.
		c.env.Send(c.env.Self(), &ping{Hop: m.Hop + 1, Tag: m.Tag + "+self", Size: 64})
	case 1:
		// Short timer: well inside the lookahead window.
		c.lastTid = c.env.SetTimer(time.Duration(r.Intn(200))*time.Microsecond, m.Hop)
	case 2:
		// Arm then immediately cancel (the cancel must win in both modes).
		id := c.env.SetTimer(50*time.Microsecond, -m.Hop)
		c.env.CancelTimer(id)
	case 3:
		// Cancel whatever short timer is still pending, maybe too late.
		c.env.CancelTimer(c.lastTid)
		c.env.SetTimer(3*time.Millisecond, m.Hop*10)
	}
}

func (c *chatter) OnTimer(payload any) {
	c.log = append(c.log, fmt.Sprintf("t p=%v now=%d", payload, c.env.Now()))
	if v, ok := payload.(int); ok && v >= 0 && c.msgCount <= c.maxSends {
		to := c.peers[v%len(c.peers)]
		c.env.Send(to, &ping{Hop: v + 1, Tag: "tmr", Size: 128})
	}
}

// buildChatterNet wires nNodes chatter handlers over the given latency
// model and returns the network plus the per-node handlers.
func buildChatterNet(nNodes int, model latency.Model, cost CostModel, seqSim bool, maxEvents int) (*Network, []*chatter) {
	n := New(Config{Latency: model, Cost: cost, Seed: 7, SequentialSim: seqSim, MaxEvents: maxEvents})
	peers := make([]types.ReplicaID, nNodes)
	for i := range peers {
		peers[i] = types.ReplicaID(i + 1)
	}
	handlers := make([]*chatter, nNodes)
	for i, id := range peers {
		i := i
		n.AddNode(id, func(env Env) Handler {
			h := &chatter{env: env, peers: peers, maxSends: 400}
			handlers[i] = h
			return h
		})
	}
	return n, handlers
}

// fingerprint summarizes everything the two modes must agree on.
func fingerprint(n *Network, handlers []*chatter) string {
	out := fmt.Sprintf("clock=%d delivered=%d dropped=%d bytes=%d pending=%d exhausted=%v\n",
		n.Now(), n.Delivered, n.Dropped, n.BytesSent, n.Pending(), n.Exhausted)
	for i, h := range handlers {
		out += fmt.Sprintf("node %d (%d events):\n", i+1, len(h.log))
		for _, l := range h.log {
			out += "  " + l + "\n"
		}
	}
	return out
}

// runChatter drives the network through several Run segments (so window
// boundaries interleave with Run deadlines) and injected workload.
func runChatter(t *testing.T, model latency.Model, cost CostModel, seqSim bool, maxEvents int,
	rules func(*Network)) string {
	t.Helper()
	n, handlers := buildChatterNet(6, model, cost, seqSim, maxEvents)
	if rules != nil {
		rules(n)
	}
	for i := 0; i < 3; i++ {
		n.Inject(100, types.ReplicaID(i+1), &ping{Hop: 0, Tag: fmt.Sprintf("seed%d", i), Size: 256}, time.Duration(i)*time.Millisecond)
	}
	n.Run(40 * time.Millisecond)
	n.Inject(100, 2, &ping{Hop: 0, Tag: "mid", Size: 256}, 0)
	n.Run(70 * time.Millisecond)
	n.RunUntilQuiet(500 * time.Millisecond)
	return fingerprint(n, handlers)
}

// widenPool makes sure the shared worker pool is multi-worker even on a
// single-core host, so the parallel path actually runs concurrently.
func widenPool() {
	prev := runtime.GOMAXPROCS(4)
	pipeline.Shared()
	runtime.GOMAXPROCS(prev)
}

// TestParallelMatchesSequential is the window executor's core contract:
// for a latency model with a positive lower bound, parallel windows must
// reproduce the sequential loop bit for bit — per-node delivery logs
// (timestamps included), the virtual clock, event counters, bytes, and
// the pending queue length — across cost models and fault rules.
func TestParallelMatchesSequential(t *testing.T) {
	widenPool()
	models := []struct {
		name  string
		model latency.Model
	}{
		{"uniform", latency.Uniform(900*time.Microsecond, 7*time.Millisecond)},
		{"aws", latency.NewAWSMatrix()},
		{"aws-jittered", latency.Jittered(latency.NewAWSMatrix(), 0.2)},
		{"fixed", latency.Fixed(2 * time.Millisecond)},
	}
	costs := []struct {
		name string
		cost CostModel
	}{
		{"zero-cost", CostModel{}},
		{"default-cost", DefaultCostModel()},
	}
	for _, m := range models {
		for _, c := range costs {
			t.Run(m.name+"/"+c.name, func(t *testing.T) {
				seq := runChatter(t, m.model, c.cost, true, 0, nil)
				par := runChatter(t, m.model, c.cost, false, 0, nil)
				if seq != par {
					da, db := diffHead(seq, par)
					t.Fatalf("parallel diverged from sequential:\n--- seq\n%s\n--- par\n%s", da, db)
				}
			})
		}
	}
}

// TestParallelMatchesSequentialWithRules exercises DropRule and DelayRule
// under windows: drops gate the sender's bandwidth charge on worker
// goroutines, delays are added during the merge.
func TestParallelMatchesSequentialWithRules(t *testing.T) {
	widenPool()
	rules := func(n *Network) {
		n.DropRule = func(from, to types.ReplicaID, _ Message) bool {
			return from == 3 && to == 5 // one severed link
		}
		n.DelayRule = func(from, to types.ReplicaID, _ Message) time.Duration {
			if from == 2 {
				return 4 * time.Millisecond // slow replica
			}
			return 0
		}
	}
	model := latency.Uniform(1*time.Millisecond, 6*time.Millisecond)
	seq := runChatter(t, model, DefaultCostModel(), true, 0, rules)
	par := runChatter(t, model, DefaultCostModel(), false, 0, rules)
	if seq != par {
		da, db := diffHead(seq, par)
		t.Fatalf("parallel diverged under rules:\n--- seq\n%s\n--- par\n%s", da, db)
	}
	if seq == runChatter(t, model, DefaultCostModel(), true, 0, nil) {
		t.Fatal("rules had no effect; test is vacuous")
	}
}

// TestParallelMatchesSequentialDownNodes covers deliveries to down nodes
// (dropped at pop time in both modes) and wake-ups between Run calls.
func TestParallelMatchesSequentialDownNodes(t *testing.T) {
	widenPool()
	run := func(seqSim bool) string {
		n, handlers := buildChatterNet(6, latency.Fixed(1500*time.Microsecond), DefaultCostModel(), seqSim, 0)
		for i := 0; i < 3; i++ {
			n.Inject(100, types.ReplicaID(i+1), &ping{Hop: 0, Tag: "seed", Size: 256}, 0)
		}
		n.Run(20 * time.Millisecond)
		n.SetUp(4, false)
		n.Run(40 * time.Millisecond)
		n.SetUp(4, true)
		n.RunUntilQuiet(300 * time.Millisecond)
		return fingerprint(n, handlers)
	}
	seq, par := run(true), run(false)
	if seq != par {
		da, db := diffHead(seq, par)
		t.Fatalf("parallel diverged with down nodes:\n--- seq\n%s\n--- par\n%s", da, db)
	}
}

// TestParallelUnboundedModelFallsBack pins the automatic fallback: a
// model without a delay lower bound (Gamma, plain ModelFunc) must yield
// zero lookahead and run sequentially — and still complete correctly.
func TestParallelUnboundedModelFallsBack(t *testing.T) {
	n, _ := buildChatterNet(6, latency.GammaInternet(), CostModel{}, false, 0)
	if n.Lookahead() != 0 {
		t.Fatalf("lookahead %v for unbounded model, want 0", n.Lookahead())
	}
	if n.parallelOK() {
		t.Fatal("parallelOK for unbounded model")
	}
	n.Inject(100, 1, &ping{Hop: 0, Tag: "x", Size: 64}, 0)
	if n.RunUntilQuiet(time.Second) == 0 {
		t.Fatal("nothing ran")
	}
}

// TestTraceParallelMatchesSequential pins the Trace replay contract:
// installing Trace must NOT disable parallel windows (it used to force
// the sequential loop silently), and the hook must observe every
// delivery in the exact order, with the exact timestamps, senders,
// receivers and messages the sequential loop produces — the merge
// replays recorded deliveries at their sequential pop positions.
func TestTraceParallelMatchesSequential(t *testing.T) {
	widenPool()
	run := func(seqSim bool) (string, string) {
		n, handlers := buildChatterNet(6, latency.Uniform(900*time.Microsecond, 7*time.Millisecond), DefaultCostModel(), seqSim, 0)
		var trace string
		n.Trace = func(at time.Duration, from, to types.ReplicaID, msg Message) {
			p := msg.(*ping)
			trace += fmt.Sprintf("at=%d %d->%d hop=%d tag=%s\n", at, from, to, p.Hop, p.Tag)
		}
		if !seqSim && !n.parallelOK() {
			t.Fatal("Trace disabled parallel windows")
		}
		for i := 0; i < 3; i++ {
			n.Inject(100, types.ReplicaID(i+1), &ping{Hop: 0, Tag: fmt.Sprintf("seed%d", i), Size: 256}, time.Duration(i)*time.Millisecond)
		}
		n.Run(40 * time.Millisecond)
		n.RunUntilQuiet(500 * time.Millisecond)
		return trace, fingerprint(n, handlers)
	}
	seqTrace, seqFp := run(true)
	parTrace, parFp := run(false)
	if seqTrace == "" {
		t.Fatal("trace never fired")
	}
	if seqTrace != parTrace {
		da, db := diffHead(seqTrace, parTrace)
		t.Fatalf("trace streams diverged:\n--- seq\n%s\n--- par\n%s", da, db)
	}
	if seqFp != parFp {
		da, db := diffHead(seqFp, parFp)
		t.Fatalf("fingerprints diverged with Trace installed:\n--- seq\n%s\n--- par\n%s", da, db)
	}
}

// TestExhaustedFlag pins MaxEvents surfacing: both modes must set
// Exhausted instead of reporting a drained queue.
func TestExhaustedFlag(t *testing.T) {
	widenPool()
	for _, seqSim := range []bool{true, false} {
		n, _ := buildChatterNet(6, latency.Fixed(time.Millisecond), CostModel{}, seqSim, 200)
		for i := 0; i < 3; i++ {
			n.Inject(100, types.ReplicaID(i+1), &ping{Hop: 0, Tag: "seed", Size: 256}, 0)
		}
		n.RunUntilQuiet(10 * time.Second)
		if !n.Exhausted {
			t.Fatalf("seqSim=%v: Exhausted not set (delivered %d, pending %d)", seqSim, n.Delivered, n.Pending())
		}
		if n.Delivered > 200 {
			t.Fatalf("seqSim=%v: delivered %d beyond MaxEvents 200", seqSim, n.Delivered)
		}
		if n.Pending() == 0 {
			t.Fatalf("seqSim=%v: queue drained, exhaustion test is vacuous", seqSim)
		}
	}
}

// TestParallelReplaceHandlerEpochs covers mid-run-adjacent restarts: a
// timer armed before ReplaceHandler must be dropped in both modes, and a
// stale cancellation must never hit a fresh incarnation's timer.
func TestParallelReplaceHandlerEpochs(t *testing.T) {
	widenPool()
	run := func(seqSim bool) string {
		n, handlers := buildChatterNet(6, latency.Fixed(1200*time.Microsecond), CostModel{}, seqSim, 0)
		for i := 0; i < 3; i++ {
			n.Inject(100, types.ReplicaID(i+1), &ping{Hop: 0, Tag: "seed", Size: 256}, 0)
		}
		n.Run(30 * time.Millisecond)
		// Restart node 2: fresh handler, stale timers dropped.
		peers := make([]types.ReplicaID, 6)
		for i := range peers {
			peers[i] = types.ReplicaID(i + 1)
		}
		n.ReplaceHandler(2, func(env Env) Handler {
			h := &chatter{env: env, peers: peers, maxSends: 400}
			handlers[1] = h
			return h
		})
		n.RunUntilQuiet(300 * time.Millisecond)
		return fingerprint(n, handlers)
	}
	seq, par := run(true), run(false)
	if seq != par {
		da, db := diffHead(seq, par)
		t.Fatalf("parallel diverged across restart:\n--- seq\n%s\n--- par\n%s", da, db)
	}
}

// diffHead trims two long fingerprints to the first divergent region so
// failures stay readable.
func diffHead(a, b string) (string, string) {
	const ctx = 400
	i := 0
	for i < len(a) && i < len(b) && a[i] == b[i] {
		i++
	}
	lo := i - ctx/2
	if lo < 0 {
		lo = 0
	}
	end := func(s string) int {
		if lo+ctx < len(s) {
			return lo + ctx
		}
		return len(s)
	}
	return fmt.Sprintf("...%s...", a[lo:end(a)]), fmt.Sprintf("...%s...", b[lo:end(b)])
}
