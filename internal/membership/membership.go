// Package membership implements the paper's Algorithm 1: the membership
// change that follows a disagreement. It runs two consecutive Set
// Byzantine Consensus instances — an exclusion consensus whose proposals
// are sets of proofs of fraud and whose committee C′ shrinks at runtime
// as new PoFs arrive (lines 13-36), then an inclusion consensus over the
// updated committee whose proposals are candidate replicas from the pool
// (lines 41-49) — and finally applies a deterministic choose function that
// spreads inclusions evenly across the decided proposals so the deceitful
// ratio cannot increase even if every included replica is deceitful.
package membership

import (
	"fmt"
	"time"

	"github.com/zeroloss/zlb/internal/accountability"
	"github.com/zeroloss/zlb/internal/bincon"
	"github.com/zeroloss/zlb/internal/committee"
	"github.com/zeroloss/zlb/internal/crypto"
	"github.com/zeroloss/zlb/internal/sbc"
	"github.com/zeroloss/zlb/internal/simnet"
	"github.com/zeroloss/zlb/internal/types"
	"github.com/zeroloss/zlb/internal/wire"
)

// PoFBroadcast disseminates newly found proofs of fraud (Alg. 1 line 26).
type PoFBroadcast struct {
	Epoch uint64
	PoFs  []accountability.PoF
}

// SimBytes implements simnet.Meter.
func (m *PoFBroadcast) SimBytes() int { return 60 + 300*len(m.PoFs) }

// SimSigOps implements simnet.Meter.
func (m *PoFBroadcast) SimSigOps() int { return 2 * len(m.PoFs) }

// Result is the outcome of a completed membership change.
type Result struct {
	Epoch    uint64
	Excluded []types.ReplicaID
	Included []types.ReplicaID
	// PoFs are the decided proofs justifying the exclusions.
	PoFs []accountability.PoF
	// ExclusionDecision and InclusionDecision carry the certificates a
	// joiner needs to audit the change.
	ExclusionDecision *sbc.Decision
	InclusionDecision *sbc.Decision
	// Timing for the paper's Figure 5.
	StartedAt  time.Duration
	ExcludedAt time.Duration
	IncludedAt time.Duration
}

// Config parameterizes one membership change at one replica.
type Config struct {
	Epoch  uint64
	Self   types.ReplicaID
	Signer *crypto.Signer
	Log    *accountability.Log
	Env    simnet.Env
	// Committee is the full committee C at the time the change starts
	// (snapshot).
	Committee []types.ReplicaID
	// Pool supplies inclusion candidates.
	Pool *committee.Pool
	// TargetSize is the committee size to restore (n).
	TargetSize int
	// CoordTimeout is passed to the binary consensuses.
	CoordTimeout func(round types.Round) time.Duration
	// AggregateCerts is passed to the exclusion/inclusion consensuses
	// (sbc.Config.AggregateCerts).
	AggregateCerts bool
	// OnResult fires once, when the inclusion consensus completes.
	OnResult func(*Result)
}

// ChangeInstance packs the membership epoch and a retry attempt into the
// instance number the exclusion/inclusion consensus statements carry. A
// Set Byzantine Consensus can legitimately decide the empty set when
// replicas start the change at very different times (the zero bitmask);
// an empty exclusion or inclusion decision triggers a retry with a fresh
// instance number.
func ChangeInstance(epoch uint64, attempt uint32) types.Instance {
	return types.Instance(epoch<<6 | uint64(attempt)&0x3f)
}

// SplitChangeInstance reverses ChangeInstance.
func SplitChangeInstance(wi types.Instance) (epoch uint64, attempt uint32) {
	return uint64(wi) >> 6, uint32(uint64(wi) & 0x3f)
}

// Change is the state machine of one membership change epoch.
type Change struct {
	cfg Config

	// cPrime is the runtime-updated exclusion committee C′ (Alg. 1 line 4).
	cPrime *committee.View
	// cUpdated is C after exclusion, used by the inclusion consensus.
	cUpdated *committee.View

	exclusion  *sbc.Instance
	inclusion  *sbc.Instance
	exAttempt  uint32
	incAttempt uint32

	knownPoFs    map[types.ReplicaID]accountability.PoF
	excluded     []types.ReplicaID
	decidedPoFs  []accountability.PoF
	exclusionDec *sbc.Decision

	// pendingInc buffers inclusion-consensus traffic that arrives before
	// our exclusion consensus completes (peers may be ahead of us);
	// pendingEx buffers exclusion traffic for retry attempts ahead of ours.
	pendingInc []pendingMsg
	pendingEx  []pendingMsg

	started    time.Duration
	excludedAt time.Duration
	done       bool
}

type pendingMsg struct {
	from types.ReplicaID
	msg  simnet.Message
}

// NewChange creates the membership change and immediately starts the
// exclusion consensus: the caller invokes it only once it holds at least
// fd = ⌈n/3⌉ PoFs (Alg. 1 line 18).
func NewChange(cfg Config) *Change {
	c := &Change{
		cfg:       cfg,
		knownPoFs: make(map[types.ReplicaID]accountability.PoF),
	}
	c.started = cfg.Env.Now()
	// C′ starts as C minus the culprits we already hold proofs for
	// (Alg. 1 lines 20-21).
	c.cPrime = committee.NewView(cfg.Committee)
	for _, p := range cfg.Log.PoFs() {
		c.knownPoFs[p.Culprit] = p
	}
	c.cPrime.Exclude(culpritsOf(c.knownPoFs))

	// Subscribe the SBC quorum re-evaluation to view shrinking; the
	// closure reads the current attempt's instance.
	c.cPrime.Subscribe(func() {
		if c.exclusion != nil {
			c.exclusion.Reevaluate()
		}
	})
	c.startExclusion()
	// Broadcast our PoFs so every honest replica converges on the same C′
	// (Alg. 1 line 26).
	c.broadcastPoFs(c.cfg.Log.PoFs())
	return c
}

// startExclusion launches the exclusion consensus for the current attempt
// and proposes our PoF set (Alg. 1 line 22).
func (c *Change) startExclusion() {
	c.exclusion = sbc.New(sbc.Config{
		Context:        accountability.CtxExclusion,
		Instance:       ChangeInstance(c.cfg.Epoch, c.exAttempt),
		Self:           c.cfg.Self,
		Slots:          c.cfg.Committee,
		View:           c.cPrime,
		Signer:         c.cfg.Signer,
		Log:            c.cfg.Log,
		Env:            c.cfg.Env,
		Accountable:    true,
		AggregateCerts: c.cfg.AggregateCerts,
		Validate:       c.validateExclusionProposal,
		CoordTimeout:   c.cfg.CoordTimeout,
		OnDecide:       c.onExclusionDecided,
	})
	payload, err := EncodePoFs(c.cfg.Log.PoFs())
	if err != nil {
		panic(fmt.Sprintf("membership: encoding pofs: %v", err))
	}
	c.exclusion.Propose(payload, 0, 0)
	// Replay exclusion traffic for this attempt that peers sent early.
	buffered := c.pendingEx
	c.pendingEx = nil
	for _, p := range buffered {
		if !c.exclusion.OnMessage(p.from, p.msg) {
			c.pendingEx = append(c.pendingEx, p)
		}
	}
}

func culpritsOf(m map[types.ReplicaID]accountability.PoF) []types.ReplicaID {
	out := make([]types.ReplicaID, 0, len(m))
	for id := range m {
		out = append(out, id)
	}
	return types.SortReplicas(out)
}

// Done reports completion.
func (c *Change) Done() bool { return c.done }

// Phase describes the change's progress, for diagnostics.
func (c *Change) Phase() string {
	switch {
	case c.done:
		return "done"
	case c.inclusion != nil:
		return "inclusion"
	case c.exclusionDec != nil:
		return "excluded"
	default:
		return "exclusion"
	}
}

// CPrime exposes the runtime exclusion committee view (diagnostics).
func (c *Change) CPrime() *committee.View { return c.cPrime }

// ExclusionInstance exposes the exclusion SBC (diagnostics/tests).
func (c *Change) ExclusionInstance() *sbc.Instance { return c.exclusion }

// InclusionInstance exposes the inclusion SBC (diagnostics/tests).
func (c *Change) InclusionInstance() *sbc.Instance { return c.inclusion }

// Excluded exposes the exclusion outcome (diagnostics/tests).
func (c *Change) Excluded() []types.ReplicaID { return c.excluded }

// ExclusionOutcome exposes the raw exclusion decision (diagnostics).
func (c *Change) ExclusionOutcome() *sbc.Decision { return c.exclusionDec }

// Epoch returns the change's epoch number.
func (c *Change) Epoch() uint64 { return c.cfg.Epoch }

func (c *Change) broadcastPoFs(pofs []accountability.PoF) {
	msg := &PoFBroadcast{Epoch: c.cfg.Epoch, PoFs: pofs}
	for _, m := range c.cfg.Committee {
		c.cfg.Env.Send(m, msg)
	}
}

// OnPoFs ingests externally received PoFs (from PoFBroadcast or from the
// owner's log) and updates C′ at runtime (Alg. 1 lines 23-27).
func (c *Change) OnPoFs(pofs []accountability.PoF) {
	if c.done {
		return
	}
	var fresh []accountability.PoF
	for _, p := range pofs {
		if _, known := c.knownPoFs[p.Culprit]; known {
			continue
		}
		if !p.Verify(c.cfg.Signer) {
			continue
		}
		c.knownPoFs[p.Culprit] = p
		c.cfg.Log.AddPoF(p)
		fresh = append(fresh, p)
	}
	if len(fresh) == 0 {
		return
	}
	// Shrink C′; the subscription re-evaluates pending quorums with the
	// smaller threshold and re-checks stored certificates.
	if c.exclusionDec == nil {
		c.cPrime.Exclude(culpritsOf(c.knownPoFs))
		// Re-broadcast the new PoFs (line 26).
		c.broadcastPoFs(fresh)
	}
}

// validateExclusionProposal accepts proposals that decode to a non-empty
// set of valid PoFs on committee members (SBC-Validity for the exclusion
// consensus).
func (c *Change) validateExclusionProposal(_ types.ReplicaID, payload []byte) bool {
	pofs, err := DecodePoFs(payload)
	if err != nil || len(pofs) == 0 {
		return false
	}
	inCommittee := types.NewReplicaSet(c.cfg.Committee...)
	for _, p := range pofs {
		if !inCommittee.Contains(p.Culprit) {
			return false
		}
		if !p.Verify(c.cfg.Signer) {
			return false
		}
	}
	return true
}

// onExclusionDecided fires when the exclusion consensus completes: the
// excluded set is the union of culprits across decided proposals
// (Alg. 1 lines 37-40).
func (c *Change) onExclusionDecided(d *sbc.Decision) {
	if c.exclusionDec != nil {
		return
	}
	union := make(map[types.ReplicaID]accountability.PoF)
	for _, p := range d.OrderedProposals() {
		pofs, err := DecodePoFs(p.Payload)
		if err != nil {
			continue // validated at echo time; defensive
		}
		for _, pof := range pofs {
			if _, dup := union[pof.Culprit]; !dup {
				union[pof.Culprit] = pof
			}
		}
	}
	if len(union) == 0 {
		// Empty decision (zero bitmask): nothing would be excluded. Retry
		// with a fresh instance — replicas are now synchronized on this
		// change, so the retry converges.
		c.exAttempt++
		c.startExclusion()
		return
	}
	c.exclusionDec = d
	c.excludedAt = c.cfg.Env.Now()
	c.excluded = culpritsOf(union)
	c.decidedPoFs = make([]accountability.PoF, 0, len(union))
	for _, id := range c.excluded {
		c.decidedPoFs = append(c.decidedPoFs, union[id])
	}

	// The inclusion consensus runs over the updated committee C \ excluded
	// (Alg. 1 line 40), a static view.
	remaining := make([]types.ReplicaID, 0, len(c.cfg.Committee))
	excludedSet := types.NewReplicaSet(c.excluded...)
	for _, id := range c.cfg.Committee {
		if !excludedSet.Contains(id) {
			remaining = append(remaining, id)
		}
	}
	c.cUpdated = committee.NewView(remaining)
	c.startInclusion()
}

// startInclusion launches the inclusion consensus for the current attempt
// and proposes candidates from the pool (Alg. 1 lines 41-42).
func (c *Change) startInclusion() {
	c.inclusion = sbc.New(sbc.Config{
		Context:        accountability.CtxInclusion,
		Instance:       ChangeInstance(c.cfg.Epoch, c.incAttempt),
		Self:           c.cfg.Self,
		View:           c.cUpdated,
		Signer:         c.cfg.Signer,
		Log:            c.cfg.Log,
		Env:            c.cfg.Env,
		Accountable:    true,
		AggregateCerts: c.cfg.AggregateCerts,
		Validate:       c.validateInclusionProposal,
		CoordTimeout:   c.cfg.CoordTimeout,
		OnDecide:       c.onInclusionDecided,
	})
	want := c.cfg.TargetSize - c.cUpdated.Size()
	if want < 0 {
		want = 0
	}
	candidates := c.cfg.Pool.Peek(want)
	payload, err := EncodeReplicas(candidates)
	if err != nil {
		panic(fmt.Sprintf("membership: encoding candidates: %v", err))
	}
	c.inclusion.Propose(payload, 0, 0)
	// Replay inclusion traffic that arrived while we were still excluding.
	buffered := c.pendingInc
	c.pendingInc = nil
	for _, p := range buffered {
		if !c.inclusion.OnMessage(p.from, p.msg) {
			c.pendingInc = append(c.pendingInc, p)
		}
	}
}

// validateInclusionProposal accepts proposals that decode to candidate
// replicas that are neither current members nor excluded culprits.
func (c *Change) validateInclusionProposal(_ types.ReplicaID, payload []byte) bool {
	ids, err := DecodeReplicas(payload)
	if err != nil {
		return false
	}
	current := types.NewReplicaSet(c.cfg.Committee...)
	for _, id := range ids {
		if current.Contains(id) {
			return false
		}
	}
	return true
}

// onInclusionDecided applies the deterministic choose function and
// completes the change (Alg. 1 lines 43-49).
func (c *Change) onInclusionDecided(d *sbc.Decision) {
	if c.done {
		return
	}
	want := c.cfg.TargetSize - c.cUpdated.Size()
	if want > 0 && len(d.Proposals) == 0 && c.cfg.Pool.Len() > 0 {
		// Empty decision while inclusions are needed: retry.
		c.incAttempt++
		c.startInclusion()
		return
	}
	c.done = true

	proposalSets := make([][]types.ReplicaID, 0, len(d.Proposals))
	for _, p := range d.OrderedProposals() {
		ids, err := DecodeReplicas(p.Payload)
		if err != nil {
			continue
		}
		proposalSets = append(proposalSets, ids)
	}
	included := Choose(len(c.excluded), proposalSets)

	res := &Result{
		Epoch:             c.cfg.Epoch,
		Excluded:          c.excluded,
		Included:          included,
		PoFs:              c.decidedPoFs,
		ExclusionDecision: c.exclusionDec,
		InclusionDecision: d,
		StartedAt:         c.started,
		ExcludedAt:        c.excludedAt,
		IncludedAt:        c.cfg.Env.Now(),
	}
	if c.cfg.OnResult != nil {
		c.cfg.OnResult(res)
	}
}

// OnMessage routes exclusion/inclusion consensus traffic and PoF
// broadcasts into the change. Inclusion traffic arriving while our
// exclusion consensus is still running is buffered and replayed once the
// inclusion consensus starts (peers can be a phase ahead of us). It
// reports whether the message was consumed.
func (c *Change) OnMessage(from types.ReplicaID, msg simnet.Message) bool {
	if m, ok := msg.(*PoFBroadcast); ok {
		if m.Epoch != c.cfg.Epoch {
			return false
		}
		c.OnPoFs(m.PoFs)
		return true
	}
	ctx, inst, ok := sbc.ContextInstanceOf(msg)
	if !ok {
		return false
	}
	epoch, attempt := SplitChangeInstance(inst)
	if epoch != c.cfg.Epoch {
		return false
	}
	switch ctx {
	case accountability.CtxExclusion:
		switch {
		case attempt == c.exAttempt:
			return c.exclusion.OnMessage(from, msg)
		case attempt > c.exAttempt:
			// A peer already retried; buffer until we do too.
			c.pendingEx = append(c.pendingEx, pendingMsg{from: from, msg: msg})
			return true
		default:
			return true // stale attempt, consume
		}
	case accountability.CtxInclusion:
		switch {
		case c.inclusion == nil || attempt > c.incAttempt:
			c.pendingInc = append(c.pendingInc, pendingMsg{from: from, msg: msg})
			return true
		case attempt == c.incAttempt:
			return c.inclusion.OnMessage(from, msg)
		default:
			return true // stale attempt, consume
		}
	default:
		return false
	}
}

// OnTimer routes binary-consensus timers into the change's SBC instances.
func (c *Change) OnTimer(tp bincon.TimerPayload) bool {
	if c.exclusion != nil && c.exclusion.OnTimer(tp) {
		return true
	}
	if c.inclusion != nil && c.inclusion.OnTimer(tp) {
		return true
	}
	return false
}

// Choose implements the paper's deterministic choose function: pick count
// replicas from the decided proposals, round-robin across proposals so
// the selection is spread as evenly as possible (Alg. 1 line 44 and the
// fairness guarantee of §4.1 ).
func Choose(count int, proposals [][]types.ReplicaID) []types.ReplicaID {
	chosen := make([]types.ReplicaID, 0, count)
	seen := types.NewReplicaSet()
	idx := make([]int, len(proposals))
	for len(chosen) < count {
		progress := false
		for p := range proposals {
			if len(chosen) >= count {
				break
			}
			for idx[p] < len(proposals[p]) {
				cand := proposals[p][idx[p]]
				idx[p]++
				if seen.Add(cand) {
					chosen = append(chosen, cand)
					progress = true
					break
				}
			}
		}
		if !progress {
			break // pools exhausted
		}
	}
	types.SortReplicas(chosen)
	return chosen
}

// --- Encoding helpers (length-prefixed binary, internal/wire) ---

// EncodePoFs serializes a PoF set for an exclusion proposal.
func EncodePoFs(pofs []accountability.PoF) ([]byte, error) {
	payload, err := wire.EncodePoFs(pofs)
	if err != nil {
		return nil, fmt.Errorf("membership: encode pofs: %w", err)
	}
	return payload, nil
}

// DecodePoFs parses an exclusion proposal.
func DecodePoFs(payload []byte) ([]accountability.PoF, error) {
	pofs, err := wire.DecodePoFs(payload)
	if err != nil {
		return nil, fmt.Errorf("membership: decode pofs: %w", err)
	}
	return pofs, nil
}

// EncodeReplicas serializes a candidate list for an inclusion proposal.
func EncodeReplicas(ids []types.ReplicaID) ([]byte, error) {
	payload, err := wire.EncodeReplicas(ids)
	if err != nil {
		return nil, fmt.Errorf("membership: encode replicas: %w", err)
	}
	return payload, nil
}

// DecodeReplicas parses an inclusion proposal.
func DecodeReplicas(payload []byte) ([]types.ReplicaID, error) {
	ids, err := wire.DecodeReplicas(payload)
	if err != nil {
		return nil, fmt.Errorf("membership: decode replicas: %w", err)
	}
	return ids, nil
}
