package membership

import (
	"testing"
	"time"

	"github.com/zeroloss/zlb/internal/accountability"
	"github.com/zeroloss/zlb/internal/bincon"
	"github.com/zeroloss/zlb/internal/committee"
	"github.com/zeroloss/zlb/internal/crypto"
	"github.com/zeroloss/zlb/internal/latency"
	"github.com/zeroloss/zlb/internal/simnet"
	"github.com/zeroloss/zlb/internal/types"
)

func TestChoose(t *testing.T) {
	proposals := [][]types.ReplicaID{
		{10, 11, 12},
		{10, 13, 14},
		{15},
	}
	got := Choose(4, proposals)
	if len(got) != 4 {
		t.Fatalf("chose %d, want 4", len(got))
	}
	// Round-robin spread: first pick of each proposal wins first (10, 13,
	// 15), then the next unused (11).
	want := map[types.ReplicaID]bool{10: true, 13: true, 15: true, 11: true}
	for _, id := range got {
		if !want[id] {
			t.Fatalf("unexpected choice %v in %v", id, got)
		}
	}
	// Deterministic.
	again := Choose(4, proposals)
	for i := range got {
		if got[i] != again[i] {
			t.Fatal("choose not deterministic")
		}
	}
	// Exhaustion: asking for more than available returns all distinct.
	all := Choose(10, proposals)
	if len(all) != 6 {
		t.Fatalf("exhausted choose returned %d, want 6", len(all))
	}
	// No duplicates ever.
	seen := map[types.ReplicaID]bool{}
	for _, id := range all {
		if seen[id] {
			t.Fatalf("duplicate %v", id)
		}
		seen[id] = true
	}
}

func TestEncodingRoundTrips(t *testing.T) {
	signers, _, err := crypto.GenerateCluster(crypto.SchemeEd25519, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	stmt := accountability.Statement{
		Context: accountability.CtxMain, Kind: accountability.KindAux,
		Instance: 1, Slot: 1, Value: accountability.BoolDigest(true),
	}
	stmt2 := stmt
	stmt2.Value = accountability.BoolDigest(false)
	a, _ := accountability.SignStatement(signers[0], stmt)
	b, _ := accountability.SignStatement(signers[0], stmt2)
	pof, err := accountability.NewPoF(a, b)
	if err != nil {
		t.Fatal(err)
	}
	payload, err := EncodePoFs([]accountability.PoF{pof})
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodePoFs(payload)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 1 || back[0].Culprit != pof.Culprit {
		t.Fatal("PoF round trip failed")
	}
	if !back[0].Verify(signers[1]) {
		t.Fatal("decoded PoF does not verify")
	}

	ids := []types.ReplicaID{5, 6, 7}
	rp, err := EncodeReplicas(ids)
	if err != nil {
		t.Fatal(err)
	}
	gotIDs, err := DecodeReplicas(rp)
	if err != nil {
		t.Fatal(err)
	}
	if len(gotIDs) != 3 || gotIDs[0] != 5 {
		t.Fatalf("replica round trip = %v", gotIDs)
	}
	if _, err := DecodePoFs([]byte("garbage")); err == nil {
		t.Fatal("garbage PoF payload accepted")
	}
}

func TestChangeInstancePacking(t *testing.T) {
	for _, c := range []struct {
		epoch   uint64
		attempt uint32
	}{{1, 0}, {1, 3}, {7, 63}, {1000, 1}} {
		wi := ChangeInstance(c.epoch, c.attempt)
		e, a := SplitChangeInstance(wi)
		if e != c.epoch || a != c.attempt {
			t.Fatalf("pack(%d,%d) → (%d,%d)", c.epoch, c.attempt, e, a)
		}
	}
}

// changeNode hosts one membership change per replica. The change is
// created lazily on a "start" kick so its initial broadcasts happen after
// every node is registered (in ASMR, changes always start during event
// processing).
type changeNode struct {
	build  func() *Change
	change *Change
}

func (n *changeNode) OnMessage(from types.ReplicaID, msg simnet.Message) {
	if msg == simnet.Message("start") {
		if n.change == nil {
			n.change = n.build()
		}
		return
	}
	if n.change == nil {
		n.change = n.build()
	}
	n.change.OnMessage(from, msg)
}

func (n *changeNode) OnTimer(payload any) {
	if p, ok := payload.(bincon.TimerPayload); ok && n.change != nil {
		n.change.OnTimer(p)
	}
}

// TestMembershipChangeEndToEnd runs the full Alg. 1 flow in isolation: 9
// replicas, 3 of which are proven deceitful; the honest 6 run the change
// and agree on exclusions and inclusions.
func TestMembershipChangeEndToEnd(t *testing.T) {
	n := 9
	signers, _, err := crypto.GenerateCluster(crypto.SchemeSim, n+4, 11)
	if err != nil {
		t.Fatal(err)
	}
	members := make([]types.ReplicaID, n)
	for i := range members {
		members[i] = types.ReplicaID(i + 1)
	}
	poolIDs := []types.ReplicaID{10, 11, 12, 13}
	culprits := []types.ReplicaID{1, 2, 3}

	// Forge genuine equivocation evidence for the culprits.
	var pofs []accountability.PoF
	for _, id := range culprits {
		signer := signers[int(id)-1]
		stmt := accountability.Statement{
			Context: accountability.CtxMain, Kind: accountability.KindAux,
			Instance: 1, Slot: 2, Value: accountability.BoolDigest(true),
		}
		stmt2 := stmt
		stmt2.Value = accountability.BoolDigest(false)
		a, _ := accountability.SignStatement(signer, stmt)
		b, _ := accountability.SignStatement(signer, stmt2)
		pof, err := accountability.NewPoF(a, b)
		if err != nil {
			t.Fatal(err)
		}
		pofs = append(pofs, pof)
	}

	net := simnet.New(simnet.Config{Latency: latency.Uniform(time.Millisecond, 10*time.Millisecond), Seed: 11})
	results := map[types.ReplicaID]*Result{}
	honest := members[3:]
	for _, id := range honest {
		id := id
		signer := signers[int(id)-1]
		net.AddNode(id, func(env simnet.Env) simnet.Handler {
			return &changeNode{build: func() *Change {
				log := accountability.NewLog(signer, nil)
				for _, p := range pofs {
					log.AddPoF(p)
				}
				return NewChange(Config{
					Epoch:      1,
					Self:       id,
					Signer:     signer,
					Log:        log,
					Env:        env,
					Committee:  members,
					Pool:       committee.NewPool(poolIDs),
					TargetSize: n,
					CoordTimeout: func(r types.Round) time.Duration {
						return 40 * time.Millisecond * time.Duration(r+1)
					},
					OnResult: func(res *Result) { results[id] = res },
				})
			}}
		})
	}
	for _, id := range honest {
		net.Inject(0, id, "start", 0)
	}
	net.RunUntilQuiet(5 * time.Minute)

	if len(results) != len(honest) {
		t.Fatalf("%d of %d honest completed the change", len(results), len(honest))
	}
	var ref *Result
	for id, res := range results {
		if ref == nil {
			ref = res
		}
		if len(res.Excluded) != len(ref.Excluded) || len(res.Included) != len(ref.Included) {
			t.Fatalf("replica %v disagrees on the change outcome", id)
		}
		for i := range res.Excluded {
			if res.Excluded[i] != ref.Excluded[i] {
				t.Fatalf("replica %v excluded %v, ref %v", id, res.Excluded, ref.Excluded)
			}
		}
		for _, ex := range res.Excluded {
			found := false
			for _, c := range culprits {
				if ex == c {
					found = true
				}
			}
			if !found {
				t.Fatalf("non-culprit %v excluded", ex)
			}
		}
		if len(res.Included) != len(res.Excluded) {
			t.Fatalf("included %d ≠ excluded %d", len(res.Included), len(res.Excluded))
		}
		if res.IncludedAt < res.ExcludedAt || res.ExcludedAt < res.StartedAt {
			t.Fatal("phase timestamps out of order")
		}
	}
}

func TestValidateExclusionProposalRejectsGarbage(t *testing.T) {
	signers, _, err := crypto.GenerateCluster(crypto.SchemeSim, 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	net := simnet.New(simnet.Config{Latency: latency.Fixed(time.Millisecond), Seed: 3})
	var change *Change
	net.AddNode(2, func(env simnet.Env) simnet.Handler {
		log := accountability.NewLog(signers[1], nil)
		// One real PoF so the change constructor has something to propose.
		stmt := accountability.Statement{
			Context: accountability.CtxMain, Kind: accountability.KindAux,
			Instance: 1, Slot: 1, Value: accountability.BoolDigest(true),
		}
		stmt2 := stmt
		stmt2.Value = accountability.BoolDigest(false)
		a, _ := accountability.SignStatement(signers[0], stmt)
		b, _ := accountability.SignStatement(signers[0], stmt2)
		pof, _ := accountability.NewPoF(a, b)
		log.AddPoF(pof)
		change = NewChange(Config{
			Epoch: 1, Self: 2, Signer: signers[1], Log: log, Env: env,
			Committee:  []types.ReplicaID{1, 2, 3, 4},
			Pool:       committee.NewPool(nil),
			TargetSize: 4,
		})
		return &changeNode{change: change}
	})
	if change.validateExclusionProposal(3, []byte("garbage")) {
		t.Fatal("garbage proposal validated")
	}
	empty, _ := EncodePoFs(nil)
	if change.validateExclusionProposal(3, empty) {
		t.Fatal("empty PoF set validated")
	}
}
