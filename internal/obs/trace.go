// Package obs is the observability layer: deterministic structured
// tracing of the consensus transaction lifecycle, a dependency-free
// Prometheus-text metrics registry for the real deployment
// (cmd/zlb-node -metrics-addr), and leveled logging.
//
// Tracing is designed around the repository's bit-identical-determinism
// discipline. Every recorded Event carries the recording replica's
// *virtual* timestamp (simnet.Env.Now(), which is per-node and identical
// across the sequential and parallel simulation modes) and is appended to
// a per-node buffer. The simulator serializes all activity of one node —
// on the caller's goroutine sequentially, or on one worker per node
// inside a conservative parallel window — so per-node buffers need no
// locks and their append order is bit-identical across modes. Tracer
// stitches the buffers into a single stream with a deterministic merge
// (timestamp, then node, then per-node order), so the merged JSONL and
// its digest are bit-identical across sequential and parallel runs; the
// determinism suite pins this with a golden digest.
//
// Recording is zero-cost when disabled: every NodeTracer method is safe
// on a nil receiver and returns immediately, so instrumented protocol
// code passes a nil tracer through untouched hot paths (no allocation,
// one predictable branch).
package obs

import (
	"bufio"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"github.com/zeroloss/zlb/internal/types"
)

// Lifecycle phase names. The happy path of one transaction batch is
// mempool_admit → batch_propose → rbc_init → rbc_deliver → bincon_round*
// → bincon_decide* → sbc_decide → commit; the accountability arc is
// disagreement → pof → exclusion → merge (→ inclusion).
const (
	PhaseMempoolAdmit  = "mempool_admit"
	PhaseMempoolReject = "mempool_reject"
	PhaseBatchPropose  = "batch_propose"
	PhaseRBCInit       = "rbc_init"
	PhaseRBCDeliver    = "rbc_deliver"
	PhaseBinRound      = "bincon_round"
	PhaseBinDecide     = "bincon_decide"
	PhaseSBCDecide     = "sbc_decide"
	PhaseCommit        = "commit"
	PhaseDisagreement  = "disagreement"
	PhaseMerge         = "merge"
	PhasePoF           = "pof"
	PhaseExclusion     = "exclusion"
	PhaseInclusion     = "inclusion"
)

// Event is one span event of the transaction lifecycle. At is the
// recording replica's virtual clock (nanoseconds in JSON). K is the
// consensus instance, Slot the broadcaster slot within it, Round the
// binary-consensus round; ID is a free-form correlator (decided bit,
// culprit, reject reason, ...). Zero-valued fields are omitted from the
// JSON encoding.
type Event struct {
	At    time.Duration   `json:"at_ns"`
	Node  types.ReplicaID `json:"node"`
	Phase string          `json:"phase"`
	K     uint64          `json:"k,omitempty"`
	Slot  uint32          `json:"slot,omitempty"`
	Round uint32          `json:"round,omitempty"`
	ID    string          `json:"id,omitempty"`
}

// NodeTracer is one replica's event buffer. All methods are nil-safe:
// a nil *NodeTracer records nothing and costs one branch, which is the
// disabled path every protocol package ships with.
//
// A NodeTracer must only be used from the owning replica's event
// handlers (the simulator serializes those, even in parallel windows) or
// from a single-threaded driver.
type NodeTracer struct {
	node types.ReplicaID
	evs  []Event
}

// Record appends one event with every correlation field.
func (t *NodeTracer) Record(at time.Duration, phase string, k uint64, slot, round uint32, id string) {
	if t == nil {
		return
	}
	t.evs = append(t.evs, Event{At: at, Node: t.node, Phase: phase, K: k, Slot: slot, Round: round, ID: id})
}

// RecordK appends an instance-scoped event (no slot/round/ID).
func (t *NodeTracer) RecordK(at time.Duration, phase string, k uint64) {
	if t == nil {
		return
	}
	t.evs = append(t.evs, Event{At: at, Node: t.node, Phase: phase, K: k})
}

// RecordID appends an event correlated only by a free-form ID.
func (t *NodeTracer) RecordID(at time.Duration, phase, id string) {
	if t == nil {
		return
	}
	t.evs = append(t.evs, Event{At: at, Node: t.node, Phase: phase, ID: id})
}

// Len reports the number of buffered events (0 on nil).
func (t *NodeTracer) Len() int {
	if t == nil {
		return 0
	}
	return len(t.evs)
}

// Tracer owns the per-node buffers of one traced run. The zero value is
// not usable; NewTracer allocates one. A nil *Tracer is the disabled
// state: Node returns a nil NodeTracer and Events returns nothing.
type Tracer struct {
	mu    sync.Mutex
	nodes map[types.ReplicaID]*NodeTracer
}

// NewTracer creates an enabled tracer.
func NewTracer() *Tracer {
	return &Tracer{nodes: make(map[types.ReplicaID]*NodeTracer)}
}

// Node hands out (creating on first use) the buffer for one replica.
// Safe on a nil Tracer, in which case it returns a nil NodeTracer —
// the zero-cost disabled path.
func (tr *Tracer) Node(id types.ReplicaID) *NodeTracer {
	if tr == nil {
		return nil
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	t, ok := tr.nodes[id]
	if !ok {
		t = &NodeTracer{node: id}
		tr.nodes[id] = t
	}
	return t
}

// Len reports the total number of buffered events across all node
// buffers (0 on nil).
func (tr *Tracer) Len() int {
	if tr == nil {
		return 0
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	n := 0
	for _, t := range tr.nodes {
		n += len(t.evs)
	}
	return n
}

// Events merges every node buffer into one deterministic stream ordered
// by (At, Node, per-node append order). Because per-node append order is
// bit-identical across the sequential and parallel simulation modes, the
// merged stream is too.
func (tr *Tracer) Events() []Event {
	if tr == nil {
		return nil
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	ids := make([]types.ReplicaID, 0, len(tr.nodes))
	for id := range tr.nodes {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	total := 0
	for _, id := range ids {
		total += len(tr.nodes[id].evs)
	}
	out := make([]Event, 0, total)
	for _, id := range ids {
		out = append(out, tr.nodes[id].evs...)
	}
	// Stable sort: events with equal (At, Node) keep per-node append
	// order, which the loop above laid down node by node.
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].At != out[j].At {
			return out[i].At < out[j].At
		}
		return out[i].Node < out[j].Node
	})
	return out
}

// WriteJSONL writes the merged stream as one JSON object per line.
func (tr *Tracer) WriteJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, ev := range tr.Events() {
		if err := enc.Encode(ev); err != nil {
			return fmt.Errorf("obs: encoding trace event: %w", err)
		}
	}
	return bw.Flush()
}

// Digest returns the hex SHA-256 of the merged JSONL stream — the value
// the determinism suite pins across simulation modes.
func (tr *Tracer) Digest() string {
	h := sha256.New()
	if err := tr.WriteJSONL(h); err != nil {
		// sha256 never errors; WriteJSONL only fails on encoder errors,
		// which a plain struct cannot produce.
		panic(err)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// RunHeader labels the trace events that follow it in a JSONL sink with
// the experiment point that produced them. zlb-bench writes one header
// per point; tools/tracelat groups events by the most recent header.
type RunHeader struct {
	Experiment string `json:"experiment"`
	System     string `json:"system,omitempty"`
	N          int    `json:"n"`
	Seed       int64  `json:"seed"`
}

// headerLine is the wire form of a RunHeader line: {"run":{...}}. The
// wrapper key distinguishes header lines from event lines.
type headerLine struct {
	Run *RunHeader `json:"run"`
}

// WriteRunHeader writes one header line to a JSONL sink.
func WriteRunHeader(w io.Writer, h RunHeader) error {
	raw, err := json.Marshal(headerLine{Run: &h})
	if err != nil {
		return fmt.Errorf("obs: encoding run header: %w", err)
	}
	raw = append(raw, '\n')
	_, err = w.Write(raw)
	return err
}

// ParseJSONLLine decodes one line of a trace sink: either a RunHeader
// (header != nil) or an Event. Used by tools/tracelat.
func ParseJSONLLine(line []byte) (header *RunHeader, ev Event, err error) {
	var h headerLine
	if err := json.Unmarshal(line, &h); err == nil && h.Run != nil {
		return h.Run, Event{}, nil
	}
	if err := json.Unmarshal(line, &ev); err != nil {
		return nil, Event{}, fmt.Errorf("obs: bad trace line %q: %w", line, err)
	}
	return nil, ev, nil
}
