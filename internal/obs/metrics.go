package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Metrics is a small dependency-free metrics registry rendering the
// Prometheus text exposition format. Registration happens at setup time
// (mutex-guarded); updates are lock-free atomics, safe from the node's
// event loop while an HTTP scrape renders concurrently.
type Metrics struct {
	mu     sync.Mutex
	series []*series
}

// series is one registered sample: a family name plus one label set.
type series struct {
	name   string
	help   string
	typ    string // "counter", "gauge", "histogram"
	labels string // rendered `{k="v",...}` or ""

	counter *Counter
	gauge   *Gauge
	fn      func() float64
	hist    *Histogram
}

// NewMetrics creates an empty registry.
func NewMetrics() *Metrics { return &Metrics{} }

// Counter is a monotonically increasing counter. Methods are nil-safe.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value reads the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a settable instantaneous value. Methods are nil-safe.
type Gauge struct{ v atomic.Int64 }

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Value reads the current value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram is a fixed-bucket histogram (cumulative buckets in the
// exposition, per Prometheus convention). Observations are lock-free.
type Histogram struct {
	bounds []float64
	counts []atomic.Uint64 // one per bound; +Inf is count-sum of the rest
	count  atomic.Uint64
	sum    atomic.Uint64 // float64 bits, CAS-accumulated
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	for i, b := range h.bounds {
		if v <= b {
			h.counts[i].Add(1)
			break
		}
	}
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// renderLabels turns k,v pairs into a deterministic `{k="v",...}` block.
func renderLabels(kv []string) string {
	if len(kv) == 0 {
		return ""
	}
	if len(kv)%2 != 0 {
		panic("obs: labels must be key,value pairs")
	}
	parts := make([]string, 0, len(kv)/2)
	for i := 0; i < len(kv); i += 2 {
		parts = append(parts, fmt.Sprintf("%s=%q", kv[i], kv[i+1]))
	}
	sort.Strings(parts)
	return "{" + strings.Join(parts, ",") + "}"
}

func (m *Metrics) add(s *series) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.series = append(m.series, s)
}

// Counter registers and returns a counter. kv are label key,value pairs.
func (m *Metrics) Counter(name, help string, kv ...string) *Counter {
	c := &Counter{}
	m.add(&series{name: name, help: help, typ: "counter", labels: renderLabels(kv), counter: c})
	return c
}

// Gauge registers and returns a gauge.
func (m *Metrics) Gauge(name, help string, kv ...string) *Gauge {
	g := &Gauge{}
	m.add(&series{name: name, help: help, typ: "gauge", labels: renderLabels(kv), gauge: g})
	return g
}

// GaugeFunc registers a gauge sampled by calling fn at scrape time. fn
// must be safe to call from the scraping goroutine.
func (m *Metrics) GaugeFunc(name, help string, fn func() float64, kv ...string) {
	m.add(&series{name: name, help: help, typ: "gauge", labels: renderLabels(kv), fn: fn})
}

// CounterFunc registers a counter sampled by calling fn at scrape time —
// for monotone counts another component already maintains (e.g. mempool
// admission statistics). fn must be safe to call from the scraping
// goroutine.
func (m *Metrics) CounterFunc(name, help string, fn func() float64, kv ...string) {
	m.add(&series{name: name, help: help, typ: "counter", labels: renderLabels(kv), fn: fn})
}

// Histogram registers a histogram with the given upper bucket bounds
// (ascending; +Inf is implicit).
func (m *Metrics) Histogram(name, help string, bounds []float64) *Histogram {
	h := &Histogram{bounds: append([]float64(nil), bounds...)}
	h.counts = make([]atomic.Uint64, len(h.bounds))
	m.add(&series{name: name, help: help, typ: "histogram", hist: h})
	return h
}

// formatFloat renders a sample value the way Prometheus clients do:
// integers without a decimal point, everything else in shortest form.
func formatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

// WritePrometheus renders every registered series in the text exposition
// format, sorted by family name then label set for a deterministic body.
func (m *Metrics) WritePrometheus(w io.Writer) error {
	m.mu.Lock()
	ordered := make([]*series, len(m.series))
	copy(ordered, m.series)
	m.mu.Unlock()
	sort.SliceStable(ordered, func(i, j int) bool {
		if ordered[i].name != ordered[j].name {
			return ordered[i].name < ordered[j].name
		}
		return ordered[i].labels < ordered[j].labels
	})
	var b strings.Builder
	lastFamily := ""
	for _, s := range ordered {
		if s.name != lastFamily {
			fmt.Fprintf(&b, "# HELP %s %s\n", s.name, s.help)
			fmt.Fprintf(&b, "# TYPE %s %s\n", s.name, s.typ)
			lastFamily = s.name
		}
		switch {
		case s.counter != nil:
			fmt.Fprintf(&b, "%s%s %d\n", s.name, s.labels, s.counter.Value())
		case s.gauge != nil:
			fmt.Fprintf(&b, "%s%s %d\n", s.name, s.labels, s.gauge.Value())
		case s.fn != nil:
			fmt.Fprintf(&b, "%s%s %s\n", s.name, s.labels, formatFloat(s.fn()))
		case s.hist != nil:
			h := s.hist
			cum := uint64(0)
			for i, bound := range h.bounds {
				cum += h.counts[i].Load()
				fmt.Fprintf(&b, "%s_bucket{le=%q} %d\n", s.name, formatFloat(bound), cum)
			}
			fmt.Fprintf(&b, "%s_bucket{le=\"+Inf\"} %d\n", s.name, h.count.Load())
			fmt.Fprintf(&b, "%s_sum %s\n", s.name, formatFloat(math.Float64frombits(h.sum.Load())))
			fmt.Fprintf(&b, "%s_count %d\n", s.name, h.count.Load())
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}
