package obs

import (
	"strings"
	"testing"
	"time"
)

// TestTracerDeterministicMerge checks the merge order contract: events
// are ordered by (At, Node, per-node append order) no matter which node
// buffers filled first or in what interleaving.
func TestTracerDeterministicMerge(t *testing.T) {
	build := func(nodeFirst bool) string {
		tr := NewTracer()
		a, b := tr.Node(1), tr.Node(2)
		if nodeFirst {
			a, b = tr.Node(1), tr.Node(2)
		}
		// Same timestamps on both nodes, plus per-node ties.
		b.RecordK(10*time.Millisecond, PhaseRBCDeliver, 1)
		a.RecordK(10*time.Millisecond, PhaseRBCDeliver, 1)
		a.RecordK(10*time.Millisecond, PhaseBinDecide, 1)
		b.RecordK(5*time.Millisecond, PhaseRBCInit, 1)
		return tr.Digest()
	}
	if build(true) != build(false) {
		t.Fatal("merge digest depends on buffer creation order")
	}
	tr := NewTracer()
	tr.Node(2).RecordK(10*time.Millisecond, PhaseCommit, 3)
	tr.Node(1).RecordK(10*time.Millisecond, PhaseCommit, 3)
	evs := tr.Events()
	if len(evs) != 2 || evs[0].Node != 1 || evs[1].Node != 2 {
		t.Fatalf("equal-timestamp events not ordered by node: %+v", evs)
	}
}

// TestNilTracerZeroCost pins the disabled path: nil receivers record
// nothing and allocate nothing.
func TestNilTracerZeroCost(t *testing.T) {
	var tr *Tracer
	nt := tr.Node(7)
	if nt != nil {
		t.Fatal("nil Tracer handed out a live NodeTracer")
	}
	allocs := testing.AllocsPerRun(100, func() {
		nt.Record(time.Second, PhaseCommit, 1, 2, 3, "x")
		nt.RecordK(time.Second, PhaseCommit, 1)
		nt.RecordID(time.Second, PhasePoF, "r3")
	})
	if allocs != 0 {
		t.Fatalf("nil NodeTracer allocated %.1f per run, want 0", allocs)
	}
	if tr.Events() != nil || nt.Len() != 0 {
		t.Fatal("nil tracer reported events")
	}
}

// TestTraceJSONLRoundTrip checks the sink line formats tracelat parses.
func TestTraceJSONLRoundTrip(t *testing.T) {
	var sb strings.Builder
	if err := WriteRunHeader(&sb, RunHeader{Experiment: "fig3", System: "ZLB", N: 9, Seed: 42}); err != nil {
		t.Fatal(err)
	}
	tr := NewTracer()
	tr.Node(1).Record(3*time.Millisecond, PhaseRBCInit, 2, 1, 0, "")
	if err := tr.WriteJSONL(&sb); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2", len(lines))
	}
	h, _, err := ParseJSONLLine([]byte(lines[0]))
	if err != nil || h == nil || h.N != 9 || h.System != "ZLB" {
		t.Fatalf("header line parse: h=%+v err=%v", h, err)
	}
	h2, ev, err := ParseJSONLLine([]byte(lines[1]))
	if err != nil || h2 != nil {
		t.Fatalf("event line parse: h=%+v err=%v", h2, err)
	}
	if ev.Phase != PhaseRBCInit || ev.K != 2 || ev.Slot != 1 || ev.At != 3*time.Millisecond {
		t.Fatalf("event round trip: %+v", ev)
	}
}

// TestMetricsExposition checks the Prometheus text rendering: family
// grouping, label determinism, histogram cumulative buckets.
func TestMetricsExposition(t *testing.T) {
	m := NewMetrics()
	c := m.Counter("zlb_blocks_committed_total", "Blocks committed.")
	c.Add(3)
	rej := m.Counter("zlb_mempool_rejected_total", "Rejected transactions.", "reason", "full")
	rej.Inc()
	m.Counter("zlb_mempool_rejected_total", "Rejected transactions.", "reason", "duplicate").Add(2)
	g := m.Gauge("zlb_chain_height", "Chain height.")
	g.Set(17)
	m.GaugeFunc("zlb_mempool_pending", "Pool entries.", func() float64 { return 5 })
	h := m.Histogram("zlb_commit_seconds", "Commit gap.", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(3)

	var sb strings.Builder
	if err := m.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE zlb_blocks_committed_total counter",
		"zlb_blocks_committed_total 3",
		`zlb_mempool_rejected_total{reason="duplicate"} 2`,
		`zlb_mempool_rejected_total{reason="full"} 1`,
		"zlb_chain_height 17",
		"zlb_mempool_pending 5",
		`zlb_commit_seconds_bucket{le="0.1"} 1`,
		`zlb_commit_seconds_bucket{le="1"} 2`,
		`zlb_commit_seconds_bucket{le="+Inf"} 3`,
		"zlb_commit_seconds_sum 3.55",
		"zlb_commit_seconds_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	if strings.Count(out, "# HELP zlb_mempool_rejected_total") != 1 {
		t.Errorf("HELP emitted per series instead of per family:\n%s", out)
	}
}

// TestLoggerLevels checks threshold filtering and nil-safety.
func TestLoggerLevels(t *testing.T) {
	var got []string
	sink := func(format string, args ...any) { got = append(got, format) }
	l := NewLogger(sink, LevelInfo)
	l.Debugf("dropped")
	l.Infof("kept-info")
	l.Warnf("kept-warn")
	l.Errorf("kept-error")
	if len(got) != 3 || got[0] != "kept-info" {
		t.Fatalf("level filtering wrong: %v", got)
	}
	var nilLogger *Logger
	nilLogger.Errorf("no panic")
	if lv, err := ParseLevel("WARN"); err != nil || lv != LevelWarn {
		t.Fatalf("ParseLevel: %v %v", lv, err)
	}
	if _, err := ParseLevel("loud"); err == nil {
		t.Fatal("ParseLevel accepted garbage")
	}
}
