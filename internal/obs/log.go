package obs

import (
	"fmt"
	"strings"
)

// Level is a log severity threshold.
type Level int32

// Levels in increasing severity.
const (
	LevelDebug Level = iota
	LevelInfo
	LevelWarn
	LevelError
)

// ParseLevel resolves a -log-level flag value.
func ParseLevel(s string) (Level, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "debug":
		return LevelDebug, nil
	case "info", "":
		return LevelInfo, nil
	case "warn", "warning":
		return LevelWarn, nil
	case "error":
		return LevelError, nil
	}
	return LevelInfo, fmt.Errorf("obs: unknown log level %q (debug, info, warn, error)", s)
}

// String implements fmt.Stringer.
func (l Level) String() string {
	switch l {
	case LevelDebug:
		return "debug"
	case LevelInfo:
		return "info"
	case LevelWarn:
		return "warn"
	case LevelError:
		return "error"
	}
	return fmt.Sprintf("level(%d)", int32(l))
}

// Logger is a leveled front-end over an arbitrary Printf-style sink
// (log.Printf, testing.T.Logf, ...). Messages at the configured minimum
// level and above pass to the sink with their format unchanged, so a
// Logger at LevelInfo is byte-compatible with calling the sink directly
// — the property cmd/zlb-node relies on to keep its pinned default
// output stable. Messages below the threshold are dropped before any
// formatting work. All methods are nil-safe (a nil Logger drops
// everything).
type Logger struct {
	sink func(format string, args ...any)
	min  Level
}

// NewLogger wraps sink with a minimum level. A nil sink drops everything.
func NewLogger(sink func(format string, args ...any), min Level) *Logger {
	return &Logger{sink: sink, min: min}
}

// Enabled reports whether a message at the given level would be emitted.
func (l *Logger) Enabled(lv Level) bool {
	return l != nil && l.sink != nil && lv >= l.min
}

func (l *Logger) logf(lv Level, format string, args ...any) {
	if !l.Enabled(lv) {
		return
	}
	l.sink(format, args...)
}

// Debugf logs at LevelDebug.
func (l *Logger) Debugf(format string, args ...any) { l.logf(LevelDebug, format, args...) }

// Infof logs at LevelInfo.
func (l *Logger) Infof(format string, args ...any) { l.logf(LevelInfo, format, args...) }

// Warnf logs at LevelWarn.
func (l *Logger) Warnf(format string, args ...any) { l.logf(LevelWarn, format, args...) }

// Errorf logs at LevelError.
func (l *Logger) Errorf(format string, args ...any) { l.logf(LevelError, format, args...) }
