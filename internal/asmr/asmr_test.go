package asmr

import (
	"testing"
	"time"

	"github.com/zeroloss/zlb/internal/accountability"
	"github.com/zeroloss/zlb/internal/bincon"
	"github.com/zeroloss/zlb/internal/committee"
	"github.com/zeroloss/zlb/internal/crypto"
	"github.com/zeroloss/zlb/internal/latency"
	"github.com/zeroloss/zlb/internal/sbc"
	"github.com/zeroloss/zlb/internal/simnet"
	"github.com/zeroloss/zlb/internal/types"
)

func TestWireInstancePacking(t *testing.T) {
	for _, c := range []struct {
		k       uint64
		attempt uint32
	}{{1, 0}, {1, 1}, {77, 1023}, {1 << 40, 5}} {
		wi := WireInstance(c.k, c.attempt)
		k, a := SplitInstance(wi)
		if k != c.k || a != c.attempt {
			t.Fatalf("pack(%d,%d) → (%d,%d)", c.k, c.attempt, k, a)
		}
	}
}

// decideInstance runs a small SBC committee to produce a real certified
// decision for verification tests.
func decideInstance(t *testing.T, n int) (*sbc.Decision, []*crypto.Signer) {
	t.Helper()
	signers, _, err := crypto.GenerateCluster(crypto.SchemeSim, n, 21)
	if err != nil {
		t.Fatal(err)
	}
	members := make([]types.ReplicaID, n)
	for i := range members {
		members[i] = types.ReplicaID(i + 1)
	}
	net := simnet.New(simnet.Config{Latency: latency.Uniform(time.Millisecond, 8*time.Millisecond), Seed: 21})
	decisions := map[types.ReplicaID]*sbc.Decision{}
	instances := map[types.ReplicaID]*sbc.Instance{}
	for i, id := range members {
		id := id
		signer := signers[i]
		net.AddNode(id, func(env simnet.Env) simnet.Handler {
			log := accountability.NewLog(signer, nil)
			inst := sbc.New(sbc.Config{
				Context:     accountability.CtxMain,
				Instance:    WireInstance(1, 0),
				Self:        id,
				View:        committee.NewView(members),
				Signer:      signer,
				Log:         log,
				Env:         env,
				Accountable: true,
				OnDecide:    func(d *sbc.Decision) { decisions[id] = d },
			})
			instances[id] = inst
			return sbcHandler{inst}
		})
	}
	for _, id := range members {
		instances[id].Propose([]byte("payload-"+id.String()), 0, 0)
	}
	net.RunUntilQuiet(time.Minute)
	d := decisions[members[0]]
	if d == nil {
		t.Fatal("no decision produced")
	}
	return d, signers
}

type sbcHandler struct{ inst *sbc.Instance }

func (h sbcHandler) OnMessage(from types.ReplicaID, msg simnet.Message) {
	h.inst.OnMessage(from, msg)
}

func (h sbcHandler) OnTimer(payload any) {
	if p, ok := payload.(bincon.TimerPayload); ok {
		h.inst.OnTimer(p)
	}
}

func TestVerifyDecisionAcceptsRealDecision(t *testing.T) {
	d, signers := decideInstance(t, 7)
	if err := VerifyDecision(signers[0], d, 7); err != nil {
		t.Fatalf("real decision rejected: %v", err)
	}
}

func TestVerifyDecisionRejectsTampering(t *testing.T) {
	d, signers := decideInstance(t, 7)

	t.Run("missing decision", func(t *testing.T) {
		if err := VerifyDecision(signers[0], nil, 7); err == nil {
			t.Fatal("nil decision accepted")
		}
	})

	t.Run("flipped bit", func(t *testing.T) {
		tampered := *d
		tampered.Bits = map[types.ReplicaID]bool{}
		for id, b := range d.Bits {
			tampered.Bits[id] = b
		}
		for id, b := range tampered.Bits {
			if b {
				tampered.Bits[id] = false // cert says 1, bits say 0
				break
			}
		}
		if err := VerifyDecision(signers[0], &tampered, 7); err == nil {
			t.Fatal("flipped bit accepted")
		}
	})

	t.Run("tampered payload", func(t *testing.T) {
		tampered := *d
		tampered.Proposals = map[types.ReplicaID]sbc.ProposalInfo{}
		for id, p := range d.Proposals {
			tampered.Proposals[id] = p
		}
		for id, p := range tampered.Proposals {
			p.Payload = []byte("evil")
			tampered.Proposals[id] = p
			break
		}
		if err := VerifyDecision(signers[0], &tampered, 7); err == nil {
			t.Fatal("tampered payload accepted")
		}
	})

	t.Run("stripped certificate", func(t *testing.T) {
		tampered := *d
		tampered.BinCerts = map[types.ReplicaID]*accountability.Certificate{}
		if err := VerifyDecision(signers[0], &tampered, 7); err == nil {
			t.Fatal("certificate-less decision accepted")
		}
	})
}

func TestAbsorbDecisionFeedsLog(t *testing.T) {
	d, signers := decideInstance(t, 7)
	log := accountability.NewLog(signers[0], nil)
	before := log.Recorded
	AbsorbDecision(log, d)
	if log.Recorded == before {
		t.Fatal("absorb recorded nothing")
	}
	// Absorbing consistent evidence must not accuse anyone.
	if log.CulpritCount() != 0 {
		t.Fatalf("honest decision produced %d culprits", log.CulpritCount())
	}
}

func TestReplicaAccessors(t *testing.T) {
	signers, _, err := crypto.GenerateCluster(crypto.SchemeSim, 4, 31)
	if err != nil {
		t.Fatal(err)
	}
	net := simnet.New(simnet.Config{Latency: latency.Fixed(time.Millisecond), Seed: 31})
	var r *Replica
	net.AddNode(1, func(env simnet.Env) simnet.Handler {
		r = NewReplica(Config{
			Self:             1,
			Signer:           signers[0],
			Env:              env,
			InitialCommittee: []types.ReplicaID{1, 2, 3, 4},
			Accountable:      true,
			Recover:          true,
		})
		return r
	})
	if !r.IsMember() || r.Epoch() != 0 || r.CommittedCount() != 0 {
		t.Fatal("fresh replica state wrong")
	}
	if _, ok := r.Committed(1); ok {
		t.Fatal("phantom commit")
	}
	if r.Final(1) || r.Disagreed(1) {
		t.Fatal("phantom finality")
	}
	if r.View().Size() != 4 {
		t.Fatal("view size")
	}
	// A pool node is not a member and must refuse to start.
	var pool *Replica
	net.AddNode(9, func(env simnet.Env) simnet.Handler {
		pool = NewReplica(Config{
			Self:             9,
			Signer:           signers[0],
			Env:              env,
			InitialCommittee: []types.ReplicaID{1, 2, 3, 4},
			Accountable:      true,
		})
		return pool
	})
	pool.Start()
	if pool.IsMember() {
		t.Fatal("pool node claims membership")
	}
}

func TestRebindChains(t *testing.T) {
	signers, _, err := crypto.GenerateCluster(crypto.SchemeSim, 4, 33)
	if err != nil {
		t.Fatal(err)
	}
	net := simnet.New(simnet.Config{Latency: latency.Fixed(time.Millisecond), Seed: 33})
	calls := []string{}
	var r *Replica
	net.AddNode(1, func(env simnet.Env) simnet.Handler {
		r = NewReplica(Config{
			Self:             1,
			Signer:           signers[0],
			Env:              env,
			InitialCommittee: []types.ReplicaID{1, 2, 3, 4},
			OnCommit: func(uint64, uint32, *sbc.Decision) {
				calls = append(calls, "original")
			},
		})
		return r
	})
	r.Rebind(AppBindings{
		OnCommit: func(uint64, uint32, *sbc.Decision) {
			calls = append(calls, "rebound")
		},
	})
	// Simulate a decision through the internal path.
	st := r.ensureInstance(1)
	r.onDecide(st, &sbc.Decision{Instance: WireInstance(1, 0), Bits: map[types.ReplicaID]bool{}})
	if len(calls) != 2 || calls[0] != "original" || calls[1] != "rebound" {
		t.Fatalf("rebind chain = %v", calls)
	}
}
