package asmr

import (
	"errors"
	"fmt"

	"github.com/zeroloss/zlb/internal/accountability"
	"github.com/zeroloss/zlb/internal/crypto"
	"github.com/zeroloss/zlb/internal/pipeline"
	"github.com/zeroloss/zlb/internal/sbc"
	"github.com/zeroloss/zlb/internal/types"
)

// Errors returned by decision verification.
var (
	ErrNoDecision   = errors.New("asmr: missing decision")
	ErrMissingCert  = errors.New("asmr: decision slot missing certificate")
	ErrBadCert      = errors.New("asmr: decision certificate invalid")
	ErrBadPayload   = errors.New("asmr: proposal payload does not match digest")
	ErrWrongContext = errors.New("asmr: certificate for a different instance")
)

// VerifyDecision audits a received decided block: every slot decided 1
// must carry a valid binary decision certificate for value 1 and its
// payload must match its digest; the reliable-broadcast delivery
// certificate, when present, must match too. n is the committee size the
// instance ran with. This is the work a replica performs when catching up
// or when auditing a conflicting branch — its cost is what makes the
// paper's Figure 5 (catch-up time grows with n) look the way it does.
func VerifyDecision(v *crypto.Signer, d *sbc.Decision, n int) error {
	return VerifyDecisionWith(nil, v, d, n)
}

// VerifyDecisionWith is VerifyDecision routed through the commit
// pipeline: certificate verdicts are shared with every other component
// that saw the same certificates, signature checks fan out across the
// worker pool, and the per-slot payload digests (the batch digests of a
// superblock) are hashed in parallel with deterministic fan-in by slot
// order. A nil verifier runs everything inline — identical verdicts.
func VerifyDecisionWith(certs *pipeline.Verifier, v *crypto.Signer, d *sbc.Decision, n int) error {
	if d == nil {
		return ErrNoDecision
	}
	// Batch digests first: hash every decided-1 payload on the pool. The
	// slots are checked in sorted order below, so the first error reported
	// does not depend on scheduling.
	slots := make([]types.ReplicaID, 0, len(d.Bits))
	for id := range d.Bits {
		slots = append(slots, id)
	}
	types.SortReplicas(slots)
	hashOK := make(map[types.ReplicaID]bool, len(slots))
	var hashed []types.ReplicaID
	for _, id := range slots {
		if d.Bits[id] {
			if _, ok := d.Proposals[id]; ok {
				hashed = append(hashed, id)
			}
		}
	}
	oks := make([]bool, len(hashed))
	certs.Pool().Map(len(hashed), func(i int) {
		p := d.Proposals[hashed[i]]
		oks[i] = types.Hash(p.Payload) == p.Digest
	})
	for i, id := range hashed {
		hashOK[id] = oks[i]
	}
	readyMin := 2*types.MaxClassicFaults(n) + 1
	for _, id := range slots {
		bit := d.Bits[id]
		cert := d.BinCerts[id]
		if cert == nil {
			return fmt.Errorf("%w: slot %v", ErrMissingCert, id)
		}
		if cert.Stmt.Kind != accountability.KindAux ||
			cert.Stmt.Instance != d.Instance ||
			cert.Stmt.Slot != uint32(id) ||
			accountability.DigestBool(cert.Stmt.Value) != bit {
			return fmt.Errorf("%w: slot %v", ErrWrongContext, id)
		}
		if err := certs.VerifyCertificate(cert, v, n, nil); err != nil {
			return fmt.Errorf("%w: slot %v: %v", ErrBadCert, id, err)
		}
		if !bit {
			continue
		}
		if _, ok := d.Proposals[id]; !ok {
			return fmt.Errorf("%w: slot %v decided 1 without payload", ErrNoDecision, id)
		}
		if !hashOK[id] {
			return fmt.Errorf("%w: slot %v", ErrBadPayload, id)
		}
		p := d.Proposals[id]
		if rc := d.ReadyCerts[id]; rc != nil {
			if rc.Stmt.Kind != accountability.KindReady ||
				rc.Stmt.Instance != d.Instance ||
				rc.Stmt.Slot != uint32(id) ||
				rc.Stmt.Value != p.Digest {
				return fmt.Errorf("%w: ready cert slot %v", ErrWrongContext, id)
			}
			if rc.IsAggregate() {
				// Aggregate ready certificates: one cached check for
				// structure + aggregate signature, then the 2t+1 rule on
				// the explicit signer set.
				if certs.VerifyCertSigs(rc, v) != nil {
					return fmt.Errorf("%w: ready cert slot %v", ErrBadCert, id)
				}
				if rc.SignerCount(nil) < readyMin {
					return fmt.Errorf("%w: ready cert slot %v below 2t+1", ErrBadCert, id)
				}
				continue
			}
			seen := types.NewReplicaSet()
			for _, sig := range rc.Sigs {
				if sig.Stmt != rc.Stmt {
					return fmt.Errorf("%w: ready cert slot %v", ErrBadCert, id)
				}
				seen.Add(sig.Signer)
			}
			if certs.VerifySignedBatch(rc.Sigs, v) >= 0 {
				return fmt.Errorf("%w: ready cert slot %v", ErrBadCert, id)
			}
			if seen.Len() < readyMin {
				return fmt.Errorf("%w: ready cert slot %v below 2t+1", ErrBadCert, id)
			}
		}
	}
	return nil
}

// verifyDecisionLegacy is the original inline implementation, kept as
// the reference the equivalence test pins VerifyDecisionWith against.
func verifyDecisionLegacy(v *crypto.Signer, d *sbc.Decision, n int) error {
	if d == nil {
		return ErrNoDecision
	}
	quorum := types.Quorum(n)
	readyMin := 2*types.MaxClassicFaults(n) + 1
	for id, bit := range d.Bits {
		cert := d.BinCerts[id]
		if cert == nil {
			return fmt.Errorf("%w: slot %v", ErrMissingCert, id)
		}
		if cert.Stmt.Kind != accountability.KindAux ||
			cert.Stmt.Instance != d.Instance ||
			cert.Stmt.Slot != uint32(id) ||
			accountability.DigestBool(cert.Stmt.Value) != bit {
			return fmt.Errorf("%w: slot %v", ErrWrongContext, id)
		}
		if err := cert.Verify(v, n, nil); err != nil {
			return fmt.Errorf("%w: slot %v: %v", ErrBadCert, id, err)
		}
		_ = quorum
		if !bit {
			continue
		}
		p, ok := d.Proposals[id]
		if !ok {
			return fmt.Errorf("%w: slot %v decided 1 without payload", ErrNoDecision, id)
		}
		if types.Hash(p.Payload) != p.Digest {
			return fmt.Errorf("%w: slot %v", ErrBadPayload, id)
		}
		if rc := d.ReadyCerts[id]; rc != nil {
			if rc.Stmt.Kind != accountability.KindReady ||
				rc.Stmt.Instance != d.Instance ||
				rc.Stmt.Slot != uint32(id) ||
				rc.Stmt.Value != p.Digest {
				return fmt.Errorf("%w: ready cert slot %v", ErrWrongContext, id)
			}
			if rc.IsAggregate() {
				if rc.VerifySigs(v) != nil {
					return fmt.Errorf("%w: ready cert slot %v", ErrBadCert, id)
				}
				if rc.SignerCount(nil) < readyMin {
					return fmt.Errorf("%w: ready cert slot %v below 2t+1", ErrBadCert, id)
				}
				continue
			}
			seen := types.NewReplicaSet()
			for _, sig := range rc.Sigs {
				if sig.Stmt != rc.Stmt {
					return fmt.Errorf("%w: ready cert slot %v", ErrBadCert, id)
				}
				if !sig.Verify(v) {
					return fmt.Errorf("%w: ready cert slot %v", ErrBadCert, id)
				}
				seen.Add(sig.Signer)
			}
			if seen.Len() < readyMin {
				return fmt.Errorf("%w: ready cert slot %v below 2t+1", ErrBadCert, id)
			}
		}
	}
	return nil
}

// AbsorbDecision records every certificate of a verified decision into the
// accountability log, surfacing PoFs against any replica that signed
// conflicting statements across branches — the cross-check of §4.1 .
func AbsorbDecision(log *accountability.Log, d *sbc.Decision) {
	if d == nil {
		return
	}
	ids := make([]types.ReplicaID, 0, len(d.Bits))
	for id := range d.Bits {
		ids = append(ids, id)
	}
	types.SortReplicas(ids)
	for _, id := range ids {
		if c := d.BinCerts[id]; c != nil {
			log.RecordCertificate(c)
		}
		if c := d.ReadyCerts[id]; c != nil {
			log.RecordCertificate(c)
		}
		if s := d.InitStmts[id]; s != nil {
			log.Record(*s)
		}
	}
}
