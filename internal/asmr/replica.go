// Package asmr implements ZLB's Accountable State Machine Replication
// (paper §4.1): an infinite sequence of Set Byzantine Consensus instances
// Γ1, Γ2, …, each followed by the optional phases of Fig. 2 — ②
// confirmation (broadcast the decision digest, detect conflicting
// certified decisions), ③ exclusion consensus and ④ inclusion consensus
// (the membership change of Alg. 1, triggered once proofs of fraud cover
// fd = ⌈n/3⌉ replicas), and ⑤ reconciliation (merging the branches of the
// fork, delegated to the Blockchain Manager through the OnDisagreement
// callback).
//
// A replica is an event-driven state machine run by internal/simnet or by
// the TCP transport; all its protocol sub-instances share one
// accountability log, so evidence found anywhere (a vote, a certificate,
// a catch-up block) counts everywhere.
package asmr

import (
	"fmt"
	"time"

	"github.com/zeroloss/zlb/internal/accountability"
	"github.com/zeroloss/zlb/internal/bincon"
	"github.com/zeroloss/zlb/internal/committee"
	"github.com/zeroloss/zlb/internal/crypto"
	"github.com/zeroloss/zlb/internal/membership"
	"github.com/zeroloss/zlb/internal/obs"
	"github.com/zeroloss/zlb/internal/pipeline"
	"github.com/zeroloss/zlb/internal/rbc"
	"github.com/zeroloss/zlb/internal/sbc"
	"github.com/zeroloss/zlb/internal/simnet"
	"github.com/zeroloss/zlb/internal/types"
)

// Batch is one proposal payload for a consensus instance, with the
// modeled size/verification metadata used by the simulator's cost model.
type Batch struct {
	Payload      []byte
	ClaimedBytes int
	ClaimedSigs  int
}

// Config parameterizes one ASMR replica.
type Config struct {
	Self   types.ReplicaID
	Signer *crypto.Signer
	Env    simnet.Env
	// InitialCommittee is the committee of epoch 0.
	InitialCommittee []types.ReplicaID
	// PoolCandidates are the replicas available for inclusion (§3.2).
	PoolCandidates []types.ReplicaID
	// Accountable enables signatures and certificates. Disabled, the
	// replica is the Red Belly baseline: fast, no detection, no recovery.
	Accountable bool
	// Recover enables the membership change + reconciliation (ZLB). With
	// Accountable=true and Recover=false the replica is the Polygraph
	// baseline: detects fraud but cannot heal.
	Recover bool
	// DeceitfulBound is δ̂, the assumed bound on the deceitful ratio; the
	// confirmation phase waits for more than (δ̂+1/3)·n matching
	// confirmations (§4.1 ②). Default 5/9.
	DeceitfulBound float64
	// CoordTimeout tunes the binary consensus coordinator wait.
	CoordTimeout func(round types.Round) time.Duration
	// BatchSource supplies this replica's proposal for instance k.
	BatchSource func(k uint64) Batch
	// WaitForWork makes the replica defer starting an instance until
	// BatchSource returns a non-empty batch (paper Fig. 2: "if there are
	// enqueued requests that wait to be served, then a replica starts a
	// new instance"). Kick retries after new work arrives.
	WaitForWork bool
	// MaxInstances stops starting new instances after this many (0 = no
	// limit); experiments use it to bound runs.
	MaxInstances uint64
	// Adversary, when set, makes this replica deceitful in main-chain
	// instances (coalition attacks).
	Adversary *sbc.Adversary
	// AttackFromInstance delays the attack: instances below it run
	// honestly even on deceitful replicas (0 = attack from the start).
	// Experiments use it to build a clean chain before forking it.
	AttackFromInstance uint64
	// Deceitful marks this replica as a coalition member: it suppresses
	// every channel that would incriminate the coalition (confirmation
	// broadcasts, PoF gossip, membership changes, block evidence service).
	Deceitful bool
	// Certs, when set, routes every certificate verification this replica
	// performs (binary-consensus decisions, catch-up blocks, join
	// notices) through the commit pipeline: verdicts are cached per
	// certificate for the whole deployment and signature checks fan out
	// across the worker pool. Nil verifies inline.
	Certs *pipeline.Verifier
	// AggregateCerts assembles certificates in aggregate form — one
	// aggregate signature plus a signer bitmap instead of a quorum of
	// signed statements — whenever the signer's scheme implements
	// crypto.Aggregator. Threaded into every consensus this replica runs
	// (main, exclusion, inclusion). Schemes without the capability fall
	// back to signed-statement certificates; defaults off, which keeps
	// the wire and cost model bit-identical to the pre-aggregate code.
	AggregateCerts bool
	// Intern, when set, canonicalizes reliable-broadcast payload bytes by
	// digest across the deployment — one copy of each proposal instead of
	// one per replica (rbc.Config.Intern). Nil keeps per-message slices.
	Intern *rbc.Intern
	// Tracer, when non-nil, records the replica's consensus lifecycle
	// (batch proposal, commits, disagreements, PoFs, membership changes)
	// with virtual timestamps and is threaded into every sub-protocol.
	// Nil disables tracing at zero cost.
	Tracer *obs.NodeTracer

	// OnProposal observes every proposal payload the moment the reliable
	// broadcast delivers it, before the instance decides — the
	// application's hook for speculative batch pre-validation.
	OnProposal func(k uint64, payload []byte)
	// OnCommit fires when instance k decides (phase ①).
	OnCommit func(k uint64, attempt uint32, d *sbc.Decision)
	// OnSlotDecide observes per-slot binary decisions (Fig. 4's
	// disagreeing-proposals metric is counted at this granularity).
	OnSlotDecide func(k uint64, attempt uint32, slot types.ReplicaID, value bool, digest types.Digest)
	// OnFinal fires when instance k gathers enough confirmations (②).
	OnFinal func(k uint64, digest types.Digest)
	// OnDisagreement fires when a certified conflicting decision for
	// instance k is obtained; the Blockchain Manager merges it (⑤).
	OnDisagreement func(k uint64, local, remote *sbc.Decision)
	// OnPoF fires once per newly proven deceitful replica.
	OnPoF func(accountability.PoF)
	// OnMembershipChange fires when a membership change completes (③+④).
	OnMembershipChange func(*membership.Result)
	// OnJoined fires on a pool node when it has verified a JoinNotice and
	// become a committee member.
	OnJoined func(epoch uint64, committee []types.ReplicaID)
}

type instState struct {
	k        uint64
	attempt  uint32
	inst     *sbc.Instance
	proposed bool
	stopped  bool
	decided  bool
	decision *sbc.Decision
	digest   types.Digest
	// confirmation phase
	confirms     map[types.ReplicaID]types.Digest
	final        bool
	disagreement bool
	remoteSeen   map[types.Digest]bool
	reqSent      map[types.ReplicaID]bool
}

// Replica is one ASMR replica.
type Replica struct {
	cfg  Config
	view *committee.View
	pool *committee.Pool
	log  *accountability.Log

	member  bool // are we currently in the committee?
	epoch   uint64
	change  *membership.Change
	changes []*membership.Result

	instances map[uint64]*instState // by logical k
	nextK     uint64
	started   bool

	// committed decisions by k (first decision wins locally; conflicting
	// certified decisions surface through OnDisagreement)
	committed map[uint64]*sbc.Decision

	// detection metrics (for the experiment harness)
	FirstPoFAt    time.Duration
	ThresholdAt   time.Duration
	thresholdSeen bool

	// deferred PoF gossip assembled during the current event
	outPoFs []accountability.PoF

	// pending buffers consensus messages that cannot be routed yet: a
	// membership change a peer already started, an instance attempt we
	// have not restarted into, or an epoch ahead of ours. Replayed on
	// every state transition that could make them routable.
	pending []bufferedMsg
}

type bufferedMsg struct {
	from types.ReplicaID
	msg  simnet.Message
}

// maxPending bounds the replay buffer; beyond it the oldest messages are
// dropped (protocols recover via decision propagation and catch-up).
const maxPending = 1 << 17

// AppBindings are the application-facing callbacks a replica can be
// rebound to after construction: the public zlb package layers the
// payment application on top of replicas built by the experiment harness.
// Nil fields keep the existing binding.
type AppBindings struct {
	BatchSource        func(k uint64) Batch
	OnProposal         func(k uint64, payload []byte)
	OnCommit           func(k uint64, attempt uint32, d *sbc.Decision)
	OnFinal            func(k uint64, digest types.Digest)
	OnDisagreement     func(k uint64, local, remote *sbc.Decision)
	OnPoF              func(accountability.PoF)
	OnMembershipChange func(*membership.Result)
}

// Rebind replaces the application callbacks. It must be called before
// Start; later calls risk missing events already delivered.
func (r *Replica) Rebind(b AppBindings) {
	if b.BatchSource != nil {
		r.cfg.BatchSource = b.BatchSource
	}
	if b.OnProposal != nil {
		r.cfg.OnProposal = b.OnProposal
	}
	if b.OnCommit != nil {
		prev := r.cfg.OnCommit
		next := b.OnCommit
		r.cfg.OnCommit = func(k uint64, attempt uint32, d *sbc.Decision) {
			if prev != nil {
				prev(k, attempt, d)
			}
			next(k, attempt, d)
		}
	}
	if b.OnFinal != nil {
		r.cfg.OnFinal = b.OnFinal
	}
	if b.OnDisagreement != nil {
		r.cfg.OnDisagreement = b.OnDisagreement
	}
	if b.OnPoF != nil {
		prev := r.cfg.OnPoF
		next := b.OnPoF
		r.cfg.OnPoF = func(p accountability.PoF) {
			if prev != nil {
				prev(p)
			}
			next(p)
		}
	}
	if b.OnMembershipChange != nil {
		prev := r.cfg.OnMembershipChange
		next := b.OnMembershipChange
		r.cfg.OnMembershipChange = func(res *membership.Result) {
			if prev != nil {
				prev(res)
			}
			next(res)
		}
	}
}

// NewReplica builds a replica. Call Start to begin proposing; pool nodes
// skip Start and wait for a JoinNotice.
func NewReplica(cfg Config) *Replica {
	if cfg.DeceitfulBound == 0 {
		cfg.DeceitfulBound = 5.0 / 9.0
	}
	r := &Replica{
		cfg:       cfg,
		view:      committee.NewView(cfg.InitialCommittee),
		pool:      committee.NewPool(cfg.PoolCandidates),
		instances: make(map[uint64]*instState),
		committed: make(map[uint64]*sbc.Decision),
		nextK:     1,
	}
	for _, id := range cfg.InitialCommittee {
		if id == cfg.Self {
			r.member = true
		}
	}
	r.log = accountability.NewLog(cfg.Signer, func(p accountability.PoF) { r.onPoF(p) })
	return r
}

// View exposes the current committee view (read-only use).
func (r *Replica) View() *committee.View { return r.view }

// Log exposes the accountability log (read-only use).
func (r *Replica) Log() *accountability.Log { return r.log }

// Now returns the replica's virtual clock — the per-event time of its
// simulation environment. Application callbacks (OnCommit and friends)
// must timestamp with this, not with the global simulator clock: under
// conservative-parallel windows the global clock can sit anywhere in the
// window while an event runs, whereas the event time is bit-identical
// across execution modes.
func (r *Replica) Now() time.Duration { return r.cfg.Env.Now() }

// Epoch returns the number of completed membership changes.
func (r *Replica) Epoch() uint64 { return r.epoch }

// Changes returns the completed membership change results.
func (r *Replica) Changes() []*membership.Result { return r.changes }

// ActiveChange returns the current membership change, if any (diagnostics).
func (r *Replica) ActiveChange() *membership.Change { return r.change }

// DebugSlot returns bincon diagnostics for (k, slot).
func (r *Replica) DebugSlot(k uint64, slot types.ReplicaID) string {
	if st, ok := r.instances[k]; ok {
		return st.inst.DebugSlot(slot)
	}
	return "no instance"
}

// InstanceProgress reports instance k's attempt and SBC progress
// (diagnostics).
func (r *Replica) InstanceProgress(k uint64) (attempt uint32, delivered, decided, total int, undecided []types.ReplicaID, stopped bool) {
	st, ok := r.instances[k]
	if !ok {
		return 0, 0, 0, 0, nil, false
	}
	delivered, decided, total = st.inst.Progress()
	return st.attempt, delivered, decided, total, st.inst.UndecidedSlots(), st.stopped
}

// PendingBuffered returns how many consensus messages await routing
// (diagnostics).
func (r *Replica) PendingBuffered() int { return len(r.pending) }

// Committed returns the locally committed decision for k, if any.
func (r *Replica) Committed(k uint64) (*sbc.Decision, bool) {
	d, ok := r.committed[k]
	return d, ok
}

// CommittedCount returns how many instances have decided locally.
func (r *Replica) CommittedCount() int { return len(r.committed) }

// IsMember reports whether the replica currently sits on the committee.
func (r *Replica) IsMember() bool { return r.member }

// Final reports whether instance k reached confirmation finality.
func (r *Replica) Final(k uint64) bool {
	st, ok := r.instances[k]
	return ok && st.final
}

// Disagreed reports whether a certified conflicting decision was seen for
// instance k.
func (r *Replica) Disagreed(k uint64) bool {
	st, ok := r.instances[k]
	return ok && st.disagreement
}

// RestoredBlock seeds a recovering replica with the coordinates of one
// block recovered from its durable store (internal/store).
type RestoredBlock struct {
	K       uint64
	Attempt uint32
	Digest  types.Digest
}

// Restore marks instances decided from durable local state — the
// consensus-layer half of a crash recovery. It must run before Start.
// The store does not retain decision bodies (certificates), so restored
// instances are committed without refiring OnCommit (the application
// already recovered their content from disk) and cannot serve catch-up
// to peers; peers that need those blocks fetch them from replicas that
// decided them live.
func (r *Replica) Restore(blocks []RestoredBlock) {
	for _, b := range blocks {
		if _, dup := r.committed[b.K]; dup {
			continue
		}
		st := &instState{
			k:          b.K,
			attempt:    b.Attempt,
			confirms:   make(map[types.ReplicaID]types.Digest),
			remoteSeen: make(map[types.Digest]bool),
			reqSent:    make(map[types.ReplicaID]bool),
		}
		st.inst = r.buildSBC(b.K, st)
		st.decided = true
		st.digest = b.Digest
		r.instances[b.K] = st
		r.committed[b.K] = nil
		if b.K >= r.nextK {
			r.nextK = b.K + 1
		}
	}
}

// RequestCatchup asks every committee peer for the decided blocks this
// replica is missing, starting at its first gap. A crash-restarted
// replica calls this after Restore: the store recovered the chain up to
// the crash point, and the certificate-verified CatchupResp path
// (onCatchupResp) covers everything decided while it was down.
func (r *Replica) RequestCatchup() {
	fromK := r.nextK
	for k := uint64(1); k < r.nextK; k++ {
		if _, ok := r.committed[k]; !ok {
			fromK = k
			break
		}
	}
	req := &CatchupReq{FromK: fromK}
	for _, m := range r.view.Members() {
		if m != r.cfg.Self {
			r.cfg.Env.Send(m, req)
		}
	}
}

// ChainDigests returns the decided digest of every committed instance —
// the recovered-chain comparison the crash-recovery scenario verifies.
func (r *Replica) ChainDigests() map[uint64]types.Digest {
	out := make(map[uint64]types.Digest, len(r.committed))
	for k := range r.committed {
		if st, ok := r.instances[k]; ok && st.decided {
			out[k] = st.digest
		}
	}
	return out
}

// Start begins the main chain: the replica proposes for instance 1.
func (r *Replica) Start() {
	if r.started || !r.member {
		return
	}
	r.started = true
	r.startInstance(r.nextK)
}

// confirmThreshold is the number of matching confirmations finality needs:
// more than (δ̂ + 1/3)·n.
func (r *Replica) confirmThreshold() int {
	n := float64(r.view.Size())
	th := int((r.cfg.DeceitfulBound+1.0/3.0)*n) + 1
	if th > r.view.Size() {
		th = r.view.Size()
	}
	return th
}

func (r *Replica) startInstance(k uint64) {
	if !r.member {
		return
	}
	if r.cfg.MaxInstances > 0 && k > r.cfg.MaxInstances {
		return
	}
	st := r.ensureInstance(k)
	if st.proposed || st.stopped {
		return
	}
	batch := Batch{Payload: []byte(fmt.Sprintf("empty-%d-%v", k, r.cfg.Self))}
	if r.cfg.BatchSource != nil {
		batch = r.cfg.BatchSource(k)
	}
	if r.cfg.WaitForWork && len(batch.Payload) == 0 && batch.ClaimedSigs == 0 {
		return // no enqueued requests; Kick retries when work arrives
	}
	st.proposed = true
	r.cfg.Tracer.Record(r.cfg.Env.Now(), obs.PhaseBatchPropose, k, 0, st.attempt, "")
	st.inst.Propose(batch.Payload, batch.ClaimedBytes, batch.ClaimedSigs)
}

// Kick retries starting the next instance after new work arrived (used
// with WaitForWork). Safe to call between simulation events.
func (r *Replica) Kick() {
	if r.started && r.member {
		r.startInstance(r.nextK)
	}
}

// ensureInstance creates (or returns) the state for logical instance k at
// the current attempt.
func (r *Replica) ensureInstance(k uint64) *instState {
	if st, ok := r.instances[k]; ok {
		return st
	}
	st := &instState{
		k:          k,
		attempt:    uint32(r.epoch), // attempt tracks the membership epoch
		confirms:   make(map[types.ReplicaID]types.Digest),
		remoteSeen: make(map[types.Digest]bool),
		reqSent:    make(map[types.ReplicaID]bool),
	}
	st.inst = r.buildSBC(k, st)
	r.instances[k] = st
	return st
}

func (r *Replica) buildSBC(k uint64, st *instState) *sbc.Instance {
	adv := r.cfg.Adversary
	if k < r.cfg.AttackFromInstance {
		adv = nil
	}
	return sbc.New(sbc.Config{
		Context:        accountability.CtxMain,
		Instance:       WireInstance(k, st.attempt),
		Self:           r.cfg.Self,
		View:           r.view,
		Signer:         r.cfg.Signer,
		Log:            r.logIfAccountable(),
		Env:            r.cfg.Env,
		Accountable:    r.cfg.Accountable,
		AggregateCerts: r.cfg.AggregateCerts,
		CoordTimeout:   r.cfg.CoordTimeout,
		Certs:          r.cfg.Certs,
		Intern:         r.cfg.Intern,
		Tracer:         r.cfg.Tracer,
		OnProposal: func(payload []byte) {
			if r.cfg.OnProposal != nil {
				r.cfg.OnProposal(st.k, payload)
			}
		},
		Adversary: adv,
		OnSlotDecide: func(slot types.ReplicaID, value bool, digest types.Digest) {
			if r.cfg.OnSlotDecide != nil {
				r.cfg.OnSlotDecide(st.k, st.attempt, slot, value, digest)
			}
		},
		OnDecide: func(d *sbc.Decision) { r.onDecide(st, d) },
	})
}

func (r *Replica) logIfAccountable() *accountability.Log {
	if !r.cfg.Accountable {
		return nil
	}
	return r.log
}

// onDecide is phase ① completing for instance k.
func (r *Replica) onDecide(st *instState, d *sbc.Decision) {
	if st.decided || st.stopped {
		return
	}
	st.decided = true
	st.decision = d
	st.digest = d.Digest()
	r.committed[st.k] = d
	r.cfg.Tracer.Record(r.cfg.Env.Now(), obs.PhaseCommit, st.k, 0, st.attempt, "")
	if r.cfg.OnCommit != nil {
		r.cfg.OnCommit(st.k, st.attempt, d)
	}

	// Phase ②: broadcast our confirmation. A deceitful replica stays
	// silent: a signed conflicting confirmation would be evidence.
	if r.cfg.Accountable && !r.cfg.Deceitful {
		stmt := accountability.Statement{
			Context:  accountability.CtxMain,
			Kind:     accountability.KindConfirm,
			Instance: WireInstance(st.k, st.attempt),
			Value:    st.digest,
		}
		signed, err := accountability.SignStatement(r.cfg.Signer, stmt)
		if err == nil {
			r.log.Record(signed)
			msg := &Confirm{K: st.k, Attempt: st.attempt, Digest: st.digest, Stmt: signed}
			for _, m := range r.view.Members() {
				if m != r.cfg.Self {
					r.cfg.Env.Send(m, msg)
				}
			}
		}
		st.confirms[r.cfg.Self] = st.digest
		r.checkConfirmation(st)
		// Compare buffered confirmations received before we decided.
		for from, dig := range st.confirms {
			if dig != st.digest {
				r.requestBlock(st, from)
			}
		}
	}

	// Pipeline: start the next instance (Γk+1 runs concurrently with the
	// confirmation of Γk).
	if st.k >= r.nextK {
		r.nextK = st.k + 1
		r.startInstance(r.nextK)
	}
	r.flushPoFs()
}

// checkConfirmation evaluates the finality threshold.
func (r *Replica) checkConfirmation(st *instState) {
	if st.final || !st.decided {
		return
	}
	matching := 0
	for _, dig := range st.confirms {
		if dig == st.digest {
			matching++
		}
	}
	if matching >= r.confirmThreshold() {
		st.final = true
		if r.cfg.OnFinal != nil {
			r.cfg.OnFinal(st.k, st.digest)
		}
	}
}

// onConfirm handles a confirmation message (phase ②).
func (r *Replica) onConfirm(from types.ReplicaID, m *Confirm) {
	if !r.cfg.Accountable {
		return
	}
	wi := WireInstance(m.K, m.Attempt)
	s := m.Stmt
	if s.Signer != from || s.Stmt.Kind != accountability.KindConfirm ||
		s.Stmt.Context != accountability.CtxMain || s.Stmt.Instance != wi ||
		s.Stmt.Value != m.Digest {
		return
	}
	if !s.Verify(r.cfg.Signer) {
		return
	}
	r.log.Record(s) // conflicting confirms by one replica → PoF
	st := r.ensureInstance(m.K)
	if prev, seen := st.confirms[from]; seen && prev == m.Digest {
		return
	}
	st.confirms[from] = m.Digest
	if st.decided {
		if m.Digest != st.digest {
			r.requestBlock(st, from)
		} else {
			r.checkConfirmation(st)
		}
	}
	r.flushPoFs()
}

// requestBlock pulls the conflicting branch's block (evidence + content).
func (r *Replica) requestBlock(st *instState, from types.ReplicaID) {
	if st.reqSent[from] {
		return
	}
	st.reqSent[from] = true
	r.cfg.Env.Send(from, &BlockReq{K: st.k, Attempt: st.attempt})
}

func (r *Replica) onBlockReq(from types.ReplicaID, m *BlockReq) {
	if r.cfg.Deceitful {
		return
	}
	st, ok := r.instances[m.K]
	if !ok || !st.decided || st.decision == nil {
		// st.decision is nil for instances restored from disk: the store
		// keeps no certificates, so there is no auditable body to serve.
		return
	}
	r.cfg.Env.Send(from, &BlockResp{K: m.K, Attempt: st.attempt, Decision: st.decision})
}

// onBlockResp audits a conflicting block: verify its certificates, absorb
// them into the log (creating PoFs), and hand the branch to the
// reconciliation callback (phase ⑤).
func (r *Replica) onBlockResp(_ types.ReplicaID, m *BlockResp) {
	if m.Decision == nil || !r.cfg.Accountable {
		return
	}
	st := r.ensureInstance(m.K)
	dig := m.Decision.Digest()
	if st.decided && dig == st.digest {
		return // same branch after all
	}
	if st.remoteSeen[dig] {
		return
	}
	if err := VerifyDecisionWith(r.cfg.Certs, r.cfg.Signer, m.Decision, r.view.Size()); err != nil {
		return
	}
	st.remoteSeen[dig] = true
	st.disagreement = true
	r.cfg.Tracer.Record(r.cfg.Env.Now(), obs.PhaseDisagreement, m.K, 0, st.attempt, "")
	AbsorbDecision(r.log, m.Decision)
	if st.decided && r.cfg.OnDisagreement != nil {
		r.cfg.OnDisagreement(st.k, st.decision, m.Decision)
	}
	r.flushPoFs()
}

// onPoF fires from the accountability log exactly once per culprit.
func (r *Replica) onPoF(p accountability.PoF) {
	r.cfg.Tracer.Record(r.cfg.Env.Now(), obs.PhasePoF, 0, uint32(p.Culprit), 0, "")
	if r.FirstPoFAt == 0 {
		r.FirstPoFAt = r.cfg.Env.Now()
	}
	if !r.thresholdSeen && r.log.CulpritCount() >= r.view.FaultThreshold() {
		r.thresholdSeen = true
		r.ThresholdAt = r.cfg.Env.Now()
	}
	if r.cfg.OnPoF != nil {
		r.cfg.OnPoF(p)
	}
	// Defer gossip + membership-change triggering to flushPoFs so a batch
	// of PoFs discovered in one event is handled once.
	r.outPoFs = append(r.outPoFs, p)
}

// flushPoFs gossips newly found PoFs and starts the membership change when
// the fd threshold is met (Alg. 1 lines 13-22).
func (r *Replica) flushPoFs() {
	if len(r.outPoFs) > 0 {
		pofs := r.outPoFs
		r.outPoFs = nil
		if r.cfg.Recover && !r.cfg.Deceitful {
			if r.change != nil && !r.change.Done() {
				r.change.OnPoFs(pofs)
			} else {
				msg := &PoFGossip{PoFs: pofs}
				for _, m := range r.view.Members() {
					if m != r.cfg.Self {
						r.cfg.Env.Send(m, msg)
					}
				}
			}
		}
	}
	r.maybeStartChange()
}

// maybeStartChange begins the membership change once PoFs cover at least
// fd = ⌈n/3⌉ distinct replicas.
func (r *Replica) maybeStartChange() {
	if !r.cfg.Recover || !r.member || r.cfg.Deceitful {
		return
	}
	if r.change != nil && !r.change.Done() {
		return
	}
	if r.log.CulpritCount() < r.view.FaultThreshold() {
		return
	}
	// Stop pending (undecided) instances: they restart with the new
	// committee (Alg. 1 lines 19, 49).
	for _, st := range r.instances {
		if !st.decided {
			st.stopped = true
		}
	}
	r.change = membership.NewChange(membership.Config{
		Epoch:          r.epoch + 1,
		Self:           r.cfg.Self,
		Signer:         r.cfg.Signer,
		Log:            r.log,
		Env:            r.cfg.Env,
		Committee:      r.view.MembersCopy(),
		Pool:           r.pool,
		TargetSize:     r.view.Size(),
		CoordTimeout:   r.cfg.CoordTimeout,
		AggregateCerts: r.cfg.AggregateCerts,
		OnResult:       func(res *membership.Result) { r.onChangeResult(res) },
	})
	// Exclusion traffic from peers that started before us is waiting.
	r.replayPending()
}

// onChangeResult applies a completed membership change: update C, punish,
// catch new replicas up, restart stopped instances (Alg. 1 lines 37-49).
func (r *Replica) onChangeResult(res *membership.Result) {
	// Slot/Round encode how many replicas left and joined the committee.
	r.cfg.Tracer.Record(r.cfg.Env.Now(), obs.PhaseExclusion, res.Epoch, uint32(len(res.Excluded)), uint32(len(res.Included)), "")
	r.epoch = res.Epoch
	r.changes = append(r.changes, res)
	r.view.Exclude(res.Excluded)
	r.view.Include(res.Included)
	r.pool.MarkTaken(res.Included)
	r.log.Forget(res.Excluded)
	r.thresholdSeen = false
	r.member = r.view.Contains(r.cfg.Self)
	if r.cfg.OnMembershipChange != nil {
		r.cfg.OnMembershipChange(res)
	}
	// Restart stopped instances under the new committee (line 49). The
	// attempt number equals the membership epoch everywhere, so honest
	// replicas that restart independently agree on the restarted run's
	// identity. Restarts run in ascending k: each one sends messages
	// (drawing from the simulator's latency RNG) and records trace
	// events, so map-iteration order would leak into the run.
	var restartKs []uint64
	for k, st := range r.instances {
		if st.stopped && !st.decided {
			restartKs = append(restartKs, k)
		}
	}
	sortUint64(restartKs)
	for _, k := range restartKs {
		fresh := &instState{
			k:          k,
			attempt:    uint32(r.epoch),
			confirms:   make(map[types.ReplicaID]types.Digest),
			remoteSeen: make(map[types.Digest]bool),
			reqSent:    make(map[types.ReplicaID]bool),
		}
		fresh.inst = r.buildSBC(k, fresh)
		r.instances[k] = fresh
		r.startInstance(k)
	}
	// Some honest replicas may have decided the stopped instances before
	// the change reached them; pull their certified blocks so we adopt
	// instead of re-deciding a parallel run.
	minUndecided := r.nextK
	for k, st := range r.instances {
		if !st.decided && k < minUndecided {
			minUndecided = k
		}
	}
	req := &CatchupReq{FromK: minUndecided}
	for _, m := range r.view.Members() {
		if m != r.cfg.Self {
			r.cfg.Env.Send(m, req)
		}
	}
	// Send catch-up to every included replica (lines 45-47).
	if r.member && len(res.Included) > 0 {
		notice := r.buildJoinNotice()
		for _, id := range res.Included {
			if id != r.cfg.Self {
				r.cfg.Env.Send(id, notice)
			}
		}
	}
	// Buffered traffic for restarted attempts (and the next epoch's
	// change) may now be routable.
	r.replayPending()
	// A second wave of PoFs may already justify another change.
	r.maybeStartChange()
}

func (r *Replica) buildJoinNotice() *JoinNotice {
	ks := make([]uint64, 0, len(r.committed))
	for k := range r.committed {
		ks = append(ks, k)
	}
	sortUint64(ks)
	blocks := make([]BlockRecord, 0, len(ks))
	for _, k := range ks {
		st := r.instances[k]
		if st.decision == nil {
			continue // restored from disk: no certificates to ship
		}
		blocks = append(blocks, BlockRecord{K: k, Attempt: st.attempt, Decision: st.decision})
	}
	pending := make(map[uint64]uint32)
	for k, st := range r.instances {
		if !st.decided && !st.stopped {
			pending[k] = st.attempt
		}
	}
	return &JoinNotice{
		Epoch:           r.epoch,
		Committee:       r.view.MembersCopy(),
		NextK:           r.nextK,
		Blocks:          blocks,
		PendingAttempts: pending,
	}
}

// onJoinNotice runs on a pool node: verify the shipped chain, adopt the
// committee, start participating.
func (r *Replica) onJoinNotice(_ types.ReplicaID, m *JoinNotice) {
	if r.member || m.Epoch == 0 {
		return
	}
	inCommittee := false
	for _, id := range m.Committee {
		if id == r.cfg.Self {
			inCommittee = true
			break
		}
	}
	if !inCommittee {
		return
	}
	// Audit the shipped chain; the cost (certificates over n signers per
	// block) is the catch-up cost of Fig. 5 (right).
	n := len(m.Committee)
	for _, b := range m.Blocks {
		if err := VerifyDecisionWith(r.cfg.Certs, r.cfg.Signer, b.Decision, n); err != nil {
			return
		}
	}
	r.member = true
	r.epoch = m.Epoch
	r.view = committee.NewView(m.Committee)
	for _, b := range m.Blocks {
		if _, dup := r.committed[b.K]; !dup {
			st := r.ensureInstance(b.K)
			st.attempt = b.Attempt
			st.decided = true
			st.decision = b.Decision
			st.digest = b.Decision.Digest()
			r.committed[b.K] = b.Decision
			AbsorbDecision(r.log, b.Decision)
			if r.cfg.OnCommit != nil {
				r.cfg.OnCommit(b.K, b.Attempt, b.Decision)
			}
		}
	}
	if m.NextK > r.nextK {
		r.nextK = m.NextK
	}
	// In-flight instances run at attempt = epoch; ensureInstance picks
	// that up from the epoch adopted above.
	r.cfg.Tracer.Record(r.cfg.Env.Now(), obs.PhaseInclusion, m.Epoch, uint32(r.cfg.Self), 0, "")
	if r.cfg.OnJoined != nil {
		r.cfg.OnJoined(m.Epoch, m.Committee)
	}
	r.started = true
	r.startInstance(r.nextK)
	r.replayPending()
	r.flushPoFs()
}

// onPoFGossip ingests gossiped PoFs outside a membership change.
func (r *Replica) onPoFGossip(_ types.ReplicaID, m *PoFGossip) {
	if !r.cfg.Accountable {
		return
	}
	for _, p := range m.PoFs {
		if p.Verify(r.cfg.Signer) {
			r.log.AddPoF(p)
		}
	}
	r.flushPoFs()
}

func (r *Replica) onCatchupReq(from types.ReplicaID, m *CatchupReq) {
	ks := make([]uint64, 0, len(r.committed))
	for k := range r.committed {
		if k >= m.FromK {
			ks = append(ks, k)
		}
	}
	sortUint64(ks)
	blocks := make([]BlockRecord, 0, len(ks))
	for _, k := range ks {
		st := r.instances[k]
		if st.decision == nil {
			continue // restored from disk: no certificates to ship
		}
		blocks = append(blocks, BlockRecord{K: k, Attempt: st.attempt, Decision: st.decision})
	}
	r.cfg.Env.Send(from, &CatchupResp{Blocks: blocks})
}

func (r *Replica) onCatchupResp(_ types.ReplicaID, m *CatchupResp) {
	for _, b := range m.Blocks {
		if _, dup := r.committed[b.K]; dup {
			continue
		}
		if err := VerifyDecisionWith(r.cfg.Certs, r.cfg.Signer, b.Decision, r.view.Size()); err != nil {
			continue
		}
		st := r.ensureInstance(b.K)
		st.decided = true
		st.stopped = true // supersede any parallel restarted run
		st.decision = b.Decision
		st.digest = b.Decision.Digest()
		r.committed[b.K] = b.Decision
		AbsorbDecision(r.log, b.Decision)
		if r.cfg.OnCommit != nil {
			r.cfg.OnCommit(b.K, b.Attempt, b.Decision)
		}
		if b.K >= r.nextK {
			r.nextK = b.K + 1
			r.startInstance(r.nextK)
		}
	}
	r.flushPoFs()
}

// OnMessage implements simnet.Handler.
func (r *Replica) OnMessage(from types.ReplicaID, msg simnet.Message) {
	switch m := msg.(type) {
	case *Confirm:
		r.onConfirm(from, m)
	case *BlockReq:
		r.onBlockReq(from, m)
	case *BlockResp:
		r.onBlockResp(from, m)
	case *PoFGossip:
		r.onPoFGossip(from, m)
	case *JoinNotice:
		r.onJoinNotice(from, m)
	case *CatchupReq:
		r.onCatchupReq(from, m)
	case *CatchupResp:
		r.onCatchupResp(from, m)
	case *membership.PoFBroadcast:
		if r.change != nil && !r.change.Done() && r.change.OnMessage(from, msg) {
			break
		}
		// No active change: treat as gossip (lines 13-16 run anytime).
		r.onPoFGossip(from, &PoFGossip{PoFs: m.PoFs})
	default:
		r.routeConsensus(from, msg, true)
	}
	r.flushPoFs()
}

// routeConsensus dispatches consensus traffic: membership change contexts
// first, then the main chain by wire instance. Messages that cannot be
// routed yet (change not started here, future attempt, future epoch) are
// buffered when mayBuffer is set and replayed on state transitions.
func (r *Replica) routeConsensus(from types.ReplicaID, msg simnet.Message, mayBuffer bool) bool {
	ctx, wi, ok := sbc.ContextInstanceOf(msg)
	if !ok {
		return true // not consensus traffic; nothing to do
	}
	switch ctx {
	case accountability.CtxExclusion, accountability.CtxInclusion:
		epoch, _ := membership.SplitChangeInstance(wi)
		if r.change != nil && r.change.Epoch() == epoch {
			return r.change.OnMessage(from, msg)
		}
		if epoch > r.epoch {
			// A peer is running a change we have not started yet.
			if mayBuffer {
				r.buffer(from, msg)
			}
			return false
		}
		return false // stale epoch
	case accountability.CtxMain:
		k, attempt := SplitInstance(wi)
		st := r.ensureInstance(k)
		switch {
		case st.attempt == attempt && !st.stopped:
			st.inst.OnMessage(from, msg)
			return true
		case attempt > st.attempt || st.stopped:
			// A peer already restarted this instance; we will too after
			// our membership change completes.
			if mayBuffer {
				r.buffer(from, msg)
			}
			return false
		default:
			return false // stale attempt
		}
	default:
		return false
	}
}

func (r *Replica) buffer(from types.ReplicaID, msg simnet.Message) {
	if len(r.pending) >= maxPending {
		r.pending = r.pending[1:]
	}
	r.pending = append(r.pending, bufferedMsg{from: from, msg: msg})
}

// replayPending re-runs buffered messages after a state transition
// (membership change started or finished, instance restarted, joined).
func (r *Replica) replayPending() {
	if len(r.pending) == 0 {
		return
	}
	buffered := r.pending
	r.pending = nil
	for _, p := range buffered {
		if !r.routeConsensus(p.from, p.msg, false) {
			// Still unroutable: keep it (re-buffer preserving order).
			r.buffer(p.from, p.msg)
		}
	}
}

// OnTimer implements simnet.Handler.
func (r *Replica) OnTimer(payload any) {
	tp, ok := payload.(bincon.TimerPayload)
	if !ok {
		return
	}
	if r.change != nil && r.change.OnTimer(tp) {
		return
	}
	if tp.Context != accountability.CtxMain {
		return
	}
	k, attempt := SplitInstance(tp.Instance)
	if st, ok := r.instances[k]; ok && st.attempt == attempt && !st.stopped {
		st.inst.OnTimer(tp)
	}
	r.flushPoFs()
}
