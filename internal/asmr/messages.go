package asmr

import (
	"github.com/zeroloss/zlb/internal/accountability"
	"github.com/zeroloss/zlb/internal/sbc"
	"github.com/zeroloss/zlb/internal/types"
)

// WireInstance packs a logical chain index k and a restart attempt into
// the single instance number protocol statements carry. A membership
// change stops and restarts pending instances (Alg. 1 lines 19, 49); the
// attempt number keeps the restarted run's messages and certificates
// disjoint from the aborted run's.
func WireInstance(k uint64, attempt uint32) types.Instance {
	return types.Instance(k<<10 | uint64(attempt)&0x3ff)
}

// SplitInstance reverses WireInstance.
func SplitInstance(wi types.Instance) (k uint64, attempt uint32) {
	return uint64(wi) >> 10, uint32(uint64(wi) & 0x3ff)
}

// Confirm announces a replica's decision digest for instance k — the
// confirmation phase ② of Fig. 2. The signed statement makes conflicting
// confirmations by one replica provable equivocation.
type Confirm struct {
	K       uint64
	Attempt uint32
	Digest  types.Digest
	Stmt    accountability.Signed // KindConfirm, Instance=WireInstance, Value=Digest
}

// SimBytes implements simnet.Meter.
func (m *Confirm) SimBytes() int { return 200 }

// SimSigOps implements simnet.Meter.
func (m *Confirm) SimSigOps() int { return 1 }

// BlockReq asks a replica for its full decided block of instance k, with
// certificates; sent when a conflicting confirmation reveals a
// disagreement.
type BlockReq struct {
	K       uint64
	Attempt uint32
}

// SimBytes implements simnet.Meter.
func (m *BlockReq) SimBytes() int { return 40 }

// SimSigOps implements simnet.Meter.
func (m *BlockReq) SimSigOps() int { return 0 }

// BlockResp carries a full decided block with its certificates: the
// evidence needed to cross-check (producing PoFs) and the content needed
// to reconcile (merging branches).
type BlockResp struct {
	K        uint64
	Attempt  uint32
	Decision *sbc.Decision
}

// SimBytes implements simnet.Meter.
func (m *BlockResp) SimBytes() int { return 80 + decisionBytes(m.Decision) }

// SimSigOps implements simnet.Meter.
func (m *BlockResp) SimSigOps() int { return decisionSigOps(m.Decision) }

// PoFGossip disseminates newly discovered proofs of fraud (Alg. 1
// lines 13-16 accept PoF lists at any time, not only mid-change).
type PoFGossip struct {
	PoFs []accountability.PoF
}

// SimBytes implements simnet.Meter.
func (m *PoFGossip) SimBytes() int { return 24 + 300*len(m.PoFs) }

// SimSigOps implements simnet.Meter.
func (m *PoFGossip) SimSigOps() int { return 2 * len(m.PoFs) }

// BlockRecord is one committed instance inside a catch-up transfer.
type BlockRecord struct {
	K        uint64
	Attempt  uint32
	Decision *sbc.Decision
}

// JoinNotice is the set-up-connection + send-catchup transfer (Alg. 1
// lines 46-47): it tells an included replica the committee it joined, the
// membership epoch, and ships the chain so far, certificates included.
type JoinNotice struct {
	Epoch     uint64
	Committee []types.ReplicaID
	NextK     uint64
	Blocks    []BlockRecord
	// PendingAttempts maps each in-flight (undecided) instance to its
	// current attempt number, so the joiner participates in the restarted
	// runs rather than stale ones.
	PendingAttempts map[uint64]uint32
}

// SimBytes implements simnet.Meter.
func (m *JoinNotice) SimBytes() int {
	n := 100 + 4*len(m.Committee)
	for _, b := range m.Blocks {
		n += decisionBytes(b.Decision)
	}
	return n
}

// SimSigOps implements simnet.Meter.
func (m *JoinNotice) SimSigOps() int {
	ops := 0
	for _, b := range m.Blocks {
		ops += decisionSigOps(b.Decision)
	}
	return ops
}

// CatchupReq asks for blocks from K onward (a lagging replica healing).
type CatchupReq struct {
	FromK uint64
}

// SimBytes implements simnet.Meter.
func (m *CatchupReq) SimBytes() int { return 32 }

// SimSigOps implements simnet.Meter.
func (m *CatchupReq) SimSigOps() int { return 0 }

// CatchupResp ships blocks to a lagging replica.
type CatchupResp struct {
	Blocks []BlockRecord
}

// SimBytes implements simnet.Meter.
func (m *CatchupResp) SimBytes() int {
	n := 24
	for _, b := range m.Blocks {
		n += decisionBytes(b.Decision)
	}
	return n
}

// SimSigOps implements simnet.Meter.
func (m *CatchupResp) SimSigOps() int {
	ops := 0
	for _, b := range m.Blocks {
		ops += decisionSigOps(b.Decision)
	}
	return ops
}

func decisionBytes(d *sbc.Decision) int {
	if d == nil {
		return 0
	}
	n := 64
	for _, p := range d.Proposals {
		if p.ClaimedBytes > 0 {
			n += p.ClaimedBytes
		} else {
			n += len(p.Payload)
		}
	}
	for _, c := range d.BinCerts {
		n += c.ModelBytes()
	}
	for _, c := range d.ReadyCerts {
		n += c.ModelBytes()
	}
	return n
}

func decisionSigOps(d *sbc.Decision) int {
	if d == nil {
		return 0
	}
	ops := 0
	for _, c := range d.BinCerts {
		ops += c.SigOps()
	}
	for _, c := range d.ReadyCerts {
		ops += c.SigOps()
	}
	for _, p := range d.Proposals {
		ops += p.ClaimedSigs
	}
	return ops
}
