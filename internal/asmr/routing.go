package asmr

import (
	"sort"

	"github.com/zeroloss/zlb/internal/accountability"
	"github.com/zeroloss/zlb/internal/sbc"
	"github.com/zeroloss/zlb/internal/simnet"
	"github.com/zeroloss/zlb/internal/types"
)

// mainInstanceOf extracts the wire instance from a main-chain consensus
// message; ok is false for messages of other contexts or non-consensus
// types.
func mainInstanceOf(msg simnet.Message) (types.Instance, bool) {
	ctx, wi, ok := sbc.ContextInstanceOf(msg)
	if !ok || ctx != accountability.CtxMain {
		return 0, false
	}
	return wi, true
}

func sortUint64(xs []uint64) {
	sort.Slice(xs, func(i, j int) bool { return xs[i] < xs[j] })
}
