package asmr

import (
	"testing"

	"github.com/zeroloss/zlb/internal/pipeline"
	"github.com/zeroloss/zlb/internal/sbc"
	"github.com/zeroloss/zlb/internal/types"
)

// TestVerifyDecisionWithMatchesLegacy pins the pipelined decision audit
// (shared certificate verdicts, worker-pool fan-out, parallel payload
// hashing) to the original inline implementation: identical accept/reject
// verdicts on a real decision and on every tampering the legacy tests
// cover, through a live verifier and through the nil (sequential)
// verifier.
func TestVerifyDecisionWithMatchesLegacy(t *testing.T) {
	d, signers := decideInstance(t, 7)
	verifier := pipeline.NewVerifier(pipeline.Shared())

	variants := map[string]*sbc.Decision{
		"real": d,
		"nil":  nil,
	}
	tampered := *d
	tampered.Bits = map[types.ReplicaID]bool{}
	for id, b := range d.Bits {
		tampered.Bits[id] = b
	}
	for id, b := range tampered.Bits {
		if b {
			tampered.Bits[id] = false
			break
		}
	}
	variants["flipped bit"] = &tampered

	payloadTampered := *d
	payloadTampered.Proposals = map[types.ReplicaID]sbc.ProposalInfo{}
	for id, p := range d.Proposals {
		payloadTampered.Proposals[id] = p
	}
	for id, p := range payloadTampered.Proposals {
		p.Payload = []byte("evil")
		payloadTampered.Proposals[id] = p
		break
	}
	variants["tampered payload"] = &payloadTampered

	for name, dec := range variants {
		want := verifyDecisionLegacy(signers[0], dec, 7)
		gotPipelined := VerifyDecisionWith(verifier, signers[0], dec, 7)
		gotSequential := VerifyDecisionWith(nil, signers[0], dec, 7)
		if (want == nil) != (gotPipelined == nil) {
			t.Errorf("%s: legacy err=%v, pipelined err=%v", name, want, gotPipelined)
		}
		if (want == nil) != (gotSequential == nil) {
			t.Errorf("%s: legacy err=%v, sequential err=%v", name, want, gotSequential)
		}
		// Re-verify through the same verifier: the cached certificate
		// verdicts must not change the outcome.
		gotCached := VerifyDecisionWith(verifier, signers[0], dec, 7)
		if (want == nil) != (gotCached == nil) {
			t.Errorf("%s: legacy err=%v, cached err=%v", name, want, gotCached)
		}
	}
}
