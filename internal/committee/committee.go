// Package committee manages the replica committee views that ZLB's
// consensus instances run over: the current committee C, the
// exclusion-consensus working view C′ that shrinks at runtime as new
// proofs of fraud arrive (Alg. 1 lines 20-27), and the candidate pool new
// replicas are drawn from (§3.2).
package committee

import (
	"fmt"
	"sort"

	"github.com/zeroloss/zlb/internal/types"
)

// View is a committee membership snapshot with protocol thresholds. Views
// are mutable — the exclusion consensus removes members at runtime and
// re-evaluates quorums — so consumers must consult the view at check time
// rather than caching thresholds. Epoch increments on every change,
// letting consumers detect staleness cheaply.
type View struct {
	epoch   uint64
	members []types.ReplicaID // sorted
	present map[types.ReplicaID]struct{}
	// onChange subscribers fire after every membership change.
	onChange []func()
}

// NewView builds a view over the given members.
func NewView(members []types.ReplicaID) *View {
	v := &View{present: make(map[types.ReplicaID]struct{}, len(members))}
	for _, id := range members {
		if _, dup := v.present[id]; dup {
			continue
		}
		v.present[id] = struct{}{}
		v.members = append(v.members, id)
	}
	types.SortReplicas(v.members)
	return v
}

// Clone returns an independent copy with no subscribers (epoch resets).
func (v *View) Clone() *View { return NewView(v.members) }

// Epoch returns the change counter.
func (v *View) Epoch() uint64 { return v.epoch }

// Size returns |C|.
func (v *View) Size() int { return len(v.members) }

// Quorum returns ⌈2|C|/3⌉, the certificate threshold at the current size.
func (v *View) Quorum() int { return types.Quorum(len(v.members)) }

// FaultThreshold returns fd = ⌈|C|/3⌉.
func (v *View) FaultThreshold() int { return types.FaultThreshold(len(v.members)) }

// MaxFaults returns ⌈|C|/3⌉ − 1.
func (v *View) MaxFaults() int { return types.MaxClassicFaults(len(v.members)) }

// BVRelay returns t+1.
func (v *View) BVRelay() int { return types.BVRelayThreshold(len(v.members)) }

// Contains reports membership.
func (v *View) Contains(id types.ReplicaID) bool {
	_, ok := v.present[id]
	return ok
}

// Members returns the sorted membership; callers must not mutate it.
func (v *View) Members() []types.ReplicaID { return v.members }

// MembersCopy returns an owned copy of the membership.
func (v *View) MembersCopy() []types.ReplicaID {
	out := make([]types.ReplicaID, len(v.members))
	copy(out, v.members)
	return out
}

// Coordinator returns the weak coordinator for (instance, slot, round):
// rotation over the sorted membership so every member eventually
// coordinates (liveness after GST).
func (v *View) Coordinator(inst types.Instance, slot uint32, round types.Round) types.ReplicaID {
	if len(v.members) == 0 {
		return types.NilReplica
	}
	idx := (uint64(inst) + uint64(slot) + uint64(round)) % uint64(len(v.members))
	return v.members[idx]
}

// IndexOf returns the position of id in the sorted membership, or -1.
func (v *View) IndexOf(id types.ReplicaID) int {
	i := sort.Search(len(v.members), func(i int) bool { return v.members[i] >= id })
	if i < len(v.members) && v.members[i] == id {
		return i
	}
	return -1
}

// Subscribe registers a callback fired after every membership change.
func (v *View) Subscribe(fn func()) { v.onChange = append(v.onChange, fn) }

// Exclude removes the given replicas; absent IDs are ignored. It reports
// whether anything changed and notifies subscribers if so.
func (v *View) Exclude(ids []types.ReplicaID) bool {
	changed := false
	for _, id := range ids {
		if _, ok := v.present[id]; ok {
			delete(v.present, id)
			changed = true
		}
	}
	if !changed {
		return false
	}
	v.members = v.members[:0]
	for id := range v.present {
		v.members = append(v.members, id)
	}
	types.SortReplicas(v.members)
	v.epoch++
	for _, fn := range v.onChange {
		fn()
	}
	return true
}

// Include adds the given replicas; duplicates are ignored. It reports
// whether anything changed and notifies subscribers if so.
func (v *View) Include(ids []types.ReplicaID) bool {
	changed := false
	for _, id := range ids {
		if _, ok := v.present[id]; !ok {
			v.present[id] = struct{}{}
			v.members = append(v.members, id)
			changed = true
		}
	}
	if !changed {
		return false
	}
	types.SortReplicas(v.members)
	v.epoch++
	for _, fn := range v.onChange {
		fn()
	}
	return true
}

// String implements fmt.Stringer.
func (v *View) String() string {
	return fmt.Sprintf("view(n=%d,epoch=%d)", len(v.members), v.epoch)
}

// Pool is the set of candidate replicas available for inclusion (§3.2):
// at least 2n/3 honest nodes among m ≥ n candidates at the start of each
// static period. Take returns candidates deterministically (sorted order)
// so honest replicas propose overlapping inclusion sets.
type Pool struct {
	candidates []types.ReplicaID // sorted, not yet taken
	taken      map[types.ReplicaID]struct{}
}

// NewPool builds a pool from candidate IDs.
func NewPool(candidates []types.ReplicaID) *Pool {
	p := &Pool{taken: make(map[types.ReplicaID]struct{})}
	p.candidates = append(p.candidates, candidates...)
	types.SortReplicas(p.candidates)
	return p
}

// Len returns how many candidates remain.
func (p *Pool) Len() int { return len(p.candidates) }

// Peek returns up to k candidates without removing them. The paper's
// inclusion consensus proposes pool.take(|cons-exclude|) (Alg. 1 line 41);
// candidates are only truly consumed once the inclusion consensus decides
// them (MarkTaken), since other replicas' proposals may win.
func (p *Pool) Peek(k int) []types.ReplicaID {
	if k > len(p.candidates) {
		k = len(p.candidates)
	}
	out := make([]types.ReplicaID, k)
	copy(out, p.candidates[:k])
	return out
}

// MarkTaken permanently removes the given candidates (they joined the
// committee). Per the convergence proof, no replica is included twice.
func (p *Pool) MarkTaken(ids []types.ReplicaID) {
	for _, id := range ids {
		p.taken[id] = struct{}{}
	}
	kept := p.candidates[:0]
	for _, id := range p.candidates {
		if _, gone := p.taken[id]; !gone {
			kept = append(kept, id)
		}
	}
	p.candidates = kept
}

// Contains reports whether id is still available.
func (p *Pool) Contains(id types.ReplicaID) bool {
	for _, c := range p.candidates {
		if c == id {
			return true
		}
	}
	return false
}
