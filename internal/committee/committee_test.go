package committee

import (
	"testing"
	"testing/quick"

	"github.com/zeroloss/zlb/internal/types"
)

func ids(xs ...int) []types.ReplicaID {
	out := make([]types.ReplicaID, len(xs))
	for i, x := range xs {
		out[i] = types.ReplicaID(x)
	}
	return out
}

func TestViewBasics(t *testing.T) {
	v := NewView(ids(3, 1, 2, 2))
	if v.Size() != 3 {
		t.Fatalf("size %d, want 3 (dedup)", v.Size())
	}
	if got := v.Members(); got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("members not sorted: %v", got)
	}
	if !v.Contains(2) || v.Contains(9) {
		t.Fatal("contains wrong")
	}
	if v.IndexOf(2) != 1 || v.IndexOf(9) != -1 {
		t.Fatal("IndexOf wrong")
	}
	if v.Quorum() != types.Quorum(3) || v.FaultThreshold() != types.FaultThreshold(3) {
		t.Fatal("threshold mismatch")
	}
}

func TestViewExcludeIncludeEpochs(t *testing.T) {
	v := NewView(ids(1, 2, 3, 4, 5))
	e0 := v.Epoch()
	fired := 0
	v.Subscribe(func() { fired++ })

	if !v.Exclude(ids(2, 4)) {
		t.Fatal("exclude reported no change")
	}
	if v.Size() != 3 || v.Contains(2) || v.Contains(4) {
		t.Fatal("exclusion not applied")
	}
	if v.Epoch() != e0+1 || fired != 1 {
		t.Fatalf("epoch %d fired %d", v.Epoch(), fired)
	}
	if v.Exclude(ids(2)) {
		t.Fatal("re-exclusion reported change")
	}
	if !v.Include(ids(7, 8)) {
		t.Fatal("include reported no change")
	}
	if v.Size() != 5 || !v.Contains(7) {
		t.Fatal("inclusion not applied")
	}
	if fired != 2 {
		t.Fatalf("subscribers fired %d times, want 2", fired)
	}
	got := v.Members()
	for i := 1; i < len(got); i++ {
		if got[i-1] >= got[i] {
			t.Fatalf("members not sorted after changes: %v", got)
		}
	}
}

func TestViewQuorumShrinksAtRuntime(t *testing.T) {
	// The exclusion consensus depends on thresholds following the live
	// view (Alg. 1 line 35).
	v := NewView(ids(1, 2, 3, 4, 5, 6, 7, 8, 9))
	if v.Quorum() != 6 {
		t.Fatalf("quorum %d, want 6", v.Quorum())
	}
	v.Exclude(ids(1, 2, 3))
	if v.Quorum() != 4 {
		t.Fatalf("quorum after exclusion %d, want 4", v.Quorum())
	}
}

func TestCoordinatorRotation(t *testing.T) {
	v := NewView(ids(1, 2, 3, 4))
	seen := map[types.ReplicaID]bool{}
	for r := types.Round(0); r < 8; r++ {
		c := v.Coordinator(1, 0, r)
		if !v.Contains(c) {
			t.Fatalf("coordinator %v not a member", c)
		}
		seen[c] = true
	}
	if len(seen) != 4 {
		t.Fatalf("rotation covered %d members, want 4", len(seen))
	}
	empty := NewView(nil)
	if empty.Coordinator(1, 0, 0) != types.NilReplica {
		t.Fatal("empty view coordinator")
	}
}

func TestViewCloneDropsSubscribers(t *testing.T) {
	v := NewView(ids(1, 2, 3))
	fired := 0
	v.Subscribe(func() { fired++ })
	c := v.Clone()
	c.Exclude(ids(1))
	if fired != 0 {
		t.Fatal("clone kept the original's subscribers")
	}
	if v.Size() != 3 {
		t.Fatal("clone shares membership")
	}
}

func TestPoolPeekAndTake(t *testing.T) {
	p := NewPool(ids(5, 3, 4))
	if p.Len() != 3 {
		t.Fatalf("len %d", p.Len())
	}
	got := p.Peek(2)
	if len(got) != 2 || got[0] != 3 || got[1] != 4 {
		t.Fatalf("peek = %v, want sorted [3 4]", got)
	}
	// Peek does not consume.
	if p.Len() != 3 {
		t.Fatal("peek consumed")
	}
	p.MarkTaken(ids(3))
	if p.Contains(3) || !p.Contains(4) {
		t.Fatal("take wrong")
	}
	if got := p.Peek(10); len(got) != 2 {
		t.Fatalf("peek beyond size = %v", got)
	}
	// No candidate returns twice (convergence proof assumption).
	p.MarkTaken(ids(4, 5))
	if p.Len() != 0 {
		t.Fatalf("pool should be empty, has %d", p.Len())
	}
}

// Property: after any sequence of exclusions, members stay sorted, sized
// consistently, and thresholds coherent.
func TestViewInvariantsProperty(t *testing.T) {
	f := func(excl []uint8) bool {
		v := NewView(ids(1, 2, 3, 4, 5, 6, 7, 8, 9, 10))
		for _, e := range excl {
			v.Exclude(ids(int(e%12) + 1))
		}
		m := v.Members()
		if len(m) != v.Size() {
			return false
		}
		for i := 1; i < len(m); i++ {
			if m[i-1] >= m[i] {
				return false
			}
		}
		return v.Quorum() == types.Quorum(v.Size()) &&
			v.BVRelay() == types.BVRelayThreshold(v.Size())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
