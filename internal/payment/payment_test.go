package payment

import (
	"math"
	"testing"
	"testing/quick"
)

// TestPaperWorkedExamples reproduces the §B analysis numbers: with
// D = G/10 (b = 0.1) and ρ = 0.9, the minimum finalization blockdepth is
// m = 28 at δ = 0.5, 37 at δ = 0.6, 46 at δ = 0.64 and 58 at δ = 0.66.
func TestPaperWorkedExamples(t *testing.T) {
	cases := []struct {
		delta     float64
		rho       float64
		wantDepth int
	}{
		{0.5, 0.9, 28},
		{0.6, 0.9, 37},
		{0.64, 0.9, 46},
		// Paper says 58, but its own formula gives m = 58.0032 at a = 51:
		// truncating loses the zero-loss guarantee, so we take the safe
		// ceiling (59). Recorded in EXPERIMENTS.md.
		{0.66, 0.9, 59},
	}
	for _, c := range cases {
		a := MaxBranches(c.delta)
		got, err := MinDepth(a, 0.1, c.rho)
		if err != nil {
			t.Fatalf("δ=%v: %v", c.delta, err)
		}
		if got != c.wantDepth {
			t.Errorf("δ=%v (a=%d): MinDepth = %d, want %d", c.delta, a, got, c.wantDepth)
		}
	}
}

// TestPaperRho55Discrepancy documents that the paper's claim "m = 4
// already guarantees zero-loss for ρ = 0.55" is inconsistent with its own
// Theorem .5: g(3, 0.1, 0.55, 4) < 0 and the true minimum is m = 5.
func TestPaperRho55Discrepancy(t *testing.T) {
	p := Params{Branches: 3, DepositFactor: 0.1, Rho: 0.55, Depth: 4}
	if ZeroLoss(p) {
		t.Fatal("g(3,0.1,0.55,4) unexpectedly ≥ 0; the paper's m=4 claim would hold")
	}
	got, err := MinDepth(3, 0.1, 0.55)
	if err != nil {
		t.Fatal(err)
	}
	if got != 5 {
		t.Fatalf("MinDepth(3, 0.1, 0.55) = %d, want 5", got)
	}
}

func TestMaxBranches(t *testing.T) {
	cases := []struct {
		delta float64
		want  int
	}{
		{0.5, 3}, // paper: "for a deceitful ratio of δ = 0.5, a = 3"
		{0.6, 6},
		{0.64, 14}, // ceil(0.36/0.02667) = 14
		{0.66, 51},
		// The raw bound at δ=0 is 1.5; the paper's usage rounds up (its
		// δ=0.64 example needs a=14=⌈13.5⌉ to reproduce m=46). Physical
		// branch counts come from MaxBranchesCount instead.
		{0.0, 2},
		{0.7, 0}, // beyond 2/3: unbounded
	}
	for _, c := range cases {
		if got := MaxBranches(c.delta); got != c.want {
			t.Errorf("MaxBranches(%v) = %d, want %d", c.delta, got, c.want)
		}
	}
}

func TestMaxBranchesCount(t *testing.T) {
	// n=90, d=49 (⌈5n/9⌉−1): a = (90−49)/(60−49) = 3.
	if got := MaxBranchesCount(90, 49); got != 3 {
		t.Errorf("MaxBranchesCount(90,49) = %d, want 3", got)
	}
	// Coalition at quorum: unbounded (0).
	if got := MaxBranchesCount(9, 6); got != 0 {
		t.Errorf("MaxBranchesCount(9,6) = %d, want 0", got)
	}
}

func TestZeroLossBoundary(t *testing.T) {
	// At the minimum depth zero loss holds; one block earlier it fails.
	for _, rho := range []float64{0.3, 0.55, 0.7, 0.9, 0.99} {
		for _, a := range []int{2, 3, 6, 14} {
			m, err := MinDepth(a, 0.1, rho)
			if err != nil {
				t.Fatal(err)
			}
			p := Params{Branches: a, DepositFactor: 0.1, Rho: rho, Depth: m}
			if !ZeroLoss(p) {
				t.Errorf("a=%d ρ=%v: not zero-loss at MinDepth %d", a, rho, m)
			}
			if m > 0 {
				p.Depth = m - 1
				if ZeroLoss(p) {
					t.Errorf("a=%d ρ=%v: zero-loss already at depth %d; MinDepth %d not minimal", a, rho, m-1, m)
				}
			}
		}
	}
}

func TestDepositFluxMatchesGandGain(t *testing.T) {
	p := Params{Branches: 3, DepositFactor: 0.1, Rho: 0.55, Depth: 5}
	gain := 1000.0
	flux := DepositFlux(p, gain)
	if math.Abs(flux-G(p)*gain) > 1e-9 {
		t.Fatalf("flux %v != g·G %v", flux, G(p)*gain)
	}
	if flux <= 0 {
		t.Fatalf("flux %v not positive at the paper's safe point", flux)
	}
}

func TestTolerableRhoInvertsMinDepth(t *testing.T) {
	for _, a := range []int{2, 3, 6} {
		for _, m := range []int{1, 4, 10, 28} {
			rho := TolerableRho(a, 0.1, m)
			p := Params{Branches: a, DepositFactor: 0.1, Rho: rho, Depth: m}
			// The bound is exact, so allow float rounding at g = 0.
			if G(p) < -1e-9 {
				t.Errorf("a=%d m=%d: ρ=%v should be tolerable, g=%v", a, m, rho, G(p))
			}
			p.Rho = math.Min(1, rho+0.01)
			if p.Rho < 1 && ZeroLoss(p) {
				t.Errorf("a=%d m=%d: ρ=%v above bound should lose", a, m, p.Rho)
			}
		}
	}
}

func TestPerReplicaDeposit(t *testing.T) {
	// Every coalition (≥ ⌈n/3⌉ replicas) must cover D = bG: with each
	// replica staking 3bG/n, a minimal coalition holds ≥ bG.
	for _, n := range []int{4, 9, 10, 90, 100} {
		per := PerReplicaDeposit(n, 0.1, 1_000_000)
		coalition := (n + 2) / 3
		if got := float64(per) * float64(coalition); got < 0.1*1_000_000 {
			t.Errorf("n=%d: minimal coalition deposit %v < D=%v", n, got, 0.1*1_000_000)
		}
	}
}

func TestParamsValidate(t *testing.T) {
	valid := Params{Branches: 2, DepositFactor: 0.1, Rho: 0.5, Depth: 3}
	if err := valid.Validate(); err != nil {
		t.Fatalf("valid params rejected: %v", err)
	}
	for _, bad := range []Params{
		{Branches: 0, DepositFactor: 0.1, Rho: 0.5},
		{Branches: 2, DepositFactor: 0, Rho: 0.5},
		{Branches: 2, DepositFactor: 0.1, Rho: 1.5},
		{Branches: 2, DepositFactor: 0.1, Rho: 0.5, Depth: -1},
	} {
		if err := bad.Validate(); err == nil {
			t.Errorf("invalid params accepted: %+v", bad)
		}
	}
}

func TestMinDepthEdgeCases(t *testing.T) {
	if m, err := MinDepth(1, 0.1, 0.9); err != nil || m != 0 {
		t.Errorf("single branch: (%d, %v), want (0, nil)", m, err)
	}
	if m, err := MinDepth(3, 0.1, 0); err != nil || m != 0 {
		t.Errorf("rho 0: (%d, %v), want (0, nil)", m, err)
	}
	if _, err := MinDepth(3, 0.1, 1); err == nil {
		t.Error("rho 1 must be impossible")
	}
}

// Property: g is monotonically non-decreasing in m and in b, and
// non-increasing in a and in ρ.
func TestGMonotonicity(t *testing.T) {
	f := func(aSeed uint8, bSeed, rhoSeed uint16, mSeed uint8) bool {
		a := 2 + int(aSeed%20)
		b := 0.01 + float64(bSeed%1000)/1000.0
		rho := float64(rhoSeed%999) / 1000.0
		m := int(mSeed % 60)
		p := Params{Branches: a, DepositFactor: b, Rho: rho, Depth: m}
		g0 := G(p)
		p.Depth = m + 1
		if G(p) < g0-1e-12 {
			return false
		}
		p.Depth = m
		p.DepositFactor = b + 0.1
		if G(p) < g0-1e-12 {
			return false
		}
		p.DepositFactor = b
		p.Branches = a + 1
		if G(p) > g0+1e-12 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// Property: MeasuredRho stays in [0,1] and is consistent.
func TestMeasuredRho(t *testing.T) {
	if got := MeasuredRho(0, 0); got != 0 {
		t.Fatalf("0/0 = %v, want 0", got)
	}
	if got := MeasuredRho(3, 4); got != 0.75 {
		t.Fatalf("3/4 = %v", got)
	}
}
