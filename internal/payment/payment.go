// Package payment implements the zero-loss payment analysis of the
// paper's Appendix B: deposit sizing, expected gain and punishment of a
// coalition attack, the deposit-flux condition g(a,b,ρ,m) ≥ 0 of
// Theorem .5, and the derived minimum finalization blockdepth. These are
// the formulas behind Figure 6 and the §B worked examples (m = 28 for
// ρ = 0.9, δ = 0.5, D = G/10, and so on).
package payment

import (
	"errors"
	"math"

	"github.com/zeroloss/zlb/internal/types"
)

// Params captures one attack economy (paper §B):
//
//   - Branches (a): how many branches the coalition can fork.
//   - DepositFactor (b): the coalition deposit as a factor of the
//     per-block gain bound, D = b·G.
//   - Rho (ρ): per-block probability that a disagreement attempt
//     succeeds.
//   - Depth (m): the finalization blockdepth before deposits return.
type Params struct {
	Branches      int
	DepositFactor float64
	Rho           float64
	Depth         int
}

// Errors returned by parameter validation.
var (
	ErrBadBranches = errors.New("payment: branches must be at least 1")
	ErrBadDeposit  = errors.New("payment: deposit factor must be positive")
	ErrBadRho      = errors.New("payment: rho must be in [0, 1]")
	ErrBadDepth    = errors.New("payment: depth must be non-negative")
	ErrNoZeroLoss  = errors.New("payment: no finite blockdepth achieves zero loss")
)

// Validate checks the parameter ranges.
func (p Params) Validate() error {
	if p.Branches < 1 {
		return ErrBadBranches
	}
	if p.DepositFactor <= 0 {
		return ErrBadDeposit
	}
	if p.Rho < 0 || p.Rho > 1 {
		return ErrBadRho
	}
	if p.Depth < 0 {
		return ErrBadDepth
	}
	return nil
}

// MaxBranches bounds the number of branches a coalition of the given
// deceitful ratio δ can sustain: a ≤ (1−δ) / (2/3−δ), the
// conflicting-histories bound the paper instantiates in §B ("one can
// derive the maximum number of branches from a ≤ (n−(f−q)) /
// (⌈2n/3⌉−(f−q))"). The paper's worked examples round up (δ = 0.64 →
// a = 14), so the ceiling is returned. δ ≥ 2/3 has no finite bound and
// returns 0.
func MaxBranches(delta float64) int {
	if delta < 0 {
		return 1
	}
	if delta >= 2.0/3.0 {
		return 0
	}
	a := (1 - delta) / (2.0/3.0 - delta)
	return int(math.Ceil(a - 1e-9))
}

// MaxBranchesCount is the integer form over committee counts:
// a ≤ (n−(f−q)) / (⌈2n/3⌉−(f−q)), with deceitful = f−q.
func MaxBranchesCount(n, deceitful int) int {
	den := types.Quorum(n) - deceitful
	if den <= 0 {
		return 0
	}
	return (n - deceitful) / den
}

// ExpectedGain is 𝒢(ρ̂) = (a−1)·ρ^{m+1}·G: the attackers win (a−1)·G only
// if the attack stays undetected for m+1 consecutive blocks (the deposit
// is withheld until finalization blockdepth m).
func ExpectedGain(p Params, gain float64) float64 {
	return float64(p.Branches-1) * math.Pow(p.Rho, float64(p.Depth+1)) * gain
}

// ExpectedPunishment is 𝒫(ρ̂) = (1−ρ^{m+1})·b·G: the deposit D = b·G is
// forfeited whenever the attack fails within the finalization window.
func ExpectedPunishment(p Params, gain float64) float64 {
	return (1 - math.Pow(p.Rho, float64(p.Depth+1))) * p.DepositFactor * gain
}

// DepositFlux is ∆ = 𝒫 − 𝒢 = g(a,b,ρ,m)·G, the expected deposit flux per
// attack attempt (Theorem .5).
func DepositFlux(p Params, gain float64) float64 {
	return ExpectedPunishment(p, gain) - ExpectedGain(p, gain)
}

// G computes g(a,b,ρ,m) = (1−ρ^{m+1})·b − (a−1)·ρ^{m+1}.
func G(p Params) float64 {
	rhoPow := math.Pow(p.Rho, float64(p.Depth+1))
	return (1-rhoPow)*p.DepositFactor - float64(p.Branches-1)*rhoPow
}

// ZeroLoss reports Theorem .5's condition: the system loses nothing in
// expectation iff g(a,b,ρ,m) ≥ 0.
func ZeroLoss(p Params) bool { return G(p) >= 0 }

// MinDepth returns the smallest finalization blockdepth m that yields
// zero loss for the given a, b and ρ: m ≥ log(c)/log(ρ) − 1 with
// c = b/(a−1+b). For ρ = 0 any depth works (returns 0); for ρ = 1 no
// finite depth works unless a = 1.
func MinDepth(branches int, depositFactor, rho float64) (int, error) {
	if branches < 1 {
		return 0, ErrBadBranches
	}
	if depositFactor <= 0 {
		return 0, ErrBadDeposit
	}
	if rho < 0 || rho > 1 {
		return 0, ErrBadRho
	}
	if branches == 1 || rho == 0 {
		return 0, nil
	}
	if rho == 1 {
		return 0, ErrNoZeroLoss
	}
	c := depositFactor / (float64(branches-1) + depositFactor)
	m := math.Log(c)/math.Log(rho) - 1
	depth := int(math.Ceil(m - 1e-9))
	if depth < 0 {
		depth = 0
	}
	// Guard against floating point at the boundary: bump only when g is
	// genuinely negative, not a rounding hair below zero.
	for G(Params{Branches: branches, DepositFactor: depositFactor, Rho: rho, Depth: depth}) < -1e-9 {
		depth++
	}
	return depth, nil
}

// TolerableRho returns the largest per-block attack success probability ρ
// that still yields zero loss at finalization blockdepth m:
// ρ ≤ c^{1/(m+1)} with c = b/(a−1+b).
func TolerableRho(branches int, depositFactor float64, depth int) float64 {
	if branches <= 1 {
		return 1
	}
	c := depositFactor / (float64(branches-1) + depositFactor)
	return math.Pow(c, 1/float64(depth+1))
}

// PerReplicaDeposit sizes each replica's stake so that every possible
// coalition (size ≥ ⌈n/3⌉) covers the full deposit D = b·G: each replica
// deposits 3·b·G/n (paper §B assumption 2).
func PerReplicaDeposit(n int, depositFactor float64, gainBound types.Amount) types.Amount {
	if n == 0 {
		return 0
	}
	per := 3 * depositFactor * float64(gainBound) / float64(n)
	return types.Amount(math.Ceil(per))
}

// CoalitionDeposit is the total deposit held by a coalition of the given
// size under PerReplicaDeposit staking.
func CoalitionDeposit(n, coalition int, depositFactor float64, gainBound types.Amount) types.Amount {
	return PerReplicaDeposit(n, depositFactor, gainBound) * types.Amount(coalition)
}

// MeasuredRho estimates ρ from experiment outcomes: successful
// disagreement attempts over total attempts (used to produce Fig. 6 from
// the Fig. 4 simulations).
func MeasuredRho(successes, attempts int) float64 {
	if attempts == 0 {
		return 0
	}
	return float64(successes) / float64(attempts)
}
