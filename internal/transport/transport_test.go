package transport

import (
	"encoding/gob"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"github.com/zeroloss/zlb/internal/simnet"
	"github.com/zeroloss/zlb/internal/types"
)

// echoHandler counts messages and echoes pings back to the sender.
type echoHandler struct {
	node *Node
	mu   sync.Mutex
	got  []string
}

type ping struct{ Text string }
type pong struct{ Text string }

func (h *echoHandler) OnMessage(from types.ReplicaID, msg simnet.Message) {
	switch m := msg.(type) {
	case *ping:
		h.node.Send(from, &pong{Text: m.Text})
	case *pong:
		h.mu.Lock()
		h.got = append(h.got, m.Text)
		h.mu.Unlock()
	}
}

func (h *echoHandler) OnTimer(payload any) {
	h.mu.Lock()
	h.got = append(h.got, fmt.Sprintf("timer:%v", payload))
	h.mu.Unlock()
}

func (h *echoHandler) snapshot() []string {
	h.mu.Lock()
	defer h.mu.Unlock()
	return append([]string(nil), h.got...)
}

func freePorts(t *testing.T, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addrs[i] = ln.Addr().String()
		ln.Close()
	}
	return addrs
}

func waitCond(t *testing.T, timeout time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func TestTCPRoundTrip(t *testing.T) {
	RegisterWireTypes()
	registerTestTypes()
	addrs := freePorts(t, 2)
	peers := map[types.ReplicaID]string{1: addrs[0], 2: addrs[1]}

	nodes := make([]*Node, 2)
	handlers := make([]*echoHandler, 2)
	for i := range nodes {
		n := NewNode(Config{Self: types.ReplicaID(i + 1), Listen: addrs[i], Peers: peers})
		h := &echoHandler{node: n}
		n.SetHandler(h)
		nodes[i] = n
		handlers[i] = h
		go func() { _ = n.Serve() }()
	}
	defer nodes[0].Close()
	defer nodes[1].Close()
	time.Sleep(50 * time.Millisecond) // listeners up

	nodes[0].Do(func() { nodes[0].Send(2, &ping{Text: "hello"}) })

	waitCond(t, 5*time.Second, "round trip", func() bool {
		got := handlers[0].snapshot()
		return len(got) == 1 && got[0] == "hello"
	})
	if sent := nodes[0].Sent.Load(); sent < 1 {
		t.Fatalf("Sent = %d after a delivered frame, want >= 1", sent)
	}
	health := nodes[0].PeerHealthFor(2)
	if health.State != StateConnected {
		t.Fatalf("peer 2 state = %v after a round trip, want connected", health.State)
	}
	if health.SentMsgs < 1 || health.SentBytes == 0 {
		t.Fatalf("peer 2 health counted %d msgs / %d bytes, want > 0", health.SentMsgs, health.SentBytes)
	}
}

func TestTCPTimer(t *testing.T) {
	RegisterWireTypes()
	registerTestTypes()
	addrs := freePorts(t, 1)
	n := NewNode(Config{Self: 1, Listen: addrs[0], Peers: map[types.ReplicaID]string{}})
	h := &echoHandler{node: n}
	n.SetHandler(h)
	go func() { _ = n.Serve() }()
	defer n.Close()
	time.Sleep(20 * time.Millisecond)

	n.SetTimer(30*time.Millisecond, "fire")
	cancelled := n.SetTimer(30*time.Millisecond, "cancelled")
	n.CancelTimer(cancelled)

	time.Sleep(300 * time.Millisecond)
	got := h.snapshot()
	if len(got) != 1 || got[0] != "timer:fire" {
		t.Fatalf("timer events = %v, want [timer:fire]", got)
	}
}

func TestTCPSelfSend(t *testing.T) {
	RegisterWireTypes()
	registerTestTypes()
	addrs := freePorts(t, 1)
	n := NewNode(Config{Self: 1, Listen: addrs[0], Peers: map[types.ReplicaID]string{}})
	h := &echoHandler{node: n}
	n.SetHandler(h)
	go func() { _ = n.Serve() }()
	defer n.Close()
	time.Sleep(20 * time.Millisecond)

	// Self-ping loops back through the queue: the handler replies to
	// itself with a pong.
	n.Do(func() { n.Send(1, &ping{Text: "self"}) })
	waitCond(t, 2*time.Second, "self send", func() bool {
		got := h.snapshot()
		return len(got) == 1 && got[0] == "self"
	})
}

// TestSendSurvivesListenerGap is the flaky-listener case the writer's
// redial loop exists for: the peer's listener is down when the send is
// enqueued (a restarting process between close and re-listen) and comes
// up only after the first dial attempts have failed. The frame must
// wait in the peer queue and land once the listener exists, instead of
// being dropped on the first refused dial.
func TestSendSurvivesListenerGap(t *testing.T) {
	RegisterWireTypes()
	registerTestTypes()
	addrs := freePorts(t, 2)
	peers := map[types.ReplicaID]string{1: addrs[0], 2: addrs[1]}
	n := NewNode(Config{
		Self: 1, Listen: addrs[0], Peers: peers,
		SendBackoff: 15 * time.Millisecond,
	})
	n.SetHandler(&echoHandler{node: n})
	go func() { _ = n.Serve() }()
	defer n.Close()
	time.Sleep(20 * time.Millisecond)

	got := make(chan string, 1)
	go func() {
		time.Sleep(60 * time.Millisecond) // the gap: dials until now are refused
		ln, err := net.Listen("tcp", addrs[1])
		if err != nil {
			t.Error(err)
			return
		}
		defer ln.Close()
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		var env envelope
		if err := gob.NewDecoder(conn).Decode(&env); err != nil {
			return
		}
		if p, ok := env.Msg.(*ping); ok {
			got <- p.Text
		}
	}()

	start := time.Now()
	n.Send(2, &ping{Text: "late"})
	if elapsed := time.Since(start); elapsed > 10*time.Millisecond {
		t.Fatalf("Send blocked for %v, want a non-blocking enqueue", elapsed)
	}
	select {
	case text := <-got:
		if text != "late" {
			t.Fatalf("received %q, want %q", text, "late")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("message dropped through the listener gap")
	}
	if h := n.PeerHealthFor(2); h.ConsecutiveFailures != 0 {
		t.Fatalf("consecutive failures = %d after delivery, want 0", h.ConsecutiveFailures)
	}
}

// TestSendNonBlockingToDeadPeer pins the tentpole property: sends to a
// peer that never comes up return immediately — the caller (in real use
// the event loop) never sleeps through backoff — and the peer's health
// degrades to backoff and then suspect while frames wait in its queue.
func TestSendNonBlockingToDeadPeer(t *testing.T) {
	RegisterWireTypes()
	registerTestTypes()
	addrs := freePorts(t, 2) // addrs[1] never listens
	peers := map[types.ReplicaID]string{1: addrs[0], 2: addrs[1]}
	n := NewNode(Config{
		Self: 1, Listen: addrs[0], Peers: peers,
		SendBackoff: 10 * time.Millisecond,
	})
	n.SetHandler(&echoHandler{node: n})
	go func() { _ = n.Serve() }()
	defer n.Close()
	time.Sleep(20 * time.Millisecond)

	start := time.Now()
	for i := 0; i < 100; i++ {
		n.Send(2, &ping{Text: "doomed"})
	}
	if elapsed := time.Since(start); elapsed > 200*time.Millisecond {
		t.Fatalf("100 sends to a dead peer took %v, want immediate enqueues", elapsed)
	}
	if sent := n.Sent.Load(); sent != 0 {
		t.Fatalf("Sent = %d to a dead peer, want 0", sent)
	}
	waitCond(t, 5*time.Second, "peer 2 suspect", func() bool {
		return n.PeerHealthFor(2).State == StateSuspect
	})
	if h := n.PeerHealthFor(2); h.QueueLen == 0 {
		t.Fatal("no frames waiting in the dead peer's queue")
	}
}

// TestDeadPeerDoesNotDelayHealthyPeers is the starvation regression the
// per-peer queues fix: with one dead peer and one live peer, sends
// interleaved to both from the event loop must reach the live peer
// promptly — under the old blocking-retry Send, each dead-peer send
// slept through its whole backoff budget on the loop first.
func TestDeadPeerDoesNotDelayHealthyPeers(t *testing.T) {
	RegisterWireTypes()
	registerTestTypes()
	addrs := freePorts(t, 3) // addrs[2] never listens
	peers := map[types.ReplicaID]string{1: addrs[0], 2: addrs[1], 3: addrs[2]}

	a := NewNode(Config{Self: 1, Listen: addrs[0], Peers: peers})
	ha := &echoHandler{node: a}
	a.SetHandler(ha)
	b := NewNode(Config{Self: 2, Listen: addrs[1], Peers: peers})
	b.SetHandler(&echoHandler{node: b})
	go func() { _ = a.Serve() }()
	go func() { _ = b.Serve() }()
	defer a.Close()
	defer b.Close()
	time.Sleep(50 * time.Millisecond)

	const rounds = 20
	start := time.Now()
	a.Do(func() {
		for i := 0; i < rounds; i++ {
			a.Send(3, &ping{Text: "void"}) // dead peer first
			a.Send(2, &ping{Text: fmt.Sprintf("live-%d", i)})
		}
	})
	waitCond(t, 5*time.Second, "all echoes from the live peer", func() bool {
		return len(ha.snapshot()) == rounds
	})
	// Generous CI bound; the old transport needed >= rounds * backoff
	// budget (tens of seconds) because every dead-peer send slept inline.
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Fatalf("healthy-peer traffic took %v behind a dead peer", elapsed)
	}
}

// TestQueueOverflowDropsOldest pins the backpressure policy for
// protocol traffic: a full peer queue displaces the oldest frame and
// counts the drop, rather than blocking the sender or dropping the
// newest state.
func TestQueueOverflowDropsOldest(t *testing.T) {
	RegisterWireTypes()
	registerTestTypes()
	addrs := freePorts(t, 2) // addrs[1] never listens
	peers := map[types.ReplicaID]string{1: addrs[0], 2: addrs[1]}
	n := NewNode(Config{
		Self: 1, Listen: addrs[0], Peers: peers,
		SendQueueSize: 8,
	})
	n.SetHandler(&echoHandler{node: n})
	go func() { _ = n.Serve() }()
	defer n.Close()

	for i := 0; i < 50; i++ {
		n.Send(2, &ping{Text: fmt.Sprintf("%d", i)})
	}
	h := n.PeerHealthFor(2)
	// The writer may hold one frame in hand; everything else beyond the
	// queue capacity must have been displaced and counted.
	if h.Drops < 50-uint64(h.QueueCap)-1 {
		t.Fatalf("drops = %d with queue cap %d after 50 sends, want >= %d",
			h.Drops, h.QueueCap, 50-h.QueueCap-1)
	}
	if n.Stats().SendDrops != h.Drops {
		t.Fatalf("node drop counter %d != peer drop counter %d", n.Stats().SendDrops, h.Drops)
	}
}

// TestTrySendBackpressure pins the fail-fast flavor: a full queue
// returns ErrBackpressure and displaces nothing.
func TestTrySendBackpressure(t *testing.T) {
	RegisterWireTypes()
	registerTestTypes()
	addrs := freePorts(t, 2) // addrs[1] never listens
	peers := map[types.ReplicaID]string{1: addrs[0], 2: addrs[1]}
	n := NewNode(Config{
		Self: 1, Listen: addrs[0], Peers: peers,
		SendQueueSize: 4,
	})
	n.SetHandler(&echoHandler{node: n})
	go func() { _ = n.Serve() }()
	defer n.Close()

	var hit bool
	for i := 0; i < 50 && !hit; i++ {
		if err := n.TrySend(2, &ping{Text: "x"}); err == ErrBackpressure {
			hit = true
		}
	}
	if !hit {
		t.Fatal("TrySend never returned ErrBackpressure against a full queue")
	}
	if drops := n.PeerHealthFor(2).Drops; drops != 0 {
		t.Fatalf("TrySend displaced %d frames, want 0", drops)
	}
}

// TestSendUnknownPeerFailsFast pins that an ID with no address is
// dropped immediately, without a queue or a writer.
func TestSendUnknownPeerFailsFast(t *testing.T) {
	RegisterWireTypes()
	registerTestTypes()
	addrs := freePorts(t, 1)
	n := NewNode(Config{Self: 1, Listen: addrs[0], Peers: map[types.ReplicaID]string{}})
	n.SetHandler(&echoHandler{node: n})
	go func() { _ = n.Serve() }()
	defer n.Close()
	time.Sleep(20 * time.Millisecond)

	start := time.Now()
	n.Send(99, &ping{Text: "nowhere"})
	if elapsed := time.Since(start); elapsed > 10*time.Millisecond {
		t.Fatalf("unknown-peer send took %v, want immediate drop", elapsed)
	}
	if sent := n.Sent.Load(); sent != 0 {
		t.Fatal("unknown-peer send reported as delivered")
	}
}

// TestCloseWithSaturatedQueue is the shutdown-deadlock regression: the
// old Close pushed a stop sentinel through the event queue and blocked
// forever when the queue was full at shutdown. Close must return even
// with the loop wedged and the queue saturated.
func TestCloseWithSaturatedQueue(t *testing.T) {
	RegisterWireTypes()
	registerTestTypes()
	addrs := freePorts(t, 1)
	n := NewNode(Config{
		Self: 1, Listen: addrs[0], Peers: map[types.ReplicaID]string{},
		QueueSize: 4,
	})
	n.SetHandler(&echoHandler{node: n})
	served := make(chan error, 1)
	go func() { served <- n.Serve() }()
	time.Sleep(20 * time.Millisecond)

	// Wedge the event loop, then saturate the queue behind it.
	unblock := make(chan struct{})
	n.Do(func() { <-unblock })
	waitCond(t, 2*time.Second, "queue saturation", func() bool {
		before := n.Stats().EventsDropped
		n.Send(1, &ping{Text: "filler"})
		return n.Stats().EventsDropped > before
	})

	done := make(chan struct{})
	go func() {
		n.Close()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Close deadlocked on a saturated event queue")
	}

	// The wedged loop still drains its backlog and exits once released.
	close(unblock)
	select {
	case err := <-served:
		if err != nil {
			t.Fatalf("Serve returned %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Serve did not exit after Close")
	}
}

// TestSubmitBackpressureAck pins the client-facing edge of the policy:
// a SubmitTx that lands while the event queue is full is refused with a
// typed backpressure ack on the same connection — the wallet sees the
// overload — while a submit with queue room is acked OK.
func TestSubmitBackpressureAck(t *testing.T) {
	RegisterWireTypes()
	registerTestTypes()
	addrs := freePorts(t, 1)
	n := NewNode(Config{
		Self: 1, Listen: addrs[0], Peers: map[types.ReplicaID]string{},
		QueueSize: 2,
	})
	n.SetHandler(&echoHandler{node: n})
	go func() { _ = n.Serve() }()
	defer n.Close()
	time.Sleep(20 * time.Millisecond)

	submit := func() SubmitAck {
		t.Helper()
		conn, err := net.DialTimeout("tcp", addrs[0], 2*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		defer conn.Close()
		if err := gob.NewEncoder(conn).Encode(envelope{From: 0, Msg: &SubmitTx{Tx: nil}}); err != nil {
			t.Fatal(err)
		}
		var resp envelope
		if err := gob.NewDecoder(conn).Decode(&resp); err != nil {
			t.Fatalf("reading submit ack: %v", err)
		}
		ack, ok := resp.Msg.(*SubmitAck)
		if !ok {
			t.Fatalf("ack frame carries %T, want *SubmitAck", resp.Msg)
		}
		return *ack
	}

	if ack := submit(); !ack.OK {
		t.Fatalf("submit with a free queue refused: %+v", ack)
	}

	// Wedge the loop and saturate the queue: the next submit must be
	// refused with the typed error.
	unblock := make(chan struct{})
	defer close(unblock)
	n.Do(func() { <-unblock })
	waitCond(t, 2*time.Second, "queue saturation", func() bool {
		before := n.Stats().EventsDropped
		n.Send(1, &ping{Text: "filler"})
		return n.Stats().EventsDropped > before
	})

	ack := submit()
	if ack.OK {
		t.Fatal("submit against a saturated queue was acked OK")
	}
	if ack.Err != ErrBackpressure.Error() {
		t.Fatalf("ack error = %q, want %q", ack.Err, ErrBackpressure.Error())
	}
	if n.Stats().SubmitBackpressure == 0 {
		t.Fatal("backpressure counter not incremented")
	}
}

// TestPeerRestartUnderLoad drives the writer through a full peer
// lifecycle: steady traffic to a live peer, the peer dies mid-stream
// (health: connected → backoff/suspect), restarts on the same address,
// and the writer redials and delivers subsequent traffic (health:
// connected again) without the sender ever blocking.
func TestPeerRestartUnderLoad(t *testing.T) {
	RegisterWireTypes()
	registerTestTypes()
	addrs := freePorts(t, 2)
	peers := map[types.ReplicaID]string{1: addrs[0], 2: addrs[1]}

	mkReceiver := func() *Node {
		b := NewNode(Config{Self: 2, Listen: addrs[1], Peers: peers})
		b.SetHandler(&echoHandler{node: b})
		go func() { _ = b.Serve() }()
		return b
	}

	a := NewNode(Config{
		Self: 1, Listen: addrs[0], Peers: peers,
		SendBackoff:  10 * time.Millisecond,
		WriteTimeout: 300 * time.Millisecond,
	})
	ha := &echoHandler{node: a}
	a.SetHandler(ha)
	go func() { _ = a.Serve() }()
	defer a.Close()

	b := mkReceiver()
	time.Sleep(50 * time.Millisecond)

	// Sustained load for the whole test: a pinger that never stops.
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			case <-time.After(5 * time.Millisecond):
				a.Send(2, &ping{Text: fmt.Sprintf("seq-%d", i)})
			}
		}
	}()

	waitCond(t, 5*time.Second, "initial traffic flowing", func() bool {
		return len(ha.snapshot()) > 3 && a.PeerHealthFor(2).State == StateConnected
	})

	// Kill the receiver: health must leave connected while load continues.
	b.Close()
	waitCond(t, 10*time.Second, "peer 2 degraded after kill", func() bool {
		s := a.PeerHealthFor(2).State
		return s == StateBackoff || s == StateSuspect
	})

	// Restart on the same address: the writer must redial and deliver.
	before := len(ha.snapshot())
	b = mkReceiver()
	defer b.Close()
	waitCond(t, 10*time.Second, "traffic resumed after restart", func() bool {
		return len(ha.snapshot()) > before && a.PeerHealthFor(2).State == StateConnected
	})
	if rc := a.PeerHealthFor(2).Reconnects; rc == 0 {
		t.Fatal("reconnect counter did not advance across the restart")
	}
}

var registerOnce sync.Once

// registerTestTypes registers the test-only ping/pong frames exactly once
// (gob.Register panics on duplicates).
func registerTestTypes() {
	registerOnce.Do(func() {
		gob.Register(&ping{})
		gob.Register(&pong{})
	})
}
