package transport

import (
	"encoding/gob"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"github.com/zeroloss/zlb/internal/simnet"
	"github.com/zeroloss/zlb/internal/types"
)

// echoHandler counts messages and echoes pings back to the sender.
type echoHandler struct {
	node *Node
	mu   sync.Mutex
	got  []string
}

type ping struct{ Text string }
type pong struct{ Text string }

func (h *echoHandler) OnMessage(from types.ReplicaID, msg simnet.Message) {
	switch m := msg.(type) {
	case *ping:
		h.node.Send(from, &pong{Text: m.Text})
	case *pong:
		h.mu.Lock()
		h.got = append(h.got, m.Text)
		h.mu.Unlock()
	}
}

func (h *echoHandler) OnTimer(payload any) {
	h.mu.Lock()
	h.got = append(h.got, fmt.Sprintf("timer:%v", payload))
	h.mu.Unlock()
}

func (h *echoHandler) snapshot() []string {
	h.mu.Lock()
	defer h.mu.Unlock()
	return append([]string(nil), h.got...)
}

func freePorts(t *testing.T, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addrs[i] = ln.Addr().String()
		ln.Close()
	}
	return addrs
}

func TestTCPRoundTrip(t *testing.T) {
	RegisterWireTypes()
	registerTestTypes()
	addrs := freePorts(t, 2)
	peers := map[types.ReplicaID]string{1: addrs[0], 2: addrs[1]}

	nodes := make([]*Node, 2)
	handlers := make([]*echoHandler, 2)
	for i := range nodes {
		n := NewNode(Config{Self: types.ReplicaID(i + 1), Listen: addrs[i], Peers: peers})
		h := &echoHandler{node: n}
		n.SetHandler(h)
		nodes[i] = n
		handlers[i] = h
		go func() { _ = n.Serve() }()
	}
	defer nodes[0].Close()
	defer nodes[1].Close()
	time.Sleep(50 * time.Millisecond) // listeners up

	nodes[0].Do(func() { nodes[0].Send(2, &ping{Text: "hello"}) })

	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if got := handlers[0].snapshot(); len(got) == 1 && got[0] == "hello" {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("round trip failed: %v", handlers[0].snapshot())
}

func TestTCPTimer(t *testing.T) {
	RegisterWireTypes()
	registerTestTypes()
	addrs := freePorts(t, 1)
	n := NewNode(Config{Self: 1, Listen: addrs[0], Peers: map[types.ReplicaID]string{}})
	h := &echoHandler{node: n}
	n.SetHandler(h)
	go func() { _ = n.Serve() }()
	defer n.Close()
	time.Sleep(20 * time.Millisecond)

	n.SetTimer(30*time.Millisecond, "fire")
	cancelled := n.SetTimer(30*time.Millisecond, "cancelled")
	n.CancelTimer(cancelled)

	time.Sleep(300 * time.Millisecond)
	got := h.snapshot()
	if len(got) != 1 || got[0] != "timer:fire" {
		t.Fatalf("timer events = %v, want [timer:fire]", got)
	}
}

func TestTCPSelfSend(t *testing.T) {
	RegisterWireTypes()
	registerTestTypes()
	addrs := freePorts(t, 1)
	n := NewNode(Config{Self: 1, Listen: addrs[0], Peers: map[types.ReplicaID]string{}})
	h := &echoHandler{node: n}
	n.SetHandler(h)
	go func() { _ = n.Serve() }()
	defer n.Close()
	time.Sleep(20 * time.Millisecond)

	// Self-ping loops back through the queue: the handler replies to
	// itself with a pong.
	n.Do(func() { n.Send(1, &ping{Text: "self"}) })
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if got := h.snapshot(); len(got) == 1 && got[0] == "self" {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("self send failed: %v", h.snapshot())
}

// TestSendRetriesThroughListenerGap is the flaky-listener case the
// backoff exists for: the peer's listener is down when the send starts
// (a restarting process between close and re-listen) and comes up only
// after the first dial attempts have failed. The message must survive
// the gap instead of being dropped on the first refused dial.
func TestSendRetriesThroughListenerGap(t *testing.T) {
	RegisterWireTypes()
	registerTestTypes()
	addrs := freePorts(t, 2)
	peers := map[types.ReplicaID]string{1: addrs[0], 2: addrs[1]}
	n := NewNode(Config{
		Self: 1, Listen: addrs[0], Peers: peers,
		SendAttempts: 6, SendBackoff: 15 * time.Millisecond,
	})
	n.SetHandler(&echoHandler{node: n})
	go func() { _ = n.Serve() }()
	defer n.Close()
	time.Sleep(20 * time.Millisecond)

	got := make(chan string, 1)
	go func() {
		time.Sleep(60 * time.Millisecond) // the gap: dials until now are refused
		ln, err := net.Listen("tcp", addrs[1])
		if err != nil {
			t.Error(err)
			return
		}
		defer ln.Close()
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		var env envelope
		if err := gob.NewDecoder(conn).Decode(&env); err != nil {
			return
		}
		if p, ok := env.Msg.(*ping); ok {
			got <- p.Text
		}
	}()

	start := time.Now()
	n.Send(2, &ping{Text: "late"})
	select {
	case text := <-got:
		if text != "late" {
			t.Fatalf("received %q, want %q", text, "late")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("message dropped through the listener gap")
	}
	if elapsed := time.Since(start); elapsed < 40*time.Millisecond {
		t.Fatalf("send finished in %v, before the listener existed", elapsed)
	}
}

// TestSendBoundedRetryBudget pins that the backoff is bounded: a peer
// that never comes up costs a few attempts with backoff in between, not
// a hang, and the send is reported as not delivered.
func TestSendBoundedRetryBudget(t *testing.T) {
	RegisterWireTypes()
	registerTestTypes()
	addrs := freePorts(t, 2) // addrs[1] never listens
	peers := map[types.ReplicaID]string{1: addrs[0], 2: addrs[1]}
	n := NewNode(Config{
		Self: 1, Listen: addrs[0], Peers: peers,
		SendAttempts: 3, SendBackoff: 20 * time.Millisecond,
	})
	n.SetHandler(&echoHandler{node: n})
	go func() { _ = n.Serve() }()
	defer n.Close()
	time.Sleep(20 * time.Millisecond)

	start := time.Now()
	n.Send(2, &ping{Text: "doomed"})
	elapsed := time.Since(start)
	if n.Sent != 0 {
		t.Fatal("send to a dead peer reported as delivered")
	}
	// Two backoff sleeps (attempts 1→2, 2→3) with full jitter: at least
	// backoff/2 + backoff each ≥ 30 ms total; far below the unbounded
	// case either way.
	if elapsed < 25*time.Millisecond {
		t.Fatalf("gave up after %v without backing off", elapsed)
	}
	if elapsed > 2*time.Second {
		t.Fatalf("retry budget unbounded: %v", elapsed)
	}
}

// TestSendUnknownPeerFailsFast pins that retries apply only to
// potentially transient failures: an ID with no address is dropped
// immediately, without burning the backoff budget.
func TestSendUnknownPeerFailsFast(t *testing.T) {
	RegisterWireTypes()
	registerTestTypes()
	addrs := freePorts(t, 1)
	n := NewNode(Config{Self: 1, Listen: addrs[0], Peers: map[types.ReplicaID]string{}})
	n.SetHandler(&echoHandler{node: n})
	go func() { _ = n.Serve() }()
	defer n.Close()
	time.Sleep(20 * time.Millisecond)

	start := time.Now()
	n.Send(99, &ping{Text: "nowhere"})
	if elapsed := time.Since(start); elapsed > 10*time.Millisecond {
		t.Fatalf("unknown-peer send took %v, want immediate drop", elapsed)
	}
	if n.Sent != 0 {
		t.Fatal("unknown-peer send reported as delivered")
	}
}

var registerOnce sync.Once

// registerTestTypes registers the test-only ping/pong frames exactly once
// (gob.Register panics on duplicates).
func registerTestTypes() {
	registerOnce.Do(func() {
		gob.Register(&ping{})
		gob.Register(&pong{})
	})
}
