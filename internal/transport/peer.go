package transport

import (
	"encoding/gob"
	"fmt"
	"io"
	"math/rand"
	"net"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/zeroloss/zlb/internal/simnet"
	"github.com/zeroloss/zlb/internal/types"
)

// PeerState is a peer's connection health as seen by this node's writer.
type PeerState int32

// Peer health states. A peer is idle until the first send targets it,
// connected while its connection accepts writes, backoff while the
// writer waits out a failure, and suspect once failures run
// consecutive past Config.SuspectAfter — the operator-facing "this
// peer looks dead" signal. Any successful write returns it to
// connected.
const (
	StateIdle PeerState = iota
	StateConnected
	StateBackoff
	StateSuspect
)

// String implements fmt.Stringer.
func (s PeerState) String() string {
	switch s {
	case StateIdle:
		return "idle"
	case StateConnected:
		return "connected"
	case StateBackoff:
		return "backoff"
	case StateSuspect:
		return "suspect"
	}
	return "unknown"
}

// MarshalJSON renders the state as its name, for /status.
func (s PeerState) MarshalJSON() ([]byte, error) {
	return []byte(`"` + s.String() + `"`), nil
}

// UnmarshalJSON parses a state name back (status consumers, tests).
func (s *PeerState) UnmarshalJSON(b []byte) error {
	name := strings.Trim(string(b), `"`)
	for _, st := range []PeerState{StateIdle, StateConnected, StateBackoff, StateSuspect} {
		if st.String() == name {
			*s = st
			return nil
		}
	}
	return fmt.Errorf("transport: unknown peer state %q", name)
}

// PeerHealth is a point-in-time snapshot of one peer's send path.
type PeerHealth struct {
	ID                  types.ReplicaID `json:"id"`
	State               PeerState       `json:"state"`
	ConsecutiveFailures int64           `json:"consecutive_failures"`
	// LastSuccessAgo is the time since the last successful write to
	// this peer; negative when no write has ever succeeded.
	LastSuccessAgo time.Duration `json:"last_success_ago_ns"`
	SentMsgs       uint64        `json:"sent_msgs"`
	SentBytes      uint64        `json:"sent_bytes"`
	Drops          uint64        `json:"drops"`
	Reconnects     uint64        `json:"reconnects"`
	QueueLen       int           `json:"queue_len"`
	QueueCap       int           `json:"queue_cap"`
}

// PeerHealth snapshots every configured peer (self excluded), sorted by
// ID. Peers no send has targeted yet report as idle with zero counters.
func (n *Node) PeerHealth() []PeerHealth {
	ids := make([]types.ReplicaID, 0, len(n.cfg.Peers))
	for id := range n.cfg.Peers {
		if id != n.cfg.Self {
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	out := make([]PeerHealth, 0, len(ids))
	for _, id := range ids {
		out = append(out, n.PeerHealthFor(id))
	}
	return out
}

// PeerHealthFor snapshots one peer's health. Unknown or never-contacted
// IDs report idle.
func (n *Node) PeerHealthFor(id types.ReplicaID) PeerHealth {
	n.mu.Lock()
	p := n.peers[id]
	n.mu.Unlock()
	if p == nil {
		return PeerHealth{ID: id, State: StateIdle, LastSuccessAgo: -1, QueueCap: n.cfg.SendQueueSize}
	}
	return p.health()
}

// peer is one remote replica's send path: a bounded queue drained by a
// dedicated writer goroutine that owns the connection lifecycle. All
// health fields are atomics — updated by the writer and the enqueuers,
// read by metrics scrapes — so no snapshot ever takes the node lock on
// the hot path.
type peer struct {
	node *Node
	id   types.ReplicaID
	addr string

	q chan simnet.Message

	// connMu guards conn only for the benefit of Node.Close, which
	// snaps the live connection to unblock a writer mid-write; the
	// writer goroutine is the only other toucher.
	connMu sync.Mutex
	conn   net.Conn

	state       atomic.Int32
	consecFails atomic.Int64
	lastSuccess atomic.Int64 // wall nanos of the last successful write; 0 = never
	sentMsgs    atomic.Uint64
	sentBytes   atomic.Uint64
	drops       atomic.Uint64
	reconnects  atomic.Uint64
	dials       atomic.Uint64

	rng rngSource // jitter; only the writer goroutine draws from it
}

// rngSource wraps a rand.Rand with a mutex: jitter is drawn by the
// writer, but tryEnqueue callers never touch it, so this is belt and
// braces for future use rather than contention.
type rngSource struct {
	mu sync.Mutex
	r  *rand.Rand
}

func (r *rngSource) jitter(d time.Duration) time.Duration {
	r.mu.Lock()
	defer r.mu.Unlock()
	return d/2 + time.Duration(r.r.Int63n(int64(d/2)+1))
}

func newPeer(n *Node, id types.ReplicaID, addr string) *peer {
	return &peer{
		node: n,
		id:   id,
		addr: addr,
		q:    make(chan simnet.Message, n.cfg.SendQueueSize),
		rng:  rngSource{r: rand.New(rand.NewSource(int64(n.cfg.Self)*104729 + int64(id)*31 + 13))},
	}
}

// health snapshots the peer's counters.
func (p *peer) health() PeerHealth {
	ago := time.Duration(-1)
	if last := p.lastSuccess.Load(); last > 0 {
		ago = time.Since(time.Unix(0, last))
	}
	return PeerHealth{
		ID:                  p.id,
		State:               PeerState(p.state.Load()),
		ConsecutiveFailures: p.consecFails.Load(),
		LastSuccessAgo:      ago,
		SentMsgs:            p.sentMsgs.Load(),
		SentBytes:           p.sentBytes.Load(),
		Drops:               p.drops.Load(),
		Reconnects:          p.reconnects.Load(),
		QueueLen:            len(p.q),
		QueueCap:            cap(p.q),
	}
}

// enqueue adds msg to the peer's queue, displacing the oldest queued
// frame when full (drop-oldest: under overload the freshest consensus
// state survives, and quorum protocols recover whatever is lost).
func (p *peer) enqueue(msg simnet.Message) {
	for {
		select {
		case p.q <- msg:
			return
		default:
		}
		select {
		case <-p.q:
			p.countDrop()
		default:
			// Lost the displacement race to the writer draining the
			// queue; the next iteration's send will almost surely fit.
		}
	}
}

// tryEnqueue adds msg or fails fast with ErrBackpressure, displacing
// nothing.
func (p *peer) tryEnqueue(msg simnet.Message) error {
	select {
	case p.q <- msg:
		return nil
	default:
		return ErrBackpressure
	}
}

func (p *peer) countDrop() {
	p.drops.Add(1)
	p.node.sendDrops.Add(1)
	if p.node.warnDrop.allow(time.Second) {
		p.node.cfg.Logger.Warnf("transport: send queue to replica %v full, dropped %d frames to it so far",
			p.id, p.drops.Load())
	}
}

// writeLoop drains the queue for the writer's lifetime, owning the
// connection: dial with jittered exponential backoff, write each frame
// under a deadline, reconnect and retry on failure. Dial failures cost
// backoff only — a frame is never dropped because the peer is
// unreachable, so traffic queued across a partition flushes on heal —
// while writes that fail on an established connection consume the
// frame's Config.SendAttempts budget before it is dropped.
func (p *peer) writeLoop() {
	defer p.node.wg.Done()
	defer p.closeConn()
	var enc *gob.Encoder
	var counter *countingWriter
	backoff := p.node.cfg.SendBackoff
	for {
		var msg simnet.Message
		select {
		case <-p.node.stopIO:
			return
		case msg = <-p.q:
		}
		writeFails := 0
		for {
			if p.currentConn() == nil {
				conn := p.connect(&backoff)
				if conn == nil {
					return // shutdown
				}
				counter = &countingWriter{w: conn}
				enc = gob.NewEncoder(counter)
			}
			if p.write(enc, counter, msg) {
				backoff = p.node.cfg.SendBackoff
				break
			}
			enc, counter = nil, nil
			writeFails++
			if writeFails >= p.node.cfg.SendAttempts {
				p.countDrop()
				break
			}
			if !p.sleep(&backoff) {
				return // shutdown
			}
		}
	}
}

// connect dials until it succeeds or the node shuts down, sleeping the
// jittered backoff between attempts and escalating the health state to
// backoff then suspect.
func (p *peer) connect(backoff *time.Duration) net.Conn {
	for {
		select {
		case <-p.node.stopIO:
			return nil
		default:
		}
		p.dials.Add(1)
		conn, err := net.DialTimeout("tcp", p.addr, p.node.cfg.DialBackoff)
		if err == nil {
			p.setConn(conn)
			if p.dials.Load() > 1 {
				p.reconnects.Add(1)
			}
			p.state.Store(int32(StateConnected))
			return conn
		}
		p.fail()
		if !p.sleep(backoff) {
			return nil
		}
	}
}

// write sends one frame under the write deadline. On failure the
// connection is closed and failure counters advance.
func (p *peer) write(enc *gob.Encoder, counter *countingWriter, msg simnet.Message) bool {
	conn := p.currentConn()
	if conn == nil {
		return false
	}
	if wt := p.node.cfg.WriteTimeout; wt > 0 {
		conn.SetWriteDeadline(time.Now().Add(wt))
	}
	before := counter.n
	if err := enc.Encode(envelope{From: p.node.cfg.Self, Msg: msg}); err != nil {
		p.closeConn()
		p.fail()
		return false
	}
	conn.SetWriteDeadline(time.Time{})
	p.sentMsgs.Add(1)
	p.sentBytes.Add(counter.n - before)
	p.node.Sent.Add(1)
	p.consecFails.Store(0)
	p.lastSuccess.Store(time.Now().UnixNano())
	p.state.Store(int32(StateConnected))
	return true
}

// fail records one dial or write failure and degrades the health state.
func (p *peer) fail() {
	fails := p.consecFails.Add(1)
	if fails >= int64(p.node.cfg.SuspectAfter) {
		p.state.Store(int32(StateSuspect))
	} else {
		p.state.Store(int32(StateBackoff))
	}
}

// sleep waits out the jittered backoff (doubling it, capped at
// DialBackoff) unless shutdown interrupts; it reports false on shutdown.
func (p *peer) sleep(backoff *time.Duration) bool {
	d := p.rng.jitter(*backoff)
	if *backoff *= 2; *backoff > p.node.cfg.DialBackoff {
		*backoff = p.node.cfg.DialBackoff
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-p.node.stopIO:
		return false
	case <-t.C:
		return true
	}
}

func (p *peer) currentConn() net.Conn {
	p.connMu.Lock()
	defer p.connMu.Unlock()
	return p.conn
}

func (p *peer) setConn(conn net.Conn) {
	p.connMu.Lock()
	defer p.connMu.Unlock()
	p.conn = conn
}

// closeConn closes and clears the live connection; called by the writer
// on write failure and by Node.Close to unblock a writer mid-write.
func (p *peer) closeConn() {
	p.connMu.Lock()
	defer p.connMu.Unlock()
	if p.conn != nil {
		p.conn.Close()
		p.conn = nil
	}
}

// countingWriter counts bytes flowing to the connection, feeding the
// per-peer sent-bytes health counter.
type countingWriter struct {
	w io.Writer
	n uint64
}

func (c *countingWriter) Write(b []byte) (int, error) {
	n, err := c.w.Write(b)
	c.n += uint64(n)
	return n, err
}

// rateLimiter allows one event per interval, CAS-guarded so concurrent
// callers never double-log.
type rateLimiter struct {
	last atomic.Int64
}

func (r *rateLimiter) allow(every time.Duration) bool {
	now := time.Now().UnixNano()
	last := r.last.Load()
	return now-last >= int64(every) && r.last.CompareAndSwap(last, now)
}
