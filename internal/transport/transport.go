// Package transport runs an event-driven replica (any simnet.Handler,
// e.g. an asmr.Replica) over real TCP instead of the simulator: the same
// protocol state machines, driven by a single event loop per node, with
// length-prefixed gob frames between peers. Connections are lazily dialed
// and redialed with backoff; message authenticity is end-to-end (every
// accountable statement is signed), so the transport only provides
// framing and ordering, exactly like the paper's raw TCP replica links.
//
// Framing deliberately still uses encoding/gob while the consensus
// payload internals (transaction batches, PoF sets, replica lists)
// moved to the binary codecs of internal/wire: the transport must
// round-trip ~25 heterogeneous protocol message types behind one
// interface, which gob's self-describing streams handle with a single
// RegisterWireTypes call, and peer framing is not on the simulator's
// benchmarked hot path — the wire codecs are, because their payloads
// are built and decoded inside consensus. A replica therefore sends
// gob-framed messages whose payload bytes are wire-encoded.
package transport

import (
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"sync"
	"time"

	"github.com/zeroloss/zlb/internal/accountability"
	"github.com/zeroloss/zlb/internal/asmr"
	"github.com/zeroloss/zlb/internal/bincon"
	"github.com/zeroloss/zlb/internal/membership"
	"github.com/zeroloss/zlb/internal/rbc"
	"github.com/zeroloss/zlb/internal/sbc"
	"github.com/zeroloss/zlb/internal/simnet"
	"github.com/zeroloss/zlb/internal/types"
	"github.com/zeroloss/zlb/internal/utxo"
)

// RegisterWireTypes registers every protocol message with gob. Call once
// per process before serving or dialing.
func RegisterWireTypes() {
	gob.Register(&rbc.Init{})
	gob.Register(&rbc.Echo{})
	gob.Register(&rbc.Ready{})
	gob.Register(&rbc.PayloadReq{})
	gob.Register(&rbc.PayloadResp{})
	gob.Register(&bincon.Est{})
	gob.Register(&bincon.Coord{})
	gob.Register(&bincon.Aux{})
	gob.Register(&bincon.Decide{})
	gob.Register(&sbc.ProposalReq{})
	gob.Register(&sbc.ProposalResp{})
	gob.Register(&asmr.Confirm{})
	gob.Register(&asmr.BlockReq{})
	gob.Register(&asmr.BlockResp{})
	gob.Register(&asmr.PoFGossip{})
	gob.Register(&asmr.JoinNotice{})
	gob.Register(&asmr.CatchupReq{})
	gob.Register(&asmr.CatchupResp{})
	gob.Register(&membership.PoFBroadcast{})
	gob.Register(&accountability.Certificate{})
	gob.Register(&utxo.Transaction{})
	gob.Register(&SubmitTx{})
	gob.Register(&SyncFrame{})
}

// envelope is the wire frame between peers.
type envelope struct {
	From types.ReplicaID
	Msg  any
}

// SubmitTx is the client-facing request carrying a transaction to a
// replica's mempool.
type SubmitTx struct {
	Tx *utxo.Transaction
}

// SyncFrame carries a durable-store catch-up payload between nodes: a
// wire.EncodeSyncReq payload when Req is set, a wire.EncodeSyncResp
// payload otherwise. The binary payloads keep the store's CRC-framed
// records end-to-end verifiable; gob only provides the outer framing,
// like every other peer message.
type SyncFrame struct {
	Req     bool
	Payload []byte
}

// event drives the node's single-threaded loop.
type event struct {
	kind    int // 1 = message, 2 = timer, 3 = closure
	from    types.ReplicaID
	msg     simnet.Message
	payload any
	fn      func()
}

// Config parameterizes a TCP node.
type Config struct {
	// Self is this replica's ID.
	Self types.ReplicaID
	// Listen is the local listen address, e.g. ":7001".
	Listen string
	// Peers maps every replica ID to its dialable address.
	Peers map[types.ReplicaID]string
	// DialBackoff bounds reconnect pacing: it is both the dial timeout of
	// a single connection attempt and the cap on the retry backoff
	// schedule (default 500 ms).
	DialBackoff time.Duration
	// SendAttempts bounds how many delivery attempts one Send makes
	// before dropping the message (default 3). Each failed attempt drops
	// the cached connection and redials after a jittered backoff.
	SendAttempts int
	// SendBackoff is the initial backoff between send attempts (default
	// 20 ms). It doubles per retry, capped at DialBackoff, with full
	// jitter so restarting peers are not hammered in lockstep.
	SendBackoff time.Duration
	// WriteTimeout is the per-attempt write deadline (default 2 s): a
	// peer that accepted the connection but stopped reading fails the
	// attempt instead of wedging the event loop forever.
	WriteTimeout time.Duration
	// QueueSize bounds the event queue (default 65536).
	QueueSize int
}

// Node hosts one event-driven replica over TCP. It implements simnet.Env,
// so protocol components constructed with it work unchanged.
type Node struct {
	cfg     Config
	handler simnet.Handler
	events  chan event
	start   time.Time

	mu      sync.Mutex
	conns   map[types.ReplicaID]*peerConn
	inbound map[net.Conn]struct{}
	closed  bool

	listener net.Listener
	wg       sync.WaitGroup

	timerMu   sync.Mutex
	timers    map[simnet.TimerID]*time.Timer
	nextTimer simnet.TimerID

	rng *rand.Rand

	// jmu guards jrng: backoff jitter is drawn from Send, which unlike
	// Rand may run on several goroutines (event loop, clients, tests).
	jmu  sync.Mutex
	jrng *rand.Rand

	// Stats
	Sent     int64
	Received int64
}

type peerConn struct {
	mu   sync.Mutex
	conn net.Conn
	enc  *gob.Encoder
}

var _ simnet.Env = (*Node)(nil)

// ErrClosed is returned after Close.
var ErrClosed = errors.New("transport: node closed")

// ErrUnknownPeer marks sends to replica IDs absent from Config.Peers.
var ErrUnknownPeer = errors.New("transport: unknown peer")

// NewNode creates the node; call SetHandler then Serve.
func NewNode(cfg Config) *Node {
	if cfg.DialBackoff == 0 {
		cfg.DialBackoff = 500 * time.Millisecond
	}
	if cfg.SendAttempts == 0 {
		cfg.SendAttempts = 3
	}
	if cfg.SendBackoff == 0 {
		cfg.SendBackoff = 20 * time.Millisecond
	}
	if cfg.WriteTimeout == 0 {
		cfg.WriteTimeout = 2 * time.Second
	}
	if cfg.QueueSize == 0 {
		cfg.QueueSize = 1 << 16
	}
	return &Node{
		cfg:     cfg,
		events:  make(chan event, cfg.QueueSize),
		start:   time.Now(),
		conns:   make(map[types.ReplicaID]*peerConn),
		inbound: make(map[net.Conn]struct{}),
		timers:  make(map[simnet.TimerID]*time.Timer),
		rng:     rand.New(rand.NewSource(int64(cfg.Self) * 7919)),
		jrng:    rand.New(rand.NewSource(int64(cfg.Self)*104729 + 13)),
	}
}

// SetHandler installs the replica; must precede Serve.
func (n *Node) SetHandler(h simnet.Handler) { n.handler = h }

// Self implements simnet.Env.
func (n *Node) Self() types.ReplicaID { return n.cfg.Self }

// Now implements simnet.Env: wall time since node start.
func (n *Node) Now() time.Duration { return time.Since(n.start) }

// Rand implements simnet.Env.
func (n *Node) Rand() *rand.Rand { return n.rng }

// Send implements simnet.Env: enqueue for the peer, dialing lazily. Self
// sends loop back through the event queue. Failed attempts — dead cached
// connections and failed dials alike — are retried up to
// Config.SendAttempts times with exponential backoff and full jitter,
// each attempt under its own write deadline: a peer that crashed and
// restarted leaves half-dead connections behind and a brief listener
// gap, and the first write (or dial) is how we find out. Without the
// retries, one-shot responses (catch-up, store sync) to a restarting
// peer are silently lost. After the attempt budget the message is
// dropped; the protocols tolerate loss via quorums.
func (n *Node) Send(to types.ReplicaID, msg simnet.Message) {
	if to == n.cfg.Self {
		n.enqueue(event{kind: 1, from: to, msg: msg})
		return
	}
	backoff := n.cfg.SendBackoff
	for attempt := 0; ; attempt++ {
		ok, retry := n.trySend(to, msg)
		if ok {
			n.Sent++
			return
		}
		if !retry || attempt+1 >= n.cfg.SendAttempts {
			return
		}
		n.jmu.Lock()
		jittered := backoff/2 + time.Duration(n.jrng.Int63n(int64(backoff/2)+1))
		n.jmu.Unlock()
		time.Sleep(jittered)
		if backoff *= 2; backoff > n.cfg.DialBackoff {
			backoff = n.cfg.DialBackoff
		}
	}
}

// trySend makes one delivery attempt. retry reports whether another
// attempt could help: dial failures and connections that die mid-write
// are retryable, a closed node or unknown peer is not.
func (n *Node) trySend(to types.ReplicaID, msg simnet.Message) (ok, retry bool) {
	pc, err := n.peer(to)
	if err != nil {
		return false, !errors.Is(err, ErrClosed) && !errors.Is(err, ErrUnknownPeer)
	}
	pc.mu.Lock()
	if pc.enc == nil {
		// Lost a race with a concurrent failed send; redial fresh.
		pc.mu.Unlock()
		return false, true
	}
	if n.cfg.WriteTimeout > 0 {
		pc.conn.SetWriteDeadline(time.Now().Add(n.cfg.WriteTimeout))
	}
	err = pc.enc.Encode(envelope{From: n.cfg.Self, Msg: msg})
	if err != nil {
		pc.conn.Close()
		pc.enc = nil
		pc.mu.Unlock()
		n.dropPeer(to)
		return false, true
	}
	pc.conn.SetWriteDeadline(time.Time{})
	pc.mu.Unlock()
	return true, false
}

// SetTimer implements simnet.Env with a real timer feeding the loop.
func (n *Node) SetTimer(d time.Duration, payload any) simnet.TimerID {
	n.timerMu.Lock()
	defer n.timerMu.Unlock()
	n.nextTimer++
	id := n.nextTimer
	n.timers[id] = time.AfterFunc(d, func() {
		n.timerMu.Lock()
		_, live := n.timers[id]
		delete(n.timers, id)
		n.timerMu.Unlock()
		if live {
			n.enqueue(event{kind: 2, payload: payload})
		}
	})
	return id
}

// CancelTimer implements simnet.Env.
func (n *Node) CancelTimer(id simnet.TimerID) {
	n.timerMu.Lock()
	defer n.timerMu.Unlock()
	if t, ok := n.timers[id]; ok {
		t.Stop()
		delete(n.timers, id)
	}
}

// Do runs fn on the event loop — the only safe way to touch the handler's
// state from outside (e.g., submitting to a mempool).
func (n *Node) Do(fn func()) { n.enqueue(event{kind: 3, fn: fn}) }

func (n *Node) enqueue(ev event) {
	select {
	case n.events <- ev:
	default:
		// Queue full: drop; quorum protocols recover via retransmitted
		// decisions and catch-up.
	}
}

// Serve listens, accepts peers and runs the event loop until Close. It
// blocks; run it on its own goroutine if needed.
func (n *Node) Serve() error {
	ln, err := net.Listen("tcp", n.cfg.Listen)
	if err != nil {
		return fmt.Errorf("transport: listen %s: %w", n.cfg.Listen, err)
	}
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		ln.Close()
		return ErrClosed
	}
	n.listener = ln
	n.mu.Unlock()

	n.wg.Add(1)
	go func() {
		defer n.wg.Done()
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			n.mu.Lock()
			if n.closed {
				n.mu.Unlock()
				conn.Close()
				return
			}
			n.inbound[conn] = struct{}{}
			n.mu.Unlock()
			n.wg.Add(1)
			go func() {
				defer n.wg.Done()
				defer func() {
					n.mu.Lock()
					delete(n.inbound, conn)
					n.mu.Unlock()
				}()
				n.readLoop(conn)
			}()
		}
	}()

	// Event loop: serializes all handler invocations; a stop sentinel
	// (kind 0) ends it.
	for ev := range n.events {
		switch ev.kind {
		case 0:
			return nil
		case 1:
			n.Received++
			n.handler.OnMessage(ev.from, ev.msg)
		case 2:
			n.handler.OnTimer(ev.payload)
		case 3:
			ev.fn()
		}
	}
	return nil
}

// readLoop decodes frames from one inbound connection.
func (n *Node) readLoop(conn net.Conn) {
	defer conn.Close()
	dec := gob.NewDecoder(conn)
	for {
		var env envelope
		if err := dec.Decode(&env); err != nil {
			if !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) {
				// transient decode failure: drop the connection; the peer
				// redials.
			}
			return
		}
		n.enqueue(event{kind: 1, from: env.From, msg: env.Msg})
	}
}

// peer returns (dialing if necessary) the outbound connection to a peer.
func (n *Node) peer(to types.ReplicaID) (*peerConn, error) {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil, ErrClosed
	}
	if pc, ok := n.conns[to]; ok && pc.enc != nil {
		n.mu.Unlock()
		return pc, nil
	}
	addr, ok := n.cfg.Peers[to]
	n.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: %v", ErrUnknownPeer, to)
	}
	conn, err := net.DialTimeout("tcp", addr, n.cfg.DialBackoff)
	if err != nil {
		return nil, err
	}
	pc := &peerConn{conn: conn, enc: gob.NewEncoder(conn)}
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		conn.Close()
		return nil, ErrClosed
	}
	n.conns[to] = pc
	n.mu.Unlock()
	return pc, nil
}

func (n *Node) dropPeer(to types.ReplicaID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.conns, to)
}

// Close stops the node: listener, connections, event loop.
func (n *Node) Close() {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return
	}
	n.closed = true
	if n.listener != nil {
		n.listener.Close()
	}
	for _, pc := range n.conns {
		pc.mu.Lock()
		if pc.conn != nil {
			pc.conn.Close()
		}
		pc.mu.Unlock()
	}
	for conn := range n.inbound {
		conn.Close()
	}
	n.mu.Unlock()
	n.wg.Wait()
	// Stop the event loop; the channel stays open so late timers cannot
	// panic on send.
	n.events <- event{kind: 0}
}
