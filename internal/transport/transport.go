// Package transport runs an event-driven replica (any simnet.Handler,
// e.g. an asmr.Replica) over real TCP instead of the simulator: the same
// protocol state machines, driven by a single event loop per node, with
// length-prefixed gob frames between peers. Message authenticity is
// end-to-end (every accountable statement is signed), so the transport
// only provides framing and ordering, exactly like the paper's raw TCP
// replica links.
//
// Delivery is asynchronous: Send is a non-blocking enqueue onto a
// bounded per-peer queue drained by a dedicated writer goroutine that
// owns that peer's connection lifecycle — dial, jittered exponential
// backoff, redial, per-frame write deadlines. A dead or slow peer
// therefore never stalls the event loop or delays sends to healthy
// peers; its queue fills and overflows by dropping the oldest frame
// (quorum protocols recover via retransmitted decisions and catch-up),
// while client submits that hit a full event queue are refused with a
// typed backpressure error instead of being silently lost. Per-peer
// health (state, consecutive failures, drops, reconnects) is tracked in
// lock-free counters and exported through PeerHealth for the node's
// /metrics and /status surfaces. See README.md for the architecture.
//
// Framing deliberately still uses encoding/gob while the consensus
// payload internals (transaction batches, PoF sets, replica lists)
// moved to the binary codecs of internal/wire: the transport must
// round-trip ~25 heterogeneous protocol message types behind one
// interface, which gob's self-describing streams handle with a single
// RegisterWireTypes call, and peer framing is not on the simulator's
// benchmarked hot path — the wire codecs are, because their payloads
// are built and decoded inside consensus. A replica therefore sends
// gob-framed messages whose payload bytes are wire-encoded.
package transport

import (
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"github.com/zeroloss/zlb/internal/accountability"
	"github.com/zeroloss/zlb/internal/asmr"
	"github.com/zeroloss/zlb/internal/bincon"
	"github.com/zeroloss/zlb/internal/membership"
	"github.com/zeroloss/zlb/internal/obs"
	"github.com/zeroloss/zlb/internal/rbc"
	"github.com/zeroloss/zlb/internal/sbc"
	"github.com/zeroloss/zlb/internal/simnet"
	"github.com/zeroloss/zlb/internal/types"
	"github.com/zeroloss/zlb/internal/utxo"
)

// RegisterWireTypes registers every protocol message with gob. Call once
// per process before serving or dialing.
func RegisterWireTypes() {
	gob.Register(&rbc.Init{})
	gob.Register(&rbc.Echo{})
	gob.Register(&rbc.Ready{})
	gob.Register(&rbc.PayloadReq{})
	gob.Register(&rbc.PayloadResp{})
	gob.Register(&bincon.Est{})
	gob.Register(&bincon.Coord{})
	gob.Register(&bincon.Aux{})
	gob.Register(&bincon.Decide{})
	gob.Register(&sbc.ProposalReq{})
	gob.Register(&sbc.ProposalResp{})
	gob.Register(&asmr.Confirm{})
	gob.Register(&asmr.BlockReq{})
	gob.Register(&asmr.BlockResp{})
	gob.Register(&asmr.PoFGossip{})
	gob.Register(&asmr.JoinNotice{})
	gob.Register(&asmr.CatchupReq{})
	gob.Register(&asmr.CatchupResp{})
	gob.Register(&membership.PoFBroadcast{})
	gob.Register(&accountability.Certificate{})
	gob.Register(&utxo.Transaction{})
	gob.Register(&SubmitTx{})
	gob.Register(&SubmitAck{})
	gob.Register(&SyncFrame{})
}

// envelope is the wire frame between peers.
type envelope struct {
	From types.ReplicaID
	Msg  any
}

// SubmitTx is the client-facing request carrying a transaction to a
// replica's mempool.
type SubmitTx struct {
	Tx *utxo.Transaction
}

// SubmitAck is the node's reply to a SubmitTx on the same connection:
// OK means the submit was handed to the replica's event loop (admission
// may still reject it later), !OK with Err set means it was refused at
// the transport edge — today always backpressure on an overloaded event
// queue. Wallets that care read the ack; fire-and-forget clients may
// ignore it.
type SubmitAck struct {
	OK  bool
	Err string
}

// SyncFrame carries a durable-store catch-up payload between nodes: a
// wire.EncodeSyncReq payload when Req is set, a wire.EncodeSyncResp
// payload otherwise. The binary payloads keep the store's CRC-framed
// records end-to-end verifiable; gob only provides the outer framing,
// like every other peer message.
type SyncFrame struct {
	Req     bool
	Payload []byte
}

// event drives the node's single-threaded loop.
type event struct {
	kind    int // 1 = message, 2 = timer, 3 = closure
	from    types.ReplicaID
	msg     simnet.Message
	payload any
	fn      func()
}

// Config parameterizes a TCP node.
type Config struct {
	// Self is this replica's ID.
	Self types.ReplicaID
	// Listen is the local listen address, e.g. ":7001".
	Listen string
	// Peers maps every replica ID to its dialable address.
	Peers map[types.ReplicaID]string
	// DialBackoff bounds reconnect pacing: it is both the dial timeout of
	// a single connection attempt and the cap on the writer's retry
	// backoff schedule (default 500 ms).
	DialBackoff time.Duration
	// SendAttempts bounds how many times the writer re-writes one frame
	// across reconnects before dropping it (default 3). Dial failures do
	// not consume the budget — an unreachable peer costs backoff, not
	// frames — only writes that fail on an established connection do.
	SendAttempts int
	// SendBackoff is the initial backoff between the writer's connection
	// attempts (default 20 ms). It doubles per retry, capped at
	// DialBackoff, with full jitter so restarting peers are not hammered
	// in lockstep.
	SendBackoff time.Duration
	// WriteTimeout is the per-frame write deadline (default 2 s): a peer
	// that accepted the connection but stopped reading fails the frame
	// instead of wedging the writer forever.
	WriteTimeout time.Duration
	// QueueSize bounds the event queue (default 65536).
	QueueSize int
	// SendQueueSize bounds each peer's outbound queue (default 4096).
	// On overflow the oldest queued frame is dropped.
	SendQueueSize int
	// SuspectAfter is the consecutive-failure count at which a peer's
	// health state degrades from backoff to suspect (default 3).
	SuspectAfter int
	// Logger receives rate-limited transport warnings (drops, decode
	// errors, backpressure). Nil drops them.
	Logger *obs.Logger
}

// Node hosts one event-driven replica over TCP. It implements simnet.Env,
// so protocol components constructed with it work unchanged.
type Node struct {
	cfg     Config
	handler simnet.Handler
	events  chan event
	start   time.Time

	// stopIO wakes writer goroutines out of backoff sleeps and queue
	// waits; stopLoop tells the event loop to drain and exit. Two
	// channels because shutdown is staged: I/O first, loop drain last,
	// so every frame a readLoop enqueued before dying is still handled.
	stopIO   chan struct{}
	stopLoop chan struct{}

	mu      sync.Mutex
	peers   map[types.ReplicaID]*peer
	inbound map[net.Conn]struct{}
	closed  bool

	listener net.Listener
	wg       sync.WaitGroup

	timerMu   sync.Mutex
	timers    map[simnet.TimerID]*time.Timer
	nextTimer simnet.TimerID

	rng *rand.Rand

	// Stats. Sent counts frames actually written to a peer connection
	// (incremented by writer goroutines); Received counts events the
	// loop handled. Both are read concurrently by metrics scrapes.
	Sent     atomic.Int64
	Received atomic.Int64

	eventsDropped atomic.Uint64 // inbound/self events lost to a full event queue
	decodeErrors  atomic.Uint64 // frames a readLoop failed to decode mid-stream
	sendDrops     atomic.Uint64 // outbound frames dropped across all peer queues
	submitBackoff atomic.Uint64 // client submits refused with ErrBackpressure

	warnDrop   rateLimiter
	warnDecode rateLimiter
}

// Stats is a point-in-time snapshot of the node's transport counters.
type Stats struct {
	Sent               int64
	Received           int64
	EventsDropped      uint64
	DecodeErrors       uint64
	SendDrops          uint64
	SubmitBackpressure uint64
}

var _ simnet.Env = (*Node)(nil)

// ErrClosed is returned after Close.
var ErrClosed = errors.New("transport: node closed")

// ErrUnknownPeer marks sends to replica IDs absent from Config.Peers.
var ErrUnknownPeer = errors.New("transport: unknown peer")

// ErrBackpressure is the typed overload verdict: the queue that would
// carry the message is full and the caller asked to fail fast rather
// than displace queued traffic. Client submits hitting a saturated
// event queue receive it (as a SubmitAck on the wire); TrySend returns
// it for a full peer queue.
var ErrBackpressure = errors.New("transport: backpressure, queue full")

// NewNode creates the node; call SetHandler then Serve.
func NewNode(cfg Config) *Node {
	if cfg.DialBackoff == 0 {
		cfg.DialBackoff = 500 * time.Millisecond
	}
	if cfg.SendAttempts == 0 {
		cfg.SendAttempts = 3
	}
	if cfg.SendBackoff == 0 {
		cfg.SendBackoff = 20 * time.Millisecond
	}
	if cfg.WriteTimeout == 0 {
		cfg.WriteTimeout = 2 * time.Second
	}
	if cfg.QueueSize == 0 {
		cfg.QueueSize = 1 << 16
	}
	if cfg.SendQueueSize == 0 {
		cfg.SendQueueSize = 4096
	}
	if cfg.SuspectAfter == 0 {
		cfg.SuspectAfter = 3
	}
	return &Node{
		cfg:      cfg,
		events:   make(chan event, cfg.QueueSize),
		start:    time.Now(),
		stopIO:   make(chan struct{}),
		stopLoop: make(chan struct{}),
		peers:    make(map[types.ReplicaID]*peer),
		inbound:  make(map[net.Conn]struct{}),
		timers:   make(map[simnet.TimerID]*time.Timer),
		rng:      rand.New(rand.NewSource(int64(cfg.Self) * 7919)),
	}
}

// SetHandler installs the replica; must precede Serve.
func (n *Node) SetHandler(h simnet.Handler) { n.handler = h }

// Self implements simnet.Env.
func (n *Node) Self() types.ReplicaID { return n.cfg.Self }

// Now implements simnet.Env: wall time since node start.
func (n *Node) Now() time.Duration { return time.Since(n.start) }

// Rand implements simnet.Env.
func (n *Node) Rand() *rand.Rand { return n.rng }

// Stats snapshots the node's counters.
func (n *Node) Stats() Stats {
	return Stats{
		Sent:               n.Sent.Load(),
		Received:           n.Received.Load(),
		EventsDropped:      n.eventsDropped.Load(),
		DecodeErrors:       n.decodeErrors.Load(),
		SendDrops:          n.sendDrops.Load(),
		SubmitBackpressure: n.submitBackoff.Load(),
	}
}

// Send implements simnet.Env: a non-blocking enqueue onto the peer's
// outbound queue (self sends loop back through the event queue). The
// peer's writer goroutine owns delivery — dialing, backoff, redial and
// write deadlines — so Send never sleeps and never blocks the caller,
// whatever state the peer is in. A full peer queue drops the oldest
// queued frame to make room: protocol traffic tolerates loss via
// quorums and catch-up, and displacing the oldest frame preserves the
// freshest consensus state. Sends to unknown peers or after Close are
// dropped.
func (n *Node) Send(to types.ReplicaID, msg simnet.Message) {
	if to == n.cfg.Self {
		n.enqueue(event{kind: 1, from: to, msg: msg})
		return
	}
	p, err := n.peerFor(to)
	if err != nil {
		return
	}
	p.enqueue(msg)
}

// TrySend is Send with fail-fast backpressure instead of drop-oldest:
// a full peer queue returns ErrBackpressure and displaces nothing. For
// callers that prefer an explicit overload verdict over best-effort
// delivery (client-facing edges, tests).
func (n *Node) TrySend(to types.ReplicaID, msg simnet.Message) error {
	if to == n.cfg.Self {
		select {
		case n.events <- event{kind: 1, from: to, msg: msg}:
			return nil
		default:
			return ErrBackpressure
		}
	}
	p, err := n.peerFor(to)
	if err != nil {
		return err
	}
	return p.tryEnqueue(msg)
}

// peerFor returns (creating and starting its writer if necessary) the
// peer record for a replica ID.
func (n *Node) peerFor(to types.ReplicaID) (*peer, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return nil, ErrClosed
	}
	if p, ok := n.peers[to]; ok {
		return p, nil
	}
	addr, ok := n.cfg.Peers[to]
	if !ok {
		return nil, fmt.Errorf("%w: %v", ErrUnknownPeer, to)
	}
	p := newPeer(n, to, addr)
	n.peers[to] = p
	n.wg.Add(1)
	go p.writeLoop()
	return p, nil
}

// SetTimer implements simnet.Env with a real timer feeding the loop.
func (n *Node) SetTimer(d time.Duration, payload any) simnet.TimerID {
	n.timerMu.Lock()
	defer n.timerMu.Unlock()
	n.nextTimer++
	id := n.nextTimer
	n.timers[id] = time.AfterFunc(d, func() {
		n.timerMu.Lock()
		_, live := n.timers[id]
		delete(n.timers, id)
		n.timerMu.Unlock()
		if live {
			n.enqueueSticky(event{kind: 2, payload: payload})
		}
	})
	return id
}

// CancelTimer implements simnet.Env.
func (n *Node) CancelTimer(id simnet.TimerID) {
	n.timerMu.Lock()
	defer n.timerMu.Unlock()
	if t, ok := n.timers[id]; ok {
		t.Stop()
		delete(n.timers, id)
	}
}

// Do runs fn on the event loop — the only safe way to touch the handler's
// state from outside (e.g., submitting to a mempool).
func (n *Node) Do(fn func()) { n.enqueueSticky(event{kind: 3, fn: fn}) }

// enqueue is the lossy path for message events: the event loop itself
// feeds it (self sends), so it must never block — a full queue drops
// the event and counts it.
func (n *Node) enqueue(ev event) {
	select {
	case n.events <- ev:
	default:
		n.eventsDropped.Add(1)
		if n.warnDrop.allow(time.Second) {
			n.cfg.Logger.Warnf("transport: event queue full, dropped %d events so far", n.eventsDropped.Load())
		}
	}
}

// enqueueSticky is the lossless path for timers and closures: those
// events carry obligations (a Do caller is waiting, a protocol timeout
// must fire), so they wait for queue space instead of being dropped —
// bounded by shutdown, which releases them.
func (n *Node) enqueueSticky(ev event) {
	select {
	case n.events <- ev:
	case <-n.stopLoop:
	}
}

// Serve listens, accepts peers and runs the event loop until Close. It
// blocks; run it on its own goroutine if needed.
func (n *Node) Serve() error {
	ln, err := net.Listen("tcp", n.cfg.Listen)
	if err != nil {
		return fmt.Errorf("transport: listen %s: %w", n.cfg.Listen, err)
	}
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		ln.Close()
		return ErrClosed
	}
	n.listener = ln
	n.mu.Unlock()

	n.wg.Add(1)
	go func() {
		defer n.wg.Done()
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			n.mu.Lock()
			if n.closed {
				n.mu.Unlock()
				conn.Close()
				return
			}
			n.inbound[conn] = struct{}{}
			n.mu.Unlock()
			n.wg.Add(1)
			go func() {
				defer n.wg.Done()
				defer func() {
					n.mu.Lock()
					delete(n.inbound, conn)
					n.mu.Unlock()
				}()
				n.readLoop(conn)
			}()
		}
	}()

	// Event loop: serializes all handler invocations. Close trips
	// stopLoop only after every reader and writer has exited, so the
	// drain below sees the complete backlog and nothing new.
	for {
		select {
		case ev := <-n.events:
			n.dispatch(ev)
		case <-n.stopLoop:
			for {
				select {
				case ev := <-n.events:
					n.dispatch(ev)
				default:
					return nil
				}
			}
		}
	}
}

func (n *Node) dispatch(ev event) {
	switch ev.kind {
	case 1:
		n.Received.Add(1)
		n.handler.OnMessage(ev.from, ev.msg)
	case 2:
		n.handler.OnTimer(ev.payload)
	case 3:
		ev.fn()
	}
}

// readLoop decodes frames from one inbound connection. Client submits
// (SubmitTx) are acked on the same connection: accepted ones with an OK
// ack, ones that hit a full event queue with a backpressure ack — the
// typed overload signal wallets see instead of silent loss. Protocol
// frames are never acked.
func (n *Node) readLoop(conn net.Conn) {
	defer conn.Close()
	dec := gob.NewDecoder(conn)
	var enc *gob.Encoder // lazily created for submit acks
	for {
		var env envelope
		if err := dec.Decode(&env); err != nil {
			if !isConnClosed(err) {
				// A frame this node could not decode: count it and drop
				// the connection; the peer redials with a fresh stream.
				n.decodeErrors.Add(1)
				if n.warnDecode.allow(time.Second) {
					n.cfg.Logger.Warnf("transport: decode error from %s (%d total): %v",
						conn.RemoteAddr(), n.decodeErrors.Load(), err)
				}
			}
			return
		}
		if _, isSubmit := env.Msg.(*SubmitTx); isSubmit {
			ack := SubmitAck{OK: true}
			select {
			case n.events <- event{kind: 1, from: env.From, msg: env.Msg}:
			default:
				n.submitBackoff.Add(1)
				ack = SubmitAck{OK: false, Err: ErrBackpressure.Error()}
			}
			if enc == nil {
				enc = gob.NewEncoder(conn)
			}
			conn.SetWriteDeadline(time.Now().Add(n.cfg.WriteTimeout))
			if err := enc.Encode(envelope{From: n.cfg.Self, Msg: &ack}); err != nil {
				return
			}
			conn.SetWriteDeadline(time.Time{})
			continue
		}
		n.enqueue(event{kind: 1, from: env.From, msg: env.Msg})
	}
}

// isConnClosed reports whether a decode error is a connection ending
// (orderly close, reset, shutdown) rather than a stream this node
// failed to parse. Only the latter counts as a decode error.
func isConnClosed(err error) bool {
	if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) || errors.Is(err, net.ErrClosed) {
		return true
	}
	var netErr net.Error
	return errors.As(err, &netErr) // resets, timeouts, other socket-level failures
}

// Close stops the node: listener, connections, writers, then the event
// loop. Shutdown is staged — I/O goroutines are stopped and awaited
// first, the loop drains its remaining backlog last — so everything a
// reader enqueued before dying is still handled (queued commits persist
// through a graceful shutdown), and Close never blocks on a full event
// queue: the loop is told to stop via stopLoop, not via a sentinel that
// would need queue space.
func (n *Node) Close() {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return
	}
	n.closed = true
	close(n.stopIO)
	if n.listener != nil {
		n.listener.Close()
	}
	for _, p := range n.peers {
		p.closeConn()
	}
	for conn := range n.inbound {
		conn.Close()
	}
	n.mu.Unlock()
	n.wg.Wait()
	close(n.stopLoop)
}
