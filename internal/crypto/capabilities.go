package crypto

import (
	"errors"

	"github.com/zeroloss/zlb/internal/types"
)

// This file defines the optional capability interfaces a Scheme may
// implement beyond core Sign/Verify. Callers discover capabilities by
// type assertion — `agg, ok := scheme.(Aggregator)` — so schemes that
// predate (or simply lack) a capability keep working unchanged, and new
// capabilities can be added without touching existing implementations.
// This is the crypto-agility seam: the accountability layer chooses its
// certificate representation per scheme capability instead of hard-coding
// one wire format for all three schemes.
//
// Capability support today:
//
//	scheme    Aggregator  BatchVerifier  SignatureExtractor
//	ecdsa     no          no             no
//	ed25519   no          yes            no
//	sim       yes         yes            yes
//
// ECDSA deliberately implements none of them: it exercises the fallback
// path every capability consumer must keep (signed-statement certificates,
// per-signature verification).

// ErrNotAggregatable is returned when aggregation is requested from a
// scheme that does not implement Aggregator.
var ErrNotAggregatable = errors.New("crypto: scheme cannot aggregate signatures")

// Aggregator combines many signatures over the SAME digest into one
// compact aggregate, and verifies an aggregate against the claimed signer
// set. BLS-style schemes implement this natively; the sim scheme
// implements it by XOR-folding its deterministic MACs (sound only against
// the in-process adversary model the sim scheme already assumes — the
// registry holds every seed, so the verifier recomputes each constituent
// MAC exactly).
type Aggregator interface {
	// Aggregate folds the signatures into one aggregate signature. All
	// signatures must cover the same digest; the signers slice gives the
	// identity behind sigs[i]. Aggregate does not verify the inputs.
	Aggregate(signers []types.ReplicaID, sigs []Signature) (Signature, error)
	// VerifyAggregate reports whether agg is a valid aggregate of
	// signatures by exactly the given signers over digest, resolving
	// public keys through reg.
	VerifyAggregate(reg *Registry, signers []types.ReplicaID, digest types.Digest, agg Signature) bool
}

// BatchVerifier verifies many (signer, sig) pairs over the same digest
// with better constants than one Verify call per pair. Implementations
// amortize the per-call setup (key resolution, digest expansion); they do
// not change the accept/reject decision of Verify.
type BatchVerifier interface {
	// VerifyBatch checks sigs[i] as a signature by signers[i] over digest,
	// resolving public keys through reg. It returns the index of the first
	// invalid pair, or -1 if all verify. Mismatched slice lengths report
	// index 0.
	VerifyBatch(reg *Registry, signers []types.ReplicaID, digest types.Digest, sigs []Signature) int
}

// SignatureExtractor recovers an individual signer's signature over a
// digest without having seen it on the wire. Only deterministic
// registry-backed schemes can do this (the sim scheme recomputes the MAC
// from the registered seed). The accountability layer uses it to turn an
// aggregate certificate back into per-signer evidence for proof-of-fraud
// attribution — the extracted signature is bit-identical to the one the
// signer originally produced.
type SignatureExtractor interface {
	// ExtractSignature returns signer's signature over digest, or false
	// when the signer is unknown to reg or the scheme cannot reconstruct
	// signatures.
	ExtractSignature(reg *Registry, signer types.ReplicaID, digest types.Digest) (Signature, bool)
}

// --- sim scheme capabilities ---

// simAggLen is the sim aggregate signature length: one MAC width,
// regardless of quorum size.
const simAggLen = 32

var (
	_ Aggregator         = (*simScheme)(nil)
	_ BatchVerifier      = (*simScheme)(nil)
	_ SignatureExtractor = (*simScheme)(nil)
)

// Aggregate XOR-folds the MACs: the aggregate of k sim signatures is 32
// bytes independent of k. Verification recomputes every constituent MAC
// from the registry's seeds, so a forged aggregate would need a seed the
// registry does not hold — the same trust boundary as sim Verify itself.
func (s *simScheme) Aggregate(signers []types.ReplicaID, sigs []Signature) (Signature, error) {
	if len(sigs) == 0 || len(signers) != len(sigs) {
		return nil, ErrNotAggregatable
	}
	agg := make(Signature, simAggLen)
	for _, sig := range sigs {
		if len(sig) != simAggLen {
			return nil, ErrNotAggregatable
		}
		for i, b := range sig {
			agg[i] ^= b
		}
	}
	return agg, nil
}

func (s *simScheme) VerifyAggregate(reg *Registry, signers []types.ReplicaID, digest types.Digest, agg Signature) bool {
	if reg == nil {
		reg = s.reg
	}
	if len(agg) != simAggLen || len(signers) == 0 {
		return false
	}
	var want [simAggLen]byte
	for _, id := range signers {
		seed, ok := reg.seedOf(id)
		if !ok {
			return false
		}
		mac := simMAC(seed, digest)
		for i, b := range mac {
			want[i] ^= b
		}
	}
	var diff byte
	for i := range want {
		diff |= want[i] ^ agg[i]
	}
	return diff == 0
}

func (s *simScheme) VerifyBatch(reg *Registry, signers []types.ReplicaID, digest types.Digest, sigs []Signature) int {
	if reg == nil {
		reg = s.reg
	}
	if len(signers) != len(sigs) {
		return 0
	}
	for i, id := range signers {
		seed, ok := reg.seedOf(id)
		if !ok {
			return i
		}
		mac := simMAC(seed, digest)
		if len(sigs[i]) != simAggLen {
			return i
		}
		var diff byte
		for j := range mac {
			diff |= mac[j] ^ sigs[i][j]
		}
		if diff != 0 {
			return i
		}
	}
	return -1
}

func (s *simScheme) ExtractSignature(reg *Registry, signer types.ReplicaID, digest types.Digest) (Signature, bool) {
	if reg == nil {
		reg = s.reg
	}
	seed, ok := reg.seedOf(signer)
	if !ok {
		return nil, false
	}
	mac := simMAC(seed, digest)
	return mac[:], true
}

// --- ed25519 scheme capabilities ---

var _ BatchVerifier = edScheme{}

// VerifyBatch amortizes key resolution across the batch: one registry
// read-lock for all pairs instead of one per Verify call. (True Ed25519
// batch verification with shared doublings needs curve internals the
// stdlib does not export; the win here is the lock and map amortization,
// which dominates at simulator scale.)
func (e edScheme) VerifyBatch(reg *Registry, signers []types.ReplicaID, digest types.Digest, sigs []Signature) int {
	if reg == nil || len(signers) != len(sigs) {
		return 0
	}
	pubs := reg.publicKeys(signers)
	for i := range signers {
		if pubs[i] == nil || !e.Verify(pubs[i], digest, sigs[i]) {
			return i
		}
	}
	return -1
}
