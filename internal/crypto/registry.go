package crypto

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"sync"

	"github.com/zeroloss/zlb/internal/types"
)

// Registry is the public-key infrastructure the paper assumes (§3.2): a
// mapping from replica identities to public keys, common to all replicas.
// It is safe for concurrent use; the TCP transport verifies signatures
// from multiple connection goroutines.
//
// Beyond key lookup, the registry defines the canonical signer index:
// position i in the sorted list of registered identities. Aggregate
// certificates encode their signer sets as bitmaps over this index, so
// every replica that registered the same PKI decodes the same bitmap to
// the same signer set.
type Registry struct {
	mu    sync.RWMutex
	kind  SchemeKind
	keys  map[types.ReplicaID]PublicKey
	seeds map[string][]byte // sim-scheme seeds, keyed by string(pub)
	// order is the sorted registered identities — the canonical signer
	// index backing aggregate-certificate bitmaps.
	order []types.ReplicaID
}

// NewRegistry creates an empty registry for the given scheme kind.
func NewRegistry(kind SchemeKind) *Registry {
	return &Registry{
		kind:  kind,
		keys:  make(map[types.ReplicaID]PublicKey),
		seeds: make(map[string][]byte),
	}
}

// Kind returns the scheme kind this registry serves.
func (r *Registry) Kind() SchemeKind { return r.kind }

// ErrKeyMismatch is returned when an identity is re-registered with a
// different public key. A silent key swap mid-run would let a culprit
// dodge PoF attribution: statements signed under the old key would stop
// verifying against the registry, so the equivocation evidence dies.
var ErrKeyMismatch = errors.New("crypto: identity already registered with a different key")

// Register associates id with the pair's public key. Registering the sim
// scheme also records the seed so verification can recompute the MAC.
// Re-registering an identity with the same key is an idempotent no-op;
// re-registering with a different key fails with ErrKeyMismatch.
func (r *Registry) Register(id types.ReplicaID, kp *KeyPair) error {
	if kp.kind != r.kind {
		return ErrWrongScheme
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if prev, ok := r.keys[id]; ok {
		if !bytes.Equal(prev, kp.pub) {
			return fmt.Errorf("%w: %v", ErrKeyMismatch, id)
		}
		return nil
	}
	r.keys[id] = kp.pub
	i := sort.Search(len(r.order), func(i int) bool { return r.order[i] >= id })
	r.order = append(r.order, 0)
	copy(r.order[i+1:], r.order[i:])
	r.order[i] = id
	if kp.kind == SchemeSim {
		r.seeds[string(kp.pub)] = kp.simSeed
	}
	return nil
}

// PublicKeyOf returns the registered key for id.
func (r *Registry) PublicKeyOf(id types.ReplicaID) (PublicKey, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	pk, ok := r.keys[id]
	return pk, ok
}

// Size returns the number of registered identities.
func (r *Registry) Size() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.keys)
}

// SignerIndex returns id's position in the canonical signer index (the
// sorted registered identities), or false if id is not registered.
func (r *Registry) SignerIndex(id types.ReplicaID) (int, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	i := sort.Search(len(r.order), func(i int) bool { return r.order[i] >= id })
	if i < len(r.order) && r.order[i] == id {
		return i, true
	}
	return 0, false
}

// SignerAt returns the identity at position i of the canonical signer
// index, or false if i is out of range.
func (r *Registry) SignerAt(i int) (types.ReplicaID, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if i < 0 || i >= len(r.order) {
		return 0, false
	}
	return r.order[i], true
}

func (r *Registry) simSeed(pub PublicKey) ([]byte, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	s, ok := r.seeds[string(pub)]
	return s, ok
}

// seedOf resolves an identity straight to its sim seed (one lock, one
// lookup chain) for the batch/aggregate fast paths.
func (r *Registry) seedOf(id types.ReplicaID) ([]byte, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	pk, ok := r.keys[id]
	if !ok {
		return nil, false
	}
	s, ok := r.seeds[string(pk)]
	return s, ok
}

// publicKeys resolves a batch of identities under one read lock; unknown
// identities yield nil entries.
func (r *Registry) publicKeys(ids []types.ReplicaID) []PublicKey {
	out := make([]PublicKey, len(ids))
	r.mu.RLock()
	defer r.mu.RUnlock()
	for i, id := range ids {
		out[i] = r.keys[id]
	}
	return out
}

// Signer bundles a replica's identity, key pair, scheme and registry: the
// signing context handed to every protocol component of one replica.
type Signer struct {
	id     types.ReplicaID
	kp     *KeyPair
	scheme Scheme
	reg    *Registry
}

// NewSigner builds a Signer. The key pair must already be registered.
func NewSigner(id types.ReplicaID, kp *KeyPair, scheme Scheme, reg *Registry) *Signer {
	return &Signer{id: id, kp: kp, scheme: scheme, reg: reg}
}

// ID returns the replica identity this signer signs as.
func (s *Signer) ID() types.ReplicaID { return s.id }

// Sign signs the digest as this replica.
func (s *Signer) Sign(digest types.Digest) (Signature, error) {
	return s.scheme.Sign(s.kp, digest)
}

// Verify checks a signature attributed to signer over digest.
func (s *Signer) Verify(signer types.ReplicaID, digest types.Digest, sig Signature) bool {
	pub, ok := s.reg.PublicKeyOf(signer)
	if !ok {
		return false
	}
	return s.scheme.Verify(pub, digest, sig)
}

// Registry exposes the PKI for account-level checks.
func (s *Signer) Registry() *Registry { return s.reg }

// Scheme exposes the underlying scheme.
func (s *Signer) Scheme() Scheme { return s.scheme }

// DeterministicRand is an io.Reader producing a reproducible stream from a
// seed, for generating whole clusters of keys in tests and simulations.
type DeterministicRand struct {
	counter uint64
	seed    [32]byte
	buf     []byte
}

// NewDeterministicRand seeds the stream.
func NewDeterministicRand(seed int64) *DeterministicRand {
	d := &DeterministicRand{}
	binary.BigEndian.PutUint64(d.seed[:8], uint64(seed))
	return d
}

// Read implements io.Reader; it never fails.
func (d *DeterministicRand) Read(p []byte) (int, error) {
	for i := range p {
		if len(d.buf) == 0 {
			var block [40]byte
			copy(block[:32], d.seed[:])
			binary.BigEndian.PutUint64(block[32:], d.counter)
			d.counter++
			sum := types.Hash(block[:])
			d.buf = append(d.buf[:0], sum[:]...)
		}
		p[i] = d.buf[0]
		d.buf = d.buf[1:]
	}
	return len(p), nil
}

// GenerateCluster creates n key pairs (replica IDs 1..n), registers them,
// and returns one Signer per replica. It is the standard way tests and
// simulations bootstrap a committee PKI.
func GenerateCluster(kind SchemeKind, n int, seed int64) ([]*Signer, *Registry, error) {
	reg := NewRegistry(kind)
	scheme, err := NewScheme(kind, reg)
	if err != nil {
		return nil, nil, err
	}
	rand := NewDeterministicRand(seed)
	signers := make([]*Signer, 0, n)
	for i := 1; i <= n; i++ {
		kp, err := scheme.GenerateKey(rand)
		if err != nil {
			return nil, nil, fmt.Errorf("generating key %d: %w", i, err)
		}
		id := types.ReplicaID(i)
		if err := reg.Register(id, kp); err != nil {
			return nil, nil, err
		}
		signers = append(signers, NewSigner(id, kp, scheme, reg))
	}
	return signers, reg, nil
}
