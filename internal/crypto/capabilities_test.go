package crypto

import (
	"bytes"
	"errors"
	"testing"

	"github.com/zeroloss/zlb/internal/types"
)

// Regression: Register used to silently overwrite an existing identity's
// key. A deceitful replica that swapped its key mid-run would make its
// older signed statements unverifiable — and proof-of-fraud attribution
// against them impossible — so re-registration with a different key must
// be rejected.
func TestRegisterRejectsKeySwap(t *testing.T) {
	for _, kind := range []SchemeKind{SchemeECDSA, SchemeEd25519, SchemeSim} {
		t.Run(kind.String(), func(t *testing.T) {
			reg := NewRegistry(kind)
			scheme, err := NewScheme(kind, reg)
			if err != nil {
				t.Fatal(err)
			}
			kp1, err := scheme.GenerateKey(NewDeterministicRand(1))
			if err != nil {
				t.Fatal(err)
			}
			kp2, err := scheme.GenerateKey(NewDeterministicRand(2))
			if err != nil {
				t.Fatal(err)
			}
			if err := reg.Register(1, kp1); err != nil {
				t.Fatal(err)
			}
			// Same key again: idempotent no-op.
			if err := reg.Register(1, kp1); err != nil {
				t.Fatalf("re-registering the same key: %v", err)
			}
			// Different key: rejected, original binding intact.
			if err := reg.Register(1, kp2); !errors.Is(err, ErrKeyMismatch) {
				t.Fatalf("key swap accepted: %v", err)
			}
			digest := types.Hash([]byte("old statement"))
			sig, err := scheme.Sign(kp1, digest)
			if err != nil {
				t.Fatal(err)
			}
			pk, ok := reg.PublicKeyOf(1)
			if !ok || !scheme.Verify(pk, digest, sig) {
				t.Fatal("original key binding lost after rejected swap")
			}
		})
	}
}

// The registry's canonical signer index is sorted by replica ID no matter
// the registration order — it is the coordinate system aggregate
// certificate bitmaps are defined over.
func TestSignerIndexCanonical(t *testing.T) {
	reg := NewRegistry(SchemeSim)
	scheme, err := NewScheme(SchemeSim, reg)
	if err != nil {
		t.Fatal(err)
	}
	ids := []types.ReplicaID{9, 2, 5}
	for i, id := range ids {
		kp, err := scheme.GenerateKey(NewDeterministicRand(int64(i + 1)))
		if err != nil {
			t.Fatal(err)
		}
		if err := reg.Register(id, kp); err != nil {
			t.Fatal(err)
		}
	}
	want := []types.ReplicaID{2, 5, 9}
	for i, id := range want {
		got, ok := reg.SignerAt(i)
		if !ok || got != id {
			t.Fatalf("SignerAt(%d) = %v, %v; want %v", i, got, ok, id)
		}
		idx, ok := reg.SignerIndex(id)
		if !ok || idx != i {
			t.Fatalf("SignerIndex(%v) = %d, %v; want %d", id, idx, ok, i)
		}
	}
	if _, ok := reg.SignerIndex(3); ok {
		t.Fatal("unregistered identity has an index")
	}
	if _, ok := reg.SignerAt(3); ok {
		t.Fatal("out-of-range index resolves")
	}
}

// The capability matrix is deliberate: ECDSA implements nothing (it
// exercises every fallback path), ed25519 batches but cannot aggregate,
// sim implements everything.
func TestCapabilityMatrix(t *testing.T) {
	for _, tc := range []struct {
		kind              SchemeKind
		agg, batch, extra bool
	}{
		{SchemeECDSA, false, false, false},
		{SchemeEd25519, false, true, false},
		{SchemeSim, true, true, true},
	} {
		reg := NewRegistry(tc.kind)
		scheme, err := NewScheme(tc.kind, reg)
		if err != nil {
			t.Fatal(err)
		}
		if _, ok := scheme.(Aggregator); ok != tc.agg {
			t.Errorf("%v: Aggregator = %v, want %v", tc.kind, ok, tc.agg)
		}
		if _, ok := scheme.(BatchVerifier); ok != tc.batch {
			t.Errorf("%v: BatchVerifier = %v, want %v", tc.kind, ok, tc.batch)
		}
		if _, ok := scheme.(SignatureExtractor); ok != tc.extra {
			t.Errorf("%v: SignatureExtractor = %v, want %v", tc.kind, ok, tc.extra)
		}
	}
}

func TestSimAggregateRoundTrip(t *testing.T) {
	signers, reg, err := GenerateCluster(SchemeSim, 7, 1)
	if err != nil {
		t.Fatal(err)
	}
	agg, ok := signers[0].Scheme().(Aggregator)
	if !ok {
		t.Fatal("sim scheme lost Aggregator")
	}
	digest := types.Hash([]byte("decide"))
	quorum := []types.ReplicaID{1, 3, 4, 6, 7}
	var sigs []Signature
	for _, id := range quorum {
		sig, err := signers[id-1].Sign(digest)
		if err != nil {
			t.Fatal(err)
		}
		sigs = append(sigs, sig)
	}
	aggSig, err := agg.Aggregate(quorum, sigs)
	if err != nil {
		t.Fatal(err)
	}
	if len(aggSig) != simAggLen {
		t.Fatalf("aggregate is %dB, want constant %dB", len(aggSig), simAggLen)
	}
	if !agg.VerifyAggregate(reg, quorum, digest, aggSig) {
		t.Fatal("valid aggregate rejected")
	}
	// Wrong signer set (missing/extra/substituted member) must fail.
	if agg.VerifyAggregate(reg, quorum[:4], digest, aggSig) {
		t.Fatal("aggregate accepted for a subset of its signers")
	}
	if agg.VerifyAggregate(reg, []types.ReplicaID{1, 2, 4, 6, 7}, digest, aggSig) {
		t.Fatal("aggregate accepted for a substituted signer set")
	}
	if agg.VerifyAggregate(reg, quorum, types.Hash([]byte("other")), aggSig) {
		t.Fatal("aggregate accepted for a different digest")
	}
	bad := append(Signature(nil), aggSig...)
	bad[0] ^= 1
	if agg.VerifyAggregate(reg, quorum, digest, bad) {
		t.Fatal("tampered aggregate accepted")
	}
	if _, err := agg.Aggregate(quorum, sigs[:3]); err == nil {
		t.Fatal("mismatched signers/sigs accepted")
	}
	if _, err := agg.Aggregate(nil, nil); err == nil {
		t.Fatal("empty aggregation accepted")
	}
}

// Extraction reconstructs the exact signature a signer produced — the
// property that makes PoF attribution from aggregate certificates
// equivalent to the signed-statement form.
func TestSimExtractSignatureBitIdentical(t *testing.T) {
	signers, reg, err := GenerateCluster(SchemeSim, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	ex := signers[0].Scheme().(SignatureExtractor)
	digest := types.Hash([]byte("vote"))
	for _, s := range signers {
		orig, err := s.Sign(digest)
		if err != nil {
			t.Fatal(err)
		}
		got, ok := ex.ExtractSignature(reg, s.ID(), digest)
		if !ok {
			t.Fatalf("extraction failed for %v", s.ID())
		}
		if !bytes.Equal(orig, got) {
			t.Fatalf("extracted signature differs for %v", s.ID())
		}
	}
	if _, ok := ex.ExtractSignature(reg, 99, digest); ok {
		t.Fatal("extracted a signature for an unregistered identity")
	}
}

func TestBatchVerify(t *testing.T) {
	for _, kind := range []SchemeKind{SchemeEd25519, SchemeSim} {
		t.Run(kind.String(), func(t *testing.T) {
			signers, reg, err := GenerateCluster(kind, 5, 1)
			if err != nil {
				t.Fatal(err)
			}
			bv, ok := signers[0].Scheme().(BatchVerifier)
			if !ok {
				t.Fatalf("%v lost BatchVerifier", kind)
			}
			digest := types.Hash([]byte("aux"))
			ids := make([]types.ReplicaID, len(signers))
			sigs := make([]Signature, len(signers))
			for i, s := range signers {
				ids[i] = s.ID()
				if sigs[i], err = s.Sign(digest); err != nil {
					t.Fatal(err)
				}
			}
			if got := bv.VerifyBatch(reg, ids, digest, sigs); got != -1 {
				t.Fatalf("valid batch reported bad index %d", got)
			}
			// Corrupt the middle signature: exactly that index reported.
			bad := make([]Signature, len(sigs))
			copy(bad, sigs)
			bad[2] = append(Signature(nil), sigs[2]...)
			bad[2][0] ^= 0xff
			if got := bv.VerifyBatch(reg, ids, digest, bad); got != 2 {
				t.Fatalf("corrupt index = %d, want 2", got)
			}
			if got := bv.VerifyBatch(reg, ids[:3], digest, sigs); got != 0 {
				t.Fatalf("mismatched lengths = %d, want 0", got)
			}
		})
	}
}

// TestGenerateClusterDeterministic pins that the same seed yields the
// same PKI in independent GenerateCluster calls — the property the TCP
// demo cluster (cmd/zlb-node) relies on when each process re-derives the
// shared PKI from -seed. Go 1.24's crypto/ecdsa.GenerateKey stopped
// honoring a caller-supplied deterministic reader, which silently broke
// this for ECDSA; the scheme now samples the scalar from the stream
// itself.
func TestGenerateClusterDeterministic(t *testing.T) {
	for _, kind := range []SchemeKind{SchemeECDSA, SchemeEd25519, SchemeSim} {
		t.Run(kind.String(), func(t *testing.T) {
			s1, r1, err := GenerateCluster(kind, 4, 42)
			if err != nil {
				t.Fatal(err)
			}
			s2, r2, err := GenerateCluster(kind, 4, 42)
			if err != nil {
				t.Fatal(err)
			}
			for id := types.ReplicaID(1); id <= 4; id++ {
				a, _ := r1.PublicKeyOf(id)
				b, _ := r2.PublicKeyOf(id)
				if !bytes.Equal(a, b) {
					t.Fatalf("%v: replica %d public key differs across same-seed runs", kind, id)
				}
			}
			// Cross-run verification: a signature from run 1 must verify
			// against run 2's registry (what peer processes actually do).
			digest := types.Hash([]byte("cross-process"))
			sig, err := s1[0].Sign(digest)
			if err != nil {
				t.Fatal(err)
			}
			pub, _ := r2.PublicKeyOf(s1[0].ID())
			if !s2[0].Scheme().Verify(pub, digest, sig) {
				t.Fatalf("%v: run-1 signature rejected by run-2 PKI", kind)
			}
		})
	}
}
