// Package crypto provides the signature schemes and the public-key
// infrastructure (PKI) registry that ZLB's accountability layer builds on.
//
// The paper signs transactions and protocol messages with ECDSA
// (secp256k1). The Go standard library ships P-256 but not secp256k1, so
// the paper-faithful scheme here is ECDSA over P-256 — same signature
// shape, same API, equivalent unforgeability for the protocol's purposes.
// Two more schemes are provided:
//
//   - Ed25519: stdlib, fast and secure; the default for tests.
//   - Sim: a deterministic MAC-style scheme whose verification consults the
//     in-process registry. It is NOT cryptographically secure against an
//     out-of-process adversary; it exists so that simulations with 100
//     replicas and millions of signed messages finish quickly. The
//     discrete-event simulator separately charges *modeled* verification
//     time, so reported virtual-time results reflect real crypto costs.
package crypto

import (
	"crypto/ecdsa"
	"crypto/ed25519"
	"crypto/elliptic"
	"crypto/hmac"
	"crypto/sha256"
	"errors"
	"fmt"
	"io"
	"math/big"

	"github.com/zeroloss/zlb/internal/types"
)

// SchemeKind enumerates the available signature schemes.
type SchemeKind int

// Scheme kinds. Enums start at one so the zero value is invalid and
// caught early.
const (
	SchemeECDSA SchemeKind = iota + 1
	SchemeEd25519
	SchemeSim
)

// String implements fmt.Stringer.
func (k SchemeKind) String() string {
	switch k {
	case SchemeECDSA:
		return "ecdsa-p256"
	case SchemeEd25519:
		return "ed25519"
	case SchemeSim:
		return "sim"
	default:
		return fmt.Sprintf("scheme(%d)", int(k))
	}
}

// PublicKey is an opaque encoded public key.
type PublicKey []byte

// Signature is an opaque encoded signature.
type Signature []byte

// Scheme signs and verifies 32-byte digests.
type Scheme interface {
	// Kind identifies the scheme.
	Kind() SchemeKind
	// GenerateKey derives a key pair from the random source. The source
	// must provide at least 32 bytes.
	GenerateKey(rand io.Reader) (*KeyPair, error)
	// Sign signs digest with the private key held by kp.
	Sign(kp *KeyPair, digest types.Digest) (Signature, error)
	// Verify reports whether sig is a valid signature on digest under pub.
	Verify(pub PublicKey, digest types.Digest, sig Signature) bool
}

// KeyPair holds a private key together with its encoded public key.
type KeyPair struct {
	kind SchemeKind
	pub  PublicKey
	// exactly one of the following is set, matching kind
	ecdsaPriv *ecdsa.PrivateKey
	edPriv    ed25519.PrivateKey
	simSeed   []byte
}

// Public returns the encoded public key.
func (kp *KeyPair) Public() PublicKey { return kp.pub }

// Kind returns the scheme the pair belongs to.
func (kp *KeyPair) Kind() SchemeKind { return kp.kind }

var (
	// ErrBadRandom is returned when the random source fails.
	ErrBadRandom = errors.New("crypto: random source failure")
	// ErrWrongScheme is returned when a key pair is used with a scheme it
	// does not belong to.
	ErrWrongScheme = errors.New("crypto: key pair belongs to a different scheme")
)

// NewScheme returns the Scheme implementation for kind. The Sim scheme
// requires the registry it will consult for verification; pass nil for the
// others.
func NewScheme(kind SchemeKind, reg *Registry) (Scheme, error) {
	switch kind {
	case SchemeECDSA:
		return ecdsaScheme{}, nil
	case SchemeEd25519:
		return edScheme{}, nil
	case SchemeSim:
		if reg == nil {
			return nil, errors.New("crypto: sim scheme needs a registry")
		}
		return &simScheme{reg: reg}, nil
	default:
		return nil, fmt.Errorf("crypto: unknown scheme kind %d", int(kind))
	}
}

// ecdsaScheme implements Scheme over NIST P-256.
type ecdsaScheme struct{}

var _ Scheme = ecdsaScheme{}

func (ecdsaScheme) Kind() SchemeKind { return SchemeECDSA }

func (ecdsaScheme) GenerateKey(rand io.Reader) (*KeyPair, error) {
	// crypto/ecdsa.GenerateKey mixes its own entropy into the caller's
	// reader (Go 1.24's FIPS module ignores it outright), so a seeded
	// reader no longer reproduces the same key in every process. The
	// demo PKI derives each replica's key from a shared seed across
	// separate node processes, so derive the scalar directly instead:
	// rejection-sample d in [1, N-1] from the stream.
	curve := elliptic.P256()
	params := curve.Params()
	buf := make([]byte, (params.N.BitLen()+7)/8)
	for {
		if _, err := io.ReadFull(rand, buf); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadRandom, err)
		}
		d := new(big.Int).SetBytes(buf)
		if d.Sign() == 0 || d.Cmp(params.N) >= 0 {
			continue
		}
		priv := &ecdsa.PrivateKey{PublicKey: ecdsa.PublicKey{Curve: curve}, D: d}
		priv.X, priv.Y = curve.ScalarBaseMult(buf)
		pub := elliptic.MarshalCompressed(curve, priv.X, priv.Y)
		return &KeyPair{kind: SchemeECDSA, pub: pub, ecdsaPriv: priv}, nil
	}
}

func (ecdsaScheme) Sign(kp *KeyPair, digest types.Digest) (Signature, error) {
	if kp.kind != SchemeECDSA {
		return nil, ErrWrongScheme
	}
	// The nonce stream is derived from key+digest; note crypto/ecdsa
	// still consumes entropy nondeterministically (MaybeReadByte), so
	// ECDSA signatures are not bit-reproducible across runs — use
	// Ed25519 or the sim scheme where reproducibility matters.
	r, s, err := ecdsa.Sign(newDetReader(kp.ecdsaPriv.D.Bytes(), digest), kp.ecdsaPriv, digest[:])
	if err != nil {
		return nil, err
	}
	sig := make([]byte, 64)
	r.FillBytes(sig[:32])
	s.FillBytes(sig[32:])
	return sig, nil
}

func (ecdsaScheme) Verify(pub PublicKey, digest types.Digest, sig Signature) bool {
	if len(sig) != 64 {
		return false
	}
	x, y := elliptic.UnmarshalCompressed(elliptic.P256(), pub)
	if x == nil {
		return false
	}
	pk := &ecdsa.PublicKey{Curve: elliptic.P256(), X: x, Y: y}
	r := new(big.Int).SetBytes(sig[:32])
	s := new(big.Int).SetBytes(sig[32:])
	return ecdsa.Verify(pk, digest[:], r, s)
}

// detReader yields a deterministic byte stream for ECDSA nonce generation,
// seeded by the private scalar and the digest being signed (RFC-6979 in
// spirit, not to the letter).
type detReader struct {
	block [32]byte
	used  int
	ctr   uint8
	seed  []byte
}

func newDetReader(priv []byte, digest types.Digest) *detReader {
	seed := make([]byte, 0, len(priv)+len(digest))
	seed = append(seed, priv...)
	seed = append(seed, digest[:]...)
	r := &detReader{seed: seed, used: 32}
	return r
}

func (r *detReader) Read(p []byte) (int, error) {
	for i := range p {
		if r.used == 32 {
			h := sha256.New()
			h.Write(r.seed)
			h.Write([]byte{r.ctr})
			copy(r.block[:], h.Sum(nil))
			r.ctr++
			r.used = 0
		}
		p[i] = r.block[r.used]
		r.used++
	}
	return len(p), nil
}

// edScheme implements Scheme over Ed25519.
type edScheme struct{}

var _ Scheme = edScheme{}

func (edScheme) Kind() SchemeKind { return SchemeEd25519 }

func (edScheme) GenerateKey(rand io.Reader) (*KeyPair, error) {
	pub, priv, err := ed25519.GenerateKey(rand)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadRandom, err)
	}
	return &KeyPair{kind: SchemeEd25519, pub: PublicKey(pub), edPriv: priv}, nil
}

func (edScheme) Sign(kp *KeyPair, digest types.Digest) (Signature, error) {
	if kp.kind != SchemeEd25519 {
		return nil, ErrWrongScheme
	}
	return ed25519.Sign(kp.edPriv, digest[:]), nil
}

func (edScheme) Verify(pub PublicKey, digest types.Digest, sig Signature) bool {
	if len(pub) != ed25519.PublicKeySize || len(sig) != ed25519.SignatureSize {
		return false
	}
	return ed25519.Verify(ed25519.PublicKey(pub), digest[:], sig)
}

// simScheme is the fast in-process scheme: sig = HMAC-SHA256(seed, digest).
// Verification looks the seed up in the registry by public key. Only the
// simulator uses it; see the package comment for the security caveat.
type simScheme struct {
	reg *Registry
}

var _ Scheme = (*simScheme)(nil)

func (*simScheme) Kind() SchemeKind { return SchemeSim }

func (*simScheme) GenerateKey(rand io.Reader) (*KeyPair, error) {
	seed := make([]byte, 32)
	if _, err := io.ReadFull(rand, seed); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadRandom, err)
	}
	pub := sha256.Sum256(seed)
	return &KeyPair{kind: SchemeSim, pub: pub[:], simSeed: seed}, nil
}

func (*simScheme) Sign(kp *KeyPair, digest types.Digest) (Signature, error) {
	if kp.kind != SchemeSim {
		return nil, ErrWrongScheme
	}
	mac := simMAC(kp.simSeed, digest)
	return mac[:], nil
}

func (s *simScheme) Verify(pub PublicKey, digest types.Digest, sig Signature) bool {
	seed, ok := s.reg.simSeed(pub)
	if !ok {
		return false
	}
	expect := simMAC(seed, digest)
	return hmac.Equal(expect[:], sig)
}

// simMAC computes HMAC-SHA256(seed, digest) without the ~6 heap
// allocations hmac.New costs per call: verification is the simulator's
// hottest operation (millions of calls per run), so the two SHA-256
// passes run over stack buffers. The output is bit-identical to
// crypto/hmac's.
func simMAC(seed []byte, digest types.Digest) [32]byte {
	if len(seed) > 64 {
		h := sha256.Sum256(seed)
		seed = h[:]
	}
	var ipad, opad [64]byte
	copy(ipad[:], seed)
	copy(opad[:], seed)
	for i := range ipad {
		ipad[i] ^= 0x36
		opad[i] ^= 0x5c
	}
	var inner [64 + 32]byte
	copy(inner[:64], ipad[:])
	copy(inner[64:], digest[:])
	innerSum := sha256.Sum256(inner[:])
	var outer [64 + 32]byte
	copy(outer[:64], opad[:])
	copy(outer[64:], innerSum[:])
	return sha256.Sum256(outer[:])
}
