package crypto

import (
	"bytes"
	"testing"
	"testing/quick"

	"github.com/zeroloss/zlb/internal/types"
)

func TestSignVerifyAllSchemes(t *testing.T) {
	for _, kind := range []SchemeKind{SchemeECDSA, SchemeEd25519, SchemeSim} {
		t.Run(kind.String(), func(t *testing.T) {
			reg := NewRegistry(kind)
			scheme, err := NewScheme(kind, reg)
			if err != nil {
				t.Fatal(err)
			}
			kp, err := scheme.GenerateKey(NewDeterministicRand(1))
			if err != nil {
				t.Fatal(err)
			}
			if err := reg.Register(1, kp); err != nil {
				t.Fatal(err)
			}
			digest := types.Hash([]byte("statement"))
			sig, err := scheme.Sign(kp, digest)
			if err != nil {
				t.Fatal(err)
			}
			if !scheme.Verify(kp.Public(), digest, sig) {
				t.Fatal("valid signature rejected")
			}
			other := types.Hash([]byte("other"))
			if scheme.Verify(kp.Public(), other, sig) {
				t.Fatal("signature accepted for wrong digest")
			}
			bad := append(Signature(nil), sig...)
			bad[0] ^= 0xff
			if scheme.Verify(kp.Public(), digest, bad) {
				t.Fatal("tampered signature accepted")
			}
		})
	}
}

func TestCrossKeyRejection(t *testing.T) {
	for _, kind := range []SchemeKind{SchemeECDSA, SchemeEd25519, SchemeSim} {
		t.Run(kind.String(), func(t *testing.T) {
			reg := NewRegistry(kind)
			scheme, err := NewScheme(kind, reg)
			if err != nil {
				t.Fatal(err)
			}
			rand := NewDeterministicRand(2)
			kp1, _ := scheme.GenerateKey(rand)
			kp2, _ := scheme.GenerateKey(rand)
			reg.Register(1, kp1)
			reg.Register(2, kp2)
			digest := types.Hash([]byte("x"))
			sig, err := scheme.Sign(kp1, digest)
			if err != nil {
				t.Fatal(err)
			}
			if scheme.Verify(kp2.Public(), digest, sig) {
				t.Fatal("signature verified under the wrong key")
			}
		})
	}
}

func TestDeterministicKeysAndSignatures(t *testing.T) {
	// Reproducibility: the same seed yields the same keys and signatures.
	// ECDSA is excluded: crypto/ecdsa intentionally randomizes its
	// entropy consumption (randutil.MaybeReadByte), so it is not
	// reproducible even from a deterministic reader — simulations default
	// to Ed25519 or the sim scheme for this reason.
	for _, kind := range []SchemeKind{SchemeEd25519, SchemeSim} {
		reg1 := NewRegistry(kind)
		s1, _ := NewScheme(kind, reg1)
		reg2 := NewRegistry(kind)
		s2, _ := NewScheme(kind, reg2)
		kp1, _ := s1.GenerateKey(NewDeterministicRand(7))
		kp2, _ := s2.GenerateKey(NewDeterministicRand(7))
		if !bytes.Equal(kp1.Public(), kp2.Public()) {
			t.Fatalf("%v: same seed, different keys", kind)
		}
		d := types.Hash([]byte("d"))
		sig1, _ := s1.Sign(kp1, d)
		sig2, _ := s2.Sign(kp2, d)
		if !bytes.Equal(sig1, sig2) {
			t.Fatalf("%v: same seed, different signatures", kind)
		}
	}
}

func TestWrongSchemeKeyPair(t *testing.T) {
	regEd := NewRegistry(SchemeEd25519)
	ed, _ := NewScheme(SchemeEd25519, regEd)
	regEc := NewRegistry(SchemeECDSA)
	ec, _ := NewScheme(SchemeECDSA, regEc)
	kp, _ := ed.GenerateKey(NewDeterministicRand(1))
	if _, err := ec.Sign(kp, types.Hash([]byte("x"))); err == nil {
		t.Fatal("cross-scheme signing accepted")
	}
	if err := regEc.Register(1, kp); err == nil {
		t.Fatal("cross-scheme registration accepted")
	}
}

func TestGenerateCluster(t *testing.T) {
	signers, reg, err := GenerateCluster(SchemeSim, 5, 9)
	if err != nil {
		t.Fatal(err)
	}
	if len(signers) != 5 || reg.Size() != 5 {
		t.Fatalf("cluster size %d/%d", len(signers), reg.Size())
	}
	d := types.Hash([]byte("m"))
	sig, err := signers[2].Sign(d)
	if err != nil {
		t.Fatal(err)
	}
	// Everyone can verify everyone through the shared registry.
	for _, s := range signers {
		if !s.Verify(3, d, sig) {
			t.Fatal("cluster-wide verification failed")
		}
		if s.Verify(4, d, sig) {
			t.Fatal("signature attributed to the wrong replica")
		}
	}
}

func TestSignerIdentity(t *testing.T) {
	signers, _, err := GenerateCluster(SchemeEd25519, 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range signers {
		if s.ID() != types.ReplicaID(i+1) {
			t.Fatalf("signer %d has ID %v", i, s.ID())
		}
	}
}

func TestDeterministicRandStream(t *testing.T) {
	a := NewDeterministicRand(1)
	b := NewDeterministicRand(1)
	c := NewDeterministicRand(2)
	bufA := make([]byte, 64)
	bufB := make([]byte, 64)
	bufC := make([]byte, 64)
	a.Read(bufA)
	b.Read(bufB)
	c.Read(bufC)
	if !bytes.Equal(bufA, bufB) {
		t.Fatal("same seed, different stream")
	}
	if bytes.Equal(bufA, bufC) {
		t.Fatal("different seeds, same stream")
	}
}

// Property: sim-scheme signatures never verify across distinct digests.
func TestSimSchemeSoundnessProperty(t *testing.T) {
	reg := NewRegistry(SchemeSim)
	scheme, _ := NewScheme(SchemeSim, reg)
	kp, _ := scheme.GenerateKey(NewDeterministicRand(3))
	reg.Register(1, kp)
	f := func(a, b []byte) bool {
		da, db := types.Hash(a), types.Hash(b)
		sig, err := scheme.Sign(kp, da)
		if err != nil {
			return false
		}
		if da == db {
			return scheme.Verify(kp.Public(), db, sig)
		}
		return !scheme.Verify(kp.Public(), db, sig)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestUnknownSchemeKind(t *testing.T) {
	if _, err := NewScheme(SchemeKind(99), nil); err == nil {
		t.Fatal("unknown scheme accepted")
	}
	if _, err := NewScheme(SchemeSim, nil); err == nil {
		t.Fatal("sim scheme without registry accepted")
	}
}
