// Package chaos injects network faults into a live TCP cluster. A Proxy
// interposes on one directed replica link — the transport under test is
// configured with proxy addresses instead of real peer addresses
// (Net.PeersFor), so the exact production code paths are exercised, no
// forked transport — and can refuse connections (partition), reset live
// ones, discard forwarded bytes (one-way blackhole), pace forwarding to
// a byte rate (slow reader/writer), or delay it (latency spike). A Net
// builds the full n×(n−1) proxy mesh and offers group-level faults;
// Campaigns drive a real cluster through fault sequences and assert the
// recovery invariants the transport promises. See README.md.
package chaos

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// Proxy relays one directed TCP link (every connection the "from" node's
// writer dials toward the "to" node) and injects faults on it. The
// forward direction (dialer → target) carries the replica's frames and
// is where byte-level faults apply; the reverse direction (acks) is
// relayed untouched — a partition or reset kills both.
type Proxy struct {
	name   string // "3→5", for logs
	target string
	addr   string // fixed proxy address, stable across partition/heal

	mu          sync.Mutex
	ln          net.Listener // nil while partitioned or closed
	conns       map[net.Conn]struct{}
	partitioned bool
	closed      bool

	blackhole   atomic.Bool
	latencyNs   atomic.Int64 // added once per forwarded chunk
	throttleBps atomic.Int64 // forward byte rate cap; 0 = unlimited
}

// NewProxy starts a proxy on an ephemeral localhost port relaying to
// target. name labels the link in logs ("1→2").
func NewProxy(name, target string) (*Proxy, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("chaos: proxy %s: %w", name, err)
	}
	p := &Proxy{
		name:   name,
		target: target,
		addr:   ln.Addr().String(),
		ln:     ln,
		conns:  make(map[net.Conn]struct{}),
	}
	go p.acceptLoop(ln)
	return p, nil
}

// Addr is the address the faulted side should dial instead of the real
// peer address. It stays valid across Partition/Heal cycles.
func (p *Proxy) Addr() string { return p.addr }

// Partition refuses new connections (the dialer sees ECONNREFUSED — a
// dial failure, exactly what a real network split looks like, so the
// sending transport queues rather than burning its write-retry budget)
// and resets live ones, until Heal.
func (p *Proxy) Partition() {
	p.mu.Lock()
	p.partitioned = true
	if p.ln != nil {
		p.ln.Close()
		p.ln = nil
	}
	p.mu.Unlock()
	p.dropConns()
}

// Heal lifts a partition, re-listening on the same address. Existing
// damage stays done; the writer's redial loop re-establishes the link.
func (p *Proxy) Heal() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed || !p.partitioned {
		return nil
	}
	// The port was just released; retry briefly in case the close is
	// still settling.
	var ln net.Listener
	var err error
	for attempt := 0; attempt < 40; attempt++ {
		ln, err = net.Listen("tcp", p.addr)
		if err == nil {
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	if err != nil {
		return fmt.Errorf("chaos: heal %s: %w", p.name, err)
	}
	p.partitioned = false
	p.ln = ln
	go p.acceptLoop(ln)
	return nil
}

// Reset kills the live connections once but keeps accepting: a
// transient connection reset rather than a standing partition.
func (p *Proxy) Reset() { p.dropConns() }

// SetBlackhole toggles one-way packet loss: the proxy keeps reading
// from the dialer (so its writes appear to succeed) but forwards
// nothing. The cruellest fault for a sender — no error, no delivery.
func (p *Proxy) SetBlackhole(on bool) { p.blackhole.Store(on) }

// SetLatency adds d before each forwarded chunk (0 clears).
func (p *Proxy) SetLatency(d time.Duration) { p.latencyNs.Store(int64(d)) }

// SetThrottle caps the forward direction at bytesPerSec (0 clears): the
// proxy reads from the dialer no faster than the cap, so a sustained
// sender's socket buffer fills and its writes start blocking against
// the write deadline — a slow reader, seen from the wire.
func (p *Proxy) SetThrottle(bytesPerSec int) { p.throttleBps.Store(int64(bytesPerSec)) }

// ClearFaults lifts every standing fault on the link.
func (p *Proxy) ClearFaults() error {
	p.blackhole.Store(false)
	p.latencyNs.Store(0)
	p.throttleBps.Store(0)
	return p.Heal()
}

// Close stops the proxy and kills its connections.
func (p *Proxy) Close() {
	p.mu.Lock()
	p.closed = true
	if p.ln != nil {
		p.ln.Close()
		p.ln = nil
	}
	p.mu.Unlock()
	p.dropConns()
}

func (p *Proxy) acceptLoop(ln net.Listener) {
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		go p.relay(conn)
	}
}

// relay dials the real peer and pumps both directions until either side
// dies or a fault kills the pair.
func (p *Proxy) relay(client net.Conn) {
	upstream, err := net.DialTimeout("tcp", p.target, 2*time.Second)
	if err != nil {
		reset(client)
		return
	}
	if !p.track(client, upstream) {
		reset(client)
		reset(upstream)
		return
	}
	done := func() {
		p.untrack(client, upstream)
		client.Close()
		upstream.Close()
	}
	var once sync.Once
	go func() {
		defer once.Do(done)
		p.pumpForward(client, upstream)
	}()
	go func() {
		defer once.Do(done)
		pumpPlain(upstream, client)
	}()
}

// pumpForward relays dialer → peer, applying the byte-level faults.
// Small chunks keep throttle pacing and latency injection fine-grained.
func (p *Proxy) pumpForward(src, dst net.Conn) {
	buf := make([]byte, 4096)
	for {
		chunk := buf
		if p.throttleBps.Load() > 0 {
			chunk = buf[:512]
		}
		n, err := src.Read(chunk)
		if n > 0 {
			if d := time.Duration(p.latencyNs.Load()); d > 0 {
				time.Sleep(d)
			}
			if bps := p.throttleBps.Load(); bps > 0 {
				time.Sleep(time.Duration(n) * time.Second / time.Duration(bps))
			}
			if !p.blackhole.Load() {
				if _, werr := dst.Write(chunk[:n]); werr != nil {
					return
				}
			}
		}
		if err != nil {
			return
		}
	}
}

// pumpPlain relays the reverse (ack) direction untouched.
func pumpPlain(src, dst net.Conn) {
	buf := make([]byte, 4096)
	for {
		n, err := src.Read(buf)
		if n > 0 {
			if _, werr := dst.Write(buf[:n]); werr != nil {
				return
			}
		}
		if err != nil {
			return
		}
	}
}

func (p *Proxy) track(conns ...net.Conn) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed || p.partitioned {
		return false
	}
	for _, c := range conns {
		p.conns[c] = struct{}{}
	}
	return true
}

func (p *Proxy) untrack(conns ...net.Conn) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, c := range conns {
		delete(p.conns, c)
	}
}

func (p *Proxy) dropConns() {
	p.mu.Lock()
	conns := make([]net.Conn, 0, len(p.conns))
	for c := range p.conns {
		conns = append(conns, c)
	}
	p.mu.Unlock()
	for _, c := range conns {
		reset(c)
	}
}

// reset closes a connection with an RST rather than a FIN where the
// platform allows it — faults should look like failures, not goodbyes.
func reset(conn net.Conn) {
	if tcp, ok := conn.(*net.TCPConn); ok {
		tcp.SetLinger(0)
	}
	conn.Close()
}
