package chaos

import (
	"fmt"

	"github.com/zeroloss/zlb/internal/types"
)

// Net is the full proxy mesh for an n-replica cluster: one Proxy per
// directed link (from, to), so faults can be asymmetric — a one-way
// blackhole or a slow reader affects exactly one direction of one pair.
// Nodes are configured with PeersFor addresses; clients keep dialing
// the real listen addresses, so submits bypass the mesh the way real
// client traffic bypasses inter-replica links.
type Net struct {
	real  []string // real listen addresses in ID order (index 0 = replica 1)
	links map[[2]types.ReplicaID]*Proxy
}

// NewNet builds the mesh over the cluster's real listen addresses
// (index i serves replica i+1).
func NewNet(realAddrs []string) (*Net, error) {
	n := &Net{
		real:  append([]string(nil), realAddrs...),
		links: make(map[[2]types.ReplicaID]*Proxy),
	}
	for i := range realAddrs {
		for j := range realAddrs {
			if i == j {
				continue
			}
			from, to := types.ReplicaID(i+1), types.ReplicaID(j+1)
			p, err := NewProxy(fmt.Sprintf("%d→%d", from, to), realAddrs[j])
			if err != nil {
				n.Close()
				return nil, err
			}
			n.links[[2]types.ReplicaID{from, to}] = p
		}
	}
	return n, nil
}

// PeersFor is the peer address list replica id should be configured
// with: every other replica's entry is the proxy for the (id → other)
// link, its own entry is its real listen address.
func (n *Net) PeersFor(id types.ReplicaID) []string {
	out := make([]string, len(n.real))
	for j := range n.real {
		to := types.ReplicaID(j + 1)
		if to == id {
			out[j] = n.real[j]
			continue
		}
		out[j] = n.links[[2]types.ReplicaID{id, to}].Addr()
	}
	return out
}

// Link returns the proxy carrying from's traffic toward to.
func (n *Net) Link(from, to types.ReplicaID) *Proxy {
	return n.links[[2]types.ReplicaID{from, to}]
}

// EachLink visits every directed link.
func (n *Net) EachLink(f func(from, to types.ReplicaID, p *Proxy)) {
	for key, p := range n.links {
		f(key[0], key[1], p)
	}
}

// IsolatePeer partitions every link touching id, in both directions.
func (n *Net) IsolatePeer(id types.ReplicaID) {
	n.EachLink(func(from, to types.ReplicaID, p *Proxy) {
		if from == id || to == id {
			p.Partition()
		}
	})
}

// HealPeer lifts IsolatePeer.
func (n *Net) HealPeer(id types.ReplicaID) error {
	var firstErr error
	n.EachLink(func(from, to types.ReplicaID, p *Proxy) {
		if from == id || to == id {
			if err := p.Heal(); err != nil && firstErr == nil {
				firstErr = err
			}
		}
	})
	return firstErr
}

// PartitionGroups partitions every link crossing between group a and
// group b, both directions. Links inside a group are untouched.
func (n *Net) PartitionGroups(a, b []types.ReplicaID) {
	inA, inB := idSet(a), idSet(b)
	n.EachLink(func(from, to types.ReplicaID, p *Proxy) {
		if (inA[from] && inB[to]) || (inB[from] && inA[to]) {
			p.Partition()
		}
	})
}

// HealAll clears every standing fault on every link.
func (n *Net) HealAll() error {
	var firstErr error
	n.EachLink(func(_, _ types.ReplicaID, p *Proxy) {
		if err := p.ClearFaults(); err != nil && firstErr == nil {
			firstErr = err
		}
	})
	return firstErr
}

// Close tears the mesh down.
func (n *Net) Close() {
	n.EachLink(func(_, _ types.ReplicaID, p *Proxy) { p.Close() })
}

func idSet(ids []types.ReplicaID) map[types.ReplicaID]bool {
	out := make(map[types.ReplicaID]bool, len(ids))
	for _, id := range ids {
		out[id] = true
	}
	return out
}
