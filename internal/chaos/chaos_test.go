package chaos

import (
	"errors"
	"io"
	"net"
	"syscall"
	"testing"
	"time"

	"github.com/zeroloss/zlb/internal/types"
)

// echoServer accepts connections and echoes everything back.
func echoServer(t *testing.T) (addr string, closeFn func()) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				defer conn.Close()
				io.Copy(conn, conn)
			}()
		}
	}()
	return ln.Addr().String(), func() { ln.Close() }
}

func roundTrip(t *testing.T, addr, payload string) (string, error) {
	t.Helper()
	conn, err := net.DialTimeout("tcp", addr, 2*time.Second)
	if err != nil {
		return "", err
	}
	defer conn.Close()
	if _, err := conn.Write([]byte(payload)); err != nil {
		return "", err
	}
	buf := make([]byte, len(payload))
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := io.ReadFull(conn, buf); err != nil {
		return "", err
	}
	return string(buf), nil
}

func TestProxyRelays(t *testing.T) {
	addr, stop := echoServer(t)
	defer stop()
	p, err := NewProxy("test", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	got, err := roundTrip(t, p.Addr(), "hello")
	if err != nil {
		t.Fatal(err)
	}
	if got != "hello" {
		t.Fatalf("relayed %q, want %q", got, "hello")
	}
}

// TestProxyPartitionRefusesDials pins the fault semantics partitions
// rely on: while partitioned, dials fail with a connection error (the
// transport treats that as backoff-only, never frame loss), and Heal
// restores the link on the same address.
func TestProxyPartitionRefusesDials(t *testing.T) {
	addr, stop := echoServer(t)
	defer stop()
	p, err := NewProxy("test", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	proxyAddr := p.Addr()

	p.Partition()
	if _, err := net.DialTimeout("tcp", proxyAddr, time.Second); err == nil {
		t.Fatal("dial through a partitioned proxy succeeded")
	} else if !errors.Is(err, syscall.ECONNREFUSED) {
		t.Fatalf("partitioned dial failed with %v, want connection refused", err)
	}

	if err := p.Heal(); err != nil {
		t.Fatal(err)
	}
	if p.Addr() != proxyAddr {
		t.Fatalf("heal moved the proxy to %s", p.Addr())
	}
	got, err := roundTrip(t, proxyAddr, "back")
	if err != nil {
		t.Fatalf("healed proxy not relaying: %v", err)
	}
	if got != "back" {
		t.Fatalf("relayed %q after heal, want %q", got, "back")
	}
}

func TestProxyPartitionResetsLiveConns(t *testing.T) {
	addr, stop := echoServer(t)
	defer stop()
	p, err := NewProxy("test", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	conn, err := net.DialTimeout("tcp", p.Addr(), 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := roundTrip(t, p.Addr(), "warm"); err != nil {
		t.Fatal(err)
	}

	p.Partition()
	conn.SetReadDeadline(time.Now().Add(3 * time.Second))
	buf := make([]byte, 1)
	if _, err := conn.Read(buf); err == nil {
		t.Fatal("live connection survived a partition")
	}
}

func TestProxyBlackholeDiscards(t *testing.T) {
	addr, stop := echoServer(t)
	defer stop()
	p, err := NewProxy("test", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	p.SetBlackhole(true)

	conn, err := net.DialTimeout("tcp", p.Addr(), 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// The write succeeds (the proxy keeps reading) but nothing is
	// forwarded, so no echo ever comes back.
	if _, err := conn.Write([]byte("into the void")); err != nil {
		t.Fatalf("blackholed write failed: %v", err)
	}
	conn.SetReadDeadline(time.Now().Add(300 * time.Millisecond))
	buf := make([]byte, 1)
	if _, err := conn.Read(buf); err == nil {
		t.Fatal("echo escaped a blackholed link")
	}
}

func TestProxyThrottlePaces(t *testing.T) {
	addr, stop := echoServer(t)
	defer stop()
	p, err := NewProxy("test", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	p.SetThrottle(1024) // 1 KiB/s

	payload := make([]byte, 2048)
	start := time.Now()
	conn, err := net.DialTimeout("tcp", p.Addr(), 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write(payload); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(payload))
	conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	if _, err := io.ReadFull(conn, got); err != nil {
		t.Fatal(err)
	}
	// 2 KiB at 1 KiB/s is ~2 s of pacing; accept anything clearly slower
	// than an unthrottled localhost round trip.
	if elapsed := time.Since(start); elapsed < time.Second {
		t.Fatalf("2 KiB crossed a 1 KiB/s link in %v", elapsed)
	}
}

func TestProxyLatencyDelays(t *testing.T) {
	addr, stop := echoServer(t)
	defer stop()
	p, err := NewProxy("test", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	p.SetLatency(200 * time.Millisecond)

	start := time.Now()
	if _, err := roundTrip(t, p.Addr(), "slow"); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 150*time.Millisecond {
		t.Fatalf("round trip took %v through a 200ms link", elapsed)
	}
}

func TestNetMeshAndGroupFaults(t *testing.T) {
	const n = 3
	addrs := make([]string, n)
	stops := make([]func(), n)
	for i := range addrs {
		addrs[i], stops[i] = echoServer(t)
		defer stops[i]()
	}
	mesh, err := NewNet(addrs)
	if err != nil {
		t.Fatal(err)
	}
	defer mesh.Close()

	// PeersFor: own entry is the real address, others are proxies.
	for id := types.ReplicaID(1); id <= n; id++ {
		peers := mesh.PeersFor(id)
		if len(peers) != n {
			t.Fatalf("PeersFor(%v) returned %d entries", id, len(peers))
		}
		if peers[id-1] != addrs[id-1] {
			t.Fatalf("PeersFor(%v) self entry %s, want real %s", id, peers[id-1], addrs[id-1])
		}
		for j, a := range peers {
			if types.ReplicaID(j+1) == id {
				continue
			}
			if a == addrs[j] {
				t.Fatalf("PeersFor(%v) entry %d is the real address, want a proxy", id, j)
			}
			if got, err := roundTrip(t, a, "ping"); err != nil || got != "ping" {
				t.Fatalf("link %v→%d not relaying: %v", id, j+1, err)
			}
		}
	}

	// PartitionGroups cuts exactly the crossing links, both directions.
	mesh.PartitionGroups([]types.ReplicaID{1}, []types.ReplicaID{2, 3})
	check := func(from, to types.ReplicaID, wantCut bool) {
		t.Helper()
		_, err := roundTrip(t, mesh.Link(from, to).Addr(), "x")
		if wantCut && err == nil {
			t.Fatalf("link %v→%v alive inside a partition", from, to)
		}
		if !wantCut && err != nil {
			t.Fatalf("intra-group link %v→%v cut: %v", from, to, err)
		}
	}
	check(1, 2, true)
	check(2, 1, true)
	check(1, 3, true)
	check(3, 1, true)
	check(2, 3, false)
	check(3, 2, false)

	if err := mesh.HealAll(); err != nil {
		t.Fatal(err)
	}
	check(1, 2, false)
	check(2, 1, false)
}

func TestCampaignRegistry(t *testing.T) {
	names := Names()
	if len(names) == 0 {
		t.Fatal("no campaigns registered")
	}
	for _, name := range names {
		c, err := Find(name)
		if err != nil {
			t.Fatal(err)
		}
		if c.Nodes < 5 {
			t.Fatalf("campaign %s wants n=%d, campaigns require n>=5", name, c.Nodes)
		}
		if c.Run == nil || c.Description == "" {
			t.Fatalf("campaign %s incompletely registered", name)
		}
	}
	if _, err := Find("no-such-campaign"); err == nil {
		t.Fatal("Find accepted an unknown campaign")
	}
}
