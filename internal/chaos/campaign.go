package chaos

import (
	"fmt"
	"time"

	"github.com/zeroloss/zlb/internal/transport"
	"github.com/zeroloss/zlb/internal/types"
)

// ChainState is the slice of a replica's ledger a campaign asserts on.
type ChainState struct {
	Height  int
	LastK   uint64
	Digests map[uint64]types.Digest
}

// Cluster is the live n-replica deployment a campaign drives. The
// implementation lives with the binary under test (cmd/zlb-node's test
// harness): chaos stays a pure fault/invariant layer with no knowledge
// of how replicas are built, mirroring how internal/scenario drives the
// simulator through the harness package.
type Cluster interface {
	// N is the cluster size.
	N() int
	// Submit broadcasts one client payment to the listed replicas (all
	// replicas when empty), retrying each until the submit is accepted.
	// Submits dial the real listen addresses — client traffic bypasses
	// the proxy mesh, like real deployments where client links and
	// replica links are distinct.
	Submit(to ...types.ReplicaID) error
	// State reads the replica's chain state on its event loop.
	State(id types.ReplicaID) (ChainState, error)
	// Kill stops a replica; Restart brings it back on the same address
	// and data directory (the durable-store recovery + catch-up path).
	Kill(id types.ReplicaID) error
	Restart(id types.ReplicaID) error
	// StallProbe round-trips a no-op closure through the replica's
	// event loop, measuring how long the loop takes to service it.
	StallProbe(id types.ReplicaID, timeout time.Duration) (time.Duration, error)
	// PeerHealth snapshots the replica's transport health for its peers.
	PeerHealth(id types.ReplicaID) []transport.PeerHealth
}

// Recovery is one measured heal→agreement interval: the wall-clock
// cost of recovering from a standing fault, from the moment the fault
// is lifted (or the victim restarted) to full bit-for-bit agreement.
type Recovery struct {
	Fault    string
	Duration time.Duration
}

// Env is what a campaign runs against: the proxy mesh to fault, the
// cluster to drive and the invariant bounds to hold.
type Env struct {
	Net     *Net
	Cluster Cluster
	// StallBound is the ceiling a StallProbe round-trip may take while
	// faults are standing. The tentpole invariant: dead or slow peers
	// cost their own queues, never the event loop.
	StallBound time.Duration
	// Logf receives campaign progress; nil discards it.
	Logf func(format string, args ...any)
	// Recoveries accumulates the heal→agreement intervals the campaign
	// measured (EXPERIMENTS.md tabulates them per fault type).
	Recoveries []Recovery
}

func (e *Env) log(format string, args ...any) {
	if e.Logf != nil {
		e.Logf(format, args...)
	}
}

func (e *Env) all() []types.ReplicaID {
	ids := make([]types.ReplicaID, e.Cluster.N())
	for i := range ids {
		ids[i] = types.ReplicaID(i + 1)
	}
	return ids
}

// timeRecovery times the heal step: heal lifts the fault (or restarts
// the victim), then the listed replicas must agree at minHeight. The
// measured interval is appended to e.Recoveries.
func (e *Env) timeRecovery(fault string, heal func() error, minHeight int, timeout time.Duration, ids ...types.ReplicaID) error {
	start := time.Now()
	if err := heal(); err != nil {
		return err
	}
	if err := e.WaitAgreement(minHeight, timeout, ids...); err != nil {
		return err
	}
	d := time.Since(start)
	e.Recoveries = append(e.Recoveries, Recovery{Fault: fault, Duration: d})
	e.log("recovery %q: heal → agreement at height %d in %v", fault, minHeight, d.Round(time.Millisecond))
	return nil
}

// Campaign is one registered fault sequence with its recovery
// invariants. Campaigns derive their topology (partition groups,
// victims, quorums) from the cluster's actual size, so one registration
// runs at n=5 in CI and at n=9 in the nightly matrix.
type Campaign struct {
	Name        string
	Description string
	// Nodes is the minimum cluster size the campaign needs (≥ 5: large
	// enough that a below-quorum split leaves a three-replica side).
	// Harnesses may run it larger.
	Nodes int
	// Long marks campaigns for the nightly matrix only; the CI smoke
	// job runs the rest.
	Long bool
	Run  func(e *Env) error
}

// campaigns is the ordered registry; order is deterministic for reports.
var campaigns = []Campaign{
	{
		Name: "partition-then-heal-tcp",
		Description: "split the cluster below quorum on both sides: commits pause, " +
			"event loops stay live, health degrades to suspect, and the queued " +
			"cross-partition traffic flushes on heal into chain agreement",
		Nodes: 5,
		Run:   runPartitionThenHeal,
	},
	{
		Name: "flapping-peer",
		Description: "one replica's links flap up and down: each cycle redials and " +
			"recovers, reconnect counters advance, and no flap ever stalls the " +
			"others' event loops or the chain",
		Nodes: 5,
		Run:   runFlappingPeer,
	},
	{
		Name: "slow-reader-starvation",
		Description: "every link toward one replica is throttled to a trickle: the " +
			"slow reader's backlog lives in its senders' peer queues, the quorum " +
			"keeps committing, and the laggard converges once the throttle lifts",
		Nodes: 5,
		Run:   runSlowReaderStarvation,
	},
	{
		Name: "restart-storm",
		Description: "rolling kill/restart across the committee under load: each " +
			"victim recovers its store, catches up the missed tail, and the chain " +
			"never forks",
		Nodes: 5,
		Long:  true,
		Run:   runRestartStorm,
	},
}

// Campaigns returns the registered campaigns in registration order.
func Campaigns() []Campaign {
	out := make([]Campaign, len(campaigns))
	copy(out, campaigns)
	return out
}

// Names lists the registered campaign names in registration order.
func Names() []string {
	out := make([]string, len(campaigns))
	for i, c := range campaigns {
		out[i] = c.Name
	}
	return out
}

// Find returns a registered campaign by name.
func Find(name string) (Campaign, error) {
	for _, c := range campaigns {
		if c.Name == name {
			return c, nil
		}
	}
	return Campaign{}, fmt.Errorf("chaos: unknown campaign %q (have %v)", name, Names())
}

// ---- invariant helpers ----

// WaitHeights polls until every listed replica reports Height ≥
// minHeight.
func (e *Env) WaitHeights(minHeight int, timeout time.Duration, ids ...types.ReplicaID) error {
	if len(ids) == 0 {
		ids = e.all()
	}
	deadline := time.Now().Add(timeout)
	for {
		ok := true
		for _, id := range ids {
			st, err := e.Cluster.State(id)
			if err != nil || st.Height < minHeight {
				ok = false
				break
			}
		}
		if ok {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("replicas %v did not all reach height %d within %v", ids, minHeight, timeout)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

// WaitAgreement polls until every listed replica reports Height ≥
// minHeight and all of them agree bit for bit: same last instance, same
// block digest at every instance. This is the safety invariant every
// campaign ends on — whatever the faults did, honest replicas converge
// to one chain.
func (e *Env) WaitAgreement(minHeight int, timeout time.Duration, ids ...types.ReplicaID) error {
	if len(ids) == 0 {
		ids = e.all()
	}
	deadline := time.Now().Add(timeout)
	var lastErr error
	for {
		lastErr = e.checkAgreement(minHeight, ids)
		if lastErr == nil {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("no agreement at height %d within %v: %w", minHeight, timeout, lastErr)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

func (e *Env) checkAgreement(minHeight int, ids []types.ReplicaID) error {
	ref, err := e.Cluster.State(ids[0])
	if err != nil {
		return fmt.Errorf("replica %v: %w", ids[0], err)
	}
	if ref.Height < minHeight {
		return fmt.Errorf("replica %v at height %d", ids[0], ref.Height)
	}
	for _, id := range ids[1:] {
		st, err := e.Cluster.State(id)
		if err != nil {
			return fmt.Errorf("replica %v: %w", id, err)
		}
		if st.Height < minHeight {
			return fmt.Errorf("replica %v at height %d", id, st.Height)
		}
		if st.LastK != ref.LastK || len(st.Digests) != len(ref.Digests) {
			return fmt.Errorf("replica %v at instance %d with %d digests, replica %v at %d with %d",
				id, st.LastK, len(st.Digests), ids[0], ref.LastK, len(ref.Digests))
		}
		for k, d := range ref.Digests {
			if st.Digests[k] != d {
				return fmt.Errorf("replicas %v and %v disagree at instance %d", ids[0], id, k)
			}
		}
	}
	return nil
}

// RequireStallBound probes each listed replica's event loop and fails
// if any round-trip exceeds the bound — the liveness invariant that
// faulted peers never wedge the loop.
func (e *Env) RequireStallBound(ids ...types.ReplicaID) error {
	if len(ids) == 0 {
		ids = e.all()
	}
	for _, id := range ids {
		rt, err := e.Cluster.StallProbe(id, e.StallBound)
		if err != nil {
			return fmt.Errorf("replica %v event loop stalled past %v: %w", id, e.StallBound, err)
		}
		if rt > e.StallBound {
			return fmt.Errorf("replica %v event-loop round-trip %v exceeds bound %v", id, rt, e.StallBound)
		}
	}
	return nil
}

// WaitPeerDegraded polls until replica on's health for peer reports
// backoff or suspect — the metric-facing proof that an injected fault
// was observed.
func (e *Env) WaitPeerDegraded(on, peer types.ReplicaID, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		for _, h := range e.Cluster.PeerHealth(on) {
			if h.ID == peer && (h.State == transport.StateBackoff || h.State == transport.StateSuspect) {
				return nil
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("replica %v never saw peer %v degrade within %v", on, peer, timeout)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// WaitPeerConnected polls until replica on's health for peer reports
// connected again — the writer completed a redial after a heal.
func (e *Env) WaitPeerConnected(on, peer types.ReplicaID, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		if h, ok := e.peerHealthFor(on, peer); ok && h.State == transport.StateConnected {
			return nil
		}
		if time.Now().After(deadline) {
			h, _ := e.peerHealthFor(on, peer)
			return fmt.Errorf("replica %v never saw peer %v reconnect within %v (state %v)", on, peer, timeout, h.State)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

func (e *Env) peerHealthFor(on, peer types.ReplicaID) (transport.PeerHealth, bool) {
	for _, h := range e.Cluster.PeerHealth(on) {
		if h.ID == peer {
			return h, true
		}
	}
	return transport.PeerHealth{}, false
}

// ---- campaigns ----

// runPartitionThenHeal cuts the cluster in half (⌊n/2⌋ | ⌈n/2⌉, both
// below the ⌈2n/3⌉ quorum for any n ≥ 5), so commits pause while
// submits keep landing in mempools (client links bypass the mesh). The
// invariants: no event loop stalls behind the dead links, health
// degrades to suspect, no side commits alone, and after heal the
// traffic queued in the peer queues flushes — the cluster converges on
// the submitted block.
func runPartitionThenHeal(e *Env) error {
	ids := e.all()
	groupA := ids[:len(ids)/2]
	groupB := ids[len(ids)/2:]

	e.log("healthy warmup: committing two blocks")
	for b := 1; b <= 2; b++ {
		if err := e.Cluster.Submit(); err != nil {
			return err
		}
		if err := e.WaitAgreement(b, 60*time.Second); err != nil {
			return fmt.Errorf("warmup block %d: %w", b, err)
		}
	}

	e.log("partitioning %v | %v", groupA, groupB)
	e.Net.PartitionGroups(groupA, groupB)
	if err := e.Cluster.Submit(); err != nil {
		return err
	}

	// The fault must be visible in health: the first near-side
	// replica's writers toward the far side exhaust their consecutive
	// failures into suspect.
	for _, far := range groupB {
		if err := e.WaitPeerDegraded(groupA[0], far, 30*time.Second); err != nil {
			return err
		}
	}
	// And must cost nothing but the dead links: every event loop stays
	// responsive, and neither side commits the partitioned block.
	if err := e.RequireStallBound(); err != nil {
		return err
	}
	for _, id := range e.all() {
		st, err := e.Cluster.State(id)
		if err != nil {
			return err
		}
		if st.Height >= 3 {
			return fmt.Errorf("replica %v committed block 3 inside a below-quorum partition", id)
		}
	}

	e.log("healing: queued cross-partition traffic flushes")
	if err := e.timeRecovery("partition", e.Net.HealAll, 3, 120*time.Second); err != nil {
		return fmt.Errorf("after heal: %w", err)
	}
	return nil
}

// runFlappingPeer cycles the last replica's links down and up under
// load: each down window commits a block with the remaining quorum
// (whose frames toward the victim fail into backoff/suspect, without
// stalling anyone), each up window flushes the queued tail so the
// victim catches up before the next cut. Reconnect counters must
// advance once per cycle.
func runFlappingPeer(e *Env) error {
	victim := types.ReplicaID(e.Cluster.N())
	const cycles = 3
	live := e.all()[:e.Cluster.N()-1]

	if err := e.Cluster.Submit(); err != nil {
		return err
	}
	if err := e.WaitAgreement(1, 60*time.Second); err != nil {
		return fmt.Errorf("warmup: %w", err)
	}

	for c := 1; c <= cycles; c++ {
		e.log("flap %d/%d: isolating replica %v and committing without it", c, cycles, victim)
		e.Net.IsolatePeer(victim)
		if err := e.Cluster.Submit(live...); err != nil {
			return err
		}
		if err := e.WaitHeights(1+c, 90*time.Second, live...); err != nil {
			return fmt.Errorf("quorum behind the flap %d: %w", c, err)
		}
		// The commit traffic toward the dead links must show up in
		// health — and cost nothing but those links.
		if err := e.WaitPeerDegraded(1, victim, 30*time.Second); err != nil {
			return err
		}
		if err := e.RequireStallBound(live...); err != nil {
			return fmt.Errorf("flap %d: %w", c, err)
		}

		e.log("flap %d/%d: healing; the queued tail flushes to the victim", c, cycles)
		heal := func() error { return e.Net.HealPeer(victim) }
		if err := e.timeRecovery(fmt.Sprintf("flap-%d", c), heal, 1+c, 90*time.Second); err != nil {
			return fmt.Errorf("after flap %d: %w", c, err)
		}
		// Don't cut again until replica 1's writer has finished its
		// redial: agreement can land through the echo quorum while that
		// writer is still asleep in backoff, and a heal window shorter
		// than the backoff would let a cycle pass without a reconnect.
		if err := e.WaitPeerConnected(1, victim, 30*time.Second); err != nil {
			return fmt.Errorf("after flap %d: %w", c, err)
		}
	}

	// The churn must be visible in health: one successful redial per
	// down/up cycle.
	h, ok := e.peerHealthFor(1, victim)
	if !ok || h.Reconnects < cycles {
		return fmt.Errorf("replica 1 counted %d reconnects toward the flapper, want >= %d", h.Reconnects, cycles)
	}
	return nil
}

// runSlowReaderStarvation throttles every link toward replica 2 to a
// trickle. The backlog must live in the senders' per-peer queues: the
// unimpeded quorum (everyone else) keeps committing at full speed with
// bounded event-loop latency while 2 lags, and once the throttle lifts
// the laggard drains the queued tail and converges.
func runSlowReaderStarvation(e *Env) error {
	const victim = types.ReplicaID(2)
	quorum := make([]types.ReplicaID, 0, e.Cluster.N()-1)
	for _, id := range e.all() {
		if id != victim {
			quorum = append(quorum, id)
		}
	}

	if err := e.Cluster.Submit(); err != nil {
		return err
	}
	if err := e.WaitAgreement(1, 60*time.Second); err != nil {
		return fmt.Errorf("warmup: %w", err)
	}

	e.log("throttling every link toward replica %v", victim)
	for _, from := range quorum {
		link := e.Net.Link(from, victim)
		link.SetThrottle(2048)
		link.SetLatency(20 * time.Millisecond)
	}

	for b := 2; b <= 3; b++ {
		if err := e.Cluster.Submit(); err != nil {
			return err
		}
		if err := e.WaitHeights(b, 90*time.Second, quorum...); err != nil {
			return fmt.Errorf("quorum behind a slow reader, block %d: %w", b, err)
		}
	}
	if err := e.RequireStallBound(quorum...); err != nil {
		return err
	}

	e.log("lifting the throttle: the laggard drains and converges")
	if err := e.timeRecovery("slow-reader", e.Net.HealAll, 3, 120*time.Second); err != nil {
		return fmt.Errorf("laggard convergence: %w", err)
	}
	return nil
}

// runRestartStorm rolls kill/restart across the committee: each victim
// leaves at least the ⌈2n/3⌉ quorum behind (which keeps committing),
// then returns through durable-store recovery and certificate-verified
// catch-up. Ends in full agreement with no forks.
func runRestartStorm(e *Env) error {
	n := e.Cluster.N()
	victims := []types.ReplicaID{types.ReplicaID(n), types.ReplicaID(n - 1)}

	if err := e.Cluster.Submit(); err != nil {
		return err
	}
	if err := e.WaitAgreement(1, 60*time.Second); err != nil {
		return fmt.Errorf("warmup: %w", err)
	}

	height := 1
	for _, v := range victims {
		live := make([]types.ReplicaID, 0, e.Cluster.N()-1)
		for _, id := range e.all() {
			if id != v {
				live = append(live, id)
			}
		}
		e.log("killing replica %v; the remaining quorum commits", v)
		if err := e.Cluster.Kill(v); err != nil {
			return err
		}
		if err := e.Cluster.Submit(live...); err != nil {
			return err
		}
		height++
		if err := e.WaitHeights(height, 120*time.Second, live...); err != nil {
			return fmt.Errorf("quorum without %v: %w", v, err)
		}
		if err := e.RequireStallBound(live...); err != nil {
			return fmt.Errorf("with %v down: %w", v, err)
		}

		e.log("restarting replica %v; it must catch the missed tail up", v)
		restart := func() error { return e.Cluster.Restart(v) }
		if err := e.timeRecovery(fmt.Sprintf("restart-%d", v), restart, height, 120*time.Second); err != nil {
			return fmt.Errorf("after restarting %v: %w", v, err)
		}
	}

	if err := e.Cluster.Submit(); err != nil {
		return err
	}
	height++
	if err := e.WaitAgreement(height, 120*time.Second); err != nil {
		return fmt.Errorf("final full-committee block: %w", err)
	}
	return nil
}
