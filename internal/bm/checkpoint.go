// Ledger checkpoints: export the complete blockchain-manager state as a
// wire.CheckpointState snapshot and rebuild a ledger from one. The
// durable store (internal/store) cuts a checkpoint every few blocks and
// prunes the block bodies below it; recovery and standby catch-up both
// start from the latest snapshot and replay only the log tail.

package bm

import (
	"sort"

	"github.com/zeroloss/zlb/internal/crypto"
	"github.com/zeroloss/zlb/internal/types"
	"github.com/zeroloss/zlb/internal/utxo"
	"github.com/zeroloss/zlb/internal/wire"
)

// CheckpointState snapshots the full ledger state: UTXO table, deposit
// pool, punished accounts, committed transaction IDs, deposit-funded
// inputs, merged-block digests and the chain's block digests. Block
// bodies are deliberately not included — after a restore, BlockAt
// returns digest-only tombstones for pruned indices, which is all fork
// detection (Conflicts) and determinism checks (BlockDigests) need.
func (l *Ledger) CheckpointState() *wire.CheckpointState {
	cp := &wire.CheckpointState{
		Deposit:          l.deposit,
		MergedTxs:        uint64(l.MergedTxs),
		DepositFundedTxs: uint64(l.DepositFundedTxs),
		Refunds:          uint64(l.Refunds),
	}
	// The block list keeps append order and includes merged siblings at
	// an already-occupied index: replaying it into storeBlock rebuilds
	// both the blocks slice (Height) and the first-wins byIndex map.
	for _, b := range l.blocks {
		cp.Blocks = append(cp.Blocks, wire.BlockDigest{K: b.K, Digest: b.Digest})
		if b.K > cp.LastK {
			cp.LastK = b.K
		}
	}
	cp.Merged = sortedDigests(l.merged)
	for _, e := range l.table.Entries() {
		cp.UTXOs = append(cp.UTXOs, wire.UTXOEntry{Op: e.Op, Out: e.Out})
	}
	cp.TxIDs = sortedDigests(l.txs)
	addrs := make([]utxo.Address, 0, len(l.punished))
	for a := range l.punished {
		addrs = append(addrs, a)
	}
	sort.Slice(addrs, func(i, j int) bool {
		return types.Digest(addrs[i]).Less(types.Digest(addrs[j]))
	})
	cp.Punished = addrs
	ops := make([]utxo.Outpoint, 0, len(l.inputsDeposit))
	for op := range l.inputsDeposit {
		ops = append(ops, op)
	}
	sort.Slice(ops, func(i, j int) bool {
		if ops[i].TxID != ops[j].TxID {
			return ops[i].TxID.Less(ops[j].TxID)
		}
		return ops[i].Index < ops[j].Index
	})
	for _, op := range ops {
		cp.DepositInputs = append(cp.DepositInputs, wire.DepositInput{Op: op, Value: l.inputsDeposit[op].Value})
	}
	return cp
}

// RestoreLedger rebuilds a ledger from a checkpoint snapshot. Pruned
// blocks come back as digest-only tombstones: Conflicts and BlockDigests
// behave exactly as before the restart, while the transaction bodies
// live only in the committed-ID set and the UTXO table.
func RestoreLedger(scheme crypto.Scheme, cp *wire.CheckpointState) *Ledger {
	l := NewLedger(scheme)
	l.deposit = cp.Deposit
	l.MergedTxs = int(cp.MergedTxs)
	l.DepositFundedTxs = int(cp.DepositFundedTxs)
	l.Refunds = int(cp.Refunds)
	for _, b := range cp.Blocks {
		tomb := &Block{K: b.K, Digest: b.Digest}
		l.blocks = append(l.blocks, tomb)
		if _, ok := l.byIndex[b.K]; !ok {
			l.byIndex[b.K] = tomb
		}
	}
	for _, d := range cp.Merged {
		l.merged[d] = true
	}
	for _, e := range cp.UTXOs {
		l.table.Credit(e.Op, e.Out)
	}
	for _, id := range cp.TxIDs {
		l.txs[id] = true
	}
	for _, a := range cp.Punished {
		l.punished[a] = true
	}
	for _, in := range cp.DepositInputs {
		l.inputsDeposit[in.Op] = utxo.Input{Prev: in.Op, Value: in.Value}
	}
	return l
}

// LastK returns the highest stored chain index (0 for an empty chain).
func (l *Ledger) LastK() uint64 {
	var last uint64
	for k := range l.byIndex {
		if k > last {
			last = k
		}
	}
	return last
}

// sortedDigests flattens a digest set deterministically.
func sortedDigests(set map[types.Digest]bool) []types.Digest {
	out := make([]types.Digest, 0, len(set))
	for d := range set {
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}
