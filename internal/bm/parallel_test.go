package bm

import (
	"fmt"
	"testing"

	"github.com/zeroloss/zlb/internal/crypto"
	"github.com/zeroloss/zlb/internal/pipeline"
	"github.com/zeroloss/zlb/internal/types"
	"github.com/zeroloss/zlb/internal/utxo"
)

// buildCommitFixture creates a scheme, funded wallets and a block that
// exercises every class of the parallel commit's conflict analysis:
// plenty of independent transactions, an intra-block dependency chain, a
// double spend, a forged signature, a duplicate entry and an overspend.
func buildCommitFixture(t *testing.T) (crypto.Scheme, map[utxo.Address]types.Amount, *Block) {
	t.Helper()
	reg := crypto.NewRegistry(crypto.SchemeEd25519)
	scheme, err := crypto.NewScheme(crypto.SchemeEd25519, reg)
	if err != nil {
		t.Fatal(err)
	}
	rand := crypto.NewDeterministicRand(99)
	const wallets = 40
	ws := make([]*utxo.Wallet, wallets)
	allocs := make(map[utxo.Address]types.Amount, wallets)
	for i := range ws {
		kp, err := scheme.GenerateKey(rand)
		if err != nil {
			t.Fatal(err)
		}
		ws[i] = utxo.NewWallet(kp, scheme)
		allocs[ws[i].Address()] = 1000
	}
	// A scratch ledger supplies the genesis outpoints for input selection.
	scratch := NewLedger(scheme)
	scratch.Genesis(allocs)
	pay := func(from, to int, amount types.Amount) *utxo.Transaction {
		t.Helper()
		ins, err := scratch.Table().InputsFor(ws[from].Address(), amount)
		if err != nil {
			t.Fatal(err)
		}
		tx, err := ws[from].Pay(ins, []utxo.Output{{Account: ws[to].Address(), Value: amount}})
		if err != nil {
			t.Fatal(err)
		}
		return tx
	}

	var txs []*utxo.Transaction
	// Independent transfers: the parallel set.
	for i := 0; i < 30; i++ {
		txs = append(txs, pay(i, (i+1)%30, types.Amount(10+i)))
	}
	// Intra-block chain: w30 pays w31, then w31 spends that very output.
	head := pay(30, 31, 500)
	txs = append(txs, head)
	chained, err := ws[31].Pay(
		[]utxo.Input{{Prev: utxo.Outpoint{TxID: head.ID(), Index: 0}, Value: 500}},
		[]utxo.Output{{Account: ws[32].Address(), Value: 500}})
	if err != nil {
		t.Fatal(err)
	}
	txs = append(txs, chained)
	// Double spend: w33 signs two conflicting transfers; first wins.
	ins, err := scratch.Table().InputsFor(ws[33].Address(), 700)
	if err != nil {
		t.Fatal(err)
	}
	ds1, err := ws[33].Pay(ins, []utxo.Output{{Account: ws[34].Address(), Value: 700}})
	if err != nil {
		t.Fatal(err)
	}
	ds2, err := ws[33].Pay(ins, []utxo.Output{{Account: ws[35].Address(), Value: 700}})
	if err != nil {
		t.Fatal(err)
	}
	txs = append(txs, ds1, ds2)
	// Forged signature: must be skipped on both paths.
	forged := pay(36, 37, 100)
	forged.Sig = append([]byte{}, forged.Sig...)
	forged.Sig[0] ^= 0x55
	forged.Invalidate()
	txs = append(txs, forged)
	// Duplicate entry of an earlier transaction.
	txs = append(txs, txs[0])
	// Overspend attempt (bad shape): input value below outputs.
	over := pay(38, 39, 50)
	over.Outputs[0].Value = 10_000
	over.Invalidate()
	txs = append(txs, over)

	return scheme, allocs, NewBlock(1, txs)
}

// ledgerFingerprint summarizes everything the equivalence check compares.
func ledgerFingerprint(l *Ledger) string {
	s := fmt.Sprintf("height=%d deposit=%d utxos=%d total=%d\n",
		l.Height(), l.Deposit(), l.Table().Size(), l.Table().TotalValue())
	for _, e := range l.Table().Entries() {
		s += fmt.Sprintf("%v=%v:%d\n", e.Op, e.Out.Account, e.Out.Value)
	}
	return s
}

// TestCommitBlockParallelMatchesSequential pins the conflict-detecting
// parallel apply to the sequential reference: identical applied counts,
// identical committed-transaction sets and bit-identical UTXO state, on
// a block mixing independent transfers with every conflict shape.
func TestCommitBlockParallelMatchesSequential(t *testing.T) {
	scheme, allocs, block := buildCommitFixture(t)

	seq := NewLedger(scheme)
	seq.Genesis(allocs)
	par := NewLedger(scheme)
	par.SetParallel(pipeline.Shared())
	par.Genesis(allocs)

	wantApplied := seq.CommitBlock(block)
	gotApplied := par.CommitBlock(block)
	if wantApplied != gotApplied {
		t.Fatalf("applied %d parallel vs %d sequential", gotApplied, wantApplied)
	}
	for _, tx := range block.Txs {
		if seq.HasTx(tx.ID()) != par.HasTx(tx.ID()) {
			t.Errorf("tx %v committed=%v sequentially, %v in parallel",
				tx.ID(), seq.HasTx(tx.ID()), par.HasTx(tx.ID()))
		}
	}
	if a, b := ledgerFingerprint(seq), ledgerFingerprint(par); a != b {
		t.Errorf("ledger state diverged:\n--- sequential\n%s--- parallel\n%s", a, b)
	}

	// Re-committing the same block must be a no-op on both paths.
	if n := seq.CommitBlock(block); n != 0 {
		t.Errorf("sequential recommit applied %d", n)
	}
	if n := par.CommitBlock(block); n != 0 {
		t.Errorf("parallel recommit applied %d", n)
	}
	if a, b := ledgerFingerprint(seq), ledgerFingerprint(par); a != b {
		t.Errorf("ledger state diverged after recommit:\n--- sequential\n%s--- parallel\n%s", a, b)
	}
}

// TestCommitBlockParallelBelowThreshold keeps small blocks on the
// sequential path (no classification overhead) with identical results.
func TestCommitBlockParallelBelowThreshold(t *testing.T) {
	scheme, allocs, block := buildCommitFixture(t)
	small := NewBlock(1, block.Txs[:4])

	seq := NewLedger(scheme)
	seq.Genesis(allocs)
	par := NewLedger(scheme)
	par.SetParallel(pipeline.Shared())
	par.Genesis(allocs)

	if a, b := seq.CommitBlock(small), par.CommitBlock(small); a != b {
		t.Fatalf("applied %d sequential vs %d parallel", a, b)
	}
	if a, b := ledgerFingerprint(seq), ledgerFingerprint(par); a != b {
		t.Errorf("ledger state diverged:\n--- sequential\n%s--- parallel\n%s", a, b)
	}
}
