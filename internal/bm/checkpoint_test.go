package bm

import (
	"testing"

	"github.com/zeroloss/zlb/internal/types"
	"github.com/zeroloss/zlb/internal/utxo"
	"github.com/zeroloss/zlb/internal/wire"
)

// buildForkedLedger commits two blocks, merges a conflicting branch and
// punishes an account — every piece of ledger state a checkpoint must
// carry survives in the result.
func buildForkedLedger(t *testing.T, f *fixture) *Ledger {
	t.Helper()
	l := f.genesisLedger(t)
	l.AddDeposit(2_000_000)

	inputs, err := l.Table().InputsFor(f.alice.Address(), 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	txBob, err := f.alice.Pay(inputs, []utxo.Output{{Account: f.bob.Address(), Value: 1_000_000}})
	if err != nil {
		t.Fatal(err)
	}
	txCarol, err := f.alice.Pay(inputs, []utxo.Output{{Account: f.carol.Address(), Value: 1_000_000}})
	if err != nil {
		t.Fatal(err)
	}
	l.CommitBlock(NewBlock(1, []*utxo.Transaction{txBob}))
	l.MergeBlock(NewBlock(1, []*utxo.Transaction{txCarol}))
	tx2 := pay(t, l, f.bob, f.carol.Address(), 250)
	l.CommitBlock(NewBlock(2, []*utxo.Transaction{tx2}))
	l.PunishAccount(f.alice.Address())
	return l
}

func TestCheckpointRoundTripRestoresLedger(t *testing.T) {
	f := newFixture(t)
	l := buildForkedLedger(t, f)

	cp := l.CheckpointState()
	// Round-trip through the wire codec, as the store does on disk.
	decoded, err := wire.DecodeCheckpoint(wire.EncodeCheckpoint(cp))
	if err != nil {
		t.Fatal(err)
	}
	r := RestoreLedger(f.scheme, decoded)

	if got, want := r.Deposit(), l.Deposit(); got != want {
		t.Errorf("deposit %d, want %d", got, want)
	}
	for _, w := range []*utxo.Wallet{f.alice, f.bob, f.carol} {
		if got, want := r.Table().Balance(w.Address()), l.Table().Balance(w.Address()); got != want {
			t.Errorf("balance of %v: %d, want %d", w.Address(), got, want)
		}
	}
	ld, rd := l.BlockDigests(), r.BlockDigests()
	if len(ld) != len(rd) {
		t.Fatalf("digest maps differ in size: %d vs %d", len(rd), len(ld))
	}
	for k, d := range ld {
		if rd[k] != d {
			t.Errorf("block %d digest mismatch", k)
		}
	}
	if r.LastK() != l.LastK() || r.Height() != l.Height() {
		t.Errorf("chain shape: lastK %d/%d height %d/%d", r.LastK(), l.LastK(), r.Height(), l.Height())
	}
	if !r.Punished(f.alice.Address()) {
		t.Error("punished set lost")
	}
	if r.MergedTxs != l.MergedTxs || r.DepositFundedTxs != l.DepositFundedTxs || r.Refunds != l.Refunds {
		t.Errorf("stats lost: %d/%d/%d vs %d/%d/%d",
			r.MergedTxs, r.DepositFundedTxs, r.Refunds, l.MergedTxs, l.DepositFundedTxs, l.Refunds)
	}
}

// TestCheckpointRestoredLedgerKeepsWorking drives post-restore commits and
// merges: the restored ledger must behave exactly like the original —
// dedup committed txs, detect forks against tombstones, refund
// remembered deposit inputs.
func TestCheckpointRestoredLedgerKeepsWorking(t *testing.T) {
	f := newFixture(t)

	// Out-of-order merge leaves a remembered deposit input behind.
	remote := NewLedger(f.scheme)
	remote.Genesis(map[utxo.Address]types.Amount{f.alice.Address(): 1_000_000})
	txAB := pay(t, remote, f.alice, f.bob.Address(), 600)
	remote.CommitBlock(NewBlock(1, []*utxo.Transaction{txAB}))
	txBC := pay(t, remote, f.bob, f.carol.Address(), 600)
	remote.CommitBlock(NewBlock(2, []*utxo.Transaction{txBC}))

	l := f.genesisLedger(t)
	l.AddDeposit(1_000_000)
	l.MergeBlock(NewBlock(2, []*utxo.Transaction{txBC}))

	r := RestoreLedger(f.scheme, l.CheckpointState())

	// The restored ledger must still refund when the funding branch lands.
	r.MergeBlock(NewBlock(1, []*utxo.Transaction{txAB}))
	if got := r.Deposit(); got != 1_000_000 {
		t.Errorf("deposit after post-restore refund = %d, want 1_000_000", got)
	}
	// Conflict detection against a tombstone block.
	other := NewBlock(2, []*utxo.Transaction{txAB})
	if !r.Conflicts(other) {
		t.Error("fork against a restored tombstone not detected")
	}
	// Committed-tx dedup across the restore.
	if applied := r.CommitBlock(NewBlock(3, []*utxo.Transaction{txBC})); applied != 0 {
		t.Errorf("re-committed %d txs already in the checkpoint", applied)
	}
}

// --- Merge edge cases the store's supersede records depend on ---

// TestMergeAtIndexZero pins that a merge at chain index 0 (the lowest
// possible index — ZLB's genesis slot) stores the block and applies its
// transactions like any other index; index 0 is not special-cased.
func TestMergeAtIndexZero(t *testing.T) {
	f := newFixture(t)
	l := f.genesisLedger(t)
	l.AddDeposit(1_000_000)
	tx := pay(t, l, f.alice, f.bob.Address(), 77)
	b := NewBlock(0, []*utxo.Transaction{tx})
	if got := l.MergeBlock(b); got != 1 {
		t.Fatalf("merge at index 0 applied %d txs, want 1", got)
	}
	stored, ok := l.BlockAt(0)
	if !ok || stored.Digest != b.Digest {
		t.Fatal("block at index 0 not stored")
	}
	if got := l.Table().Balance(f.bob.Address()); got != 77 {
		t.Fatalf("bob balance %d, want 77", got)
	}
}

// TestRepeatedMergesAtSameIndex pins that distinct conflicting blocks
// merged at one index each apply once, the first stored block keeps the
// index, and re-merging any of them is a no-op — the semantics a
// supersede-record replay relies on.
func TestRepeatedMergesAtSameIndex(t *testing.T) {
	f := newFixture(t)
	l := f.genesisLedger(t)
	l.AddDeposit(5_000_000)

	inputs, err := l.Table().InputsFor(f.alice.Address(), 900_000)
	if err != nil {
		t.Fatal(err)
	}
	mk := func(to utxo.Address) *utxo.Transaction {
		tx, err := f.alice.Pay(inputs, []utxo.Output{{Account: to, Value: 900_000}})
		if err != nil {
			t.Fatal(err)
		}
		return tx
	}
	b1 := NewBlock(4, []*utxo.Transaction{mk(f.bob.Address())})
	b2 := NewBlock(4, []*utxo.Transaction{mk(f.carol.Address())})
	b3 := NewBlock(4, []*utxo.Transaction{mk(f.bob.Address())})

	if got := l.MergeBlock(b1); got != 1 {
		t.Fatalf("first merge applied %d", got)
	}
	if got := l.MergeBlock(b2); got != 1 {
		t.Fatalf("second merge at same index applied %d", got)
	}
	if got := l.MergeBlock(b3); got != 1 {
		t.Fatalf("third merge at same index applied %d", got)
	}
	// Idempotence per digest, even with siblings at the index.
	if got := l.MergeBlock(b2); got != 0 {
		t.Fatalf("re-merge applied %d, want 0", got)
	}
	stored, ok := l.BlockAt(4)
	if !ok || stored.Digest != b1.Digest {
		t.Fatal("index 4 must keep the first merged block")
	}
	if got := l.Table().Balance(f.bob.Address()); got != 1_800_000 {
		t.Fatalf("bob = %d, want 1_800_000", got)
	}
	if got := l.Table().Balance(f.carol.Address()); got != 900_000 {
		t.Fatalf("carol = %d, want 900_000", got)
	}
}

// TestMergeThenConflictDetection pins Conflicts after a merge: the block
// stored first at an index defines the fork reference; its merged
// sibling does not conflict with itself but any third digest does.
func TestMergeThenConflictDetection(t *testing.T) {
	f := newFixture(t)
	l := f.genesisLedger(t)
	l.AddDeposit(2_000_000)

	txA := pay(t, l, f.alice, f.bob.Address(), 10)
	local := NewBlock(1, []*utxo.Transaction{txA})
	l.CommitBlock(local)

	txB := pay(t, l, f.alice, f.carol.Address(), 20)
	remote := NewBlock(1, []*utxo.Transaction{txB})
	if !l.Conflicts(remote) {
		t.Fatal("sibling block must conflict before merge")
	}
	l.MergeBlock(remote)
	// After the merge the index still answers fork queries against the
	// originally committed block.
	if l.Conflicts(local) {
		t.Error("local block conflicts with itself after merge")
	}
	if !l.Conflicts(remote) {
		t.Error("merged sibling no longer detected as a fork reference")
	}
	third := NewBlock(1, []*utxo.Transaction{txA, txB})
	if !l.Conflicts(third) {
		t.Error("third digest at merged index not detected")
	}
}
