// Package bm implements ZLB's Blockchain Manager (paper §4.2): the
// component that stores decided blocks, detects forks, and — instead of
// discarding a conflicting branch like classic blockchains — merges its
// blocks into the local chain (Alg. 2). Transactions whose inputs were
// already consumed on the local branch are funded from the slashed
// deposit of the deceitful replicas, and the deposit is replenished when
// the remembered inputs become spendable again.
package bm

import (
	"errors"
	"fmt"
	"sort"

	"github.com/zeroloss/zlb/internal/crypto"
	"github.com/zeroloss/zlb/internal/pipeline"
	"github.com/zeroloss/zlb/internal/types"
	"github.com/zeroloss/zlb/internal/utxo"
)

// Block is a decided batch of transactions at chain index K.
type Block struct {
	K      uint64
	Digest types.Digest
	Txs    []*utxo.Transaction
}

// NewBlock assembles a block and computes its digest.
func NewBlock(k uint64, txs []*utxo.Transaction) *Block {
	b := &Block{K: k, Txs: txs}
	buf := make([]byte, 8, 8+32*len(txs))
	for i := 0; i < 8; i++ {
		buf[i] = byte(k >> (8 * (7 - i)))
	}
	for _, tx := range txs {
		id := tx.ID()
		buf = append(buf, id[:]...)
	}
	b.Digest = types.Hash(buf)
	return b
}

// Ledger is the blockchain record Ω of Alg. 2.
type Ledger struct {
	scheme crypto.Scheme
	table  *utxo.Table
	// pool, when set, enables the parallel commit path: independent
	// transactions of a block apply concurrently on the striped UTXO
	// table (SetParallel).
	pool *pipeline.Pool

	// deposit is the pooled slashed stake available to fund conflicting
	// inputs (Alg. 2 line 3).
	deposit types.Amount
	// inputsDeposit remembers inputs that were funded from the deposit
	// (line 4), refunded when they become spendable (lines 24-28).
	inputsDeposit map[utxo.Outpoint]utxo.Input
	// punished accumulates account addresses used by deceitful replicas
	// (line 5); their new outputs are confiscated into the deposit.
	punished map[utxo.Address]bool
	// txs is the set of committed transaction IDs (line 6).
	txs map[types.Digest]bool
	// blocks stores the chain; byDigest detects conflicting blocks.
	blocks  []*Block
	byIndex map[uint64]*Block
	merged  map[types.Digest]bool
	// Stats for the experiments.
	MergedTxs        int
	DepositFundedTxs int
	Refunds          int
}

// Errors returned by the ledger.
var (
	ErrStaleBlock = errors.New("bm: block index already holds this block")
)

// NewLedger creates an empty ledger over a fresh UTXO table. scheme may be
// nil to skip transaction signature verification (protocol-level tests).
func NewLedger(scheme crypto.Scheme) *Ledger {
	return &Ledger{
		scheme:        scheme,
		table:         utxo.NewTable(),
		inputsDeposit: make(map[utxo.Outpoint]utxo.Input),
		punished:      make(map[utxo.Address]bool),
		txs:           make(map[types.Digest]bool),
		byIndex:       make(map[uint64]*Block),
		merged:        make(map[types.Digest]bool),
	}
}

// Table exposes the UTXO table (validation, balances).
func (l *Ledger) Table() *utxo.Table { return l.table }

// Deposit returns the pooled slashed stake.
func (l *Ledger) Deposit() types.Amount { return l.deposit }

// AddDeposit grows the deposit pool: the application slashes an excluded
// replica's stake into it (paper Fig. 1  "refunds B with pk's deposit").
func (l *Ledger) AddDeposit(amount types.Amount) { l.deposit += amount }

// Punished reports whether an account has been punished.
func (l *Ledger) Punished(addr utxo.Address) bool { return l.punished[addr] }

// PunishAccount marks an account as used by a deceitful replica: its
// current unspent outputs are confiscated into the deposit, and future
// outputs it receives in merged blocks are confiscated too (Alg. 2
// lines 13-14).
func (l *Ledger) PunishAccount(addr utxo.Address) {
	l.punished[addr] = true
	for _, op := range l.table.Outpoints(addr) {
		out, ok := l.table.Spendable(op)
		if !ok {
			continue
		}
		l.table.Consume(op)
		l.deposit += out.Value
	}
}

// Genesis credits initial balances (the genesis block's outputs).
func (l *Ledger) Genesis(allocs map[utxo.Address]types.Amount) {
	addrs := make([]utxo.Address, 0, len(allocs))
	for a := range allocs {
		addrs = append(addrs, a)
	}
	sort.Slice(addrs, func(i, j int) bool {
		return types.Digest(addrs[i]).Less(types.Digest(addrs[j]))
	})
	for i, a := range addrs {
		op := utxo.Outpoint{TxID: types.Hash([]byte("genesis")), Index: uint32(i)}
		l.table.Credit(op, utxo.Output{Account: a, Value: allocs[a]})
	}
}

// Height returns the number of stored blocks.
func (l *Ledger) Height() int { return len(l.blocks) }

// BlockAt returns the block stored for index k.
func (l *Ledger) BlockAt(k uint64) (*Block, bool) {
	b, ok := l.byIndex[k]
	return b, ok
}

// BlockDigests returns the digest of every stored block, keyed by chain
// index (determinism checks compare these across runs).
func (l *Ledger) BlockDigests() map[uint64]types.Digest {
	out := make(map[uint64]types.Digest, len(l.byIndex))
	for k, b := range l.byIndex {
		out[k] = b.Digest
	}
	return out
}

// HasTx reports whether a transaction is committed.
func (l *Ledger) HasTx(id types.Digest) bool { return l.txs[id] }

// SetParallel enables the parallel commit path on the given worker pool
// (nil disables it — the forced-sequential mode of the commit pipeline).
// Both paths produce bit-identical ledger state and applied counts; the
// determinism tests pin this.
func (l *Ledger) SetParallel(pool *pipeline.Pool) { l.pool = pool }

// minParallelTxs is the block size below which the parallel commit path
// is not worth its classification pass.
const minParallelTxs = 16

// CommitBlock appends a decided block on the happy path: transactions are
// validated strictly against the UTXO table; invalid ones are skipped
// (SBC-Validity filtered them at proposal time; a residue can appear when
// two proposals in one superblock spend the same output — first one wins,
// deterministically by block order). With SetParallel, transactions the
// conflict analysis proves independent are verified and applied
// concurrently on the worker pool; everything else falls back to
// sequential block order.
func (l *Ledger) CommitBlock(b *Block) (applied int) {
	if l.pool != nil && l.scheme != nil && len(b.Txs) >= minParallelTxs {
		applied = l.commitParallel(b)
	} else {
		for _, tx := range b.Txs {
			id := tx.ID()
			if l.txs[id] {
				continue
			}
			if err := l.table.Apply(tx, l.scheme); err != nil {
				continue
			}
			l.txs[id] = true
			applied++
		}
	}
	l.storeBlock(b)
	return applied
}

// Transaction classes of the parallel commit's conflict analysis.
const (
	classPar  uint8 = iota // independent: applies on the worker pool
	classSeq               // conflicting or dependent: sequential, block order
	classSkip              // already committed before this block
)

// commitParallel is the conflict-detecting parallel apply. A transaction
// runs in the parallel set only when nothing else in the block can
// influence its validity or effects: its inputs are not consumed by any
// other block transaction, it does not spend an output produced inside
// the block, no block transaction spends its outputs, and its ID is
// unique in the block. Such transactions validate against pre-block table
// state whatever the order, and their effects land on disjoint outpoints
// (striped-table balance updates commute), so parallel application is
// bit-identical to sequential. Everything else — intra-block dependency
// chains, double spends resolved first-wins, duplicate IDs — replays
// sequentially in block order after the parallel set, which cannot change
// its outcome either (the sequential residue never touches a parallel
// transaction's inputs or outputs).
func (l *Ledger) commitParallel(b *Block) (applied int) {
	n := len(b.Txs)
	ids := make([]types.Digest, n)
	classes := make([]uint8, n)
	blockIDs := make(map[types.Digest]int, n)  // tx ID -> first index
	inputUse := make(map[utxo.Outpoint]int, n) // input -> spending txs
	refs := make(map[types.Digest]bool, n)     // in-block produced IDs spent by the block
	for i, tx := range b.Txs {
		ids[i] = tx.ID() // memoize on this goroutine; workers only read
		if l.txs[ids[i]] {
			classes[i] = classSkip
			continue
		}
		if first, dup := blockIDs[ids[i]]; dup {
			// Duplicate IDs replay sequentially so first-wins (and the
			// pathological fail-then-succeed retry) behave exactly as the
			// sequential loop.
			classes[first] = classSeq
			classes[i] = classSeq
		} else {
			blockIDs[ids[i]] = i
		}
		for _, in := range tx.Inputs {
			inputUse[in.Prev]++
		}
	}
	for i, tx := range b.Txs {
		if classes[i] == classSkip {
			continue
		}
		for _, in := range tx.Inputs {
			if _, inBlock := blockIDs[in.Prev.TxID]; inBlock {
				refs[in.Prev.TxID] = true
			}
		}
	}
	var parIdx []int
	for i, tx := range b.Txs {
		if classes[i] != classPar {
			continue
		}
		indep := !refs[ids[i]]
		if indep {
			for _, in := range tx.Inputs {
				if inputUse[in.Prev] > 1 {
					indep = false
					break
				}
				if _, inBlock := blockIDs[in.Prev.TxID]; inBlock {
					indep = false
					break
				}
			}
		}
		if indep {
			parIdx = append(parIdx, i)
		} else {
			classes[i] = classSeq
		}
	}

	ok := make([]bool, len(parIdx))
	l.pool.Map(len(parIdx), func(j int) {
		tx := b.Txs[parIdx[j]]
		ok[j] = l.table.Apply(tx, l.scheme) == nil
	})

	// Bookkeeping fans in on this goroutine, in block order; the
	// sequential residue applies here too.
	next := 0
	for i, tx := range b.Txs {
		switch classes[i] {
		case classSkip:
		case classPar:
			if ok[next] {
				l.txs[ids[i]] = true
				applied++
			}
			next++
		case classSeq:
			if l.txs[ids[i]] {
				continue
			}
			if err := l.table.Apply(tx, l.scheme); err != nil {
				continue
			}
			l.txs[ids[i]] = true
			applied++
		}
	}
	return applied
}

// MergeBlock implements Alg. 2: merge a conflicting block delivered by
// the reconciliation phase. Every transaction not already committed is
// merged; inputs no longer spendable are funded from the deposit;
// outputs to punished accounts are confiscated. It reports how many
// transactions were merged.
func (l *Ledger) MergeBlock(b *Block) int {
	if l.merged[b.Digest] {
		return 0
	}
	l.merged[b.Digest] = true
	mergedCount := 0
	for _, tx := range b.Txs { // go through all txs (line 9)
		id := tx.ID()
		if l.txs[id] { // check inclusion (line 10)
			continue
		}
		if err := tx.CheckShape(); err != nil {
			continue
		}
		if l.scheme != nil {
			if err := tx.VerifySig(l.scheme); err != nil {
				continue
			}
		}
		l.commitTxMerge(tx) // line 11
		l.txs[id] = true
		mergedCount++
		l.MergedTxs++
		for i, out := range tx.Outputs { // lines 12-14
			if l.punished[out.Account] {
				l.confiscateOutput(utxo.Outpoint{TxID: id, Index: uint32(i)})
			}
		}
	}
	l.RefundInputs() // line 15
	l.storeBlock(b)  // line 16
	return mergedCount
}

// commitTxMerge is Alg. 2 lines 17-23: consume spendable inputs normally
// and fund the rest from the deposit.
func (l *Ledger) commitTxMerge(tx *utxo.Transaction) {
	usedDeposit := false
	for _, in := range tx.Inputs { // go through all inputs (line 19)
		if _, ok := l.table.Spendable(in.Prev); !ok {
			// Not spendable: use the deposit to refund (lines 21-22).
			l.inputsDeposit[in.Prev] = in
			if l.deposit >= in.Value {
				l.deposit -= in.Value
			} else {
				l.deposit = 0
			}
			usedDeposit = true
			continue
		}
		l.table.Consume(in.Prev) // spendable, normal case (line 23)
	}
	if usedDeposit {
		l.DepositFundedTxs++
	}
	id := tx.ID()
	for i, out := range tx.Outputs {
		l.table.Credit(utxo.Outpoint{TxID: id, Index: uint32(i)}, out)
	}
}

// RefundInputs is Alg. 2 lines 24-28: remembered deposit-funded inputs
// that became spendable again (their producing branch merged later) are
// consumed and the deposit replenished.
func (l *Ledger) RefundInputs() {
	ops := make([]utxo.Outpoint, 0, len(l.inputsDeposit))
	for op := range l.inputsDeposit {
		ops = append(ops, op)
	}
	sort.Slice(ops, func(i, j int) bool {
		if ops[i].TxID != ops[j].TxID {
			return ops[i].TxID.Less(ops[j].TxID)
		}
		return ops[i].Index < ops[j].Index
	})
	for _, op := range ops {
		in := l.inputsDeposit[op]
		if _, ok := l.table.Spendable(op); ok { // if now spendable (line 26)
			l.table.Consume(op)   // consume (line 27)
			l.deposit += in.Value // refill deposit (line 28)
			delete(l.inputsDeposit, op)
			l.Refunds++
		}
	}
}

func (l *Ledger) confiscateOutput(op utxo.Outpoint) {
	if out, ok := l.table.Spendable(op); ok {
		l.table.Consume(op)
		l.deposit += out.Value
	}
}

func (l *Ledger) storeBlock(b *Block) {
	if prev, ok := l.byIndex[b.K]; ok && prev.Digest == b.Digest {
		return
	}
	l.blocks = append(l.blocks, b)
	if _, ok := l.byIndex[b.K]; !ok {
		l.byIndex[b.K] = b
	}
}

// Conflicts reports whether a received block conflicts with the stored
// block at the same index (fork detection, §4.2.1).
func (l *Ledger) Conflicts(b *Block) bool {
	stored, ok := l.byIndex[b.K]
	return ok && stored.Digest != b.Digest
}

// String summarizes the ledger for logs.
func (l *Ledger) String() string {
	return fmt.Sprintf("ledger(height=%d txs=%d utxos=%d deposit=%d)",
		len(l.blocks), len(l.txs), l.table.Size(), l.deposit)
}
