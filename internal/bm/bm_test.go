package bm

import (
	"testing"

	"github.com/zeroloss/zlb/internal/crypto"
	"github.com/zeroloss/zlb/internal/types"
	"github.com/zeroloss/zlb/internal/utxo"
)

type fixture struct {
	scheme crypto.Scheme
	alice  *utxo.Wallet
	bob    *utxo.Wallet
	carol  *utxo.Wallet
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	reg := crypto.NewRegistry(crypto.SchemeEd25519)
	scheme, err := crypto.NewScheme(crypto.SchemeEd25519, reg)
	if err != nil {
		t.Fatal(err)
	}
	mk := func(seed int64) *utxo.Wallet {
		kp, err := scheme.GenerateKey(crypto.NewDeterministicRand(seed))
		if err != nil {
			t.Fatal(err)
		}
		return utxo.NewWallet(kp, scheme)
	}
	return &fixture{scheme: scheme, alice: mk(1), bob: mk(2), carol: mk(3)}
}

func (f *fixture) genesisLedger(t *testing.T) *Ledger {
	t.Helper()
	l := NewLedger(f.scheme)
	l.Genesis(map[utxo.Address]types.Amount{
		f.alice.Address(): 1_000_000,
	})
	return l
}

// pay builds a signed payment of amount from w against the ledger's table.
func pay(t *testing.T, l *Ledger, w *utxo.Wallet, to utxo.Address, amount types.Amount) *utxo.Transaction {
	t.Helper()
	inputs, err := l.Table().InputsFor(w.Address(), amount)
	if err != nil {
		t.Fatal(err)
	}
	tx, err := w.Pay(inputs, []utxo.Output{{Account: to, Value: amount}})
	if err != nil {
		t.Fatal(err)
	}
	return tx
}

func TestCommitBlockHappyPath(t *testing.T) {
	f := newFixture(t)
	l := f.genesisLedger(t)
	tx := pay(t, l, f.alice, f.bob.Address(), 500)
	applied := l.CommitBlock(NewBlock(1, []*utxo.Transaction{tx}))
	if applied != 1 {
		t.Fatalf("applied %d txs, want 1", applied)
	}
	if got := l.Table().Balance(f.bob.Address()); got != 500 {
		t.Fatalf("bob balance %d, want 500", got)
	}
	if !l.HasTx(tx.ID()) {
		t.Fatal("committed tx not recorded")
	}
}

// TestMergeDoubleSpendRefundsFromDeposit is the paper's Fig. 1 scenario:
// Alice double spends $1M with Bob (committed locally) and Carol (decided
// on the other branch). Merging the conflicting block funds Carol's
// payment from the slashed deposit so no honest account loses anything.
func TestMergeDoubleSpendRefundsFromDeposit(t *testing.T) {
	f := newFixture(t)
	l := f.genesisLedger(t)
	l.AddDeposit(2_000_000) // slashed coalition stake

	// Build both spends of the same UTXO up front (the fork).
	inputs, err := l.Table().InputsFor(f.alice.Address(), 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	txBob, err := f.alice.Pay(inputs, []utxo.Output{{Account: f.bob.Address(), Value: 1_000_000}})
	if err != nil {
		t.Fatal(err)
	}
	txCarol, err := f.alice.Pay(inputs, []utxo.Output{{Account: f.carol.Address(), Value: 1_000_000}})
	if err != nil {
		t.Fatal(err)
	}

	// Local branch commits Bob's payment.
	l.CommitBlock(NewBlock(1, []*utxo.Transaction{txBob}))
	// The conflicting branch decided Carol's payment; reconciliation
	// merges it.
	conflicting := NewBlock(1, []*utxo.Transaction{txCarol})
	if !l.Conflicts(conflicting) {
		t.Fatal("conflicting block not detected as a fork")
	}
	merged := l.MergeBlock(conflicting)
	if merged != 1 {
		t.Fatalf("merged %d txs, want 1", merged)
	}

	if got := l.Table().Balance(f.bob.Address()); got != 1_000_000 {
		t.Fatalf("bob lost funds: %d", got)
	}
	if got := l.Table().Balance(f.carol.Address()); got != 1_000_000 {
		t.Fatalf("carol not refunded: %d", got)
	}
	// The deposit covered the double spend.
	if got := l.Deposit(); got != 1_000_000 {
		t.Fatalf("deposit = %d, want 1_000_000 (2M minus 1M funding)", got)
	}
	if l.DepositFundedTxs != 1 {
		t.Fatalf("DepositFundedTxs = %d, want 1", l.DepositFundedTxs)
	}
}

func TestMergeIdempotent(t *testing.T) {
	f := newFixture(t)
	l := f.genesisLedger(t)
	l.AddDeposit(2_000_000)
	tx := pay(t, l, f.alice, f.bob.Address(), 100)
	b := NewBlock(1, []*utxo.Transaction{tx})
	if got := l.MergeBlock(b); got != 1 {
		t.Fatalf("first merge applied %d", got)
	}
	if got := l.MergeBlock(b); got != 0 {
		t.Fatalf("second merge applied %d, want 0", got)
	}
	if got := l.Table().Balance(f.bob.Address()); got != 100 {
		t.Fatalf("bob balance %d after re-merge, want 100", got)
	}
}

// TestRefundInputsReplenishesDeposit exercises Alg. 2 lines 24-28: an
// input funded from the deposit becomes spendable once its producing
// branch merges later, and the deposit is refilled.
func TestRefundInputsReplenishesDeposit(t *testing.T) {
	f := newFixture(t)
	l := f.genesisLedger(t)
	l.AddDeposit(1_000_000)

	// Branch A (remote): Alice pays Bob 600; Bob pays Carol 600.
	remote := NewLedger(f.scheme)
	remote.Genesis(map[utxo.Address]types.Amount{f.alice.Address(): 1_000_000})
	txAB := pay(t, remote, f.alice, f.bob.Address(), 600)
	remote.CommitBlock(NewBlock(1, []*utxo.Transaction{txAB}))
	txBC := pay(t, remote, f.bob, f.carol.Address(), 600)
	remote.CommitBlock(NewBlock(2, []*utxo.Transaction{txBC}))

	// Local branch: nothing committed. Merge block 2 FIRST (out of
	// order): Bob's input is unknown here → funded from the deposit.
	l.MergeBlock(NewBlock(2, []*utxo.Transaction{txBC}))
	if got := l.Deposit(); got != 1_000_000-600 {
		t.Fatalf("deposit after out-of-order merge = %d, want 999400", got)
	}
	// Now merge block 1: Bob's funding tx arrives; the remembered input
	// becomes spendable and the deposit is refunded.
	l.MergeBlock(NewBlock(1, []*utxo.Transaction{txAB}))
	if got := l.Deposit(); got != 1_000_000 {
		t.Fatalf("deposit after refund = %d, want 1_000_000", got)
	}
	if l.Refunds != 1 {
		t.Fatalf("refunds = %d, want 1", l.Refunds)
	}
	if got := l.Table().Balance(f.carol.Address()); got != 600 {
		t.Fatalf("carol balance %d, want 600", got)
	}
}

func TestPunishedAccountConfiscation(t *testing.T) {
	f := newFixture(t)
	l := f.genesisLedger(t)
	l.AddDeposit(0)

	// Bob is a deceitful replica's account holding funds.
	tx := pay(t, l, f.alice, f.bob.Address(), 300)
	l.CommitBlock(NewBlock(1, []*utxo.Transaction{tx}))
	l.PunishAccount(f.bob.Address())
	if got := l.Table().Balance(f.bob.Address()); got != 0 {
		t.Fatalf("punished account keeps %d", got)
	}
	if got := l.Deposit(); got != 300 {
		t.Fatalf("deposit %d, want 300 confiscated", got)
	}

	// New outputs to Bob in merged blocks are confiscated too (Alg. 2
	// lines 12-14).
	tx2 := pay(t, l, f.alice, f.bob.Address(), 200)
	l.MergeBlock(NewBlock(2, []*utxo.Transaction{tx2}))
	if got := l.Table().Balance(f.bob.Address()); got != 0 {
		t.Fatalf("merged output to punished account survived: %d", got)
	}
	if got := l.Deposit(); got != 500 {
		t.Fatalf("deposit %d, want 500", got)
	}
}

func TestMergeRejectsInvalidSignatures(t *testing.T) {
	f := newFixture(t)
	l := f.genesisLedger(t)
	l.AddDeposit(1_000_000)
	tx := pay(t, l, f.alice, f.bob.Address(), 100)
	tx.Sig = append(crypto.Signature(nil), tx.Sig...)
	tx.Sig[0] ^= 0xff
	if got := l.MergeBlock(NewBlock(1, []*utxo.Transaction{tx})); got != 0 {
		t.Fatalf("merged %d invalid txs", got)
	}
}

func TestZeroLossInvariant(t *testing.T) {
	// After an arbitrary double-spend fork and merge, no honest account
	// ends with less than it would have had on its own branch.
	f := newFixture(t)
	l := f.genesisLedger(t)
	l.AddDeposit(5_000_000)

	inputs, err := l.Table().InputsFor(f.alice.Address(), 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	spends := make([]*utxo.Transaction, 3)
	recipients := []*utxo.Wallet{f.bob, f.carol, f.bob}
	for i := range spends {
		tx, err := f.alice.Pay(inputs, []utxo.Output{{Account: recipients[i].Address(), Value: 1_000_000}})
		if err != nil {
			t.Fatal(err)
		}
		spends[i] = tx
	}
	l.CommitBlock(NewBlock(1, []*utxo.Transaction{spends[0]}))
	l.MergeBlock(NewBlock(1, []*utxo.Transaction{spends[1]}))
	l.MergeBlock(NewBlock(1, []*utxo.Transaction{spends[2]}))

	if got := l.Table().Balance(f.bob.Address()); got != 2_000_000 {
		t.Fatalf("bob = %d, want 2_000_000 across branches", got)
	}
	if got := l.Table().Balance(f.carol.Address()); got != 1_000_000 {
		t.Fatalf("carol = %d, want 1_000_000", got)
	}
	// Attack cost was funded entirely by the deposit: 2M extra spend.
	if got := l.Deposit(); got != 3_000_000 {
		t.Fatalf("deposit = %d, want 3_000_000", got)
	}
}

func TestBlockDigestDeterminism(t *testing.T) {
	f := newFixture(t)
	l := f.genesisLedger(t)
	tx := pay(t, l, f.alice, f.bob.Address(), 10)
	b1 := NewBlock(1, []*utxo.Transaction{tx})
	b2 := NewBlock(1, []*utxo.Transaction{tx})
	if b1.Digest != b2.Digest {
		t.Fatal("same block yields different digests")
	}
	b3 := NewBlock(2, []*utxo.Transaction{tx})
	if b1.Digest == b3.Digest {
		t.Fatal("different index, same digest")
	}
}
