package store

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"github.com/zeroloss/zlb/internal/bm"
	"github.com/zeroloss/zlb/internal/crypto"
	"github.com/zeroloss/zlb/internal/types"
	"github.com/zeroloss/zlb/internal/utxo"
	"github.com/zeroloss/zlb/internal/wire"
)

// fixture drives a live ledger and a store in lockstep, the way a node
// does: every commit/merge writes through.
type fixture struct {
	t       *testing.T
	scheme  crypto.Scheme
	alice   *utxo.Wallet
	bob     *utxo.Wallet
	ledger  *bm.Ledger
	store   *Store
	genesis map[utxo.Address]types.Amount
}

func newFixture(t *testing.T, dir string, opts Options) *fixture {
	return newSchemeFixture(t, dir, opts, crypto.SchemeEd25519)
}

// newSchemeFixture is newFixture under a chosen payment scheme — the
// catch-up matrix test runs the sync path under every wallet-capable
// scheme.
func newSchemeFixture(t *testing.T, dir string, opts Options, kind crypto.SchemeKind) *fixture {
	t.Helper()
	reg := crypto.NewRegistry(kind)
	scheme, err := crypto.NewScheme(kind, reg)
	if err != nil {
		t.Fatal(err)
	}
	mk := func(seed int64) *utxo.Wallet {
		kp, err := scheme.GenerateKey(crypto.NewDeterministicRand(seed))
		if err != nil {
			t.Fatal(err)
		}
		return utxo.NewWallet(kp, scheme)
	}
	f := &fixture{t: t, scheme: scheme, alice: mk(1), bob: mk(2)}
	f.genesis = map[utxo.Address]types.Amount{f.alice.Address(): 1_000_000}
	f.ledger = bm.NewLedger(scheme)
	f.seed(f.ledger)
	s, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	f.store = s
	return f
}

func (f *fixture) seed(l *bm.Ledger) {
	l.Genesis(f.genesis)
	l.AddDeposit(500_000)
}

// commit pays amount from alice to bob at index k, committing to both
// the ledger and the store.
func (f *fixture) commit(k uint64, amount types.Amount) *bm.Block {
	f.t.Helper()
	inputs, err := f.ledger.Table().InputsFor(f.alice.Address(), amount)
	if err != nil {
		f.t.Fatal(err)
	}
	tx, err := f.alice.Pay(inputs, []utxo.Output{{Account: f.bob.Address(), Value: amount}})
	if err != nil {
		f.t.Fatal(err)
	}
	b := bm.NewBlock(k, []*utxo.Transaction{tx})
	f.ledger.CommitBlock(b)
	if err := f.store.AppendBlock(b, 0); err != nil {
		f.t.Fatal(err)
	}
	return b
}

// checkRecovered recovers a ledger from the store and compares it to the
// live one.
func (f *fixture) checkRecovered(s *Store) {
	f.t.Helper()
	r, err := s.Recover(f.scheme, f.seed)
	if err != nil {
		f.t.Fatal(err)
	}
	if got, want := r.Deposit(), f.ledger.Deposit(); got != want {
		f.t.Errorf("recovered deposit %d, want %d", got, want)
	}
	for _, w := range []*utxo.Wallet{f.alice, f.bob} {
		if got, want := r.Table().Balance(w.Address()), f.ledger.Table().Balance(w.Address()); got != want {
			f.t.Errorf("recovered balance %d, want %d", got, want)
		}
	}
	ld, rd := f.ledger.BlockDigests(), r.BlockDigests()
	if len(ld) != len(rd) {
		f.t.Fatalf("recovered %d block digests, want %d", len(rd), len(ld))
	}
	for k, d := range ld {
		if rd[k] != d {
			f.t.Errorf("recovered block %d digest mismatch", k)
		}
	}
}

func TestStoreRecoverAfterReopen(t *testing.T) {
	dir := t.TempDir()
	f := newFixture(t, dir, Options{})
	for k := uint64(1); k <= 5; k++ {
		f.commit(k, types.Amount(100*k))
	}
	if err := f.store.Close(); err != nil {
		t.Fatal(err)
	}
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if last, ok := s.LastK(); !ok || last != 5 {
		t.Fatalf("LastK = %d/%v, want 5/true", last, ok)
	}
	f.checkRecovered(s)
}

func TestStoreTornTailTruncatedOnOpen(t *testing.T) {
	dir := t.TempDir()
	f := newFixture(t, dir, Options{})
	for k := uint64(1); k <= 3; k++ {
		f.commit(k, 100)
	}
	if err := f.store.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash mid-append: chop bytes off the segment tail.
	seg := filepath.Join(dir, "log", "wal-00000001.seg")
	raw, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(seg, raw[:len(raw)-7], 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("open after torn tail: %v", err)
	}
	defer s.Close()
	// The last block is gone; the first two survive.
	if last, ok := s.LastK(); !ok || last != 2 {
		t.Fatalf("LastK after truncation = %d/%v, want 2/true", last, ok)
	}
	r, err := s.Recover(f.scheme, f.seed)
	if err != nil {
		t.Fatal(err)
	}
	if r.Height() != 2 {
		t.Fatalf("recovered height %d, want 2", r.Height())
	}
	// And the store keeps working: re-append block 3.
	f3 := newRecordBlock(3)
	if err := s.AppendBlock(f3, 0); err != nil {
		t.Fatal(err)
	}
	if last, _ := s.LastK(); last != 3 {
		t.Fatalf("LastK after re-append = %d, want 3", last)
	}
}

// newRecordBlock builds a digest-only block (the harness's synthetic
// persistence shape).
func newRecordBlock(k uint64) *bm.Block {
	return &bm.Block{K: k, Digest: types.Hash([]byte(fmt.Sprintf("block-%d", k)))}
}

func TestStoreMidLogCorruptionFailsOpen(t *testing.T) {
	dir := t.TempDir()
	// Small segments force a roll so corruption lands mid-log.
	f := newFixture(t, dir, Options{SegmentBytes: 256})
	for k := uint64(1); k <= 8; k++ {
		f.commit(k, 100)
		if err := f.store.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.store.Close(); err != nil {
		t.Fatal(err)
	}
	segs, _ := filepath.Glob(filepath.Join(dir, "log", "wal-*.seg"))
	if len(segs) < 2 {
		t.Fatalf("need ≥2 segments to corrupt mid-log, got %d", len(segs))
	}
	raw, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0xff
	if err := os.WriteFile(segs[0], raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{SegmentBytes: 256}); err == nil {
		t.Fatal("open accepted mid-log corruption")
	}
}

func TestStoreCheckpointPrunesSegments(t *testing.T) {
	dir := t.TempDir()
	f := newFixture(t, dir, Options{SegmentBytes: 256})
	for k := uint64(1); k <= 6; k++ {
		f.commit(k, 50)
		if err := f.store.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	before, _ := filepath.Glob(filepath.Join(dir, "log", "wal-*.seg"))
	if len(before) < 3 {
		t.Fatalf("expected ≥3 segments before checkpoint, got %d", len(before))
	}
	if err := f.store.WriteCheckpoint(f.ledger.CheckpointState()); err != nil {
		t.Fatal(err)
	}
	after, _ := filepath.Glob(filepath.Join(dir, "log", "wal-*.seg"))
	if len(after) >= len(before) {
		t.Fatalf("checkpoint pruned nothing: %d → %d segments", len(before), len(after))
	}
	// More blocks on top of the checkpoint, then a crash-reopen.
	for k := uint64(7); k <= 9; k++ {
		f.commit(k, 50)
	}
	if err := f.store.Close(); err != nil {
		t.Fatal(err)
	}
	s, err := Open(dir, Options{SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if cp := s.Checkpoint(); cp == nil || cp.LastK != 6 {
		t.Fatalf("checkpoint not recovered: %+v", cp)
	}
	f.checkRecovered(s)
}

func TestStoreSupersedeReplay(t *testing.T) {
	dir := t.TempDir()
	f := newFixture(t, dir, Options{})

	// Fork: alice double-spends the same inputs to bob and (merged
	// branch) back to herself.
	inputs, err := f.ledger.Table().InputsFor(f.alice.Address(), 400)
	if err != nil {
		t.Fatal(err)
	}
	txBob, err := f.alice.Pay(inputs, []utxo.Output{{Account: f.bob.Address(), Value: 400}})
	if err != nil {
		t.Fatal(err)
	}
	txSelf, err := f.alice.Pay(inputs, []utxo.Output{{Account: f.alice.Address(), Value: 400}})
	if err != nil {
		t.Fatal(err)
	}
	local := bm.NewBlock(1, []*utxo.Transaction{txBob})
	remote := bm.NewBlock(1, []*utxo.Transaction{txSelf})
	f.ledger.CommitBlock(local)
	if err := f.store.AppendBlock(local, 0); err != nil {
		t.Fatal(err)
	}
	f.ledger.MergeBlock(remote)
	if err := f.store.AppendMerge(remote, 0); err != nil {
		t.Fatal(err)
	}
	f.commit(2, 100)

	if err := f.store.Close(); err != nil {
		t.Fatal(err)
	}
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	f.checkRecovered(s)
	r, err := s.Recover(f.scheme, f.seed)
	if err != nil {
		t.Fatal(err)
	}
	if r.MergedTxs != f.ledger.MergedTxs || r.DepositFundedTxs != f.ledger.DepositFundedTxs {
		t.Errorf("merge stats: %d/%d, want %d/%d",
			r.MergedTxs, r.DepositFundedTxs, f.ledger.MergedTxs, f.ledger.DepositFundedTxs)
	}
}

func TestStoreAppendIdempotent(t *testing.T) {
	dir := t.TempDir()
	f := newFixture(t, dir, Options{})
	b := f.commit(1, 100)
	if err := f.store.AppendBlock(b, 0); err != nil {
		t.Fatal(err)
	}
	if err := f.store.Close(); err != nil {
		t.Fatal(err)
	}
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if got := len(s.Tail()); got != 1 {
		t.Fatalf("duplicate append persisted: %d tail records, want 1", got)
	}
}

func TestStoreShouldCheckpoint(t *testing.T) {
	dir := t.TempDir()
	f := newFixture(t, dir, Options{CheckpointEvery: 3})
	for k := uint64(1); k <= 2; k++ {
		f.commit(k, 10)
	}
	if f.store.ShouldCheckpoint() {
		t.Fatal("checkpoint due after 2 of 3 blocks")
	}
	f.commit(3, 10)
	if !f.store.ShouldCheckpoint() {
		t.Fatal("checkpoint not due after 3 blocks")
	}
	if err := f.store.WriteCheckpoint(f.ledger.CheckpointState()); err != nil {
		t.Fatal(err)
	}
	if f.store.ShouldCheckpoint() {
		t.Fatal("checkpoint still due after cut")
	}
}

// TestStoreConcurrentAppends exercises the mutex paths under the race
// detector: parallel appends, flushes and reads.
func TestStoreConcurrentAppends(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{SegmentBytes: 4 << 10})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				k := uint64(g*50 + i + 1)
				if err := s.AppendBlock(newRecordBlock(k), 0); err != nil {
					t.Error(err)
					return
				}
				if i%10 == 0 {
					if err := s.Flush(); err != nil {
						t.Error(err)
						return
					}
					s.LastK()
					s.Tail()
				}
			}
		}(g)
	}
	wg.Wait()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if got := len(r.BlockRecords()); got != 200 {
		t.Fatalf("recovered %d records, want 200", got)
	}
}

func TestBlockRecordsCoordinates(t *testing.T) {
	dir := t.TempDir()
	f := newFixture(t, dir, Options{})
	for k := uint64(1); k <= 4; k++ {
		f.commit(k, 25)
	}
	if err := f.store.WriteCheckpoint(f.ledger.CheckpointState()); err != nil {
		t.Fatal(err)
	}
	f.commit(5, 25)
	recs := f.store.BlockRecords()
	if len(recs) != 5 {
		t.Fatalf("got %d records, want 5", len(recs))
	}
	for i, r := range recs {
		if r.K != uint64(i+1) {
			t.Errorf("record %d has K=%d", i, r.K)
		}
		want, _ := f.ledger.BlockAt(r.K)
		if r.Digest != want.Digest {
			t.Errorf("record %d digest mismatch", i)
		}
	}
}

func TestSyncRoundTrip(t *testing.T) {
	serverDir := t.TempDir()
	f := newFixture(t, serverDir, Options{})
	for k := uint64(1); k <= 4; k++ {
		f.commit(k, 75)
	}
	if err := f.store.WriteCheckpoint(f.ledger.CheckpointState()); err != nil {
		t.Fatal(err)
	}
	for k := uint64(5); k <= 7; k++ {
		f.commit(k, 75)
	}

	resp, err := f.store.BuildSyncResp(&wire.SyncReq{FromK: 1, WantCheckpoint: true})
	if err != nil {
		t.Fatal(err)
	}
	// Round-trip through the wire codec, as the transport does.
	decoded, err := wire.DecodeSyncResp(wire.EncodeSyncResp(resp))
	if err != nil {
		t.Fatal(err)
	}

	client, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	ledger, err := InstallSync(client, f.scheme, decoded, f.seed)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := ledger.Table().Balance(f.bob.Address()), f.ledger.Table().Balance(f.bob.Address()); got != want {
		t.Errorf("synced bob balance %d, want %d", got, want)
	}
	ld, sd := f.ledger.BlockDigests(), ledger.BlockDigests()
	for k, d := range ld {
		if sd[k] != d {
			t.Errorf("synced block %d digest mismatch", k)
		}
	}
	if last, ok := client.LastK(); !ok || last != 7 {
		t.Fatalf("client LastK = %d/%v, want 7/true", last, ok)
	}
}

func TestInstallSyncRejectsTamperedBody(t *testing.T) {
	f := newFixture(t, t.TempDir(), Options{})
	b := f.commit(1, 10)
	resp, err := f.store.BuildSyncResp(&wire.SyncReq{FromK: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Tamper: claim a different digest for the same body.
	rec := &wire.BlockRecord{K: b.K, Digest: types.Hash([]byte("lie")), Txs: b.Txs}
	payload, err := wire.EncodeBlockRecord(rec)
	if err != nil {
		t.Fatal(err)
	}
	resp.Log = wire.AppendRecord(nil, wire.RecordBlock, payload)
	client, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	if _, err := InstallSync(client, f.scheme, resp, f.seed); err == nil {
		t.Fatal("tampered sync response installed")
	}
}

func TestCrossCheckMajority(t *testing.T) {
	f := newFixture(t, t.TempDir(), Options{})
	for k := uint64(1); k <= 3; k++ {
		f.commit(k, 10)
	}
	honest, err := f.store.BuildSyncResp(&wire.SyncReq{FromK: 1, WantCheckpoint: true})
	if err != nil {
		t.Fatal(err)
	}
	// A lying peer swaps a digest.
	liar := &wire.SyncResp{LastK: honest.LastK}
	rec := &wire.BlockRecord{K: 1, Digest: types.Hash([]byte("fork"))}
	payload, err := wire.EncodeBlockRecord(rec)
	if err != nil {
		t.Fatal(err)
	}
	liar.Log = wire.AppendRecord(nil, wire.RecordBlock, payload)

	picked, err := CrossCheck([]*wire.SyncResp{honest, liar, honest})
	if err != nil {
		t.Fatal(err)
	}
	key1, _ := chainKey(picked)
	key2, _ := chainKey(honest)
	if key1 != key2 {
		t.Fatal("cross-check picked the liar")
	}
	if _, err := CrossCheck([]*wire.SyncResp{honest, liar}); err == nil {
		t.Fatal("50/50 split produced a winner")
	}
}

// TestCheckpointKeepsRacingTailRecords pins the cut filter: a block
// appended after the snapshot was captured but before WriteCheckpoint
// ran (the legal checkpoint race) must survive both in memory and
// across a reopen.
func TestCheckpointKeepsRacingTailRecords(t *testing.T) {
	dir := t.TempDir()
	f := newFixture(t, dir, Options{})
	for k := uint64(1); k <= 3; k++ {
		f.commit(k, 40)
	}
	cp := f.ledger.CheckpointState() // snapshot captured at K=3...
	f.commit(4, 40)                  // ...block 4 races past the cut
	if err := f.store.WriteCheckpoint(cp); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, r := range f.store.Tail() {
		if r.Block.K == 4 {
			found = true
		}
	}
	if !found {
		t.Fatal("block 4 dropped from the in-memory tail by the checkpoint cut")
	}
	if err := f.store.Close(); err != nil {
		t.Fatal(err)
	}
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if last, _ := s.LastK(); last != 4 {
		t.Fatalf("reopened LastK = %d, want 4", last)
	}
	f.checkRecovered(s)
}

// TestInstallSyncRejectsGappedLog pins the gap check: a transfer whose
// log starts past block 1 with no checkpoint to bridge it must be
// rejected before anything is written.
func TestInstallSyncRejectsGappedLog(t *testing.T) {
	f := newFixture(t, t.TempDir(), Options{})
	f.commit(1, 10)
	b2 := f.commit(2, 10)
	rec := &wire.BlockRecord{K: b2.K, Digest: b2.Digest, Txs: b2.Txs}
	payload, err := wire.EncodeBlockRecord(rec)
	if err != nil {
		t.Fatal(err)
	}
	resp := &wire.SyncResp{LastK: 2, Log: wire.AppendRecord(nil, wire.RecordBlock, payload)}
	client, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	if _, err := InstallSync(client, f.scheme, resp, f.seed); err == nil {
		t.Fatal("gapped transfer installed")
	}
	if _, have := client.LastK(); have {
		t.Fatal("rejected transfer left state in the store")
	}
}

// TestBuildSyncRespBridgesCheckpoint pins that a server whose
// checkpoint covers the requested range includes the snapshot even when
// the requester did not ask for one: without it the transfer would have
// a silent gap.
func TestBuildSyncRespBridgesCheckpoint(t *testing.T) {
	f := newFixture(t, t.TempDir(), Options{})
	for k := uint64(1); k <= 3; k++ {
		f.commit(k, 30)
	}
	if err := f.store.WriteCheckpoint(f.ledger.CheckpointState()); err != nil {
		t.Fatal(err)
	}
	f.commit(4, 30)
	resp, err := f.store.BuildSyncResp(&wire.SyncReq{FromK: 1, WantCheckpoint: false})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Checkpoint) == 0 {
		t.Fatal("response omits the checkpoint its log depends on")
	}
	client, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	ledger, err := InstallSync(client, f.scheme, resp, f.seed)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := ledger.Table().Balance(f.bob.Address()), f.ledger.Table().Balance(f.bob.Address()); got != want {
		t.Fatalf("bridged install balance %d, want %d", got, want)
	}
}

// TestStoreCRCFlipInLastSegmentFailsOpen pins that a CRC mismatch with
// real data after it is corruption even in the last segment: truncating
// there would silently delete the valid records that follow.
func TestStoreCRCFlipInLastSegmentFailsOpen(t *testing.T) {
	dir := t.TempDir()
	f := newFixture(t, dir, Options{})
	for k := uint64(1); k <= 3; k++ {
		f.commit(k, 100)
	}
	if err := f.store.Close(); err != nil {
		t.Fatal(err)
	}
	seg := filepath.Join(dir, "log", "wal-00000001.seg")
	raw, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	raw[20] ^= 0xff // inside the first record's payload
	if err := os.WriteFile(seg, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{}); err == nil {
		t.Fatal("open accepted a CRC-bad frame followed by valid records")
	}
}

// TestStoreZeroPageTailTruncatedOnOpen pins the other torn-write shape:
// a tail of unwritten (all-zero) pages is truncated away like a cut
// frame.
func TestStoreZeroPageTailTruncatedOnOpen(t *testing.T) {
	dir := t.TempDir()
	f := newFixture(t, dir, Options{})
	for k := uint64(1); k <= 2; k++ {
		f.commit(k, 100)
	}
	if err := f.store.Close(); err != nil {
		t.Fatal(err)
	}
	seg := filepath.Join(dir, "log", "wal-00000001.seg")
	raw, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	raw = append(raw, make([]byte, 512)...)
	if err := os.WriteFile(seg, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("open after zero-page tail: %v", err)
	}
	defer s.Close()
	if last, ok := s.LastK(); !ok || last != 2 {
		t.Fatalf("LastK = %d/%v, want 2/true", last, ok)
	}
}
